# Tier-1 gate: what CI runs on every PR.
.PHONY: check build test fmt verify verify-protocol verify-continuous \
	sanitize-smoke bench-smoke churn-smoke native-smoke model-check \
	model-check-negative race-check fsm-check clean

check: build test fmt verify

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Static channel-graph verification over every shipped configuration
# (split stack plus all shard/replica combinations): SPSC discipline,
# core affinity, blocking cycles, republish completeness, shard maps.
verify: build
	dune exec bin/newtos_sim.exe -- verify

# Dynamic channel-protocol verification: replay the figure-4/5 crash
# runs under the request/confirm contract checker — every request
# confirmed or aborted, stale confirms absorbed, no confirm dropped
# while its requester is pending. Any open obligation exits 1.
verify-protocol: build
	dune exec bin/newtos_sim.exe -- verify --protocol

# Recovery model checking: exhaustively crash every component right
# after every labeled recovery step (split stack and sharded N=2 r=2
# pf=2, PF shards included),
# re-crashing during recovery, and require convergence plus clean
# continuous/protocol checkers at every crash point. The wall-clock
# budget (CPU seconds per configuration) keeps CI bounded; skipped
# points are reported, never silently dropped.
MCHECK_BUDGET ?= 240
model-check: build
	dune exec bin/newtos_sim.exe -- mcheck --json --budget $(MCHECK_BUDGET)

# The negative controls: a sabotaged recovery must produce
# counterexamples — exit 1 and at least one crash point carrying a
# non-empty protocol event trace. Split stack (restarted IP server on
# the wrong core) and sharded stack (restarted PF shard on the wrong
# core).
model-check-negative: build
	! dune exec bin/newtos_sim.exe -- mcheck --config split \
	    --break-recovery ip:wrong-core --json > _mcheck_negative.json
	grep -q '"trace":\["' _mcheck_negative.json
	rm -f _mcheck_negative.json
	! dune exec bin/newtos_sim.exe -- mcheck --config sharded \
	    --break-recovery pf:wrong-core --json > _mcheck_negative_pf.json
	grep -q '"converged":false' _mcheck_negative_pf.json
	rm -f _mcheck_negative_pf.json

# Race checking, static + dynamic. Static: the native pinning plan
# must lint clean (every cross-domain edge on a sanctioned primitive)
# and each planted sabotage must be flagged. Dynamic: a short native
# run with the vector-clock detector armed must report zero races, and
# each --break-race mode must exit 1 through the detector with a
# trace-carrying counterexample. --allow-oversubscribe keeps the gate
# meaningful on 1-core CI boxes: the detector checks ordering, not
# parallelism, so time-sliced domains are fine.
race-check: build
	dune exec bin/newtos_sim.exe -- verify --native-ownership --json \
	    | grep -q '"ok":true'
	! dune exec bin/newtos_sim.exe -- verify --native-ownership \
	    --break-race spsc:two-producers --json > _race_lint.json
	grep -q '"ok":false' _race_lint.json
	grep -q '"ring-spsc"' _race_lint.json
	! dune exec bin/newtos_sim.exe -- verify --native-ownership \
	    --break-race loop:unfenced-counter --json > _race_lint.json
	grep -q '"cross-domain"' _race_lint.json
	rm -f _race_lint.json
	dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 0.6 \
	    --allow-oversubscribe --race --json > _race_run.json
	grep -q '"races":0' _race_run.json
	! dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 0.6 \
	    --allow-oversubscribe --break-race spsc:two-producers --json \
	    > _race_run.json
	grep -q '"ok":false' _race_run.json
	grep -q '"trace":\["' _race_run.json
	! dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 0.6 \
	    --allow-oversubscribe --break-race loop:unfenced-counter --json \
	    > _race_run.json
	grep -q '"ok":false' _race_run.json
	rm -f _race_run.json
	dune exec bench/main.exe -- micro-hook | grep -q '"hook_native"'

# TCP conformance checking, both polarities. Positive: the rule table
# lints total/deterministic/no-dead-rules, and the fig4/fig5 crash
# replays plus a crash-during-churn flood replay run violation-free
# under the checker, in the simulator and on the native runtime.
# Negative: each --break-tcp sabotage (a crashed shard's ESTABLISHED
# connections resurrected without a handshake; a bare ACK where RFC
# 793 demands RST) must exit 1 through the checker with a
# trace-carrying counterexample, again in both runtimes.
fsm-check: build
	dune exec bin/newtos_sim.exe -- verify --tcp-fsm
	! dune exec bin/newtos_sim.exe -- churn --scenario crash-during-churn \
	    --break-tcp stale-established --duration 0.4 --rate 2000 \
	    --shards 4 --json > _fsm.json
	grep -q '"ok":false' _fsm.json
	grep -q '"trace":\["' _fsm.json
	! dune exec bin/newtos_sim.exe -- churn --scenario syn-flood \
	    --break-tcp ack-from-closed --duration 0.4 --rate 2000 \
	    --shards 4 --json > _fsm.json
	grep -q '"ack-from-wrong-state"' _fsm.json
	grep -q '"trace":\["' _fsm.json
	dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 1 \
	    --allow-oversubscribe --tcp-fsm --json > _fsm.json
	grep -q '"tcpfsm":{"component":"tcp-fsm","ok":true' _fsm.json
	! dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 1 \
	    --allow-oversubscribe --break-tcp ack-from-closed --json \
	    > _fsm.json
	grep -q '"ok":false' _fsm.json
	grep -q '"trace":\["' _fsm.json
	! dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 1 \
	    --allow-oversubscribe --break-tcp stale-established --json \
	    > _fsm.json
	grep -q '"illegal-transition"' _fsm.json
	grep -q '"trace":\["' _fsm.json
	rm -f _fsm.json

# Continuous verification: a sanitized fault campaign that re-runs the
# static checker against the live topology after every reincarnation
# and leak-checks each quiesced run tail. Any violation or leak exits 1.
verify-continuous: build
	dune exec bin/newtos_sim.exe -- campaign --runs 5 --sanitize --verify-continuous

# One fault-injection run with the pool-ownership sanitizer armed: any
# double-free, free-while-in-flight or non-owner write fails the build.
sanitize-smoke: build
	dune exec bin/newtos_sim.exe -- fig4 --sanitize

# One fast scaling iteration (single point, short duration): catches a
# wiring regression in the sharded/replicated stack without the cost of
# the full curve — one point with the sharded packet filter on the path
# (pf_shards=2). Also asserts the verifier counter block and the
# per-PF-shard counter block are present in the machine-readable
# campaign output.
bench-smoke: build
	dune exec bin/newtos_sim.exe -- scaling --shards 2 --ip-replicas 2 --flows 2 --duration 0.05
	dune exec bin/newtos_sim.exe -- scaling --shards 2 --ip-replicas 2 --pf-shards 2 --flows 2 --duration 0.05
	dune exec bin/newtos_sim.exe -- campaign --runs 2 --sanitize --verify-continuous --json | grep -q '"counters"'
	dune exec bin/newtos_sim.exe -- campaign --runs 2 --pf-shards 2 --json | grep -q '"pf_shards":\[{"shard":0,'
	dune exec bin/newtos_sim.exe -- churn --duration 0.25 --rate 4000 \
	    --tcp-fsm --json > _bench_fsm.json
	grep -q '"tcpfsm":{"component":"tcp-fsm","ok":true' _bench_fsm.json
	grep -q '"segments":[1-9]' _bench_fsm.json
	rm -f _bench_fsm.json
	dune exec bench/main.exe -- micro-spsc | grep -q '"spsc_cross_domain"'

# Churn smoke: short flow-churn runs with the continuous checker
# attached. Asserts the streaming-histogram percentile block is in the
# JSON, that the SYN flood forces half-open (never established)
# conntrack evictions, that listen-queue pressure trips the backlog
# cap, and that a shard crash mid-churn recovers cleanly.
churn-smoke: build
	dune exec bin/newtos_sim.exe -- churn --duration 0.25 --rate 4000 \
	    --json --verify-continuous > _churn.json
	grep -q '"p99_us"' _churn.json
	grep -q '"p999_us"' _churn.json
	dune exec bin/newtos_sim.exe -- churn --scenario syn-flood \
	    --duration 0.25 --rate 4000 --flood-rate 15000 \
	    --conntrack-total 1024 --json --verify-continuous > _churn.json
	grep -q '"evicted_half_open":[1-9]' _churn.json
	grep -q '"evicted_established":0' _churn.json
	dune exec bin/newtos_sim.exe -- churn --scenario listen-pressure \
	    --duration 0.25 --json --verify-continuous > _churn.json
	grep -q '"listen_overflows":[1-9]' _churn.json
	dune exec bin/newtos_sim.exe -- churn --scenario crash-during-churn \
	    --duration 0.3 --rate 3000 --json --verify-continuous > _churn.json
	grep -q '"shard_restarts":1' _churn.json
	rm -f _churn.json

# A bounded run of the native runtime: the component servers on two
# real OCaml domains over real SPSC rings, iperf bulk + split-stack
# ping, exercised for one second. --skip-unsupported makes the target
# exit 0 with a visible SKIP line on machines with fewer than two
# cores; it never silently falls back to the simulator.
native-smoke: build
	dune exec bin/newtos_sim.exe -- native --domains 2 --seconds 1 \
	    --skip-unsupported --json

clean:
	dune clean
