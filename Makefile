# Tier-1 gate: what CI runs on every PR.
.PHONY: check build test fmt clean

check: build test fmt

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

clean:
	dune clean
