# Tier-1 gate: what CI runs on every PR.
.PHONY: check build test fmt verify verify-continuous sanitize-smoke bench-smoke clean

check: build test fmt verify

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Static channel-graph verification over every shipped configuration
# (split stack plus all shard/replica combinations): SPSC discipline,
# core affinity, blocking cycles, republish completeness, shard maps.
verify: build
	dune exec bin/newtos_sim.exe -- verify

# Continuous verification: a sanitized fault campaign that re-runs the
# static checker against the live topology after every reincarnation
# and leak-checks each quiesced run tail. Any violation or leak exits 1.
verify-continuous: build
	dune exec bin/newtos_sim.exe -- campaign --runs 5 --sanitize --verify-continuous

# One fault-injection run with the pool-ownership sanitizer armed: any
# double-free, free-while-in-flight or non-owner write fails the build.
sanitize-smoke: build
	dune exec bin/newtos_sim.exe -- fig4 --sanitize

# One fast scaling iteration (single point, short duration): catches a
# wiring regression in the sharded/replicated stack without the cost of
# the full curve. Also asserts the verifier counter block is present in
# the machine-readable campaign output.
bench-smoke: build
	dune exec bin/newtos_sim.exe -- scaling --shards 2 --ip-replicas 2 --flows 2 --duration 0.05
	dune exec bin/newtos_sim.exe -- campaign --runs 2 --sanitize --verify-continuous --json | grep -q '"counters"'

clean:
	dune clean
