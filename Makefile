# Tier-1 gate: what CI runs on every PR.
.PHONY: check build test fmt bench-smoke clean

check: build test fmt

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# One fast scaling iteration (single point, short duration): catches a
# wiring regression in the sharded/replicated stack without the cost of
# the full curve.
bench-smoke: build
	dune exec bin/newtos_sim.exe -- scaling --shards 2 --ip-replicas 2 --flows 2 --duration 0.05

clean:
	dune clean
