examples/crash_recovery.ml: Array Filename List Newt_core Newt_net Newt_nic Newt_sim Newt_sockets Newt_stack Printf String
