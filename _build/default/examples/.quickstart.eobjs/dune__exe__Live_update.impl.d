examples/live_update.ml: Array Newt_core Newt_sim Newt_sockets Newt_stack Printf String
