examples/live_update.mli:
