examples/packet_filter.ml: Newt_core Newt_net Newt_pf Newt_sim Newt_sockets Newt_stack Printf
