examples/ping_of_death.ml: Bytes Char Newt_core Newt_net Newt_nic Newt_sim Newt_sockets Newt_stack Printf
