examples/ping_of_death.mli:
