examples/quickstart.ml: List Newt_core Newt_hw Newt_net Newt_sim Newt_sockets Newt_stack Printf
