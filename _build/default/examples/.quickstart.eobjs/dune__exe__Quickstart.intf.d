examples/quickstart.mli:
