examples/select_dns.ml: List Newt_core Newt_net Newt_sim Newt_sockets Newt_stack Printf
