examples/select_dns.mli:
