(* Crash recovery, narrated: kill the IP server in the middle of a
   gigabit TCP stream and watch the reincarnation machinery put the
   stack back together (the Figure 4 scenario).

   What has to happen, per Section V-D of the paper:
   - the reincarnation server gets the crash signal and restarts IP;
   - IP recovers its routing configuration from the storage server;
   - the drivers must reset their NICs (the devices hold shadow copies
     of descriptors pointing into the dead receive pool) — this is what
     causes the visible gap while the link retrains;
   - TCP aborts its in-flight requests to IP (request database) and
     resubmits them under fresh ids, preferring duplicates to losses.

   Run: dune exec examples/crash_recovery.exe *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Series = Newt_sim.Series
module Tcp = Newt_net.Tcp

let () =
  let host = Host.create () in
  let peer = Host.sink host 0 in
  let series = Series.create ~bin_width:(Time.of_seconds 0.25) in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at n -> Series.add series at n);
  (* The paper captured this experiment with tcpdump and analyzed it in
     Wireshark; so can you. *)
  let capture = Newt_nic.Pcap.create () in
  Newt_nic.Pcap.attach capture (Host.link host 0);
  let _iperf =
    Apps.Iperf.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~port:5001 ~until:(Time.of_seconds 9.0) ()
  in

  Host.at host (Time.of_seconds 4.0) (fun () ->
      print_endline ">>> t=4.0s: injecting a crash into the IP server";
      Host.kill_component host Host.C_ip);

  Host.run host ~until:(Time.of_seconds 10.0);

  print_endline "Receiver bitrate (250 ms bins):";
  Array.iter
    (fun (t, mbps) ->
      Printf.printf "  %5.2fs %8.1f Mbps |%s\n" t mbps
        (String.make (int_of_float (mbps /. 25.0)) '#'))
    (Series.mbps series ~upto:(Time.of_seconds 9.0) ());

  let st = Tcp.stats (Sink.tcp peer) in
  Printf.printf "IP server restarts: %d (automatic)\n" (Host.restarts_of host Host.C_ip);
  Printf.printf "Routes after recovery: %d (restored from the storage server)\n"
    (List.length (Newt_stack.Ip_srv.routes (Host.ip_srv host)));
  Printf.printf
    "Duplicate segments at the receiver: %d — IP resubmitted unconfirmed packets\n"
    st.Tcp.dup_segs_in;
  Printf.printf "Checksum failures at the receiver: %d\n" (Sink.checksum_failures peer);
  print_endline
    "The connection survived: the gap is the NIC reset, not lost state.";
  let pcap_path = Filename.concat (Filename.get_temp_dir_name ()) "newtos_ip_crash.pcap" in
  Newt_nic.Pcap.save capture ~path:pcap_path;
  Printf.printf "Full packet capture (%d frames) written to %s — open it in Wireshark.\n"
    (Newt_nic.Pcap.frames capture) pcap_path
