(* Live update: replace the UDP server while the system carries TCP
   traffic — the MS11-083 scenario the paper opens with (Section V):

     "In November 2011, Microsoft announced a critical vulnerability in
      the UDP part of Windows networking stack... In this respect,
      NewtOS is much more resilient... we are able to replace the buggy
      UDP component without rebooting. Given the fact that most
      Internet traffic is carried by the TCP protocol, this traffic
      remains completely unaffected by the replacement."

   Run: dune exec examples/live_update.exe *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Series = Newt_sim.Series

let () =
  let host = Host.create () in
  let peer = Host.sink host 0 in
  let series = Series.create ~bin_width:(Time.of_seconds 0.25) in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at n -> Series.add series at n);
  Sink.serve_dns peer ~zone:(fun _ -> Some (Host.sink_addr host 0)) ();

  (* TCP traffic that must not be disturbed. *)
  let _iperf =
    Apps.Iperf.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~port:5001 ~until:(Time.of_seconds 5.0) ()
  in
  (* A resolver using the (about to be patched) UDP server. *)
  let dns =
    Apps.Dns_client.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~timeout:(Time.of_seconds 0.5) ()
  in

  Host.at host (Time.of_seconds 2.0) (fun () ->
      print_endline ">>> t=2.0s: live-updating the UDP server (patched version)";
      Host.live_update host Host.C_udp);

  Host.run host ~until:(Time.of_seconds 5.5);

  print_endline "TCP bitrate during the UDP update (250 ms bins):";
  Array.iter
    (fun (t, mbps) ->
      Printf.printf "  %5.2fs %8.1f Mbps |%s\n" t mbps
        (String.make (int_of_float (mbps /. 25.0)) '#'))
    (Series.mbps series ~upto:(Time.of_seconds 5.0) ());

  Printf.printf "UDP server code version: %d (v1 -> v2, no crash, no restart)\n"
    (Newt_stack.Proc.version (Host.proc_of host Host.C_udp));
  Printf.printf
    "DNS resolver: %d/%d queries answered, %d socket reopens, longest outage %d \
     queries — the swap queued its messages and nothing was lost\n"
    (Apps.Dns_client.answered dns) (Apps.Dns_client.queries dns)
    (Apps.Dns_client.socket_reopens dns)
    (Apps.Dns_client.max_consecutive_failures dns);
  print_endline
    "TCP never noticed: the new version inherited the address space and the \
     channels stayed established (Section V)."
