(* The isolated packet filter: a 1024-rule firewall in its own server.

   Demonstrates:
   - rule evaluation: a blocked port really is unreachable while
     allowed traffic flows;
   - connection tracking: a keep-state rule admits reply traffic;
   - the Figure 5 property: a PF crash loses no packets (IP holds every
     packet until the filter answers) and the restarted filter recovers
     its ruleset from storage and its connection table by querying the
     TCP server.

   Run: dune exec examples/packet_filter.exe *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Rng = Newt_sim.Rng
module Rule = Newt_pf.Rule
module Pf_engine = Newt_pf.Pf_engine
module Conntrack = Newt_pf.Conntrack
module Tcp = Newt_net.Tcp

let () =
  (* 1022 noise rules, then: block outgoing telnet (quick), pass the
     rest with state. *)
  let noise =
    Pf_engine.generate_ruleset (Rng.create 11) ~n:1022 ~protect_port:5001
  in
  let block_telnet =
    {
      Rule.block_all with
      Rule.proto = Rule.Match_tcp;
      dst_port = Rule.Port 23;
      quick = true;
    }
  in
  let rules = block_telnet :: noise in
  let config = { Host.default_config with Host.pf_rules = rules } in
  let host = Host.create ~config () in
  let peer = Host.sink host 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  Sink.serve_tcp_echo peer ~port:23;

  Printf.printf "Firewall loaded: %d rules\n"
    (Newt_stack.Pf_srv.rule_count (Host.pf_srv host));

  (* Allowed traffic. *)
  let _iperf =
    Apps.Iperf.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~port:5001 ~until:(Time.of_seconds 4.0) ()
  in
  (* Blocked traffic: telnet must fail. *)
  let telnet = ref "pending" in
  Newt_sockets.Socket_api.tcp_socket (Host.sc host) (Host.app host) (fun conn ->
      Newt_sockets.Socket_api.connect conn ~dst:(Host.sink_addr host 0) ~port:23
        (fun result ->
          telnet := (match result with `Ok -> "CONNECTED (bad!)" | `Error _ -> "blocked")));

  (* Crash the filter twice mid-stream. *)
  Host.at host (Time.of_seconds 1.5) (fun () -> Host.kill_component host Host.C_pf);
  Host.at host (Time.of_seconds 3.0) (fun () -> Host.kill_component host Host.C_pf);

  Host.run host ~until:(Time.of_seconds 4.5);

  (* A filtered SYN gets silently dropped: the connect is still waiting
     when the run ends, exactly like telnet against a real firewall. *)
  let telnet_outcome =
    match !telnet with "pending" -> "no response (SYNs filtered)" | s -> s
  in
  Printf.printf "telnet to port 23: %s [%d packets blocked by PF]\n" telnet_outcome
    (Newt_stack.Pf_srv.blocked (Host.pf_srv host));
  Printf.printf "iperf delivered: %d bytes (%.0f Mbps average)\n" !received
    (float_of_int !received *. 8.0 /. 4.0 /. 1e6);
  let sender = Newt_stack.Tcp_srv.engine (Host.tcp_srv host) in
  Printf.printf
    "sender retransmissions across two PF crashes: %d (only the filtered telnet \
     SYN retries; the iperf stream lost nothing)\n"
    (Tcp.stats sender).Tcp.retransmits;
  Printf.printf "PF restarts: %d; rules after recovery: %d; tracked connections: %d\n"
    (Host.restarts_of host Host.C_pf)
    (Newt_stack.Pf_srv.rule_count (Host.pf_srv host))
    (Conntrack.size (Pf_engine.conntrack (Newt_stack.Pf_srv.engine_of (Host.pf_srv host))));
  print_endline
    "The connection table was rebuilt by querying the TCP server (Section V-D)."
