(* Surviving a ping of death.

   "NewtOS survives attacks similar to the famous ping of death without
   crashing the entire system." (Section V)

   The peer fires a volley of malformed and oversized ICMP datagrams at
   the host. The IP server's ICMP decoder rejects them (bounded echo
   payloads, checksum validation); legitimate pings keep being
   answered; and even if the attack had crashed the IP server, the
   reincarnation machinery would have contained the damage to one
   component — which we also demonstrate by injecting exactly that.

   Run: dune exec examples/ping_of_death.exe *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Link = Newt_nic.Link
module Addr = Newt_net.Addr
module Ethernet = Newt_net.Ethernet
module Ipv4 = Newt_net.Ipv4
module Wire = Newt_net.Wire
module Checksum = Newt_net.Checksum

(* Forge a hostile ICMP echo request: total length field lies, payload
   is garbage, the classic reassembly-overflow shape. *)
let forged_frame ~src ~dst ~dst_mac ~src_mac ~claim_len =
  let icmp = Bytes.create 1200 in
  Wire.put_u8 icmp 0 8 (* echo request *);
  Wire.put_u8 icmp 1 0;
  Wire.put_u16 icmp 2 0;
  Wire.put_u32 icmp 4 0xdeadbeef;
  for i = 8 to 1199 do
    Bytes.set icmp i (Char.chr (i land 0xff))
  done;
  Wire.put_u16 icmp 2 (Checksum.bytes icmp ~off:0 ~len:1200);
  let pkt = Bytes.create (20 + 1200) in
  Ipv4.encode_header
    { Ipv4.src; dst; protocol = Ipv4.Icmp; ttl = 64; ident = 666; total_len = claim_len }
    pkt ~off:0;
  Bytes.blit icmp 0 pkt 20 1200;
  Ethernet.frame
    { Ethernet.dst = dst_mac; src = src_mac; ethertype = Ethernet.Ipv4 }
    ~payload:pkt

(* A well-formed echo request, for contrast. *)
let legit_ping ~src ~dst ~dst_mac ~src_mac =
  let icmp =
    Newt_net.Icmp.encode
      (Newt_net.Icmp.Echo_request { ident = 7; seq = 1; data = Bytes.of_string "hello" })
  in
  let pkt =
    Ipv4.packet
      { Ipv4.src; dst; protocol = Ipv4.Icmp; ttl = 64; ident = 1; total_len = 0 }
      ~payload:icmp
  in
  Ethernet.frame
    { Ethernet.dst = dst_mac; src = src_mac; ethertype = Ethernet.Ipv4 }
    ~payload:pkt

let () =
  let host = Host.create () in
  let peer = Host.sink host 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ _ -> ());
  (* An SSH-like server on the host, so inbound reachability can be
     probed after the crash. *)
  Apps.Echo_listener.start (Host.sc host) ~app:(Host.app host) ~port:22;
  let iperf =
    Apps.Iperf.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~port:5001 ~until:(Time.of_seconds 3.0) ()
  in

  (* First a legitimate ping, answered by the IP server's ICMP. *)
  Host.at host (Time.of_seconds 0.5) (fun () ->
      ignore
        (Link.transmit (Host.link host 0) ~from:Link.Right
           (legit_ping
              ~src:(Host.sink_addr host 0)
              ~dst:(Host.local_addr host 0)
              ~dst_mac:(Newt_nic.E1000.mac (Host.nic host 0))
              ~src_mac:(Addr.Mac.of_index 200))));

  (* The attack: 200 forged datagrams, lying length fields, at t=1s. *)
  Host.at host (Time.of_seconds 1.0) (fun () ->
      print_endline ">>> t=1s: ping-of-death volley (forged oversized ICMP)";
      for i = 0 to 199 do
        let frame =
          forged_frame
            ~src:(Addr.Ipv4.v 66 66 66 (i land 0xff))
            ~dst:(Host.local_addr host 0)
            ~dst_mac:(Newt_nic.E1000.mac (Host.nic host 0))
            ~src_mac:(Addr.Mac.of_index 666) ~claim_len:65535
        in
        ignore (Link.transmit (Host.link host 0) ~from:Link.Right frame)
      done);

  Host.run host ~until:(Time.of_seconds 3.5);

  Printf.printf "legitimate ping answered: %d echo repl%s\n"
    (Newt_stack.Ip_srv.icmp_echoes_answered (Host.ip_srv host))
    (if Newt_stack.Ip_srv.icmp_echoes_answered (Host.ip_srv host) = 1 then "y" else "ies");
  Printf.printf "iperf kept flowing: %d bytes sent\n" (Apps.Iperf.bytes_sent iperf);
  Printf.printf "IP server survived: restarts=%d (0 = the decoder just rejected the garbage)\n"
    (Host.restarts_of host Host.C_ip);

  (* And if a future bug DID crash IP, the damage stays contained: *)
  print_endline ">>> now injecting an actual IP crash (as if the attack had found a bug)";
  Host.at host (Time.of_seconds 3.6) (fun () -> Host.kill_component host Host.C_ip);
  let reachable = ref false in
  Host.at host (Time.of_seconds 6.0) (fun () ->
      Host.probe_reachable host ~port:22 ~timeout:(Time.of_seconds 1.0) (fun ok ->
          reachable := ok));
  Host.run host ~until:(Time.of_seconds 7.5);
  Printf.printf "after the crash: IP restarts=%d, host reachable again: %b\n"
    (Host.restarts_of host Host.C_ip) !reachable;
  print_endline "The rest of the system never stopped."
