(* Quickstart: boot a NewtOS host, stream TCP through the whole
   multiserver stack (SYSCALL -> TCP -> IP -> PF -> driver -> NIC ->
   wire), and look at what the servers did.

   Run: dune exec examples/quickstart.exe *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Tcp = Newt_net.Tcp

let () =
  (* A host with one gigabit NIC; an ideal peer lives on the far side
     of the wire. *)
  let host = Host.create () in
  let peer = Host.sink host 0 in

  (* The peer accepts and drains TCP on port 5001 (like iperf -s). *)
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);

  (* An application on the host streams data for one simulated second
     through the POSIX-style socket API. *)
  let iperf =
    Apps.Iperf.start (Host.machine host) ~sc:(Host.sc host) ~app:(Host.app host)
      ~dst:(Host.sink_addr host 0) ~port:5001 ~until:(Time.of_seconds 1.0) ()
  in

  Host.run host ~until:(Time.of_seconds 1.2);

  Printf.printf "After 1 simulated second of iperf:\n";
  Printf.printf "  application wrote   %9d bytes\n" (Apps.Iperf.bytes_sent iperf);
  Printf.printf "  peer received       %9d bytes (%.0f Mbps)\n" !received
    (float_of_int !received *. 8.0 /. 1e6);
  Printf.printf "  checksum failures at the peer: %d\n" (Sink.checksum_failures peer);

  let sender = Newt_stack.Tcp_srv.engine (Host.tcp_srv host) in
  let st = Tcp.stats sender in
  Printf.printf "  TCP server: %d segments out, %d ACKs in, %d retransmits\n"
    st.Tcp.segs_out st.Tcp.segs_in st.Tcp.retransmits;
  Printf.printf "  IP server:  %d packets forwarded, %d ICMP echoes answered\n"
    (Newt_stack.Ip_srv.packets_forwarded (Host.ip_srv host))
    (Newt_stack.Ip_srv.icmp_echoes_answered (Host.ip_srv host));
  Printf.printf "  PF server:  %d verdicts (%d blocked)\n"
    (Newt_stack.Pf_srv.verdicts_issued (Host.pf_srv host))
    (Newt_stack.Pf_srv.blocked (Host.pf_srv host));

  (* Every OS component sits on its own core (Figure 1): utilization
     shows where the cycles went. *)
  print_endline "  core utilization (dedicated cores, in stack order):";
  List.iter
    (fun comp ->
      let core = Newt_stack.Proc.core (Host.proc_of host comp) in
      Printf.printf "    %-5s %5.1f%%\n" (Host.component_name comp)
        (100.0
        *. Newt_hw.Cpu.utilization core ~now:(Newt_sim.Engine.now (Host.engine host))))
    [ Host.C_tcp; Host.C_udp; Host.C_ip; Host.C_pf; Host.C_drv 0 ]
