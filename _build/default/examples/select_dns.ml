(* A concurrent resolver built on the asynchronous select.

   The paper's only reboot-class failures came from its synchronous
   select path ("hangs in the synchronous part of the system which
   merges sockets and file descriptors for select ... has not been
   modified yet to use the asynchronous channels we propose",
   Section VI-B) — converting select to the asynchronous design was its
   explicit expectation. This example runs that converted select:

   - a host with two NICs, a DNS server on each peer;
   - one resolver querying both servers concurrently, multiplexing the
     answers with select over two UDP sockets;
   - and, mid-run, a live update of the UDP server and then a crash of
     the IP server — the select-based app rides out both.

   Run: dune exec examples/select_dns.exe *)

module Host = Newt_core.Host
module Sink = Newt_stack.Sink
module S = Newt_sockets.Socket_api
module Dns = Newt_net.Dns
module Time = Newt_sim.Time

let sec = Time.of_seconds

let () =
  let config = { Host.default_config with Host.nics = 2 } in
  let host = Host.create ~config () in
  for i = 0 to 1 do
    Sink.serve_dns (Host.sink host i)
      ~zone:(fun name -> if name = "unknown.example" then None else Some (Host.sink_addr host i))
      ()
  done;

  let answers = ref 0 and nxdomains = ref 0 and rounds = ref 0 in
  let app = Host.app host in

  (* Two sockets, one per upstream resolver. *)
  S.udp_socket (Host.sc host) app (fun c0 ->
      S.udp_socket (Host.sc host) app (fun c1 ->
          S.connect c0 ~dst:(Host.sink_addr host 0) ~port:53 (fun _ ->
              S.connect c1 ~dst:(Host.sink_addr host 1) ~port:53 (fun _ ->
                  let rec round n =
                    incr rounds;
                    let name =
                      if n mod 5 = 0 then "unknown.example" else "www.vu.nl"
                    in
                    let consume c =
                      S.recv c ~max:512 ~timeout:(sec 0.1) (fun rr ->
                          match rr with
                          | `Data d -> (
                              match Dns.decode d with
                              | Some m when m.Dns.answers <> [] -> incr answers
                              | Some m when m.Dns.rcode = 3 -> incr nxdomains
                              | Some _ | None -> ())
                          | `Timeout | `Eof | `Error _ -> ())
                    in
                    let next () =
                      Host.at host
                        (Newt_sim.Engine.now (Host.engine host) + sec 0.1)
                        (fun () -> if n < 40 then round (n + 1))
                    in
                    let on_select r =
                      (match r with
                      | `Ready ready -> List.iter consume ready
                      | `Timeout | `Error _ -> ());
                      next ()
                    in
                    S.send c0 (Dns.encode (Dns.query ~id:n name)) (fun _ ->
                        S.send c1 (Dns.encode (Dns.query ~id:n name)) (fun _ ->
                            (* Wait for whichever upstream answers
                               first; drain both if ready. *)
                            S.select [ c0; c1 ] ~timeout:(sec 1.0) on_select))
                  in
                  round 1))));

  (* Meanwhile, the system changes under the resolver's feet. *)
  Host.at host (sec 1.5) (fun () ->
      print_endline ">>> t=1.5s: live-updating the UDP server under the select loop";
      Host.live_update host Host.C_udp);
  Host.at host (sec 3.0) (fun () ->
      print_endline ">>> t=3.0s: crashing the IP server under the select loop";
      Host.kill_component host Host.C_ip);

  Host.run host ~until:(sec 8.0);
  Printf.printf
    "rounds=%d positive answers=%d nxdomain answers=%d (2 upstreams per round)\n"
    !rounds !answers !nxdomains;
  Printf.printf "udp version=%d (live-updated), ip restarts=%d\n"
    (Newt_stack.Proc.version (Host.proc_of host Host.C_udp))
    (Host.restarts_of host Host.C_ip);
  print_endline
    "The select-based resolver survived both — the paper's sync-select \
     reboots are gone with the asynchronous design."
