lib/channels/pool.ml: Array Bytes Printf Rich_ptr Stack
