lib/channels/pool.mli: Bytes Rich_ptr
