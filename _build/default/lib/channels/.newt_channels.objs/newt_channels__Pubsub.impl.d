lib/channels/pubsub.ml: Hashtbl List
