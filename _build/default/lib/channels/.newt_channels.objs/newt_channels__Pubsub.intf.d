lib/channels/pubsub.mli:
