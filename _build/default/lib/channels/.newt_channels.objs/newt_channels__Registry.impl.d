lib/channels/registry.ml: Bytes Hashtbl List Pool Rich_ptr
