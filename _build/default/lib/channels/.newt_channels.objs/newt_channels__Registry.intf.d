lib/channels/registry.mli: Bytes Pool Rich_ptr
