lib/channels/request_db.ml: Hashtbl List
