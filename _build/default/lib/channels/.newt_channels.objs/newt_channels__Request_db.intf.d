lib/channels/request_db.mli:
