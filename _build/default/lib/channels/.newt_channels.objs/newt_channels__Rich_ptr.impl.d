lib/channels/rich_ptr.ml: Format List
