lib/channels/rich_ptr.mli: Format
