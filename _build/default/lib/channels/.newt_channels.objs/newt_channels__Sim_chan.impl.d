lib/channels/sim_chan.ml: Option Queue
