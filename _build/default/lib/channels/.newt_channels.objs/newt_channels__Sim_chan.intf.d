lib/channels/sim_chan.mli:
