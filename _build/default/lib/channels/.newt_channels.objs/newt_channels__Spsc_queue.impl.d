lib/channels/spsc_queue.ml: Array Atomic
