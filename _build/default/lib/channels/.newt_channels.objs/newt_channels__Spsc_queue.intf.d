lib/channels/spsc_queue.mli:
