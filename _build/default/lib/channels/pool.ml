type t = {
  id : int;
  slot_size : int;
  data : Bytes.t array;
  gens : int array;
  free_list : int Stack.t;
  live : bool array;
}

exception Stale_pointer of Rich_ptr.t
exception Pool_exhausted

let id_counter = ref 0

let fresh_id () =
  incr id_counter;
  !id_counter

let create ~id ~slots ~slot_size =
  assert (slots > 0 && slot_size > 0);
  let free_list = Stack.create () in
  for i = slots - 1 downto 0 do
    Stack.push i free_list
  done;
  {
    id;
    slot_size;
    data = Array.init slots (fun _ -> Bytes.create slot_size);
    gens = Array.make slots 0;
    free_list;
    live = Array.make slots false;
  }

let id t = t.id
let slot_size t = t.slot_size
let total_slots t = Array.length t.data
let free_slots t = Stack.length t.free_list
let in_use t = total_slots t - free_slots t

let alloc t ~len =
  if len > t.slot_size then
    invalid_arg
      (Printf.sprintf "Pool.alloc: len %d exceeds slot size %d" len t.slot_size);
  match Stack.pop_opt t.free_list with
  | None -> raise Pool_exhausted
  | Some slot ->
      t.live.(slot) <- true;
      { Rich_ptr.pool = t.id; slot; off = 0; len; gen = t.gens.(slot) }

let check t (p : Rich_ptr.t) =
  if
    p.Rich_ptr.pool <> t.id
    || p.Rich_ptr.slot < 0
    || p.Rich_ptr.slot >= Array.length t.data
    || (not t.live.(p.Rich_ptr.slot))
    || t.gens.(p.Rich_ptr.slot) <> p.Rich_ptr.gen
  then raise (Stale_pointer p)

let live t (p : Rich_ptr.t) =
  p.Rich_ptr.pool = t.id
  && p.Rich_ptr.slot >= 0
  && p.Rich_ptr.slot < Array.length t.data
  && t.live.(p.Rich_ptr.slot)
  && t.gens.(p.Rich_ptr.slot) = p.Rich_ptr.gen

let write t p ~src ~src_off =
  check t p;
  Bytes.blit src src_off t.data.(p.Rich_ptr.slot) p.Rich_ptr.off p.Rich_ptr.len

let sub_ptr (p : Rich_ptr.t) ~off ~len =
  if off < 0 || len < 0 || off + len > p.Rich_ptr.len then
    invalid_arg "Pool.sub_ptr: out of chunk bounds";
  { p with Rich_ptr.off = p.Rich_ptr.off + off; len }

let read t p =
  check t p;
  Bytes.sub t.data.(p.Rich_ptr.slot) p.Rich_ptr.off p.Rich_ptr.len

let blit t p ~dst ~dst_off =
  check t p;
  Bytes.blit t.data.(p.Rich_ptr.slot) p.Rich_ptr.off dst dst_off p.Rich_ptr.len

let free t p =
  check t p;
  let slot = p.Rich_ptr.slot in
  t.live.(slot) <- false;
  t.gens.(slot) <- t.gens.(slot) + 1;
  Stack.push slot t.free_list

let free_all t =
  Stack.clear t.free_list;
  for i = Array.length t.data - 1 downto 0 do
    if t.live.(i) then begin
      t.live.(i) <- false;
      t.gens.(i) <- t.gens.(i) + 1
    end;
    Stack.push i t.free_list
  done
