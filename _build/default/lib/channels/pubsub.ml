type publication = { key : string; creator : int; chan_id : int }

type event = [ `Published of publication | `Gone ]

type t = {
  published : (string, publication) Hashtbl.t;
  subscribers : (string, (event -> unit) list ref) Hashtbl.t;
}

let create () = { published = Hashtbl.create 32; subscribers = Hashtbl.create 32 }

let subs t key =
  match Hashtbl.find_opt t.subscribers key with
  | Some l -> !l
  | None -> []

let publish t ~key ~creator ~chan_id =
  let pub = { key; creator; chan_id } in
  Hashtbl.replace t.published key pub;
  List.iter (fun f -> f (`Published pub)) (subs t key)

let unpublish t ~key =
  if Hashtbl.mem t.published key then begin
    Hashtbl.remove t.published key;
    List.iter (fun f -> f `Gone) (subs t key)
  end

let lookup t ~key = Hashtbl.find_opt t.published key

let subscribe t ~key f =
  let l =
    match Hashtbl.find_opt t.subscribers key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.subscribers key l;
        l
  in
  l := !l @ [ f ];
  match Hashtbl.find_opt t.published key with
  | Some pub -> f (`Published pub)
  | None -> ()

let unsubscribe_all t ~key = Hashtbl.remove t.subscribers key
