type t = { pools : (int, Pool.t) Hashtbl.t }

exception Unknown_pool of int

let create () = { pools = Hashtbl.create 16 }
let register t pool = Hashtbl.replace t.pools (Pool.id pool) pool
let unregister t ~id = Hashtbl.remove t.pools id

let find t id =
  match Hashtbl.find_opt t.pools id with
  | Some p -> p
  | None -> raise (Unknown_pool id)

let read t (ptr : Rich_ptr.t) = Pool.read (find t ptr.Rich_ptr.pool) ptr

let gather t chain =
  let total = Rich_ptr.chain_len chain in
  let out = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun (ptr : Rich_ptr.t) ->
      Pool.blit (find t ptr.Rich_ptr.pool) ptr ~dst:out ~dst_off:!off;
      off := !off + ptr.Rich_ptr.len)
    chain;
  out

let chain_live t chain =
  List.for_all
    (fun (ptr : Rich_ptr.t) ->
      match Hashtbl.find_opt t.pools ptr.Rich_ptr.pool with
      | Some pool -> Pool.live pool ptr
      | None -> false)
    chain
