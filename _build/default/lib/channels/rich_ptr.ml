type t = { pool : int; slot : int; off : int; len : int; gen : int }
type chain = t list

let chain_len chain = List.fold_left (fun acc p -> acc + p.len) 0 chain

let pp ppf p =
  Format.fprintf ppf "pool%d[%d.%d +%d @%d]" p.pool p.slot p.gen p.off p.len

let equal a b =
  a.pool = b.pool && a.slot = b.slot && a.off = b.off && a.len = b.len
  && a.gen = b.gen
