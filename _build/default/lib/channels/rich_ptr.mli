(** Rich pointers.

    A rich pointer names a chunk of data inside a shared pool: which
    pool, which slot, at what offset, and how long (Section IV). It also
    carries the slot's generation number so that stale references — e.g.
    a request resubmitted after a crash racing with a free — are detected
    instead of silently reading reused memory. Packets travel through
    the stack as {e chains} of rich pointers (Section V-C). *)

type t = {
  pool : int;  (** Pool identifier (unique per machine). *)
  slot : int;  (** Slot index within the pool. *)
  off : int;  (** Byte offset of the chunk within the slot. *)
  len : int;  (** Chunk length in bytes. *)
  gen : int;  (** Slot generation at allocation time. *)
}

type chain = t list
(** A packet as a chain of chunks, headers first. *)

val chain_len : chain -> int
(** Total byte length of a chain. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
