type 'a t = {
  id : int;
  capacity : int;
  q : 'a Queue.t;
  mutable notify : (unit -> unit) option;
  mutable down : bool;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(capacity = 512) ~id () =
  assert (capacity > 0);
  {
    id;
    capacity;
    q = Queue.create ();
    notify = None;
    down = false;
    sent = 0;
    dropped = 0;
  }

let id t = t.id
let capacity t = t.capacity

let send t x =
  if t.down || Queue.length t.q >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let was_empty = Queue.is_empty t.q in
    Queue.push x t.q;
    t.sent <- t.sent + 1;
    if was_empty then Option.iter (fun f -> f ()) t.notify;
    true
  end

let recv t = if t.down then None else Queue.take_opt t.q
let peek t = if t.down then None else Queue.peek_opt t.q
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let set_notify t f = t.notify <- Some f

let tear_down t =
  t.down <- true;
  Queue.clear t.q

let revive t =
  t.down <- false;
  Queue.clear t.q

let is_down t = t.down
let sent_total t = t.sent
let dropped_total t = t.dropped
