lib/core/experiments.mli: Newt_hw Newt_reliability Newt_sim
