lib/core/host.ml: Array List Newt_channels Newt_hw Newt_net Newt_nic Newt_pf Newt_reliability Newt_sim Newt_stack Printf
