lib/hw/costs.ml: Time
