lib/hw/costs.mli: Time
