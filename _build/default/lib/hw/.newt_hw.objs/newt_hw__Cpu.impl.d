lib/hw/cpu.ml: Costs Newt_sim Queue Time
