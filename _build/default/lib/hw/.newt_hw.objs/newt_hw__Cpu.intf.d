lib/hw/cpu.mli: Costs Newt_sim Time
