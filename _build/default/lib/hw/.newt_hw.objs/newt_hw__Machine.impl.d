lib/hw/machine.ml: Costs Cpu List Newt_sim
