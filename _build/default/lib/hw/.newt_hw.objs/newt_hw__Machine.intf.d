lib/hw/machine.mli: Costs Cpu Newt_sim
