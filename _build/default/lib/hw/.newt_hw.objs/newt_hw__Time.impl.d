lib/hw/time.ml: Newt_sim
