type t = {
  trap_hot : Time.cycles;
  trap_cold : Time.cycles;
  kipc_kernel_work : Time.cycles;
  context_switch : Time.cycles;
  cache_refill : Time.cycles;
  ipi_cost : Time.cycles;
  ipi_latency : Time.cycles;
  channel_enqueue : Time.cycles;
  channel_dequeue : Time.cycles;
  channel_marshal : Time.cycles;
  channel_demux : Time.cycles;
  cacheline_transfer : Time.cycles;
  mwait_wakeup : Time.cycles;
  poll_window : Time.cycles;
  copy_bytes_per_cycle : int;
  checksum_bytes_per_cycle : int;
  tcp_segment_work : Time.cycles;
  tcp_ack_work : Time.cycles;
  udp_segment_work : Time.cycles;
  ip_tx_work : Time.cycles;
  ip_rx_work : Time.cycles;
  header_adjust : Time.cycles;
  pf_base : Time.cycles;
  pf_rule_cost : Time.cycles;
  driver_packet_work : Time.cycles;
  confirm_batch : int;
  syscall_msg_size : int;
  mono_wire_packet_work : Time.cycles;
  lock_contention : Time.cycles;
}

let default =
  {
    trap_hot = 150;
    trap_cold = 3000;
    kipc_kernel_work = 600;
    context_switch = 2000;
    cache_refill = 15000;
    ipi_cost = 1500;
    ipi_latency = 1000;
    channel_enqueue = 30;
    channel_dequeue = 30;
    channel_marshal = 300;
    channel_demux = 250;
    cacheline_transfer = 120;
    mwait_wakeup = 2000;
    poll_window = 50_000;
    copy_bytes_per_cycle = 4;
    checksum_bytes_per_cycle = 4;
    tcp_segment_work = 4400;
    tcp_ack_work = 700;
    udp_segment_work = 1200;
    ip_tx_work = 250;
    ip_rx_work = 125;
    header_adjust = 50;
    pf_base = 200;
    pf_rule_cost = 15;
    driver_packet_work = 300;
    confirm_batch = 8;
    syscall_msg_size = 64;
    mono_wire_packet_work = 2300;
    lock_contention = 300;
  }

let copy_cost c bytes =
  assert (bytes >= 0);
  (bytes + c.copy_bytes_per_cycle - 1) / c.copy_bytes_per_cycle

let checksum_cost c bytes =
  assert (bytes >= 0);
  (bytes + c.checksum_bytes_per_cycle - 1) / c.checksum_bytes_per_cycle

let kipc_sendrec_cost c ~cold =
  let trap = if cold then c.trap_cold else c.trap_hot in
  (2 * trap) + c.kipc_kernel_work
