(** The cycle-cost model.

    All performance-relevant behaviour of the simulated machine is driven
    by this parameter record. The anchor values come from the paper's own
    micro-measurements on the 1.9 GHz Opteron 6168 testbed:

    - a void Linux SYSCALL costs ~150 cycles with hot caches and ~3000
      with cold caches (Section IV);
    - an asynchronous enqueue on a user-space channel between two cores
      costs ~30 cycles including the stall to fetch the updated pointer
      (Section IV);
    - kernel IPC across cores needs an interprocessor interrupt when the
      destination core idles (Section V-B).

    The remaining values (context switch, cache refill after a switch,
    per-byte copy throughput, MWAIT wake-up, per-layer protocol work) are
    conventional order-of-magnitude figures for that hardware generation,
    calibrated so that the capacity model reproduces the shape of the
    paper's Table II. Each is independently overridable for ablation. *)

type t = {
  trap_hot : Time.cycles;
      (** User/kernel mode switch with warm caches (SYSCALL, ~150). *)
  trap_cold : Time.cycles;
      (** Mode switch with cold caches/TLB/branch predictors (~3000). *)
  kipc_kernel_work : Time.cycles;
      (** Kernel-side work per kernel IPC message: validate, copy the
          fixed-size message, update process state. *)
  context_switch : Time.cycles;
      (** Direct cost of switching address spaces on a shared core. *)
  cache_refill : Time.cycles;
      (** Indirect cost a process pays after regaining a shared core:
          refilling caches/TLB evicted by its neighbours. *)
  ipi_cost : Time.cycles;
      (** Sender-side cost of an interprocessor interrupt. *)
  ipi_latency : Time.cycles;
      (** Delivery latency of an IPI to the destination core. *)
  channel_enqueue : Time.cycles;
      (** Raw asynchronous enqueue on a shared-memory SPSC queue (~30). *)
  channel_dequeue : Time.cycles;
      (** Raw dequeue from an SPSC queue on the consumer core. *)
  channel_marshal : Time.cycles;
      (** Producer-side software work per cross-domain request: building
          the request record, marshalling the rich-pointer chain and
          registering it (with its abort action) in the request database
          (Section IV). *)
  channel_demux : Time.cycles;
      (** Consumer-side software work per cross-domain message: operation
          code validation, rich-pointer translation, and reply matching
          against the request database. *)
  cacheline_transfer : Time.cycles;
      (** Stall for fetching a cache line dirtied by another core; paid by
          the consumer on each cross-core message. *)
  mwait_wakeup : Time.cycles;
      (** Kernel-mediated MWAIT wake-up: resume from halt plus restoring
          the user context (Section IV-B). *)
  poll_window : Time.cycles;
      (** How long an idle server polls its queues before halting the
          core; arrival gaps shorter than this incur no wake-up latency. *)
  copy_bytes_per_cycle : int;
      (** Memcpy throughput for message/payload copies. *)
  checksum_bytes_per_cycle : int;
      (** Software Internet-checksum throughput (when not offloaded). *)
  tcp_segment_work : Time.cycles;
      (** TCP work per outgoing segment: PCB lookup, sequence bookkeeping,
          header construction, retransmission-queue insert, timers. The
          lwIP-derived code of the paper is heavier than Linux's; the
          paper notes it "requires a complete overhaul". *)
  tcp_ack_work : Time.cycles;
      (** TCP work per incoming ACK: PCB lookup, cumulative-ACK
          processing, retransmission-queue trim, congestion update. *)
  udp_segment_work : Time.cycles;
      (** UDP work per datagram. *)
  ip_tx_work : Time.cycles;
      (** IP-layer work per outgoing packet: routing, header build. *)
  ip_rx_work : Time.cycles;
      (** IP-layer work per incoming packet: validation, demux. *)
  header_adjust : Time.cycles;
      (** IP's private copy of the transport header when it inserts the
          partial checksum (pools are immutable; Section V-C). *)
  pf_base : Time.cycles;
      (** Packet-filter fixed work per packet (state-table lookup). *)
  pf_rule_cost : Time.cycles;
      (** Packet-filter cost per ruleset entry traversed on a state
          miss. *)
  driver_packet_work : Time.cycles;
      (** Driver work per packet: fill a descriptor, advance the ring
          tail. The paper notes this is "extremely small". *)
  confirm_batch : int;
      (** How many TX completions an in-process ring scan handles per
          event. Cross-domain confirms are per-request messages (the
          zero-copy protocol "almost doubl[es] the amount of
          communication", Section V-C); an in-process IP layer instead
          frees this many buffers per completion event. *)
  syscall_msg_size : int;
      (** Size of a fixed kernel IPC message (bytes). *)
  mono_wire_packet_work : Time.cycles;
      (** Monolithic (Linux-like) in-kernel per-wire-packet overhead when
          offloads are on: softirq/NAPI share, skb management, qdisc,
          completion, and locking. Calibrated to the paper's measured
          8.4 Gbps on 10 GbE. *)
  lock_contention : Time.cycles;
      (** Additional per-packet serialization penalty in the monolithic
          model when several cores enter the stack concurrently. *)
}

val default : t
(** The calibrated model for the paper's testbed. *)

val copy_cost : t -> int -> Time.cycles
(** [copy_cost c bytes] is the duration of copying [bytes]. *)

val checksum_cost : t -> int -> Time.cycles
(** [checksum_cost c bytes] is the duration of software-checksumming
    [bytes]. *)

val kipc_sendrec_cost : t -> cold:bool -> Time.cycles
(** Cost on the caller's core of a synchronous kernel IPC round trip:
    two mode switches plus kernel message work. *)
