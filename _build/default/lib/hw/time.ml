(* Re-export the simulator's time module so that hardware interfaces can
   say [Time.cycles] without a long path. *)
include Newt_sim.Time
