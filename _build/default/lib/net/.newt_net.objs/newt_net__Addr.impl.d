lib/net/addr.ml: Array Char Format Hashtbl Int32 List Printf String
