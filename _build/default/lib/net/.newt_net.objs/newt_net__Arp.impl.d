lib/net/arp.ml: Addr Array Bytes Char Int32 List Map
