lib/net/arp.mli: Addr Bytes
