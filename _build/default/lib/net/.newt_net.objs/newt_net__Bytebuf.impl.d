lib/net/bytebuf.ml: Bytes
