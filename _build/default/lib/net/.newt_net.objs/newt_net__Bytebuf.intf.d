lib/net/bytebuf.mli: Bytes
