lib/net/dns.ml: Addr Buffer Bytes Char Fun Int32 List String
