lib/net/dns.mli: Addr Bytes
