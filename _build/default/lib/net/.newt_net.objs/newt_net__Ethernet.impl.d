lib/net/ethernet.ml: Addr Array Bytes Char
