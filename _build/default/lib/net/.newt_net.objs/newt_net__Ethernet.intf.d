lib/net/ethernet.mli: Addr Bytes
