lib/net/icmp.ml: Bytes Checksum Wire
