lib/net/ipv4.ml: Addr Bytes Checksum List Wire
