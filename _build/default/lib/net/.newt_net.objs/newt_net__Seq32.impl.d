lib/net/seq32.ml:
