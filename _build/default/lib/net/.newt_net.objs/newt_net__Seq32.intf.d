lib/net/seq32.mli:
