lib/net/tcp.ml: Addr Bytebuf Bytes Format Hashtbl List Newt_sim Printf Seq32 Tcp_wire
