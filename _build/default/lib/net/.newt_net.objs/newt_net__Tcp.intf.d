lib/net/tcp.mli: Addr Bytes Format Tcp_wire
