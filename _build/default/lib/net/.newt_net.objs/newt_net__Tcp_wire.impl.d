lib/net/tcp_wire.ml: Bytes Checksum Format List String Udp Wire
