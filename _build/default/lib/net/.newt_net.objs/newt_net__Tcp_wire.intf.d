lib/net/tcp_wire.mli: Addr Bytes Format
