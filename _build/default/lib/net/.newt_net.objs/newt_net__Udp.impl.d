lib/net/udp.ml: Bytes Checksum Wire
