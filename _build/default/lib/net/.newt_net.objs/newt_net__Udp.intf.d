lib/net/udp.mli: Addr Bytes Checksum
