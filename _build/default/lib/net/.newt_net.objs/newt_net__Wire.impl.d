lib/net/wire.ml: Addr Bytes Char Int32
