lib/net/wire.mli: Addr Bytes
