module Ipv4 = struct
  type t = int32

  let v a b c d =
    assert (a >= 0 && a < 256 && b >= 0 && b < 256);
    assert (c >= 0 && c < 256 && d >= 0 && d < 256);
    Int32.logor
      (Int32.shift_left (Int32.of_int a) 24)
      (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

  let of_int32 i = i
  let to_int32 t = t

  let octet t shift = Int32.to_int (Int32.shift_right_logical t shift) land 0xff

  let to_string t =
    Printf.sprintf "%d.%d.%d.%d" (octet t 24) (octet t 16) (octet t 8) (octet t 0)

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        match
          (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
        with
        | Some a, Some b, Some c, Some d
          when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256
          ->
            Some (v a b c d)
        | _ -> None)
    | _ -> None

  let pp ppf t = Format.pp_print_string ppf (to_string t)
  let equal = Int32.equal
  let compare = Int32.compare
  let hash t = Hashtbl.hash t
  let any = 0l
  let broadcast = 0xffffffffl

  let in_prefix ~prefix ~bits a =
    assert (bits >= 0 && bits <= 32);
    if bits = 0 then true
    else
      let mask = Int32.shift_left (-1l) (32 - bits) in
      Int32.equal (Int32.logand a mask) (Int32.logand prefix mask)
end

module Mac = struct
  type t = string (* 6 raw bytes *)

  let of_octets arr =
    assert (Array.length arr = 6);
    String.init 6 (fun i ->
        assert (arr.(i) >= 0 && arr.(i) < 256);
        Char.chr arr.(i))

  let to_octets t = Array.init 6 (fun i -> Char.code t.[i])
  let broadcast = String.make 6 '\xff'
  let equal = String.equal

  let to_string t =
    String.concat ":" (List.map (Printf.sprintf "%02x") (Array.to_list (to_octets t)))

  let pp ppf t = Format.pp_print_string ppf (to_string t)

  let of_index i =
    (* 02:xx:xx:xx:xx:xx — locally administered, unicast. *)
    of_octets
      [|
        0x02;
        (i lsr 24) land 0xff;
        (i lsr 16) land 0xff;
        (i lsr 8) land 0xff;
        i land 0xff;
        0x01;
      |]
end
