(** Network addresses: IPv4 and Ethernet MAC. *)

module Ipv4 : sig
  type t
  (** An IPv4 address. *)

  val v : int -> int -> int -> int -> t
  (** [v 10 0 0 1] is 10.0.0.1. Octets must be in [0, 255]. *)

  val of_int32 : int32 -> t
  val to_int32 : t -> int32

  val of_string : string -> t option
  (** Parse dotted-quad notation. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val any : t
  (** 0.0.0.0, the wildcard address. *)

  val broadcast : t
  (** 255.255.255.255. *)

  val in_prefix : prefix:t -> bits:int -> t -> bool
  (** [in_prefix ~prefix ~bits a] tests whether [a] falls inside the
      CIDR block [prefix/bits]. [bits] must be in [0, 32]. *)
end

module Mac : sig
  type t
  (** A 48-bit Ethernet address. *)

  val of_octets : int array -> t
  (** Six octets. *)

  val to_octets : t -> int array
  val broadcast : t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  val of_index : int -> t
  (** A deterministic locally-administered MAC for simulated NIC [i];
      convenient for building test topologies. *)
end
