type op = Request | Reply

type packet = {
  op : op;
  sender_mac : Addr.Mac.t;
  sender_ip : Addr.Ipv4.t;
  target_mac : Addr.Mac.t;
  target_ip : Addr.Ipv4.t;
}

let packet_size = 28

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let put_mac b off mac =
  let o = Addr.Mac.to_octets mac in
  for i = 0 to 5 do
    Bytes.set b (off + i) (Char.chr o.(i))
  done

let get_mac b off =
  Addr.Mac.of_octets (Array.init 6 (fun i -> Char.code (Bytes.get b (off + i))))

let put_ip b off ip =
  let v = Addr.Ipv4.to_int32 ip in
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v ((3 - i) * 8)) land 0xff))
  done

let get_ip b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Addr.Ipv4.of_int32
    (Int32.logor
       (Int32.shift_left (byte 0) 24)
       (Int32.logor
          (Int32.shift_left (byte 1) 16)
          (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3))))

let encode p =
  let b = Bytes.create packet_size in
  put_u16 b 0 1 (* htype ethernet *);
  put_u16 b 2 0x0800 (* ptype ipv4 *);
  Bytes.set b 4 '\006' (* hlen *);
  Bytes.set b 5 '\004' (* plen *);
  put_u16 b 6 (match p.op with Request -> 1 | Reply -> 2);
  put_mac b 8 p.sender_mac;
  put_ip b 14 p.sender_ip;
  put_mac b 18 p.target_mac;
  put_ip b 24 p.target_ip;
  b

let decode b =
  if Bytes.length b < packet_size then None
  else if get_u16 b 0 <> 1 || get_u16 b 2 <> 0x0800 then None
  else
    let op = match get_u16 b 6 with 1 -> Some Request | 2 -> Some Reply | _ -> None in
    match op with
    | None -> None
    | Some op ->
        Some
          {
            op;
            sender_mac = get_mac b 8;
            sender_ip = get_ip b 14;
            target_mac = get_mac b 18;
            target_ip = get_ip b 24;
          }

module Cache = struct
  module IpMap = Map.Make (struct
    type t = Addr.Ipv4.t

    let compare = Addr.Ipv4.compare
  end)

  type t = {
    my_mac : Addr.Mac.t;
    my_ip : Addr.Ipv4.t;
    max_pending : int;
    mutable entries : Addr.Mac.t IpMap.t;
    mutable waiting : (Addr.Mac.t -> unit) list IpMap.t;
  }

  let create ?(max_pending = 32) ~my_mac ~my_ip () =
    { my_mac; my_ip; max_pending; entries = IpMap.empty; waiting = IpMap.empty }

  let lookup t ip = IpMap.find_opt ip t.entries

  let insert t ip mac =
    t.entries <- IpMap.add ip mac t.entries;
    match IpMap.find_opt ip t.waiting with
    | None -> ()
    | Some callbacks ->
        t.waiting <- IpMap.remove ip t.waiting;
        List.iter (fun f -> f mac) (List.rev callbacks)

  let resolve t ip ~on_ready =
    match lookup t ip with
    | Some mac -> `Hit mac
    | None -> (
        match IpMap.find_opt ip t.waiting with
        | Some callbacks when List.length callbacks >= t.max_pending -> `Dropped
        | Some callbacks ->
            t.waiting <- IpMap.add ip (on_ready :: callbacks) t.waiting;
            `Wait
        | None ->
            t.waiting <- IpMap.add ip [ on_ready ] t.waiting;
            `Wait)

  let request_for t target_ip =
    {
      op = Request;
      sender_mac = t.my_mac;
      sender_ip = t.my_ip;
      target_mac = Addr.Mac.broadcast;
      target_ip;
    }

  let input t p =
    insert t p.sender_ip p.sender_mac;
    match p.op with
    | Request when Addr.Ipv4.equal p.target_ip t.my_ip ->
        Some
          {
            op = Reply;
            sender_mac = t.my_mac;
            sender_ip = t.my_ip;
            target_mac = p.sender_mac;
            target_ip = p.sender_ip;
          }
    | Request | Reply -> None

  let flush t =
    t.entries <- IpMap.empty;
    t.waiting <- IpMap.empty

  let size t = IpMap.cardinal t.entries
end
