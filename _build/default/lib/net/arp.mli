(** Address Resolution Protocol: wire format and a resolver cache.

    ARP is stateless from the recovery point of view (Section V, Table I:
    "ARP and ICMP are stateless") — a restarted IP server simply starts
    with a cold cache and re-resolves on demand. *)

type op = Request | Reply

type packet = {
  op : op;
  sender_mac : Addr.Mac.t;
  sender_ip : Addr.Ipv4.t;
  target_mac : Addr.Mac.t;
  target_ip : Addr.Ipv4.t;
}

val packet_size : int
(** 28 bytes for IPv4-over-Ethernet ARP. *)

val encode : packet -> Bytes.t
val decode : Bytes.t -> packet option

module Cache : sig
  (** A resolver with a pending queue: packets for an unresolved next
      hop wait (bounded) until the reply arrives. *)

  type t

  val create : ?max_pending:int -> my_mac:Addr.Mac.t -> my_ip:Addr.Ipv4.t -> unit -> t

  val lookup : t -> Addr.Ipv4.t -> Addr.Mac.t option

  val insert : t -> Addr.Ipv4.t -> Addr.Mac.t -> unit

  val resolve :
    t ->
    Addr.Ipv4.t ->
    on_ready:(Addr.Mac.t -> unit) ->
    [ `Hit of Addr.Mac.t | `Wait | `Dropped ]
  (** [`Hit mac]: already cached. [`Wait]: a request should go out (the
      caller sends it if this is the first waiter); [on_ready] fires when
      the reply arrives. [`Dropped]: too many waiters, caller drops. *)

  val input : t -> packet -> packet option
  (** Process a received ARP packet: learn the sender mapping, fire any
      waiting [on_ready] callbacks, and, for a request addressed to us,
      return the reply to transmit. *)

  val request_for : t -> Addr.Ipv4.t -> packet
  (** Build an ARP request for the given address. *)

  val flush : t -> unit
  (** Forget everything (restart). *)

  val size : t -> int
end
