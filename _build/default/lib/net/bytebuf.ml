type t = {
  data : Bytes.t;
  mutable head : int; (* read position *)
  mutable len : int;
}

let create ~capacity =
  assert (capacity > 0);
  { data = Bytes.create capacity; head = 0; len = 0 }

let capacity t = Bytes.length t.data
let length t = t.len
let available t = capacity t - t.len
let is_empty t = t.len = 0

let push t src ~off ~len =
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length src);
  let n = min len (available t) in
  let cap = capacity t in
  let tail = (t.head + t.len) mod cap in
  let first = min n (cap - tail) in
  Bytes.blit src off t.data tail first;
  if n > first then Bytes.blit src (off + first) t.data 0 (n - first);
  t.len <- t.len + n;
  n

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then invalid_arg "Bytebuf.peek";
  let cap = capacity t in
  let out = Bytes.create len in
  let start = (t.head + off) mod cap in
  let first = min len (cap - start) in
  Bytes.blit t.data start out 0 first;
  if len > first then Bytes.blit t.data 0 out first (len - first);
  out

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Bytebuf.drop";
  t.head <- (t.head + n) mod capacity t;
  t.len <- t.len - n

let pop t ~max =
  let n = min max t.len in
  let out = peek t ~off:0 ~len:n in
  drop t n;
  out

let clear t =
  t.head <- 0;
  t.len <- 0
