(** A bounded circular byte FIFO.

    Backs the TCP send buffer (where it doubles as the retransmission
    store: bytes stay until cumulatively acknowledged, and retransmission
    re-reads from the front) and the receive buffer (whose free space is
    the advertised window). *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val available : t -> int
(** Free space, in bytes. *)

val is_empty : t -> bool

val push : t -> Bytes.t -> off:int -> len:int -> int
(** Append up to [len] bytes; returns how many actually fit. *)

val peek : t -> off:int -> len:int -> Bytes.t
(** Copy [len] bytes starting [off] bytes from the front, without
    consuming. Raises [Invalid_argument] when the range exceeds the
    stored length. *)

val drop : t -> int -> unit
(** Discard exactly [n] bytes from the front. Raises [Invalid_argument]
    if fewer are stored. *)

val pop : t -> max:int -> Bytes.t
(** Remove and return up to [max] bytes from the front. *)

val clear : t -> unit
