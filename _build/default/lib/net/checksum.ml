type partial = int

let zero = 0

let add_bytes acc b ~off ~len =
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length b);
  let acc = ref acc in
  let i = ref off in
  let stop = off + len - 1 in
  while !i < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then acc := !acc + (Char.code (Bytes.get b (off + len - 1)) lsl 8);
  !acc

let add_int16 acc v = acc + (v land 0xffff)

let fold acc =
  let folded = ref acc in
  while !folded lsr 16 <> 0 do
    folded := (!folded land 0xffff) + (!folded lsr 16)
  done;
  !folded

let finish acc =
  let folded = ref acc in
  while !folded lsr 16 <> 0 do
    folded := (!folded land 0xffff) + (!folded lsr 16)
  done;
  lnot !folded land 0xffff

let bytes b ~off ~len = finish (add_bytes zero b ~off ~len)

let valid b ~off ~len = bytes b ~off ~len = 0
