(** The Internet checksum (RFC 1071): 16-bit ones'-complement of the
    ones'-complement sum. Used by IPv4 headers, ICMP, UDP and TCP; the
    partial-sum interface supports the pseudo-header computation and the
    checksum offloading path where the transport layer leaves a partial
    checksum for the NIC (or IP server) to finalize. *)

type partial
(** An accumulating ones'-complement sum. *)

val zero : partial

val add_bytes : partial -> Bytes.t -> off:int -> len:int -> partial
(** Fold [len] bytes at [off] into the sum. An odd [len] is padded with
    a virtual zero byte, as the RFC specifies for the final octet. Odd
    lengths are therefore only correct for the {e last} region added. *)

val add_int16 : partial -> int -> partial
(** Fold one 16-bit big-endian word into the sum. *)

val finish : partial -> int
(** The checksum: complemented, folded 16-bit result. *)

val fold : partial -> int
(** The folded 16-bit sum {e without} complementing — what a transport
    layer stores in the checksum field when it leaves finalization to a
    checksum-offloading NIC. *)

val bytes : Bytes.t -> off:int -> len:int -> int
(** One-shot checksum over a byte region. *)

val valid : Bytes.t -> off:int -> len:int -> bool
(** A region containing its own checksum field sums to zero. *)
