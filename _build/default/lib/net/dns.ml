type question = { qname : string; qtype : int }
type answer = { name : string; ttl : int; addr : Addr.Ipv4.t }

type message = {
  id : int;
  is_response : bool;
  rcode : int;
  questions : question list;
  answers : answer list;
}

let query ~id qname =
  {
    id;
    is_response = false;
    rcode = 0;
    questions = [ { qname; qtype = 1 } ];
    answers = [];
  }

let response ~query:q addr =
  let answers, rcode =
    match (addr, q.questions) with
    | Some a, { qname; _ } :: _ -> ([ { name = qname; ttl = 300; addr = a } ], 0)
    | Some _, [] -> ([], 3)
    | None, _ -> ([], 3)
  in
  { id = q.id; is_response = true; rcode; questions = q.questions; answers }

let encode_name buf name =
  (* "www.vu.nl" -> 3www2vu2nl0 *)
  List.iter
    (fun label ->
      let n = String.length label in
      if n > 0 && n < 64 then begin
        Buffer.add_char buf (Char.chr n);
        Buffer.add_string buf label
      end)
    (String.split_on_char '.' name);
  Buffer.add_char buf '\000'

let encode m =
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  u16 m.id;
  (* flags: QR, RD=1, RA (responses), rcode. *)
  let flags =
    (if m.is_response then 0x8000 else 0)
    lor 0x0100
    lor (if m.is_response then 0x0080 else 0)
    lor (m.rcode land 0xf)
  in
  u16 flags;
  u16 (List.length m.questions);
  u16 (List.length m.answers);
  u16 0 (* authority *);
  u16 0 (* additional *);
  List.iter
    (fun q ->
      encode_name buf q.qname;
      u16 q.qtype;
      u16 1 (* IN *))
    m.questions;
  List.iter
    (fun a ->
      encode_name buf a.name;
      u16 1 (* A *);
      u16 1 (* IN *);
      u16 ((a.ttl lsr 16) land 0xffff);
      u16 (a.ttl land 0xffff);
      u16 4 (* rdlength *);
      let v = Int32.to_int (Addr.Ipv4.to_int32 a.addr) land 0xffffffff in
      u16 ((v lsr 16) land 0xffff);
      u16 (v land 0xffff))
    m.answers;
  Buffer.to_bytes buf

exception Malformed

let decode b =
  let len = Bytes.length b in
  let pos = ref 0 in
  let u8 () =
    if !pos >= len then raise Malformed;
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u16 () =
    let hi = u8 () in
    let lo = u8 () in
    (hi lsl 8) lor lo
  in
  let name () =
    let labels = ref [] in
    let rec go () =
      let n = u8 () in
      if n = 0 then ()
      else if n >= 64 then raise Malformed (* compression unsupported *)
      else begin
        if !pos + n > len then raise Malformed;
        labels := Bytes.sub_string b !pos n :: !labels;
        pos := !pos + n;
        go ()
      end
    in
    go ();
    String.concat "." (List.rev !labels)
  in
  match
    let id = u16 () in
    let flags = u16 () in
    let qd = u16 () in
    let an = u16 () in
    let _ns = u16 () in
    let _ar = u16 () in
    if qd > 8 || an > 8 then raise Malformed;
    (* The parser is stateful: build each list left to right
       explicitly. *)
    let read_list n f =
      let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc) in
      go 0 []
    in
    let questions =
      read_list qd (fun () ->
          let qname = name () in
          let qtype = u16 () in
          let _qclass = u16 () in
          { qname; qtype })
    in
    let answers =
      read_list an (fun () ->
          let n = name () in
          let rtype = u16 () in
          let _rclass = u16 () in
          (* Bind each half: argument evaluation order is unspecified. *)
          let ttl_hi = u16 () in
          let ttl_lo = u16 () in
          let ttl = (ttl_hi lsl 16) lor ttl_lo in
          let rdlen = u16 () in
          if rtype = 1 && rdlen = 4 then begin
            let a_hi = u16 () in
            let a_lo = u16 () in
            let v = (a_hi lsl 16) lor a_lo in
            Some { name = n; ttl; addr = Addr.Ipv4.of_int32 (Int32.of_int v) }
          end
          else begin
            if !pos + rdlen > len then raise Malformed;
            pos := !pos + rdlen;
            None
          end)
    in
    {
      id;
      is_response = flags land 0x8000 <> 0;
      rcode = flags land 0xf;
      questions;
      answers = List.filter_map Fun.id answers;
    }
  with
  | m -> Some m
  | exception Malformed -> None
