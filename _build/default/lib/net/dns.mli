(** A DNS message codec (queries and A-record responses).

    The fault-injection campaign's workload includes "periodic DNS
    queries" against a remote resolver (Section VI-B); this module
    gives that traffic the real wire format (RFC 1035 header, QNAME
    label encoding, IN/A question, A answers) so the resolver
    application and the remote server exchange packets Wireshark would
    parse. Compression pointers are not emitted and not accepted —
    answers repeat the question name, as simple servers do. *)

type question = { qname : string; qtype : int }
(** [qtype] 1 = A. *)

type answer = { name : string; ttl : int; addr : Addr.Ipv4.t }

type message = {
  id : int;
  is_response : bool;
  rcode : int;  (** 0 = NoError, 3 = NXDomain. *)
  questions : question list;
  answers : answer list;
}

val query : id:int -> string -> message
(** A standard recursive A query. *)

val response : query:message -> Addr.Ipv4.t option -> message
(** Answer a query: an A record, or NXDomain when [None]. *)

val encode : message -> Bytes.t

val decode : Bytes.t -> message option
(** [None] on truncated or malformed messages (bad label lengths,
    counts pointing past the end, ...). *)
