type ethertype = Ipv4 | Arp | Unknown of int

type header = { dst : Addr.Mac.t; src : Addr.Mac.t; ethertype : ethertype }

let header_size = 14

let ethertype_code = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Unknown c -> c

let ethertype_of_code = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | c -> Unknown c

let put_mac b off mac =
  let o = Addr.Mac.to_octets mac in
  for i = 0 to 5 do
    Bytes.set b (off + i) (Char.chr o.(i))
  done

let get_mac b off = Addr.Mac.of_octets (Array.init 6 (fun i -> Char.code (Bytes.get b (off + i))))

let encode_header h b ~off =
  put_mac b off h.dst;
  put_mac b (off + 6) h.src;
  let code = ethertype_code h.ethertype in
  Bytes.set b (off + 12) (Char.chr (code lsr 8));
  Bytes.set b (off + 13) (Char.chr (code land 0xff))

let decode_header b ~off =
  if Bytes.length b - off < header_size then None
  else
    let dst = get_mac b off in
    let src = get_mac b (off + 6) in
    let code = (Char.code (Bytes.get b (off + 12)) lsl 8) lor Char.code (Bytes.get b (off + 13)) in
    Some { dst; src; ethertype = ethertype_of_code code }

let frame h ~payload =
  let b = Bytes.create (header_size + Bytes.length payload) in
  encode_header h b ~off:0;
  Bytes.blit payload 0 b header_size (Bytes.length payload);
  b

let payload b =
  if Bytes.length b < header_size then None
  else Some (Bytes.sub b header_size (Bytes.length b - header_size))
