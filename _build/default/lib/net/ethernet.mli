(** Ethernet II framing. *)

type ethertype = Ipv4 | Arp | Unknown of int

type header = {
  dst : Addr.Mac.t;
  src : Addr.Mac.t;
  ethertype : ethertype;
}

val header_size : int
(** 14 bytes: two MACs and the ethertype. *)

val ethertype_code : ethertype -> int

val encode_header : header -> Bytes.t -> off:int -> unit
(** Write the 14-byte header at [off]. *)

val decode_header : Bytes.t -> off:int -> header option
(** [None] when the buffer is too short. *)

val frame : header -> payload:Bytes.t -> Bytes.t
(** A complete frame: header followed by [payload]. *)

val payload : Bytes.t -> Bytes.t option
(** The bytes after the header, or [None] for a runt frame. *)
