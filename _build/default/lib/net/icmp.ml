type message =
  | Echo_request of { ident : int; seq : int; data : Bytes.t }
  | Echo_reply of { ident : int; seq : int; data : Bytes.t }
  | Dest_unreachable of { code : int }

let max_echo_payload = 65000

let encode m =
  let type_, code, rest_of_header, data =
    match m with
    | Echo_request { ident; seq; data } -> (8, 0, (ident lsl 16) lor seq, data)
    | Echo_reply { ident; seq; data } -> (0, 0, (ident lsl 16) lor seq, data)
    | Dest_unreachable { code } -> (3, code, 0, Bytes.empty)
  in
  let b = Bytes.create (8 + Bytes.length data) in
  Wire.put_u8 b 0 type_;
  Wire.put_u8 b 1 code;
  Wire.put_u16 b 2 0 (* checksum placeholder *);
  Wire.put_u32 b 4 rest_of_header;
  Bytes.blit data 0 b 8 (Bytes.length data);
  Wire.put_u16 b 2 (Checksum.bytes b ~off:0 ~len:(Bytes.length b));
  b

let decode b =
  if Bytes.length b < 8 then None
  else if not (Checksum.valid b ~off:0 ~len:(Bytes.length b)) then None
  else
    let data_len = Bytes.length b - 8 in
    let ident = Wire.get_u16 b 4 and seq = Wire.get_u16 b 6 in
    match Wire.get_u8 b 0 with
    | 8 when data_len <= max_echo_payload ->
        Some (Echo_request { ident; seq; data = Bytes.sub b 8 data_len })
    | 0 when data_len <= max_echo_payload ->
        Some (Echo_reply { ident; seq; data = Bytes.sub b 8 data_len })
    | 3 -> Some (Dest_unreachable { code = Wire.get_u8 b 1 })
    | _ -> None

let reply_to = function
  | Echo_request { ident; seq; data } -> Some (Echo_reply { ident; seq; data })
  | Echo_reply _ | Dest_unreachable _ -> None
