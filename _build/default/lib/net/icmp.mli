(** ICMP echo (ping) and destination-unreachable messages.

    The decoder enforces a maximum sane payload so that an oversized,
    fragmented "ping of death" style datagram (Section V: the stack
    "survives attacks similar to the famous ping of death") is rejected
    at the protocol layer instead of overflowing a reassembly buffer. *)

type message =
  | Echo_request of { ident : int; seq : int; data : Bytes.t }
  | Echo_reply of { ident : int; seq : int; data : Bytes.t }
  | Dest_unreachable of { code : int }

val max_echo_payload : int
(** Largest echo payload [decode] accepts (the classic ping-of-death
    datagram claims more than an IP packet can carry). *)

val encode : message -> Bytes.t
(** With a correct ICMP checksum. *)

val decode : Bytes.t -> message option
(** [None] on truncation, bad checksum, unknown type, or an oversized
    echo payload. *)

val reply_to : message -> message option
(** The echo reply answering an echo request, if the message is one. *)
