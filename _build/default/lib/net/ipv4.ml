type protocol = Icmp | Tcp | Udp | Unknown of int

let protocol_code = function Icmp -> 1 | Tcp -> 6 | Udp -> 17 | Unknown c -> c

let protocol_of_code = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | c -> Unknown c

type header = {
  src : Addr.Ipv4.t;
  dst : Addr.Ipv4.t;
  protocol : protocol;
  ttl : int;
  ident : int;
  total_len : int;
}

let header_size = 20

let encode_header h b ~off =
  Wire.put_u8 b off 0x45 (* version 4, ihl 5 *);
  Wire.put_u8 b (off + 1) 0 (* dscp/ecn *);
  Wire.put_u16 b (off + 2) h.total_len;
  Wire.put_u16 b (off + 4) h.ident;
  Wire.put_u16 b (off + 6) 0 (* flags/fragment: never fragmented *);
  Wire.put_u8 b (off + 8) h.ttl;
  Wire.put_u8 b (off + 9) (protocol_code h.protocol);
  Wire.put_u16 b (off + 10) 0 (* checksum placeholder *);
  Wire.put_ip b (off + 12) h.src;
  Wire.put_ip b (off + 16) h.dst;
  let csum = Checksum.bytes b ~off ~len:header_size in
  Wire.put_u16 b (off + 10) csum

let decode_header b ~off =
  if Bytes.length b - off < header_size then None
  else if Wire.get_u8 b off <> 0x45 then None
  else if not (Checksum.valid b ~off ~len:header_size) then None
  else
    Some
      {
        total_len = Wire.get_u16 b (off + 2);
        ident = Wire.get_u16 b (off + 4);
        ttl = Wire.get_u8 b (off + 8);
        protocol = protocol_of_code (Wire.get_u8 b (off + 9));
        src = Wire.get_ip b (off + 12);
        dst = Wire.get_ip b (off + 16);
      }

let packet h ~payload =
  let total_len = header_size + Bytes.length payload in
  let b = Bytes.create total_len in
  encode_header { h with total_len } b ~off:0;
  Bytes.blit payload 0 b header_size (Bytes.length payload);
  b

let payload b =
  match decode_header b ~off:0 with
  | None -> None
  | Some h ->
      let len = min (Bytes.length b) h.total_len - header_size in
      if len < 0 then None else Some (h, Bytes.sub b header_size len)

module Route = struct
  type entry = {
    prefix : Addr.Ipv4.t;
    bits : int;
    iface : int;
    gateway : Addr.Ipv4.t option;
  }

  type table = { mutable routes : entry list (* most specific first *) }

  let create () = { routes = [] }

  let add t e =
    assert (e.bits >= 0 && e.bits <= 32);
    let others =
      List.filter
        (fun r -> not (Addr.Ipv4.equal r.prefix e.prefix && r.bits = e.bits))
        t.routes
    in
    t.routes <- List.sort (fun a b -> compare b.bits a.bits) (e :: others)

  let remove t ~prefix ~bits =
    t.routes <-
      List.filter
        (fun r -> not (Addr.Ipv4.equal r.prefix prefix && r.bits = bits))
        t.routes

  let lookup t dst =
    List.find_opt (fun r -> Addr.Ipv4.in_prefix ~prefix:r.prefix ~bits:r.bits dst) t.routes

  let entries t = t.routes
  let clear t = t.routes <- []
end
