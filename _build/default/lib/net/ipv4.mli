(** IPv4: header codec and routing.

    The routing table is the IP server's only real state — "very limited
    (static) state, basically the routing information" (Table I) — which
    is why IP is the second-easiest component to restart: the
    configuration is saved to the storage server and restored on
    recovery. *)

type protocol = Icmp | Tcp | Udp | Unknown of int

val protocol_code : protocol -> int

type header = {
  src : Addr.Ipv4.t;
  dst : Addr.Ipv4.t;
  protocol : protocol;
  ttl : int;
  ident : int;
  total_len : int;  (** Header plus payload, bytes. *)
}

val header_size : int
(** 20 bytes; we never emit options. *)

val encode_header : header -> Bytes.t -> off:int -> unit
(** Write a 20-byte header with a correct header checksum. *)

val decode_header : Bytes.t -> off:int -> header option
(** [None] when truncated, not version 4, or the checksum is wrong. *)

val packet : header -> payload:Bytes.t -> Bytes.t
(** Assemble a full packet; [total_len] is taken from the payload. *)

val payload : Bytes.t -> (header * Bytes.t) option
(** Split a packet into a validated header and its payload. *)

(** The routing table: longest-prefix match over static routes. *)
module Route : sig
  type table

  type entry = {
    prefix : Addr.Ipv4.t;
    bits : int;
    iface : int;  (** Outgoing interface index. *)
    gateway : Addr.Ipv4.t option;
        (** Next hop; [None] means directly attached. *)
  }

  val create : unit -> table
  val add : table -> entry -> unit
  val remove : table -> prefix:Addr.Ipv4.t -> bits:int -> unit

  val lookup : table -> Addr.Ipv4.t -> entry option
  (** Longest-prefix match. *)

  val entries : table -> entry list
  (** All routes, most specific first — the serializable state a
      restarting IP server saves and restores. *)

  val clear : table -> unit
end
