type t = int

let modulus = 1 lsl 32
let norm s = s land (modulus - 1)
let add s n = norm (s + n)

let diff a b =
  let d = norm (a - b) in
  if d >= modulus / 2 then d - modulus else d

let lt a b = diff a b < 0
let le a b = diff a b <= 0
let gt a b = diff a b > 0
let ge a b = diff a b >= 0
let between s ~low ~high = le low s && lt s high
let max a b = if ge a b then a else b
