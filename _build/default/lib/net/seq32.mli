(** Modulo-2{^32} sequence-number arithmetic (RFC 793 comparisons). *)

type t = int
(** A sequence number, always normalized into [0, 2{^32}). *)

val norm : int -> t
(** Reduce an int modulo 2{^32}. *)

val add : t -> int -> t
(** [add s n] is [s + n] mod 2{^32}; [n] may be negative. *)

val diff : t -> t -> int
(** [diff a b] is the signed distance [a - b] interpreted in the half
    window: in [-2{^31}, 2{^31}). [diff a b > 0] iff [a] is after [b]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val between : t -> low:t -> high:t -> bool
(** [between s ~low ~high]: [low <= s < high] in sequence space. *)

val max : t -> t -> t
(** The later of two sequence numbers. *)
