type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

let flag_none = { syn = false; ack = false; fin = false; rst = false; psh = false }
let flag_syn = { flag_none with syn = true }
let flag_ack = { flag_none with ack = true }
let flag_syn_ack = { flag_none with syn = true; ack = true }
let flag_fin_ack = { flag_none with fin = true; ack = true }
let flag_rst = { flag_none with rst = true }

let pp_flags ppf f =
  let tags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ (f.syn, "SYN"); (f.ack, "ACK"); (f.fin, "FIN"); (f.rst, "RST"); (f.psh, "PSH") ]
  in
  Format.pp_print_string ppf (String.concat "|" (if tags = [] then [ "-" ] else tags))

type header = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : flags;
  window : int;
  mss : int option;
  wscale : int option;
}

let options_size h =
  let mss = match h.mss with Some _ -> 4 | None -> 0 in
  let ws = match h.wscale with Some _ -> 3 | None -> 0 in
  (mss + ws + 3) / 4 * 4

let header_size h = 20 + options_size h

let flags_byte f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_byte b =
  {
    fin = b land 1 <> 0;
    syn = b land 2 <> 0;
    rst = b land 4 <> 0;
    psh = b land 8 <> 0;
    ack = b land 16 <> 0;
  }

let encode ~src ~dst ?(partial_csum = false) h ~payload =
  let hsize = header_size h in
  let len = hsize + Bytes.length payload in
  let b = Bytes.create len in
  Wire.put_u16 b 0 h.src_port;
  Wire.put_u16 b 2 h.dst_port;
  Wire.put_u32 b 4 (h.seq land 0xffffffff);
  Wire.put_u32 b 8 (h.ack land 0xffffffff);
  Wire.put_u8 b 12 ((hsize / 4) lsl 4);
  Wire.put_u8 b 13 (flags_byte h.flags);
  Wire.put_u16 b 14 h.window;
  Wire.put_u16 b 16 0 (* checksum placeholder *);
  Wire.put_u16 b 18 0 (* urgent pointer *);
  let opt_off = ref 20 in
  (match h.mss with
  | Some mss ->
      Wire.put_u8 b !opt_off 2;
      Wire.put_u8 b (!opt_off + 1) 4;
      Wire.put_u16 b (!opt_off + 2) mss;
      opt_off := !opt_off + 4
  | None -> ());
  (match h.wscale with
  | Some ws ->
      Wire.put_u8 b !opt_off 3;
      Wire.put_u8 b (!opt_off + 1) 3;
      Wire.put_u8 b (!opt_off + 2) ws;
      opt_off := !opt_off + 3
  | None -> ());
  while !opt_off < hsize do
    Wire.put_u8 b !opt_off 1 (* NOP padding *);
    incr opt_off
  done;
  Bytes.blit payload 0 b hsize (Bytes.length payload);
  let pseudo = Udp.pseudo_header_sum ~src ~dst ~proto:6 ~len in
  if partial_csum then Wire.put_u16 b 16 (Checksum.fold pseudo)
  else Wire.put_u16 b 16 (Checksum.finish (Checksum.add_bytes pseudo b ~off:0 ~len));
  b

let finalize_csum b =
  let partial = Wire.get_u16 b 16 in
  Wire.put_u16 b 16 0;
  let sum =
    Checksum.finish
      (Checksum.add_bytes
         (Checksum.add_int16 Checksum.zero partial)
         b ~off:0 ~len:(Bytes.length b))
  in
  Wire.put_u16 b 16 sum

let decode_options b hsize =
  let mss = ref None and wscale = ref None in
  let off = ref 20 in
  (try
     while !off < hsize do
       match Wire.get_u8 b !off with
       | 0 -> raise Exit (* end of options *)
       | 1 -> incr off (* NOP *)
       | 2 when !off + 4 <= hsize ->
           mss := Some (Wire.get_u16 b (!off + 2));
           off := !off + 4
       | 3 when !off + 3 <= hsize ->
           wscale := Some (Wire.get_u8 b (!off + 2));
           off := !off + 3
       | _ ->
           (* Unknown option: skip by its length byte, bail on nonsense. *)
           if !off + 1 >= hsize then raise Exit
           else
             let l = Wire.get_u8 b (!off + 1) in
             if l < 2 then raise Exit else off := !off + l
     done
   with Exit -> ());
  (!mss, !wscale)

let decode ~src ~dst b =
  let len = Bytes.length b in
  if len < 20 then None
  else
    let pseudo = Udp.pseudo_header_sum ~src ~dst ~proto:6 ~len in
    if Checksum.finish (Checksum.add_bytes pseudo b ~off:0 ~len) <> 0 then None
    else
      let hsize = (Wire.get_u8 b 12 lsr 4) * 4 in
      if hsize < 20 || hsize > len then None
      else
        let mss, wscale = decode_options b hsize in
        Some
          ( {
              src_port = Wire.get_u16 b 0;
              dst_port = Wire.get_u16 b 2;
              seq = Wire.get_u32 b 4;
              ack = Wire.get_u32 b 8;
              flags = flags_of_byte (Wire.get_u8 b 13);
              window = Wire.get_u16 b 14;
              mss;
              wscale;
            },
            Bytes.sub b hsize (len - hsize) )
