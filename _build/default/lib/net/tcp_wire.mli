(** TCP segment wire format: header, MSS and window-scale options,
    pseudo-header checksum, and the partial-checksum variant used with
    checksum offloading. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

val flag_none : flags
val flag_syn : flags
val flag_ack : flags
val flag_syn_ack : flags
val flag_fin_ack : flags
val flag_rst : flags
val pp_flags : Format.formatter -> flags -> unit

type header = {
  src_port : int;
  dst_port : int;
  seq : int;  (** Unsigned 32-bit sequence number. *)
  ack : int;  (** Unsigned 32-bit acknowledgment number. *)
  flags : flags;
  window : int;  (** Unscaled 16-bit window field. *)
  mss : int option;  (** MSS option (SYN segments). *)
  wscale : int option;  (** Window-scale option (SYN segments). *)
}

val header_size : header -> int
(** 20 bytes plus any options, padded to a multiple of 4. *)

val encode :
  src:Addr.Ipv4.t ->
  dst:Addr.Ipv4.t ->
  ?partial_csum:bool ->
  header ->
  payload:Bytes.t ->
  Bytes.t
(** A complete TCP segment. With [~partial_csum:true] the checksum field
    holds the folded pseudo-header sum for an offloading NIC to
    finalize. *)

val finalize_csum : Bytes.t -> unit
(** Finish a partial checksum in place (the offload engine). *)

val decode :
  src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Bytes.t -> (header * Bytes.t) option
(** Validate the checksum and return header and payload. *)
