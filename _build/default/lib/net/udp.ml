type header = { src_port : int; dst_port : int }

let header_size = 8

let pseudo_header_sum ~src ~dst ~proto ~len =
  let b = Bytes.create 12 in
  Wire.put_ip b 0 src;
  Wire.put_ip b 4 dst;
  Wire.put_u8 b 8 0;
  Wire.put_u8 b 9 proto;
  Wire.put_u16 b 10 len;
  Checksum.add_bytes Checksum.zero b ~off:0 ~len:12

let build ~src ~dst h ~payload ~partial_only =
  let len = header_size + Bytes.length payload in
  let b = Bytes.create len in
  Wire.put_u16 b 0 h.src_port;
  Wire.put_u16 b 2 h.dst_port;
  Wire.put_u16 b 4 len;
  Wire.put_u16 b 6 0;
  Bytes.blit payload 0 b header_size (Bytes.length payload);
  let pseudo = pseudo_header_sum ~src ~dst ~proto:17 ~len in
  if partial_only then
    (* Store the folded pseudo-header sum (not complemented): the
       offload engine later adds the datagram bytes and complements. *)
    Wire.put_u16 b 6 (Checksum.fold pseudo)
  else begin
    let csum = Checksum.finish (Checksum.add_bytes pseudo b ~off:0 ~len) in
    (* An all-zero computed checksum is transmitted as 0xffff. *)
    Wire.put_u16 b 6 (if csum = 0 then 0xffff else csum)
  end;
  b

let encode ~src ~dst h ~payload = build ~src ~dst h ~payload ~partial_only:false

let encode_partial_csum ~src ~dst h ~payload =
  build ~src ~dst h ~payload ~partial_only:true

let finalize_csum b =
  let partial = Wire.get_u16 b 6 in
  Wire.put_u16 b 6 0;
  let csum =
    Checksum.finish (Checksum.add_bytes (Checksum.add_int16 Checksum.zero partial) b ~off:0 ~len:(Bytes.length b))
  in
  Wire.put_u16 b 6 (if csum = 0 then 0xffff else csum)

let decode ~src ~dst b =
  if Bytes.length b < header_size then None
  else
    let len = Wire.get_u16 b 4 in
    if len < header_size || len > Bytes.length b then None
    else
      let pseudo = pseudo_header_sum ~src ~dst ~proto:17 ~len in
      let sum = Checksum.finish (Checksum.add_bytes pseudo b ~off:0 ~len) in
      if sum <> 0 then None
      else
        Some
          ( { src_port = Wire.get_u16 b 0; dst_port = Wire.get_u16 b 2 },
            Bytes.sub b header_size (len - header_size) )
