(** UDP: datagram codec with the IPv4 pseudo-header checksum. *)

type header = { src_port : int; dst_port : int }

val header_size : int
(** 8 bytes. *)

val encode :
  src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> header -> payload:Bytes.t -> Bytes.t
(** A full UDP datagram (header + payload) with the pseudo-header
    checksum filled in. *)

val encode_partial_csum :
  src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> header -> payload:Bytes.t -> Bytes.t
(** Like {!encode} but the checksum field holds only the pseudo-header
    partial sum — the offload path: the NIC (or the IP server acting for
    hardware without offload) finalizes it. *)

val finalize_csum : Bytes.t -> unit
(** Complete a partial checksum left by {!encode_partial_csum}, folding
    the datagram bytes into the stored pseudo-header sum. *)

val decode :
  src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Bytes.t -> (header * Bytes.t) option
(** Validate the checksum and split header from payload. *)

val pseudo_header_sum :
  src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> proto:int -> len:int -> Checksum.partial
(** The IPv4 pseudo-header partial sum shared with TCP. *)
