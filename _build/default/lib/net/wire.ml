let put_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u8 b off = Char.code (Bytes.get b off)

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let put_u32 b off v =
  put_u16 b off ((v lsr 16) land 0xffff);
  put_u16 b (off + 2) (v land 0xffff)

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let put_ip b off ip =
  let v = Int32.to_int (Addr.Ipv4.to_int32 ip) land 0xffffffff in
  put_u32 b off v

let get_ip b off = Addr.Ipv4.of_int32 (Int32.of_int (get_u32 b off))
