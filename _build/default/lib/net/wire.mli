(** Big-endian byte accessors shared by the header codecs. *)

val put_u8 : Bytes.t -> int -> int -> unit
val get_u8 : Bytes.t -> int -> int
val put_u16 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val put_u32 : Bytes.t -> int -> int -> unit
(** Writes the low 32 bits of the int. *)

val get_u32 : Bytes.t -> int -> int
(** Reads an unsigned 32-bit value into a non-negative int. *)

val put_ip : Bytes.t -> int -> Addr.Ipv4.t -> unit
val get_ip : Bytes.t -> int -> Addr.Ipv4.t
