lib/nic/e1000.ml: Bytes Link List Newt_channels Newt_net Newt_sim Offload Queue Ring
