lib/nic/e1000.mli: Bytes Link Newt_channels Newt_net Newt_sim
