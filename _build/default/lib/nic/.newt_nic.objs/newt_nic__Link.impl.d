lib/nic/link.ml: Bytes List Newt_sim
