lib/nic/link.mli: Bytes Newt_sim
