lib/nic/offload.ml: Bytes List Newt_net
