lib/nic/offload.mli: Bytes
