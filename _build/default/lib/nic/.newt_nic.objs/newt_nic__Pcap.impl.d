lib/nic/pcap.ml: Buffer Bytes Char Fun Link List Newt_sim
