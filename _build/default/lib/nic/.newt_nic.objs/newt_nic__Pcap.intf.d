lib/nic/pcap.mli: Bytes Link Newt_sim
