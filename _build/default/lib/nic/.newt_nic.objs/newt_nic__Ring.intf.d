lib/nic/ring.mli:
