module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Registry = Newt_channels.Registry
module Rich_ptr = Newt_channels.Rich_ptr
module Addr = Newt_net.Addr

type tx_desc = {
  chain : Rich_ptr.chain;
  csum_offload : bool;
  tso : bool;
  tso_mss : int;
  tx_cookie : int;
}

type rx_desc = { buf : Rich_ptr.t; rx_cookie : int }
type rx_completion = { rx_buf : Rich_ptr.t; len : int; cookie : int }
type irq_reason = Rx_done | Tx_done | Link_change

let dummy_tx =
  { chain = []; csum_offload = false; tso = false; tso_mss = 0; tx_cookie = -1 }

let dummy_rx =
  { buf = { Rich_ptr.pool = -1; slot = -1; off = 0; len = 0; gen = -1 }; rx_cookie = -1 }

type t = {
  engine : Engine.t;
  registry : Registry.t;
  link : Link.t;
  side : Link.side;
  mac : Addr.Mac.t;
  tx_ring : tx_desc Ring.t;
  rx_ring : rx_desc Ring.t;
  irq_delay : Time.cycles;
  reset_time : Time.cycles;
  mutable irq_handler : irq_reason -> unit;
  mutable rx_writer : (Rich_ptr.t -> Bytes.t -> unit) option;
  mutable irq_scheduled : bool;
  mutable pending_irqs : irq_reason list;
  mutable tx_active : bool;
  mutable unsafe : bool;
  mutable misconfigured : bool;
  mutable link_admin_up : bool;
  rx_lens : int Queue.t;  (* frame lengths, in completion order *)
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable rx_no_buffer : int;
}

let raise_irq t reason =
  if not (List.mem reason t.pending_irqs) then
    t.pending_irqs <- reason :: t.pending_irqs;
  if not t.irq_scheduled then begin
    t.irq_scheduled <- true;
    ignore
      (Engine.schedule t.engine t.irq_delay (fun () ->
           t.irq_scheduled <- false;
           let irqs = List.rev t.pending_irqs in
           t.pending_irqs <- [];
           List.iter t.irq_handler irqs))
  end

let on_rx t frame =
  if (not t.unsafe) && not t.misconfigured then begin
    match Ring.device_take t.rx_ring with
    | None -> t.rx_no_buffer <- t.rx_no_buffer + 1
    | Some desc -> (
        match t.rx_writer with
        | None -> t.rx_no_buffer <- t.rx_no_buffer + 1
        | Some write ->
            write desc.buf frame;
            Queue.push (Bytes.length frame) t.rx_lens;
            t.rx_packets <- t.rx_packets + 1;
            Ring.device_complete t.rx_ring;
            raise_irq t Rx_done)
  end

let create engine ~registry ~link ~side ~mac ?(ring_size = 256) ?irq_delay
    ?reset_time () =
  let irq_delay =
    match irq_delay with Some d -> d | None -> Time.of_micros 10.0
  in
  let reset_time =
    match reset_time with Some r -> r | None -> Time.of_seconds 1.2
  in
  let t =
    {
      engine;
      registry;
      link;
      side;
      mac;
      tx_ring = Ring.create ~size:ring_size ~dummy:dummy_tx;
      rx_ring = Ring.create ~size:ring_size ~dummy:dummy_rx;
      irq_delay;
      reset_time;
      irq_handler = (fun _ -> ());
      rx_writer = None;
      irq_scheduled = false;
      pending_irqs = [];
      tx_active = false;
      unsafe = false;
      misconfigured = false;
      link_admin_up = true;
      rx_lens = Queue.create ();
      tx_packets = 0;
      rx_packets = 0;
      rx_no_buffer = 0;
    }
  in
  Link.attach link side (fun frame -> on_rx t frame);
  t

let mac t = t.mac
let set_irq_handler t f = t.irq_handler <- f
let set_rx_writer t f = t.rx_writer <- Some f

(* The TX engine: one descriptor at a time; a descriptor may expand to
   several wire frames under TSO. Frames refused by the link (queue
   full) are retried after roughly one frame time. *)
let rec tx_pump t =
  if t.unsafe || not t.link_admin_up then t.tx_active <- false
  else
    match Ring.device_take t.tx_ring with
    | None -> t.tx_active <- false
    | Some desc ->
        let frames =
          match Registry.gather t.registry desc.chain with
          | frame ->
              if desc.tso then Offload.tso_split frame ~mss:desc.tso_mss
              else begin
                if desc.csum_offload then ignore (Offload.finalize_l4_checksum frame);
                [ frame ]
              end
          | exception (Registry.Unknown_pool _ | Newt_channels.Pool.Stale_pointer _)
            ->
              (* The buffers died under the device (owner crash mid
                 flight): drop the frame, complete the descriptor. *)
              []
        in
        send_frames t desc frames

and send_frames t desc = function
  | [] ->
      Ring.device_complete t.tx_ring;
      raise_irq t Tx_done;
      tx_pump t
  | frame :: rest ->
      if Link.transmit t.link ~from:t.side frame then begin
        t.tx_packets <- t.tx_packets + 1;
        send_frames t desc rest
      end
      else begin
        (* Link queue full or down. If down, drop; if full, retry. *)
        if Link.is_up t.link then
          ignore
            (Engine.schedule t.engine (Time.of_micros 12.0) (fun () ->
                 send_frames t desc (frame :: rest)))
        else send_frames t desc rest
      end

let post_tx t desc = Ring.post t.tx_ring desc

let doorbell_tx t =
  if (not t.tx_active) && (not t.unsafe) && t.link_admin_up then begin
    t.tx_active <- true;
    tx_pump t
  end

let post_rx t desc = Ring.post t.rx_ring desc

let reap_tx t = Ring.reap t.tx_ring

let reap_rx t =
  match Ring.reap t.rx_ring with
  | None -> None
  | Some desc ->
      let len =
        match Queue.take_opt t.rx_lens with
        | Some l -> l
        | None -> desc.buf.Rich_ptr.len
      in
      Some { rx_buf = desc.buf; len; cookie = desc.rx_cookie }

let tx_ring_free t = Ring.free_slots t.tx_ring
let rx_ring_free t = Ring.free_slots t.rx_ring

let mark_unsafe t = t.unsafe <- true
let is_unsafe t = t.unsafe
let misconfigure t = t.misconfigured <- true

let reset t =
  ignore (Ring.clear t.tx_ring);
  ignore (Ring.clear t.rx_ring);
  Queue.clear t.rx_lens;
  t.tx_active <- false;
  t.unsafe <- false;
  t.misconfigured <- false;
  t.link_admin_up <- false;
  Link.set_up t.link false;
  ignore
    (Engine.schedule t.engine t.reset_time (fun () ->
         t.link_admin_up <- true;
         Link.set_up t.link true;
         raise_irq t Link_change))

let link_up t = t.link_admin_up && Link.is_up t.link
let tx_packets t = t.tx_packets
let rx_packets t = t.rx_packets
let rx_no_buffer t = t.rx_no_buffer
