(** An Intel PRO/1000-style gigabit Ethernet device model.

    The device owns a TX and an RX descriptor ring, performs
    scatter-gather DMA through the machine's pool {!Newt_channels.Registry},
    applies checksum offload and TSO on transmit, serializes frames onto
    a {!Link}, fills posted RX buffers on receive, and raises moderated
    interrupts.

    Recovery-relevant behaviour from the paper (Section V-D):
    - the adapter keeps shadow copies of the ring descriptors, so after
      the owner of the rings crashes the device {b must be reset} before
      new rings can be armed ({!mark_unsafe} / {!reset}); resetting takes
      the link down until auto-negotiation completes — the visible gap
      in Figure 4;
    - TX completions are reported per descriptor, and the driver reaps
      them so the IP server can free pool buffers only after the
      hardware is done with them. *)

type tx_desc = {
  chain : Newt_channels.Rich_ptr.chain;  (** The frame, as pool chunks. *)
  csum_offload : bool;
  tso : bool;
  tso_mss : int;
  tx_cookie : int;  (** Driver tag, returned on completion. *)
}

type rx_desc = {
  buf : Newt_channels.Rich_ptr.t;  (** Empty buffer to fill. *)
  rx_cookie : int;
}

type rx_completion = { rx_buf : Newt_channels.Rich_ptr.t; len : int; cookie : int }

type irq_reason = Rx_done | Tx_done | Link_change

type t

val create :
  Newt_sim.Engine.t ->
  registry:Newt_channels.Registry.t ->
  link:Link.t ->
  side:Link.side ->
  mac:Newt_net.Addr.Mac.t ->
  ?ring_size:int ->
  ?irq_delay:Newt_sim.Time.cycles ->
  ?reset_time:Newt_sim.Time.cycles ->
  unit ->
  t
(** Defaults: 256-descriptor rings, 10 us interrupt moderation, 1.2 s
    reset (link retraining) time. The device attaches itself to [side]
    of [link]. *)

val mac : t -> Newt_net.Addr.Mac.t

val set_irq_handler : t -> (irq_reason -> unit) -> unit
(** The wire to the kernel, which converts interrupts into messages for
    the driver (Section V-B). *)

val set_rx_writer : t -> (Newt_channels.Rich_ptr.t -> Bytes.t -> unit) -> unit
(** Install the DMA-write capability for RX buffers. The driver obtains
    it from the owner of the receive pool (the IP server). *)

(** {1 Driver-facing register interface} *)

val post_tx : t -> tx_desc -> bool
(** Write a TX descriptor; [false] when the ring is full. *)

val doorbell_tx : t -> unit
(** Advance the TX tail: the device starts (or continues) processing. *)

val post_rx : t -> rx_desc -> bool
(** Give the device an empty receive buffer. *)

val reap_tx : t -> tx_desc option
(** Collect one TX completion (the frame's buffers may now be freed). *)

val reap_rx : t -> rx_completion option
(** Collect one filled receive buffer. *)

val tx_ring_free : t -> int
val rx_ring_free : t -> int

(** {1 Faults and reset} *)

val mark_unsafe : t -> unit
(** The ring owner crashed: the device's shadow descriptor state is
    unreliable. Processing stops until {!reset}. *)

val is_unsafe : t -> bool

val misconfigure : t -> unit
(** A buggy driver programmed the device wrongly: it silently stops
    receiving (the fault-injection campaign's "significant slowdown but
    no crash" failure mode, Section VI-B). Cleared by {!reset}. *)

val reset : t -> unit
(** Full device reset: drops ring contents, takes the link down, and
    brings it back after the reset time. Raises a [Link_change]
    interrupt when the link returns. *)

val link_up : t -> bool

(** {1 Counters} *)

val tx_packets : t -> int
val rx_packets : t -> int
val rx_no_buffer : t -> int
(** Frames dropped because no RX descriptor was posted. *)
