module Engine = Newt_sim.Engine
module Time = Newt_sim.Time

type side = Left | Right

let other = function Left -> Right | Right -> Left

type direction = {
  mutable busy_until : Time.cycles;
  mutable queued : int;
  mutable tx_frames : int;
  mutable receiver : Bytes.t -> unit;
}

type t = {
  engine : Engine.t;
  cycles_per_byte : float;
  propagation : Time.cycles;
  queue_frames : int;
  left_to_right : direction;
  right_to_left : direction;
  mutable up : bool;
  mutable taps : (at:Time.cycles -> dir:side -> Bytes.t -> unit) list;
  mutable dropped : int;
  mutable bytes_carried : int;
  mutable epoch : int;
      (* Bumped when the link goes down: deliveries scheduled in an
         older epoch are suppressed (flushed queues). *)
}

let create engine ?(bandwidth_bps = 1_000_000_000) ?propagation ?(queue_frames = 256) () =
  let propagation =
    match propagation with Some p -> p | None -> Time.of_micros 2.0
  in
  let mk () =
    { busy_until = 0; queued = 0; tx_frames = 0; receiver = (fun _ -> ()) }
  in
  {
    engine;
    cycles_per_byte =
      float_of_int Time.cycles_per_second *. 8.0 /. float_of_int bandwidth_bps;
    propagation;
    queue_frames;
    left_to_right = mk ();
    right_to_left = mk ();
    up = true;
    taps = [];
    dropped = 0;
    bytes_carried = 0;
    epoch = 0;
  }

let dir t = function Left -> t.left_to_right | Right -> t.right_to_left

let attach t side receiver = (dir t (other side)).receiver <- receiver
(* [attach t Left f]: Left's receive callback serves the Right->Left
   direction. *)

let transmit t ~from frame =
  if not t.up then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let d = dir t from in
    if d.queued >= t.queue_frames then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      let now = Engine.now t.engine in
      let len = Bytes.length frame in
      let serialization =
        int_of_float (ceil (float_of_int len *. t.cycles_per_byte))
      in
      let start = max now d.busy_until in
      let done_at = start + serialization in
      d.busy_until <- done_at;
      d.queued <- d.queued + 1;
      let epoch = t.epoch in
      ignore
        (Engine.schedule_at t.engine (done_at + t.propagation) (fun () ->
             d.queued <- d.queued - 1;
             if t.up && epoch = t.epoch then begin
               d.tx_frames <- d.tx_frames + 1;
               t.bytes_carried <- t.bytes_carried + len;
               List.iter
                 (fun tap -> tap ~at:(Engine.now t.engine) ~dir:from frame)
                 t.taps;
               d.receiver frame
             end
             else t.dropped <- t.dropped + 1));
      true
    end
  end

let tap t f = t.taps <- t.taps @ [ f ]

let set_up t up =
  if t.up && not up then begin
    t.epoch <- t.epoch + 1;
    let now = Engine.now t.engine in
    t.left_to_right.busy_until <- now;
    t.right_to_left.busy_until <- now
  end;
  t.up <- up

let is_up t = t.up
let tx_frames t ~from = (dir t from).tx_frames
let dropped t = t.dropped
let bytes_carried t = t.bytes_carried
