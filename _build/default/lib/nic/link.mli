(** A full-duplex point-to-point Ethernet link.

    Each direction serializes frames at the link bandwidth (1 Gbps for
    the paper's Intel PRO/1000 ports) and delivers them after a small
    propagation delay. Frames offered while the transmit queue is full,
    or while the link is down (e.g. during the reset a crashed IP server
    forces on the device, Section V-D), are dropped — counted, exactly
    like a real wire. *)

type t

type side = Left | Right

val other : side -> side

val create :
  Newt_sim.Engine.t ->
  ?bandwidth_bps:int ->
  ?propagation:Newt_sim.Time.cycles ->
  ?queue_frames:int ->
  unit ->
  t
(** Defaults: 1 Gbps, 2 us propagation, 256-frame queue per direction
    (a typical NIC ring's worth of buffering). *)

val attach : t -> side -> (Bytes.t -> unit) -> unit
(** Install the receive callback of the endpoint on [side]. *)

val tap : t -> (at:Newt_sim.Time.cycles -> dir:side -> Bytes.t -> unit) -> unit
(** Install a passive monitor that sees every delivered frame with its
    delivery time and direction ([dir] = the transmitting side) — the
    tcpdump the paper used to capture the Figure 4 trace. Multiple taps
    stack. *)

val transmit : t -> from:side -> Bytes.t -> bool
(** Offer a frame for transmission; [false] (dropped) when down or the
    direction's queue is full. *)

val set_up : t -> bool -> unit
(** Bring the link administratively up or down. Going down flushes the
    in-flight queues. *)

val is_up : t -> bool

val tx_frames : t -> from:side -> int
(** Frames successfully serialized from [side]. *)

val dropped : t -> int
(** Frames dropped (down or queue overflow), both directions. *)

val bytes_carried : t -> int
(** Total payload bytes delivered, both directions. *)
