module Wire = Newt_net.Wire
module Checksum = Newt_net.Checksum
module Udp = Newt_net.Udp
module Addr = Newt_net.Addr

let eth_hdr = 14
let ip_hdr = 20
let l4_off = eth_hdr + ip_hdr

(* Frame must be Ethernet II / IPv4 without options for these engines;
   the stack we feed them from never emits IP options. *)
let is_ipv4 frame =
  Bytes.length frame >= l4_off
  && Wire.get_u16 frame 12 = 0x0800
  && Wire.get_u8 frame eth_hdr = 0x45

let ip_proto frame = Wire.get_u8 frame (eth_hdr + 9)

let l4_csum_offset frame =
  if not (is_ipv4 frame) then None
  else
    match ip_proto frame with
    | 6 when Bytes.length frame >= l4_off + 20 -> Some (l4_off + 16)
    | 17 when Bytes.length frame >= l4_off + 8 -> Some (l4_off + 6)
    | _ -> None

let l4_len frame = Wire.get_u16 frame (eth_hdr + 2) - ip_hdr

let pseudo_sum frame =
  let src = Wire.get_ip frame (eth_hdr + 12) in
  let dst = Wire.get_ip frame (eth_hdr + 16) in
  Udp.pseudo_header_sum ~src ~dst ~proto:(ip_proto frame) ~len:(l4_len frame)

let finalize_l4_checksum frame =
  match l4_csum_offset frame with
  | None -> false
  | Some csum_off ->
      let len = l4_len frame in
      if l4_off + len > Bytes.length frame then false
      else begin
        Wire.put_u16 frame csum_off 0;
        let sum =
          Checksum.finish
            (Checksum.add_bytes (pseudo_sum frame) frame ~off:l4_off ~len)
        in
        let sum = if ip_proto frame = 17 && sum = 0 then 0xffff else sum in
        Wire.put_u16 frame csum_off sum;
        true
      end

let tso_split frame ~mss =
  assert (mss > 0);
  let is_tcp = is_ipv4 frame && ip_proto frame = 6 in
  if not is_tcp then [ frame ]
  else begin
    let thl = (Wire.get_u8 frame (l4_off + 12) lsr 4) * 4 in
    let headers_len = l4_off + thl in
    let payload_len = Bytes.length frame - headers_len in
    if payload_len <= mss then begin
      ignore (finalize_l4_checksum frame);
      [ frame ]
    end
    else begin
      let base_seq = Wire.get_u32 frame (l4_off + 4) in
      let base_ident = Wire.get_u16 frame (eth_hdr + 4) in
      let flags = Wire.get_u8 frame (l4_off + 13) in
      let src = Wire.get_ip frame (eth_hdr + 12) in
      let dst = Wire.get_ip frame (eth_hdr + 16) in
      let pieces = (payload_len + mss - 1) / mss in
      List.init pieces (fun i ->
          let off = i * mss in
          let len = min mss (payload_len - off) in
          let last = i = pieces - 1 in
          let seg = Bytes.create (headers_len + len) in
          Bytes.blit frame 0 seg 0 headers_len;
          Bytes.blit frame (headers_len + off) seg headers_len len;
          (* IP header: length, ident, fresh checksum. *)
          Wire.put_u16 seg (eth_hdr + 2) (ip_hdr + thl + len);
          Wire.put_u16 seg (eth_hdr + 4) ((base_ident + i) land 0xffff);
          Wire.put_u16 seg (eth_hdr + 10) 0;
          Wire.put_u16 seg (eth_hdr + 10)
            (Checksum.bytes seg ~off:eth_hdr ~len:ip_hdr);
          (* TCP header: advanced seq; FIN/PSH only on the last piece. *)
          Wire.put_u32 seg (l4_off + 4) ((base_seq + off) land 0xffffffff);
          let seg_flags = if last then flags else flags land lnot 0x09 in
          Wire.put_u8 seg (l4_off + 13) seg_flags;
          (* Fresh TCP checksum over pseudo-header and segment. *)
          Wire.put_u16 seg (l4_off + 16) 0;
          let l4len = thl + len in
          let pseudo = Udp.pseudo_header_sum ~src ~dst ~proto:6 ~len:l4len in
          Wire.put_u16 seg (l4_off + 16)
            (Checksum.finish (Checksum.add_bytes pseudo seg ~off:l4_off ~len:l4len));
          seg)
    end
  end
