(** NIC offload engines: checksum finalization and TCP segmentation.

    These are the hardware features the paper's heavily-modified
    PRO/1000 driver exposes to lwIP (Section V-A): "virtually all
    gigabit network adapters provide checksum offloading and TCP
    segmentation offloading (TSO - NIC breaks one oversized TCP segment
    into small ones)". Both operate on complete Ethernet frames (as the
    device sees them after DMA gather). *)

val l4_csum_offset : Bytes.t -> int option
(** Byte offset of the TCP/UDP checksum field of an IPv4 frame, or
    [None] for frames without an offloadable L4 checksum. *)

val finalize_l4_checksum : Bytes.t -> bool
(** Complete, in place, a partial L4 checksum left by the transport
    layer ({!Newt_net.Tcp_wire.encode} with [~partial_csum:true]).
    Returns [false] when the frame is not IPv4 TCP/UDP. *)

val tso_split : Bytes.t -> mss:int -> Bytes.t list
(** Split an oversized IPv4/TCP frame into MTU-sized frames: sequence
    numbers advance, IP lengths/idents are rewritten, FIN/PSH are kept
    only on the last segment, and both checksums are recomputed per
    segment. A frame whose TCP payload already fits [mss] (or that is
    not TCP) is returned unchanged as a single element.

    The input frame's own L4 checksum may be partial; it is ignored and
    recomputed. *)
