module Time = Newt_sim.Time

type record = { at : Time.cycles; frame : Bytes.t }

type t = { snaplen : int; mutable records : record list (* newest first *) }

let create ?(snaplen = 65535) () = { snaplen; records = [] }

let record t ~at frame =
  let frame =
    if Bytes.length frame > t.snaplen then Bytes.sub frame 0 t.snaplen else frame
  in
  t.records <- { at; frame } :: t.records

let attach t link = Link.tap link (fun ~at ~dir:_ frame -> record t ~at frame)

let frames t = List.length t.records

(* Little-endian 32/16-bit writers (pcap magic 0xa1b2c3d4, LE file). *)
let le32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let le16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let to_bytes t =
  let buf = Buffer.create 4096 in
  (* Global header. *)
  le32 buf 0xa1b2c3d4 (* magic, microsecond timestamps *);
  le16 buf 2;
  le16 buf 4 (* version 2.4 *);
  le32 buf 0 (* thiszone *);
  le32 buf 0 (* sigfigs *);
  le32 buf t.snaplen;
  le32 buf 1 (* LINKTYPE_ETHERNET *);
  List.iter
    (fun r ->
      let us_total = int_of_float (Time.to_seconds r.at *. 1e6) in
      le32 buf (us_total / 1_000_000);
      le32 buf (us_total mod 1_000_000);
      le32 buf (Bytes.length r.frame);
      le32 buf (Bytes.length r.frame);
      Buffer.add_bytes buf r.frame)
    (List.rev t.records);
  Buffer.to_bytes buf

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes t))
