(** Pcap capture of simulated traffic.

    The paper's Figure 4 methodology: "We used tcpdump to capture the
    trace and Wireshark to analyze it. Using a single connection allows
    us to safely capture all packets to see all lost segments and
    retransmission." This module is that tcpdump: attach a capture to a
    {!Link} and every delivered frame is recorded with its simulated
    timestamp; {!save} writes a standard little-endian pcap file
    (linktype Ethernet) that real Wireshark opens. *)

type t

val create : ?snaplen:int -> unit -> t
(** An empty capture buffer (default snaplen 65535). *)

val attach : t -> Link.t -> unit
(** Start capturing a link (both directions). A capture may observe
    several links. *)

val record : t -> at:Newt_sim.Time.cycles -> Bytes.t -> unit
(** Record one frame by hand. *)

val frames : t -> int

val to_bytes : t -> Bytes.t
(** The complete pcap file image (global header + records). *)

val save : t -> path:string -> unit
(** Write the capture to disk. *)
