type 'a t = {
  arr : 'a array;
  size : int;
  mutable posted : int;  (* driver wrote a descriptor *)
  mutable taken : int;  (* device consumed it *)
  mutable completed : int;  (* device finished it *)
  mutable reaped : int;  (* driver collected the completion *)
}

let create ~size ~dummy =
  assert (size > 0);
  { arr = Array.make size dummy; size; posted = 0; taken = 0; completed = 0; reaped = 0 }

let size t = t.size
let free_slots t = t.size - (t.posted - t.reaped)
let pending t = t.posted - t.taken
let completed_unreaped t = t.completed - t.reaped

let post t v =
  if free_slots t = 0 then false
  else begin
    t.arr.(t.posted mod t.size) <- v;
    t.posted <- t.posted + 1;
    true
  end

let device_take t =
  if t.taken >= t.posted then None
  else begin
    let v = t.arr.(t.taken mod t.size) in
    t.taken <- t.taken + 1;
    Some v
  end

let device_complete t =
  assert (t.completed < t.taken);
  t.completed <- t.completed + 1

let reap t =
  if t.completed <= t.reaped then None
  else begin
    let v = t.arr.(t.reaped mod t.size) in
    t.reaped <- t.reaped + 1;
    Some v
  end

let clear t =
  let leftovers = ref [] in
  for i = t.posted - 1 downto t.reaped do
    leftovers := t.arr.(i mod t.size) :: !leftovers
  done;
  t.posted <- 0;
  t.taken <- 0;
  t.completed <- 0;
  t.reaped <- 0;
  !leftovers
