(** A NIC descriptor ring.

    The driver owns the tail (it writes descriptors and advances the
    tail to hand them to the hardware); the device owns the head (it
    consumes descriptors and marks them done). The same structure is
    used for TX (descriptor = frame to send) and RX (descriptor = empty
    buffer to fill).

    The paper's recovery problem lives here: "the Intel gigabit
    adapters do not have a knob to invalidate [their] shadow copies of
    the RX and TX descriptors", so a crash of the ring's owner forces a
    device reset (Section V-D). *)

type 'a t

val create : size:int -> dummy:'a -> 'a t
(** [size] descriptors, initially all free. [dummy] fills unused
    slots. *)

val size : 'a t -> int

val free_slots : 'a t -> int
(** Descriptors the driver can still post. *)

val pending : 'a t -> int
(** Descriptors posted but not yet consumed by the device. *)

val completed_unreaped : 'a t -> int
(** Descriptors the device finished that the driver has not reaped. *)

val post : 'a t -> 'a -> bool
(** Driver side: write a descriptor at the tail. [false] if full. *)

val device_take : 'a t -> 'a option
(** Device side: consume the next posted descriptor (it stays in the
    ring until reaped; this returns its payload and marks the slot as
    owned by the device). *)

val device_complete : 'a t -> unit
(** Device side: mark the oldest taken descriptor done. *)

val reap : 'a t -> 'a option
(** Driver side: collect the oldest done descriptor, freeing its slot. *)

val clear : 'a t -> 'a list
(** Drop all descriptors (device reset); returns the payloads that were
    still in the ring, in order, so the owner can account for them. *)
