lib/pf/conntrack.ml: Hashtbl List Newt_net Rule
