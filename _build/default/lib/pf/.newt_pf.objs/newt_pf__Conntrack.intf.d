lib/pf/conntrack.mli: Newt_net Rule
