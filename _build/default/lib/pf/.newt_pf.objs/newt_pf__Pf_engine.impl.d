lib/pf/pf_engine.ml: Bytes Conntrack List Newt_net Newt_sim Option Rule
