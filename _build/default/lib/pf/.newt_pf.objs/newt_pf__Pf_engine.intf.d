lib/pf/pf_engine.mli: Bytes Conntrack Newt_sim Rule
