lib/pf/rule.ml: Format Newt_net Printf
