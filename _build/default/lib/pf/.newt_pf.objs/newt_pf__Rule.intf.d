lib/pf/rule.mli: Format Newt_net
