module Addr = Newt_net.Addr

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Addr.Ipv4.t;
  local_port : int;
  remote_ip : Addr.Ipv4.t;
  remote_port : int;
}

type t = { table : (flow, unit) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let insert t flow = Hashtbl.replace t.table flow ()
let mem t flow = Hashtbl.mem t.table flow
let remove t flow = Hashtbl.remove t.table flow
let size t = Hashtbl.length t.table

let export t =
  Hashtbl.fold (fun f () acc -> f :: acc) t.table [] |> List.sort compare

let import t flows =
  Hashtbl.reset t.table;
  List.iter (insert t) flows

let clear t = Hashtbl.reset t.table

let flow_of_packet (p : Rule.packet) =
  let proto =
    match p.Rule.proto with
    | `Tcp -> Some Ct_tcp
    | `Udp -> Some Ct_udp
    | `Icmp | `Other -> None
  in
  match proto with
  | None -> None
  | Some proto -> (
      match p.Rule.dir with
      | `Out ->
          Some
            {
              proto;
              local_ip = p.Rule.src_ip;
              local_port = p.Rule.src_port;
              remote_ip = p.Rule.dst_ip;
              remote_port = p.Rule.dst_port;
            }
      | `In ->
          Some
            {
              proto;
              local_ip = p.Rule.dst_ip;
              local_port = p.Rule.dst_port;
              remote_ip = p.Rule.src_ip;
              remote_port = p.Rule.src_port;
            })
