(** Connection tracking: the packet filter's dynamic state.

    The paper calls this out as the interesting recovery case
    (Section V): the static ruleset is trivially restorable from the
    storage server, but "when a firewall blocks incoming traffic it must
    not stop data on established outgoing TCP connections after a
    restart" — so after a crash the filter rebuilds this table by
    querying the TCP and UDP servers ({!import}). *)

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Newt_net.Addr.Ipv4.t;
  local_port : int;
  remote_ip : Newt_net.Addr.Ipv4.t;
  remote_port : int;
}

type t

val create : unit -> t

val insert : t -> flow -> unit

val mem : t -> flow -> bool
(** Looks the flow up in both orientations: a tracked outgoing flow also
    admits its incoming replies. *)

val remove : t -> flow -> unit

val size : t -> int

val export : t -> flow list
(** All tracked flows (deterministic order). *)

val import : t -> flow list -> unit
(** Replace the table's contents — crash recovery from the transport
    servers' live state. *)

val clear : t -> unit

val flow_of_packet : Rule.packet -> flow option
(** The tracking key of a packet ([None] for untrackable protocols).
    Outgoing packets are keyed (src=local); incoming ones are flipped so
    both directions of a flow share one entry. *)
