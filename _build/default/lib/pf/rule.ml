module Addr = Newt_net.Addr

type action = Pass | Block
type direction = Dir_in | Dir_out | Dir_both
type proto_match = Any_proto | Match_tcp | Match_udp | Match_icmp

type addr_match = Any_addr | Net of { prefix : Addr.Ipv4.t; bits : int }
type port_match = Any_port | Port of int | Port_range of int * int

type t = {
  action : action;
  direction : direction;
  proto : proto_match;
  src : addr_match;
  src_port : port_match;
  dst : addr_match;
  dst_port : port_match;
  quick : bool;
  keep_state : bool;
}

let pass_all =
  {
    action = Pass;
    direction = Dir_both;
    proto = Any_proto;
    src = Any_addr;
    src_port = Any_port;
    dst = Any_addr;
    dst_port = Any_port;
    quick = true;
    keep_state = true;
  }

let block_all = { pass_all with action = Block; keep_state = false }

type packet = {
  dir : [ `In | `Out ];
  proto : [ `Tcp | `Udp | `Icmp | `Other ];
  src_ip : Addr.Ipv4.t;
  dst_ip : Addr.Ipv4.t;
  src_port : int;
  dst_port : int;
}

let dir_matches rule_dir pkt_dir =
  match (rule_dir, pkt_dir) with
  | Dir_both, _ -> true
  | Dir_in, `In -> true
  | Dir_out, `Out -> true
  | Dir_in, `Out | Dir_out, `In -> false

let proto_matches rule_proto pkt_proto =
  match (rule_proto, pkt_proto) with
  | Any_proto, _ -> true
  | Match_tcp, `Tcp -> true
  | Match_udp, `Udp -> true
  | Match_icmp, `Icmp -> true
  | (Match_tcp | Match_udp | Match_icmp), _ -> false

let addr_matches m a =
  match m with
  | Any_addr -> true
  | Net { prefix; bits } -> Addr.Ipv4.in_prefix ~prefix ~bits a

let port_matches m p =
  match m with
  | Any_port -> true
  | Port q -> p = q
  | Port_range (lo, hi) -> p >= lo && p <= hi

let matches r pkt =
  dir_matches r.direction pkt.dir
  && proto_matches r.proto pkt.proto
  && addr_matches r.src pkt.src_ip
  && port_matches r.src_port pkt.src_port
  && addr_matches r.dst pkt.dst_ip
  && port_matches r.dst_port pkt.dst_port

let pp ppf r =
  let action = match r.action with Pass -> "pass" | Block -> "block" in
  let dir =
    match r.direction with Dir_in -> "in" | Dir_out -> "out" | Dir_both -> "any"
  in
  let proto =
    match r.proto with
    | Any_proto -> "any"
    | Match_tcp -> "tcp"
    | Match_udp -> "udp"
    | Match_icmp -> "icmp"
  in
  let addr = function
    | Any_addr -> "any"
    | Net { prefix; bits } -> Printf.sprintf "%s/%d" (Addr.Ipv4.to_string prefix) bits
  in
  let port = function
    | Any_port -> ""
    | Port p -> Printf.sprintf " port %d" p
    | Port_range (lo, hi) -> Printf.sprintf " port %d:%d" lo hi
  in
  Format.fprintf ppf "%s%s %s proto %s from %s%s to %s%s%s" action
    (if r.quick then " quick" else "")
    dir proto (addr r.src) (port r.src_port) (addr r.dst) (port r.dst_port)
    (if r.keep_state then " keep state" else "")
