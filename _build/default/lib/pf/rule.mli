(** Packet-filter rules, in the style of NetBSD PF (the filter the
    paper isolates into its own server, Section V).

    Matching follows PF semantics: rules are evaluated in order and the
    {e last} matching rule decides, unless a matching rule is [quick],
    which ends evaluation immediately. A [keep_state] pass rule creates
    a connection-tracking entry so later packets of the flow bypass the
    ruleset. *)

type action = Pass | Block

type direction = Dir_in | Dir_out | Dir_both

type proto_match = Any_proto | Match_tcp | Match_udp | Match_icmp

type addr_match =
  | Any_addr
  | Net of { prefix : Newt_net.Addr.Ipv4.t; bits : int }

type port_match = Any_port | Port of int | Port_range of int * int

type t = {
  action : action;
  direction : direction;
  proto : proto_match;
  src : addr_match;
  src_port : port_match;
  dst : addr_match;
  dst_port : port_match;
  quick : bool;
  keep_state : bool;
}

val pass_all : t
(** [pass quick keep state from any to any]. *)

val block_all : t

type packet = {
  dir : [ `In | `Out ];
  proto : [ `Tcp | `Udp | `Icmp | `Other ];
  src_ip : Newt_net.Addr.Ipv4.t;
  dst_ip : Newt_net.Addr.Ipv4.t;
  src_port : int;  (** 0 when the protocol has no ports. *)
  dst_port : int;
}

val matches : t -> packet -> bool

val pp : Format.formatter -> t -> unit
