lib/reliability/fault_inject.ml: List Newt_sim
