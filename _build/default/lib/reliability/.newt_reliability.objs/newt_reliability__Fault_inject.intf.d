lib/reliability/fault_inject.mli: Newt_sim
