lib/reliability/reincarnation.ml: List Newt_hw Newt_sim Newt_stack
