lib/reliability/reincarnation.mli: Newt_hw Newt_sim Newt_stack
