lib/reliability/storage.ml: Hashtbl
