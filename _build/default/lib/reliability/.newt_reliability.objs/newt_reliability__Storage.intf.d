lib/reliability/storage.mli:
