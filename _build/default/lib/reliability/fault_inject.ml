module Rng = Newt_sim.Rng

type target = T_tcp | T_udp | T_ip | T_pf | T_drv of int

type effect_class =
  | Crash
  | Hang
  | Misconfigure_device
  | Broken_recovery
  | Sync_hang

type injection = { target : target; effect : effect_class }

let target_name = function
  | T_tcp -> "TCP"
  | T_udp -> "UDP"
  | T_ip -> "IP"
  | T_pf -> "PF"
  | T_drv _ -> "Driver"

let effect_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Misconfigure_device -> "device misconfiguration"
  | Broken_recovery -> "crash with broken recovery"
  | Sync_hang -> "hang in synchronous select path"

(* Table III: which component the run's crash lands in. *)
let component_weights = [ (25, `Tcp); (10, `Udp); (24, `Ip); (25, `Pf); (16, `Drv) ]

(* Per-component effect propensities, calibrated to Section VI-B:
   - 3 of 100 runs ended in hangs of the synchronous select path
     (reboot needed) — drawn uniformly over components;
   - 3 of 25 TCP crashes needed a manual restart to accept connections
     again; 1 IP and 1 driver case likewise;
   - 2 of the driver faults misconfigured the device (slowdown, no
     crash);
   - roughly a tenth of observable faults are hangs rather than
     crashes (caught by heartbeats). *)
let effect_weights ~target =
  let base = [ (84, Crash); (10, Hang); (3, Sync_hang) ] in
  match target with
  | `Tcp -> (12, Broken_recovery) :: base (* ~3 in 25 *)
  | `Ip -> (4, Broken_recovery) :: base (* ~1 in 24 *)
  | `Drv -> (6, Broken_recovery) :: (12, Misconfigure_device) :: base (* ~1 and ~2 in 16 *)
  | `Udp | `Pf -> base

let draw rng ~ndrv =
  assert (ndrv > 0);
  let component = Rng.weighted rng component_weights in
  let effect = Rng.weighted rng (effect_weights ~target:component) in
  let target =
    match component with
    | `Tcp -> T_tcp
    | `Udp -> T_udp
    | `Ip -> T_ip
    | `Pf -> T_pf
    | `Drv -> T_drv (Rng.int rng ndrv)
  in
  { target; effect }

let draw_many rng ~ndrv ~runs = List.init runs (fun _ -> draw rng ~ndrv)
