(** The fault-injection tool.

    The paper injects 100 random code mutations per run with the tool
    used for Rio, Nooks and the MINIX 3 driver-recovery work, and
    observes which component fails and how (Section VI-B). We inject at
    the behavioural level instead: a draw picks the component according
    to the crash distribution the paper reports (Table III — the
    propensities reflect each component's share of active code) and an
    effect class according to the failure modes the paper observed:

    - {e crash} — the dominant outcome; the reincarnation server
      restarts the component and recovery proceeds per Table I;
    - {e hang} — caught by heartbeats and reset;
    - {e device misconfiguration} (drivers only) — "a significant
      slowdown but no crash ... the problem disappeared after we
      manually restarted the driver, which reset the device";
    - {e broken recovery} — the automatic restart leaves the component
      dysfunctional and a manual restart is needed (the 3 TCP, 1 IP and
      1 driver cases of Section VI-B);
    - {e sync hang} — the fault propagates into the unconverted
      synchronous part of the system (the select/file-descriptor merge)
      and only a reboot helps (3 cases in the paper).

    The class propensities are calibrated to Section VI-B's counts and
    documented here; everything downstream of the draw — what actually
    breaks, what recovers, what the applications observe — is emergent
    from the simulated system. *)

type target = T_tcp | T_udp | T_ip | T_pf | T_drv of int

type effect_class =
  | Crash
  | Hang
  | Misconfigure_device  (** Drivers only. *)
  | Broken_recovery
  | Sync_hang

type injection = { target : target; effect : effect_class }

val target_name : target -> string
val effect_name : effect_class -> string

val draw : Newt_sim.Rng.t -> ndrv:int -> injection
(** One campaign run's observable failure: component by Table III
    weights (TCP 25, UDP 10, IP 24, PF 25, DRV 16), effect by the
    calibrated class propensities. [ndrv] spreads driver faults over
    the driver instances. *)

val draw_many : Newt_sim.Rng.t -> ndrv:int -> runs:int -> injection list
