module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Machine = Newt_hw.Machine
module Proc = Newt_stack.Proc

type watched = {
  proc : Proc.t;
  notify_crash : (unit -> unit) list;
  notify_restart : (unit -> unit) list;
  mutable restarting : bool;
  mutable restarts : int;
}

type t = {
  machine : Machine.t;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
  mutable watched : watched list;
  mutable total_restarts : int;
}

let create machine ?heartbeat_period ?restart_delay () =
  let heartbeat_period =
    match heartbeat_period with Some p -> p | None -> Time.of_seconds 0.1
  in
  let restart_delay =
    match restart_delay with Some d -> d | None -> Time.of_seconds 0.12
  in
  { machine; heartbeat_period; restart_delay; watched = []; total_restarts = 0 }

let watch t proc ?(notify_crash = []) ?(notify_restart = []) () =
  t.watched <-
    t.watched
    @ [ { proc; notify_crash; notify_restart; restarting = false; restarts = 0 } ]

let engine t = Machine.engine t.machine

let recover t w =
  if not w.restarting then begin
    w.restarting <- true;
    (* Neighbours learn about the death first: channels to the corpse
       are invalid, outstanding requests must be aborted. *)
    List.iter (fun f -> f ()) w.notify_crash;
    ignore
      (Engine.schedule (engine t) t.restart_delay (fun () ->
           w.restarting <- false;
           w.restarts <- w.restarts + 1;
           t.total_restarts <- t.total_restarts + 1;
           (* The new incarnation runs its own recovery procedure
              (restore state from storage, revive channels)... *)
           Proc.restart w.proc;
           (* ... and then the neighbours re-export, reattach and
              resubmit (Section IV-D). *)
           List.iter (fun f -> f ()) w.notify_restart))
  end

let kill t proc =
  match List.find_opt (fun w -> w.proc == proc) t.watched with
  | None -> ()
  | Some w ->
      if Proc.alive proc then Proc.crash proc;
      (* The parent receives the signal immediately. *)
      recover t w

let rec heartbeat_round t =
  ignore
    (Engine.schedule (engine t) t.heartbeat_period (fun () ->
         List.iter
           (fun w ->
             if not w.restarting then
               if not (Proc.alive w.proc) then
                 (* Died without us noticing (shouldn't happen — the
                    signal path handles it — but belt and braces). *)
                 recover t w
               else if not (Proc.responsive w.proc) then begin
                 (* Hung: no heartbeat reply. Reset it. *)
                 Proc.crash w.proc;
                 recover t w
               end)
           t.watched;
         heartbeat_round t))

let start t = heartbeat_round t

let restarts t = t.total_restarts

let restarts_of t proc =
  match List.find_opt (fun w -> w.proc == proc) t.watched with
  | Some w -> w.restarts
  | None -> 0

let alive_check t = List.for_all (fun w -> Proc.responsive w.proc) t.watched
