lib/sim/engine.ml: Eventq Rng Time
