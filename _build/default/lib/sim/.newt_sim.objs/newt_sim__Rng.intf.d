lib/sim/rng.mli:
