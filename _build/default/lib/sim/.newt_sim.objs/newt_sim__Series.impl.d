lib/sim/series.ml: Array Hashtbl Time
