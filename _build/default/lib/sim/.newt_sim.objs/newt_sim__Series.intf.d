lib/sim/series.mli: Time
