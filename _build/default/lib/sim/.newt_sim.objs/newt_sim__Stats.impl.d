lib/sim/stats.ml: Array Hashtbl List Stdlib String
