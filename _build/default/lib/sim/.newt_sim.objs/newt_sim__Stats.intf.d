lib/sim/stats.mli:
