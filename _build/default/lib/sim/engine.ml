type handle = { mutable live : bool; thunk : unit -> unit; counter : int ref }

type t = {
  mutable clock : Time.cycles;
  queue : handle Eventq.t;
  root_rng : Rng.t;
  live_events : int ref;
}

let create ?(seed = 42) () =
  { clock = 0; queue = Eventq.create (); root_rng = Rng.create seed; live_events = ref 0 }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t at f =
  assert (at >= t.clock);
  let h = { live = true; thunk = f; counter = t.live_events } in
  Eventq.push t.queue at h;
  incr t.live_events;
  h

let schedule t delay f =
  assert (delay >= 0);
  schedule_at t (t.clock + delay) f

let cancel h =
  if h.live then begin
    h.live <- false;
    decr h.counter
  end

let pending t = !(t.live_events)

let rec step t =
  match Eventq.pop t.queue with
  | None -> false
  | Some (at, h) ->
      if h.live then begin
        h.live <- false;
        decr h.counter;
        t.clock <- at;
        h.thunk ();
        true
      end
      else step t

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () = match max_events with Some m -> !fired < m | None -> true in
  let rec loop () =
    if continue () then
      match Eventq.peek_time t.queue with
      | None -> ()
      | Some at -> (
          match until with
          | Some stop when at > stop -> t.clock <- max t.clock stop
          | _ ->
              if step t then begin
                incr fired;
                loop ()
              end)
  in
  loop ()
