(** The discrete-event simulation engine.

    An engine owns the simulated clock and an event queue of thunks. All
    components of the simulated machine schedule work on a shared engine;
    running the engine advances time to each event in order and executes
    it. Cancellation is supported through handles because timers (e.g. TCP
    retransmission, heartbeats) are frequently re-armed. *)

type t
(** An engine instance. *)

type handle
(** A scheduled event that can be cancelled. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes an engine with its clock at cycle 0 and a
    deterministic root {!Rng.t} (default seed 42). *)

val now : t -> Time.cycles
(** Current simulated time. *)

val rng : t -> Rng.t
(** The engine's root random stream; [Rng.split] it per subsystem. *)

val schedule : t -> Time.cycles -> (unit -> unit) -> handle
(** [schedule t delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative. *)

val schedule_at : t -> Time.cycles -> (unit -> unit) -> handle
(** [schedule_at t at f] runs [f] at absolute time [at >= now t]. *)

val cancel : handle -> unit
(** Cancel a scheduled event. Cancelling a fired or already-cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val run : ?until:Time.cycles -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty, time [until] is
    reached (events at later times remain queued and the clock stops at
    [until]), or [max_events] events have fired. *)

val step : t -> bool
(** Execute the single earliest event. Returns [false] when the queue was
    empty. Cancelled events are skipped without counting as a step. *)
