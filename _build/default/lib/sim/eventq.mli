(** Priority queue of timed events.

    A classic binary min-heap keyed by (time, sequence number). The
    sequence number makes the order of simultaneous events deterministic:
    events scheduled first fire first. *)

type 'a t
(** Heap of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> Time.cycles -> 'a -> unit
(** [push q at payload] schedules [payload] at absolute time [at]. *)

val pop : 'a t -> (Time.cycles * 'a) option
(** Remove and return the earliest event, if any. *)

val peek_time : 'a t -> Time.cycles option
(** Time of the earliest event without removing it. *)
