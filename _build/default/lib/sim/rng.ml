type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t = { state = next_int64 t }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so Int64.to_int (which truncates to OCaml's 63-bit
     ints) can never produce a negative value. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  assert (total > 0);
  let roll = int t total in
  let rec go acc = function
    | [] -> assert false
    | (w, v) :: rest -> if roll < acc + w then v else go (acc + w) rest
  in
  go 0 choices

let exponential t mean =
  let u = float t 1.0 in
  (* Avoid log 0; u is in [0,1). *)
  -.mean *. log (1.0 -. u)
