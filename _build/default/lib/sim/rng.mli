(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [t] so
    that simulations are reproducible from a seed and independent streams
    can be split off for independent subsystems (fault injection, link
    loss, workload jitter). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element. Requires non-empty [arr]. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] draws one of the values with probability
    proportional to its integer weight. Requires a positive total weight. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for jittered inter-arrival times. *)
