type t = {
  width : Time.cycles;
  table : (int, int ref) Hashtbl.t;
  mutable last_bin : int;
}

let create ~bin_width =
  assert (bin_width > 0);
  { width = bin_width; table = Hashtbl.create 256; last_bin = 0 }

let add s at v =
  let bin = at / s.width in
  if bin > s.last_bin then s.last_bin <- bin;
  match Hashtbl.find_opt s.table bin with
  | Some r -> r := !r + v
  | None -> Hashtbl.add s.table bin (ref v)

let bin_width s = s.width

let bins s ?upto () =
  let last = match upto with Some c -> c / s.width | None -> s.last_bin in
  Array.init (last + 1) (fun i ->
      let v = match Hashtbl.find_opt s.table i with Some r -> !r | None -> 0 in
      (Time.to_seconds (i * s.width), v))

let mbps s ?upto () =
  let per_bin = bins s ?upto () in
  let bin_seconds = Time.to_seconds s.width in
  Array.map
    (fun (t, bytes) -> (t, float_of_int bytes *. 8.0 /. bin_seconds /. 1e6))
    per_bin
