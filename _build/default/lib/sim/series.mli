(** Binned time series, used to record bitrate-over-time traces for the
    paper's Figures 4 and 5.

    Values added at time [t] accumulate into the bin [t / bin_width]. A
    finished series can be read out as (bin start seconds, value) pairs —
    e.g. bytes per 100 ms bin, converted to Mbps by the caller. *)

type t

val create : bin_width:Time.cycles -> t
(** Bins of the given width, starting at time 0. *)

val add : t -> Time.cycles -> int -> unit
(** [add s at v] accumulates [v] into the bin containing time [at]. *)

val bin_width : t -> Time.cycles

val bins : t -> ?upto:Time.cycles -> unit -> (float * int) array
(** [bins s ~upto ()] returns one entry per bin from time 0 to [upto]
    (default: the last touched bin), as (bin start in seconds, sum).
    Untouched bins in the range appear with value 0. *)

val mbps : t -> ?upto:Time.cycles -> unit -> (float * float) array
(** Like {!bins} but interpreting sums as byte counts and converting each
    bin to megabits per second. *)
