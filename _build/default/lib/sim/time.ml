type cycles = int

let cycles_per_second = 1_900_000_000

let of_seconds s = int_of_float (s *. float_of_int cycles_per_second)
let of_micros us = of_seconds (us *. 1e-6)
let of_nanos ns = of_seconds (ns *. 1e-9)
let to_seconds c = float_of_int c /. float_of_int cycles_per_second
let to_millis c = to_seconds c *. 1e3
let pp ppf c = Format.fprintf ppf "%.3fs" (to_seconds c)
