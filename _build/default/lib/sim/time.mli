(** Simulated time.

    The simulator counts CPU cycles of the reference clock. The paper's
    evaluation machine is a 1.9 GHz AMD Opteron 6168; [cycles_per_second]
    defaults to that frequency. All simulated costs are expressed in cycles
    so that the cost figures quoted in the paper (150-cycle hot SYSCALL,
    30-cycle channel enqueue, ...) can be used directly. *)

type cycles = int
(** A duration or an absolute point in time, in cycles. 63-bit ints give
    us ~153 years of simulated time at 1.9 GHz; no overflow care needed. *)

val cycles_per_second : cycles
(** Reference clock rate: 1.9e9 cycles per second. *)

val of_seconds : float -> cycles
(** [of_seconds s] is the duration of [s] seconds in cycles. *)

val of_micros : float -> cycles
(** [of_micros us] is the duration of [us] microseconds in cycles. *)

val of_nanos : float -> cycles
(** [of_nanos ns] is the duration of [ns] nanoseconds in cycles. *)

val to_seconds : cycles -> float
(** [to_seconds c] converts a cycle count back to seconds. *)

val to_millis : cycles -> float
(** [to_millis c] converts a cycle count to milliseconds. *)

val pp : Format.formatter -> cycles -> unit
(** Pretty-print a time as seconds with millisecond precision. *)
