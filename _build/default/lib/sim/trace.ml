type entry = { at : Time.cycles; subsystem : string; message : string }

type t = { capacity : int; q : entry Queue.t }

let create ?(capacity = 65536) () =
  assert (capacity > 0);
  { capacity; q = Queue.create () }

let record t ~at ~subsystem message =
  Queue.push { at; subsystem; message } t.q;
  if Queue.length t.q > t.capacity then ignore (Queue.pop t.q)

let entries t = List.of_seq (Queue.to_seq t.q)

let find t ~subsystem =
  List.filter (fun e -> String.equal e.subsystem subsystem) (entries t)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "[%a] %-10s %s@." Time.pp e.at e.subsystem e.message)
    (entries t)
