(** Bounded trace log of simulation events.

    Components append human-readable entries tagged with the simulated
    time; experiments and tests inspect or print them. The log is bounded
    so long runs cannot exhaust memory. *)

type t

type entry = { at : Time.cycles; subsystem : string; message : string }

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 65536) most recent entries. *)

val record : t -> at:Time.cycles -> subsystem:string -> string -> unit

val entries : t -> entry list
(** Oldest first. *)

val find : t -> subsystem:string -> entry list
(** Entries from one subsystem, oldest first. *)

val pp : Format.formatter -> t -> unit
