lib/sockets/apps.ml: Bytes Newt_hw Newt_net Newt_sim Newt_stack Printf Socket_api
