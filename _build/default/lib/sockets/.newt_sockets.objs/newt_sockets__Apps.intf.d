lib/sockets/apps.mli: Newt_hw Newt_net Newt_sim Newt_stack
