lib/sockets/socket_api.ml: List Newt_stack
