lib/sockets/socket_api.mli: Bytes Newt_net Newt_sim Newt_stack
