lib/stack/capacity.ml: List Newt_hw Newt_sim Option
