lib/stack/capacity.mli: Newt_hw
