lib/stack/drv_srv.ml: Bytes List Msg Newt_channels Newt_hw Newt_nic Newt_sim Proc
