lib/stack/drv_srv.mli: Bytes Msg Newt_channels Newt_hw Newt_nic Proc
