lib/stack/ip_srv.ml: Bytes Drv_srv Hashtbl List Marshal Msg Newt_channels Newt_hw Newt_net Newt_sim Option Proc
