lib/stack/minix_stack.ml: Bytes Newt_hw Newt_net Newt_nic Newt_sim Queue
