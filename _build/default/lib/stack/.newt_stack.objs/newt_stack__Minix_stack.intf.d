lib/stack/minix_stack.mli: Newt_hw Newt_net Newt_nic Newt_sim
