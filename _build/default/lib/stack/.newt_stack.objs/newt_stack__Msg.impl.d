lib/stack/msg.ml: Bytes Newt_channels Newt_net
