lib/stack/msg.mli: Bytes Newt_channels Newt_net
