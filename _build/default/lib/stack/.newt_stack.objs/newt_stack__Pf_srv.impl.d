lib/stack/pf_srv.ml: List Marshal Msg Newt_channels Newt_hw Newt_pf Newt_sim Option Proc
