lib/stack/pf_srv.mli: Msg Newt_channels Newt_hw Newt_pf Proc
