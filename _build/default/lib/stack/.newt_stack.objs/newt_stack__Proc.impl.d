lib/stack/proc.ml: List Msg Newt_channels Newt_hw Newt_sim
