lib/stack/proc.mli: Msg Newt_channels Newt_hw Newt_sim
