lib/stack/single_srv.ml: Bytes Drv_srv Hashtbl List Msg Newt_channels Newt_hw Newt_net Newt_sim Proc
