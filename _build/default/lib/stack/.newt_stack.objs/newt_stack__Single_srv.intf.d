lib/stack/single_srv.mli: Drv_srv Msg Newt_channels Newt_hw Newt_net Proc
