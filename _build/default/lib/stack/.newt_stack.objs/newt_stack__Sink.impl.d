lib/stack/sink.ml: Bytes Hashtbl Newt_net Newt_nic Newt_sim
