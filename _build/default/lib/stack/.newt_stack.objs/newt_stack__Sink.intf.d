lib/stack/sink.mli: Bytes Newt_net Newt_nic Newt_sim
