lib/stack/syscall_srv.ml: Hashtbl List Msg Newt_channels Newt_hw Newt_sim Proc
