lib/stack/syscall_srv.mli: Msg Newt_channels Newt_hw Proc
