lib/stack/tcp_srv.mli: Msg Newt_channels Newt_hw Newt_net Newt_pf Proc
