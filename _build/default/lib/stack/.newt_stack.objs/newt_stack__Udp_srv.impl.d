lib/stack/udp_srv.ml: Bytes Hashtbl List Marshal Msg Newt_channels Newt_hw Newt_net Newt_pf Newt_sim Option Proc Queue
