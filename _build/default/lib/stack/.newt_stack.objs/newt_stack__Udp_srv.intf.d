lib/stack/udp_srv.mli: Msg Newt_channels Newt_hw Newt_net Newt_pf Proc
