module Costs = Newt_hw.Costs
module Time = Newt_sim.Time

type config =
  | Minix_sync
  | Split_dedicated
  | Split_dedicated_sc
  | Single_server_sc
  | Single_server_sc_tso
  | Split_dedicated_sc_tso
  | Linux_10gbe

let all =
  [
    Minix_sync;
    Split_dedicated;
    Split_dedicated_sc;
    Single_server_sc;
    Single_server_sc_tso;
    Split_dedicated_sc_tso;
    Linux_10gbe;
  ]

let name = function
  | Minix_sync -> "Minix 3, 1 CPU only, kernel IPC and copies"
  | Split_dedicated -> "NewtOS, split stack, dedicated cores"
  | Split_dedicated_sc -> "NewtOS, split stack, dedicated cores + SYSCALL"
  | Single_server_sc -> "NewtOS, 1 server stack, dedicated core + SYSCALL"
  | Single_server_sc_tso -> "NewtOS, 1 server stack, dedicated core + SYSCALL + TSO"
  | Split_dedicated_sc_tso -> "NewtOS, split stack, dedicated cores + SYSCALL + TSO"
  | Linux_10gbe -> "Linux, 10Gbe interface"

type stage = { label : string; cycles_per_segment : float; capacity_gbps : float }

type result = {
  config : config;
  goodput_gbps : float;
  bottleneck : string;
  stages : stage list;
}

let cps = float_of_int Time.cycles_per_second

(* Ethernet framing per wire packet: preamble 8 + header 14 + FCS 4 +
   interframe gap 12 = 38 bytes on top of the IP packet. *)
let wire_goodput_gbps ~nics ~gbps_per_nic ~mss =
  let payload = float_of_int mss in
  let on_wire = payload +. 40.0 +. 38.0 in
  float_of_int nics *. gbps_per_nic *. (payload /. on_wire)

(* Message-passing primitives on the fast-path channels. *)
let msg_send (c : Costs.t) = float_of_int (c.Costs.channel_marshal + c.Costs.channel_enqueue)

let msg_recv (c : Costs.t) =
  float_of_int (c.Costs.channel_dequeue + c.Costs.channel_demux + c.Costs.cacheline_transfer)

let pool_op = 100.0 (* allocate or free one pool chunk *)
let fi = float_of_int

(* A synchronous kernel IPC round trip on a timeshared core: traps are
   cold (the kernel and the peer evict the caches) and each direction
   forces a context switch plus a cache refill. *)
let sync_ipc_timeshared (c : Costs.t) =
  fi (2 * c.Costs.trap_cold)
  +. fi c.Costs.kipc_kernel_work
  +. fi (2 * (c.Costs.context_switch + c.Costs.cache_refill))

let gbps_of_capacity ~bits_per_segment segs_per_sec = segs_per_sec *. bits_per_segment /. 1e9

(* {2 Per-stage cycles-per-segment for each configuration} *)

(* Cost of the application write path, amortized per segment. *)
let app_write_amortized (c : Costs.t) ~segs_per_write ~via_sc =
  (* One sendrec to the SYSCALL (or TCP) server per write. The app core
     is timeshared, but in the NewtOS configurations it only runs iperf,
     so traps are warm. *)
  let per_write =
    if via_sc then fi (Costs.kipc_sendrec_cost c ~cold:false)
    else fi (Costs.kipc_sendrec_cost c ~cold:false)
  in
  per_write /. segs_per_write

(* The TCP server core in the split stack. [sc] = SYSCALL server
   present; without it the TCP server itself performs the kernel IPC
   receive/reply for every application write. [tso] = segments handed
   down are TSO-sized super-segments of [tso_factor] MSS units; all
   per-segment costs then amortize by that factor.

   Per (super-)segment the TCP core pays: the amortized syscall-channel
   traffic, the protocol work, the zero-copy handoff to IP (marshal +
   enqueue; header-chunk allocation), the per-request transmit confirm
   (dequeue + demux + request-database match) with the frees of the
   header and payload chunks, and, per two wire packets, one incoming
   ACK (relayed by IP as an individual message). *)
let split_tcp_core (c : Costs.t) ~segs_per_write ~tso_factor =
  let sc_channel = (msg_recv c +. msg_send c) /. segs_per_write in
  let per_super =
    fi c.Costs.tcp_segment_work +. msg_send c +. pool_op (* alloc hdr *)
    +. msg_recv c (* Tx_ip_confirm *)
    +. (2.0 *. pool_op) (* free hdr + payload chunks *)
  in
  (* ACKs arrive per two *wire* packets regardless of TSO. *)
  let ack = (msg_recv c +. fi c.Costs.tcp_ack_work +. (msg_send c /. 2.0)) /. 2.0 in
  (sc_channel +. per_super) /. tso_factor +. ack

let split_tcp_core_no_sc (c : Costs.t) ~segs_per_write ~tso_factor =
  (* The TCP server performs the blocking kernel receive + reply itself;
     kernel entries from the asynchronous event loop run cold. *)
  let syscall_handling =
    fi ((2 * c.Costs.trap_cold) + c.Costs.kipc_kernel_work) /. segs_per_write
  in
  split_tcp_core c ~segs_per_write ~tso_factor +. syscall_handling

(* The IP server core in the split stack: receives the transport
   request, builds the merged header (immutable pools force a private
   copy), filters through PF (round trip), hands the frame to the
   driver, receives the (batched) driver completions, frees its header
   chunk and relays a per-request confirm to the transport. Plus the
   inbound half for ACKs: frame in, filter round trip, delivery to TCP,
   free on Rx_done. *)
let split_ip_core (c : Costs.t) ~tso_factor ~pf =
  let pf_round = if pf then msg_send c +. msg_recv c else 0.0 in
  let tx =
    msg_recv c
    +. fi (c.Costs.ip_tx_work + c.Costs.header_adjust)
    +. pool_op (* alloc merged header *)
    +. pf_round
    +. msg_send c (* to driver *)
    +. (msg_recv c /. fi c.Costs.confirm_batch) (* batched completions *)
    +. pool_op (* free header *)
    +. msg_send c (* confirm to transport *)
  in
  let rx_ack =
    (msg_recv c +. fi c.Costs.ip_rx_work +. pf_round +. msg_send c
    +. msg_recv c (* Rx_done *) +. pool_op)
    /. 2.0
  in
  (tx /. tso_factor) +. rx_ack

let pf_core (c : Costs.t) ~tso_factor =
  (* One verdict per outgoing (super-)segment, one per incoming ACK
     (conntrack hit: no ruleset walk). *)
  let per_verdict = msg_recv c +. fi c.Costs.pf_base +. msg_send c in
  (per_verdict /. tso_factor) +. (per_verdict /. 2.0)

let driver_core (c : Costs.t) ~tso_factor =
  let tx =
    msg_recv c +. fi c.Costs.driver_packet_work
    +. (msg_send c /. fi c.Costs.confirm_batch)
  in
  let rx_ack = (fi c.Costs.driver_packet_work +. msg_send c) /. 2.0 in
  (tx /. tso_factor) +. rx_ack

(* The merged single-server stack core: TCP and IP are function calls
   apart — no marshalling, no request tracking, no header-chunk copy
   between them, completions and receive-buffer returns are processed
   by ring scans. It still talks to the driver servers over channels. *)
let single_server_core (c : Costs.t) ~segs_per_write ~tso_factor =
  let sc_channel = (msg_recv c +. msg_send c) /. segs_per_write in
  let per_super =
    fi c.Costs.tcp_segment_work
    +. fi (c.Costs.ip_tx_work + c.Costs.header_adjust)
    +. msg_send c (* to driver *)
    +. (msg_recv c /. fi c.Costs.confirm_batch)
    +. pool_op (* free pbuf at completion scan *)
  in
  let ack =
    (msg_recv c +. fi c.Costs.ip_rx_work +. fi c.Costs.tcp_ack_work
    +. (msg_send c /. fi c.Costs.confirm_batch))
    /. 2.0
  in
  (sc_channel +. per_super) /. tso_factor +. ack

let sc_core (c : Costs.t) ~segs_per_write =
  (* Per application write: the kernel IPC receive ("it pays the
     trapping toll"), a peek, a channel forward, the reply path. *)
  (fi (Costs.kipc_sendrec_cost c ~cold:false)
  +. msg_send c +. msg_recv c
  +. fi (Costs.kipc_sendrec_cost c ~cold:false / 2))
  /. segs_per_write

(* The original MINIX 3 stack: application, INET server and driver all
   timeshare one core; every hop is a synchronous kernel IPC with
   copies; the driver takes one packet at a time and each transmit
   completes through another synchronous round trip; checksums in
   software; the INET server predates lwIP and is markedly less
   efficient (factor below). *)
let minix_core (c : Costs.t) ~segs_per_write ~mss ~write_size =
  let inet_legacy_factor = 4.0 in
  let app_write =
    (sync_ipc_timeshared c +. fi (Costs.copy_cost c write_size)) /. segs_per_write
  in
  let proto = fi c.Costs.tcp_segment_work *. inet_legacy_factor in
  let csum = fi (Costs.checksum_cost c mss) in
  let copy_to_driver = fi (Costs.copy_cost c mss) in
  (* The original Minix ethernet driver protocol costs two synchronous
     round trips per packet (the write request and the completion
     acknowledgment each travel as separate DL_* messages). *)
  let driver_round = (2.0 *. sync_ipc_timeshared c) +. fi c.Costs.driver_packet_work in
  let completion_round = sync_ipc_timeshared c in
  let ack_path = (sync_ipc_timeshared c +. fi c.Costs.tcp_ack_work) /. 2.0 in
  app_write +. proto +. csum +. copy_to_driver +. driver_round +. completion_round
  +. ack_path

(* The monolithic (Linux-like) model with full offloads: the
   application core copies each write into the kernel and runs the
   transport for the TSO super-segment; the per-wire-packet softirq
   work (NAPI, skb management, qdisc, completions, locking) is the
   measured bottleneck of a single flow. *)
let mono_stages (c : Costs.t) ~write_size ~mss ~tso_factor =
  let app =
    (fi c.Costs.trap_hot +. fi (Costs.copy_cost c write_size)
    +. (fi (c.Costs.tcp_segment_work + c.Costs.ip_tx_work) *. (fi write_size /. (fi mss *. tso_factor))))
    /. (fi write_size /. fi mss)
  in
  let softirq = fi (c.Costs.mono_wire_packet_work + c.Costs.lock_contention) in
  (app, softirq)

(* {2 Evaluation} *)

let evaluate ?(costs = Costs.default) ?nics ?(write_size = 8192) ?(mss = 1460) config =
  let c = costs in
  let bits_per_segment = float_of_int (mss * 8) in
  let segs_per_write = float_of_int write_size /. float_of_int mss in
  let tso_factor = 64000.0 /. float_of_int mss in
  let default_nics = match config with Linux_10gbe -> 1 | _ -> 5 in
  let nics = Option.value nics ~default:default_nics in
  let gbps_per_nic = match config with Linux_10gbe -> 10.0 | _ -> 1.0 in
  let wire = wire_goodput_gbps ~nics ~gbps_per_nic ~mss in
  let mk label cycles =
    {
      label;
      cycles_per_segment = cycles;
      capacity_gbps = gbps_of_capacity ~bits_per_segment (cps /. cycles);
    }
  in
  let stages =
    match config with
    | Minix_sync ->
        [ mk "shared core (app+inet+driver)" (minix_core c ~segs_per_write ~mss ~write_size) ]
    | Split_dedicated ->
        [
          mk "tcp server (handles syscalls)" (split_tcp_core_no_sc c ~segs_per_write ~tso_factor:1.0);
          mk "ip server" (split_ip_core c ~tso_factor:1.0 ~pf:true);
          mk "pf server" (pf_core c ~tso_factor:1.0);
          mk "driver server" (driver_core c ~tso_factor:1.0);
          mk "app core" (app_write_amortized c ~segs_per_write ~via_sc:false);
        ]
    | Split_dedicated_sc ->
        [
          mk "tcp server" (split_tcp_core c ~segs_per_write ~tso_factor:1.0);
          mk "ip server" (split_ip_core c ~tso_factor:1.0 ~pf:true);
          mk "pf server" (pf_core c ~tso_factor:1.0);
          mk "driver server" (driver_core c ~tso_factor:1.0);
          mk "syscall server" (sc_core c ~segs_per_write);
          mk "app core" (app_write_amortized c ~segs_per_write ~via_sc:true);
        ]
    | Single_server_sc ->
        [
          mk "stack server (tcp+ip)" (single_server_core c ~segs_per_write ~tso_factor:1.0);
          mk "driver server" (driver_core c ~tso_factor:1.0);
          mk "syscall server" (sc_core c ~segs_per_write);
          mk "app core" (app_write_amortized c ~segs_per_write ~via_sc:true);
        ]
    | Single_server_sc_tso ->
        [
          mk "stack server (tcp+ip)" (single_server_core c ~segs_per_write ~tso_factor);
          mk "driver server" (driver_core c ~tso_factor);
          mk "syscall server" (sc_core c ~segs_per_write);
          mk "app core" (app_write_amortized c ~segs_per_write ~via_sc:true);
        ]
    | Split_dedicated_sc_tso ->
        [
          mk "tcp server" (split_tcp_core c ~segs_per_write ~tso_factor);
          mk "ip server" (split_ip_core c ~tso_factor ~pf:true);
          mk "pf server" (pf_core c ~tso_factor);
          mk "driver server" (driver_core c ~tso_factor);
          mk "syscall server" (sc_core c ~segs_per_write);
          mk "app core" (app_write_amortized c ~segs_per_write ~via_sc:true);
        ]
    | Linux_10gbe ->
        let app, softirq = mono_stages c ~write_size:65536 ~mss ~tso_factor in
        [ mk "app core (syscall+copy+tcp)" app; mk "kernel softirq per wire packet" softirq ]
  in
  let slowest =
    List.fold_left
      (fun acc s -> match acc with
        | Some best when best.capacity_gbps <= s.capacity_gbps -> acc
        | _ -> Some s)
      None stages
  in
  let slowest = Option.get slowest in
  if wire <= slowest.capacity_gbps then
    { config; goodput_gbps = wire; bottleneck = "wire"; stages }
  else
    { config; goodput_gbps = slowest.capacity_gbps; bottleneck = slowest.label; stages }
