(** The analytic pipeline-capacity model behind Table II.

    Peak outgoing TCP throughput of a stack configuration equals the
    capacity of its bottleneck stage: every stage (each server core, the
    application core, the wires) has a cycles-per-segment cost derived
    from {!Newt_hw.Costs}, and the slowest one saturates first. The
    full event-driven simulator reproduces the same pipeline
    packet-by-packet at 1 Gbps scale (see the cross-validation test);
    this model extends the accounting to the multi-NIC peak rates the
    paper measures, where event-level simulation would be needlessly
    slow.

    The seven configurations are the seven rows of Table II. *)

type config =
  | Minix_sync
      (** Original MINIX 3: one timeshared core, synchronous kernel IPC,
          copies everywhere, no offloads. *)
  | Split_dedicated
      (** NewtOS split stack on dedicated cores, but applications issue
          kernel IPC directly to the TCP server (no SYSCALL server). *)
  | Split_dedicated_sc  (** Split stack plus the SYSCALL server. *)
  | Single_server_sc
      (** The whole lwIP stack in one server (TCP+IP merged), SYSCALL
          server, asynchronous channels to the drivers. *)
  | Single_server_sc_tso  (** Same plus TCP segmentation offload. *)
  | Split_dedicated_sc_tso  (** The full NewtOS design with TSO. *)
  | Linux_10gbe
      (** Monolithic comparison point: in-kernel stack, all offloads,
          one 10 GbE port. *)

val all : config list
(** In Table II row order. *)

val name : config -> string

type stage = { label : string; cycles_per_segment : float; capacity_gbps : float }

type result = {
  config : config;
  goodput_gbps : float;  (** TCP payload throughput at the bottleneck. *)
  bottleneck : string;  (** Which stage saturates ("wire" when link-bound). *)
  stages : stage list;
}

val evaluate :
  ?costs:Newt_hw.Costs.t ->
  ?nics:int ->
  ?write_size:int ->
  ?mss:int ->
  config ->
  result
(** Defaults: 5 gigabit NICs (one 10 GbE for [Linux_10gbe]), 8 KiB
    application writes, MSS 1460. *)

val wire_goodput_gbps : nics:int -> gbps_per_nic:float -> mss:int -> float
(** Achievable TCP payload rate of the links themselves, accounting for
    TCP/IP/Ethernet framing overhead. *)
