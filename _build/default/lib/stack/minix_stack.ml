module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Rng = Newt_sim.Rng
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu
module Costs = Newt_hw.Costs
module Link = Newt_nic.Link
module Addr = Newt_net.Addr
module Ethernet = Newt_net.Ethernet
module Ipv4 = Newt_net.Ipv4
module Tcp = Newt_net.Tcp
module Tcp_wire = Newt_net.Tcp_wire

(* The old INET server predates lwIP: linked-list buffer walks,
   per-byte option parsing — a constant factor over the protocol work
   of the modern engine. *)
let inet_legacy_factor = 4

let app_pid = 1
let inet_pid = 2
let drv_pid = 3

type t = {
  machine : Machine.t;
  core : Cpu.t;
  link : Link.t;
  addr : Addr.Ipv4.t;
  my_mac : Addr.Mac.t;
  peer_mac : Addr.Mac.t;
  write_size : int;
  mutable tcp : Tcp.t;
  mutable ident : int;
  tx_queue : Bytes.t Queue.t;
  mutable tx_busy : bool;
  mutable bytes_sent : int;
  mutable sync_ipcs : int;
  mutable running : bool;
  rng : Rng.t;
}

let engine t = Machine.engine t.machine
let costs t = Machine.costs t.machine
let bytes_sent t = t.bytes_sent
let sync_ipc_count t = t.sync_ipcs

let core_utilization t = Cpu.utilization t.core ~now:(Engine.now (engine t))

(* A synchronous kernel IPC round trip charged to [proc]'s slice: two
   cold mode switches plus the kernel's message copy. The context
   switch to the serving process is charged by the core model itself
   when the next job runs under a different pid. *)
let sendrec t ~proc k =
  t.sync_ipcs <- t.sync_ipcs + 1;
  Cpu.exec t.core ~proc ~cost:(Costs.kipc_sendrec_cost (costs t) ~cold:true) k

(* {2 The driver: one packet at a time, two round trips each} *)

let driver_transmit t frame k =
  let c = costs t in
  (* DL_WRITEV: INET sends the request... *)
  sendrec t ~proc:inet_pid (fun () ->
      (* ...the driver copies the packet and programs the device... *)
      Cpu.exec t.core ~proc:drv_pid
        ~cost:(Costs.copy_cost c (Bytes.length frame) + c.Costs.driver_packet_work)
        (fun () ->
          ignore (Link.transmit t.link ~from:Link.Left frame);
          (* ...and the completion travels back as a second round
             trip before INET may send the next packet. *)
          sendrec t ~proc:drv_pid (fun () -> Cpu.exec t.core ~proc:inet_pid ~cost:100 k)))

(* {2 The INET server} *)

(* Serialize outgoing segments: the whole path down to the driver and
   back is synchronous, so segments queue inside INET. *)
let rec drain_tx t =
  match Queue.take_opt t.tx_queue with
  | None -> t.tx_busy <- false
  | Some frame -> driver_transmit t frame (fun () -> drain_tx t)

let enqueue_tx t frame =
  Queue.push frame t.tx_queue;
  if not t.tx_busy then begin
    t.tx_busy <- true;
    drain_tx t
  end

let inet_emit t ~dst hdr ~payload =
  let c = costs t in
  (* Header construction, software checksum over the segment, and the
     copy into the driver-bound buffer. *)
  let seg = Tcp_wire.encode ~src:t.addr ~dst hdr ~payload in
  t.ident <- (t.ident + 1) land 0xffff;
  let pkt =
    Ipv4.packet
      { Ipv4.src = t.addr; dst; protocol = Ipv4.Tcp; ttl = 64; ident = t.ident; total_len = 0 }
      ~payload:seg
  in
  let frame =
    Ethernet.frame
      { Ethernet.dst = t.peer_mac; src = t.my_mac; ethertype = Ethernet.Ipv4 }
      ~payload:pkt
  in
  let work =
    (c.Costs.tcp_segment_work * inet_legacy_factor)
    + Costs.checksum_cost c (Bytes.length seg)
    + Costs.copy_cost c (Bytes.length seg)
  in
  Cpu.exec t.core ~proc:inet_pid ~cost:work (fun () -> enqueue_tx t frame)

let make_tcp t =
  Tcp.create
    {
      Tcp.now = (fun () -> Engine.now (engine t));
      set_timer =
        (fun delay f ->
          let h =
            Engine.schedule (engine t) delay (fun () ->
                Cpu.exec t.core ~proc:inet_pid ~cost:500 f)
          in
          fun () -> Engine.cancel h);
      emit = (fun ~src:_ ~dst hdr ~payload -> inet_emit t ~dst hdr ~payload);
      random = (fun bound -> Rng.int t.rng bound);
    }

(* {2 Receive: interrupt -> driver -> INET} *)

let on_rx t frame =
  let c = costs t in
  (* The kernel converts the interrupt into a message for the driver;
     the driver copies the packet out and wakes INET with another
     synchronous exchange. *)
  Cpu.exec t.core ~proc:drv_pid
    ~cost:(c.Costs.trap_cold + Costs.copy_cost c (Bytes.length frame))
    (fun () ->
      sendrec t ~proc:drv_pid (fun () ->
          Cpu.exec t.core ~proc:inet_pid
            ~cost:(c.Costs.tcp_ack_work * inet_legacy_factor)
            (fun () ->
              match (Ethernet.decode_header frame ~off:0, Ethernet.payload frame) with
              | Some { Ethernet.ethertype = Ethernet.Arp; _ }, Some arp_bytes -> (
                  (* INET answers ARP for its address. *)
                  match Newt_net.Arp.decode arp_bytes with
                  | Some req
                    when req.Newt_net.Arp.op = Newt_net.Arp.Request
                         && Addr.Ipv4.equal req.Newt_net.Arp.target_ip t.addr ->
                      let reply =
                        {
                          Newt_net.Arp.op = Newt_net.Arp.Reply;
                          sender_mac = t.my_mac;
                          sender_ip = t.addr;
                          target_mac = req.Newt_net.Arp.sender_mac;
                          target_ip = req.Newt_net.Arp.sender_ip;
                        }
                      in
                      enqueue_tx t
                        (Ethernet.frame
                           {
                             Ethernet.dst = req.Newt_net.Arp.sender_mac;
                             src = t.my_mac;
                             ethertype = Ethernet.Arp;
                           }
                           ~payload:(Newt_net.Arp.encode reply))
                  | Some _ | None -> ())
              | Some { Ethernet.ethertype = Ethernet.Ipv4; _ }, Some pkt -> (
                  match Ipv4.payload pkt with
                  | Some (ih, l4) when Addr.Ipv4.equal ih.Ipv4.dst t.addr -> (
                      match ih.Ipv4.protocol with
                      | Ipv4.Tcp -> (
                          match Tcp_wire.decode ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst l4 with
                          | Some (hdr, payload) ->
                              Tcp.input t.tcp ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst hdr
                                ~payload
                          | None -> ())
                      | Ipv4.Udp | Ipv4.Icmp | Ipv4.Unknown _ -> ())
                  | Some _ | None -> ())
              | (Some _ | None), _ -> ())))

let create machine ~link ~addr ~peer_mac ?(write_size = 8192) () =
  let core = Machine.add_timeshared_core machine in
  let t =
    {
      machine;
      core;
      link;
      addr;
      my_mac = Addr.Mac.of_index 0x9999;
      peer_mac;
      write_size;
      tcp =
        Tcp.create
          {
            Tcp.now = (fun () -> 0);
            set_timer = (fun _ _ () -> ());
            emit = (fun ~src:_ ~dst:_ _ ~payload:_ -> ());
            random = (fun _ -> 0);
          };
      ident = 0;
      tx_queue = Queue.create ();
      tx_busy = false;
      bytes_sent = 0;
      sync_ipcs = 0;
      running = false;
      rng = Rng.split (Engine.rng (Machine.engine machine));
    }
  in
  t.tcp <- make_tcp t;
  Link.attach link Link.Left (fun frame -> on_rx t frame);
  t

(* {2 The application} *)

let start_iperf t ~dst ~port ~until =
  t.running <- true;
  let c = costs t in
  let pcb = Tcp.connect t.tcp ~src:t.addr ~dst ~dst_port:port () in
  let rec pump () =
    if Engine.now (engine t) < until && t.running then begin
      (* write(): the app traps, the kernel copies the buffer to INET,
         INET queues it into the socket's send buffer. *)
      sendrec t ~proc:app_pid (fun () ->
          Cpu.exec t.core ~proc:inet_pid
            ~cost:(Costs.copy_cost c t.write_size)
            (fun () ->
              let accepted = Tcp.send pcb (Bytes.make t.write_size 'm') in
              t.bytes_sent <- t.bytes_sent + accepted;
              if accepted > 0 then pump ()
              (* Buffer full: the app blocks until space frees. *)))
    end
    else if t.running then begin
      t.running <- false;
      Tcp.close pcb
    end
  in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected -> pump ()
      | Tcp.Writable -> if t.running then pump ()
      | Tcp.Accepted | Tcp.Readable | Tcp.Closed_normally | Tcp.Reset -> ())
