(** The original MINIX 3 baseline, packet by packet (Table II, line 1).

    One {e timeshared} core runs the application, the monolithic INET
    server and the network driver. Every hop is a synchronous kernel
    IPC: two mode switches with cold caches plus the kernel's message
    copy — and, because the processes share the core, every hop also
    forces a context switch and a cache refill (these are charged
    automatically by the {!Newt_hw.Cpu} model when the serving process
    changes). Payloads are copied at user/kernel and INET/driver
    boundaries, checksums run in software, and the driver accepts one
    packet at a time with a separate completion round trip, as the
    historical MINIX driver protocol did.

    The TCP engine is the same real protocol implementation the NewtOS
    servers use (the paper replaced the old INET stack with lwIP for
    its measurements too); a legacy-overhead factor accounts for the
    remaining difference. Frames on the wire are real and checked by
    the same {!Sink} peer.

    Throughput is {e emergent}: run an iperf against a sink and see the
    ~hundred-megabit ceiling of Table II's first row come out of the
    cost model. *)

type t

val create :
  Newt_hw.Machine.t ->
  link:Newt_nic.Link.t ->
  addr:Newt_net.Addr.Ipv4.t ->
  peer_mac:Newt_net.Addr.Mac.t ->
  ?write_size:int ->
  unit ->
  t
(** Builds the shared core and the three processes; attaches to the
    host side of [link]. [write_size] (default 8 KiB) is the
    application's write granularity. *)

val start_iperf :
  t -> dst:Newt_net.Addr.Ipv4.t -> port:int -> until:Newt_sim.Time.cycles -> unit
(** The application connects and streams until the given time. *)

val bytes_sent : t -> int

val core_utilization : t -> float
(** Of the single shared core — saturated long before the wire is. *)

val sync_ipc_count : t -> int
(** Synchronous kernel IPC round trips performed — "a multiserver
    system under heavy load easily generates hundreds of thousands of
    messages per second" (Section III-A). *)
