(** The single-server stack (Table II line 4): the whole lwIP-style
    stack — TCP and IP merged — in one asynchronous server on a
    dedicated core, talking to the SYSCALL server and the drivers over
    fast-path channels.

    This is the paper's intermediate design point between the original
    MINIX stack and the full NewtOS split: it "adopts our asynchronous
    channels" but keeps the stack monolithic, trading the split's fault
    isolation (a bug anywhere in TCP/IP/ICMP takes the whole stack
    down, and there is no packet filter to isolate) for fewer
    cross-domain hops: TCP hands packets to its in-process IP layer by
    function call, headers are patched in place rather than copied
    between immutable pools, and transmit completions are freed in a
    ring scan.

    The same protocol engines ({!Newt_net.Tcp}, ARP, the IPv4 codec)
    run here as in the split servers — the decomposition is deployment
    configuration, not code. *)

type t

val create :
  Newt_hw.Machine.t ->
  proc:Proc.t ->
  registry:Newt_channels.Registry.t ->
  local_addr:Newt_net.Addr.Ipv4.t ->
  ?tcp_config:Newt_net.Tcp.config ->
  unit ->
  t

val proc : t -> Proc.t

val add_iface :
  t ->
  addr:Newt_net.Addr.Ipv4.t ->
  mac:Newt_net.Addr.Mac.t ->
  drv:Drv_srv.t ->
  tx_chan:Msg.t Newt_channels.Sim_chan.t ->
  rx_chan:Msg.t Newt_channels.Sim_chan.t ->
  int

val add_route :
  t ->
  prefix:Newt_net.Addr.Ipv4.t ->
  bits:int ->
  iface:int ->
  gateway:Newt_net.Addr.Ipv4.t option ->
  unit

val add_neighbor :
  t -> iface:int -> Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Mac.t -> unit

val connect_sc :
  t ->
  from_sc:Msg.t Newt_channels.Sim_chan.t ->
  to_sc:Msg.t Newt_channels.Sim_chan.t ->
  unit

val engine : t -> Newt_net.Tcp.t
