test/test_channels.ml: Alcotest Bytes Char Domain Hashtbl List Newt_channels QCheck2 QCheck_alcotest
