test/test_hw.ml: Alcotest List Newt_hw Newt_sim
