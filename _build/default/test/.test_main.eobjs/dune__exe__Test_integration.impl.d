test/test_integration.ml: Alcotest Array Buffer Bytes List Newt_channels Newt_core Newt_net Newt_pf Newt_reliability Newt_sim Newt_sockets Newt_stack Printf
