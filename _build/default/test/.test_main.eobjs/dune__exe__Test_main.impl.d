test/test_main.ml: Alcotest Test_channels Test_hw Test_integration Test_net Test_nic Test_pf Test_reliability Test_sim Test_stack Test_tcp
