test/test_net.ml: Alcotest Buffer Bytes Char List Newt_net Option QCheck2 QCheck_alcotest String
