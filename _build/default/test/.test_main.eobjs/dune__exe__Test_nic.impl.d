test/test_nic.ml: Alcotest Buffer Bytes Char List Newt_channels Newt_net Newt_nic Newt_sim Printf QCheck2 QCheck_alcotest
