test/test_pf.ml: Alcotest Bytes Format List Newt_net Newt_pf Newt_sim Printf String
