test/test_reliability.ml: Alcotest Hashtbl List Newt_hw Newt_reliability Newt_sim Newt_stack Option Printf
