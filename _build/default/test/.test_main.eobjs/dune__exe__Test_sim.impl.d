test/test_sim.ml: Alcotest Array Hashtbl List Newt_sim Option
