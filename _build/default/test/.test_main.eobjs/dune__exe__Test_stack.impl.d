test/test_stack.ml: Alcotest List Newt_channels Newt_hw Newt_sim Newt_stack Printf String
