test/test_tcp.ml: Alcotest Buffer Bytes Char List Newt_net Newt_sim Option Printf QCheck2 QCheck_alcotest String
