(* Tests for the hardware model: cost parameters, core execution
   (dedicated vs timeshared), halt/wake-up, IPIs. *)

module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Costs = Newt_hw.Costs
module Cpu = Newt_hw.Cpu
module Machine = Newt_hw.Machine

let c = Costs.default

let test_costs_anchors () =
  (* The paper's measured anchor points. *)
  Alcotest.(check int) "hot trap ~150 cycles" 150 c.Costs.trap_hot;
  Alcotest.(check int) "cold trap ~3000 cycles" 3000 c.Costs.trap_cold;
  Alcotest.(check int) "channel enqueue ~30 cycles" 30 c.Costs.channel_enqueue

let test_copy_and_checksum_costs () =
  Alcotest.(check int) "copy 4 bytes = 1 cycle" 1 (Costs.copy_cost c 4);
  Alcotest.(check int) "copy rounds up" 2 (Costs.copy_cost c 5);
  Alcotest.(check int) "copy 1460B" 365 (Costs.copy_cost c 1460);
  Alcotest.(check int) "checksum 1460B" 365 (Costs.checksum_cost c 1460);
  Alcotest.(check int) "sendrec hot" ((2 * 150) + 600) (Costs.kipc_sendrec_cost c ~cold:false);
  Alcotest.(check int) "sendrec cold" ((2 * 3000) + 600) (Costs.kipc_sendrec_cost c ~cold:true)

let test_dedicated_core_serializes () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  let order = ref [] in
  Cpu.exec core ~proc:1 ~cost:100 (fun () -> order := ("a", Engine.now e) :: !order);
  Cpu.exec core ~proc:1 ~cost:50 (fun () -> order := ("b", Engine.now e) :: !order);
  Engine.run e;
  match List.rev !order with
  | [ ("a", ta); ("b", tb) ] ->
      Alcotest.(check int) "first finishes after its cost" 100 ta;
      Alcotest.(check int) "second is serialized" 150 tb
  | _ -> Alcotest.fail "wrong execution order"

let test_dedicated_core_no_switch_cost () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  let done_at = ref 0 in
  Cpu.exec core ~proc:1 ~cost:100 (fun () -> ());
  Cpu.exec core ~proc:2 ~cost:100 (fun () -> done_at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "no context-switch penalty on dedicated core" 200 !done_at

let test_timeshared_core_switch_cost () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_timeshared_core m in
  let done_at = ref 0 in
  Cpu.exec core ~proc:1 ~cost:100 (fun () -> ());
  Cpu.exec core ~proc:2 ~cost:100 (fun () -> done_at := Engine.now e);
  Engine.run e;
  let expected = 100 + c.Costs.context_switch + c.Costs.cache_refill + 100 in
  Alcotest.(check int) "switch pays context switch + cache refill" expected !done_at

let test_timeshared_same_proc_no_switch () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_timeshared_core m in
  let done_at = ref 0 in
  Cpu.exec core ~proc:1 ~cost:100 (fun () -> ());
  Cpu.exec core ~proc:1 ~cost:100 (fun () -> done_at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "same process, no penalty" 200 !done_at

let test_halted_core_pays_wakeup () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  (* Do something, then go idle long enough to halt (poll window). *)
  Cpu.exec core ~proc:1 ~cost:10 (fun () -> ());
  Engine.run e;
  let resume_at = c.Costs.poll_window * 3 in
  let done_at = ref 0 in
  ignore
    (Engine.schedule_at e resume_at (fun () ->
         Cpu.exec core ~proc:1 ~cost:100 (fun () -> done_at := Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "wake-up latency added"
    (resume_at + c.Costs.mwait_wakeup + 100)
    !done_at

let test_busy_core_no_wakeup () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  Cpu.exec core ~proc:1 ~cost:10 (fun () -> ());
  Engine.run e;
  (* Work arriving within the poll window: no wake-up penalty. *)
  let resume_at = c.Costs.poll_window / 2 in
  let done_at = ref 0 in
  ignore
    (Engine.schedule_at e resume_at (fun () ->
         Cpu.exec core ~proc:1 ~cost:100 (fun () -> done_at := Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "polling absorbs short gaps" (resume_at + 100) !done_at

let test_utilization () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  Cpu.exec core ~proc:1 ~cost:500 (fun () -> ());
  ignore (Engine.schedule_at e 1000 (fun () -> ()));
  Engine.run e;
  Alcotest.(check (float 0.01)) "50% busy" 0.5 (Cpu.utilization core ~now:1000);
  Alcotest.(check int) "busy cycles" 500 (Cpu.busy_cycles core)

let test_ipi_delivery () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  let fired_at = ref 0 in
  Machine.ipi m ~to_core:core (fun () -> fired_at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "ipi latency + handler trap"
    (c.Costs.ipi_latency + c.Costs.trap_hot)
    !fired_at

let test_machine_core_allocation () =
  let e = Engine.create () in
  let m = Machine.create e in
  let a = Machine.add_dedicated_core m in
  let b = Machine.add_timeshared_core m in
  Alcotest.(check int) "two cores" 2 (Machine.core_count m);
  Alcotest.(check bool) "kinds" true
    (Cpu.kind a = Cpu.Dedicated && Cpu.kind b = Cpu.Timeshared);
  Alcotest.(check bool) "distinct ids" true (Cpu.id a <> Cpu.id b)

let test_time_cycles_per_second () =
  (* The paper's testbed clock: 1.9 GHz. *)
  Alcotest.(check int) "1.9 GHz" 1_900_000_000 Time.cycles_per_second

let suite =
  [
    ("cost anchors from the paper", `Quick, test_costs_anchors);
    ("copy/checksum/kipc cost helpers", `Quick, test_copy_and_checksum_costs);
    ("dedicated core serializes FIFO", `Quick, test_dedicated_core_serializes);
    ("dedicated core has no switch cost", `Quick, test_dedicated_core_no_switch_cost);
    ("timeshared core pays switch+refill", `Quick, test_timeshared_core_switch_cost);
    ("timeshared same-proc is free", `Quick, test_timeshared_same_proc_no_switch);
    ("halted core pays MWAIT wakeup", `Quick, test_halted_core_pays_wakeup);
    ("polling absorbs short gaps", `Quick, test_busy_core_no_wakeup);
    ("core utilization accounting", `Quick, test_utilization);
    ("IPI delivery latency", `Quick, test_ipi_delivery);
    ("machine core allocation", `Quick, test_machine_core_allocation);
    ("reference clock is 1.9 GHz", `Quick, test_time_cycles_per_second);
  ]
