(* Codec and protocol-helper tests: checksum, addresses, Ethernet, ARP,
   IPv4, ICMP, UDP, TCP wire format, Seq32 and Bytebuf. Property-based
   where invariants allow. *)

module Addr = Newt_net.Addr
module Checksum = Newt_net.Checksum
module Ethernet = Newt_net.Ethernet
module Arp = Newt_net.Arp
module Ipv4 = Newt_net.Ipv4
module Icmp = Newt_net.Icmp
module Udp = Newt_net.Udp
module Tcp_wire = Newt_net.Tcp_wire
module Seq32 = Newt_net.Seq32
module Dns = Newt_net.Dns
module Bytebuf = Newt_net.Bytebuf

let ip = Addr.Ipv4.v
let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

(* {2 Addresses} *)

let test_ipv4_roundtrip () =
  let a = ip 192 168 1 42 in
  Alcotest.(check string) "print" "192.168.1.42" (Addr.Ipv4.to_string a);
  (match Addr.Ipv4.of_string "192.168.1.42" with
  | Some b -> Alcotest.(check bool) "parse roundtrip" true (Addr.Ipv4.equal a b)
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check (option string)) "garbage rejected" None
    (Option.map Addr.Ipv4.to_string (Addr.Ipv4.of_string "1.2.3.456"));
  Alcotest.(check (option string)) "short rejected" None
    (Option.map Addr.Ipv4.to_string (Addr.Ipv4.of_string "1.2.3"))

let test_ipv4_prefix () =
  let p = ip 10 0 0 0 in
  Alcotest.(check bool) "in /8" true (Addr.Ipv4.in_prefix ~prefix:p ~bits:8 (ip 10 9 8 7));
  Alcotest.(check bool) "not in /8" false (Addr.Ipv4.in_prefix ~prefix:p ~bits:8 (ip 11 0 0 1));
  Alcotest.(check bool) "/0 matches all" true
    (Addr.Ipv4.in_prefix ~prefix:p ~bits:0 (ip 200 1 2 3));
  Alcotest.(check bool) "/32 exact" true
    (Addr.Ipv4.in_prefix ~prefix:(ip 10 1 2 3) ~bits:32 (ip 10 1 2 3));
  Alcotest.(check bool) "/32 differs" false
    (Addr.Ipv4.in_prefix ~prefix:(ip 10 1 2 3) ~bits:32 (ip 10 1 2 4))

let test_mac_roundtrip () =
  let m = Addr.Mac.of_octets [| 0x02; 0xaa; 0xbb; 0xcc; 0xdd; 0x01 |] in
  Alcotest.(check string) "print" "02:aa:bb:cc:dd:01" (Addr.Mac.to_string m);
  Alcotest.(check bool) "octet roundtrip" true
    (Addr.Mac.equal m (Addr.Mac.of_octets (Addr.Mac.to_octets m)));
  Alcotest.(check bool) "of_index distinct" true
    (not (Addr.Mac.equal (Addr.Mac.of_index 1) (Addr.Mac.of_index 2)))

(* {2 Checksum} *)

let test_checksum_known_vector () =
  (* The classic RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc vector" 0x220d (Checksum.bytes b ~off:0 ~len:8)

let test_checksum_self_validates =
  qtest "checksummed region validates to zero"
    QCheck2.Gen.(string_size ~gen:char (int_range 2 300))
    (fun s ->
      let b = Bytes.of_string s in
      (* Store the checksum over the region in the first 2 bytes. *)
      Bytes.set b 0 '\000';
      Bytes.set b 1 '\000';
      let c = Checksum.bytes b ~off:0 ~len:(Bytes.length b) in
      Bytes.set b 0 (Char.chr (c lsr 8));
      Bytes.set b 1 (Char.chr (c land 0xff));
      Checksum.valid b ~off:0 ~len:(Bytes.length b))

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* sum = 0x0102 + 0x0300 = 0x0402; csum = ~0x0402 = 0xfbfd. *)
  Alcotest.(check int) "odd length pads" 0xfbfd (Checksum.bytes b ~off:0 ~len:3)

(* {2 Ethernet} *)

let test_ethernet_roundtrip () =
  let h =
    {
      Ethernet.dst = Addr.Mac.of_index 5;
      src = Addr.Mac.of_index 9;
      ethertype = Ethernet.Ipv4;
    }
  in
  let frame = Ethernet.frame h ~payload:(Bytes.of_string "hello") in
  (match Ethernet.decode_header frame ~off:0 with
  | Some h' ->
      Alcotest.(check bool) "dst" true (Addr.Mac.equal h.Ethernet.dst h'.Ethernet.dst);
      Alcotest.(check bool) "src" true (Addr.Mac.equal h.Ethernet.src h'.Ethernet.src);
      Alcotest.(check bool) "ethertype" true (h'.Ethernet.ethertype = Ethernet.Ipv4)
  | None -> Alcotest.fail "decode failed");
  match Ethernet.payload frame with
  | Some p -> Alcotest.(check string) "payload" "hello" (Bytes.to_string p)
  | None -> Alcotest.fail "payload failed"

let test_ethernet_runt () =
  Alcotest.(check bool) "runt rejected" true
    (Ethernet.decode_header (Bytes.create 5) ~off:0 = None)

(* {2 ARP} *)

let test_arp_roundtrip () =
  let p =
    {
      Arp.op = Arp.Request;
      sender_mac = Addr.Mac.of_index 1;
      sender_ip = ip 10 0 0 1;
      target_mac = Addr.Mac.broadcast;
      target_ip = ip 10 0 0 2;
    }
  in
  match Arp.decode (Arp.encode p) with
  | Some p' ->
      Alcotest.(check bool) "op" true (p'.Arp.op = Arp.Request);
      Alcotest.(check bool) "sender ip" true (Addr.Ipv4.equal p'.Arp.sender_ip (ip 10 0 0 1));
      Alcotest.(check bool) "target ip" true (Addr.Ipv4.equal p'.Arp.target_ip (ip 10 0 0 2))
  | None -> Alcotest.fail "arp decode failed"

let test_arp_cache_resolution () =
  let my_mac = Addr.Mac.of_index 1 and my_ip = ip 10 0 0 1 in
  let peer_mac = Addr.Mac.of_index 2 and peer_ip = ip 10 0 0 2 in
  let c = Arp.Cache.create ~my_mac ~my_ip () in
  let resolved = ref None in
  (match Arp.Cache.resolve c peer_ip ~on_ready:(fun m -> resolved := Some m) with
  | `Wait -> ()
  | `Hit _ | `Dropped -> Alcotest.fail "expected Wait on cold cache");
  (* Peer replies. *)
  let reply =
    {
      Arp.op = Arp.Reply;
      sender_mac = peer_mac;
      sender_ip = peer_ip;
      target_mac = my_mac;
      target_ip = my_ip;
    }
  in
  Alcotest.(check bool) "no counter-reply to a reply" true (Arp.Cache.input c reply = None);
  (match !resolved with
  | Some m -> Alcotest.(check bool) "callback got mac" true (Addr.Mac.equal m peer_mac)
  | None -> Alcotest.fail "pending callback not fired");
  match Arp.Cache.resolve c peer_ip ~on_ready:(fun _ -> ()) with
  | `Hit m -> Alcotest.(check bool) "cached now" true (Addr.Mac.equal m peer_mac)
  | `Wait | `Dropped -> Alcotest.fail "expected Hit after learning"

let test_arp_cache_answers_requests () =
  let my_mac = Addr.Mac.of_index 1 and my_ip = ip 10 0 0 1 in
  let c = Arp.Cache.create ~my_mac ~my_ip () in
  let req =
    {
      Arp.op = Arp.Request;
      sender_mac = Addr.Mac.of_index 2;
      sender_ip = ip 10 0 0 2;
      target_mac = Addr.Mac.broadcast;
      target_ip = my_ip;
    }
  in
  match Arp.Cache.input c req with
  | Some reply ->
      Alcotest.(check bool) "reply op" true (reply.Arp.op = Arp.Reply);
      Alcotest.(check bool) "reply sender is me" true (Addr.Mac.equal reply.Arp.sender_mac my_mac);
      (* And we learned the requester opportunistically. *)
      Alcotest.(check bool) "learned requester" true
        (Arp.Cache.lookup c (ip 10 0 0 2) <> None)
  | None -> Alcotest.fail "no reply to request for my ip"

let test_arp_pending_overflow_drops () =
  let c =
    Arp.Cache.create ~max_pending:2 ~my_mac:(Addr.Mac.of_index 1)
      ~my_ip:(ip 10 0 0 1) ()
  in
  let target = ip 10 0 0 9 in
  (match Arp.Cache.resolve c target ~on_ready:(fun _ -> ()) with
  | `Wait -> ()
  | `Hit _ | `Dropped -> Alcotest.fail "first resolve should wait");
  (match Arp.Cache.resolve c target ~on_ready:(fun _ -> ()) with
  | `Wait -> ()
  | `Hit _ | `Dropped -> Alcotest.fail "second resolve should queue");
  (match Arp.Cache.resolve c target ~on_ready:(fun _ -> ()) with
  | `Dropped -> ()
  | `Wait | `Hit _ -> Alcotest.fail "third resolve should be dropped (bounded queue)")

let test_icmp_dest_unreachable () =
  let m = Icmp.Dest_unreachable { code = 3 } in
  (match Icmp.decode (Icmp.encode m) with
  | Some (Icmp.Dest_unreachable { code }) -> Alcotest.(check int) "code" 3 code
  | _ -> Alcotest.fail "unreachable decode failed");
  Alcotest.(check bool) "no reply to an error message" true (Icmp.reply_to m = None)

let test_icmp_oversized_echo_rejected () =
  (* A monster echo payload must be refused by the decoder (the
     ping-of-death guard). *)
  let b = Bytes.create (8 + Icmp.max_echo_payload + 1) in
  Newt_net.Wire.put_u8 b 0 8;
  Newt_net.Wire.put_u8 b 1 0;
  Newt_net.Wire.put_u16 b 2 0;
  Newt_net.Wire.put_u16 b 2 (Checksum.bytes b ~off:0 ~len:(Bytes.length b));
  Alcotest.(check bool) "oversized echo rejected" true (Icmp.decode b = None)

let test_arp_flush () =
  let c = Arp.Cache.create ~my_mac:(Addr.Mac.of_index 1) ~my_ip:(ip 10 0 0 1) () in
  Arp.Cache.insert c (ip 10 0 0 9) (Addr.Mac.of_index 9);
  Alcotest.(check int) "one entry" 1 (Arp.Cache.size c);
  Arp.Cache.flush c;
  Alcotest.(check int) "flushed" 0 (Arp.Cache.size c)

(* {2 IPv4} *)

let test_ipv4_header_roundtrip () =
  let h =
    {
      Ipv4.src = ip 10 0 0 1;
      dst = ip 10 0 0 2;
      protocol = Ipv4.Tcp;
      ttl = 64;
      ident = 4242;
      total_len = 0;
    }
  in
  let pkt = Ipv4.packet h ~payload:(Bytes.of_string "payload!") in
  match Ipv4.payload pkt with
  | Some (h', p) ->
      Alcotest.(check bool) "src" true (Addr.Ipv4.equal h'.Ipv4.src (ip 10 0 0 1));
      Alcotest.(check bool) "proto" true (h'.Ipv4.protocol = Ipv4.Tcp);
      Alcotest.(check int) "total len" 28 h'.Ipv4.total_len;
      Alcotest.(check string) "payload" "payload!" (Bytes.to_string p)
  | None -> Alcotest.fail "ip decode failed"

let test_ipv4_corrupt_checksum_rejected () =
  let h =
    {
      Ipv4.src = ip 1 2 3 4;
      dst = ip 5 6 7 8;
      protocol = Ipv4.Udp;
      ttl = 64;
      ident = 1;
      total_len = 0;
    }
  in
  let pkt = Ipv4.packet h ~payload:Bytes.empty in
  Bytes.set pkt 8 '\x01' (* corrupt the ttl field *);
  Alcotest.(check bool) "rejected" true (Ipv4.decode_header pkt ~off:0 = None)

let test_route_longest_prefix () =
  let t = Ipv4.Route.create () in
  Ipv4.Route.add t { Ipv4.Route.prefix = ip 0 0 0 0; bits = 0; iface = 0; gateway = Some (ip 10 0 0 254) };
  Ipv4.Route.add t { Ipv4.Route.prefix = ip 10 0 0 0; bits = 8; iface = 1; gateway = None };
  Ipv4.Route.add t { Ipv4.Route.prefix = ip 10 1 0 0; bits = 16; iface = 2; gateway = None };
  let iface_for a = match Ipv4.Route.lookup t a with Some e -> e.Ipv4.Route.iface | None -> -1 in
  Alcotest.(check int) "most specific wins" 2 (iface_for (ip 10 1 2 3));
  Alcotest.(check int) "/8 route" 1 (iface_for (ip 10 2 3 4));
  Alcotest.(check int) "default route" 0 (iface_for (ip 8 8 8 8));
  Ipv4.Route.remove t ~prefix:(ip 10 1 0 0) ~bits:16;
  Alcotest.(check int) "after removal falls back" 1 (iface_for (ip 10 1 2 3))

(* {2 ICMP} *)

let test_icmp_echo_roundtrip () =
  let m = Icmp.Echo_request { ident = 7; seq = 3; data = Bytes.of_string "ping" } in
  (match Icmp.decode (Icmp.encode m) with
  | Some (Icmp.Echo_request { ident; seq; data }) ->
      Alcotest.(check int) "ident" 7 ident;
      Alcotest.(check int) "seq" 3 seq;
      Alcotest.(check string) "data" "ping" (Bytes.to_string data)
  | _ -> Alcotest.fail "echo decode failed");
  match Icmp.reply_to m with
  | Some (Icmp.Echo_reply { ident = 7; seq = 3; _ }) -> ()
  | _ -> Alcotest.fail "reply_to wrong"

let test_icmp_bad_checksum () =
  let b = Icmp.encode (Icmp.Echo_request { ident = 1; seq = 1; data = Bytes.empty }) in
  Bytes.set b 4 '\xff';
  Alcotest.(check bool) "corrupt rejected" true (Icmp.decode b = None)

(* {2 UDP} *)

let test_udp_roundtrip () =
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  let dg = Udp.encode ~src ~dst { Udp.src_port = 53; dst_port = 4242 } ~payload:(Bytes.of_string "dns?") in
  match Udp.decode ~src ~dst dg with
  | Some (h, p) ->
      Alcotest.(check int) "src port" 53 h.Udp.src_port;
      Alcotest.(check int) "dst port" 4242 h.Udp.dst_port;
      Alcotest.(check string) "payload" "dns?" (Bytes.to_string p)
  | None -> Alcotest.fail "udp decode failed"

let test_udp_wrong_pseudo_header_rejected () =
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  let dg = Udp.encode ~src ~dst { Udp.src_port = 1; dst_port = 2 } ~payload:Bytes.empty in
  (* Same bytes validated against different addresses must fail. *)
  Alcotest.(check bool) "rejected" true (Udp.decode ~src:(ip 9 9 9 9) ~dst dg = None)

let test_udp_offload_finalize () =
  let src = ip 172 16 0 1 and dst = ip 172 16 0 2 in
  let partial =
    Udp.encode_partial_csum ~src ~dst { Udp.src_port = 7; dst_port = 9 }
      ~payload:(Bytes.of_string "offloaded payload")
  in
  (* Before finalization the checksum is not valid... *)
  Alcotest.(check bool) "partial invalid" true (Udp.decode ~src ~dst partial = None);
  Udp.finalize_csum partial;
  match Udp.decode ~src ~dst partial with
  | Some (_, p) -> Alcotest.(check string) "after offload" "offloaded payload" (Bytes.to_string p)
  | None -> Alcotest.fail "finalized datagram invalid"

(* {2 TCP wire} *)

let test_tcp_wire_roundtrip =
  qtest "tcp header + payload roundtrip"
    QCheck2.Gen.(
      tup4 (int_range 0 65535) (int_range 0 65535)
        (int_range 0 0xfffffff) (string_size ~gen:char (int_range 0 1460)))
    (fun (sp, dp, seq, payload) ->
      let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
      let h =
        {
          Tcp_wire.src_port = sp;
          dst_port = dp;
          seq;
          ack = (seq + 1) land 0xffffffff;
          flags = Tcp_wire.flag_ack;
          window = 4096;
          mss = None;
          wscale = None;
        }
      in
      let b = Tcp_wire.encode ~src ~dst h ~payload:(Bytes.of_string payload) in
      match Tcp_wire.decode ~src ~dst b with
      | Some (h', p) ->
          h'.Tcp_wire.src_port = sp && h'.Tcp_wire.dst_port = dp
          && h'.Tcp_wire.seq = seq
          && Bytes.to_string p = payload
      | None -> false)

let test_tcp_wire_options () =
  let src = ip 1 1 1 1 and dst = ip 2 2 2 2 in
  let h =
    {
      Tcp_wire.src_port = 80;
      dst_port = 12345;
      seq = 1000;
      ack = 0;
      flags = Tcp_wire.flag_syn;
      window = 65535;
      mss = Some 1460;
      wscale = Some 7;
    }
  in
  let b = Tcp_wire.encode ~src ~dst h ~payload:Bytes.empty in
  match Tcp_wire.decode ~src ~dst b with
  | Some (h', _) ->
      Alcotest.(check (option int)) "mss option" (Some 1460) h'.Tcp_wire.mss;
      Alcotest.(check (option int)) "wscale option" (Some 7) h'.Tcp_wire.wscale;
      Alcotest.(check bool) "syn flag" true h'.Tcp_wire.flags.Tcp_wire.syn
  | None -> Alcotest.fail "decode with options failed"

let test_tcp_wire_partial_csum () =
  let src = ip 1 1 1 1 and dst = ip 2 2 2 2 in
  let h =
    {
      Tcp_wire.src_port = 80;
      dst_port = 81;
      seq = 7;
      ack = 9;
      flags = Tcp_wire.flag_ack;
      window = 100;
      mss = None;
      wscale = None;
    }
  in
  let b = Tcp_wire.encode ~src ~dst ~partial_csum:true h ~payload:(Bytes.of_string "data") in
  Alcotest.(check bool) "partial invalid" true (Tcp_wire.decode ~src ~dst b = None);
  Tcp_wire.finalize_csum b;
  Alcotest.(check bool) "finalized valid" true (Tcp_wire.decode ~src ~dst b <> None)

let test_tcp_wire_corruption_rejected =
  qtest "bit flip invalidates checksum"
    QCheck2.Gen.(int_range 0 23)
    (fun pos ->
      let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
      let h =
        {
          Tcp_wire.src_port = 1;
          dst_port = 2;
          seq = 3;
          ack = 4;
          flags = Tcp_wire.flag_ack;
          window = 5;
          mss = None;
          wscale = None;
        }
      in
      let b = Tcp_wire.encode ~src ~dst h ~payload:(Bytes.of_string "abcd") in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      Tcp_wire.decode ~src ~dst b = None)

(* {2 DNS} *)

let test_dns_query_roundtrip () =
  let q = Dns.query ~id:4242 "www.vu.nl" in
  match Dns.decode (Dns.encode q) with
  | Some m ->
      Alcotest.(check int) "id" 4242 m.Dns.id;
      Alcotest.(check bool) "is a query" false m.Dns.is_response;
      (match m.Dns.questions with
      | [ { Dns.qname; qtype } ] ->
          Alcotest.(check string) "qname" "www.vu.nl" qname;
          Alcotest.(check int) "qtype A" 1 qtype
      | _ -> Alcotest.fail "expected one question")
  | None -> Alcotest.fail "query decode failed"

let test_dns_response_roundtrip () =
  let q = Dns.query ~id:7 "ssh.newtos.example" in
  let r = Dns.response ~query:q (Some (ip 10 0 0 2)) in
  match Dns.decode (Dns.encode r) with
  | Some m ->
      Alcotest.(check bool) "is response" true m.Dns.is_response;
      Alcotest.(check int) "rcode NoError" 0 m.Dns.rcode;
      (match m.Dns.answers with
      | [ a ] ->
          Alcotest.(check string) "answer name" "ssh.newtos.example" a.Dns.name;
          Alcotest.(check bool) "address" true (Addr.Ipv4.equal a.Dns.addr (ip 10 0 0 2))
      | _ -> Alcotest.fail "expected one answer")
  | None -> Alcotest.fail "response decode failed"

let test_dns_nxdomain () =
  let q = Dns.query ~id:9 "no.such.host" in
  let r = Dns.response ~query:q None in
  match Dns.decode (Dns.encode r) with
  | Some m ->
      Alcotest.(check int) "NXDomain" 3 m.Dns.rcode;
      Alcotest.(check int) "no answers" 0 (List.length m.Dns.answers)
  | None -> Alcotest.fail "decode failed"

let test_dns_rejects_garbage =
  qtest "dns decoder survives arbitrary bytes"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 80))
    (fun s ->
      (* Must never raise; may or may not parse. *)
      match Dns.decode (Bytes.of_string s) with Some _ | None -> true)

let test_dns_name_roundtrip =
  qtest "dns qname label roundtrip"
    QCheck2.Gen.(
      map (String.concat ".")
        (list_size (int_range 1 5)
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))))
    (fun name ->
      let q = Dns.query ~id:1 name in
      match Dns.decode (Dns.encode q) with
      | Some { Dns.questions = [ { Dns.qname; _ } ]; _ } -> String.equal qname name
      | _ -> false)

(* {2 Seq32} *)

let test_seq32_wraparound () =
  let near_top = Seq32.norm 0xffffff00 in
  let wrapped = Seq32.add near_top 0x200 in
  Alcotest.(check int) "wraps" 0x100 wrapped;
  Alcotest.(check bool) "wrapped is after" true (Seq32.gt wrapped near_top);
  Alcotest.(check int) "diff across wrap" 0x200 (Seq32.diff wrapped near_top);
  Alcotest.(check int) "negative diff" (-0x200) (Seq32.diff near_top wrapped)

let test_seq32_between () =
  Alcotest.(check bool) "inside" true (Seq32.between 5 ~low:3 ~high:10);
  Alcotest.(check bool) "low inclusive" true (Seq32.between 3 ~low:3 ~high:10);
  Alcotest.(check bool) "high exclusive" false (Seq32.between 10 ~low:3 ~high:10);
  let top = Seq32.norm 0xfffffffe in
  Alcotest.(check bool) "window across wrap" true
    (Seq32.between 1 ~low:top ~high:(Seq32.add top 8))

let test_seq32_props =
  qtest "add/diff inverse"
    QCheck2.Gen.(tup2 (int_range 0 0xffffffff) (int_range 0 0xffffff))
    (fun (s, n) ->
      let s = Seq32.norm s in
      Seq32.diff (Seq32.add s n) s = n)

(* {2 Bytebuf} *)

let test_bytebuf_fifo () =
  let b = Bytebuf.create ~capacity:8 in
  Alcotest.(check int) "push partial" 8 (Bytebuf.push b (Bytes.of_string "0123456789") ~off:0 ~len:10);
  Alcotest.(check string) "peek front" "0123" (Bytes.to_string (Bytebuf.peek b ~off:0 ~len:4));
  Alcotest.(check string) "peek mid" "45" (Bytes.to_string (Bytebuf.peek b ~off:4 ~len:2));
  Bytebuf.drop b 4;
  Alcotest.(check int) "room opens" 4 (Bytebuf.available b);
  Alcotest.(check int) "wrap push" 4 (Bytebuf.push b (Bytes.of_string "abcd") ~off:0 ~len:4);
  Alcotest.(check string) "order across wrap" "4567abcd"
    (Bytes.to_string (Bytebuf.pop b ~max:100))

let test_bytebuf_stress =
  qtest "random push/pop keeps byte order"
    QCheck2.Gen.(list_size (int_range 1 60) (string_size ~gen:printable (int_range 0 20)))
    (fun chunks ->
      let b = Bytebuf.create ~capacity:64 in
      let expected = Buffer.create 256 in
      let popped = Buffer.create 256 in
      List.iter
        (fun s ->
          let n = Bytebuf.push b (Bytes.of_string s) ~off:0 ~len:(String.length s) in
          Buffer.add_string expected (String.sub s 0 n);
          if Buffer.length expected mod 3 = 0 then
            Buffer.add_bytes popped (Bytebuf.pop b ~max:7))
        chunks;
      Buffer.add_bytes popped (Bytebuf.pop b ~max:10000);
      String.equal (Buffer.contents expected) (Buffer.contents popped))

let test_bytebuf_bounds () =
  let b = Bytebuf.create ~capacity:4 in
  ignore (Bytebuf.push b (Bytes.of_string "ab") ~off:0 ~len:2);
  Alcotest.check_raises "peek oob" (Invalid_argument "Bytebuf.peek") (fun () ->
      ignore (Bytebuf.peek b ~off:1 ~len:2));
  Alcotest.check_raises "drop oob" (Invalid_argument "Bytebuf.drop") (fun () ->
      Bytebuf.drop b 3)

let suite =
  [
    ("ipv4 address parse/print", `Quick, test_ipv4_roundtrip);
    ("ipv4 prefix matching", `Quick, test_ipv4_prefix);
    ("mac address roundtrip", `Quick, test_mac_roundtrip);
    ("checksum RFC 1071 vector", `Quick, test_checksum_known_vector);
    test_checksum_self_validates;
    ("checksum odd length", `Quick, test_checksum_odd_length);
    ("ethernet frame roundtrip", `Quick, test_ethernet_roundtrip);
    ("ethernet runt frame rejected", `Quick, test_ethernet_runt);
    ("arp packet roundtrip", `Quick, test_arp_roundtrip);
    ("arp cache resolves with callbacks", `Quick, test_arp_cache_resolution);
    ("arp cache answers requests for our ip", `Quick, test_arp_cache_answers_requests);
    ("arp pending queue is bounded", `Quick, test_arp_pending_overflow_drops);
    ("icmp destination unreachable", `Quick, test_icmp_dest_unreachable);
    ("icmp oversized echo rejected", `Quick, test_icmp_oversized_echo_rejected);
    ("arp cache flush (restart)", `Quick, test_arp_flush);
    ("ipv4 header roundtrip", `Quick, test_ipv4_header_roundtrip);
    ("ipv4 corrupt header rejected", `Quick, test_ipv4_corrupt_checksum_rejected);
    ("route longest prefix match", `Quick, test_route_longest_prefix);
    ("icmp echo roundtrip + reply", `Quick, test_icmp_echo_roundtrip);
    ("icmp corrupt rejected", `Quick, test_icmp_bad_checksum);
    ("udp datagram roundtrip", `Quick, test_udp_roundtrip);
    ("udp pseudo-header mismatch rejected", `Quick, test_udp_wrong_pseudo_header_rejected);
    ("udp checksum offload finalize", `Quick, test_udp_offload_finalize);
    test_tcp_wire_roundtrip;
    ("tcp options mss+wscale", `Quick, test_tcp_wire_options);
    ("tcp partial checksum offload", `Quick, test_tcp_wire_partial_csum);
    test_tcp_wire_corruption_rejected;
    ("dns query roundtrip", `Quick, test_dns_query_roundtrip);
    ("dns response roundtrip", `Quick, test_dns_response_roundtrip);
    ("dns nxdomain", `Quick, test_dns_nxdomain);
    test_dns_rejects_garbage;
    test_dns_name_roundtrip;
    ("seq32 wraparound compares", `Quick, test_seq32_wraparound);
    ("seq32 between windows", `Quick, test_seq32_between);
    test_seq32_props;
    ("bytebuf fifo with wraparound", `Quick, test_bytebuf_fifo);
    test_bytebuf_stress;
    ("bytebuf bounds checking", `Quick, test_bytebuf_bounds);
  ]
