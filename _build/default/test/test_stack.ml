(* Tests for the stack substrate: the event-driven server runtime
   (Proc) and the Table II capacity model. *)

module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Machine = Newt_hw.Machine
module Sim_chan = Newt_channels.Sim_chan
module Proc = Newt_stack.Proc
module Msg = Newt_stack.Msg
module Capacity = Newt_stack.Capacity
module Costs = Newt_hw.Costs

let make_world () =
  let e = Engine.create () in
  let m = Machine.create e in
  (e, m)

let dummy_msg = Msg.Sock_event { sock = 0; event = `Readable }

let test_proc_drains_messages () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let chan = Sim_chan.create ~id:1 () in
  let got = ref 0 in
  Proc.add_rx p chan (fun _ -> (100, fun () -> incr got));
  for _ = 1 to 5 do
    ignore (Sim_chan.send chan dummy_msg)
  done;
  Engine.run e;
  Alcotest.(check int) "all messages processed" 5 !got

let test_proc_round_robin_fairness () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let a = Sim_chan.create ~id:1 () and b = Sim_chan.create ~id:2 () in
  let order = ref [] in
  Proc.add_rx p a (fun _ -> (10, fun () -> order := "a" :: !order));
  Proc.add_rx p b (fun _ -> (10, fun () -> order := "b" :: !order));
  (* Load both channels before the engine runs anything. *)
  for _ = 1 to 3 do
    ignore (Sim_chan.send a dummy_msg);
    ignore (Sim_chan.send b dummy_msg)
  done;
  Engine.run e;
  let s = String.concat "" (List.rev !order) in
  let alternates =
    String.length s = 6
    &&
    let ok = ref true in
    for i = 0 to String.length s - 2 do
      if s.[i] = s.[i + 1] then ok := false
    done;
    !ok
  in
  Alcotest.(check bool)
    (Printf.sprintf "alternates rather than starving (%s)" s)
    true alternates

let test_proc_crash_drops_work () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let chan = Sim_chan.create ~id:1 () in
  let got = ref 0 in
  Proc.add_rx p chan (fun _ -> (1000, fun () -> incr got));
  ignore (Sim_chan.send chan dummy_msg);
  (* Crash before the work completes. *)
  ignore (Engine.schedule e 10 (fun () -> Proc.crash p));
  Engine.run e;
  Alcotest.(check int) "in-flight work died with the incarnation" 0 !got;
  Alcotest.(check bool) "not alive" false (Proc.alive p)

let test_proc_restart_bumps_incarnation () =
  let _, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let restarted_fresh = ref None in
  Proc.set_on_restart p (fun ~fresh -> restarted_fresh := Some fresh);
  let inc0 = Proc.incarnation p in
  Proc.crash p;
  Proc.restart p;
  Alcotest.(check int) "incarnation bumped" (inc0 + 1) (Proc.incarnation p);
  Alcotest.(check (option bool)) "restart hook ran with fresh=false" (Some false)
    !restarted_fresh;
  Alcotest.(check bool) "alive again" true (Proc.alive p)

let test_proc_hang_stops_progress () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let chan = Sim_chan.create ~id:1 () in
  let got = ref 0 in
  Proc.add_rx p chan (fun _ -> (10, fun () -> incr got));
  Proc.hang p;
  ignore (Sim_chan.send chan dummy_msg);
  Engine.run e;
  Alcotest.(check int) "hung server processes nothing" 0 !got;
  Alcotest.(check bool) "alive but unresponsive" true
    (Proc.alive p && not (Proc.responsive p))

let test_proc_timer_dies_with_incarnation () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let fired = ref false in
  Proc.after p 1000 ~cost:10 (fun () -> fired := true);
  Proc.crash p;
  Proc.restart p;
  Engine.run e;
  Alcotest.(check bool) "old incarnation's timer suppressed" false !fired

let test_proc_work_serializes_on_core () =
  let e, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let p = Proc.create m ~name:"srv" ~core () in
  let finish_times = ref [] in
  Proc.exec p ~cost:100 (fun () -> finish_times := Engine.now e :: !finish_times);
  Proc.exec p ~cost:100 (fun () -> finish_times := Engine.now e :: !finish_times);
  Engine.run e;
  Alcotest.(check (list int)) "sequential on one core" [ 100; 200 ]
    (List.rev !finish_times)

(* {2 Capacity model: the shape of Table II} *)

let gbps config = (Capacity.evaluate config).Capacity.goodput_gbps

let test_table2_ordering () =
  (* The orderings the paper's Table II establishes. *)
  Alcotest.(check bool) "minix << any NewtOS config" true
    (gbps Capacity.Minix_sync *. 10.0 < gbps Capacity.Split_dedicated);
  Alcotest.(check bool) "SYSCALL server helps (line 2 < 3)" true
    (gbps Capacity.Split_dedicated < gbps Capacity.Split_dedicated_sc);
  Alcotest.(check bool) "single server beats split (line 3 < 4)" true
    (gbps Capacity.Split_dedicated_sc < gbps Capacity.Single_server_sc);
  Alcotest.(check bool) "TSO saturates the wire (line 4 < 5)" true
    (gbps Capacity.Single_server_sc < gbps Capacity.Single_server_sc_tso);
  Alcotest.(check bool) "both TSO configs wire-limited" true
    (abs_float (gbps Capacity.Single_server_sc_tso -. gbps Capacity.Split_dedicated_sc_tso)
    < 0.01);
  Alcotest.(check bool) "Linux 10GbE fastest" true
    (gbps Capacity.Linux_10gbe > gbps Capacity.Split_dedicated_sc_tso)

let test_table2_magnitudes () =
  (* Within a reasonable band of the paper's numbers. *)
  let close ?(tol = 0.35) paper ours =
    abs_float (ours -. paper) /. paper < tol
  in
  Alcotest.(check bool) "minix ~0.12 Gbps" true (close 0.12 (gbps Capacity.Minix_sync));
  Alcotest.(check bool) "split ~3.2" true (close 3.2 (gbps Capacity.Split_dedicated));
  Alcotest.(check bool) "split+sc ~3.6" true (close 3.6 (gbps Capacity.Split_dedicated_sc));
  Alcotest.(check bool) "single ~3.9" true (close 3.9 (gbps Capacity.Single_server_sc));
  Alcotest.(check bool) "tso ~5" true (close 5.0 (gbps Capacity.Split_dedicated_sc_tso));
  Alcotest.(check bool) "linux ~8.4" true (close 8.4 (gbps Capacity.Linux_10gbe))

let test_table2_tso_wire_limited () =
  let r = Capacity.evaluate Capacity.Split_dedicated_sc_tso in
  Alcotest.(check string) "bottleneck is the wire" "wire" r.Capacity.bottleneck

let test_table2_split_bottleneck_is_tcp () =
  let r = Capacity.evaluate Capacity.Split_dedicated_sc in
  Alcotest.(check string) "tcp server saturates first" "tcp server" r.Capacity.bottleneck;
  (* And the paper's claim that IP is NOT the bottleneck even with its
     triple handling. *)
  let ip_stage =
    List.find (fun s -> s.Capacity.label = "ip server") r.Capacity.stages
  in
  let tcp_stage =
    List.find (fun s -> s.Capacity.label = "tcp server") r.Capacity.stages
  in
  Alcotest.(check bool) "ip has headroom over tcp" true
    (ip_stage.Capacity.capacity_gbps > tcp_stage.Capacity.capacity_gbps *. 1.2)

let test_wire_goodput () =
  let g = Capacity.wire_goodput_gbps ~nics:1 ~gbps_per_nic:1.0 ~mss:1460 in
  Alcotest.(check bool) "1 Gbps carries ~0.95 Gbps of TCP payload" true
    (g > 0.92 && g < 0.97)

let test_capacity_cost_sensitivity () =
  (* Raising the per-message channel cost must hurt the split stack. *)
  let base = Costs.default in
  let expensive = { base with Costs.channel_marshal = 3000; channel_demux = 3000 } in
  let fast = (Capacity.evaluate ~costs:base Capacity.Split_dedicated_sc).Capacity.goodput_gbps in
  let slow =
    (Capacity.evaluate ~costs:expensive Capacity.Split_dedicated_sc).Capacity.goodput_gbps
  in
  Alcotest.(check bool) "expensive IPC slows the split stack" true (slow < fast *. 0.7)

let suite =
  [
    ("proc drains channel messages", `Quick, test_proc_drains_messages);
    ("proc round-robins channels", `Quick, test_proc_round_robin_fairness);
    ("proc crash drops in-flight work", `Quick, test_proc_crash_drops_work);
    ("proc restart bumps incarnation", `Quick, test_proc_restart_bumps_incarnation);
    ("proc hang stops progress", `Quick, test_proc_hang_stops_progress);
    ("proc timers die with incarnation", `Quick, test_proc_timer_dies_with_incarnation);
    ("proc work serializes on its core", `Quick, test_proc_work_serializes_on_core);
    ("table II ordering matches the paper", `Quick, test_table2_ordering);
    ("table II magnitudes within band", `Quick, test_table2_magnitudes);
    ("table II TSO configs are wire-limited", `Quick, test_table2_tso_wire_limited);
    ("table II split bottleneck is TCP, not IP", `Quick, test_table2_split_bottleneck_is_tcp);
    ("wire goodput accounting", `Quick, test_wire_goodput);
    ("capacity model reacts to IPC cost", `Quick, test_capacity_cost_sensitivity);
  ]
