(* The benchmark harness.

   Two halves:

   1. Bechamel microbenchmarks of the real data structures behind the
      paper's micro-claims (Section IV): the lock-free SPSC channel
      enqueue (paper: ~30 cycles between cores, vs ~150/3000 for a
      SYSCALL), the wire codecs, pools and the request database. These
      run natively on this machine, so absolute numbers differ from the
      1.9 GHz Opteron; the point is the relative cheapness of the
      channel operations.

   2. The evaluation harness: regenerates every table and figure of the
      paper (Table II, Table III, Table IV, Figure 4, Figure 5, the
      driver-coalescing claim of Section VI-A) from the simulator and
      prints paper-vs-measured, plus an ablation of the design choices.

   Run everything: dune exec bench/main.exe
   One piece:      dune exec bench/main.exe -- [micro|table2|campaign|fig4|fig5|coalesce|ablate|scaling|churn] *)

module E = Newt_core.Experiments
module V = Newt_verify
module C = Newt_stack.Capacity
module Costs = Newt_hw.Costs
module Spsc = Newt_channels.Spsc_queue
module Pool = Newt_channels.Pool
module Request_db = Newt_channels.Request_db
module Checksum = Newt_net.Checksum
module Tcp_wire = Newt_net.Tcp_wire
module Addr = Newt_net.Addr
module Eventq = Newt_sim.Eventq

(* {1 Bechamel micro suite} *)

let test_spsc_ping_pong =
  (* Uncontended push+pop pair on the ring — the mechanism whose
     enqueue the paper measures at ~30 cycles. *)
  let q = Spsc.create ~capacity:1024 () in
  Bechamel.Test.make ~name:"spsc push+pop (same domain)"
    (Bechamel.Staged.stage (fun () ->
         ignore (Spsc.try_push q 1);
         ignore (Spsc.try_pop q)))

let test_spsc_batch =
  let q = Spsc.create ~capacity:1024 () in
  Bechamel.Test.make ~name:"spsc 512-batch enqueue/drain"
    (Bechamel.Staged.stage (fun () ->
         for i = 0 to 511 do
           ignore (Spsc.try_push q i)
         done;
         let rec drain () = match Spsc.try_pop q with Some _ -> drain () | None -> () in
         drain ()))

let test_checksum =
  let b = Bytes.make 1460 'x' in
  Bechamel.Test.make ~name:"internet checksum 1460B (sw, no offload)"
    (Bechamel.Staged.stage (fun () -> ignore (Checksum.bytes b ~off:0 ~len:1460)))

let test_tcp_encode =
  let src = Addr.Ipv4.v 10 0 0 1 and dst = Addr.Ipv4.v 10 0 0 2 in
  let payload = Bytes.make 1460 'p' in
  let hdr =
    {
      Tcp_wire.src_port = 5001;
      dst_port = 80;
      seq = 12345;
      ack = 999;
      flags = Tcp_wire.flag_ack;
      window = 65535;
      mss = None;
      wscale = None;
    }
  in
  Bechamel.Test.make ~name:"tcp segment encode 1460B (full csum)"
    (Bechamel.Staged.stage (fun () ->
         ignore (Tcp_wire.encode ~src ~dst hdr ~payload)))

let test_pool_cycle =
  let pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:64 ~slot_size:2048 in
  Bechamel.Test.make ~name:"pool alloc+free (zero-copy chunk)"
    (Bechamel.Staged.stage (fun () ->
         let p = Pool.alloc pool ~len:1460 in
         Pool.free pool p))

let test_request_db =
  let db = Request_db.create () in
  Bechamel.Test.make ~name:"request db submit+complete"
    (Bechamel.Staged.stage (fun () ->
         let id = Request_db.submit db ~peer:1 ~payload:() ~abort:(fun _ () -> ()) in
         ignore (Request_db.complete db id)))

let test_eventq =
  let q = Eventq.create () in
  let t = ref 0 in
  Bechamel.Test.make ~name:"event queue push+pop"
    (Bechamel.Staged.stage (fun () ->
         incr t;
         Eventq.push q !t ();
         ignore (Eventq.pop q)))

let test_tso_split =
  let frame =
    let seg =
      Tcp_wire.encode ~src:(Addr.Ipv4.v 10 0 0 1) ~dst:(Addr.Ipv4.v 10 0 0 2)
        ~partial_csum:true
        {
          Tcp_wire.src_port = 1;
          dst_port = 2;
          seq = 0;
          ack = 0;
          flags = Tcp_wire.flag_ack;
          window = 1000;
          mss = None;
          wscale = None;
        }
        ~payload:(Bytes.make 64000 't')
    in
    let pkt =
      Newt_net.Ipv4.packet
        {
          Newt_net.Ipv4.src = Addr.Ipv4.v 10 0 0 1;
          dst = Addr.Ipv4.v 10 0 0 2;
          protocol = Newt_net.Ipv4.Tcp;
          ttl = 64;
          ident = 0;
          total_len = 0;
        }
        ~payload:seg
    in
    Newt_net.Ethernet.frame
      {
        Newt_net.Ethernet.dst = Addr.Mac.of_index 2;
        src = Addr.Mac.of_index 1;
        ethertype = Newt_net.Ethernet.Ipv4;
      }
      ~payload:pkt
  in
  Bechamel.Test.make ~name:"NIC TSO split 64KB -> 44 wire frames"
    (Bechamel.Staged.stage (fun () ->
         ignore (Newt_nic.Offload.tso_split frame ~mss:1460)))

let test_dns_codec =
  let q = Newt_net.Dns.encode (Newt_net.Dns.query ~id:7 "www.vu.nl") in
  Bechamel.Test.make ~name:"dns query decode+answer encode"
    (Bechamel.Staged.stage (fun () ->
         match Newt_net.Dns.decode q with
         | Some m ->
             ignore
               (Newt_net.Dns.encode
                  (Newt_net.Dns.response ~query:m (Some (Addr.Ipv4.v 10 0 0 2))))
         | None -> assert false))

let test_pf_1024 =
  let rules =
    Newt_pf.Pf_engine.generate_ruleset (Newt_sim.Rng.create 7) ~n:1024
      ~protect_port:5001
  in
  let engine = Newt_pf.Pf_engine.create ~rules () in
  let miss_packet =
    (* No conntrack entry, walks deep into the ruleset. *)
    {
      Newt_pf.Rule.dir = `Out;
      proto = `Tcp;
      src_ip = Addr.Ipv4.v 10 0 0 1;
      dst_ip = Addr.Ipv4.v 10 0 0 2;
      src_port = 40000;
      dst_port = 5001;
    }
  in
  Bechamel.Test.make ~name:"pf verdict, 1024 rules (state miss)"
    (Bechamel.Staged.stage (fun () ->
         Newt_pf.Conntrack.clear (Newt_pf.Pf_engine.conntrack engine);
         ignore (Newt_pf.Pf_engine.filter engine ~now:0 miss_packet)))

let test_capacity_model =
  Bechamel.Test.make ~name:"table II capacity model (all 7 configs)"
    (Bechamel.Staged.stage (fun () ->
         List.iter (fun c -> ignore (C.evaluate c)) C.all))

(* Cross-domain throughput needs its own two-domain harness: one real
   producer domain, one real consumer domain, a single SPSC ring
   between them.  On an oversubscribed (1-core) machine the domains
   time-slice; a short sleep when the ring is persistently full or
   empty keeps the OS scheduler moving instead of burning the whole
   quantum in cpu_relax. *)
let spsc_capacity = 4096

let measure_spsc_cross_domain ~n () =
  let q = Spsc.create ~capacity:spsc_capacity () in
  let backoff tries =
    if tries < 200 then Domain.cpu_relax () else Unix.sleepf 5e-5
  in
  let t0 = Unix.gettimeofday () in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        let tries = ref 0 in
        while !i < n do
          if Spsc.try_push q !i then (
            incr i;
            tries := 0)
          else (
            backoff !tries;
            incr tries)
        done)
  in
  let got = ref 0 in
  let tries = ref 0 in
  while !got < n do
    match Spsc.try_pop q with
    | Some _ ->
        incr got;
        tries := 0
    | None ->
        backoff !tries;
        incr tries
  done;
  Domain.join producer;
  let dt = Unix.gettimeofday () -. t0 in
  let ns_per_msg = dt /. float_of_int n *. 1e9 in
  let m_msg_per_s = float_of_int n /. dt /. 1e6 in
  (ns_per_msg, m_msg_per_s)

let spsc_cross_domain_json ~n ~ns_per_msg ~m_msg_per_s =
  Printf.sprintf
    "{\"spsc_cross_domain\":{\"messages\":%d,\"capacity\":%d,\"domains\":2,\"ns_per_msg\":%.1f,\"m_msg_per_s\":%.2f}}"
    n spsc_capacity ns_per_msg m_msg_per_s

let print_spsc_cross_domain ?(n = 2_000_000) () =
  let ns_per_msg, m_msg_per_s = measure_spsc_cross_domain ~n () in
  Printf.printf "%-45s %10.1f ns/msg (%.1f M msg/s, 2 domains)\n"
    "spsc cross-domain transfer" ns_per_msg m_msg_per_s;
  Printf.printf
    "(paper's point of comparison: ~30 cycles/enqueue vs 150 hot / 3000 cold per SYSCALL trap)\n";
  print_endline (spsc_cross_domain_json ~n ~ns_per_msg ~m_msg_per_s);
  print_newline ()

let run_bechamel () =
  print_endline "Microbenchmarks (Section IV: channels vs kernel IPC)";
  print_endline "====================================================";
  let benchmark test =
    let open Bechamel in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-45s %10.1f ns/op\n%!" name est
        | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
      results
  in
  List.iter
    (fun t -> benchmark t)
    [
      test_spsc_ping_pong;
      test_spsc_batch;
      test_checksum;
      test_tcp_encode;
      test_pool_cycle;
      test_request_db;
      test_eventq;
      test_tso_split;
      test_dns_codec;
      test_pf_1024;
      test_capacity_model;
    ];
  print_spsc_cross_domain ()

(* {1 The evaluation harness} *)

let print_table2 () =
  print_endline "Table II — peak performance of outgoing TCP in various setups";
  print_endline "===============================================================";
  Printf.printf "%-62s %7s %9s\n" "configuration" "paper" "measured";
  List.iter
    (fun (r : E.table2_row) ->
      Printf.printf "%-62s %7s %6.2f Gbps   [bottleneck: %s]\n" r.E.label r.E.paper_gbps
        r.E.measured_gbps r.E.bottleneck)
    (E.table_ii ());
  print_newline ()

let sparkline points =
  Array.iter
    (fun (time, mbps) ->
      if int_of_float (time *. 10.0) mod 5 = 0 then
        Printf.printf "%6.1fs %8.1f Mbps |%s\n" time mbps
          (String.make (int_of_float (mbps /. 25.0)) '#'))
    points

let print_fig4 () =
  print_endline "Figure 4 — IP crash (paper: ~2s gap, one retransmission, full recovery)";
  print_endline "=========================================================================";
  let t = E.figure_ip_crash () in
  sparkline t.E.points;
  Printf.printf
    "receiver duplicates: %d; sender retransmits: %d; lost segments: %d; ip restarts: %d\n\n"
    t.E.duplicate_segments t.E.sender_retransmits t.E.lost_segments t.E.component_restarts

let print_fig5 () =
  print_endline
    "Figure 5 — PF crashes (paper: almost invisible, no loss, 1024 rules recovered)";
  print_endline "================================================================================";
  let t = E.figure_pf_crash () in
  sparkline t.E.points;
  Printf.printf
    "receiver duplicates: %d; sender retransmits: %d; lost segments: %d; pf restarts: %d\n\n"
    t.E.duplicate_segments t.E.sender_retransmits t.E.lost_segments t.E.component_restarts

(* Run [f] under the sanitizer and the channel-protocol checker with a
   continuous-verification aggregator, then emit the counter block as
   one JSON line (what CI's bench smoke greps for) and fail on any
   violation or leak.  The aggregator's per-run accounting folds the
   protocol counters into the same block. *)
let with_verify f =
  V.Sanitizer.install ();
  V.Protocol.install ();
  let v = V.Continuous.create () in
  Fun.protect
    ~finally:(fun () ->
      V.Protocol.uninstall ();
      V.Sanitizer.uninstall ())
    (fun () -> f v);
  Printf.printf "{%s}\n\n" (V.Continuous.json v);
  if not (V.Continuous.ok v) then exit 1

let print_campaign () =
  print_endline "Tables III and IV — fault-injection campaign (100 runs)";
  print_endline "=========================================================";
  with_verify @@ fun verify ->
  let c = E.fault_campaign ~verify () in
  Printf.printf "Table III %24s %6s %6s\n" "" "paper" "ours";
  List.iter
    (fun (name, paper, ours) -> Printf.printf "  %-30s %6d %6d\n" name paper ours)
    [
      ("Total", 100, List.length c.E.runs);
      ("TCP", 25, c.E.crashes_tcp);
      ("UDP", 10, c.E.crashes_udp);
      ("IP", 24, c.E.crashes_ip);
      ("PF", 25, c.E.crashes_pf);
      ("Driver", 16, c.E.crashes_drv);
    ];
  Printf.printf "Table IV %37s %6s %6s\n" "" "paper" "ours";
  List.iter
    (fun (name, paper, ours) -> Printf.printf "  %-42s %6s %6s\n" name paper ours)
    [
      ("Fully transparent crashes", "70", string_of_int c.E.fully_transparent);
      ( "Reachable from outside (+ manually fixed)",
        "90+6",
        Printf.sprintf "%d+%d" c.E.reachable c.E.manually_fixed );
      ("Crash broke TCP connections", "30", string_of_int c.E.broke_tcp);
      ("Transparent to UDP", "95", string_of_int c.E.transparent_udp);
      ("Reboot necessary", "3", string_of_int c.E.reboots);
    ];
  print_newline ()

let print_coalesce () =
  print_endline "Driver coalescing (Section VI-A)";
  print_endline "=================================";
  List.iter
    (fun (r : E.coalescing_result) ->
      Printf.printf "%d driver(s): busiest driver core %4.1f%% utilized at full 5-NIC TSO rate -> %s\n"
        r.E.drivers
        (100.0 *. r.E.driver_core_utilization)
        (if r.E.sustainable then "OK" else "overloaded"))
    (E.driver_coalescing ());
  (* And at packet level: all five drivers timeshare one core. *)
  let normal = E.split_peak_event_sim ~duration:0.5 () in
  let coalesced = E.split_peak_event_sim ~duration:0.5 ~coalesce_drivers:true () in
  Printf.printf
    "packet level: separate driver cores %.2f Gbps vs one shared driver core %.2f      Gbps (drv core %.0f%%)\n"
    normal.E.goodput_gbps coalesced.E.goodput_gbps
    (100. *. coalesced.E.drv_util);
  print_endline
    "(\"coalescing the drivers into one still does not lead to an overload\")";
  print_newline ()

let print_crosscheck () =
  print_endline "Cross-validation — packet-level simulation vs capacity model (5 NICs)";
  print_endline "=======================================================================";
  let r = E.split_peak_event_sim () in
  Printf.printf "event simulation:   %.2f Gbps (per link:%s Mbps)\n" r.E.goodput_gbps
    (String.concat ""
       (List.map (fun m -> Printf.sprintf " %.0f" m) r.E.per_link_mbps));
  Printf.printf "capacity model:     %.2f Gbps\n" r.E.capacity_prediction_gbps;
  Printf.printf
    "core utilization:   tcp %.0f%% (the bottleneck)  ip %.0f%%  pf %.0f%%  drv %.0f%%\n"
    (100. *. r.E.tcp_util) (100. *. r.E.ip_util) (100. *. r.E.pf_util)
    (100. *. r.E.drv_util);
  print_endline
    "(the paper's claims hold emergently: TCP saturates first; IP is not the";
  print_endline
    " bottleneck despite triple handling; the drivers' work is extremely small)";
  let single_gbps, single_util = E.single_server_event_sim () in
  Printf.printf
    "\nsingle-server topology, packet level: %.2f Gbps at %.0f%% stack-core \
     utilization\n"
    single_gbps (100. *. single_util);
  Printf.printf
    "(beats the split stack's %.2f Gbps by %.0f%%%% — the paper's line 3 vs line 4 \
     ordering, emergent)\n"
    r.E.goodput_gbps
    (100. *. (single_gbps -. r.E.goodput_gbps) /. r.E.goodput_gbps);
  let m = E.minix_event_sim () in
  Printf.printf
    "\nMinix baseline, packet level: %.0f Mbps (paper: 120); %.0fk sync kernel \
     IPCs/s; lossless: %b\n"
    m.E.minix_mbps
    (m.E.sync_ipcs_per_sec /. 1000.0)
    m.E.minix_lossless;
  print_endline
    "(one timeshared core, cold traps + context switch on every synchronous hop)";
  print_newline ()

let print_ablation () =
  print_endline "Ablation — design choices under the capacity model (split stack + SC)";
  print_endline "=======================================================================";
  let base = Costs.default in
  let eval name costs config =
    let r = C.evaluate ~costs config in
    Printf.printf "%-58s %6.2f Gbps\n" name r.C.goodput_gbps
  in
  eval "baseline (fast-path channels, zero copy, batching)" base C.Split_dedicated_sc;
  eval "channels replaced by kernel IPC (trap per message)"
    {
      base with
      Costs.channel_enqueue = base.Costs.trap_hot + base.Costs.kipc_kernel_work;
      channel_dequeue = base.Costs.trap_hot;
    }
    C.Split_dedicated_sc;
  eval "cold-cache traps on every kernel entry"
    {
      base with
      Costs.channel_enqueue = base.Costs.trap_cold + base.Costs.kipc_kernel_work;
      channel_dequeue = base.Costs.trap_cold;
    }
    C.Split_dedicated_sc;
  eval "zero copy disabled (payload copied at each hop)"
    {
      base with
      (* Two extra 1460-byte copies per segment: transport->IP and
         IP->driver, charged via the per-hop marshal cost. *)
      Costs.channel_marshal = base.Costs.channel_marshal + (2 * Costs.copy_cost base 1460);
    }
    C.Split_dedicated_sc;
  eval "no TX-completion batching (confirm per descriptor)"
    { base with Costs.confirm_batch = 1 }
    C.Single_server_sc;
  eval "TSO on (line 6: wire becomes the bottleneck)" base C.Split_dedicated_sc_tso;
  (let r = C.evaluate ~costs:base ~mss:8960 C.Split_dedicated_sc in
   Printf.printf "%-58s %6.2f Gbps\n"
     "jumbo frames (9000-byte MTU; paper: reduces internal request rate)"
     r.C.goodput_gbps);
  print_newline ();
  print_endline "NIC reset time vs Figure 4 outage (\"restart-aware hardware\", Section V-D):";
  List.iter
    (fun (p : E.reset_sweep_point) ->
      Printf.printf "  device reset %5.2f s -> outage %5.2f s (%d duplicate segments)\n"
        p.E.reset_time_s p.E.outage_s p.E.duplicates)
    (E.nic_reset_sweep ());
  print_newline ();
  print_endline "MWAIT wake-up vs polling (Section IV-B), ICMP RTT through the idle stack:";
  List.iter
    (fun (p : E.latency_point) ->
      Printf.printf
        "  poll window %7.1f us -> mean RTT %5.1f us; OS cores awake %5.2f%% of the \
         time (%d pings)\n"
        p.E.poll_window_us p.E.mean_rtt_us
        (100. *. p.E.awake_fraction)
        p.E.pings)
    (E.mwait_latency_ablation ());
  print_endline
    "  (halting on every idle gap costs several MWAIT wake-ups per round trip;";
  print_endline "   polling absorbs them — the latency/energy trade-off of Section IV-B)";
  print_newline ()

let print_scaling () =
  print_endline "Scaling — N transport shards behind a multi-queue NIC";
  print_endline "======================================================";
  with_verify @@ fun verify ->
  let r = E.scaling_curve ~verify () in
  Printf.printf "single-instance Table II ceiling: %.2f Gbps\n"
    r.E.single_instance_gbps;
  let print_point (p : E.scaling_point) =
    Printf.printf
      "  %d shard(s), %d IP, %d PF: %6.2f Gbps aggregate (%.2fx ceiling); \
       imbalance %.2f; affinity violations %d\n"
      p.E.shards p.E.ip_replicas p.E.pf_shards p.E.goodput_gbps
      (p.E.goodput_gbps /. r.E.single_instance_gbps)
      p.E.imbalance p.E.violations;
    Array.iter
      (fun (s : Newt_scale.Sharded_stack.pf_shard_stats) ->
        Printf.printf "      pf shard %d: %d verdicts, %d tracked, %d expired\n"
          s.Newt_scale.Sharded_stack.pf_shard s.verdicts s.entries s.expired)
      p.E.per_pf_shard
  in
  List.iter print_point r.E.points;
  (* The PF-sharded extension: the filter on the path, conntrack
     partitioned two ways by the same flow hash. *)
  let rpf =
    E.scaling_curve ~shard_counts:[ 8 ] ~ip_replicas:2 ~pf_shards:2 ~verify ()
  in
  List.iter print_point rpf.E.points;
  print_endline
    "(one Shard_map drives NIC RSS, IP fan-out and SYSCALL routing; every flow";
  print_endline
    " stays on one TCP shard — and meets one PF conntrack partition)";
  print_newline ()

(* {1 micro-hook: the native race hook's per-access cost}

   The sampled-instrumentation budget of the race detector: what one
   [Hook.native_access] costs disarmed (the production no-op), armed
   at sample 1 (every access delivered) and armed at sample 256 (one
   atomic add + mask test on the skip path), plus one delivered sync
   event. The JSON line feeds the bench-smoke gate and the overhead
   table in EXPERIMENTS.md. *)
let print_micro_hook () =
  let module Hook = Newt_channels.Hook in
  let n = 2_000_000 in
  let time_ns f =
    let t0 = Unix.gettimeofday () in
    f n;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let accesses n =
    for _ = 1 to n do
      Hook.native_access Hook.N_counter ~id:1 ~sub:0 ~write:true
    done
  in
  let sink = ref 0 in
  let disarmed = time_ns accesses in
  Hook.set_native ~sample:1 (fun _ -> incr sink);
  let every = time_ns accesses in
  Hook.clear_native ();
  Hook.set_native ~sample:256 (fun _ -> incr sink);
  let sampled = time_ns accesses in
  let seen, kept = Hook.native_access_counts () in
  Hook.clear_native ();
  Hook.set_native ~sample:1 (fun _ -> incr sink);
  let sync =
    time_ns (fun n ->
        for _ = 1 to n do
          Hook.native_emit (Hook.N_post { loop = 0 })
        done)
  in
  Hook.clear_native ();
  print_endline "micro-hook — native race hook, cost per operation";
  print_endline "=================================================";
  Printf.printf "  access, disarmed:       %6.1f ns\n" disarmed;
  Printf.printf "  access, sample 1:       %6.1f ns (every one delivered)\n"
    every;
  Printf.printf "  access, sample 256:     %6.1f ns (%d of %d delivered)\n"
    sampled kept seen;
  Printf.printf "  sync event, delivered:  %6.1f ns\n" sync;
  Printf.printf
    "{\"hook_native\":{\"ns_per_access_disarmed\":%.1f,\"ns_per_access_sample1\":%.1f,\"ns_per_access_sample256\":%.1f,\"ns_per_sync_event\":%.1f,\"accesses_seen\":%d,\"accesses_kept\":%d}}\n"
    disarmed every sampled sync seen kept;
  print_newline ()

let print_churn () =
  let module Ch = Newt_core.Churn in
  print_endline "Churn — short-RPC tail latency through the sharded stack";
  print_endline "=========================================================";
  with_verify @@ fun verify ->
  let results =
    List.map
      (fun scenario -> Ch.run ~scenario ~duration:0.5 ~verify ())
      Ch.all_scenarios
  in
  List.iter
    (fun (r : Ch.result) ->
      Printf.printf
        "  %-18s %6d/%-6d RPCs; connect p99 %8.1f p999 %8.1f µs; request p99 \
         %8.1f p999 %8.1f µs; bulk %5.2f Gbps\n"
        (Ch.scenario_name r.Ch.scenario)
        r.Ch.completed r.Ch.started r.Ch.connect.Ch.p99_us
        r.Ch.connect.Ch.p999_us r.Ch.request.Ch.p99_us r.Ch.request.Ch.p999_us
        r.Ch.bulk_goodput_gbps;
      if r.Ch.flood_syns > 0 || r.Ch.listen_overflows > 0 then
        Printf.printf
        "      overflows %d; conntrack %d entries (%d half-open); evicted %d \
         half-open / %d established; restarts %d\n"
          r.Ch.listen_overflows r.Ch.conntrack_entries r.Ch.conntrack_half_open
          r.Ch.evicted_half_open r.Ch.evicted_established r.Ch.shard_restarts)
    results;
  print_endline
    "(open-loop workers: stack-side queueing shows up in the tail, not as a";
  print_endline " reduced offered rate; percentiles from streaming histograms)";
  print_newline ()

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "micro" -> run_bechamel ()
  | "micro-hook" -> print_micro_hook ()
  | "micro-spsc" ->
      (* The cross-domain SPSC measurement alone, sized for CI smoke. *)
      print_spsc_cross_domain ~n:500_000 ()
  | "table2" -> print_table2 ()
  | "campaign" | "table3" | "table4" -> print_campaign ()
  | "fig4" -> print_fig4 ()
  | "fig5" -> print_fig5 ()
  | "coalesce" -> print_coalesce ()
  | "crosscheck" -> print_crosscheck ()
  | "ablate" -> print_ablation ()
  | "scaling" -> print_scaling ()
  | "churn" -> print_churn ()
  | "all" ->
      print_table2 ();
      print_fig4 ();
      print_fig5 ();
      print_campaign ();
      print_crosscheck ();
      print_coalesce ();
      print_ablation ();
      print_scaling ();
      print_churn ();
      run_bechamel ()
  | other ->
      Printf.eprintf
        "unknown benchmark %S (use \
         micro|micro-spsc|micro-hook|table2|campaign|fig4|fig5|coalesce|ablate|scaling|churn|all)\n"
        other;
      exit 1
