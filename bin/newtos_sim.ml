(* The command-line driver: run any experiment of the paper's
   evaluation and print it in the paper's format. *)

module E = Newt_core.Experiments
module F = Newt_reliability.Fault_inject
module C = Newt_stack.Capacity
module V = Newt_verify

let print_table2 costs =
  ignore costs;
  print_endline "Table II — peak performance of outgoing TCP in various setups";
  print_endline "--------------------------------------------------------------";
  Printf.printf "%-62s %7s %9s\n" "configuration" "paper" "measured";
  List.iter
    (fun (r : E.table2_row) ->
      Printf.printf "%-62s %7s %6.2f Gbps   [bottleneck: %s]\n" r.E.label
        r.E.paper_gbps r.E.measured_gbps r.E.bottleneck)
    (E.table_ii ());
  print_newline ()

let print_trace name (t : E.crash_trace) ~paper_note =
  Printf.printf "%s\n" name;
  print_endline (String.make (String.length name) '-');
  Printf.printf "(%s)\n" paper_note;
  Array.iter
    (fun (time, mbps) ->
      let bar = String.make (int_of_float (mbps /. 20.0)) '#' in
      Printf.printf "%6.1fs %8.1f Mbps |%s\n" time mbps bar)
    t.E.points;
  Printf.printf
    "duplicates seen by receiver: %d; sender retransmits: %d; segments lost: %d; restarts: %d\n\n"
    t.E.duplicate_segments t.E.sender_retransmits t.E.lost_segments
    t.E.component_restarts

(* Run [f] with the pool-ownership sanitizer watching, then print its
   verdict.  Any violation fails the invocation so CI can gate on it. *)
let with_sanitizer ?(quiet = false) enabled f =
  if not enabled then f ()
  else begin
    V.Sanitizer.install ();
    Fun.protect ~finally:V.Sanitizer.uninstall f;
    let report = V.Sanitizer.report ~title:"pool-ownership sanitizer" () in
    if not quiet then begin
      print_string (V.Report.to_string report);
      print_newline ()
    end;
    if not (V.Report.ok report) then exit 1
  end

(* Run [f] with the dynamic channel-protocol checker replaying the
   request/confirm contract, then print its verdict.  [drained] closes
   the trace strictly (a quiesced tail: open obligations are
   violations).  Under --verify-continuous the per-run aggregation has
   already absorbed and reset the checker's state, so this outer report
   only carries whatever the aggregator did not claim. *)
let with_protocol ?(quiet = false) ?(drained = false) enabled f =
  if not enabled then f ()
  else begin
    V.Protocol.install ();
    Fun.protect ~finally:V.Protocol.uninstall f;
    V.Protocol.finish ~drained ();
    let report = V.Protocol.report ~title:"channel-protocol checker" () in
    if not quiet then begin
      print_string (V.Report.to_string report);
      print_newline ()
    end;
    if not (V.Report.ok report) then exit 1
  end

(* Run [f] with the TCP conformance checker riding the simulator's TCP
   hook chain, then print its verdict.  Under --verify-continuous the
   per-run aggregation absorbs and resets the checker's state, so this
   outer report only carries whatever the aggregator did not claim. *)
let with_tcpfsm ?(quiet = false) enabled f =
  if not enabled then f ()
  else begin
    V.Tcpfsm.install ();
    Fun.protect ~finally:V.Tcpfsm.uninstall f;
    let report = V.Tcpfsm.report ~title:"tcp-fsm conformance checker" () in
    if not quiet then begin
      print_string (V.Report.to_string report);
      print_newline ()
    end;
    if not (V.Report.ok report) then exit 1
  end

(* Run [f] with the simulator's verification hooks sampled one subject
   in [n] (pool slots, request ids, TCP connections; clock-critical
   events are never sampled out), restoring full fidelity after. *)
let with_sample n f =
  if n <= 1 then f ()
  else begin
    Newt_channels.Hook.set_sim_sample n;
    Newt_channels.Hook.set_tcp_sample n;
    Fun.protect
      ~finally:(fun () ->
        Newt_channels.Hook.set_sim_sample 1;
        Newt_channels.Hook.set_tcp_sample 1)
      f
  end

(* Run [f] with a continuous-verification aggregator when requested:
   the experiment re-runs the static checker after every reincarnation
   and leak-checks each quiesced run tail.  Any violation or leak fails
   the invocation. *)
let with_continuous ?(quiet = false) enabled f =
  if not enabled then f None
  else begin
    let v = V.Continuous.create () in
    f (Some v);
    if not quiet then begin
      print_string
        (V.Report.to_string (V.Continuous.report ~title:"continuous verification" v));
      let c = V.Continuous.totals v in
      Printf.printf
        "re-checks: %d over %d run(s); static violations: %d; sanitizer violations: \
         %d; leaks: %d; stale derefs: %d; hook events: %d (~%d model cycles \
         overhead)\n\n"
        c.V.Continuous.re_checks
        (List.length (V.Continuous.runs v))
        c.V.Continuous.static_violations c.V.Continuous.sanitizer_violations
        c.V.Continuous.leaks c.V.Continuous.stale_derefs c.V.Continuous.hook_events
        c.V.Continuous.hook_overhead_cycles
    end;
    if not (V.Continuous.ok v) then exit 1
  end

let print_fig4 seed sanitize protocol verify_continuous tcp_fsm sample =
  with_sample sample (fun () ->
      with_tcpfsm tcp_fsm (fun () ->
          with_sanitizer sanitize (fun () ->
              with_protocol ~drained:true protocol (fun () ->
                  with_continuous verify_continuous (fun verify ->
                      let t = E.figure_ip_crash ~seed ?verify () in
                      print_trace "Figure 4 — bitrate across an IP server crash (at t=4s)" t
                        ~paper_note:
                          "paper: gap of ~2s while the link resets, one retransmission, full recovery")))))

let print_fig5 seed sanitize protocol verify_continuous tcp_fsm sample =
  with_sample sample (fun () ->
      with_tcpfsm tcp_fsm (fun () ->
          with_sanitizer sanitize (fun () ->
              with_protocol ~drained:true protocol (fun () ->
                  with_continuous verify_continuous (fun verify ->
                      let t = E.figure_pf_crash ~seed ?verify () in
                      print_trace "Figure 5 — bitrate across two packet filter crashes (t=6s, t=12s)" t
                        ~paper_note:
                          "paper: crashes almost not noticeable, no packets lost, 1024 rules recovered")))))

let campaign_json runs (c : E.campaign) verify =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"runs\":%d,\"crashes\":{\"tcp\":%d,\"udp\":%d,\"ip\":%d,\"pf\":%d,\"drv\":%d},"
       runs c.E.crashes_tcp c.E.crashes_udp c.E.crashes_ip c.E.crashes_pf
       c.E.crashes_drv);
  Buffer.add_string b
    (Printf.sprintf
       "\"consequences\":{\"fully_transparent\":%d,\"reachable\":%d,\"manually_fixed\":%d,\"broke_tcp\":%d,\"transparent_udp\":%d,\"reboots\":%d}"
       c.E.fully_transparent c.E.reachable c.E.manually_fixed c.E.broke_tcp
       c.E.transparent_udp c.E.reboots);
  Buffer.add_string b
    (Printf.sprintf ",\"pf_shards\":[%s]"
       (String.concat ","
          (Array.to_list
             (Array.map
                (fun (p : E.pf_shard_totals) ->
                  Printf.sprintf
                    "{\"shard\":%d,\"verdicts\":%d,\"blocked\":%d,\"expired\":%d}"
                    p.E.pf_shard p.E.verdicts p.E.blocked_packets
                    p.E.conntrack_expired)
                c.E.pf_counters))));
  (match verify with
  | Some v ->
      Buffer.add_char b ',';
      Buffer.add_string b (V.Continuous.json v)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let print_campaign_tables runs c =
  print_endline "Table III — distribution of crashes in the stack";
  print_endline "-------------------------------------------------";
  Printf.printf "%-8s %6s %6s\n" "" "paper" "ours";
  Printf.printf "%-8s %6d %6d\n" "Total" 100 runs;
  Printf.printf "%-8s %6d %6d\n" "TCP" 25 c.E.crashes_tcp;
  Printf.printf "%-8s %6d %6d\n" "UDP" 10 c.E.crashes_udp;
  Printf.printf "%-8s %6d %6d\n" "IP" 24 c.E.crashes_ip;
  Printf.printf "%-8s %6d %6d\n" "PF" 25 c.E.crashes_pf;
  Printf.printf "%-8s %6d %6d\n" "Driver" 16 c.E.crashes_drv;
  print_newline ();
  print_endline "Table IV — consequences of crashes";
  print_endline "-----------------------------------";
  Printf.printf "%-42s %8s %6s\n" "" "paper" "ours";
  Printf.printf "%-42s %8d %6d\n" "Fully transparent crashes" 70 c.E.fully_transparent;
  Printf.printf "%-42s %5d+%-2d %4d+%-2d\n" "Reachable from outside (auto + manual)" 90 6
    c.E.reachable c.E.manually_fixed;
  Printf.printf "%-42s %8d %6d\n" "Crash broke TCP connections" 30 c.E.broke_tcp;
  Printf.printf "%-42s %8d %6d\n" "Transparent to UDP" 95 c.E.transparent_udp;
  Printf.printf "%-42s %8d %6d\n" "Reboot necessary" 3 c.E.reboots;
  if Array.length c.E.pf_counters > 1 then begin
    print_newline ();
    print_endline "Per-PF-shard verdicts over the campaign";
    Array.iter
      (fun (p : E.pf_shard_totals) ->
        Printf.printf "  pf shard %d: %d verdicts, %d blocked, %d expired\n"
          p.E.pf_shard p.E.verdicts p.E.blocked_packets p.E.conntrack_expired)
      c.E.pf_counters
  end;
  print_newline ()

let print_campaign runs seed sanitize protocol verify_continuous break_recovery
    pf_shards json sample =
  with_sample sample @@ fun () ->
  with_sanitizer ~quiet:json sanitize @@ fun () ->
  (* Not [~drained]: a campaign world can end frozen (reboot cases), so
     only hard violations gate here; the per-run obligation accounting
     happens inside --verify-continuous, which skips frozen runs. *)
  with_protocol ~quiet:json protocol @@ fun () ->
  with_continuous ~quiet:json verify_continuous @@ fun verify ->
  let c = E.fault_campaign ~runs ~seed ?verify ?break_recovery ~pf_shards () in
  if json then print_endline (campaign_json runs c verify)
  else print_campaign_tables runs c

let print_crosscheck () =
  print_endline "Cross-validation — packet level vs capacity model";
  print_endline "---------------------------------------------------";
  let r = E.split_peak_event_sim () in
  Printf.printf "split stack:   %.2f Gbps (model %.2f); tcp %.0f%%, ip %.0f%%, pf %.0f%%, drv %.0f%%\n"
    r.E.goodput_gbps r.E.capacity_prediction_gbps (100. *. r.E.tcp_util)
    (100. *. r.E.ip_util) (100. *. r.E.pf_util) (100. *. r.E.drv_util);
  let single_gbps, single_util = E.single_server_event_sim () in
  Printf.printf "single server: %.2f Gbps (core %.0f%%)\n" single_gbps (100. *. single_util);
  let m = E.minix_event_sim () in
  Printf.printf "minix:         %.3f Gbps; %.0fk sync IPCs/s; lossless=%b\n"
    (m.E.minix_mbps /. 1000.) (m.E.sync_ipcs_per_sec /. 1000.) m.E.minix_lossless;
  print_newline ()

let print_sweep () =
  print_endline "NIC reset time vs recovery outage (restart-aware hardware, Section V-D)";
  print_endline "-------------------------------------------------------------------------";
  List.iter
    (fun (p : E.reset_sweep_point) ->
      Printf.printf "device reset %5.2f s -> outage %5.2f s (%d duplicates)\n"
        p.E.reset_time_s p.E.outage_s p.E.duplicates)
    (E.nic_reset_sweep ());
  print_newline ()

let print_coalesce () =
  print_endline "Section VI-A — driver coalescing (one driver for all interfaces)";
  print_endline "-----------------------------------------------------------------";
  List.iter
    (fun (r : E.coalescing_result) ->
      Printf.printf
        "%d driver(s), %d NIC(s) each: busiest driver core %.1f%% utilized -> %s\n"
        r.E.drivers r.E.nics_served
        (100.0 *. r.E.driver_core_utilization)
        (if r.E.sustainable then "sustains the full 5-NIC TSO rate"
         else "OVERLOADED");
      ())
    (E.driver_coalescing ());
  print_newline ()

let print_scaling ?verify shard_counts ip_replicas pf_shards flows duration =
  print_endline "Scaling — N transport shards behind a multi-queue NIC";
  print_endline "------------------------------------------------------";
  let r =
    E.scaling_curve ~shard_counts ~ip_replicas ~pf_shards ~flows ~duration
      ?verify ()
  in
  Printf.printf "single-instance Table II ceiling: %.2f Gbps\n" r.E.single_instance_gbps;
  List.iter
    (fun (p : E.scaling_point) ->
      Printf.printf
        "%d shard(s), %d IP replica(s)%s: %6.2f Gbps aggregate (%.2fx ceiling); imbalance %.2f; violations %d\n"
        p.E.shards p.E.ip_replicas
        (if p.E.pf_shards = 0 then ""
         else Printf.sprintf ", %d PF shard(s)" p.E.pf_shards)
        p.E.goodput_gbps
        (p.E.goodput_gbps /. r.E.single_instance_gbps)
        p.E.imbalance p.E.violations;
      Array.iter
        (fun (s : Newt_scale.Sharded_stack.shard_stats) ->
          Printf.printf
            "    shard %d: %d flows, %d segs out, core %.0f%%, queue depth %d\n"
            s.Newt_scale.Sharded_stack.shard s.flows s.segs_out
            (100.0 *. s.core_util) s.queue_depth)
        p.E.per_shard;
      Array.iter
        (fun (s : Newt_scale.Sharded_stack.pf_shard_stats) ->
          Printf.printf
            "    pf shard %d: %d verdicts, %d blocked, %d tracked, %d expired\n"
            s.Newt_scale.Sharded_stack.pf_shard s.verdicts s.pf_blocked
            s.entries s.expired)
        p.E.per_pf_shard)
    r.E.points;
  print_newline ()

module Ch = Newt_core.Churn

let churn_tail_json (t : Ch.tail) =
  Printf.sprintf
    "{\"samples\":%d,\"mean_us\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f}"
    t.Ch.samples t.Ch.mean_us t.Ch.p50_us t.Ch.p99_us t.Ch.p999_us

let churn_json (r : Ch.result) =
  Printf.sprintf
    "{\"scenario\":\"%s\",\"offered_rate\":%.0f,\"duration_s\":%.2f,\"started\":%d,\
     \"completed\":%d,\"rpc_errors\":%d,\"shed\":%d,\"completed_rate\":%.0f,\
     \"connect\":%s,\"request\":%s,\"bulk_goodput_gbps\":%.3f,\
     \"listen_overflows\":%d,\"accepted\":%d,\"client_resets\":%d,\
     \"flood_syns\":%d,\"conntrack\":{\"entries\":%d,\"half_open\":%d,\
     \"evicted_half_open\":%d,\"evicted_established\":%d},\
     \"conns_at_kill\":%d,\"shard_restarts\":%d,\"steering_violations\":%d,\
     \"checksum_failures\":%d}"
    (Ch.scenario_name r.Ch.scenario)
    r.Ch.offered_rate r.Ch.duration_s r.Ch.started r.Ch.completed
    r.Ch.rpc_errors r.Ch.shed r.Ch.completed_rate
    (churn_tail_json r.Ch.connect)
    (churn_tail_json r.Ch.request)
    r.Ch.bulk_goodput_gbps r.Ch.listen_overflows r.Ch.accepted
    r.Ch.client_resets r.Ch.flood_syns r.Ch.conntrack_entries
    r.Ch.conntrack_half_open r.Ch.evicted_half_open r.Ch.evicted_established
    r.Ch.conns_at_kill r.Ch.shard_restarts r.Ch.steering_violations
    r.Ch.checksum_failures

let churn_print_human (r : Ch.result) =
  Printf.printf "churn %s — %.0f conn/s offered for %.2f s\n"
    (Ch.scenario_name r.Ch.scenario)
    r.Ch.offered_rate r.Ch.duration_s;
  Printf.printf "  started %d  completed %d  errors %d  shed %d  (%.0f conn/s completed)\n"
    r.Ch.started r.Ch.completed r.Ch.rpc_errors r.Ch.shed r.Ch.completed_rate;
  let tail name (t : Ch.tail) =
    if t.Ch.samples > 0 then
      Printf.printf
        "  %-7s µs: p50 %8.1f  p99 %8.1f  p999 %8.1f  (n=%d, mean %.1f)\n" name
        t.Ch.p50_us t.Ch.p99_us t.Ch.p999_us t.Ch.samples t.Ch.mean_us
  in
  tail "connect" r.Ch.connect;
  tail "request" r.Ch.request;
  if r.Ch.bulk_goodput_gbps > 0.0 then
    Printf.printf "  bulk goodput %.2f Gbps\n" r.Ch.bulk_goodput_gbps;
  if r.Ch.scenario = Ch.Listen_pressure then
    Printf.printf "  listener: accepted %d; overflows (RST) %d; client resets %d\n"
      r.Ch.accepted r.Ch.listen_overflows r.Ch.client_resets
  else if r.Ch.listen_overflows > 0 then
    Printf.printf "  listen overflows %d\n" r.Ch.listen_overflows;
  if r.Ch.flood_syns > 0 then
    Printf.printf
      "  flood: %d SYNs; conntrack %d entries (%d half-open); evictions %d \
       half-open / %d established\n"
      r.Ch.flood_syns r.Ch.conntrack_entries r.Ch.conntrack_half_open
      r.Ch.evicted_half_open r.Ch.evicted_established;
  if r.Ch.scenario = Ch.Crash_during_churn then
    Printf.printf "  crash: %d connections on the shard at kill; %d restart(s)\n"
      r.Ch.conns_at_kill r.Ch.shard_restarts;
  Printf.printf "  steering violations %d; checksum failures %d\n\n"
    r.Ch.steering_violations r.Ch.checksum_failures

let print_churn scenario rate duration shards ip_replicas pf_shards bulk_flows
    workers payload flood_rate conntrack_total backlog seed json
    verify_continuous tcp_fsm break_tcp sample =
  let scenarios =
    if scenario = "all" then Ch.all_scenarios
    else
      match Ch.scenario_of_name scenario with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf
            "unknown scenario %S (baseline, syn-flood, crash-during-churn, \
             listen-pressure, all)\n"
            scenario;
          exit 2
  in
  if not json then begin
    print_endline
      "Churn — short-RPC flows through the sharded stack, tail latency";
    print_endline
      "----------------------------------------------------------------"
  end;
  (* --break-tcp implies the checker: a planted bug that nothing judges
     would be a silently green sabotage run. *)
  let fsm_wanted = tcp_fsm || break_tcp <> None in
  with_sample sample @@ fun () ->
  with_continuous ~quiet:json verify_continuous @@ fun verify ->
  let results =
    List.map
      (fun s ->
        (* One checker lifetime per scenario: each run is a fresh world
           reusing the same addresses, so shadow PCBs must not leak
           from one run into the next. *)
        if fsm_wanted then begin
          V.Tcpfsm.install ();
          V.Tcpfsm.reset ()
        end;
        let r =
          Ch.run ~scenario:s ~rate ~duration ~shards ~ip_replicas ~pf_shards
            ~bulk_flows ~workers ~payload ~flood_rate ~conntrack_total
            ~backlog ~seed ?verify ?break_tcp ()
        in
        let fsm =
          if fsm_wanted then
            Some
              ( V.Tcpfsm.report
                  ~title:
                    (Printf.sprintf "tcp-fsm over churn %s"
                       (Ch.scenario_name s))
                  (),
                V.Tcpfsm.verdict_json () )
          else None
        in
        (r, fsm))
      scenarios
  in
  if fsm_wanted then V.Tcpfsm.uninstall ();
  if json then
    print_endline
      (Printf.sprintf "[%s]"
         (String.concat ","
            (List.map
               (fun (r, fsm) ->
                 let obj = churn_json r in
                 match fsm with
                 | None -> obj
                 | Some (_, js) ->
                     (* Splice the verdict into the run's object. *)
                     String.sub obj 0 (String.length obj - 1)
                     ^ ",\"tcpfsm\":" ^ js ^ "}")
               results)))
  else
    List.iter
      (fun (r, fsm) ->
        churn_print_human r;
        Option.iter
          (fun (rep, _) ->
            print_string (V.Report.to_string rep);
            print_newline ())
          fsm)
      results;
  List.iter
    (fun (_, fsm) ->
      Option.iter
        (fun (rep, _) ->
          let code = V.Report.exit_code rep in
          if code <> 0 then exit code)
        fsm)
    results

(* verify --protocol: replay the request/confirm contract over the two
   figure fault runs (an IP crash, a double PF crash) and demand a
   clean close — every obligation confirmed or aborted, stale confirms
   absorbed, nothing dropped on a stranded requester. *)
let print_verify_protocol json =
  let r_ip, _ = E.protocol_ip_crash () in
  let r_pf, _ = E.protocol_pf_crash () in
  let combined =
    V.Report.merge ~title:"dynamic channel-protocol contract" [ r_ip; r_pf ]
  in
  if json then print_endline (V.Report.to_json combined)
  else begin
    print_endline "Stack verifier — dynamic channel-protocol contract";
    print_endline "---------------------------------------------------";
    print_endline "rules (first match wins):";
    List.iter (fun l -> Printf.printf "  %s\n" l) (V.Protocol.describe_rules ());
    print_newline ();
    print_string (V.Report.to_string r_ip);
    print_string (V.Report.to_string r_pf);
    Printf.printf "\n%s\n"
      (if V.Report.ok combined then "VERDICT: OK (no violations)"
       else "VERDICT: FAILED")
  end;
  if not (V.Report.ok combined) then exit 1

(* verify --tcp-fsm: first prove the rule tables themselves (totality,
   determinism, no dead rules, liveness of the transition relation),
   then replay the checker over both figure fault runs and a
   crash-during-churn run with the SYN flood on — every observed
   segment and state transition of every PCB judged against RFC 793
   plus the paper's Table I crash semantics. *)
let print_verify_tcpfsm json =
  let lint = V.Tcpfsm.lint_table () in
  let replay title f =
    V.Tcpfsm.install ();
    V.Tcpfsm.reset ();
    f ();
    let r = V.Tcpfsm.report ~title () in
    V.Tcpfsm.uninstall ();
    r
  in
  let r_fig4 =
    replay "tcp-fsm over fig4 (IP crash)" (fun () ->
        ignore (E.figure_ip_crash ~seed:42 ()))
  in
  let r_fig5 =
    replay "tcp-fsm over fig5 (double PF crash)" (fun () ->
        ignore (E.figure_pf_crash ~seed:42 ()))
  in
  let r_churn =
    replay "tcp-fsm over churn (shard crash, flood on)" (fun () ->
        ignore
          (Ch.run ~scenario:Ch.Crash_during_churn ~rate:2_000.0 ~duration:0.4
             ~shards:4 ~ip_replicas:2 ~pf_shards:2 ~workers:4
             ~flood_rate:5_000.0 ~seed:42 ()))
  in
  let combined =
    V.Report.merge ~title:"tcp conformance" [ lint; r_fig4; r_fig5; r_churn ]
  in
  if json then print_endline (V.Report.to_json combined)
  else begin
    print_endline "Stack verifier — TCP state-machine conformance";
    print_endline "-----------------------------------------------";
    print_endline "segment rules (first match wins):";
    List.iter (fun l -> Printf.printf "  %s\n" l) (V.Tcpfsm.describe_rules ());
    print_endline "transition relation:";
    List.iter
      (fun l -> Printf.printf "  %s\n" l)
      (V.Tcpfsm.describe_transitions ());
    print_newline ();
    print_string (V.Report.to_string lint);
    print_string (V.Report.to_string r_fig4);
    print_string (V.Report.to_string r_fig5);
    print_string (V.Report.to_string r_churn);
    Printf.printf "\n%s\n"
      (if V.Report.ok combined then "VERDICT: OK (no violations)"
       else "VERDICT: FAILED")
  end;
  let code = V.Report.exit_code combined in
  if code <> 0 then exit code

let print_verify_static json max_shards =
  let reports = E.verify_configs ~max_shards () in
  let combined = V.Report.merge ~title:"all stack configurations" reports in
  if json then print_endline (V.Report.to_json combined)
  else begin
    print_endline "Stack verifier — static channel-graph checks";
    print_endline "---------------------------------------------";
    List.iter (fun r -> print_string (V.Report.to_string r)) reports;
    Printf.printf "\n%s\n"
      (if V.Report.ok combined then "VERDICT: OK (no violations)"
       else "VERDICT: FAILED")
  end;
  if not (V.Report.ok combined) then exit 1

(* The native runtime: the same servers on real OCaml 5 domains.
   Unsupported configurations must error (or, with --skip-unsupported,
   exit 0 visibly) — never fall back to the simulator. *)
module R = Newt_runtime

(* verify --native-ownership: lint the native runtime's pinning plan —
   every mutable structure gets an owning domain and every cross-domain
   edge must ride a sanctioned primitive (SPSC ring, Atomic, park
   mutex, pool lock). Checked at several domain counts because the
   round-robin placement changes which components share a domain. *)
let print_verify_native_ownership json break_race domains_opt =
  let domain_counts =
    match domains_opt with Some d -> [ d ] | None -> [ 2; 4; 8 ]
  in
  let reports =
    List.map
      (fun d ->
        V.Static.check_native_plan
          ~title:(Printf.sprintf "native ownership, %d domains" d)
          (R.Native.ownership_plan ?break_race ~domains:d ()))
      domain_counts
  in
  let combined = V.Report.merge ~title:"native domain-ownership lint" reports in
  if json then print_endline (V.Report.to_json combined)
  else begin
    print_endline "Stack verifier — native domain-ownership lint";
    print_endline "----------------------------------------------";
    List.iter (fun r -> print_string (V.Report.to_string r)) reports;
    Printf.printf "\n%s\n"
      (if V.Report.ok combined then "VERDICT: OK (no violations)"
       else "VERDICT: FAILED")
  end;
  let code = V.Report.exit_code combined in
  if code <> 0 then exit code

let print_verify json protocol native_ownership tcp_fsm break_race domains_opt
    max_shards =
  if native_ownership then print_verify_native_ownership json break_race
      domains_opt
  else if tcp_fsm then print_verify_tcpfsm json
  else if protocol then print_verify_protocol json
  else print_verify_static json max_shards

let print_native_result (r : R.Native.result) =
  Printf.printf
    "native run: %d domain(s), %.1f s wall clock\n\
     goodput: %.1f Mbps (%d bytes received of %d sent)\n\
     frames: %d to peer, %d from peer (%d dropped: no RX buffer)\n\
     ping: %d echoes, RTT mean %.1f us, p99 %.1f us (%d answered by IP)\n\
     checksum failures at peer: %d\n"
    r.R.Native.domains_used r.R.Native.seconds_run r.R.Native.goodput_mbps
    r.R.Native.tcp_bytes r.R.Native.iperf_bytes_sent r.R.Native.frames_to_peer
    r.R.Native.frames_from_peer r.R.Native.rx_no_buffer r.R.Native.ping_count
    r.R.Native.ping_rtt_us_mean r.R.Native.ping_rtt_us_p99
    r.R.Native.icmp_echoes r.R.Native.checksum_failures;
  print_endline "rings (sent/dropped/max-occupancy/capacity):";
  List.iter
    (fun (s : R.Native.ring_stat) ->
      Printf.printf "  %-14s %9d %6d %6d %6d\n" s.R.Native.ring s.R.Native.sent
        s.R.Native.dropped s.R.Native.max_occupancy s.R.Native.ring_capacity)
    r.R.Native.rings;
  print_endline "domains (parks/wakes/posts-remote/posts-self/timers/executed):";
  List.iter
    (fun (s : R.Loop.stats) ->
      Printf.printf "  %d [%s] %8d %8d %9d %10d %8d %10d\n" s.R.Loop.index
        (String.concat "," s.R.Loop.pinned)
        s.R.Loop.parks s.R.Loop.wakes s.R.Loop.posts_remote s.R.Loop.posts_self
        s.R.Loop.timer_fires s.R.Loop.executed)
    r.R.Native.loops

let run_native domains seconds seed json skip_unsupported allow_oversub
    write_size spin_budget never_park confirm_batch overhead race race_sample
    break_race tcp_fsm break_tcp =
  let recommended = Domain.recommended_domain_count () in
  match
    R.Native.validate ~recommended ~allow_oversubscribe:allow_oversub ~domains
      ()
  with
  | Error msg when skip_unsupported ->
      Printf.printf "SKIP: %s\n" msg;
      exit 0
  | Error msg ->
      prerr_endline ("newtos_sim native: " ^ msg);
      exit 2
  | Ok () ->
      let cfg =
        {
          R.Native.default_config with
          domains;
          seconds;
          seed;
          write_size;
          spin_budget;
          never_park;
          confirm_batch;
          overhead;
          race;
          race_sample;
          break_race;
          tcp_fsm;
          break_tcp;
        }
      in
      let r = R.Native.run cfg in
      if json then print_endline (R.Native.json_of_result r)
      else print_native_result r;
      (* The checker verdicts decide the exit code (JSON already
         carries the full "tcpfsm"/"race" blocks inside
         json_of_result). *)
      (match r.R.Native.tcpfsm with
      | None -> ()
      | Some (true, _) ->
          if not json then print_endline "tcp-fsm conformance: OK"
      | Some (false, js) ->
          if not json then
            print_endline ("tcp-fsm conformance FAILED: " ^ js);
          exit 1);
      match r.R.Native.race with
      | None -> ()
      | Some o ->
          let report = V.Race.Dynamic.report ~title:"native race detector" o in
          if not json then print_string (V.Report.to_string report);
          let code = V.Report.exit_code report in
          if code <> 0 then exit code

let print_crossval domains seconds json skip_unsupported allow_oversub =
  let recommended = Domain.recommended_domain_count () in
  match
    R.Native.validate ~recommended ~allow_oversubscribe:allow_oversub ~domains
      ()
  with
  | Error msg when skip_unsupported ->
      Printf.printf "SKIP: %s\n" msg;
      exit 0
  | Error msg ->
      prerr_endline ("newtos_sim crossval: " ^ msg);
      exit 2
  | Ok () ->
      let r = R.Crossval.run ~domains ~seconds () in
      if json then print_endline (R.Crossval.to_json r)
      else print_string (R.Crossval.to_string r)

(* The mcheck subcommand: exhaustive (component × labeled recovery
   step) crash-point search over the chosen configurations. *)
let print_mcheck json config budget seed break_recovery =
  let outcomes =
    (if config = `Sharded then []
     else [ ("split stack", E.mcheck_split ?budget ~seed ?break_recovery ()) ])
    @
    if config = `Split then []
    else
      [ ("sharded N=2 r=2 pf=2", E.mcheck_sharded ?budget ?break_recovery ()) ]
  in
  if json then
    print_endline
      (Printf.sprintf "[%s]"
         (String.concat ","
            (List.map (fun (t, o) -> V.Mcheck.to_json ~title:t o) outcomes)))
  else
    List.iter
      (fun (t, o) ->
        print_string (V.Report.to_string (V.Mcheck.report ~title:t o));
        Printf.printf
          "crash points: %d; counterexamples: %d; skipped (budget): %d; %.1f s CPU\n\n"
          (List.length o.V.Mcheck.verdicts)
          (List.length (V.Mcheck.counterexamples o))
          (List.length o.V.Mcheck.skipped)
          o.V.Mcheck.elapsed)
      outcomes;
  if not (List.for_all (fun (_, o) -> V.Mcheck.ok o) outcomes) then exit 1

open Cmdliner

let sanitize =
  let doc = "Run with the pool-ownership sanitizer installed and print its verdict." in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let protocol_flag =
  let doc =
    "Replay the dynamic request/confirm contract (the channel-protocol \
     checker) over the run and print its verdict. Exits 1 on any violation. \
     Composes with $(b,--verify-continuous), which folds the protocol \
     counters into its per-run JSON."
  in
  Arg.(value & flag & info [ "protocol" ] ~doc)

let verify_continuous =
  let doc =
    "Re-run the static stack checker against the live topology after every \
     reincarnation and leak-check each quiesced run tail. Exits 1 on any \
     violation or leak."
  in
  Arg.(value & flag & info [ "verify-continuous" ] ~doc)

let tcp_fsm_flag =
  let doc =
    "Arm the TCP state-machine conformance checker over the run: every \
     observed segment and state transition of every PCB is judged against \
     a declarative RFC 793 + crash-semantics rule table. Exits 1 on any \
     violation. Composes with $(b,--verify-continuous), which folds the \
     checker's counters into its per-run JSON."
  in
  Arg.(value & flag & info [ "tcp-fsm" ] ~doc)

let verify_sample =
  let doc =
    "Sample the verification hooks one subject in N (rounded up to a power \
     of two; 1 checks everything): whole pool slots, request conversations \
     and TCP connections are kept or dropped together, and clock- and \
     ownership-critical events are never sampled out — sampling can hide a \
     violation but never invent one."
  in
  Arg.(value & opt int 1 & info [ "verify-sample" ] ~docv:"N" ~doc)

(* --break-tcp: the --break-recovery pattern applied to the TCP state
   machine. Each mode plants the paper's §V-B bug class — answering
   traffic from the wrong protocol state — and implies the checker. *)
let break_tcp_arg =
  let parse s =
    match s with
    | "stale-established" -> Ok Newt_net.Tcp.Stale_established
    | "ack-from-closed" -> Ok Newt_net.Tcp.Ack_from_closed
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown TCP sabotage %S (expected stale-established or \
                ack-from-closed)"
               s))
  in
  let print ppf b =
    Format.pp_print_string ppf
      (match b with
      | Newt_net.Tcp.Stale_established -> "stale-established"
      | Newt_net.Tcp.Ack_from_closed -> "ack-from-closed")
  in
  let doc =
    "Plant a deliberate TCP conformance bug the checker must catch (exit \
     1; implies $(b,--tcp-fsm)): $(b,stale-established) resurrects a \
     crashed engine's connections as forged Established PCBs, so peers \
     see stale Established state instead of RST-from-Closed; \
     $(b,ack-from-closed) answers segments for closed ports with a bare \
     ACK instead of the RST that RFC 793 demands."
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "break-tcp" ] ~docv:"MODE" ~doc)

let break_recovery =
  let parse s =
    let comp_of = function
      | "tcp" -> Ok Newt_core.Host.C_tcp
      | "udp" -> Ok Newt_core.Host.C_udp
      | "ip" -> Ok Newt_core.Host.C_ip
      | "pf" -> Ok Newt_core.Host.C_pf
      | "drv" -> Ok (Newt_core.Host.C_drv 0)
      | c -> Error (`Msg (Printf.sprintf "unknown component %S" c))
    in
    let kind_of = function
      | "wrong-core" -> Ok Newt_core.Host.Wrong_core
      | "skip-republish" -> Ok Newt_core.Host.Skip_republish
      | k -> Error (`Msg (Printf.sprintf "unknown sabotage %S" k))
    in
    match String.split_on_char ':' s with
    | [ c; k ] -> (
        match (comp_of c, kind_of k) with
        | Ok c, Ok k -> Ok (c, k)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ -> Error (`Msg "expected COMPONENT:KIND, e.g. ip:wrong-core")
  in
  let print ppf (c, k) =
    Format.fprintf ppf "%s:%s"
      (match c with
      | Newt_core.Host.C_tcp -> "tcp"
      | Newt_core.Host.C_udp -> "udp"
      | Newt_core.Host.C_ip -> "ip"
      | Newt_core.Host.C_pf -> "pf"
      | Newt_core.Host.C_drv _ -> "drv")
      (match k with
      | Newt_core.Host.Wrong_core -> "wrong-core"
      | Newt_core.Host.Skip_republish -> "skip-republish")
  in
  let doc =
    "Sabotage the named component's recovery in every run \
     (COMPONENT:KIND; components tcp, udp, ip, pf, drv; kinds wrong-core, \
     skip-republish). The continuous checker, not the traffic, must catch \
     it — use with $(b,--verify-continuous)."
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "break-recovery" ] ~docv:"COMPONENT:KIND" ~doc)

let campaign_json_flag =
  let doc = "Emit the campaign results (and verifier counters) as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let seed =
  let doc = "Random seed for the simulation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let campaign_seed =
  let doc = "Random seed for the fault-injection campaign." in
  Arg.(value & opt int 2 & info [ "seed" ] ~doc)

let runs =
  let doc = "Number of fault-injection runs." in
  Arg.(value & opt int 100 & info [ "runs" ] ~doc)

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table II (peak outgoing TCP throughput)")
    Term.(const print_table2 $ const ())

let fig4_cmd =
  Cmd.v (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (IP server crash bitrate trace)")
    Term.(
      const print_fig4 $ seed $ sanitize $ protocol_flag $ verify_continuous
      $ tcp_fsm_flag $ verify_sample)

let fig5_cmd =
  Cmd.v (Cmd.info "fig5" ~doc:"Reproduce Figure 5 (packet filter crash bitrate trace)")
    Term.(
      const print_fig5 $ seed $ sanitize $ protocol_flag $ verify_continuous
      $ tcp_fsm_flag $ verify_sample)

let campaign_pf_shards =
  let doc =
    "Packet-filter shards in every campaign host (>= 1); the JSON output \
     carries one counter block per shard."
  in
  Arg.(value & opt int 1 & info [ "pf-shards" ] ~doc)

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign" ~doc:"Reproduce Tables III and IV (fault-injection campaign)")
    Term.(
      const print_campaign
      $ runs $ campaign_seed $ sanitize $ protocol_flag $ verify_continuous
      $ break_recovery $ campaign_pf_shards $ campaign_json_flag
      $ verify_sample)

(* --break-race: the --break-recovery pattern applied to memory
   ordering. The same argument serves both the static lint (the
   sabotage is lowered into the plan) and the native run (the sabotage
   is actually executed and the dynamic detector must catch it). *)
let break_race_arg =
  let parse s =
    match R.Native.break_race_of_string s with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown race sabotage %S (expected %s)" s
               (String.concat " or " R.Native.break_race_modes)))
  in
  let print ppf b =
    Format.pp_print_string ppf (R.Native.break_race_to_string b)
  in
  let doc =
    "Plant a deliberate data race the detector must catch (exit 1): \
     $(b,spsc:two-producers) pushes onto the peer's wire ring from a second \
     domain; $(b,loop:unfenced-counter) shares a plain int ref between two \
     loops and the main thread. Under $(b,verify --native-ownership) the \
     sabotage is lowered into the plan so the static lint flags it too."
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "break-race" ] ~docv:"MODE" ~doc)

let verify_cmd =
  let json =
    let doc = "Emit the machine-readable JSON verdict instead of the report." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_shards =
    let doc = "Largest shard count to verify (configurations N=1..this)." in
    Arg.(value & opt int 8 & info [ "max-shards" ] ~doc)
  in
  let protocol =
    let doc =
      "Check the dynamic request/confirm contract instead: replay the \
       channel-protocol rules over an IP-crash run and a double-PF-crash \
       run and demand a clean close (every request confirmed or aborted, \
       no stranded hand-offs)."
    in
    Arg.(value & flag & info [ "protocol" ] ~doc)
  in
  let native_ownership =
    let doc =
      "Lint the native runtime's domain-ownership plan instead: every \
       mutable structure (ring, pool, inbox, timer wheel, counter) must \
       have an owning domain under the pinning plan, and every cross-domain \
       edge must ride a sanctioned primitive (SPSC ring with one producer \
       and one consumer domain, Atomic, park mutex, pool lock)."
    in
    Arg.(value & flag & info [ "native-ownership" ] ~doc)
  in
  let lint_domains =
    let doc =
      "With $(b,--native-ownership), lint the plan at this domain count \
       only (the default lints 2, 4 and 8, since placement changes with \
       the count)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let tcp_fsm =
    let doc =
      "Check TCP state-machine conformance instead: print the declarative \
       (state × segment class × direction) rule table and the transition \
       relation, prove them total, deterministic, free of dead rules and \
       dead-end states (the static lint), then replay the checker over the \
       two figure fault runs and a crash-during-churn run with the SYN \
       flood on — every observed segment and transition of every PCB \
       judged against RFC 793 plus the paper's Table I crash semantics."
    in
    Arg.(value & flag & info [ "tcp-fsm" ] ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Static stack verifier: wire every shipped configuration and check \
          the channel graph (SPSC discipline, core affinity, export \
          ownership, republish completeness, blocking cycles, pool \
          ownership, shard affinity). With $(b,--protocol), the dynamic \
          channel-protocol contract over crash runs instead; with \
          $(b,--native-ownership), the native runtime's domain-ownership \
          lint; with $(b,--tcp-fsm), the TCP state-machine conformance \
          tables (lint + replay). Exits 1 on any violation.")
    Term.(
      const print_verify $ json $ protocol $ native_ownership $ tcp_fsm
      $ break_race_arg $ lint_domains $ max_shards)

let coalesce_cmd =
  Cmd.v (Cmd.info "coalesce" ~doc:"Driver coalescing analysis (Section VI-A)")
    Term.(const print_coalesce $ const ())

let crosscheck_cmd =
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:"Packet-level simulations vs the capacity model (split/single/minix)")
    Term.(const print_crosscheck $ const ())

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"NIC reset time vs recovery outage (Section V-D)")
    Term.(const print_sweep $ const ())

let scaling_cmd =
  let shard_counts =
    let doc = "Shard counts to sweep." in
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ] & info [ "shards" ] ~doc)
  in
  let flows =
    let doc = "Parallel iperf flows." in
    Arg.(value & opt int 8 & info [ "flows" ] ~doc)
  in
  let ip_replicas =
    let doc = "Replicated IP server instances (capped at the shard count)." in
    Arg.(value & opt int 1 & info [ "ip-replicas" ] ~doc)
  in
  let pf_shards =
    let doc =
      "Packet-filter shards on the path (capped at the shard count); 0 — \
       the default — runs without a filter, the historical curve."
    in
    Arg.(value & opt int 0 & info [ "pf-shards" ] ~doc)
  in
  let duration =
    let doc = "Simulated seconds per point." in
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc)
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Goodput vs number of TCP shards (multi-queue NIC + sharded stack)")
    Term.(
      const (fun vc sc ir pf f d ->
          with_continuous vc (fun verify -> print_scaling ?verify sc ir pf f d))
      $ verify_continuous $ shard_counts $ ip_replicas $ pf_shards $ flows
      $ duration)

let churn_cmd =
  let scenario =
    let doc =
      "Scenario: baseline, syn-flood, crash-during-churn, listen-pressure, \
       or all."
    in
    Arg.(value & opt string "baseline" & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let rate =
    let doc = "Offered RPC starts per second." in
    Arg.(value & opt float 10_000.0 & info [ "rate" ] ~doc)
  in
  let duration =
    let doc = "Simulated seconds of churn." in
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc)
  in
  let shards =
    let doc = "TCP shards." in
    Arg.(value & opt int 8 & info [ "shards" ] ~doc)
  in
  let ip_replicas =
    let doc = "IP server replicas (capped at the shard count)." in
    Arg.(value & opt int 4 & info [ "ip-replicas" ] ~doc)
  in
  let pf_shards =
    let doc = "Packet-filter shards (capped at the shard count)." in
    Arg.(value & opt int 2 & info [ "pf-shards" ] ~doc)
  in
  let bulk_flows =
    let doc = "Bulk iperf flows riding alongside the churn." in
    Arg.(value & opt int 4 & info [ "bulk-flows" ] ~doc)
  in
  let workers =
    let doc = "Open-loop RPC workers sharing the offered rate." in
    Arg.(value & opt int 8 & info [ "workers" ] ~doc)
  in
  let payload =
    let doc = "RPC payload bytes (echoed back)." in
    Arg.(value & opt int 256 & info [ "payload" ] ~doc)
  in
  let flood_rate =
    let doc = "Spoofed SYNs per second in the flood scenarios." in
    Arg.(value & opt float 20_000.0 & info [ "flood-rate" ] ~doc)
  in
  let conntrack_total =
    let doc = "Whole-stack conntrack budget (split across PF shards)." in
    Arg.(value & opt int 8192 & info [ "conntrack-total" ] ~doc)
  in
  let backlog =
    let doc = "Listener backlog in the listen-pressure scenario." in
    Arg.(value & opt int 16 & info [ "backlog" ] ~doc)
  in
  let json =
    let doc = "Emit the results as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Flow churn: short RPC connections at rate alongside bulk flows; \
          p50/p99/p999 connect and request latency, plus the SYN-flood, \
          listen-pressure and crash-during-churn adversarial scenarios")
    Term.(
      const print_churn $ scenario $ rate $ duration $ shards $ ip_replicas
      $ pf_shards $ bulk_flows $ workers $ payload $ flood_rate
      $ conntrack_total $ backlog $ seed $ json $ verify_continuous
      $ tcp_fsm_flag $ break_tcp_arg $ verify_sample)

let mcheck_cmd =
  let json =
    let doc = "Emit the machine-readable JSON verdict instead of the report." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let config =
    let doc =
      "Which configuration(s) to model-check: $(b,split), $(b,sharded) \
       (N=2 shards × r=2 IP replicas × pf=2 PF shards), or $(b,all)."
    in
    Arg.(
      value
      & opt (enum [ ("split", `Split); ("sharded", `Sharded); ("all", `All) ]) `All
      & info [ "config" ] ~docv:"CONFIG" ~doc)
  in
  let budget =
    let doc =
      "CPU-seconds budget for the search; crash points beyond it are \
       reported as skipped (never silently dropped)."
    in
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc)
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Recovery model checker: for every (component × labeled recovery \
          step) crash point, crash the component again right after that \
          step of its own recovery and verify the stack converges — \
          reincarnation healthy, continuous verifier clean, protocol \
          contract closed. Exits 1 with counterexample traces otherwise; \
          $(b,--break-recovery) plants a recovery defect the search must \
          find.")
    Term.(
      const print_mcheck $ json $ config $ budget $ seed $ break_recovery)

let native_domains =
  let doc = "Number of OCaml domains (event-loop threads) to run on." in
  Arg.(value & opt int 2 & info [ "domains" ] ~doc)

let native_seconds =
  let doc = "Wall-clock seconds to drive the workload." in
  Arg.(value & opt float 2.0 & info [ "seconds" ] ~doc)

let native_json =
  let doc = "Emit the run's counters as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let skip_unsupported =
  let doc =
    "Exit 0 with a visible SKIP line when the machine cannot run the \
     requested domain count (for smoke tests on small machines). The \
     default is a hard error — there is never a silent fallback to the \
     simulator."
  in
  Arg.(value & flag & info [ "skip-unsupported" ] ~doc)

let allow_oversubscribe =
  let doc =
    "Allow more domains than Domain.recommended_domain_count: the OS \
     time-slices them, so absolute numbers measure scheduler noise too."
  in
  Arg.(value & flag & info [ "allow-oversubscribe" ] ~doc)

let native_cmd =
  let write_size =
    let doc = "Bytes per iperf write." in
    Arg.(value & opt int 8192 & info [ "write-size" ] ~doc)
  in
  let spin_budget =
    let doc = "Idle poll iterations before a domain parks." in
    Arg.(value & opt int 2_000 & info [ "spin-budget" ] ~doc)
  in
  let never_park =
    let doc = "Poll forever instead of parking (the MWAIT-off ablation)." in
    Arg.(value & flag & info [ "never-park" ] ~doc)
  in
  let confirm_batch =
    let doc = "Driver TX confirms coalesced per message (1 = no batching)." in
    Arg.(value & opt int 8 & info [ "confirm-batch" ] ~doc)
  in
  let overhead =
    let doc =
      "Per-send overhead ablation: $(b,none), $(b,kipc) (a kernel-lock \
       round trip per channel send), or $(b,copy) (two MSS-sized copies \
       per send)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("none", R.Native.No_overhead);
               ("kipc", R.Native.Kipc_trap);
               ("copy", R.Native.Copy_per_hop);
             ])
          R.Native.No_overhead
      & info [ "overhead" ] ~doc)
  in
  let race =
    let doc =
      "Arm the vector-clock happens-before race detector around the run: \
       every SPSC push/pop, doorbell post/drain/park/wake and pool slot \
       hand-off feeds a per-domain vector clock, and any unordered access \
       pair is reported with both stacks and a replayable event trace. \
       Exits 1 on any race."
    in
    Arg.(value & flag & info [ "race" ] ~doc)
  in
  let race_sample =
    let doc =
      "Detector sampling period (rounded up to a power of two; 1 checks \
       every access). Only the access checks are sampled — clock joins \
       never are, so sampling can hide a race but never invent one."
    in
    Arg.(value & opt int 1 & info [ "race-sample" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "native"
       ~doc:
         "Run the split stack natively: the same servers as the simulator, \
          as event loops pinned to real OCaml 5 domains over real SPSC \
          rings, driving an iperf-style bulk flow plus the split-stack \
          ping path. Errors out (exit 2) when the machine cannot honour \
          $(b,--domains) — it never silently simulates instead. \
          $(b,--race) arms the vector-clock race detector; \
          $(b,--break-race) plants a deliberate race it must catch. \
          $(b,--tcp-fsm) arms the TCP conformance checker; \
          $(b,--break-tcp) plants a deliberate TCP bug it must catch.")
    Term.(
      const run_native $ native_domains $ native_seconds $ seed $ native_json
      $ skip_unsupported $ allow_oversubscribe $ write_size $ spin_budget
      $ never_park $ confirm_batch $ overhead $ race $ race_sample
      $ break_race_arg $ tcp_fsm_flag $ break_tcp_arg)

let crossval_cmd =
  Cmd.v
    (Cmd.info "crossval"
       ~doc:
         "Cross-validate simulator against native execution: re-run the \
          Section IV ordering comparisons (channel-cost ablations of \
          Table II, park-vs-poll latency) in both modes and check sign \
          and rank order.")
    Term.(
      const print_crossval $ native_domains $ native_seconds $ native_json
      $ skip_unsupported $ allow_oversubscribe)

let all_cmd =
  let run () =
    print_table2 ();
    print_fig4 42 false false false false 1;
    print_fig5 42 false false false false 1;
    print_campaign 100 2 false false false None 1 false 1;
    print_crosscheck ();
    print_coalesce ();
    print_sweep ();
    print_scaling [ 1; 2; 4; 8 ] 1 0 8 0.5;
    print_scaling [ 8 ] 2 0 8 0.5;
    print_scaling [ 8 ] 2 2 8 0.5
  in
  Cmd.v (Cmd.info "all" ~doc:"Run the complete evaluation") Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "newtos_sim" ~doc:"NewtOS 'Keep Net Working' reproduction" in
  exit (Cmd.eval (Cmd.group ~default info [
          table2_cmd;
          fig4_cmd;
          fig5_cmd;
          campaign_cmd;
          crosscheck_cmd;
          coalesce_cmd;
          sweep_cmd;
          scaling_cmd;
          churn_cmd;
          verify_cmd;
          mcheck_cmd;
          native_cmd;
          crossval_cmd;
          all_cmd;
        ]))
