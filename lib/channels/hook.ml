type op = [ `Read | `Write | `Free | `Check ]

type event =
  | Pool_own of { pool : int; owner : string }
  | Pool_grant of { pool : int }
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
  | Pool_free_all of { pool : int }
  | Pool_double_free of { ptr : Rich_ptr.t }
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }

let listener : (actor:string option -> event -> unit) option ref = ref None
let current : string option ref = ref None
let current_epoch : int ref = ref 0

let install f = listener := Some f
let uninstall () = listener := None
let enabled () = Option.is_some !listener

let emit ev =
  match !listener with Some f -> f ~actor:!current ev | None -> ()

let actor () = !current
let epoch () = !current_epoch

let with_actor ?epoch name f =
  let prev = !current and prev_epoch = !current_epoch in
  current := Some name;
  (match epoch with Some e -> current_epoch := e | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := prev;
      current_epoch := prev_epoch)
    f
