type op = [ `Read | `Write | `Free | `Check ]
type way = [ `Sent | `Received | `Dropped ]

type event =
  | Pool_own of { pool : int; owner : string }
  | Pool_grant of { pool : int }
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
  | Pool_free_all of { pool : int }
  | Pool_double_free of { ptr : Rich_ptr.t }
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }
  | Req_submit of { db : int; id : int; peer : int }
  | Req_confirm of { db : int; id : int; known : bool }
  | Req_abort of { db : int; id : int; peer : int }
  | Req_reset of { db : int }
  | Msg_req of { chan : int; id : int; way : way }
  | Msg_conf of { chan : int; id : int; way : way }

type listener = actor:string option -> event -> unit
type token = int

(* The chain is an assoc list keyed by token, newest first. Kept as an
   immutable list so emission iterates a stable snapshot even if a
   listener adds or removes mid-event. *)
let chain : (token * listener) list ref = ref []
let next_token = ref 0
let current : string option ref = ref None
let current_epoch : int ref = ref 0

let add f =
  incr next_token;
  let tok = !next_token in
  chain := (tok, f) :: !chain;
  tok

let remove tok = chain := List.filter (fun (t, _) -> t <> tok) !chain

(* Deprecated one-slot facade: [install] manages a single legacy
   registration so existing install/uninstall pairs keep working
   without silently clobbering chain listeners. *)
let legacy : token option ref = ref None

let install f =
  (match !legacy with Some tok -> remove tok | None -> ());
  legacy := Some (add f)

let uninstall () =
  match !legacy with
  | Some tok ->
      remove tok;
      legacy := None
  | None -> ()

let enabled () = !chain <> []

let emit ev =
  match !chain with
  | [] -> ()
  | listeners -> List.iter (fun (_, f) -> f ~actor:!current ev) listeners

let actor () = !current
let epoch () = !current_epoch

let with_actor ?epoch name f =
  let prev = !current and prev_epoch = !current_epoch in
  current := Some name;
  (match epoch with Some e -> current_epoch := e | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := prev;
      current_epoch := prev_epoch)
    f
