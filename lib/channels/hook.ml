type op = [ `Read | `Write | `Free | `Check ]
type way = [ `Sent | `Received | `Dropped ]

type event =
  | Pool_own of { pool : int; owner : string }
  | Pool_grant of { pool : int }
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
  | Pool_free_all of { pool : int }
  | Pool_double_free of { ptr : Rich_ptr.t }
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }
  | Req_submit of { db : int; id : int; peer : int }
  | Req_confirm of { db : int; id : int; known : bool }
  | Req_abort of { db : int; id : int; peer : int }
  | Req_reset of { db : int }
  | Msg_req of { chan : int; id : int; way : way }
  | Msg_conf of { chan : int; id : int; way : way }

type listener = actor:string option -> event -> unit
type token = int

(* The chain is an assoc list keyed by token, newest first. Kept as an
   immutable list so emission iterates a stable snapshot even if a
   listener adds or removes mid-event. *)
let chain : (token * listener) list ref = ref []
let next_token = ref 0
let current : string option ref = ref None
let current_epoch : int ref = ref 0

let add f =
  incr next_token;
  let tok = !next_token in
  chain := (tok, f) :: !chain;
  tok

let remove tok = chain := List.filter (fun (t, _) -> t <> tok) !chain

(* Deprecated one-slot facade: [install] manages a single legacy
   registration so existing install/uninstall pairs keep working
   without silently clobbering chain listeners. *)
let legacy : token option ref = ref None

let install f =
  (match !legacy with Some tok -> remove tok | None -> ());
  legacy := Some (add f)

let uninstall () =
  match !legacy with
  | Some tok ->
      remove tok;
      legacy := None
  | None -> ()

let enabled () = !chain <> []

(* ------------------------------------------------------------------ *)
(* Simulator-side sampling.                                           *)
(*                                                                    *)
(* The native family below samples by event count; the sim checkers   *)
(* (sanitizer slot state machines, per-id protocol conversations)     *)
(* would be incoherent under that — seeing an alloc but not the free  *)
(* reads as a leak. So the sim samples by {e subject}: a slot or a    *)
(* request id is either fully observed or fully invisible, decided by *)
(* its hash. Dropping a whole subject can only hide a violation,      *)
(* never invent one. Table-wide and violation events are never        *)
(* sampled: they reset or condemn state the kept subjects share.      *)
(* ------------------------------------------------------------------ *)

let sim_sample_mask = ref 0
let sim_seen = ref 0
let sim_kept = ref 0

let pow2_mask sample =
  let sample = max 1 sample in
  let rec pow2 p = if p >= sample then p else pow2 (p * 2) in
  pow2 1 - 1

let set_sim_sample sample =
  sim_sample_mask := pow2_mask sample;
  sim_seen := 0;
  sim_kept := 0

let sim_sample () = !sim_sample_mask + 1
let sim_sample_counts () = (!sim_seen, !sim_kept)

(* The subject hash, or [None] for events that must always be
   delivered: ownership declarations and wholesale resets
   (clock-critical — they scope every kept subject) and the
   already-detected violations (sampling out a detection would be
   absurd). Request/confirm events key on the id alone so the submit,
   the wire messages and the confirm of one conversation stand or
   fall together even across db/chan instances. *)
let subject_hash = function
  | Pool_own _ | Pool_grant _ | Pool_free_all _ | Req_reset _
  | Pool_double_free _ | Pool_stale _ ->
      None
  | Pool_alloc { pool; slot; _ }
  | Pool_write { pool; slot; _ }
  | Pool_read { pool; slot; _ }
  | Pool_free { pool; slot; _ } ->
      Some (Hashtbl.hash (pool, slot))
  | Chan_handoff { ptr; _ } | Chan_receive { ptr; _ } | Chan_dropped { ptr; _ }
    ->
      Some (Hashtbl.hash (ptr.Rich_ptr.pool, ptr.Rich_ptr.slot))
  | Req_submit { id; _ } | Req_confirm { id; _ } | Req_abort { id; _ }
  | Msg_req { id; _ } | Msg_conf { id; _ } ->
      Some (Hashtbl.hash id)

let emit ev =
  match !chain with
  | [] -> ()
  | listeners ->
      let keep =
        if !sim_sample_mask = 0 then true
        else
          match subject_hash ev with
          | None -> true
          | Some h ->
              incr sim_seen;
              if h land !sim_sample_mask = 0 then begin
                incr sim_kept;
                true
              end
              else false
      in
      if keep then List.iter (fun (_, f) -> f ~actor:!current ev) listeners

let actor () = !current
let epoch () = !current_epoch

let with_actor ?epoch name f =
  let prev = !current and prev_epoch = !current_epoch in
  current := Some name;
  (match epoch with Some e -> current_epoch := e | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := prev;
      current_epoch := prev_epoch)
    f

(* ------------------------------------------------------------------ *)
(* Native event family.                                               *)
(*                                                                    *)
(* The sim chain above is single-threaded state (plain refs, an       *)
(* actor stack); native domains must never touch it. The native       *)
(* family is a separate, thread-safe hook: exactly one listener held  *)
(* in an Atomic, no actor attribution (the emitting domain IS the     *)
(* actor), and a sampled access path so a race detector can ride long *)
(* runs at a stated fraction of full cost.                            *)
(* ------------------------------------------------------------------ *)

type nkind = N_pool_slot | N_counter

type nevent =
  | N_ring_push of { ring : int; index : int }
  | N_ring_pop of { ring : int; index : int }
  | N_post of { loop : int }
  | N_drain of { loop : int }
  | N_park of { loop : int }
  | N_wake of { loop : int }
  | N_loop_start of { loop : int }
  | N_loop_stop of { loop : int }
  | N_spawn_fence
  | N_lock of { lock : int; acquire : bool }
  | N_access of { kind : nkind; id : int; sub : int; write : bool }

let native_listener : (nevent -> unit) option Atomic.t = Atomic.make None

(* [sample_mask + 1] is the sampling period, always a power of two so
   the keep/skip decision is one AND. Mask 0 = keep everything. *)
let native_sample_mask = Atomic.make 0
let native_seen = Atomic.make 0
let native_kept = Atomic.make 0

let set_native ?(sample = 1) f =
  let sample = max 1 sample in
  let rec pow2 p = if p >= sample then p else pow2 (p * 2) in
  Atomic.set native_sample_mask (pow2 1 - 1);
  Atomic.set native_seen 0;
  Atomic.set native_kept 0;
  Atomic.set native_listener (Some f)

let clear_native () = Atomic.set native_listener None
let native_enabled () = Atomic.get native_listener <> None
let native_sample () = Atomic.get native_sample_mask + 1

let native_emit ev =
  match Atomic.get native_listener with None -> () | Some f -> f ev

(* Sampling drops only plain accesses: synchronisation events
   (ring push/pop, post/park/wake, lock) must always reach the
   listener or a happens-before checker would see false races, so
   those go through [native_emit] unconditionally. Dropping an access
   can only hide a race, never invent one. *)
let native_access kind ~id ~sub ~write =
  match Atomic.get native_listener with
  | None -> ()
  | Some f ->
      let n = Atomic.fetch_and_add native_seen 1 in
      if n land Atomic.get native_sample_mask = 0 then begin
        Atomic.incr native_kept;
        f (N_access { kind; id; sub; write })
      end

let native_access_counts () =
  (Atomic.get native_seen, Atomic.get native_kept)

(* ------------------------------------------------------------------ *)
(* TCP event family.                                                  *)
(*                                                                    *)
(* The FSM conformance checker (Newt_verify.Tcpfsm) needs to see      *)
(* every PCB state transition and every segment a TCP engine sends or *)
(* receives, in both worlds: the single-threaded simulator (fig4/5,   *)
(* sharded stack, churn) and the native runtime where the TCP server  *)
(* and the peer host live on different domains. Events carry only     *)
(* integers (no Newt_net types — this library sits below the net      *)
(* layer) and are always local-oriented: [lip]/[lport] name the       *)
(* emitting engine's end of the connection regardless of direction,   *)
(* so a checker can key its shadow PCB table uniformly.               *)
(* ------------------------------------------------------------------ *)

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool; data : bool }

type tcp_cause =
  | T_api
  | T_timer
  | T_crash
  | T_rx of tcp_flags
  | T_tx of tcp_flags

type tcp_event =
  | T_state_change of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      from_s : int;
      to_s : int;
      cause : tcp_cause;
    }
  | T_seg_tx of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      flags : tcp_flags;
    }
  | T_seg_rx of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      flags : tcp_flags;
    }

(* Sim listeners are a chain like the main family; the native side is
   one listener in an Atomic. [tcp_emit] feeds both — a sim engine
   only ever sees the chain populated, a native engine only the
   Atomic, so the benign cross-domain read of the (empty) chain ref
   costs nothing and races with nobody. *)
let tcp_chain : (token * (tcp_event -> unit)) list ref = ref []

let tcp_add f =
  incr next_token;
  let tok = !next_token in
  tcp_chain := (tok, f) :: !tcp_chain;
  tok

let tcp_remove tok = tcp_chain := List.filter (fun (t, _) -> t <> tok) !tcp_chain

let tcp_native : (tcp_event -> unit) option Atomic.t = Atomic.make None
let set_tcp_native f = Atomic.set tcp_native (Some f)
let clear_tcp_native () = Atomic.set tcp_native None
let tcp_enabled () = !tcp_chain <> [] || Atomic.get tcp_native <> None

(* Sampling is per {e connection}, not per event: the checker's shadow
   state machine for a 4-tuple is only sound if it sees either the
   whole segment/transition stream of that connection or none of it.
   The keep decision hashes the 4-tuple, so it is stable across the
   connection's lifetime and across both directions. *)
let tcp_sample_mask = Atomic.make 0
let tcp_seen = Atomic.make 0
let tcp_kept = Atomic.make 0

let set_tcp_sample sample =
  Atomic.set tcp_sample_mask (pow2_mask sample);
  Atomic.set tcp_seen 0;
  Atomic.set tcp_kept 0

let tcp_sample () = Atomic.get tcp_sample_mask + 1

let tcp_conn_hash ev =
  let lip, lport, rip, rport =
    match ev with
    | T_state_change { lip; lport; rip; rport; _ }
    | T_seg_tx { lip; lport; rip; rport; _ }
    | T_seg_rx { lip; lport; rip; rport; _ } ->
        (lip, lport, rip, rport)
  in
  Hashtbl.hash (lip, lport, rip, rport)

let tcp_emit ev =
  let deliver =
    let mask = Atomic.get tcp_sample_mask in
    if mask = 0 then true
    else begin
      ignore (Atomic.fetch_and_add tcp_seen 1);
      if tcp_conn_hash ev land mask = 0 then begin
        Atomic.incr tcp_kept;
        true
      end
      else false
    end
  in
  if deliver then begin
    (match !tcp_chain with
    | [] -> ()
    | listeners -> List.iter (fun (_, f) -> f ev) listeners);
    match Atomic.get tcp_native with None -> () | Some f -> f ev
  end

let tcp_sample_counts () = (Atomic.get tcp_seen, Atomic.get tcp_kept)
