type op = [ `Read | `Write | `Free | `Check ]

type event =
  | Pool_own of { pool : int; owner : string }
  | Pool_grant of { pool : int }
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
  | Pool_free_all of { pool : int }
  | Pool_double_free of { ptr : Rich_ptr.t }
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }

let listener : (actor:string option -> event -> unit) option ref = ref None
let current : string option ref = ref None

let install f = listener := Some f
let uninstall () = listener := None
let enabled () = Option.is_some !listener

let emit ev =
  match !listener with Some f -> f ~actor:!current ev | None -> ()

let actor () = !current

let with_actor name f =
  let prev = !current in
  current := Some name;
  Fun.protect ~finally:(fun () -> current := prev) f
