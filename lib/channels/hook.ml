type op = [ `Read | `Write | `Free | `Check ]
type way = [ `Sent | `Received | `Dropped ]

type event =
  | Pool_own of { pool : int; owner : string }
  | Pool_grant of { pool : int }
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
  | Pool_free_all of { pool : int }
  | Pool_double_free of { ptr : Rich_ptr.t }
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }
  | Req_submit of { db : int; id : int; peer : int }
  | Req_confirm of { db : int; id : int; known : bool }
  | Req_abort of { db : int; id : int; peer : int }
  | Req_reset of { db : int }
  | Msg_req of { chan : int; id : int; way : way }
  | Msg_conf of { chan : int; id : int; way : way }

type listener = actor:string option -> event -> unit
type token = int

(* The chain is an assoc list keyed by token, newest first. Kept as an
   immutable list so emission iterates a stable snapshot even if a
   listener adds or removes mid-event. *)
let chain : (token * listener) list ref = ref []
let next_token = ref 0
let current : string option ref = ref None
let current_epoch : int ref = ref 0

let add f =
  incr next_token;
  let tok = !next_token in
  chain := (tok, f) :: !chain;
  tok

let remove tok = chain := List.filter (fun (t, _) -> t <> tok) !chain

(* Deprecated one-slot facade: [install] manages a single legacy
   registration so existing install/uninstall pairs keep working
   without silently clobbering chain listeners. *)
let legacy : token option ref = ref None

let install f =
  (match !legacy with Some tok -> remove tok | None -> ());
  legacy := Some (add f)

let uninstall () =
  match !legacy with
  | Some tok ->
      remove tok;
      legacy := None
  | None -> ()

let enabled () = !chain <> []

let emit ev =
  match !chain with
  | [] -> ()
  | listeners -> List.iter (fun (_, f) -> f ~actor:!current ev) listeners

let actor () = !current
let epoch () = !current_epoch

let with_actor ?epoch name f =
  let prev = !current and prev_epoch = !current_epoch in
  current := Some name;
  (match epoch with Some e -> current_epoch := e | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := prev;
      current_epoch := prev_epoch)
    f

(* ------------------------------------------------------------------ *)
(* Native event family.                                               *)
(*                                                                    *)
(* The sim chain above is single-threaded state (plain refs, an       *)
(* actor stack); native domains must never touch it. The native       *)
(* family is a separate, thread-safe hook: exactly one listener held  *)
(* in an Atomic, no actor attribution (the emitting domain IS the     *)
(* actor), and a sampled access path so a race detector can ride long *)
(* runs at a stated fraction of full cost.                            *)
(* ------------------------------------------------------------------ *)

type nkind = N_pool_slot | N_counter

type nevent =
  | N_ring_push of { ring : int; index : int }
  | N_ring_pop of { ring : int; index : int }
  | N_post of { loop : int }
  | N_drain of { loop : int }
  | N_park of { loop : int }
  | N_wake of { loop : int }
  | N_loop_start of { loop : int }
  | N_loop_stop of { loop : int }
  | N_spawn_fence
  | N_lock of { lock : int; acquire : bool }
  | N_access of { kind : nkind; id : int; sub : int; write : bool }

let native_listener : (nevent -> unit) option Atomic.t = Atomic.make None

(* [sample_mask + 1] is the sampling period, always a power of two so
   the keep/skip decision is one AND. Mask 0 = keep everything. *)
let native_sample_mask = Atomic.make 0
let native_seen = Atomic.make 0
let native_kept = Atomic.make 0

let set_native ?(sample = 1) f =
  let sample = max 1 sample in
  let rec pow2 p = if p >= sample then p else pow2 (p * 2) in
  Atomic.set native_sample_mask (pow2 1 - 1);
  Atomic.set native_seen 0;
  Atomic.set native_kept 0;
  Atomic.set native_listener (Some f)

let clear_native () = Atomic.set native_listener None
let native_enabled () = Atomic.get native_listener <> None
let native_sample () = Atomic.get native_sample_mask + 1

let native_emit ev =
  match Atomic.get native_listener with None -> () | Some f -> f ev

(* Sampling drops only plain accesses: synchronisation events
   (ring push/pop, post/park/wake, lock) must always reach the
   listener or a happens-before checker would see false races, so
   those go through [native_emit] unconditionally. Dropping an access
   can only hide a race, never invent one. *)
let native_access kind ~id ~sub ~write =
  match Atomic.get native_listener with
  | None -> ()
  | Some f ->
      let n = Atomic.fetch_and_add native_seen 1 in
      if n land Atomic.get native_sample_mask = 0 then begin
        Atomic.incr native_kept;
        f (N_access { kind; id; sub; write })
      end

let native_access_counts () =
  (Atomic.get native_seen, Atomic.get native_kept)
