(** Verification event hook.

    The dependability argument of the paper rests on an ownership
    discipline the types alone cannot enforce: pool slots are
    owner-written and consumer-read-only, hand-offs ride the channels,
    and every slot is reclaimed exactly once — also across crashes,
    where reincarnation reclaims wholesale (Sections V-C/V-D). This
    module is the instrumentation point that makes the discipline
    observable: {!Pool}, {!Request_db} and the server runtime above
    emit lifecycle events through a process-wide hook, and checkers
    such as [Newt_verify.Sanitizer] (slot state machine) and
    [Newt_verify.Protocol] (per-message-id request/confirm pairing)
    register listeners to replay them and flag violations with the
    culprit's identity.

    When no listener is registered every emission is a cheap no-op, so
    production runs pay (almost) nothing.

    {b Listener chain.} Several checkers run simultaneously, so the
    hook keeps a chain of listeners: {!add} registers one and returns a
    token, {!remove} unregisters it. Every registered listener sees
    every event, in unspecified relative order. The old one-slot
    {!install}/{!uninstall} pair remains as a deprecated facade over a
    single legacy chain entry.

    {b Actors.} Attribution needs to know {e who} performed an
    operation. The server runtime brackets all work it runs on behalf
    of a component with {!with_actor}; emissions made outside any
    bracket (device DMA, test harness code) carry no actor. *)

type op = [ `Read | `Write | `Free | `Check ]
(** What a failed dereference was attempting. *)

type way = [ `Sent | `Received | `Dropped ]
(** The fate of a protocol message at the emission point: enqueued on
    the channel, dequeued by the consumer, or discarded undelivered
    (refused enqueue or channel teardown). *)

type event =
  | Pool_own of { pool : int; owner : string }
      (** A component declared itself the pool's owning server. *)
  | Pool_grant of { pool : int }
      (** The owner granted write access to a device path (the DMA
          grant of the receive pool): writes to this pool are not
          owner-only anymore. *)
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
      (** A successful, single free. *)
  | Pool_free_all of { pool : int }
      (** Wholesale reclaim — the owner crashed or reinitialized; not a
          per-slot free and never a violation by itself. *)
  | Pool_double_free of { ptr : Rich_ptr.t }
      (** Emitted just before {!Pool.Double_free} is raised. *)
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
      (** Emitted just before {!Pool.Stale_pointer} is raised. *)
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
      (** A rich pointer was enqueued on a channel: the slot is in
          flight until the consumer dequeues it. *)
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
      (** The consumer dequeued a message carrying the pointer. *)
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }
      (** The message was discarded undelivered (channel teardown on a
          crash): the hand-off will never complete. *)
  | Req_submit of { db : int; id : int; peer : int }
      (** A request record entered the database: the paper's contract
          now owes this id a confirm or an abort. [db] is the database
          instance (see {!Request_db.db_id}); [peer] the component the
          request was sent to. *)
  | Req_confirm of { db : int; id : int; known : bool }
      (** [Request_db.complete] ran. [known] says whether the id had a
          live record — [false] is the stale-confirm case (a reply from
          a previous incarnation's request), which the databases absorb
          by design. *)
  | Req_abort of { db : int; id : int; peer : int }
      (** The record was removed by an abort sweep ([abort_peer]): the
          obligation is discharged by cancellation, not completion. *)
  | Req_reset of { db : int }
      (** The whole database was dropped (its owner crashed): every
          live record's obligation dies with it. *)
  | Msg_req of { chan : int; id : int; way : way }
      (** A request-bearing message (one carrying a request-db id that
          expects a confirm) was sent, received or dropped. *)
  | Msg_conf of { chan : int; id : int; way : way }
      (** A confirm-bearing message for request [id] was sent, received
          or dropped. Batched confirms emit one event per id. *)

type listener = actor:string option -> event -> unit

type token
(** Handle identifying one registered listener. *)

val add : listener -> token
(** Register a listener on the chain; it sees every subsequent event
    until {!remove}d. *)

val remove : token -> unit
(** Unregister; unknown or already-removed tokens are a no-op. *)

val install : listener -> unit
(** Deprecated one-slot facade: (re)binds a single legacy chain slot.
    Kept so existing single-checker call sites work unchanged; new code
    should use {!add}/{!remove}. *)

val uninstall : unit -> unit
(** Remove the legacy slot listener bound by {!install}, if any.
    Listeners registered with {!add} are unaffected. *)

val enabled : unit -> bool
(** Whether any listener is registered — use to skip costly event
    construction. *)

val emit : event -> unit
(** Deliver an event (with the current actor) to every registered
    listener. Subject to simulator-side sampling (see
    {!set_sim_sample}): when a sampling period is set, events whose
    subject's hash misses the mask are dropped before delivery. *)

val set_sim_sample : int -> unit
(** Sample the simulator event chain by {e subject}: keep one in
    [sample] subjects (rounded up to a power of two; 1 = keep all),
    where a subject is a pool slot for the pool/channel lifecycle
    events and a request id for the request/confirm family. A kept
    subject's events are all delivered, a dropped subject's none — so
    the sanitizer's slot state machines and the protocol checker's
    per-id conversations stay coherent under sampling; dropping a
    subject can hide a violation but never invent one. Clock-critical
    events (pool ownership/grant, wholesale frees, database resets)
    and already-detected violations are never sampled out. Resets the
    sampling counters. *)

val sim_sample : unit -> int
(** The effective (power-of-two) simulator sampling period. *)

val sim_sample_counts : unit -> int * int
(** [(seen, kept)] sampleable emissions since {!set_sim_sample} —
    events bypassing sampling (no listener, clock-critical) are not
    counted. *)

val actor : unit -> string option
(** The identity currently being charged, if inside {!with_actor}. *)

val epoch : unit -> int
(** The restart epoch (the actor's incarnation number) the current
    bracket was opened with; 0 outside any bracket or when the bracket
    did not stamp one. Listeners use it to tell incarnation [k] of a
    server from incarnation [k+1] of the same name. *)

val with_actor : ?epoch:int -> string -> (unit -> 'a) -> 'a
(** [with_actor name f] runs [f] with emissions attributed to [name];
    the previous attribution is restored afterwards, also on
    exceptions. [epoch] additionally stamps the actor's incarnation
    number into the bracket (the server runtime passes its restart
    counter), readable by listeners via {!epoch}. *)

(** {1 Native event family}

    The listener chain above is single-threaded simulator state and
    must never be touched from a spawned domain. The native family is
    the thread-safe counterpart used by the real runtime: one listener
    held in an [Atomic], events carrying only integers (the emitting
    domain identifies itself with [Domain.self] inside the listener),
    and a sampled access path with a stated cost model so the
    happens-before race detector ([Newt_verify.Race]) can stay armed
    on long runs. *)

type nkind = N_pool_slot | N_counter
(** What a sampled {!N_access} touched: a pool slot ([id] = pool,
    [sub] = slot) or a named shared counter ([id] = counter id). *)

type nevent =
  | N_ring_push of { ring : int; index : int }
      (** Producer published element [index] (absolute, un-masked — so
          reused physical slots across wrap-arounds get distinct
          locations) on SPSC ring [ring]. Release edge on the ring's
          tail. *)
  | N_ring_pop of { ring : int; index : int }
      (** Consumer took element [index] off ring [ring]. Acquire edge
          on the ring's tail, release edge on its head (the producer
          acquires the head before reusing the slot). *)
  | N_post of { loop : int }
      (** A closure was posted cross-domain into loop [loop]'s inbox,
          under the loop mutex. Release edge on the inbox. *)
  | N_drain of { loop : int }
      (** Loop [loop] transferred its inbox under the mutex. Acquire
          edge on the inbox. *)
  | N_park of { loop : int }  (** Loop [loop] is about to block. *)
  | N_wake of { loop : int }
      (** Loop [loop] resumed after parking. Acquire edge on the inbox
          (the wake saw the poster's signal through the same mutex). *)
  | N_loop_start of { loop : int }
      (** Loop [loop] started running on its domain. Acquire edge on
          the spawn fence: everything the spawning thread did before
          {!N_spawn_fence} happens-before the loop body. *)
  | N_loop_stop of { loop : int }  (** Loop [loop] exited its run loop. *)
  | N_spawn_fence
      (** The spawning thread is about to [Domain.spawn] the loops:
          wiring-time writes are published. Release edge on the spawn
          fence; also tells the detector that SPSC ownership claims
          start now (pre-spawn wiring pushes don't bind a ring to the
          spawner's domain). *)
  | N_lock of { lock : int; acquire : bool }
      (** A pool mutex was taken ([acquire = true], emitted after
          [Mutex.lock]) or is about to be dropped ([acquire = false],
          emitted before [Mutex.unlock]). Acquire/release edges on the
          lock's clock — two separate events so accesses inside the
          critical section are ordered by the release. *)
  | N_access of { kind : nkind; id : int; sub : int; write : bool }
      (** A plain (unsynchronised-by-construction) access to a shared
          location, subject to sampling. *)

val set_native : ?sample:int -> (nevent -> unit) -> unit
(** Arm the native hook. [sample] (default 1) keeps one in [sample]
    {!native_access} emissions, rounded up to a power of two;
    synchronisation events are never sampled out (dropping one could
    invent a false race — dropping an access only hides one). Resets
    the access counters. *)

val clear_native : unit -> unit
(** Disarm. Emissions race benignly with disarming: an in-flight event
    may still be delivered. *)

val native_enabled : unit -> bool
(** Whether a native listener is armed — use to skip event
    construction on the fast path. *)

val native_sample : unit -> int
(** The effective (power-of-two) sampling period. *)

val native_emit : nevent -> unit
(** Deliver a synchronisation event to the armed listener, if any. *)

val native_access : nkind -> id:int -> sub:int -> write:bool -> unit
(** Deliver a sampled {!N_access}; one in {!native_sample} emissions
    is kept. *)

val native_access_counts : unit -> int * int
(** [(seen, kept)] access emissions since the hook was last armed —
    the overhead accounting the bench and campaign JSON report. *)

(** {1 TCP event family}

    The feed for the TCP state-machine conformance checker
    ([Newt_verify.Tcpfsm]). TCP engines mirror every PCB state
    transition and every segment sent/received through these events.
    They carry only integers — this library sits below [Newt_net], so
    states travel as codes ([Newt_net.Tcp.state_code]) and addresses
    as raw [int32]s — and are always {e local-oriented}: [lip]/[lport]
    is the emitting engine's own end of the connection for both
    directions, so a checker keys its shadow PCB table uniformly.

    Like the families above, the sim side is a listener chain
    (single-threaded) and the native side one listener in an
    [Atomic]; {!tcp_emit} feeds both. *)

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool; data : bool }
(** Header flags of a segment; [data] is payload-length > 0. *)

(** Why a state transition happened: an API call (connect/close/abort),
    a timer (retransmission exhaustion, 2MSL expiry), a crash
    (wholesale [shutdown_all] — the paper's Table I semantics), or a
    segment received/sent with the given flags. *)
type tcp_cause =
  | T_api
  | T_timer
  | T_crash
  | T_rx of tcp_flags
  | T_tx of tcp_flags

type tcp_event =
  | T_state_change of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      from_s : int;
      to_s : int;
      cause : tcp_cause;
    }
      (** A PCB moved from state code [from_s] to [to_s]. Emitted
          before the assignment takes effect. *)
  | T_seg_tx of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      flags : tcp_flags;
    }
      (** The engine emitted a segment on connection
          [(lip,lport,rip,rport)] (local end first). *)
  | T_seg_rx of {
      lip : int32;
      lport : int;
      rip : int32;
      rport : int;
      flags : tcp_flags;
    }
      (** The engine accepted a segment for demultiplexing. *)

val tcp_add : (tcp_event -> unit) -> token
(** Register a simulator-side TCP listener; returns a token for
    {!tcp_remove}. *)

val tcp_remove : token -> unit
(** Unregister a simulator-side TCP listener. *)

val set_tcp_native : (tcp_event -> unit) -> unit
(** Arm the (single) native TCP listener. The listener runs on
    whichever domain emits — it must be thread-safe. *)

val clear_tcp_native : unit -> unit
(** Disarm the native TCP listener. *)

val tcp_enabled : unit -> bool
(** Whether any TCP listener (sim or native) is armed — engines use
    this to skip event construction entirely on the fast path. *)

val set_tcp_sample : int -> unit
(** Sample TCP events by {e connection}: keep one in [sample] 4-tuples
    (rounded up to a power of two; 1 = keep all). A kept connection
    delivers its entire transition/segment stream; a dropped one
    nothing — the shadow state machine for any observed connection
    stays complete, so sampling hides violations on unobserved
    connections but never fabricates one. Resets the counters. *)

val tcp_sample : unit -> int
(** The effective (power-of-two) TCP sampling period. *)

val tcp_emit : tcp_event -> unit
(** Deliver a TCP event to the sim chain and the native listener,
    subject to per-connection sampling. *)

val tcp_sample_counts : unit -> int * int
(** [(seen, kept)] TCP emissions since {!set_tcp_sample}; only counted
    while a sampling period > 1 is in force. *)
