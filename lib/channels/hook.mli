(** Sanitizer event hook.

    The dependability argument of the paper rests on an ownership
    discipline the types alone cannot enforce: pool slots are
    owner-written and consumer-read-only, hand-offs ride the channels,
    and every slot is reclaimed exactly once — also across crashes,
    where reincarnation reclaims wholesale (Sections V-C/V-D). This
    module is the instrumentation point that makes the discipline
    observable: {!Pool} (and the server runtime above) emit lifecycle
    events through a single process-wide hook, and a checker such as
    [Newt_verify.Sanitizer] installs a listener to replay the slot
    state machine and flag violations with the culprit's identity.

    When no listener is installed every emission is a cheap no-op, so
    production runs pay (almost) nothing.

    {b Actors.} Attribution needs to know {e who} performed an
    operation. The server runtime brackets all work it runs on behalf
    of a component with {!with_actor}; emissions made outside any
    bracket (device DMA, test harness code) carry no actor. *)

type op = [ `Read | `Write | `Free | `Check ]
(** What a failed dereference was attempting. *)

type event =
  | Pool_own of { pool : int; owner : string }
      (** A component declared itself the pool's owning server. *)
  | Pool_grant of { pool : int }
      (** The owner granted write access to a device path (the DMA
          grant of the receive pool): writes to this pool are not
          owner-only anymore. *)
  | Pool_alloc of { pool : int; slot : int; gen : int }
  | Pool_write of { pool : int; slot : int; gen : int }
  | Pool_read of { pool : int; slot : int; gen : int }
  | Pool_free of { pool : int; slot : int; gen : int }
      (** A successful, single free. *)
  | Pool_free_all of { pool : int }
      (** Wholesale reclaim — the owner crashed or reinitialized; not a
          per-slot free and never a violation by itself. *)
  | Pool_double_free of { ptr : Rich_ptr.t }
      (** Emitted just before {!Pool.Double_free} is raised. *)
  | Pool_stale of { ptr : Rich_ptr.t; op : op }
      (** Emitted just before {!Pool.Stale_pointer} is raised. *)
  | Chan_handoff of { chan : int; ptr : Rich_ptr.t }
      (** A rich pointer was enqueued on a channel: the slot is in
          flight until the consumer dequeues it. *)
  | Chan_receive of { chan : int; ptr : Rich_ptr.t }
      (** The consumer dequeued a message carrying the pointer. *)
  | Chan_dropped of { chan : int; ptr : Rich_ptr.t }
      (** The message was discarded undelivered (channel teardown on a
          crash): the hand-off will never complete. *)

val install : (actor:string option -> event -> unit) -> unit
(** Install the process-wide listener (replacing any previous one). *)

val uninstall : unit -> unit

val enabled : unit -> bool
(** Whether a listener is installed — use to skip costly event
    construction. *)

val emit : event -> unit
(** Deliver an event (with the current actor) to the listener, if
    any. *)

val actor : unit -> string option
(** The identity currently being charged, if inside {!with_actor}. *)

val epoch : unit -> int
(** The restart epoch (the actor's incarnation number) the current
    bracket was opened with; 0 outside any bracket or when the bracket
    did not stamp one. Listeners use it to tell incarnation [k] of a
    server from incarnation [k+1] of the same name. *)

val with_actor : ?epoch:int -> string -> (unit -> 'a) -> 'a
(** [with_actor name f] runs [f] with emissions attributed to [name];
    the previous attribution is restored afterwards, also on
    exceptions. [epoch] additionally stamps the actor's incarnation
    number into the bracket (the server runtime passes its restart
    counter), readable by listeners via {!epoch}. *)
