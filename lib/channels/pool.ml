(* How a freed slot was last reclaimed: a single [free] (a second free
   through the same pointer is then a double free) or a wholesale
   [free_all] (the owner crashed; late frees are merely stale). *)
type reclaim = Never | By_free | By_free_all

type t = {
  id : int;
  slot_size : int;
  data : Bytes.t array;
  gens : int array;
  free_list : int Stack.t;
  live : bool array;
  freed_by : reclaim array;
  lock : Mutex.t option;
      (* Native runs only: serializes free-list mutation when a granted
         pool is allocated from one domain and freed from another (the
         driver fills the IP server's RX pool). Slot payload access
         stays lock-free — slots are owner-disjoint and the hand-off is
         ordered by the ring's release/acquire publication. *)
}

exception Stale_pointer of Rich_ptr.t
exception Double_free of Rich_ptr.t
exception Pool_exhausted

(* Set by the native runtime before any pool is created; simulated runs
   stay lock-free (single-threaded, and the mutex would show up in the
   model's hot path for nothing). *)
let threadsafe_default = ref false
let set_default_threadsafe b = threadsafe_default := b

let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m ->
      Mutex.lock m;
      (* Two separate race-hook events, not one: the acquire is
         recorded after [Mutex.lock] and the release just before
         [Mutex.unlock], so slot accesses made inside the critical
         section are covered by the release edge. A single combined
         event at entry would release the holder's clock before those
         accesses and cross-domain slot reuse (free on the owner,
         alloc on the grantee) would look like a race. *)
      if Hook.native_enabled () then
        Hook.native_emit (Hook.N_lock { lock = t.id; acquire = true });
      Fun.protect
        ~finally:(fun () ->
          if Hook.native_enabled () then
            Hook.native_emit (Hook.N_lock { lock = t.id; acquire = false });
          Mutex.unlock m)
        f

let id_counter = ref 0

let fresh_id () =
  incr id_counter;
  !id_counter

let create ~id ~slots ~slot_size =
  assert (slots > 0 && slot_size > 0);
  let free_list = Stack.create () in
  for i = slots - 1 downto 0 do
    Stack.push i free_list
  done;
  {
    id;
    slot_size;
    data = Array.init slots (fun _ -> Bytes.create slot_size);
    gens = Array.make slots 0;
    free_list;
    live = Array.make slots false;
    freed_by = Array.make slots Never;
    lock = (if !threadsafe_default then Some (Mutex.create ()) else None);
  }

let id t = t.id
let slot_size t = t.slot_size
let total_slots t = Array.length t.data
let free_slots t = Stack.length t.free_list
let in_use t = total_slots t - free_slots t

let alloc t ~len =
  if len > t.slot_size then
    invalid_arg
      (Printf.sprintf "Pool.alloc: len %d exceeds slot size %d" len t.slot_size);
  with_lock t @@ fun () ->
  match Stack.pop_opt t.free_list with
  | None -> raise Pool_exhausted
  | Some slot ->
      t.live.(slot) <- true;
      if Hook.enabled () then
        Hook.emit (Hook.Pool_alloc { pool = t.id; slot; gen = t.gens.(slot) });
      Hook.native_access Hook.N_pool_slot ~id:t.id ~sub:slot ~write:true;
      { Rich_ptr.pool = t.id; slot; off = 0; len; gen = t.gens.(slot) }

let check ?(op = `Check) t (p : Rich_ptr.t) =
  if
    p.Rich_ptr.pool <> t.id
    || p.Rich_ptr.slot < 0
    || p.Rich_ptr.slot >= Array.length t.data
    || (not t.live.(p.Rich_ptr.slot))
    || t.gens.(p.Rich_ptr.slot) <> p.Rich_ptr.gen
  then begin
    Hook.emit (Hook.Pool_stale { ptr = p; op });
    raise (Stale_pointer p)
  end

let live t (p : Rich_ptr.t) =
  p.Rich_ptr.pool = t.id
  && p.Rich_ptr.slot >= 0
  && p.Rich_ptr.slot < Array.length t.data
  && t.live.(p.Rich_ptr.slot)
  && t.gens.(p.Rich_ptr.slot) = p.Rich_ptr.gen

let write t p ~src ~src_off =
  check ~op:`Write t p;
  if Hook.enabled () then
    Hook.emit
      (Hook.Pool_write
         { pool = t.id; slot = p.Rich_ptr.slot; gen = p.Rich_ptr.gen });
  Hook.native_access Hook.N_pool_slot ~id:t.id ~sub:p.Rich_ptr.slot ~write:true;
  Bytes.blit src src_off t.data.(p.Rich_ptr.slot) p.Rich_ptr.off p.Rich_ptr.len

let sub_ptr (p : Rich_ptr.t) ~off ~len =
  if off < 0 || len < 0 || off + len > p.Rich_ptr.len then
    invalid_arg "Pool.sub_ptr: out of chunk bounds";
  { p with Rich_ptr.off = p.Rich_ptr.off + off; len }

let emit_read t (p : Rich_ptr.t) =
  if Hook.enabled () then
    Hook.emit
      (Hook.Pool_read { pool = t.id; slot = p.Rich_ptr.slot; gen = p.Rich_ptr.gen });
  Hook.native_access Hook.N_pool_slot ~id:t.id ~sub:p.Rich_ptr.slot ~write:false

let read t p =
  check ~op:`Read t p;
  emit_read t p;
  Bytes.sub t.data.(p.Rich_ptr.slot) p.Rich_ptr.off p.Rich_ptr.len

let blit t p ~dst ~dst_off =
  check ~op:`Read t p;
  emit_read t p;
  Bytes.blit t.data.(p.Rich_ptr.slot) p.Rich_ptr.off dst dst_off p.Rich_ptr.len

let free t p =
  with_lock t @@ fun () ->
  let slot = p.Rich_ptr.slot in
  (* A pointer whose slot was reclaimed by a plain [free] and not since
     reallocated: this very allocation was already freed once. Calling
     it a stale pointer would hide the bug — and pushing the slot again
     would corrupt the free list, handing the same slot to two owners. *)
  if
    p.Rich_ptr.pool = t.id
    && slot >= 0
    && slot < Array.length t.data
    && (not t.live.(slot))
    && t.gens.(slot) = p.Rich_ptr.gen + 1
    && t.freed_by.(slot) = By_free
  then begin
    Hook.emit (Hook.Pool_double_free { ptr = p });
    raise (Double_free p)
  end;
  check ~op:`Free t p;
  t.live.(slot) <- false;
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.freed_by.(slot) <- By_free;
  if Hook.enabled () then
    Hook.emit (Hook.Pool_free { pool = t.id; slot; gen = p.Rich_ptr.gen });
  Hook.native_access Hook.N_pool_slot ~id:t.id ~sub:slot ~write:true;
  Stack.push slot t.free_list

let free_all t =
  with_lock t @@ fun () ->
  Stack.clear t.free_list;
  for i = Array.length t.data - 1 downto 0 do
    if t.live.(i) then begin
      t.live.(i) <- false;
      t.gens.(i) <- t.gens.(i) + 1;
      t.freed_by.(i) <- By_free_all
    end;
    Stack.push i t.free_list
  done;
  Hook.emit (Hook.Pool_free_all { pool = t.id })
