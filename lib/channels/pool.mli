(** Shared memory pools.

    Pools carry the bulk data that is too large for queue slots
    (Section IV): the owner allocates slots, fills them once, and passes
    rich pointers down the stack. Pools are exported read-only — the
    consumers cannot mutate the original data (immutability as in FBufs,
    Section V-C), which the API enforces by only offering [read]/[blit]
    to non-owners.

    Frees are generation-counted: freeing a slot bumps its generation,
    so reads through a stale {!Rich_ptr.t} raise {!Stale_pointer}
    instead of returning reused bytes. This is what makes the zero-copy
    crash-recovery protocol of Section V-D testable: after a component
    restart, the surviving components' re-issued requests either refer
    to still-live data or fail loudly. *)

type t

exception Stale_pointer of Rich_ptr.t
(** Raised when dereferencing a pointer whose slot has been freed or
    reused since the pointer was made. *)

exception Double_free of Rich_ptr.t
(** Raised by {!free} when the slot behind the pointer was already
    released by a previous {!free} and has not been reallocated since:
    an unmistakable owner bug, distinguished from the merely-stale case
    (slot reclaimed wholesale by {!free_all} or since handed to a new
    allocation) so it cannot hide behind the crash-recovery paths that
    tolerate {!Stale_pointer}. *)

exception Pool_exhausted
(** Raised by {!alloc} when no free slot is available. *)

val set_default_threadsafe : bool -> unit
(** When [true], pools created afterwards guard their free-list with a
    mutex so allocation and free may come from different domains (the
    native runtime's driver fills a pool the IP server frees). Slot
    payloads stay lock-free: slots are owner-disjoint and hand-off is
    ordered by the SPSC ring publication. Default [false] — simulated
    runs are single-threaded. *)

val create : id:int -> slots:int -> slot_size:int -> t
(** [create ~id ~slots ~slot_size] makes a pool of [slots] buffers of
    [slot_size] bytes each. Ids must be unique per pool universe
    (machine); use {!fresh_id} unless reproducing a specific id. *)

val fresh_id : unit -> int
(** A process-wide unique pool identifier. *)

val id : t -> int
val slot_size : t -> int
val total_slots : t -> int
val free_slots : t -> int
val in_use : t -> int

val alloc : t -> len:int -> Rich_ptr.t
(** Owner side: allocate a slot and return a pointer covering its first
    [len] bytes. Raises {!Pool_exhausted} when full and [Invalid_argument]
    when [len] exceeds the slot size. *)

val write : t -> Rich_ptr.t -> src:Bytes.t -> src_off:int -> unit
(** Owner side: fill the chunk behind a live pointer from [src]. Raises
    {!Stale_pointer} on a dead pointer. Writing is an owner privilege:
    this function is deliberately not part of what a consumer gets. *)

val sub_ptr : Rich_ptr.t -> off:int -> len:int -> Rich_ptr.t
(** A narrower view into the same chunk ([off] relative to the chunk).
    The result shares the generation, so it dies with the slot. *)

val read : t -> Rich_ptr.t -> Bytes.t
(** Consumer side: copy the chunk out. Raises {!Stale_pointer}. *)

val blit : t -> Rich_ptr.t -> dst:Bytes.t -> dst_off:int -> unit
(** Consumer side: copy the chunk into [dst] at [dst_off]. *)

val live : t -> Rich_ptr.t -> bool
(** Whether a pointer is still valid (right pool, live generation). *)

val free : t -> Rich_ptr.t -> unit
(** Owner side: release the slot behind the pointer. Freeing the same
    allocation twice raises {!Double_free}; freeing through an
    otherwise stale pointer (reallocated slot, wholesale reclaim)
    raises {!Stale_pointer}. *)

val free_all : t -> unit
(** Owner side: release every slot (used when the owner restarts and
    reinitializes its pool, Section V-D). *)
