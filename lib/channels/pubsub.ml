type publication = { key : string; creator : int; chan_id : int }

type event = [ `Published of publication | `Gone ]

type t = {
  (* Each stored publication remembers when it was (last) published, so
     replay can reproduce the order subscribers originally saw. *)
  published : (string, publication * int) Hashtbl.t;
  subscribers : (string, (event -> unit) list ref) Hashtbl.t;
  mutable prefix_subscribers : (string * (event -> unit)) list;
  mutable next_seq : int;
}

let create () =
  {
    published = Hashtbl.create 32;
    subscribers = Hashtbl.create 32;
    prefix_subscribers = [];
    next_seq = 0;
  }

let subs t key =
  match Hashtbl.find_opt t.subscribers key with
  | Some l -> !l
  | None -> []

let prefix_subs t key =
  List.filter_map
    (fun (prefix, f) -> if String.starts_with ~prefix key then Some f else None)
    t.prefix_subscribers

let publish t ~key ~creator ~chan_id =
  let pub = { key; creator; chan_id } in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.published key (pub, seq);
  List.iter (fun f -> f (`Published pub)) (subs t key);
  List.iter (fun f -> f (`Published pub)) (prefix_subs t key)

let unpublish t ~key =
  if Hashtbl.mem t.published key then begin
    Hashtbl.remove t.published key;
    List.iter (fun f -> f `Gone) (subs t key);
    List.iter (fun f -> f `Gone) (prefix_subs t key)
  end

let lookup t ~key =
  Option.map fst (Hashtbl.find_opt t.published key)

let subscribe t ~key f =
  let l =
    match Hashtbl.find_opt t.subscribers key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.subscribers key l;
        l
  in
  l := !l @ [ f ];
  match Hashtbl.find_opt t.published key with
  | Some (pub, _) -> f (`Published pub)
  | None -> ()

let replay_prefix t ~prefix f =
  let matching =
    Hashtbl.fold
      (fun key entry acc ->
        if String.starts_with ~prefix key then entry :: acc else acc)
      t.published []
  in
  List.iter
    (fun (pub, _) -> f (`Published pub))
    (List.sort (fun (_, s1) (_, s2) -> compare s1 s2) matching)

let subscribe_prefix t ~prefix f =
  t.prefix_subscribers <- t.prefix_subscribers @ [ (prefix, f) ];
  replay_prefix t ~prefix f

let unsubscribe_all t ~key = Hashtbl.remove t.subscribers key
