type publication = { key : string; creator : int; chan_id : int }

type event = [ `Published of publication | `Gone ]

type t = {
  published : (string, publication) Hashtbl.t;
  subscribers : (string, (event -> unit) list ref) Hashtbl.t;
  mutable prefix_subscribers : (string * (event -> unit)) list;
}

let create () =
  {
    published = Hashtbl.create 32;
    subscribers = Hashtbl.create 32;
    prefix_subscribers = [];
  }

let subs t key =
  match Hashtbl.find_opt t.subscribers key with
  | Some l -> !l
  | None -> []

let prefix_subs t key =
  List.filter_map
    (fun (prefix, f) -> if String.starts_with ~prefix key then Some f else None)
    t.prefix_subscribers

let publish t ~key ~creator ~chan_id =
  let pub = { key; creator; chan_id } in
  Hashtbl.replace t.published key pub;
  List.iter (fun f -> f (`Published pub)) (subs t key);
  List.iter (fun f -> f (`Published pub)) (prefix_subs t key)

let unpublish t ~key =
  if Hashtbl.mem t.published key then begin
    Hashtbl.remove t.published key;
    List.iter (fun f -> f `Gone) (subs t key);
    List.iter (fun f -> f `Gone) (prefix_subs t key)
  end

let lookup t ~key = Hashtbl.find_opt t.published key

let subscribe t ~key f =
  let l =
    match Hashtbl.find_opt t.subscribers key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.subscribers key l;
        l
  in
  l := !l @ [ f ];
  match Hashtbl.find_opt t.published key with
  | Some pub -> f (`Published pub)
  | None -> ()

let replay_prefix t ~prefix f =
  let matching =
    Hashtbl.fold
      (fun key pub acc ->
        if String.starts_with ~prefix key then pub :: acc else acc)
      t.published []
  in
  List.iter
    (fun pub -> f (`Published pub))
    (List.sort (fun a b -> compare a.key b.key) matching)

let subscribe_prefix t ~prefix f =
  t.prefix_subscribers <- t.prefix_subscribers @ [ (prefix, f) ];
  replay_prefix t ~prefix f

let unsubscribe_all t ~key = Hashtbl.remove t.subscribers key
