(** Publish-subscribe channel directory.

    There is no global manager in the system (Section IV-C): when a
    server starts, it announces its channels and pools by publishing
    key-value pairs; servers subscribed to a key are notified and can
    then request an export and attach. The directory also replays
    existing publications to late subscribers, which is what lets a
    restarted server rediscover its world. *)

type t

type publication = {
  key : string;  (** Meaningful name, e.g. ["ip.rx"]. *)
  creator : int;  (** Publishing process id. *)
  chan_id : int;  (** Unique id of the channel or pool. *)
}

val create : unit -> t

val publish : t -> key:string -> creator:int -> chan_id:int -> unit
(** Announce a channel. Republishing a key replaces the previous entry
    (a restarted creator keeps the identification, Section IV-D) and
    re-notifies subscribers. *)

val unpublish : t -> key:string -> unit
(** Withdraw a key, notifying subscribers with [`Gone]. *)

val lookup : t -> key:string -> publication option

val subscribe :
  t -> key:string -> ([ `Published of publication | `Gone ] -> unit) -> unit
(** Register interest in a key. If the key is already published the
    callback fires immediately with the current publication. *)

val subscribe_prefix :
  t -> prefix:string -> ([ `Published of publication | `Gone ] -> unit) -> unit
(** Register interest in every key starting with [prefix] — the
    learn-broadcast primitive: replicated servers announce discoveries
    (e.g. ARP bindings) under a shared prefix and every peer hears
    them. Existing matching publications are replayed immediately, in
    publish order. *)

val replay_prefix :
  t -> prefix:string -> ([ `Published of publication | `Gone ] -> unit) -> unit
(** Replay the current publications whose key starts with [prefix],
    without subscribing — how a restarted replica re-warms caches it
    lost in the crash. Entries are re-delivered in publish order (a
    republished key takes the position of its latest publication), so a
    re-warming replica converges to the same state the live peers built
    up incrementally. *)

val unsubscribe_all : t -> key:string -> unit
(** Drop all subscriptions on a key (used in tests). *)
