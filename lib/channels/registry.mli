(** Machine-wide pool directory.

    "Any server that knows the pool described in the pointer can
    translate the rich pointer into a local one to access the data"
    (Section V-C). The registry maps pool identifiers to pools so that
    consumers — and the DMA engines of simulated devices — can resolve
    rich-pointer chains. Reads enforce the pools' read-only export. *)

type t

exception Unknown_pool of int

val create : unit -> t

val register : t -> Pool.t -> unit
(** Make a pool resolvable. Re-registering an id replaces the pool (a
    restarted owner re-creates and re-exports it). *)

val unregister : t -> id:int -> unit
(** Withdraw a pool from the directory. Unregistering an id that is not
    (or no longer) registered is a no-op: crash teardown and restart
    paths may race to withdraw the same pool, and the second withdrawal
    must be harmless. *)

val find : t -> int -> Pool.t
(** Raises {!Unknown_pool}. *)

val read : t -> Rich_ptr.t -> Bytes.t
(** Resolve and copy one chunk. Raises {!Unknown_pool} or
    {!Pool.Stale_pointer}. *)

val gather : t -> Rich_ptr.chain -> Bytes.t
(** Materialize a chunk chain into contiguous bytes — what a
    scatter-gather DMA engine does when serializing a frame. *)

val chain_live : t -> Rich_ptr.chain -> bool
(** All chunks of the chain resolve to live slots. *)
