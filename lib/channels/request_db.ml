type id = int
type 'a abort = id -> 'a -> unit
type 'a record = { peer : int; payload : 'a; abort : 'a abort; seq : int }

exception Abort_cycle of { db : int; peer : int; depth : int }

(* Identifiers are globally unique, not per-database: after a crash
   the owning server gets a fresh database, and a stale reply to a
   pre-crash request must not alias a new request's id (Section V-D:
   "we generate new identifiers"). One process-wide counter gives
   every id exactly one submission, ever. *)
let global_next_id = ref 0
let global_next_db = ref 0

type 'a t = {
  db_id : int;
  table : (id, 'a record) Hashtbl.t;
  mutable next_seq : int;
  mutable sweeping : bool;  (* an abort_peer sweep is on the stack *)
  mutable deferred : int list;  (* peers whose sweep arrived re-entrantly *)
}

(* A sweep that keeps re-queueing peers past this many rounds is a
   cycle of abort actions resubmitting to each other. *)
let max_sweep_depth = 64

let create () =
  incr global_next_db;
  {
    db_id = !global_next_db;
    table = Hashtbl.create 64;
    next_seq = 0;
    sweeping = false;
    deferred = [];
  }

let db_id t = t.db_id

let submit t ~peer ~payload ~abort =
  let id = !global_next_id in
  global_next_id := id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.table id { peer; payload; abort; seq };
  if Hook.enabled () then Hook.emit (Hook.Req_submit { db = t.db_id; id; peer });
  id

let complete t id =
  match Hashtbl.find_opt t.table id with
  | None ->
      if Hook.enabled () then
        Hook.emit (Hook.Req_confirm { db = t.db_id; id; known = false });
      None
  | Some r ->
      Hashtbl.remove t.table id;
      if Hook.enabled () then
        Hook.emit (Hook.Req_confirm { db = t.db_id; id; known = true });
      Some r.payload

let peek t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some r -> Some r.payload

let in_seq_order t =
  Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare a.seq b.seq)

(* Run one peer's sweep: snapshot the doomed records, remove them all
   before running any abort action (an abort never sees itself — or a
   sibling — as still outstanding), then run the aborts in submission
   order. *)
let sweep_one t ~peer =
  let doomed = List.filter (fun (_, r) -> r.peer = peer) (in_seq_order t) in
  List.iter (fun (id, _) -> Hashtbl.remove t.table id) doomed;
  List.iter
    (fun (id, r) ->
      if Hook.enabled () then
        Hook.emit (Hook.Req_abort { db = t.db_id; id; peer });
      r.abort id r.payload)
    doomed;
  List.length doomed

let abort_peer t ~peer =
  if t.sweeping then begin
    (* Re-entrant call from inside an abort action (a cascading crash
       notification). Running it here would interleave two sweeps over
       shared state; instead queue the peer and let the outermost
       sweep drain it. The re-entrant caller gets 0 — its requests are
       aborted, just not synchronously. *)
    t.deferred <- t.deferred @ [ peer ];
    0
  end
  else begin
    t.sweeping <- true;
    Fun.protect
      ~finally:(fun () ->
        t.sweeping <- false;
        t.deferred <- [])
      (fun () ->
        let n = sweep_one t ~peer in
        let rec drain depth n =
          match t.deferred with
          | [] -> n
          | p :: rest ->
              if depth >= max_sweep_depth then
                raise (Abort_cycle { db = t.db_id; peer = p; depth });
              t.deferred <- rest;
              drain (depth + 1) (n + sweep_one t ~peer:p)
        in
        drain 1 n)
  end

let reset_signal t =
  if Hook.enabled () then Hook.emit (Hook.Req_reset { db = t.db_id })

let outstanding t = Hashtbl.length t.table

let outstanding_to t ~peer =
  Hashtbl.fold (fun _ r acc -> if r.peer = peer then acc + 1 else acc) t.table 0

let iter t f = List.iter (fun (id, r) -> f id ~peer:r.peer r.payload) (in_seq_order t)
