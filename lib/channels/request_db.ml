type id = int
type 'a abort = id -> 'a -> unit
type 'a record = { peer : int; payload : 'a; abort : 'a abort; seq : int }

type 'a t = {
  table : (id, 'a record) Hashtbl.t;
  mutable next_id : id;
  mutable next_seq : int;
  mutable sweeping : bool;  (* an abort_peer sweep is on the stack *)
  mutable deferred : int list;  (* peers whose sweep arrived re-entrantly *)
}

let create () =
  {
    table = Hashtbl.create 64;
    next_id = 0;
    next_seq = 0;
    sweeping = false;
    deferred = [];
  }

let submit t ~peer ~payload ~abort =
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.table id { peer; payload; abort; seq };
  id

let complete t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some r ->
      Hashtbl.remove t.table id;
      Some r.payload

let peek t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some r -> Some r.payload

let in_seq_order t =
  Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare a.seq b.seq)

(* Run one peer's sweep: snapshot the doomed records, remove them all
   before running any abort action (an abort never sees itself — or a
   sibling — as still outstanding), then run the aborts in submission
   order. *)
let sweep_one t ~peer =
  let doomed = List.filter (fun (_, r) -> r.peer = peer) (in_seq_order t) in
  List.iter (fun (id, _) -> Hashtbl.remove t.table id) doomed;
  List.iter (fun (id, r) -> r.abort id r.payload) doomed;
  List.length doomed

let abort_peer t ~peer =
  if t.sweeping then begin
    (* Re-entrant call from inside an abort action (a cascading crash
       notification). Running it here would interleave two sweeps over
       shared state; instead queue the peer and let the outermost
       sweep drain it. The re-entrant caller gets 0 — its requests are
       aborted, just not synchronously. *)
    t.deferred <- t.deferred @ [ peer ];
    0
  end
  else begin
    t.sweeping <- true;
    Fun.protect
      ~finally:(fun () -> t.sweeping <- false)
      (fun () ->
        let n = sweep_one t ~peer in
        let rec drain n =
          match t.deferred with
          | [] -> n
          | p :: rest ->
              t.deferred <- rest;
              drain (n + sweep_one t ~peer:p)
        in
        drain n)
  end

let outstanding t = Hashtbl.length t.table

let outstanding_to t ~peer =
  Hashtbl.fold (fun _ r acc -> if r.peer = peer then acc + 1 else acc) t.table 0

let iter t f = List.iter (fun (id, r) -> f id ~peer:r.peer r.payload) (in_seq_order t)
