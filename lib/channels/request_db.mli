(** The request database.

    Single-threaded asynchronous servers must remember which requests
    they injected into which channels, together with the data associated
    with each request and an {e abort action} to run if the peer serving
    the request crashes (Section IV, IV-D). The database generates a
    unique identifier per request; replies are matched by identifier.

    On a neighbour crash the owner calls {!abort_peer}, which removes
    every outstanding request addressed to that peer and runs its abort
    action — retransmit, drop, or propagate an error, at the server's
    discretion. *)

type 'a t
(** A database holding per-request payloads of type ['a]. *)

type id = int
(** Request identifiers. Unique within one database instance for its
    whole lifetime — identifiers are never reused, so replies to
    pre-crash requests can be recognized as stale and ignored
    (Section V-D: "We generate new identifiers so that we can ignore
    replies to the original requests"). *)

type 'a abort = id -> 'a -> unit
(** Abort action, given the request id and payload. *)

val create : unit -> 'a t

val submit : 'a t -> peer:int -> payload:'a -> abort:'a abort -> id
(** Record an in-flight request addressed to [peer]. *)

val complete : 'a t -> id -> 'a option
(** A reply arrived: remove and return the payload. [None] means the id
    is unknown — typically a stale reply from before a crash, which the
    caller must ignore. *)

val peek : 'a t -> id -> 'a option
(** Look at an in-flight payload without removing it. *)

val abort_peer : 'a t -> peer:int -> int
(** Remove all requests addressed to [peer], running each abort action.
    Returns how many were aborted. Abort actions run in submission
    order, and every doomed record is removed {e before} the first
    abort runs, so an abort action never observes itself (or a doomed
    sibling) as still outstanding.

    Re-entrancy contract: an abort action may itself call [abort_peer]
    on the same database (a cascading crash notification). The nested
    call does not run a second sweep on the stack — it queues its peer
    and returns [0]; the outermost sweep drains queued peers, in
    arrival order, before returning (and its count includes their
    aborts). Submitting new requests from an abort action is allowed;
    they survive unless addressed to a queued peer. *)

val outstanding : 'a t -> int
(** Number of in-flight requests. *)

val outstanding_to : 'a t -> peer:int -> int
(** Number of in-flight requests addressed to [peer]. *)

val iter : 'a t -> (id -> peer:int -> 'a -> unit) -> unit
(** Visit in-flight requests in submission order. *)
