(** The request database.

    Single-threaded asynchronous servers must remember which requests
    they injected into which channels, together with the data associated
    with each request and an {e abort action} to run if the peer serving
    the request crashes (Section IV, IV-D). The database generates a
    unique identifier per request; replies are matched by identifier.

    On a neighbour crash the owner calls {!abort_peer}, which removes
    every outstanding request addressed to that peer and runs its abort
    action — retransmit, drop, or propagate an error, at the server's
    discretion.

    Every submit, confirm and abort is mirrored onto the {!Hook} event
    stream ([Req_submit]/[Req_confirm]/[Req_abort]/[Req_reset]) so the
    dynamic protocol checker can replay the request/confirm contract. *)

type 'a t
(** A database holding per-request payloads of type ['a]. *)

type id = int
(** Request identifiers. {e Globally} unique across every database
    instance for the whole process lifetime — identifiers are never
    reused, not even by the fresh database a reincarnated server
    creates, so replies to pre-crash requests can be recognized as
    stale and can never alias a live request (Section V-D: "We
    generate new identifiers so that we can ignore replies to the
    original requests"). *)

type 'a abort = id -> 'a -> unit
(** Abort action, given the request id and payload. *)

exception Abort_cycle of { db : int; peer : int; depth : int }
(** Raised by {!abort_peer} when deferred re-entrant sweeps keep
    re-queueing peers past a fixed depth cap — abort actions are
    resubmitting to (and re-aborting) the same peers cyclically, and
    unbounded deferral would never terminate. [db] identifies the
    database, [peer] the sweep that hit the cap, [depth] the number of
    sweeps already drained. *)

val create : unit -> 'a t

val db_id : 'a t -> int
(** Process-unique identity of this database instance, as carried by
    the [Req_*] hook events. A server's reincarnation creates a new
    database with a new id. *)

val submit : 'a t -> peer:int -> payload:'a -> abort:'a abort -> id
(** Record an in-flight request addressed to [peer]. *)

val complete : 'a t -> id -> 'a option
(** A reply arrived: remove and return the payload. [None] means the id
    is unknown — typically a stale reply from before a crash, which the
    caller must ignore. *)

val peek : 'a t -> id -> 'a option
(** Look at an in-flight payload without removing it. *)

val abort_peer : 'a t -> peer:int -> int
(** Remove all requests addressed to [peer], running each abort action.
    Returns how many were aborted. Abort actions run in submission
    order, and every doomed record is removed {e before} the first
    abort runs, so an abort action never observes itself (or a doomed
    sibling) as still outstanding.

    Re-entrancy contract: an abort action may itself call [abort_peer]
    on the same database (a cascading crash notification). The nested
    call does not run a second sweep on the stack — it queues its peer
    and returns [0]; the outermost sweep drains queued peers, in
    arrival order, before returning (and its count includes their
    aborts). Submitting new requests from an abort action is allowed;
    they survive unless addressed to a queued peer. Deferral is
    bounded: past a fixed number of drained sweeps the outermost call
    raises {!Abort_cycle} instead of looping forever. *)

val reset_signal : 'a t -> unit
(** Announce on the hook stream that this database is being discarded
    wholesale (its owner crashed): emits [Req_reset] so checkers close
    every obligation the database still held. Does not modify the
    database — the owner drops its reference right after. *)

val outstanding : 'a t -> int
(** Number of in-flight requests. *)

val outstanding_to : 'a t -> peer:int -> int
(** Number of in-flight requests addressed to [peer]. *)

val iter : 'a t -> (id -> peer:int -> 'a -> unit) -> unit
(** Visit in-flight requests in submission order. *)
