(* Two backings behind one channel type:

   - [Sim]: the historical single-threaded FIFO, used by every
     discrete-event run. Plain mutable fields, notify only on
     empty-to-nonempty (the MONITOR/MWAIT model).
   - [Ring]: a real {!Spsc_queue} between two OCaml domains, used by the
     native runtime. Counters are atomics, and notify fires on *every*
     successful push — the was-empty optimization is racy across
     domains (consumer pops the last element between our [is_empty] and
     [push] and parks; nobody rings). The consumer-side doorbell
     dedupes, so the extra notifications cost one atomic exchange. *)

type 'a backing =
  | Sim of {
      q : 'a Queue.t;
      mutable down : bool;
      mutable sent : int;
      mutable dropped : int;
      mutable max_occ : int;
    }
  | Ring of {
      ring : 'a Spsc_queue.t;
      down : bool Atomic.t;
      sent : int Atomic.t;
      dropped : int Atomic.t;
      max_occ : int Atomic.t;
    }

type 'a t = {
  id : int;
  capacity : int;
  backing : 'a backing;
  mutable notify : (unit -> unit) option;
      (* Installed once at wiring time, before any domain is spawned;
         published to other domains by [Domain.spawn]. *)
}

let create ?(capacity = 512) ~id () =
  assert (capacity > 0);
  {
    id;
    capacity;
    backing = Sim { q = Queue.create (); down = false; sent = 0; dropped = 0; max_occ = 0 };
    notify = None;
  }

let create_native ?(capacity = 512) ~id () =
  let ring = Spsc_queue.create ~id ~capacity () in
  {
    id;
    capacity = Spsc_queue.capacity ring;
    backing =
      Ring
        {
          ring;
          down = Atomic.make false;
          sent = Atomic.make 0;
          dropped = Atomic.make 0;
          max_occ = Atomic.make 0;
        };
    notify = None;
  }

let id t = t.id
let capacity t = t.capacity
let is_native t = match t.backing with Sim _ -> false | Ring _ -> true

let send t x =
  match t.backing with
  | Sim s ->
      if s.down || Queue.length s.q >= t.capacity then begin
        s.dropped <- s.dropped + 1;
        false
      end
      else begin
        let was_empty = Queue.is_empty s.q in
        Queue.push x s.q;
        s.sent <- s.sent + 1;
        let occ = Queue.length s.q in
        if occ > s.max_occ then s.max_occ <- occ;
        if was_empty then Option.iter (fun f -> f ()) t.notify;
        true
      end
  | Ring r ->
      if Atomic.get r.down then begin
        Atomic.incr r.dropped;
        false
      end
      else if Spsc_queue.try_push r.ring x then begin
        Atomic.incr r.sent;
        let occ = Spsc_queue.length r.ring in
        (* Producer-only write: a plain max race-free on this side. *)
        if occ > Atomic.get r.max_occ then Atomic.set r.max_occ occ;
        Option.iter (fun f -> f ()) t.notify;
        true
      end
      else begin
        Atomic.incr r.dropped;
        false
      end

let recv t =
  match t.backing with
  | Sim s -> if s.down then None else Queue.take_opt s.q
  | Ring r -> if Atomic.get r.down then None else Spsc_queue.try_pop r.ring

let peek t =
  match t.backing with
  | Sim s -> if s.down then None else Queue.peek_opt s.q
  | Ring r -> if Atomic.get r.down then None else Spsc_queue.peek r.ring

let length t =
  match t.backing with
  | Sim s -> Queue.length s.q
  | Ring r -> Spsc_queue.length r.ring

let is_empty t =
  match t.backing with
  | Sim s -> Queue.is_empty s.q
  | Ring r -> Spsc_queue.is_empty r.ring

let set_notify t f = t.notify <- Some f

let tear_down t =
  match t.backing with
  | Sim s ->
      s.down <- true;
      Queue.clear s.q
  | Ring r ->
      (* Queued elements are abandoned in place: draining a live SPSC
         ring from a third party would violate single-consumer. Native
         runs do not inject crashes, so this only stops traffic. *)
      Atomic.set r.down true

let revive t =
  match t.backing with
  | Sim s ->
      s.down <- false;
      Queue.clear s.q
  | Ring r -> Atomic.set r.down false

let is_down t =
  match t.backing with
  | Sim s -> s.down
  | Ring r -> Atomic.get r.down

let sent_total t =
  match t.backing with Sim s -> s.sent | Ring r -> Atomic.get r.sent

let dropped_total t =
  match t.backing with Sim s -> s.dropped | Ring r -> Atomic.get r.dropped

let max_occupancy t =
  match t.backing with Sim s -> s.max_occ | Ring r -> Atomic.get r.max_occ
