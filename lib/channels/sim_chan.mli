(** Simulated fast-path channel.

    The in-simulator counterpart of {!Spsc_queue}: a unidirectional,
    bounded, non-blocking queue between exactly one producer server and
    one consumer server. The cycle costs of using it (enqueue, dequeue,
    marshalling, cross-core cache-line stalls) are charged by the server
    runtime, not here; this module only provides the queue semantics the
    paper requires — never block, notify an idle consumer, and count
    what happened for the evaluation.

    A channel can be {e torn down} when its creator crashes
    (Section IV-D): sends and receives then fail until the channel is
    re-exported, which resets the queue (in-flight messages are lost,
    exactly like remapping a fresh shared-memory region). *)

type 'a t

val create : ?capacity:int -> id:int -> unit -> 'a t
(** Default capacity: 512 slots, a typical ring size. *)

val create_native : ?capacity:int -> id:int -> unit -> 'a t
(** A channel backed by a real {!Spsc_queue} between two OCaml domains
    (one producer, one consumer). Counters become atomics, capacity is
    rounded up to a power of two, and the notify hook fires on every
    successful send — cross-domain, the was-empty test is racy, so the
    consumer-side doorbell dedupes instead. *)

val is_native : 'a t -> bool

val id : 'a t -> int
val capacity : 'a t -> int

val send : 'a t -> 'a -> bool
(** Non-blocking send; [false] when the queue is full or the channel is
    torn down. The caller decides what to do — e.g. a network stack
    drops the packet (Section IV-A). *)

val recv : 'a t -> 'a option
(** Non-blocking receive; [None] when empty or torn down. *)

val peek : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

val set_notify : 'a t -> (unit -> unit) -> unit
(** [set_notify c f] installs the consumer's wake-up hook: [f] fires
    whenever a message is enqueued while the queue was empty. This
    models the producer's write to the consumer's monitored cache line
    (MONITOR/MWAIT, Section IV-B). *)

val tear_down : 'a t -> unit
(** Invalidate the channel and drop queued messages. *)

val revive : 'a t -> unit
(** Re-export after a restart: the channel id is preserved, the queue
    restarts empty. *)

val is_down : 'a t -> bool

val sent_total : 'a t -> int
(** Messages successfully enqueued over the channel's lifetime. *)

val dropped_total : 'a t -> int
(** Sends refused because the queue was full or down. *)

val max_occupancy : 'a t -> int
(** High-water mark of queued messages — the per-ring occupancy figure
    reported by the native runtime's [--json] output. *)
