(* The head (consumer index) and tail (producer index) are separate
   atomics. OCaml's [Atomic.t] boxes each counter in its own heap block,
   which keeps them in distinct cache lines in practice; we additionally
   pad the record with spacer fields so the two atomics are not adjacent
   in the record itself. Slots hold ['a option] so the consumer can
   release references ([None]) as it pops, letting the GC reclaim
   payloads of long-lived queues. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  cap : int;
  id : int; (* stable ring id for the native race hook; -1 = untracked *)
  tail : int Atomic.t; (* producer writes, consumer reads *)
  _pad0 : int;
  _pad1 : int;
  _pad2 : int;
  _pad3 : int;
  _pad4 : int;
  _pad5 : int;
  _pad6 : int;
  _pad7 : int;
  head : int Atomic.t; (* consumer writes, producer reads *)
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(id = -1) ~capacity () =
  assert (capacity > 0);
  let cap = round_pow2 capacity in
  {
    slots = Array.make cap None;
    mask = cap - 1;
    cap;
    id;
    tail = Atomic.make 0;
    _pad0 = 0;
    _pad1 = 0;
    _pad2 = 0;
    _pad3 = 0;
    _pad4 = 0;
    _pad5 = 0;
    _pad6 = 0;
    _pad7 = 0;
    head = Atomic.make 0;
  }

let capacity t = t.cap

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.cap then false
  else begin
    (* Race-hook order: the event precedes both the slot write and the
       tail release-store, so by the time a consumer can observe index
       [tail] the detector has already recorded the producer's clock.
       The index is the absolute (un-masked) counter: slot reuse after
       a wrap gets a fresh location, while a second producer reading
       the same stale tail collides on the same one. *)
    if t.id >= 0 && Hook.native_enabled () then
      Hook.native_emit (Hook.N_ring_push { ring = t.id; index = tail });
    t.slots.(tail land t.mask) <- Some x;
    (* The publication order matters: the slot write must be visible
       before the tail increment. [Atomic.set] is a release store. *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    (* Emitted after the acquire-load of tail and before the slot
       read: the producer's release (recorded at its push event) is
       visible here, so the detector joins before checking. *)
    if t.id >= 0 && Hook.native_enabled () then
      Hook.native_emit (Hook.N_ring_pop { ring = t.id; index = head });
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end

let peek t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None else t.slots.(head land t.mask)

let is_empty t = Atomic.get t.tail = Atomic.get t.head

let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else if n > t.cap then t.cap else n
