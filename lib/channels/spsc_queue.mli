(** Lock-free single-producer single-consumer ring buffer.

    This is the real data structure behind the paper's fast-path
    channels (Section IV): a fixed-capacity ring whose head and tail
    indices live in different cache lines so they do not bounce between
    the producer's and the consumer's cores, FastForward-style. One
    domain may push while another pops without locks; the paper measures
    ~30 cycles per asynchronous enqueue between two cores, which
    [bench/main.exe micro] checks against this implementation.

    The queue never blocks: both ends return [false]/[None] instead, as
    required by the deadlock-avoidance rule of Section IV-A ("we must
    never block when we want to add a request and the queue is full"). *)

type 'a t

val create : ?id:int -> capacity:int -> unit -> 'a t
(** [create ~capacity] makes an empty queue holding at most [capacity]
    elements. [capacity] must be positive; it is rounded up to a power
    of two. [id] (default [-1] = untracked) is a stable ring identity:
    when non-negative and the native race hook is armed, push/pop emit
    {!Hook.N_ring_push}/{!Hook.N_ring_pop} so the happens-before
    checker can model the ring's release/acquire edges. *)

val capacity : 'a t -> int
(** The rounded-up capacity. *)

val try_push : 'a t -> 'a -> bool
(** Producer side. [try_push q x] appends [x], or returns [false] when
    the queue is full. Must be called from at most one domain at a
    time. *)

val try_pop : 'a t -> 'a option
(** Consumer side. [try_pop q] removes the oldest element, or returns
    [None] when the queue is empty. Must be called from at most one
    domain at a time. *)

val peek : 'a t -> 'a option
(** Consumer side: the oldest element without removing it. *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness check (exact for the consumer; a racing
    producer may append concurrently). *)

val length : 'a t -> int
(** Snapshot of the number of queued elements; approximate under
    concurrent use. *)
