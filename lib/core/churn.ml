module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Stats = Newt_sim.Stats
module Tcp = Newt_net.Tcp
module Addr = Newt_net.Addr
module Rule = Newt_pf.Rule
module Sink = Newt_stack.Sink
module Tcp_srv = Newt_stack.Tcp_srv
module Apps = Newt_sockets.Apps
module Socket_api = Newt_sockets.Socket_api
module Static = Newt_verify.Static
module Continuous = Newt_verify.Continuous
module Tcpfsm = Newt_verify.Tcpfsm
module Pf_srv = Newt_stack.Pf_srv
module Pf_engine = Newt_pf.Pf_engine
module S = Newt_scale.Sharded_stack

type scenario = Baseline | Syn_flood | Crash_during_churn | Listen_pressure

let scenario_name = function
  | Baseline -> "baseline"
  | Syn_flood -> "syn-flood"
  | Crash_during_churn -> "crash-during-churn"
  | Listen_pressure -> "listen-pressure"

let scenario_of_name = function
  | "baseline" -> Some Baseline
  | "syn-flood" | "flood" -> Some Syn_flood
  | "crash-during-churn" | "crash" -> Some Crash_during_churn
  | "listen-pressure" | "listen" -> Some Listen_pressure
  | _ -> None

type tail = {
  samples : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

let tail_of_hist h =
  let q p = Option.value (Stats.Hist.percentile h p) ~default:0.0 in
  {
    samples = Stats.Hist.count h;
    mean_us = Option.value (Stats.Hist.mean h) ~default:0.0;
    p50_us = q 50.0;
    p99_us = q 99.0;
    p999_us = q 99.9;
  }

type result = {
  scenario : scenario;
  offered_rate : float;  (** RPC starts per second the workers aim for. *)
  duration_s : float;
  started : int;
  completed : int;
  rpc_errors : int;
  shed : int;
  completed_rate : float;  (** Completed RPCs per second. *)
  connect : tail;  (** Connect-call → established, µs. *)
  request : tail;  (** Connect-call → echo received, µs. *)
  bulk_goodput_gbps : float;
  listen_overflows : int;
  accepted : int;  (** Listen-pressure: connections the listener took. *)
  client_resets : int;  (** Listen-pressure: client-side refusals. *)
  flood_syns : int;
  conntrack_entries : int;
  conntrack_half_open : int;
  evicted_half_open : int;
  evicted_established : int;
  conns_at_kill : int;  (** Crash: PCBs on the shard the moment it died. *)
  shard_restarts : int;
  steering_violations : int;
  checksum_failures : int;
}

let empty_result scenario ~offered_rate ~duration_s =
  {
    scenario;
    offered_rate;
    duration_s;
    started = 0;
    completed = 0;
    rpc_errors = 0;
    shed = 0;
    completed_rate = 0.0;
    connect = tail_of_hist (Stats.Hist.create ());
    request = tail_of_hist (Stats.Hist.create ());
    bulk_goodput_gbps = 0.0;
    listen_overflows = 0;
    accepted = 0;
    client_resets = 0;
    flood_syns = 0;
    conntrack_entries = 0;
    conntrack_half_open = 0;
    evicted_half_open = 0;
    evicted_established = 0;
    conns_at_kill = 0;
    shard_restarts = 0;
    steering_violations = 0;
    checksum_failures = 0;
  }

(* Churn needs a short MSL: a closed RPC's four-tuple sits in TIME_WAIT
   for 2×MSL, and at the default 1 s MSL a 10k conn/s run would pin
   ~20k ephemeral four-tuples — more than one shard's slice of the
   ephemeral range. A DUT serving RPC churn is tuned accordingly (the
   reap itself, and that port reuse waits for it, is verified by the
   TIME_WAIT regression test). *)
let churn_tcp_config =
  { Tcp.default_config with Tcp.msl = Time.of_seconds 0.02 }

let echo_port = 22

(* {1 The SYN flood}

   Spoofed sources from the 198.18.0.0/15 benchmark space: the victim's
   SYN-ACK/RST dies waiting on ARP for an address that never answers,
   so every flood flow leaves a half-open conntrack entry behind (and
   nothing on the attacker's side). Sources cycle through a bounded set
   of IPs with the flow uniqueness carried by the source port, so the
   victim's per-next-hop ARP wait lists (capped) bound the pool slots
   its unanswerable replies pin. *)
let flood_ips = 500

let flood_src c =
  let i = c mod flood_ips in
  (Addr.Ipv4.v 198 18 (i / 250) (1 + (i mod 250)), 1024 + (c / flood_ips))

let start_flood s ~rate ~from_t ~until_t counter =
  let tick = Time.of_seconds 0.001 in
  let batch = max 1 (int_of_float (rate /. 1000.0)) in
  let rec arm at =
    if at < until_t then
      S.at s at (fun () ->
          for _ = 1 to batch do
            incr counter;
            let src, src_port = flood_src !counter in
            Sink.send_tcp_syn (S.sink s) ~src ~src_port ~dst:(S.local_addr s)
              ~dst_port:9
          done;
          arm (at + tick))
  in
  arm from_t

(* {1 The sharded scenarios: baseline, flood, crash-during-churn} *)

let run_sharded scenario ~rate ~duration ~shards ~ip_replicas ~pf_shards
    ~bulk_flows ~workers ~payload ~flood_rate ~conntrack_total ~seed ?verify
    ?break_tcp () =
  let config =
    {
      S.default_config with
      S.seed;
      shards;
      ip_replicas = min ip_replicas shards;
      pf_shards = min pf_shards shards;
      pf_rules = Some [ Rule.pass_all ];
      tcp_config = Some churn_tcp_config;
      conntrack_total;
    }
  in
  let s = S.create ~config () in
  (* Sabotage arming rides every shard's incarnations: Ack_from_closed
     bites on flood traffic to unbound ports, Stale_established on the
     shard kill below. *)
  Option.iter
    (fun mode ->
      for i = 0 to shards - 1 do
        Tcp_srv.set_break_tcp (S.tcp_shard s i) (Some mode)
      done)
    break_tcp;
  Option.iter
    (fun v ->
      S.on_reincarnated s (fun comp ->
          Continuous.recheck v (fun () ->
              Static.check
                ~directory:(S.directory s)
                ~sharding:(Experiments.sharded_spec s)
                ~title:
                  (Printf.sprintf "churn %s: after %s restart"
                     (scenario_name scenario)
                     (Newt_stack.Component.name comp))
                (S.components s))))
    verify;
  Sink.serve_tcp_echo (S.sink s) ~port:echo_port;
  let bulk_received = ref 0 in
  for i = 0 to bulk_flows - 1 do
    Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ n ->
        bulk_received := !bulk_received + n)
  done;
  let until = Time.of_seconds duration in
  let _ =
    List.init bulk_flows (fun i ->
        Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
          ~dst:(S.sink_addr s) ~port:(5001 + i) ~until ())
  in
  let pace = Time.of_seconds (float_of_int workers /. rate) in
  let churners =
    List.init workers (fun _ ->
        Apps.Rpc_churn.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
          ~dst:(S.sink_addr s) ~port:echo_port ~pace ~payload ~until ())
  in
  let flood_syns = ref 0 in
  (match scenario with
  | Syn_flood | Crash_during_churn ->
      start_flood s ~rate:flood_rate
        ~from_t:(Time.of_seconds (0.1 *. duration))
        ~until_t:(Time.of_seconds (0.9 *. duration))
        flood_syns
  | Baseline | Listen_pressure -> ());
  let conns_at_kill = ref 0 in
  (match scenario with
  | Crash_during_churn ->
      S.at s
        (Time.of_seconds (0.5 *. duration))
        (fun () ->
          conns_at_kill :=
            Tcp.connection_count (Tcp_srv.engine (S.tcp_shard s 0));
          S.kill_shard s 0)
  | Baseline | Syn_flood | Listen_pressure -> ());
  S.run s ~until;
  (* Let in-flight RPCs and the recovery drain before reading stats —
     with the verifier attached, far enough that the world quiesces. *)
  S.run s ~until:(until + Time.of_seconds 0.5);
  (* With the FSM checker riding, cross-check every filter shard's
     conntrack confirmation bits against the checker's shadow states
     before the verdict is absorbed. *)
  if Tcpfsm.active () then
    for i = 0 to S.pf_shard_count s - 1 do
      Tcpfsm.crosscheck_conntrack
        ~where:
          (Printf.sprintf "churn %s: pf shard %d" (scenario_name scenario) i)
        (Pf_engine.conntrack (Pf_srv.engine_of (S.pf_shard s i)))
    done;
  Option.iter
    (fun v ->
      S.run s ~until:(until + Time.of_seconds 0.75);
      Continuous.end_run ~check_leaks:false v)
    verify;
  let connect_h = Stats.Hist.create () and request_h = Stats.Hist.create () in
  List.iter
    (fun c ->
      Stats.Hist.merge ~into:connect_h (Apps.Rpc_churn.connect_hist c);
      Stats.Hist.merge ~into:request_h (Apps.Rpc_churn.request_hist c))
    churners;
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 churners in
  let pf = Array.to_list (S.pf_shard_stats s) in
  let sum_pf f = List.fold_left (fun acc p -> acc + f p) 0 pf in
  let completed = sum Apps.Rpc_churn.completed in
  {
    (empty_result scenario ~offered_rate:rate ~duration_s:duration) with
    started = sum Apps.Rpc_churn.started;
    completed;
    rpc_errors = sum Apps.Rpc_churn.errors;
    shed = sum Apps.Rpc_churn.shed;
    completed_rate = float_of_int completed /. duration;
    connect = tail_of_hist connect_h;
    request = tail_of_hist request_h;
    bulk_goodput_gbps = float_of_int !bulk_received *. 8.0 /. duration /. 1e9;
    listen_overflows =
      (let t = ref 0 in
       for i = 0 to shards - 1 do
         t := !t + Tcp_srv.listen_overflows (S.tcp_shard s i)
       done;
       !t);
    flood_syns = !flood_syns;
    conntrack_entries = sum_pf (fun p -> p.S.entries);
    conntrack_half_open = sum_pf (fun p -> p.S.half_open);
    evicted_half_open = sum_pf (fun p -> p.S.evicted_half_open);
    evicted_established = sum_pf (fun p -> p.S.evicted_established);
    conns_at_kill = !conns_at_kill;
    shard_restarts =
      (let t = ref 0 in
       for i = 0 to shards - 1 do
         t := !t + S.shard_restarts s i
       done;
       !t);
    steering_violations = S.steering_violations s;
    checksum_failures = Sink.checksum_failures (S.sink s);
  }

(* {1 Listen-queue pressure}

   Runs on the split {!Host}: inbound connections steer by flow hash,
   so only a single-listener topology lets one accept queue feel the
   full arrival rate. A deliberately slow accept loop behind a small
   backlog: arrivals beyond the queue must be refused (RST, counted) —
   the pre-fix server queued them without bound. *)
let listen_port = 2222

let run_listen_pressure ~rate ~duration ~backlog ~accept_interval ~seed
    ?verify () =
  let config = { Host.default_config with Host.seed } in
  let h = Host.create ~config () in
  Option.iter
    (fun v ->
      Host.on_reincarnated h (fun comp ->
          Continuous.recheck v (fun () ->
              Static.check
                ~directory:(Host.directory h)
                ~title:
                  (Printf.sprintf "churn listen-pressure: after %s restart"
                     (Newt_stack.Component.name comp))
                (Host.components h))))
    verify;
  let sc = Host.sc h and app = Host.app h in
  let accepted = ref 0 in
  (* The slow server: listen with a small backlog, accept one
     connection every [accept_interval] and close it immediately. *)
  Socket_api.tcp_socket sc app (fun listener ->
      Socket_api.bind listener ~port:listen_port (fun _ ->
          Socket_api.listen ~backlog listener (fun _ ->
              let rec accept_loop () =
                Socket_api.accept listener (fun result ->
                    (match result with
                    | `Conn conn ->
                        incr accepted;
                        Socket_api.close conn (fun () -> ())
                    | `Error _ -> ());
                    Host.at h
                      (Engine.now (Host.engine h) + accept_interval)
                      accept_loop)
              in
              accept_loop ())));
  (* The clients: paced inbound connects from the sink. *)
  let sink = Host.sink h 0 in
  let connect_h = Stats.Hist.create () in
  let started = ref 0 and established = ref 0 and resets = ref 0 in
  let until = Time.of_seconds duration in
  let pace = Time.of_seconds (1.0 /. rate) in
  let rec client at =
    if at < until then
      Host.at h at (fun () ->
          incr started;
          let t0 = Engine.now (Host.engine h) in
          let pcb =
            Sink.connect sink ~dst:(Host.local_addr h 0) ~dst_port:listen_port
          in
          Tcp.set_handler pcb (fun ev ->
              match ev with
              | Tcp.Connected ->
                  incr established;
                  Stats.Hist.record connect_h
                    (Time.to_seconds (Engine.now (Host.engine h) - t0) *. 1e6)
              | Tcp.Reset -> incr resets
              | Tcp.Accepted | Tcp.Readable | Tcp.Writable
              | Tcp.Closed_normally ->
                  ());
          client (at + pace))
  in
  client (Time.of_seconds 0.01);
  Host.run h ~until:(until + Time.of_seconds 0.5);
  Option.iter
    (fun v ->
      Host.run h ~until:(until + Time.of_seconds 0.75);
      Continuous.end_run ~check_leaks:false v)
    verify;
  {
    (empty_result Listen_pressure ~offered_rate:rate ~duration_s:duration) with
    started = !started;
    completed = !established;
    completed_rate = float_of_int !established /. duration;
    connect = tail_of_hist connect_h;
    listen_overflows = Tcp_srv.listen_overflows (Host.tcp_srv h);
    accepted = !accepted;
    client_resets = !resets;
    checksum_failures = Sink.checksum_failures sink;
  }

let run ?(scenario = Baseline) ?(rate = 10_000.0) ?(duration = 1.0)
    ?(shards = 8) ?(ip_replicas = 4) ?(pf_shards = 2) ?(bulk_flows = 4)
    ?(workers = 8) ?(payload = 256) ?(flood_rate = 20_000.0)
    ?(conntrack_total = 8192) ?(backlog = 16)
    ?(accept_interval = Time.of_seconds 0.005) ?(seed = 42) ?verify
    ?break_tcp () =
  match scenario with
  | Baseline | Syn_flood | Crash_during_churn ->
      run_sharded scenario ~rate ~duration ~shards ~ip_replicas ~pf_shards
        ~bulk_flows ~workers ~payload ~flood_rate ~conntrack_total ~seed
        ?verify ?break_tcp ()
  | Listen_pressure ->
      run_listen_pressure ~rate:(Float.min rate 2000.0) ~duration ~backlog
        ~accept_interval ~seed ?verify ()

let all_scenarios = [ Baseline; Syn_flood; Crash_during_churn; Listen_pressure ]
