(** Flow-churn and tail-latency harness.

    The paper's evaluation is bulk-transfer heavy (Table II, Figures
    4/5); production front-ends instead live on {e churn} — tens of
    thousands of short RPC-style connections per second riding next to
    the bulk flows. This module drives that load through the sharded
    stack and reports the connect/request latency distribution from
    streaming histograms ({!Newt_sim.Stats.Hist}), p50/p99/p999 — the
    numbers a mean would hide.

    Three adversarial scenarios are first-class runs, each aimed at a
    bug this harness flushed out of the pre-fix stack:

    - {!Syn_flood}: spoofed SYNs exhaust the conntrack budget. The
      state-blind LRU used to evict established entries to make room
      for flood state; the fixed filter evicts half-open entries first
      ({!Newt_pf.Conntrack}).
    - {!Listen_pressure}: connection arrivals outrun a slow accept
      loop. The accept queue used to grow without bound; the fixed
      server refuses past the listener's backlog
      ({!Newt_stack.Tcp_srv}, [listen_overflows]).
    - {!Crash_during_churn}: a TCP shard dies holding tens of
      thousands of in-flight and TIME_WAIT connections; recovery is
      judged by the continuous checker mid-churn. *)

type scenario =
  | Baseline  (** Churn + bulk, no adversary. *)
  | Syn_flood
      (** Churn + bulk + spoofed-source SYN flood against the
          conntrack table (shrunk via [conntrack_total] so eviction
          happens within the run). *)
  | Crash_during_churn
      (** Churn + bulk + the same flood; TCP shard 0 is killed at the
          midpoint with its connection count recorded. *)
  | Listen_pressure
      (** Inbound connects against a small-backlog listener with a
          deliberately slow accept loop, on the single-listener
          {!Host} (inbound flows steer by hash on the sharded stack,
          so only this topology concentrates arrivals on one queue). *)

val scenario_name : scenario -> string
val scenario_of_name : string -> scenario option

val all_scenarios : scenario list

(** One latency distribution, in microseconds, summarized from a
    {!Newt_sim.Stats.Hist} (quantiles carry its ≤1/64 bucket error). *)
type tail = {
  samples : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type result = {
  scenario : scenario;
  offered_rate : float;  (** RPC starts per second the workers aim for. *)
  duration_s : float;
  started : int;
  completed : int;
  rpc_errors : int;
  shed : int;
  completed_rate : float;  (** Completed RPCs per second. *)
  connect : tail;  (** Connect-call → established, µs. *)
  request : tail;  (** Connect-call → echo received, µs. *)
  bulk_goodput_gbps : float;
  listen_overflows : int;
  accepted : int;  (** Listen-pressure: connections the listener took. *)
  client_resets : int;  (** Listen-pressure: client-side refusals. *)
  flood_syns : int;
  conntrack_entries : int;
  conntrack_half_open : int;
  evicted_half_open : int;
  evicted_established : int;
  conns_at_kill : int;  (** Crash: PCBs on the shard the moment it died. *)
  shard_restarts : int;
  steering_violations : int;
  checksum_failures : int;
}

val run :
  ?scenario:scenario ->
  ?rate:float ->
  ?duration:float ->
  ?shards:int ->
  ?ip_replicas:int ->
  ?pf_shards:int ->
  ?bulk_flows:int ->
  ?workers:int ->
  ?payload:int ->
  ?flood_rate:float ->
  ?conntrack_total:int ->
  ?backlog:int ->
  ?accept_interval:Newt_sim.Time.cycles ->
  ?seed:int ->
  ?verify:Newt_verify.Continuous.t ->
  ?break_tcp:Newt_net.Tcp.sabotage ->
  unit ->
  result
(** Run one scenario. Defaults: baseline, 10k conn/s offered over 1 s
    of simulated time on an 8×4×2 topology with 4 bulk iperfs, a 20k
    SYN/s flood (flood scenarios), an 8192-entry conntrack budget, and
    for {!Listen_pressure} a backlog of 16 against one accept every
    5 ms (its rate is clamped to 2k conn/s — one listener's worth).

    [break_tcp] arms a conformance sabotage on every TCP shard (see
    [Newt_net.Tcp.sabotage]); pair [Stale_established] with
    {!Crash_during_churn} and [Ack_from_closed] with {!Syn_flood} so
    the planted bug is actually exercised. When the FSM checker
    ([Newt_verify.Tcpfsm]) is armed, the sharded scenarios also
    cross-check each filter shard's conntrack confirmation bits
    against the checker's shadow states before the run's verdict is
    read.

    [workers] open-loop RPC workers share the offered rate; each paces
    starts independently of completions, so stack-side queueing
    surfaces as tail latency rather than a reduced offered rate.

    [verify] attaches the continuous checker: every reincarnation
    re-runs the static topology check mid-churn, and the run ends with
    {!Newt_verify.Continuous.end_run}. *)
