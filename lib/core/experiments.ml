module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Series = Newt_sim.Series
module Rng = Newt_sim.Rng
module Costs = Newt_hw.Costs
module Tcp = Newt_net.Tcp
module Pf_engine = Newt_pf.Pf_engine
module Sink = Newt_stack.Sink
module Capacity = Newt_stack.Capacity
module Fault_inject = Newt_reliability.Fault_inject
module Apps = Newt_sockets.Apps
module Static = Newt_verify.Static
module Continuous = Newt_verify.Continuous
module Sanitizer = Newt_verify.Sanitizer
module Protocol = Newt_verify.Protocol
module Mcheck = Newt_verify.Mcheck
module Component = Newt_stack.Component
module Reincarnation = Newt_reliability.Reincarnation

(* {1 Table II} *)

type table2_row = {
  label : string;
  paper_gbps : string;
  measured_gbps : float;
  bottleneck : string;
}

let paper_value = function
  | Capacity.Minix_sync -> "0.12"
  | Capacity.Split_dedicated -> "3.2"
  | Capacity.Split_dedicated_sc -> "3.6"
  | Capacity.Single_server_sc -> "3.9"
  | Capacity.Single_server_sc_tso -> "5+"
  | Capacity.Split_dedicated_sc_tso -> "5+"
  | Capacity.Linux_10gbe -> "8.4"

let table_ii ?costs () =
  List.map
    (fun config ->
      let r = Capacity.evaluate ?costs config in
      {
        label = Capacity.name config;
        paper_gbps = paper_value config;
        measured_gbps = r.Capacity.goodput_gbps;
        bottleneck = r.Capacity.bottleneck;
      })
    Capacity.all

(* {1 Event-simulation cross-validation} *)

type event_peak = {
  goodput_gbps : float;
  capacity_prediction_gbps : float;
  per_link_mbps : float list;
  tcp_util : float;
  ip_util : float;
  pf_util : float;
  drv_util : float;
}

let split_peak_event_sim ?(nics = 5) ?(duration = 1.0) ?(coalesce_drivers = false) () =
  let config =
    { Host.default_config with Host.nics; app_cores = nics; coalesce_drivers }
  in
  let h = Host.create ~config () in
  let totals = Array.make nics 0 in
  for i = 0 to nics - 1 do
    let peer = Host.sink h i in
    Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n ->
        totals.(i) <- totals.(i) + n)
  done;
  let _ =
    List.init nics (fun i ->
        Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
          ~dst:(Host.sink_addr h i) ~port:5001 ~until:(Time.of_seconds duration) ())
  in
  Host.run h ~until:(Time.of_seconds duration);
  let now = Engine.now (Host.engine h) in
  let util comp =
    Newt_hw.Cpu.utilization (Newt_stack.Proc.core (Host.proc_of h comp)) ~now
  in
  let drv_util =
    List.fold_left max 0.0 (List.init nics (fun i -> util (Host.C_drv i)))
  in
  let total = Array.fold_left ( + ) 0 totals in
  {
    goodput_gbps = float_of_int total *. 8.0 /. duration /. 1e9;
    capacity_prediction_gbps =
      (Capacity.evaluate ~nics Capacity.Split_dedicated_sc).Capacity.goodput_gbps;
    per_link_mbps =
      Array.to_list
        (Array.map (fun t -> float_of_int t *. 8.0 /. duration /. 1e6) totals);
    tcp_util = util Host.C_tcp;
    ip_util = util Host.C_ip;
    pf_util = util Host.C_pf;
    drv_util;
  }

(* The single-server topology (Table II line 4), packet level: the same
   protocol code as the split stack, deployed as one merged server. *)
let single_server_event_sim ?(nics = 5) ?(duration = 1.0) () =
  let module Machine = Newt_hw.Machine in
  let module Registry = Newt_channels.Registry in
  let module Sim_chan = Newt_channels.Sim_chan in
  let module Link = Newt_nic.Link in
  let module E1000 = Newt_nic.E1000 in
  let module Addr = Newt_net.Addr in
  let module Proc = Newt_stack.Proc in
  let module Component = Newt_stack.Component in
  let module Drv_srv = Newt_stack.Drv_srv in
  let module Single = Newt_stack.Single_srv in
  let module Sc = Newt_stack.Syscall_srv in
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let registry = Registry.create () in
  let sc_core = Machine.add_dedicated_core machine in
  let stk_core = Machine.add_dedicated_core machine in
  let drv_cores = Array.init nics (fun _ -> Machine.add_dedicated_core machine) in
  let app_cores = Array.init nics (fun _ -> Machine.add_timeshared_core machine) in
  let sc_comp = Component.create machine ~name:"sc" ~core:sc_core () in
  let stk_proc = Proc.create machine ~name:"stack" ~core:stk_core () in
  let sc = Sc.create sc_comp () in
  let stk =
    Single.create machine ~proc:stk_proc ~registry ~local_addr:(Addr.Ipv4.v 10 0 0 1) ()
  in
  let chan_id = ref 5000 in
  let chan () =
    incr chan_id;
    Sim_chan.create ~capacity:8192 ~id:!chan_id ()
  in
  let ch_sc_to_stk = chan () and ch_stk_to_sc = chan () in
  Sc.connect_transport sc ~transport:`Tcp ~to_transport:ch_sc_to_stk
    ~from_transport:ch_stk_to_sc;
  Single.connect_sc stk ~from_sc:ch_sc_to_stk ~to_sc:ch_stk_to_sc;
  let totals = Array.make nics 0 in
  let sinks =
    Array.init nics (fun i ->
        let link = Link.create engine () in
        let nic =
          E1000.create engine ~registry ~link ~side:Link.Left
            ~mac:(Addr.Mac.of_index (100 + i))
            ()
        in
        let drv_comp =
          Component.create machine ~name:(Printf.sprintf "drv%d" i)
            ~core:drv_cores.(i) ()
        in
        let drv = Drv_srv.create drv_comp ~nic () in
        let tx_chan = chan () and rx_chan = chan () in
        let iface =
          Single.add_iface stk ~addr:(Addr.Ipv4.v 10 0 i 1)
            ~mac:(E1000.mac nic) ~drv ~tx_chan ~rx_chan
        in
        Single.add_route stk ~prefix:(Addr.Ipv4.v 10 0 i 0) ~bits:24 ~iface
          ~gateway:None;
        Single.add_neighbor stk ~iface (Addr.Ipv4.v 10 0 i 2)
          (Addr.Mac.of_index (200 + i));
        let sink =
          Sink.create engine ~link ~side:Link.Right ~addr:(Addr.Ipv4.v 10 0 i 2)
            ~mac:(Addr.Mac.of_index (200 + i))
            ()
        in
        Sink.sink_tcp sink ~port:5001 ~on_bytes:(fun ~at:_ n ->
            totals.(i) <- totals.(i) + n);
        sink)
  in
  ignore sinks;
  let next_app = ref 0 in
  let app () =
    let core = app_cores.(!next_app mod nics) in
    incr next_app;
    { Sc.app_core = core; app_pid = 20_000 + !next_app }
  in
  let _ =
    List.init nics (fun i ->
        Apps.Iperf.start machine ~sc ~app:(app ()) ~dst:(Addr.Ipv4.v 10 0 i 2)
          ~port:5001 ~until:(Time.of_seconds duration) ())
  in
  Engine.run ~until:(Time.of_seconds duration) engine;
  let total = Array.fold_left ( + ) 0 totals in
  let util =
    Newt_hw.Cpu.utilization stk_core ~now:(Engine.now engine)
  in
  (float_of_int total *. 8.0 /. duration /. 1e9, util)

type minix_result = {
  minix_mbps : float;
  minix_core_util : float;
  sync_ipcs_per_sec : float;
  minix_lossless : bool;
}

let minix_event_sim ?(duration = 2.0) () =
  let module Machine = Newt_hw.Machine in
  let module Link = Newt_nic.Link in
  let module Addr = Newt_net.Addr in
  let module Minix = Newt_stack.Minix_stack in
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let link = Link.create engine () in
  let sink =
    Sink.create engine ~link ~side:Link.Right ~addr:(Addr.Ipv4.v 10 0 0 2)
      ~mac:(Addr.Mac.of_index 200) ()
  in
  let received = ref 0 in
  Sink.sink_tcp sink ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let mx =
    Minix.create machine ~link ~addr:(Addr.Ipv4.v 10 0 0 1)
      ~peer_mac:(Addr.Mac.of_index 200) ()
  in
  Minix.start_iperf mx ~dst:(Addr.Ipv4.v 10 0 0 2) ~port:5001
    ~until:(Time.of_seconds duration);
  Engine.run ~until:(Time.of_seconds (duration +. 0.5)) engine;
  {
    minix_mbps = float_of_int !received *. 8.0 /. duration /. 1e6;
    minix_core_util = Minix.core_utilization mx;
    sync_ipcs_per_sec = float_of_int (Minix.sync_ipc_count mx) /. duration;
    minix_lossless =
      Minix.bytes_sent mx = !received && Sink.checksum_failures sink = 0;
  }

(* {1 Continuous verification}

   When an experiment is handed a [Continuous.t], the static
   channel-graph checker re-runs against the LIVE topology after every
   reincarnation — re-derived from the Pubsub directory and each
   component's republished exports, so a recovery that comes up on the
   wrong core or loses a republish is caught the moment it happens, not
   at wiring time. *)

let attach_continuous v h ~title =
  Host.on_reincarnated h (fun comp ->
      Continuous.recheck v (fun () ->
          Static.check
            ~directory:(Host.directory h)
            ~title:
              (Printf.sprintf "%s: after %s restart %d" title
                 (Newt_stack.Component.name comp)
                 (Newt_stack.Component.incarnation comp))
            (Host.components h)))

(* {1 Figures 4 and 5} *)

type crash_trace = {
  points : (float * float) array;
  duplicate_segments : int;
  sender_retransmits : int;
  lost_segments : int;
  component_restarts : int;
}

let crash_run ?nic_reset ?verify ~seed ~rules ~protect_port ~crashes ~component
    ~duration () =
  let rule_list =
    if rules <= 2 then [ Newt_pf.Rule.pass_all ]
    else Pf_engine.generate_ruleset (Rng.create (seed + 1)) ~n:rules ~protect_port
  in
  let config = { Host.default_config with Host.seed; pf_rules = rule_list } in
  let config =
    match nic_reset with
    | Some r -> { config with Host.nic_reset_time = r }
    | None -> config
  in
  let h = Host.create ~config () in
  Option.iter (fun v -> attach_continuous v h ~title:"crash run") verify;
  let sink = Host.sink h 0 in
  let series = Series.create ~bin_width:(Time.of_seconds 0.1) in
  Sink.sink_tcp sink ~port:protect_port ~on_bytes:(fun ~at n -> Series.add series at n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:protect_port
      ~until:(Time.of_seconds (duration -. 1.0))
      ()
  in
  List.iter
    (fun at -> Host.at h (Time.of_seconds at) (fun () -> Host.kill_component h component))
    crashes;
  (* Run past the end so in-flight data drains and losses would show;
     with the verifier attached, half a second further still so the
     leak check reads a quiesced stack. *)
  Host.run h ~until:(Time.of_seconds (duration +. 1.0));
  Option.iter
    (fun v ->
      Host.run h ~until:(Time.of_seconds (duration +. 1.5));
      Continuous.end_run ~check_leaks:true v)
    verify;
  let received = Sink.tcp_bytes_received sink in
  let sent = Apps.Iperf.bytes_sent iperf in
  let sink_stats = Tcp.stats (Sink.tcp sink) in
  let sender_stats = Tcp.stats (Newt_stack.Tcp_srv.engine (Host.tcp_srv h)) in
  {
    points = Series.mbps series ~upto:(Time.of_seconds duration) ();
    duplicate_segments = sink_stats.Tcp.dup_segs_in;
    sender_retransmits = sender_stats.Tcp.retransmits;
    lost_segments = (max 0 (sent - received) + 1459) / 1460;
    component_restarts = Host.restarts_of h component;
  }

let figure_ip_crash ?(seed = 42) ?(crash_at = 4.0) ?(duration = 10.0) ?nic_reset
    ?verify () =
  crash_run ?nic_reset ?verify ~seed ~rules:0 ~protect_port:5001
    ~crashes:[ crash_at ] ~component:Host.C_ip ~duration ()

(* How long the Figure 4 outage lasts, from the crash until the bitrate
   is back above the threshold. *)
let recovery_gap ?(threshold_mbps = 800.0) ~crash_at (t : crash_trace) =
  (* First bin after the crash where the bitrate is back. *)
  let recovered = ref None in
  Array.iter
    (fun (time, mbps) ->
      if !recovered = None && time > crash_at && mbps >= threshold_mbps then
        recovered := Some time)
    t.points;
  match !recovered with Some time -> time -. crash_at | None -> infinity

type reset_sweep_point = {
  reset_time_s : float;
  outage_s : float;
  duplicates : int;
}

let nic_reset_sweep ?(seed = 42) () =
  (* "We believe that restart-aware hardware would allow less
     disruptive recovery" (Section V-D): sweep the device reset time
     and measure the Figure 4 outage. *)
  List.map
    (fun reset_s ->
      let t =
        figure_ip_crash ~seed ~nic_reset:(Time.of_seconds reset_s) ~duration:8.0
          ~crash_at:2.0 ()
      in
      {
        reset_time_s = reset_s;
        outage_s = recovery_gap ~crash_at:2.0 t;
        duplicates = t.duplicate_segments;
      })
    [ 1.2; 0.3; 0.05 ]

let figure_pf_crash ?(seed = 42) ?(rules = 1024) ?(crash_at = [ 6.0; 12.0 ])
    ?(duration = 18.0) ?verify () =
  crash_run ?verify ~seed ~rules ~protect_port:5001 ~crashes:crash_at
    ~component:Host.C_pf ~duration ()

(* {1 The fault-injection campaign} *)

type run_outcome = {
  injected : Fault_inject.injection;
  ssh_survived : bool;
  reachable_auto : bool;
  reachable_after_manual : bool;
  udp_transparent : bool;
  needed_reboot : bool;
  fully_transparent : bool;
}

type pf_shard_totals = {
  pf_shard : int;
  verdicts : int;
  blocked_packets : int;
  conntrack_expired : int;
}

type campaign = {
  runs : run_outcome list;
  pf_counters : pf_shard_totals array;
  crashes_tcp : int;
  crashes_udp : int;
  crashes_ip : int;
  crashes_pf : int;
  crashes_drv : int;
  fully_transparent : int;
  reachable : int;
  manually_fixed : int;
  broke_tcp : int;
  transparent_udp : int;
  reboots : int;
}

let campaign_run ?verify ?break_recovery ?(pf_shards = 1) ~seed
    (inj : Fault_inject.injection) =
  let rules =
    Pf_engine.generate_ruleset (Rng.create (seed + 1)) ~n:64 ~protect_port:22
  in
  let config =
    { Host.default_config with Host.seed; pf_rules = rules; pf_shards }
  in
  let h = Host.create ~config () in
  Option.iter (fun v -> attach_continuous v h ~title:"campaign run") verify;
  Option.iter (fun (comp, kind) -> Host.sabotage h comp kind) break_recovery;
  let sink = Host.sink h 0 in
  Sink.serve_tcp_echo sink ~port:22;
  Sink.serve_dns sink ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
  Sink.sink_tcp sink ~port:5001 ~on_bytes:(fun ~at:_ _ -> ());
  (* The stress workload of Section VI-B: a TCP connection and periodic
     DNS queries; plus the inbound SSH-like listener on the host. *)
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  let ssh =
    Apps.Ssh_session.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:22 ()
  in
  let dns =
    Apps.Dns_client.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~timeout:(Time.of_seconds 0.5) ()
  in
  let _iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~pace:(Time.of_seconds 0.02)
      ~until:(Time.of_seconds 9.5) ()
  in
  Host.at h (Time.of_seconds 2.0) (fun () -> Host.inject h inj);
  (* Probe inbound reachability after recovery settles. *)
  let reachable_auto = ref false in
  Host.at h (Time.of_seconds 5.5) (fun () ->
      Host.probe_reachable h ~port:22 ~timeout:(Time.of_seconds 1.4) (fun ok ->
          reachable_auto := ok));
  (* Administrator intervention for the stubborn cases, then re-probe. *)
  let reachable_manual = ref false in
  let manual_done = ref false in
  Host.at h (Time.of_seconds 7.2) (fun () ->
      if (not !reachable_auto) && not (Host.frozen h) then begin
        manual_done := true;
        Host.manual_restart h (Host.component_of_injection inj)
      end);
  Host.at h (Time.of_seconds 8.6) (fun () ->
      if !manual_done then
        Host.probe_reachable h ~port:22 ~timeout:(Time.of_seconds 1.2) (fun ok ->
            reachable_manual := ok));
  let ssh_ok_at_8s = ref 0 in
  Host.at h (Time.of_seconds 8.0) (fun () -> ssh_ok_at_8s := Apps.Ssh_session.exchanges_ok ssh);
  Host.run h ~until:(Time.of_seconds 10.0);
  (* With the verifier attached, let the run's tail drain (iperf ends
     at 9.5 s) so the end-of-run leak accounting reads a quiesced
     stack; a frozen world never drains, so skip its leak check. *)
  Option.iter
    (fun v ->
      Host.run h ~until:(Time.of_seconds 11.0);
      Continuous.end_run ~check_leaks:(not (Host.frozen h)) v)
    verify;
  let frozen = Host.frozen h in
  let ssh_survived =
    (not (Apps.Ssh_session.broken ssh))
    && Apps.Ssh_session.exchanges_ok ssh > !ssh_ok_at_8s
  in
  (* Transparent to UDP: the resolver rode out the fault on the same
     socket — at most a short outage (a NIC reset takes ~1.4 s, i.e. 2-3
     failed cycles), never reopening. *)
  let udp_transparent =
    (not frozen)
    && Apps.Dns_client.max_consecutive_failures dns <= 4
    && Apps.Dns_client.socket_reopens dns = 0
    && Apps.Dns_client.answered dns > 0
  in
  let reachable_auto = !reachable_auto && not frozen in
  let counters =
    Array.init (Host.pf_shard_count h) (fun j ->
        let pf = Host.pf_shard_srv h j in
        {
          pf_shard = j;
          verdicts = Newt_stack.Pf_srv.verdicts_issued pf;
          blocked_packets = Newt_stack.Pf_srv.blocked pf;
          conntrack_expired = Newt_stack.Pf_srv.conntrack_expired pf;
        })
  in
  ( {
      injected = inj;
      ssh_survived;
      reachable_auto;
      reachable_after_manual = !reachable_manual;
      udp_transparent;
      needed_reboot = frozen;
      fully_transparent =
        ssh_survived && reachable_auto && udp_transparent && not frozen;
    },
    counters )

(* The default seed gives a representative sample (the campaign is
   stochastic, as the paper's was — "the tool injects faults randomly so
   the faults are unpredictable"); other seeds vary by a few counts. *)
let fault_campaign ?(runs = 100) ?(seed = 2) ?verify ?break_recovery
    ?pf_shards () =
  let rng = Rng.create seed in
  let injections = Fault_inject.draw_many rng ~ndrv:1 ~runs in
  let results =
    List.mapi
      (fun i inj ->
        campaign_run ?verify ?break_recovery ?pf_shards
          ~seed:(seed + (1000 * (i + 1))) inj)
      injections
  in
  let outcomes = List.map fst results in
  (* Per-PF-shard counters, summed over the campaign's runs: under the
     random kill load every shard must keep issuing verdicts — a silent
     shard is a partition that never saw traffic. *)
  let np =
    match results with (_, c) :: _ -> Array.length c | [] -> 0
  in
  let pf_counters =
    Array.init np (fun j ->
        List.fold_left
          (fun acc (_, cs) ->
            {
              acc with
              verdicts = acc.verdicts + cs.(j).verdicts;
              blocked_packets = acc.blocked_packets + cs.(j).blocked_packets;
              conntrack_expired =
                acc.conntrack_expired + cs.(j).conntrack_expired;
            })
          {
            pf_shard = j;
            verdicts = 0;
            blocked_packets = 0;
            conntrack_expired = 0;
          }
          results)
  in
  let count p = List.length (List.filter p outcomes) in
  let target_is target o =
    match (o.injected.Fault_inject.target, target) with
    | Fault_inject.T_tcp, `Tcp
    | Fault_inject.T_udp, `Udp
    | Fault_inject.T_ip, `Ip
    | Fault_inject.T_pf, `Pf
    | Fault_inject.T_drv _, `Drv ->
        true
    | _ -> false
  in
  {
    runs = outcomes;
    pf_counters;
    crashes_tcp = count (target_is `Tcp);
    crashes_udp = count (target_is `Udp);
    crashes_ip = count (target_is `Ip);
    crashes_pf = count (target_is `Pf);
    crashes_drv = count (target_is `Drv);
    fully_transparent = count (fun o -> o.fully_transparent);
    reachable = count (fun o -> o.reachable_auto);
    manually_fixed = count (fun o -> (not o.reachable_auto) && o.reachable_after_manual);
    broke_tcp = count (fun o -> not o.ssh_survived);
    transparent_udp = count (fun o -> o.udp_transparent);
    reboots = count (fun o -> o.needed_reboot);
  }

(* {1 MWAIT latency ablation} *)

type latency_point = {
  poll_window_us : float;
  mean_rtt_us : float;
  pings : int;
  awake_fraction : float;
}

let mwait_latency_ablation ?(seed = 42) () =
  let measure poll_window =
    let costs = { Costs.default with Costs.poll_window } in
    let config = { Host.default_config with Host.seed; costs } in
    let h = Host.create ~config () in
    let sink = Host.sink h 0 in
    let rtts = ref [] in
    (* Space the pings out so every server goes idle in between. *)
    for i = 1 to 50 do
      Host.at h (Time.of_seconds (0.5 +. (0.005 *. float_of_int i))) (fun () ->
          Sink.ping sink ~dst:(Host.local_addr h 0) (fun ~rtt ->
              rtts := rtt :: !rtts))
    done;
    Host.run h ~until:(Time.of_seconds 1.2);
    let n = List.length !rtts in
    let mean =
      if n = 0 then 0.0
      else
        float_of_int (List.fold_left ( + ) 0 !rtts)
        /. float_of_int n
        /. (float_of_int Time.cycles_per_second /. 1e6)
    in
    let now = Engine.now (Host.engine h) in
    let os_cores =
      List.map
        (fun comp -> Newt_stack.Proc.core (Host.proc_of h comp))
        [ Host.C_tcp; Host.C_udp; Host.C_ip; Host.C_pf; Host.C_drv 0 ]
    in
    let awake =
      List.fold_left
        (fun acc core ->
          acc + Newt_hw.Cpu.busy_cycles core + Newt_hw.Cpu.polling_cycles core)
        0 os_cores
    in
    {
      poll_window_us =
        float_of_int poll_window /. (float_of_int Time.cycles_per_second /. 1e6);
      mean_rtt_us = mean;
      pings = n;
      awake_fraction =
        float_of_int awake /. float_of_int (now * List.length os_cores);
    }
  in
  List.map measure [ 0; Costs.default.Costs.poll_window; Time.of_micros 10_000.0 ]

(* {1 Driver coalescing} *)

type coalescing_result = {
  drivers : int;
  nics_served : int;
  driver_core_utilization : float;
  sustainable : bool;
}

let driver_coalescing ?(costs = Costs.default) () =
  (* At the full 5-NIC TSO rate (Table II line 6), compute the load on a
     driver core serving k NICs. *)
  let r = Capacity.evaluate ~costs Capacity.Split_dedicated_sc_tso in
  let total_gbps = r.Capacity.goodput_gbps in
  let segments_per_sec = total_gbps *. 1e9 /. (1460.0 *. 8.0) in
  let cycles_per_seg =
    match
      List.find_opt
        (fun s -> s.Capacity.label = "driver server")
        r.Capacity.stages
    with
    | Some s -> s.Capacity.cycles_per_segment
    | None -> 0.0
  in
  List.map
    (fun drivers ->
      let nics = 5 in
      let share = float_of_int nics /. float_of_int drivers in
      let load =
        segments_per_sec /. float_of_int nics *. share *. cycles_per_seg
        /. float_of_int Time.cycles_per_second
      in
      {
        drivers;
        nics_served = (nics + drivers - 1) / drivers;
        driver_core_utilization = load;
        sustainable = load < 1.0;
      })
    [ 5; 1 ]

(* {1 Scaling curve — N transport shards behind a multi-queue NIC} *)

let sharded_spec s =
  let module S = Newt_scale.Sharded_stack in
  let module Sim_chan = Newt_channels.Sim_chan in
  let module Component = Newt_stack.Component in
  let cfg = S.config s in
  let chans = S.tcp_channels s in
  {
    Newt_verify.Static.shards = cfg.S.shards;
    replicas = cfg.S.ip_replicas;
    rss_table = Newt_nic.Rss.table (Newt_scale.Shard_map.rss (S.shard_map s));
    shard_to_ip = Array.map (fun (c, _) -> Sim_chan.id c) chans;
    ip_to_shard = Array.map (fun (_, c) -> Sim_chan.id c) chans;
    replica_names = Array.map Component.name (S.ip_components s);
    shard_names = Array.map Component.name (S.tcp_components s);
    pf_shards = S.pf_shard_count s;
    pf_names = Array.map Component.name (S.pf_components s);
    ip_to_pf =
      Array.map (Array.map (fun (c, _) -> Sim_chan.id c)) (S.pf_channels s);
    pf_to_ip =
      Array.map (Array.map (fun (_, c) -> Sim_chan.id c)) (S.pf_channels s);
  }

type scaling_point = {
  shards : int;
  ip_replicas : int;
  pf_shards : int;  (* 0 = no filter in the path *)
  goodput_gbps : float;
  per_shard : Newt_scale.Sharded_stack.shard_stats array;
  per_pf_shard : Newt_scale.Sharded_stack.pf_shard_stats array;
  imbalance : float;
  violations : int;
}

type scaling_result = {
  points : scaling_point list;
  single_instance_gbps : float;
}

let scaling_curve ?(shard_counts = [ 1; 2; 4; 8 ]) ?(ip_replicas = 1)
    ?(pf_shards = 0) ?(flows = 8) ?(duration = 0.5) ?(link_gbps = 40.0) ?verify
    () =
  let module S = Newt_scale.Sharded_stack in
  let run_point n =
    (* A point can't use more IP replicas (or PF shards) than it has
       transport shards. [pf_shards = 0] keeps the filter out of the
       path (the historical no-PF curve). *)
    let r = min ip_replicas n in
    let np = min pf_shards n in
    let config =
      {
        S.default_config with
        S.shards = n;
        ip_replicas = r;
        link_gbps;
        pf_shards = max 1 np;
        pf_rules = (if np = 0 then None else Some [ Newt_pf.Rule.pass_all ]);
      }
    in
    let s = S.create ~config () in
    Option.iter
      (fun v ->
        S.on_reincarnated s (fun comp ->
            Continuous.recheck v (fun () ->
                Static.check
                  ~directory:(S.directory s)
                  ~sharding:(sharded_spec s)
                  ~title:
                    (Printf.sprintf "scaling N=%d r=%d: after %s restart" n r
                       (Newt_stack.Component.name comp))
                  (S.components s))))
      verify;
    let total = ref 0 in
    for i = 0 to flows - 1 do
      Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ b ->
          total := !total + b)
    done;
    let _ =
      List.init flows (fun i ->
          Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
            ~dst:(S.sink_addr s) ~port:(5001 + i)
            ~until:(Time.of_seconds duration) ())
    in
    S.run s ~until:(Time.of_seconds duration);
    Option.iter
      (fun v ->
        S.run s ~until:(Time.of_seconds (duration +. 0.25));
        Continuous.end_run ~check_leaks:false v)
      verify;
    {
      shards = n;
      ip_replicas = r;
      pf_shards = np;
      goodput_gbps = float_of_int !total *. 8.0 /. duration /. 1e9;
      per_shard = S.shard_stats s;
      per_pf_shard = S.pf_shard_stats s;
      imbalance = S.imbalance_ratio s;
      violations = S.steering_violations s;
    }
  in
  {
    points = List.map run_point shard_counts;
    single_instance_gbps =
      (Capacity.evaluate Capacity.Split_dedicated_sc).Capacity.goodput_gbps;
  }

(* {1 Stack verifier — static channel-graph checks over every shipped
   configuration} *)

let verify_configs ?(max_shards = 8) () =
  let module S = Newt_scale.Sharded_stack in
  let split =
    let h = Host.create () in
    Newt_verify.Static.check
      ~directory:(Host.directory h)
      ~title:"split stack" (Host.components h)
  in
  let sharded =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (r, pf) ->
            if r > n || pf > n then None
            else
              let config =
                {
                  S.default_config with
                  S.shards = n;
                  ip_replicas = r;
                  pf_shards = pf;
                  pf_rules = Some [ Newt_pf.Rule.pass_all ];
                }
              in
              let s = S.create ~config () in
              Some
                (Newt_verify.Static.check
                   ~directory:(S.directory s)
                   ~sharding:(sharded_spec s)
                   ~title:(Printf.sprintf "sharded N=%d r=%d pf=%d" n r pf)
                   (S.components s)))
          [ (1, 1); (2, 1); (1, 2); (2, 2) ])
      (List.init max_shards (fun i -> i + 1))
  in
  split :: sharded

let verify_all ?max_shards () =
  Newt_verify.Report.merge ~title:"all stack configurations"
    (verify_configs ?max_shards ())

(* {1 Sanitized fault run — the ownership sanitizer across a crash} *)

let sanitized_ip_crash ?seed ?crash_at ?duration () =
  Newt_verify.Sanitizer.install ();
  Fun.protect
    ~finally:(fun () -> Newt_verify.Sanitizer.uninstall ())
    (fun () ->
      let trace = figure_ip_crash ?seed ?crash_at ?duration () in
      let report =
        Newt_verify.Sanitizer.report ~title:"sanitized IP-crash run" ()
      in
      (report, trace))

(* {1 Protocol-checked fault runs — the dynamic request/confirm
   contract across crashes} *)

let protocol_crash_run ~title run =
  Protocol.install ();
  Fun.protect
    ~finally:(fun () -> Protocol.uninstall ())
    (fun () ->
      let trace = run () in
      (* Both figure runs stop their traffic a second before the end
         and run past it, so the tail is drained: still-open
         obligations are genuine violations, not in-flight work. *)
      Protocol.finish ~drained:true ();
      let report = Protocol.report ~title () in
      (report, trace))

let protocol_ip_crash ?seed ?crash_at ?duration () =
  protocol_crash_run ~title:"protocol-checked IP-crash run" (fun () ->
      figure_ip_crash ?seed ?crash_at ?duration ())

let protocol_pf_crash ?seed ?rules ?crash_at ?duration () =
  protocol_crash_run ~title:"protocol-checked PF-crash run" (fun () ->
      figure_pf_crash ?seed ?rules ?crash_at ?duration ())

(* {1 Recovery model checking — exhaustive crash-point search}

   For every (component × labeled recovery step) of a configuration,
   boot a fresh world under load, crash the component, and arm the
   one-shot injector so it dies again right after that step of its own
   recovery.  The verdict for each crash point folds together the
   reincarnation server's liveness view, the continuous verifier
   (static re-checks after every restart, sanitizer, leak accounting)
   and the protocol checker; the protocol event ring is the
   counterexample trace. *)

let host_component_of_name = function
  | "tcp" -> Some Host.C_tcp
  | "udp" -> Some Host.C_udp
  | "ip" -> Some Host.C_ip
  | "pf" -> Some Host.C_pf
  | name when String.length name > 3 && String.sub name 0 3 = "drv" ->
      Option.map
        (fun i -> Host.C_drv i)
        (int_of_string_opt (String.sub name 3 (String.length name - 3)))
  | _ -> None

let split_crash_points () =
  let h = Host.create () in
  List.filter_map
    (fun c ->
      let name = Component.name c in
      (* Only components the fault injector can kill (the SYSCALL
         server is not part of the restart story, Section V-D). *)
      if host_component_of_name name = None then None
      else Some (name, Component.recovery_steps c))
    (Host.components h)

let violation ~check ~(case : Mcheck.case) detail =
  {
    Newt_verify.Report.check;
    subject = Printf.sprintf "%s crashed after step %S" case.Mcheck.component case.Mcheck.step;
    culprit = case.Mcheck.component;
    detail;
  }

(* Shared verdict logic: read the world's health, close the verifier
   run, and attach the protocol trace as the counterexample. *)
let judge ~(case : Mcheck.case) ~alive ~armed_left ~check_leaks v =
  let trace = Protocol.trace () in
  Continuous.end_run ~check_leaks v;
  let extra =
    (if alive then []
     else
       [
         violation ~check:"no-convergence" ~case
           "component not back to responsive after the mid-recovery crash";
       ])
    @
    match armed_left with
    | None -> []
    | Some step ->
        [
          violation ~check:"crash-point-not-reached" ~case
            (Printf.sprintf
               "armed injector for step %S never fired during recovery" step);
        ]
  in
  let viols =
    extra @ (Continuous.report ~title:"mcheck case" v).Newt_verify.Report.violations
  in
  let converged = viols = [] in
  {
    Mcheck.case;
    converged;
    violations = (if converged then [] else viols);
    trace = (if converged then [] else trace);
  }

let with_checkers f =
  Protocol.install ();
  Sanitizer.install ();
  Fun.protect
    ~finally:(fun () ->
      Sanitizer.uninstall ();
      Protocol.uninstall ();
      Sanitizer.reset ();
      Protocol.reset ())
    f

let mcheck_split ?budget ?(seed = 42) ?break_recovery () =
  let cases = Mcheck.enumerate (split_crash_points ()) in
  with_checkers (fun () ->
      let run (case : Mcheck.case) =
        let target =
          match host_component_of_name case.Mcheck.component with
          | Some c -> c
          | None -> invalid_arg "mcheck_split: unkillable component"
        in
        (* A short device reset keeps each of the ~16 cases cheap while
           still exercising the driver-reset recovery step. *)
        let config =
          {
            Host.default_config with
            Host.seed;
            nic_reset_time = Time.of_seconds 0.2;
          }
        in
        let h = Host.create ~config () in
        let v = Continuous.create () in
        attach_continuous v h ~title:"mcheck";
        Option.iter (fun (c, k) -> Host.sabotage h c k) break_recovery;
        let sink = Host.sink h 0 in
        Sink.sink_tcp sink ~port:5001 ~on_bytes:(fun ~at:_ _ -> ());
        let _iperf =
          Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
            ~dst:(Host.sink_addr h 0) ~port:5001
            ~until:(Time.of_seconds 2.2) ()
        in
        let comp = Host.comp_of h target in
        Component.arm_crash_after comp ~step:case.Mcheck.step;
        Host.at h (Time.of_seconds 0.6) (fun () -> Host.kill_component h target);
        (* Past the traffic's end so the tail drains and the leak check
           reads a quiesced stack. *)
        Host.run h ~until:(Time.of_seconds 3.4);
        let alive = Reincarnation.alive_check (Host.rs h) in
        judge ~case ~alive ~armed_left:(Component.armed_crash comp)
          ~check_leaks:alive v
      in
      Mcheck.search ?budget ~cases ~run ())

(* The {!Host.sabotage} defects, transplanted onto the sharded stack:
   the same two recovery lies, installed on member 0 of the victim's
   replica set (the negative control for the sharded re-checks). *)
let sabotage_sharded s (comp : Host.component) (kind : Host.sabotage) =
  let module S = Newt_scale.Sharded_stack in
  let victim =
    match comp with
    | Host.C_tcp -> (S.tcp_components s).(0)
    | Host.C_ip -> (S.ip_components s).(0)
    | Host.C_pf ->
        if S.pf_shard_count s = 0 then
          invalid_arg "sabotage_sharded: this stack runs without a filter"
        else (S.pf_components s).(0)
    | _ -> invalid_arg "sabotage_sharded: only tcp, ip and pf supported"
  in
  match kind with
  | Host.Wrong_core ->
      (* Land the reincarnated server on a core that already runs a
         component it shares a channel with, so the core-affinity
         re-check must flag it. *)
      let occupied =
        Component.core
          (if comp = Host.C_ip then (S.tcp_components s).(0)
           else (S.ip_components s).(0))
      in
      Component.on_restarted victim (fun () -> Component.migrate victim occupied)
  | Host.Skip_republish ->
      Component.on_restarted victim (fun () ->
          match Component.exports victim with
          | (key, _) :: _ ->
              Newt_channels.Pubsub.publish (S.directory s) ~key
                ~creator:(Component.pid victim) ~chan_id:(-1)
          | [] -> ())

let mcheck_sharded ?budget ?(shards = 2) ?(ip_replicas = 2) ?(pf_shards = 2)
    ?break_recovery () =
  let module S = Newt_scale.Sharded_stack in
  let pf_shards = min pf_shards shards in
  let config =
    {
      S.default_config with
      S.shards;
      ip_replicas;
      pf_shards;
      pf_rules = Some [ Newt_pf.Rule.pass_all ];
    }
  in
  let labelled comps =
    Array.to_list
      (Array.map
         (fun c -> (Component.name c, Component.recovery_steps c))
         comps)
  in
  let cases =
    let probe = S.create ~config () in
    Mcheck.enumerate
      (labelled (S.tcp_components probe)
      @ labelled (S.ip_components probe)
      @ labelled (S.pf_components probe))
  in
  with_checkers (fun () ->
      let run (case : Mcheck.case) =
        let s = S.create ~config () in
        Option.iter (fun (c, k) -> sabotage_sharded s c k) break_recovery;
        let v = Continuous.create () in
        S.on_reincarnated s (fun comp ->
            Continuous.recheck v (fun () ->
                Static.check ~directory:(S.directory s)
                  ~sharding:(sharded_spec s)
                  ~title:
                    (Printf.sprintf "mcheck N=%d r=%d pf=%d: after %s restart"
                       shards ip_replicas pf_shards (Component.name comp))
                  (S.components s)));
        let find arr =
          let found = ref None in
          Array.iteri
            (fun i c ->
              if Component.name c = case.Mcheck.component then found := Some i)
            arr;
          !found
        in
        let comp, kill =
          match find (S.tcp_components s) with
          | Some i -> ((S.tcp_components s).(i), fun () -> S.kill_shard s i)
          | None -> (
              match find (S.ip_components s) with
              | Some i ->
                  ((S.ip_components s).(i), fun () -> S.kill_ip_replica s i)
              | None -> (
                  match find (S.pf_components s) with
                  | Some i ->
                      ((S.pf_components s).(i), fun () -> S.kill_pf_shard s i)
                  | None -> invalid_arg "mcheck_sharded: unknown component"))
        in
        let flows = 4 in
        for i = 0 to flows - 1 do
          Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ _ -> ())
        done;
        let _ =
          List.init flows (fun i ->
              Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
                ~dst:(S.sink_addr s) ~port:(5001 + i)
                ~until:(Time.of_seconds 0.8) ())
        in
        Component.arm_crash_after comp ~step:case.Mcheck.step;
        S.at s (Time.of_seconds 0.3) kill;
        S.run s ~until:(Time.of_seconds 1.5);
        let alive = List.for_all Component.alive (S.components s) in
        (* The multi-flow tail is not guaranteed to drain in the short
           window, so no leak/obligation accounting here — convergence,
           re-checks and hard protocol violations still gate. *)
        judge ~case ~alive ~armed_left:(Component.armed_crash comp)
          ~check_leaks:false v
      in
      Mcheck.search ?budget ~cases ~run ())
