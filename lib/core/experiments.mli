(** Drivers for every table and figure of the paper's evaluation
    (Section VI). Each function returns structured data; the [bin] and
    [bench] executables format it like the paper does. *)

(** {1 Table II — peak outgoing TCP performance} *)

type table2_row = {
  label : string;
  paper_gbps : string;  (** The value the paper reports. *)
  measured_gbps : float;
  bottleneck : string;
}

val table_ii : ?costs:Newt_hw.Costs.t -> unit -> table2_row list

(** {1 Cross-validation: the event-driven stack at peak load} *)

type event_peak = {
  goodput_gbps : float;  (** Achieved by the packet-level simulation. *)
  capacity_prediction_gbps : float;  (** What the analytic model says. *)
  per_link_mbps : float list;
  tcp_util : float;  (** Utilization of the TCP server's core. *)
  ip_util : float;
  pf_util : float;
  drv_util : float;  (** Busiest driver core. *)
}

val split_peak_event_sim :
  ?nics:int -> ?duration:float -> ?coalesce_drivers:bool -> unit -> event_peak
(** Drive the full packet-level simulator to saturation (default: five
    1 Gbps links, 1 s) and compare against the Table II capacity model.
    The paper's qualitative claims fall out: the TCP server saturates
    first, IP has headroom despite handling each packet three times,
    and the drivers are nearly idle. *)

val single_server_event_sim : ?nics:int -> ?duration:float -> unit -> float * float
(** The single-server topology (Table II line 4) at packet level: the
    same protocol code as the split stack deployed as one merged server
    behind the SYSCALL server. Returns (goodput Gbps, merged-server core
    utilization). *)

type minix_result = {
  minix_mbps : float;
  minix_core_util : float;
  sync_ipcs_per_sec : float;
      (** "A multiserver system under heavy load easily generates
          hundreds of thousands of messages per second" (§III-A). *)
  minix_lossless : bool;
}

val minix_event_sim : ?duration:float -> unit -> minix_result
(** Run the packet-level MINIX 3 baseline (Table II line 1): one
    timeshared core, synchronous kernel IPC with cold traps and context
    switches on every hop, copies and software checksums everywhere,
    one packet per driver round trip. The ~hundred-megabit ceiling is
    emergent. *)

(** {1 Figures 4 and 5 — bitrate across crashes} *)

type crash_trace = {
  points : (float * float) array;  (** (seconds, Mbps) per 100 ms bin. *)
  duplicate_segments : int;  (** Seen by the receiver. *)
  sender_retransmits : int;
  lost_segments : int;
      (** Receiver-side gaps never filled (0 = no loss). *)
  component_restarts : int;
}

val figure_ip_crash :
  ?seed:int ->
  ?crash_at:float ->
  ?duration:float ->
  ?nic_reset:Newt_sim.Time.cycles ->
  ?verify:Newt_verify.Continuous.t ->
  unit ->
  crash_trace
(** A single ~1 Gbps TCP connection; the IP server is killed at
    [crash_at] (default 4 s) over [duration] (default 10 s) — Figure 4.
    The visible gap is the NIC reset the crash forces. With [verify]
    the static checker re-runs against the live topology after every
    reincarnation, and the run tail is extended so the quiesced world
    can be leak-checked ([Continuous.end_run ~check_leaks:true]). *)

val recovery_gap : ?threshold_mbps:float -> crash_at:float -> crash_trace -> float
(** Seconds from the crash until the bitrate is back above the
    threshold. *)

type reset_sweep_point = {
  reset_time_s : float;  (** Device reset / link retraining time. *)
  outage_s : float;  (** Resulting Figure 4 outage. *)
  duplicates : int;
}

val nic_reset_sweep : ?seed:int -> unit -> reset_sweep_point list
(** The paper's "restart-aware hardware would allow less disruptive
    recovery" (Section V-D), quantified: the outage tracks the device
    reset time, not the software restart. *)

val figure_pf_crash :
  ?seed:int ->
  ?rules:int ->
  ?crash_at:float list ->
  ?duration:float ->
  ?verify:Newt_verify.Continuous.t ->
  unit ->
  crash_trace
(** Packet-filter crashes (default at 6 s and 12 s over 18 s) while
    recovering a [rules]-entry configuration (default 1024) — Figure 5.
    No packets are lost because IP resubmits unanswered filter
    requests. [verify] as in {!figure_ip_crash}. *)

(** {1 Tables III and IV — the fault-injection campaign} *)

type run_outcome = {
  injected : Newt_reliability.Fault_inject.injection;
  ssh_survived : bool;  (** The established session kept working. *)
  reachable_auto : bool;  (** New connections accepted without help. *)
  reachable_after_manual : bool;
  udp_transparent : bool;
  needed_reboot : bool;
  fully_transparent : bool;
}

type pf_shard_totals = {
  pf_shard : int;
  verdicts : int;
  blocked_packets : int;
  conntrack_expired : int;
}

type campaign = {
  runs : run_outcome list;
  pf_counters : pf_shard_totals array;
      (** Per-PF-shard verdict totals summed over all runs (one entry
          when the campaign ran the singleton filter). *)
  (* Table III *)
  crashes_tcp : int;
  crashes_udp : int;
  crashes_ip : int;
  crashes_pf : int;
  crashes_drv : int;
  (* Table IV *)
  fully_transparent : int;
  reachable : int;  (** Automatically. *)
  manually_fixed : int;
  broke_tcp : int;
  transparent_udp : int;
  reboots : int;
}

val fault_campaign :
  ?runs:int ->
  ?seed:int ->
  ?verify:Newt_verify.Continuous.t ->
  ?break_recovery:Host.component * Host.sabotage ->
  ?pf_shards:int ->
  unit ->
  campaign
(** Default 100 runs, as in the paper. Each run boots a fresh world
    with an SSH-like session, a DNS-like resolver, an iperf flow and an
    inbound listener, injects one observable fault, lets the
    reincarnation machinery recover, and probes the consequences.

    With [verify] every run re-runs the static checker against the live
    post-restart topology after each reincarnation and closes with
    [Continuous.end_run] (leak-checked unless the run ended frozen).
    [break_recovery] installs a deliberate recovery defect
    ({!Host.sabotage}) on the named component in every run — the
    continuous checker, not the traffic, is what must catch it.
    [pf_shards] (default 1) runs every host with a sharded packet
    filter; the per-shard verdict totals land in [pf_counters]. *)

(** {1 Section IV-B — MWAIT wake-up latency vs polling} *)

type latency_point = {
  poll_window_us : float;
      (** How long an idle server polls before halting its core. *)
  mean_rtt_us : float;  (** ICMP echo RTT through the idle stack. *)
  pings : int;
  awake_fraction : float;
      (** Fraction of OS-core time spent awake (busy + polling) — the
          energy side: "constant checking keeps consuming energy". *)
}

val mwait_latency_ablation : ?seed:int -> unit -> latency_point list
(** Ping the idle host with increasing poll windows. With a zero window
    every hop pays the kernel-mediated MWAIT wake-up; with a large one
    the cores spin and absorb it — the energy/latency trade-off of
    Section IV-B. *)

(** {1 Section VI-A — driver coalescing} *)

type coalescing_result = {
  drivers : int;
  nics_served : int;
  driver_core_utilization : float;
      (** Of the busiest driver core at 5 Gbps TSO load. *)
  sustainable : bool;
}

val driver_coalescing : ?costs:Newt_hw.Costs.t -> unit -> coalescing_result list
(** Per-driver-count utilization: even one driver for all five NICs is
    nowhere near saturation ("the work done by the drivers is extremely
    small"). *)

(** {1 Scaling — N transport shards behind a multi-queue NIC} *)

type scaling_point = {
  shards : int;
  ip_replicas : int;  (** IP instances this point ran with. *)
  pf_shards : int;  (** PF shards in the path (0 = no filter). *)
  goodput_gbps : float;  (** Aggregate iperf goodput over all flows. *)
  per_shard : Newt_scale.Sharded_stack.shard_stats array;
  per_pf_shard : Newt_scale.Sharded_stack.pf_shard_stats array;
      (** Per-PF-shard verdict/conntrack counters (empty without a
          filter). *)
  imbalance : float;  (** Max/mean of per-RX-queue frame counts. *)
  violations : int;  (** Flow→shard affinity violations (must be 0). *)
}

type scaling_result = {
  points : scaling_point list;
  single_instance_gbps : float;
      (** The Table II ceiling of one TCP server (Split_dedicated_sc) —
          the line the sharded stack must climb past. *)
}

val scaling_curve :
  ?shard_counts:int list ->
  ?ip_replicas:int ->
  ?pf_shards:int ->
  ?flows:int ->
  ?duration:float ->
  ?link_gbps:float ->
  ?verify:Newt_verify.Continuous.t ->
  unit ->
  scaling_result
(** Run [flows] parallel iperf streams (default 8) against a
    {!Newt_scale.Sharded_stack} at each shard count (default 1, 2, 4, 8)
    over a fat link (default 40 Gbps): aggregate goodput scales with the
    shard count until another stage (IP, the wire) saturates, while one
    instance is pinned at the single-server ceiling. [ip_replicas]
    (default 1) replicates the IP server as well — each point is capped
    at [min ip_replicas shards] — lifting the plateau the single IP
    instance imposes once the shards outrun it. [pf_shards] (default 0
    = no filter, the historical curve) puts a pass-all packet filter on
    the path, sharded [min pf_shards shards] ways with a partitioned
    conntrack table. With [verify] each point re-checks the sharded
    topology (including RSS affinity) after every shard reincarnation
    and closes with [Continuous.end_run]. *)

(** {1 Stack verifier} *)

val sharded_spec : Newt_scale.Sharded_stack.t -> Newt_verify.Static.sharding
(** The sharding-affinity description of a wired sharded host, for
    {!Newt_verify.Static.check}. *)

val verify_configs : ?max_shards:int -> unit -> Newt_verify.Report.t list
(** Wire every shipped stack configuration — the split single-instance
    stack plus every sharded variant (N = 1..[max_shards] shards × 1
    and 2 IP replicas × 1 and 2 PF shards, filter enabled) — and run
    the static channel-graph checker (including the PF partition
    checks) over each. *)

val verify_all : ?max_shards:int -> unit -> Newt_verify.Report.t
(** {!verify_configs} merged into one report; [Report.ok] of the result
    is the CI gate. *)

val sanitized_ip_crash :
  ?seed:int ->
  ?crash_at:float ->
  ?duration:float ->
  unit ->
  Newt_verify.Report.t * crash_trace
(** {!figure_ip_crash} with the pool-ownership sanitizer installed for
    the whole run, crash and recovery included. Returns the sanitizer's
    report (expected: zero violations, some stale-pointer observations)
    alongside the usual trace. *)

val protocol_ip_crash :
  ?seed:int ->
  ?crash_at:float ->
  ?duration:float ->
  unit ->
  Newt_verify.Report.t * crash_trace
(** {!figure_ip_crash} with the dynamic channel-protocol checker
    ({!Newt_verify.Protocol}) replaying the whole run, crash and
    recovery included, and the tail treated as drained (iperf stops a
    second before the end). Expected: zero violations — every request
    confirmed or aborted, stale confirms absorbed, no dropped confirm
    while its requester was still pending. *)

val protocol_pf_crash :
  ?seed:int ->
  ?rules:int ->
  ?crash_at:float list ->
  ?duration:float ->
  unit ->
  Newt_verify.Report.t * crash_trace
(** {!figure_pf_crash} under the protocol checker, as in
    {!protocol_ip_crash}: the double filter crash must leave no open
    obligations. *)

(** {1 Recovery model checking — exhaustive crash-point search} *)

val split_crash_points : unit -> (string * string list) list
(** The split stack's (component × labeled recovery steps) space:
    every killable component of a {!Host} with its
    {!Newt_stack.Component.recovery_steps}. *)

val mcheck_split :
  ?budget:float ->
  ?seed:int ->
  ?break_recovery:Host.component * Host.sabotage ->
  unit ->
  Newt_verify.Mcheck.outcome
(** Model-check the split stack's recovery: for every crash point of
    {!split_crash_points}, boot a fresh host under an iperf load, kill
    the component at 0.6 s with the one-shot injector armed so it dies
    again right after the named recovery step, and judge convergence —
    reincarnation reports every component responsive, the continuous
    verifier (static re-checks, sanitizer, leak accounting on the
    drained tail) is clean, and the protocol checker holds no open
    obligations. [break_recovery] sabotages a component's recovery
    ({!Host.sabotage}) in every case; the affected crash points must
    then surface as counterexamples carrying the protocol event trace.
    [budget] caps the search in CPU seconds (remaining cases are
    reported as skipped). *)

val mcheck_sharded :
  ?budget:float ->
  ?shards:int ->
  ?ip_replicas:int ->
  ?pf_shards:int ->
  ?break_recovery:Host.component * Host.sabotage ->
  unit ->
  Newt_verify.Mcheck.outcome
(** The same search over a sharded stack (default N=2 shards × r=2 IP
    replicas × pf=2 PF shards, capped at [min pf_shards shards]): every
    TCP shard, IP replica and PF shard crashed at every labeled
    recovery step — for a PF shard that includes its rules replay and
    conntrack re-track steps — under a multi-flow load, with the
    sharded topology (including RSS affinity and the PF partition)
    re-checked after each restart. [break_recovery] transplants the
    {!Host.sabotage} defect onto member 0 of the named component's
    replica set (tcp, ip or pf) — the sabotaged crash points must
    surface as counterexamples. The short multi-flow tail is not
    guaranteed to drain, so leak/obligation accounting is off;
    convergence, re-checks and hard protocol violations still gate. *)
