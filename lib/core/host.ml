module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Trace = Newt_sim.Trace
module Machine = Newt_hw.Machine
module Registry = Newt_channels.Registry
module Sim_chan = Newt_channels.Sim_chan
module Addr = Newt_net.Addr
module Tcp = Newt_net.Tcp
module Link = Newt_nic.Link
module E1000 = Newt_nic.E1000
module Rule = Newt_pf.Rule
module Proc = Newt_stack.Proc
module Component = Newt_stack.Component
module Msg = Newt_stack.Msg
module Drv_srv = Newt_stack.Drv_srv
module Ip_srv = Newt_stack.Ip_srv
module Pf_srv = Newt_stack.Pf_srv
module Tcp_srv = Newt_stack.Tcp_srv
module Udp_srv = Newt_stack.Udp_srv
module Syscall_srv = Newt_stack.Syscall_srv
module Sink = Newt_stack.Sink
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation
module Fault_inject = Newt_reliability.Fault_inject

type component = C_tcp | C_udp | C_ip | C_pf | C_drv of int

let component_name = function
  | C_tcp -> "tcp"
  | C_udp -> "udp"
  | C_ip -> "ip"
  | C_pf -> "pf"
  | C_drv i -> Printf.sprintf "drv%d" i

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  nics : int;
  pf_rules : Rule.t list;
  pf_shards : int;
  tcp_config : Tcp.config option;
  nic_reset_time : Time.cycles;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
  app_cores : int;
  coalesce_drivers : bool;
}

let default_config =
  {
    seed = 42;
    costs = Newt_hw.Costs.default;
    nics = 1;
    pf_rules = [ Rule.pass_all ];
    pf_shards = 1;
    tcp_config = None;
    nic_reset_time = Time.of_seconds 1.2;
    heartbeat_period = Component.Defaults.heartbeat_period;
    restart_delay = Component.Defaults.restart_delay;
    app_cores = 2;
    coalesce_drivers = false;
  }

type t = {
  config : config;
  engine : Engine.t;
  machine : Machine.t;
  registry : Registry.t;
  trace : Trace.t;
  directory : Newt_channels.Pubsub.t;
  storage : Storage.t;
  rs : Reincarnation.t;
  sc : Syscall_srv.t;
  tcp : Tcp_srv.t;
  udp : Udp_srv.t;
  ip : Ip_srv.t;
  pfs : Pf_srv.t array;
  pf_comps : Component.t array;
  drvs : Drv_srv.t array;
  nics : E1000.t array;
  links : Link.t array;
  sinks : Sink.t array;
  sc_comp : Component.t;
  comps : (component * Component.t) list;
  app_cores : Newt_hw.Cpu.t array;
  mutable next_app : int;
  mutable next_app_pid : int;
  mutable frozen : bool;
  (* Components whose next automatic restart must come up broken
     (Section VI-B's manual-intervention cases). *)
  mutable broken_next_restart : component list;
}

let engine t = t.engine
let machine t = t.machine
let sc t = t.sc
let tcp_srv t = t.tcp
let udp_srv t = t.udp
let ip_srv t = t.ip
let pf_srv t = t.pfs.(0)
let pf_shard_srv t j = t.pfs.(j)
let pf_shard_count t = Array.length t.pfs
let rs t = t.rs
let storage t = t.storage
let nic t i = t.nics.(i)
let link t i = t.links.(i)
let sink t i = t.sinks.(i)
let frozen t = t.frozen

let directory t = t.directory
let trace t = t.trace

let comp_of t comp =
  match List.find_opt (fun (c, _) -> c = comp) t.comps with
  | Some (_, c) -> c
  | None -> invalid_arg "Host.comp_of: unknown component"

let proc_of t comp = Component.proc (comp_of t comp)

let components t =
  (* [comps] names one killable component per variant, so extra PF
     shards (index >= 1) ride along separately for the verifier. *)
  let extra_pfs =
    Array.to_list
      (Array.sub t.pf_comps 1 (max 0 (Array.length t.pf_comps - 1)))
  in
  (t.sc_comp :: List.map snd t.comps) @ extra_pfs

let local_addr _t i = Addr.Ipv4.v 10 0 i 1
let sink_addr _t i = Addr.Ipv4.v 10 0 i 2

let app t =
  let core = t.app_cores.(t.next_app mod Array.length t.app_cores) in
  t.next_app <- t.next_app + 1;
  let pid = t.next_app_pid in
  t.next_app_pid <- pid + 1;
  { Syscall_srv.app_core = core; app_pid = pid }

let run t ~until = Engine.run ~until t.engine

let at t when_ f =
  ignore (Engine.schedule_at t.engine when_ f)

(* {2 Construction} *)

let chan_ids = ref 0

(* Queue slots are cheap shared memory; size them so a full multi-flow
   congestion-window burst (5 links x ~256 KiB of 1460-byte segments)
   never overflows a channel — a drop costs the flow an RTO. *)
let chan () =
  incr chan_ids;
  Sim_chan.create ~capacity:8192 ~id:!chan_ids ()

let create ?(config = default_config) () =
  if config.pf_shards < 1 then invalid_arg "Host.create: pf_shards < 1";
  let np = config.pf_shards in
  let pf_name j = if np = 1 then "pf" else Printf.sprintf "pf%d" j in
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create ~costs:config.costs engine in
  let registry = Registry.create () in
  let trace = Trace.create () in
  let directory = Newt_channels.Pubsub.create () in
  let storage = Storage.create () in
  (* Cores: one dedicated per OS component (Figure 1). *)
  let sc_core = Machine.add_dedicated_core machine in
  let tcp_core = Machine.add_dedicated_core machine in
  let udp_core = Machine.add_dedicated_core machine in
  let ip_core = Machine.add_dedicated_core machine in
  let pf_cores = Array.init np (fun _ -> Machine.add_dedicated_core machine) in
  let drv_cores =
    if config.coalesce_drivers then begin
      let shared = Machine.add_dedicated_core machine in
      Array.make config.nics shared
    end
    else Array.init config.nics (fun _ -> Machine.add_dedicated_core machine)
  in
  let app_cores = Array.init config.app_cores (fun _ -> Machine.add_timeshared_core machine) in
  (* Components: the generic server core, one per OS server. *)
  let mkcomp name core =
    Component.create machine ~name ~core ~directory ~trace ()
  in
  let sc_comp = mkcomp "sc" sc_core in
  let tcp_comp = mkcomp "tcp" tcp_core in
  let udp_comp = mkcomp "udp" udp_core in
  let ip_comp = mkcomp "ip" ip_core in
  let pf_comps = Array.init np (fun j -> mkcomp (pf_name j) pf_cores.(j)) in
  let drv_comps =
    Array.init config.nics (fun i ->
        mkcomp (Printf.sprintf "drv%d" i) drv_cores.(i))
  in
  (* Devices, links and remote peers. *)
  let links =
    Array.init config.nics (fun _ -> Link.create engine ())
  in
  let nics =
    Array.init config.nics (fun i ->
        E1000.create engine ~registry ~link:links.(i) ~side:Link.Left
          ~mac:(Addr.Mac.of_index (100 + i))
          ~reset_time:config.nic_reset_time ())
  in
  let sinks =
    Array.init config.nics (fun i ->
        Sink.create engine ~link:links.(i) ~side:Link.Right
          ~addr:(Addr.Ipv4.v 10 0 i 2)
          ~mac:(Addr.Mac.of_index (200 + i))
          ())
  in
  (* Servers: pure message handlers on top of their component. *)
  let view name = Storage.owner_view storage ~owner:name in
  let save_ip, load_ip = view "ip" in
  let save_tcp, load_tcp = view "tcp" in
  let save_udp, load_udp = view "udp" in
  let sc_srv = Syscall_srv.create sc_comp () in
  let tcp_srv =
    Tcp_srv.create tcp_comp ~registry ~local_addr:(Addr.Ipv4.v 10 0 0 1)
      ?tcp_config:config.tcp_config ~save:save_tcp ~load:load_tcp ()
  in
  let udp_srv =
    Udp_srv.create udp_comp ~registry ~local_addr:(Addr.Ipv4.v 10 0 0 1)
      ~save:save_udp ~load:load_udp ()
  in
  let ip_srv =
    Ip_srv.create ip_comp ~registry ~save:save_ip ~load:load_ip ()
  in
  (* PF shards partition the conntrack table by the same symmetric flow
     hash that steers packets to them; one shard keeps the seed stack's
     exact behaviour (name "pf", default table size, owns everything). *)
  let pf_map = Newt_scale.Shard_map.create ~seed:config.seed ~shards:np () in
  let pf_steer ~src ~sport ~dst ~dport =
    Newt_scale.Shard_map.shard_of pf_map ~src ~sport ~dst ~dport
  in
  let pf_srvs =
    Array.init np (fun j ->
        let save_pf, load_pf = view (pf_name j) in
        let owns (f : Newt_pf.Conntrack.flow) =
          np <= 1
          || pf_steer ~src:f.Newt_pf.Conntrack.local_ip
               ~sport:f.Newt_pf.Conntrack.local_port
               ~dst:f.Newt_pf.Conntrack.remote_ip
               ~dport:f.Newt_pf.Conntrack.remote_port
             = j
        in
        Pf_srv.create pf_comps.(j) ~save:save_pf ~load:load_pf
          ~max_entries:(max 1 (65536 / np))
          ~owns ())
  in
  let drvs =
    Array.init config.nics (fun i ->
        Drv_srv.create drv_comps.(i) ~nic:nics.(i) ())
  in
  (* Channels, per Figure 3, exported through the consuming component
     so they are published in the directory under meaningful keys
     (Section IV-C) and republished after every restart of their
     consumer (Section IV-D). *)
  let export comp key c =
    Component.export comp ~key c;
    c
  in
  (* With one shard the keys stay exactly "ip.to_pf"/"pf.to_ip". *)
  let pf_pairs =
    Array.init np (fun j ->
        let to_pf =
          export pf_comps.(j) (Printf.sprintf "ip.to_%s" (pf_name j)) (chan ())
        and from_pf =
          export ip_comp (Printf.sprintf "%s.to_ip" (pf_name j)) (chan ())
        in
        Pf_srv.connect_ip pf_srvs.(j) ~from_ip:to_pf ~to_ip:from_pf;
        (to_pf, from_pf))
  in
  Ip_srv.connect_pf_sharded ip_srv ~steer:pf_steer ~pairs:pf_pairs;
  let ch_tcp_to_ip = export ip_comp "tcp.to_ip" (chan ())
  and ch_ip_to_tcp = export tcp_comp "ip.to_tcp" (chan ()) in
  Ip_srv.connect_transport ip_srv ~proto:`Tcp ~from_transport:ch_tcp_to_ip
    ~to_transport:ch_ip_to_tcp;
  Tcp_srv.connect_ip tcp_srv ~to_ip:ch_tcp_to_ip ~from_ip:ch_ip_to_tcp;
  let ch_udp_to_ip = export ip_comp "udp.to_ip" (chan ())
  and ch_ip_to_udp = export udp_comp "ip.to_udp" (chan ()) in
  Ip_srv.connect_transport ip_srv ~proto:`Udp ~from_transport:ch_udp_to_ip
    ~to_transport:ch_ip_to_udp;
  Udp_srv.connect_ip udp_srv ~to_ip:ch_udp_to_ip ~from_ip:ch_ip_to_udp;
  let ch_sc_to_tcp = export tcp_comp "sc.to_tcp" (chan ())
  and ch_tcp_to_sc = export sc_comp "tcp.to_sc" (chan ()) in
  Syscall_srv.connect_transport sc_srv ~transport:`Tcp ~to_transport:ch_sc_to_tcp
    ~from_transport:ch_tcp_to_sc;
  Tcp_srv.connect_sc tcp_srv ~from_sc:ch_sc_to_tcp ~to_sc:ch_tcp_to_sc;
  let ch_sc_to_udp = export udp_comp "sc.to_udp" (chan ())
  and ch_udp_to_sc = export sc_comp "udp.to_sc" (chan ()) in
  Syscall_srv.connect_transport sc_srv ~transport:`Udp ~to_transport:ch_sc_to_udp
    ~from_transport:ch_udp_to_sc;
  Udp_srv.connect_sc udp_srv ~from_sc:ch_sc_to_udp ~to_sc:ch_udp_to_sc;
  (* Interfaces, addresses, routes, static neighbours. *)
  Array.iteri
    (fun i drv ->
      let tx_chan = export drv_comps.(i) (Printf.sprintf "ip.to_drv%d" i) (chan ())
      and rx_chan = export ip_comp (Printf.sprintf "drv%d.to_ip" i) (chan ()) in
      let iface =
        Ip_srv.add_iface ip_srv
          {
            Ip_srv.addr = Addr.Ipv4.v 10 0 i 1;
            netmask_bits = 24;
            mac = E1000.mac nics.(i);
          }
          ~drv ~tx_chan ~rx_chan
      in
      Ip_srv.add_route ip_srv ~prefix:(Addr.Ipv4.v 10 0 i 0) ~bits:24 ~iface
        ~gateway:None;
      Ip_srv.add_neighbor ip_srv ~iface (Addr.Ipv4.v 10 0 i 2)
        (Addr.Mac.of_index (200 + i)))
    drvs;
  (* Multihoming: transports pick the source address of the interface
     the route uses. *)
  let src_select dst =
    match Ip_srv.src_addr_for ip_srv dst with
    | Some a -> a
    | None -> Addr.Ipv4.v 10 0 0 1
  in
  Tcp_srv.set_src_select tcp_srv src_select;
  Udp_srv.set_src_select udp_srv src_select;
  (* The filter configuration — one ruleset on every shard. *)
  Array.iter
    (fun pf ->
      Pf_srv.set_rules pf config.pf_rules;
      Pf_srv.set_conntrack_sources pf
        ~tcp:(fun () -> Tcp_srv.conntrack_flows tcp_srv)
        ~udp:(fun () -> Udp_srv.conntrack_flows udp_srv))
    pf_srvs;
  let t =
    {
      config;
      engine;
      machine;
      registry;
      trace;
      directory;
      storage;
      rs = Reincarnation.create machine ~heartbeat_period:config.heartbeat_period
          ~restart_delay:config.restart_delay ();
      sc = sc_srv;
      tcp = tcp_srv;
      udp = udp_srv;
      ip = ip_srv;
      pfs = pf_srvs;
      pf_comps;
      drvs;
      nics;
      links;
      sinks;
      sc_comp;
      comps =
        [
          (C_tcp, tcp_comp);
          (C_udp, udp_comp);
          (C_ip, ip_comp);
          (C_pf, pf_comps.(0));
        ]
        @ Array.to_list (Array.mapi (fun i c -> (C_drv i, c)) drv_comps);
      app_cores;
      next_app = 0;
      next_app_pid = 10_000;
      frozen = false;
      broken_next_restart = [];
    }
  in
  let broken comp =
    if List.mem comp t.broken_next_restart then begin
      t.broken_next_restart <-
        List.filter (fun c -> c <> comp) t.broken_next_restart;
      true
    end
    else false
  in
  (* The broken-recovery hooks run after the server's own recovery (the
     component comes up, but its restored state is bad — Section VI-B's
     manual-restart cases). Hook registration order guarantees this:
     the servers registered their recovery at [create]. *)
  Component.on_restart tcp_comp (fun ~fresh:_ ->
      if broken C_tcp then begin
        let eng = Tcp_srv.engine tcp_srv in
        List.iter (fun port -> Tcp.unlisten eng ~port) (Tcp.listening_ports eng)
      end);
  Component.on_restart ip_comp (fun ~fresh:_ ->
      if broken C_ip then Ip_srv.clear_routes ip_srv);
  Array.iteri
    (fun i _drv ->
      Component.on_restart drv_comps.(i) (fun ~fresh:_ ->
          if broken (C_drv i) then E1000.misconfigure nics.(i)))
    drvs;
  (* Supervision with neighbour notifications (Section IV-D). *)
  Reincarnation.watch t.rs tcp_comp
    ~notify_crash:[ (fun () -> Ip_srv.on_transport_crash ip_srv ~proto:`Tcp) ]
    ~notify_restart:[ (fun () -> Syscall_srv.on_transport_restart sc_srv ~transport:`Tcp) ]
    ();
  Reincarnation.watch t.rs udp_comp
    ~notify_crash:[ (fun () -> Ip_srv.on_transport_crash ip_srv ~proto:`Udp) ]
    ~notify_restart:[ (fun () -> Syscall_srv.on_transport_restart sc_srv ~transport:`Udp) ]
    ();
  Reincarnation.watch t.rs ip_comp
    ~notify_crash:
      [ (fun () -> Tcp_srv.on_ip_crash tcp_srv); (fun () -> Udp_srv.on_ip_crash udp_srv) ]
    ~notify_restart:
      [
        (fun () -> Tcp_srv.on_ip_restart tcp_srv);
        (fun () -> Udp_srv.on_ip_restart udp_srv);
      ]
    ();
  Array.iteri
    (fun j c ->
      Reincarnation.watch t.rs c
        ~notify_crash:[ (fun () -> Ip_srv.on_pf_crash ~shard:j ip_srv) ]
        ~notify_restart:[ (fun () -> Ip_srv.on_pf_restart ~shard:j ip_srv) ]
        ())
    pf_comps;
  Array.iteri
    (fun i c ->
      Reincarnation.watch t.rs c
        ~notify_crash:[ (fun () -> Ip_srv.on_drv_crash ip_srv ~iface:i) ]
        ~notify_restart:[ (fun () -> Ip_srv.on_drv_restart ip_srv ~iface:i) ]
        ())
    drv_comps;
  Reincarnation.start t.rs;
  t

(* {2 Continuous verification} *)

let on_reincarnated t f = Reincarnation.set_on_reincarnated t.rs f

type sabotage = Wrong_core | Skip_republish

let sabotage t comp kind =
  let c = comp_of t comp in
  match kind with
  | Wrong_core ->
      (* Recovery brings the server up on a core that already runs
         another component — the core-affinity re-check must flag it.
         Land on IP's core (every server has a channel with IP), or on
         TCP's when the victim is IP itself. *)
      let victim_core =
        Component.core (comp_of t (if comp = C_ip then C_tcp else C_ip))
      in
      Component.on_restarted c (fun () -> Component.migrate c victim_core)
  | Skip_republish ->
      (* Recovery loses the republish: overwrite the first export with
         a dangling chan_id, so directory lookups no longer match the
         wired channel. A pure metadata lie — peers keep their attached
         endpoints, so only the republish re-check can catch it. *)
      Component.on_restarted c (fun () ->
          match Component.exports c with
          | (key, _) :: _ ->
              Newt_channels.Pubsub.publish t.directory ~key
                ~creator:(Component.pid c) ~chan_id:(-1)
          | [] -> ())

(* {2 Faults} *)

let kill_component t comp = Reincarnation.kill t.rs (comp_of t comp)
let hang_component t comp = Component.hang (comp_of t comp)

let component_of_target = function
  | Fault_inject.T_tcp -> C_tcp
  | Fault_inject.T_udp -> C_udp
  | Fault_inject.T_ip -> C_ip
  | Fault_inject.T_pf -> C_pf
  | Fault_inject.T_drv i -> C_drv i

let component_of_injection (inj : Fault_inject.injection) =
  component_of_target inj.Fault_inject.target

let live_update t comp =
  (* Graceful replacement (Section V): quiesce, swap, resume. The
     component's continuously-persisted state carries over; channels
     stay established; messages queue during the swap. *)
  let p = proc_of t comp in
  Proc.begin_update p;
  ignore
    (Engine.schedule t.engine (Time.of_seconds 0.05) (fun () ->
         Proc.finish_update p))

let crash_storage t =
  Storage.crash t.storage;
  (* The restarted storage server announces itself; every component
     persists its state anew. *)
  Ip_srv.repersist t.ip;
  Array.iter Pf_srv.repersist t.pfs;
  Tcp_srv.repersist t.tcp;
  Udp_srv.repersist t.udp

let manual_restart t comp =
  (match comp with
  | C_drv i ->
      (* Restarting the driver resets the device, which also clears a
         misconfiguration (Section VI-B). *)
      ignore i
  | C_tcp | C_udp | C_ip | C_pf -> ());
  kill_component t comp

let inject t (inj : Fault_inject.injection) =
  let comp = component_of_target inj.Fault_inject.target in
  match inj.Fault_inject.effect with
  | Fault_inject.Crash -> kill_component t comp
  | Fault_inject.Hang -> hang_component t comp
  | Fault_inject.Misconfigure_device -> (
      match comp with
      | C_drv i -> E1000.misconfigure t.nics.(i)
      | C_tcp | C_udp | C_ip | C_pf -> kill_component t comp)
  | Fault_inject.Broken_recovery ->
      t.broken_next_restart <- comp :: t.broken_next_restart;
      kill_component t comp
  | Fault_inject.Sync_hang ->
      (* The fault propagated into the unconverted synchronous part of
         the system (the select/file-descriptor merge): everything
         stalls; only a reboot helps (3 runs in Section VI-B). *)
      t.frozen <- true;
      Proc.hang (Syscall_srv.proc t.sc)

let restarts_of t comp = Reincarnation.restarts_of t.rs (comp_of t comp)

(* {2 Probes} *)

let probe_reachable t ?(via = 0) ~port ~timeout k =
  let sink = t.sinks.(via) in
  let pcb = Sink.connect sink ~dst:(local_addr t via) ~dst_port:port in
  let answered = ref false in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected ->
          if not !answered then begin
            answered := true;
            Tcp.abort pcb;
            k true
          end
      | Tcp.Reset ->
          if not !answered then begin
            answered := true;
            k false
          end
      | Tcp.Accepted | Tcp.Readable | Tcp.Writable | Tcp.Closed_normally -> ());
  ignore
    (Engine.schedule t.engine timeout (fun () ->
         if not !answered then begin
           answered := true;
           Tcp.abort pcb;
           k false
         end))
