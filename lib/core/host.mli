(** A complete NewtOS host under test, wired to ideal remote peers.

    This is the library's top-level entry point: it builds the machine
    (one dedicated core per OS component, timeshared application cores),
    the full split networking stack of Figure 3 (SYSCALL, TCP, UDP, IP,
    PF, one driver per NIC), the e1000-style devices and gigabit links,
    an ideal remote host on the far side of every link, the storage
    server, and the reincarnation server supervising every stack
    component with the right neighbour-notification hooks.

    Fault injection enters through {!inject} (or the lower-level
    {!kill_component}); recovery then unfolds through the reincarnation
    machinery exactly as Section V-D describes, and its consequences are
    observable through the application layer ({!app}, {!sc}) and the
    remote peers ({!sink}). *)

type component = C_tcp | C_udp | C_ip | C_pf | C_drv of int

val component_name : component -> string

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;  (** The machine's cycle-cost model. *)
  nics : int;  (** Gigabit ports, each with its own driver and peer. *)
  pf_rules : Newt_pf.Rule.t list;
  pf_shards : int;
      (** Packet-filter instances (>= 1, default 1): they share the one
          ruleset and partition the conntrack table by a symmetric flow
          hash (each with an LRU cap of [65536/pf_shards] and its own
          TTL sweep); the IP server steers each packet — both
          directions — to the owning shard from its IP header. 1
          reproduces the singleton filter exactly (name ["pf"], keys
          ["ip.to_pf"]/["pf.to_ip"]). *)
  tcp_config : Newt_net.Tcp.config option;
  nic_reset_time : Newt_sim.Time.cycles;
      (** Link retraining time after a device reset (the Figure 4
          gap). *)
  heartbeat_period : Newt_sim.Time.cycles;
  restart_delay : Newt_sim.Time.cycles;
  app_cores : int;
  coalesce_drivers : bool;
      (** Run all drivers on one dedicated core (Section VI-A: "to
          evaluate scalability ... we also used one driver for all
          interfaces"); each NIC keeps its own driver server, but they
          share the core "as the containers in which the drivers can
          block". *)
}

val default_config : config
(** Seed 42, 1 NIC, pass-all filter, 1.2 s NIC reset, 100 ms
    heartbeats, 120 ms restarts, 2 app cores. *)

type t

val create : ?config:config -> unit -> t

(** {1 Access} *)

val engine : t -> Newt_sim.Engine.t
val machine : t -> Newt_hw.Machine.t
val sc : t -> Newt_stack.Syscall_srv.t
val tcp_srv : t -> Newt_stack.Tcp_srv.t
val udp_srv : t -> Newt_stack.Udp_srv.t
val ip_srv : t -> Newt_stack.Ip_srv.t
val pf_srv : t -> Newt_stack.Pf_srv.t
(** PF shard 0 (the only one by default). *)

val pf_shard_srv : t -> int -> Newt_stack.Pf_srv.t
val pf_shard_count : t -> int

val rs : t -> Newt_reliability.Reincarnation.t
val storage : t -> Newt_reliability.Storage.t
val nic : t -> int -> Newt_nic.E1000.t
val link : t -> int -> Newt_nic.Link.t
val sink : t -> int -> Newt_stack.Sink.t

val comp_of : t -> component -> Newt_stack.Component.t
(** The generic component-server core behind a stack component. *)

val proc_of : t -> component -> Newt_stack.Proc.t

val components : t -> Newt_stack.Component.t list
(** Every component server of the host, for the stack verifier. *)

val directory : t -> Newt_channels.Pubsub.t
(** The publish/subscribe channel directory (Section IV-C): every
    fast-path channel is published under a meaningful key
    (["tcp.to_ip"], ["drv0.to_ip"], ...) at boot, and re-published by
    the reincarnation machinery when its consumer restarts — late
    subscribers see current publications. *)

val trace : t -> Newt_sim.Trace.t
(** The bounded event log: crash / hang / restart records from every
    server. *)

val local_addr : t -> int -> Newt_net.Addr.Ipv4.t
(** The host's address on interface [i] (10.0.[i].1). *)

val sink_addr : t -> int -> Newt_net.Addr.Ipv4.t
(** The peer's address on link [i] (10.0.[i].2). *)

val app : t -> Newt_stack.Syscall_srv.app
(** An application context on a timeshared core (round-robins over the
    configured app cores). *)

val run : t -> until:Newt_sim.Time.cycles -> unit
(** Advance the world. *)

val at : t -> Newt_sim.Time.cycles -> (unit -> unit) -> unit
(** Schedule an action at an absolute simulated time. *)

(** {1 Continuous verification} *)

val on_reincarnated : t -> (Newt_stack.Component.t -> unit) -> unit
(** Install the post-recovery callback on the host's reincarnation
    server ({!Newt_reliability.Reincarnation.set_on_reincarnated}):
    fires after every supervised component finishes a full recovery,
    with exports republished and neighbours notified — the point where
    the continuous verifier re-checks the live topology. *)

type sabotage = Wrong_core | Skip_republish

val sabotage : t -> component -> sabotage -> unit
(** Deliberately break the component's recovery procedure, for
    verifier regression tests: [Wrong_core] makes every future restart
    bring the server up on another component's core (trips the
    core-affinity re-check); [Skip_republish] makes it lose the
    directory republish of its first export (trips the republish
    re-check). Both are metadata-level breaks the traffic-level
    campaign outcomes cannot see — only the continuous checker can. *)

(** {1 Faults} *)

val kill_component : t -> component -> unit
(** Crash it; the reincarnation server recovers it. *)

val hang_component : t -> component -> unit
(** Stop it from making progress; heartbeats catch and reset it. *)

val component_of_injection : Newt_reliability.Fault_inject.injection -> component
(** Which component a drawn fault lands in. *)

val inject : t -> Newt_reliability.Fault_inject.injection -> unit
(** Apply a drawn fault, including the degraded classes:
    device misconfiguration, broken recovery, and the synchronous-path
    hang that freezes the system (reboot necessary). *)

val live_update : t -> component -> unit
(** Replace the component by a new version on the fly: "since the
    restarted component can easily be a newer or patched version of the
    original code, the same mechanism allows us to update on the fly
    many core OS components" (Section I). The component shuts down
    (its continuously-persisted state is current), and the new
    incarnation inherits the channels; other traffic is unaffected —
    the UDP-update-under-TCP-traffic scenario of Section V. *)

val crash_storage : t -> unit
(** Crash the storage server: its contents vanish and "every other
    server has to store its state again" (Section V-D) — which they do,
    immediately, so later component crashes still recover. *)

val manual_restart : t -> component -> unit
(** The administrator's intervention for the broken-recovery and
    misconfigured-device cases (Section VI-B). *)

val frozen : t -> bool
(** The synchronous select path hung: only a reboot helps. *)

val restarts_of : t -> component -> int

(** {1 Probes} *)

val probe_reachable :
  t -> ?via:int -> port:int -> timeout:Newt_sim.Time.cycles -> (bool -> unit) -> unit
(** From the peer on link [via] (default 0), try to open a TCP
    connection to the host — the paper's "reachable from outside"
    criterion. The callback fires with the outcome after at most
    [timeout]. *)
