type kind = Dedicated | Timeshared

type job = { proc : int; cost : Time.cycles; k : unit -> unit }

type t = {
  engine : Newt_sim.Engine.t;
  exec_backend : Newt_sim.Exec.t;
  costs : Costs.t;
  id : int;
  kind : kind;
  jobs : job Queue.t;
  mutable running : bool;
  mutable last_proc : int option;
  mutable idle_since : Time.cycles;
      (* Time at which the core last became idle; used to decide whether
         it has halted (idle longer than the poll window). *)
  mutable busy_cycles : Time.cycles;
  mutable polling_cycles : Time.cycles;
}

let create engine ~exec ~costs ~id ~kind =
  {
    engine;
    exec_backend = exec;
    costs;
    id;
    kind;
    jobs = Queue.create ();
    running = false;
    last_proc = None;
    idle_since = 0;
    busy_cycles = 0;
    polling_cycles = 0;
  }

let id t = t.id
let kind t = t.kind
let busy t = t.running || not (Queue.is_empty t.jobs)
let busy_cycles t = t.busy_cycles
let polling_cycles t = t.polling_cycles
let last_proc t = t.last_proc

let utilization t ~now =
  if now <= 0 then 0.0 else float_of_int t.busy_cycles /. float_of_int now

let switch_cost t proc =
  match t.kind with
  | Dedicated -> 0
  | Timeshared -> (
      match t.last_proc with
      | Some p when p = proc -> 0
      | Some _ -> t.costs.Costs.context_switch + t.costs.Costs.cache_refill
      | None -> 0)

let rec start_next t =
  match Queue.take_opt t.jobs with
  | None -> begin
      t.running <- false;
      t.idle_since <- Newt_sim.Engine.now t.engine
    end
  | Some job ->
      t.running <- true;
      let cost = job.cost + switch_cost t job.proc in
      t.last_proc <- Some job.proc;
      t.busy_cycles <- t.busy_cycles + cost;
      ignore
        (Newt_sim.Engine.schedule t.engine cost (fun () ->
             job.k ();
             start_next t))

let wakeup_penalty t =
  (* A core that has sat idle past the poll window has halted with MWAIT;
     the next piece of work pays the wake-up latency. Either way the
     core was awake and polling for up to the poll window — the energy
     side of the trade-off. *)
  if t.running then 0
  else begin
    let idle_for = Newt_sim.Engine.now t.engine - t.idle_since in
    t.polling_cycles <- t.polling_cycles + min idle_for t.costs.Costs.poll_window;
    if idle_for > t.costs.Costs.poll_window then t.costs.Costs.mwait_wakeup else 0
  end

let exec t ~proc ~cost k =
  assert (cost >= 0);
  if Newt_sim.Exec.is_native t.exec_backend then begin
    (* Native mode: no cycle accounting — real cores charge real time.
       The continuation lands on the FIFO run queue of the domain that
       owns this core, which also flattens the drain recursion that the
       simulated path threads through the event queue. *)
    ignore proc;
    Newt_sim.Exec.post t.exec_backend ~core:t.id k
  end
  else begin
    let penalty = if busy t then 0 else wakeup_penalty t in
    Queue.push { proc; cost = cost + penalty; k } t.jobs;
    if not t.running then start_next t
  end
