(** Core execution model.

    A [t] serializes the work of the simulated processes assigned to it.
    Components do not run OCaml code "on" a core; instead they charge
    cycle costs: [exec core ~proc ~cost k] runs continuation [k] once the
    core has spent [cost] cycles on behalf of process [proc], after all
    previously queued work. The model captures what the paper cares
    about:

    - a {b dedicated} core runs a single process: no context switches, no
      cache refills, interrupts handled locally;
    - a {b timeshared} core charges a context switch plus a cache refill
      whenever the process being served changes;
    - an idle core halts (MONITOR/MWAIT) once it has polled for longer
      than the model's poll window; work arriving at a halted core pays
      the MWAIT wake-up latency. *)

type t

type kind =
  | Dedicated  (** Runs one OS component, caches stay warm. *)
  | Timeshared  (** Shared by applications and (in Minix mode) servers. *)

val create :
  Newt_sim.Engine.t ->
  exec:Newt_sim.Exec.t ->
  costs:Costs.t ->
  id:int ->
  kind:kind ->
  t

val id : t -> int
val kind : t -> kind

val exec : t -> proc:int -> cost:Time.cycles -> (unit -> unit) -> unit
(** [exec core ~proc ~cost k] queues [cost] cycles of work for process
    [proc] and calls [k] when it completes. Work is served FIFO. On a
    timeshared core, a switch to a different [proc] than the previously
    served one first charges [context_switch + cache_refill]. On any
    core, if the core was halted, the first queued work additionally
    waits for the MWAIT wake-up latency. *)

val busy : t -> bool
(** The core currently has queued or running work. *)

val busy_cycles : t -> Time.cycles
(** Total cycles spent executing work (excluding halts) so far. *)

val polling_cycles : t -> Time.cycles
(** Cycles spent awake but idle, polling the queues before halting —
    the energy cost of low wake-up latency (Section IV-B: "constant
    checking keeps consuming energy"). Each idle gap contributes up to
    the model's poll window. *)

val utilization : t -> now:Time.cycles -> float
(** Fraction of time busy since creation. *)

val last_proc : t -> int option
(** The process whose work the core served most recently. *)
