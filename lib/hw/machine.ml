type t = {
  engine : Newt_sim.Engine.t;
  exec : Newt_sim.Exec.t;
  costs : Costs.t;
  mutable cores : Cpu.t list; (* newest first *)
  mutable next_id : int;
}

let create ?(costs = Costs.default) ?exec engine =
  let exec = match exec with Some e -> e | None -> Newt_sim.Exec.sim engine in
  { engine; exec; costs; cores = []; next_id = 0 }

let engine t = t.engine
let exec t = t.exec
let costs t = t.costs

let add_core t kind =
  let core =
    Cpu.create t.engine ~exec:t.exec ~costs:t.costs ~id:t.next_id ~kind
  in
  t.next_id <- t.next_id + 1;
  t.cores <- core :: t.cores;
  core

let add_dedicated_core t = add_core t Cpu.Dedicated
let add_timeshared_core t = add_core t Cpu.Timeshared
let cores t = List.rev t.cores
let core_count t = t.next_id

let ipi t ~to_core k =
  if Newt_sim.Exec.is_native t.exec then
    (* A real cross-domain kick: the target domain's doorbell plays the
       role of the IPI. *)
    Newt_sim.Exec.post t.exec ~core:(Cpu.id to_core) k
  else
    ignore
      (Newt_sim.Engine.schedule t.engine t.costs.Costs.ipi_latency (fun () ->
           (* The interrupt handler itself is charged to a pseudo-process
              (-1) so a timeshared core accounts a switch into the kernel. *)
           Cpu.exec to_core ~proc:(-1) ~cost:t.costs.Costs.trap_hot k))
