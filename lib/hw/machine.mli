(** A simulated multicore machine.

    The paper's testbed is a 12-core 1.9 GHz AMD Opteron 6168; a machine
    groups the engine, the cost model, and the cores, and hands out
    dedicated cores to OS components (NewtOS mode) or a pool of
    timeshared cores (applications, Minix baseline). *)

type t

val create : ?costs:Costs.t -> ?exec:Newt_sim.Exec.t -> Newt_sim.Engine.t -> t
(** A machine with no cores yet; add them with the allocators below.
    [exec] selects the execution backend (default: the discrete-event
    engine). *)

val engine : t -> Newt_sim.Engine.t

val exec : t -> Newt_sim.Exec.t
(** The execution backend every core and server of this machine uses. *)

val costs : t -> Costs.t

val add_dedicated_core : t -> Cpu.t
(** Allocate a fresh dedicated core (for an OS server). *)

val add_timeshared_core : t -> Cpu.t
(** Allocate a fresh timeshared core (for applications). *)

val cores : t -> Cpu.t list
(** All cores, in allocation order. *)

val core_count : t -> int

val ipi : t -> to_core:Cpu.t -> (unit -> unit) -> unit
(** [ipi t ~to_core k] models an interprocessor interrupt: [k] runs on
    [to_core] after the IPI delivery latency plus a small interrupt
    handling cost. Wakes a halted core immediately (the IPI breaks
    MONITOR/MWAIT even without a monitored write; Section V-B). *)
