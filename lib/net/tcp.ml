type state =
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Listen -> "LISTEN"
    | Syn_sent -> "SYN_SENT"
    | Syn_received -> "SYN_RCVD"
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN_WAIT_1"
    | Fin_wait_2 -> "FIN_WAIT_2"
    | Close_wait -> "CLOSE_WAIT"
    | Closing -> "CLOSING"
    | Last_ack -> "LAST_ACK"
    | Time_wait -> "TIME_WAIT"
    | Closed -> "CLOSED")

(* Stable integer codes for crossing the [Newt_channels.Hook] boundary
   (that library sits below us and cannot name [state]). *)
let state_code = function
  | Listen -> 0
  | Syn_sent -> 1
  | Syn_received -> 2
  | Established -> 3
  | Fin_wait_1 -> 4
  | Fin_wait_2 -> 5
  | Close_wait -> 6
  | Closing -> 7
  | Last_ack -> 8
  | Time_wait -> 9
  | Closed -> 10

let state_of_code = function
  | 0 -> Listen
  | 1 -> Syn_sent
  | 2 -> Syn_received
  | 3 -> Established
  | 4 -> Fin_wait_1
  | 5 -> Fin_wait_2
  | 6 -> Close_wait
  | 7 -> Closing
  | 8 -> Last_ack
  | 9 -> Time_wait
  | 10 -> Closed
  | n -> invalid_arg (Printf.sprintf "Tcp.state_of_code: %d" n)

type event =
  | Connected
  | Accepted
  | Readable
  | Writable
  | Closed_normally
  | Reset

type env = {
  now : unit -> int;
  set_timer : int -> (unit -> unit) -> unit -> unit;
  emit : src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Tcp_wire.header -> payload:Bytes.t -> unit;
  random : int -> int;
}

type config = {
  mss : int;
  tso_segment : int;
  snd_buf : int;
  rcv_buf : int;
  rto_init : int;
  rto_min : int;
  rto_max : int;
  delack_timeout : int;
  msl : int;
  max_retries : int;
  use_wscale : bool;
}

let cps = Newt_sim.Time.cycles_per_second

let default_config =
  {
    mss = 1460;
    tso_segment = 0;
    snd_buf = 256 * 1024;
    rcv_buf = 256 * 1024;
    rto_init = cps (* 1 s *);
    rto_min = cps / 5 (* 200 ms *);
    rto_max = 60 * cps;
    delack_timeout = cps / 25 (* 40 ms *);
    msl = cps (* 1 s; TIME_WAIT = 2 s *);
    max_retries = 10;
    use_wscale = true;
  }

type stats = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable retransmits : int;
  mutable dup_segs_in : int;
  mutable rsts_out : int;
  mutable rsts_in : int;
}

type conn_key = Addr.Ipv4.t * int * Addr.Ipv4.t * int

(* Deliberate conformance bugs for the checker's negative controls
   (the paper's §V-B class: answering traffic from the wrong protocol
   state). [Stale_established] is planted by [resurrect] after a
   crash; [Ack_from_closed] replaces the RST a closed port owes an
   unknown segment with a bare ACK. *)
type sabotage = Stale_established | Ack_from_closed

type pcb = {
  t : t;
  local_ip : Addr.Ipv4.t;
  local_port : int;
  remote_ip : Addr.Ipv4.t;
  remote_port : int;
  mutable state : state;
  mutable handler : event -> unit;
  (* Send side. *)
  mutable iss : Seq32.t;
  mutable snd_una : Seq32.t;
  mutable snd_nxt : Seq32.t;
  mutable snd_max : Seq32.t;
      (* Highest sequence ever sent. After a go-back-N RTO resets
         [snd_nxt], ACKs between the two remain valid. *)
  mutable snd_wnd : int;
  mutable snd_wl1 : Seq32.t;
  mutable snd_wl2 : Seq32.t;
  sndbuf : Bytebuf.t;
  mutable fin_sent : bool;
  mutable fin_seq : Seq32.t;
  mutable close_pending : bool;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;
  mutable in_fast_recovery : bool;
  mutable srtt : int;  (* scaled by 8, 0 = no sample yet *)
  mutable rttvar : int;  (* scaled by 4 *)
  mutable rto : int;
  mutable rtt_probe : (Seq32.t * int) option;  (* seq being timed, send time *)
  mutable retries : int;
  mutable rtx_cancel : (unit -> unit) option;
  mutable persist_cancel : (unit -> unit) option;
  mutable persist_backoff : int;  (* multiplier on the persist interval *)
  (* Receive side. *)
  mutable irs : Seq32.t;
  mutable rcv_nxt : Seq32.t;
  rcvbuf : Bytebuf.t;
  mutable ooo : (Seq32.t * Bytes.t) list;  (* sorted by seq *)
  mutable rcv_fin : bool;
  mutable eof_delivered : bool;
  mutable delack_pending : int;
  mutable delack_cancel : (unit -> unit) option;
  mutable timewait_cancel : (unit -> unit) option;
  mutable last_advertised_wnd : int;
  (* Negotiated parameters. *)
  mutable mss : int;
  mutable snd_wscale : int;  (* shift to apply to peer's window field *)
  mutable rcv_wscale : int;  (* shift peer applies; we advertise >> this *)
}

and listener = { on_accept : pcb -> unit }

and t = {
  env : env;
  config : config;
  conns : (conn_key, pcb) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  stats : stats;
  mutable next_ephemeral : int;
  mutable sabotage : sabotage option;
}

let create ?(config = default_config) env =
  {
    env;
    config;
    conns = Hashtbl.create 64;
    listeners = Hashtbl.create 8;
    stats =
      {
        segs_out = 0;
        segs_in = 0;
        bytes_out = 0;
        bytes_in = 0;
        retransmits = 0;
        dup_segs_in = 0;
        rsts_out = 0;
        rsts_in = 0;
      };
    next_ephemeral = 49152;
    sabotage = None;
  }

let stats t = t.stats
let state pcb = pcb.state
let set_handler pcb f = pcb.handler <- f
let local_addr pcb = (pcb.local_ip, pcb.local_port)
let remote_addr pcb = (pcb.remote_ip, pcb.remote_port)
let effective_mss pcb = pcb.mss
let cwnd pcb = pcb.cwnd
let srtt pcb = if pcb.srtt = 0 then None else Some (pcb.srtt / 8)

let key_of pcb : conn_key =
  (pcb.local_ip, pcb.local_port, pcb.remote_ip, pcb.remote_port)

(* {2 Conformance-event mirroring}

   Every state transition and every segment crossing the engine is
   mirrored to the [Hook] TCP family so the FSM conformance checker
   ([Newt_verify.Tcpfsm]) can replay them against its rule table. All
   emissions are guarded by [Hook.tcp_enabled] so an unarmed run pays
   one branch per site. Events are local-oriented: [lip]/[lport] is
   always this engine's end. *)

module Hook = Newt_channels.Hook

let hook_flags (f : Tcp_wire.flags) ~payload_len =
  {
    Hook.syn = f.Tcp_wire.syn;
    ack = f.Tcp_wire.ack;
    fin = f.Tcp_wire.fin;
    rst = f.Tcp_wire.rst;
    data = payload_len > 0;
  }

(* [hook_transition] reports [from_] explicitly so creation sites can
   report the implicit Closed origin of a fresh PCB. Emitted before
   the state field is assigned. *)
let hook_transition pcb ~from_ ~to_ cause =
  if from_ <> to_ && Hook.tcp_enabled () then
    Hook.tcp_emit
      (Hook.T_state_change
         {
           lip = Addr.Ipv4.to_int32 pcb.local_ip;
           lport = pcb.local_port;
           rip = Addr.Ipv4.to_int32 pcb.remote_ip;
           rport = pcb.remote_port;
           from_s = state_code from_;
           to_s = state_code to_;
           cause;
         })

let set_state pcb cause to_ =
  hook_transition pcb ~from_:pcb.state ~to_ cause;
  pcb.state <- to_

let hook_seg ~tx ~lip ~lport ~rip ~rport flags =
  if Hook.tcp_enabled () then begin
    let lip = Addr.Ipv4.to_int32 lip and rip = Addr.Ipv4.to_int32 rip in
    Hook.tcp_emit
      (if tx then Hook.T_seg_tx { lip; lport; rip; rport; flags }
       else Hook.T_seg_rx { lip; lport; rip; rport; flags })
  end

let wscale_of_buf buf_size =
  let rec go shift = if buf_size lsr shift <= 0xffff || shift >= 14 then shift else go (shift + 1) in
  go 0

let cancel_timer c =
  match c with
  | Some cancel -> cancel ()
  | None -> ()

let new_pcb t ~local_ip ~local_port ~remote_ip ~remote_port ~state =
  {
    t;
    local_ip;
    local_port;
    remote_ip;
    remote_port;
    state;
    handler = (fun _ -> ());
    iss = 0;
    snd_una = 0;
    snd_nxt = 0;
    snd_max = 0;
    snd_wnd = 0;
    snd_wl1 = 0;
    snd_wl2 = 0;
    sndbuf = Bytebuf.create ~capacity:t.config.snd_buf;
    fin_sent = false;
    fin_seq = 0;
    close_pending = false;
    cwnd = 2 * t.config.mss;
    ssthresh = t.config.snd_buf;
    dupacks = 0;
    in_fast_recovery = false;
    srtt = 0;
    rttvar = 0;
    rto = t.config.rto_init;
    rtt_probe = None;
    retries = 0;
    rtx_cancel = None;
    persist_cancel = None;
    persist_backoff = 1;
    irs = 0;
    rcv_nxt = 0;
    rcvbuf = Bytebuf.create ~capacity:t.config.rcv_buf;
    ooo = [];
    rcv_fin = false;
    eof_delivered = false;
    delack_pending = 0;
    delack_cancel = None;
    timewait_cancel = None;
    last_advertised_wnd = 0;
    mss = t.config.mss;
    snd_wscale = 0;
    rcv_wscale = 0;
  }

(* {2 Emission} *)

let advertised_window pcb =
  let free = Bytebuf.available pcb.rcvbuf in
  min 0xffff (free lsr pcb.rcv_wscale)

let emit_seg pcb ?(payload = Bytes.empty) ?(push = false) ~seq (flags : Tcp_wire.flags) =
  let t = pcb.t in
  (* The window field of a SYN segment is never scaled (RFC 7323). *)
  let win =
    if flags.Tcp_wire.syn then min 0xffff (Bytebuf.available pcb.rcvbuf)
    else advertised_window pcb
  in
  pcb.last_advertised_wnd <- win;
  let hdr =
    {
      Tcp_wire.src_port = pcb.local_port;
      dst_port = pcb.remote_port;
      seq;
      ack = (if flags.Tcp_wire.ack then pcb.rcv_nxt else 0);
      flags = { flags with Tcp_wire.psh = push };
      window = win;
      mss = (if flags.Tcp_wire.syn then Some t.config.mss else None);
      wscale =
        (if flags.Tcp_wire.syn && t.config.use_wscale then
           Some (wscale_of_buf t.config.rcv_buf)
         else None);
    }
  in
  t.stats.segs_out <- t.stats.segs_out + 1;
  t.stats.bytes_out <- t.stats.bytes_out + Bytes.length payload;
  hook_seg ~tx:true ~lip:pcb.local_ip ~lport:pcb.local_port ~rip:pcb.remote_ip
    ~rport:pcb.remote_port
    (hook_flags hdr.Tcp_wire.flags ~payload_len:(Bytes.length payload));
  t.env.emit ~src:pcb.local_ip ~dst:pcb.remote_ip hdr ~payload

let emit_rst t ~src ~dst ~src_port ~dst_port ~seq ~ack ~with_ack =
  let flags = { Tcp_wire.flag_rst with Tcp_wire.ack = with_ack } in
  let hdr =
    {
      Tcp_wire.src_port;
      dst_port;
      seq;
      ack;
      flags;
      window = 0;
      mss = None;
      wscale = None;
    }
  in
  t.stats.rsts_out <- t.stats.rsts_out + 1;
  t.stats.segs_out <- t.stats.segs_out + 1;
  hook_seg ~tx:true ~lip:src ~lport:src_port ~rip:dst ~rport:dst_port
    (hook_flags flags ~payload_len:0);
  t.env.emit ~src ~dst hdr ~payload:Bytes.empty

let ack_now pcb =
  cancel_timer pcb.delack_cancel;
  pcb.delack_cancel <- None;
  pcb.delack_pending <- 0;
  emit_seg pcb ~seq:pcb.snd_nxt Tcp_wire.flag_ack

let ack_delayed pcb =
  pcb.delack_pending <- pcb.delack_pending + 1;
  if pcb.delack_pending >= 2 then ack_now pcb
  else if pcb.delack_cancel = None then
    pcb.delack_cancel <-
      Some (pcb.t.env.set_timer pcb.t.config.delack_timeout (fun () ->
                pcb.delack_cancel <- None;
                if pcb.delack_pending > 0 then ack_now pcb))

(* {2 Timers and retransmission} *)

let stop_rtx pcb =
  cancel_timer pcb.rtx_cancel;
  pcb.rtx_cancel <- None

let stop_persist pcb =
  cancel_timer pcb.persist_cancel;
  pcb.persist_cancel <- None;
  pcb.persist_backoff <- 1

let flight pcb = Seq32.diff pcb.snd_nxt pcb.snd_una

let teardown ~cause pcb =
  stop_rtx pcb;
  stop_persist pcb;
  cancel_timer pcb.delack_cancel;
  pcb.delack_cancel <- None;
  cancel_timer pcb.timewait_cancel;
  pcb.timewait_cancel <- None;
  Hashtbl.remove pcb.t.conns (key_of pcb);
  set_state pcb cause Closed

let rec arm_rtx pcb =
  stop_rtx pcb;
  pcb.rtx_cancel <- Some (pcb.t.env.set_timer pcb.rto (fun () -> on_rto pcb))

and on_rto pcb =
  pcb.rtx_cancel <- None;
  pcb.retries <- pcb.retries + 1;
  if pcb.retries > pcb.t.config.max_retries then begin
    let h = pcb.handler in
    teardown ~cause:Hook.T_timer pcb;
    h Reset
  end
  else begin
    (* Karn: back off and stop timing. *)
    pcb.rto <- min (pcb.rto * 2) pcb.t.config.rto_max;
    pcb.rtt_probe <- None;
    (match pcb.state with
    | Syn_sent ->
        emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn;
        pcb.t.stats.retransmits <- pcb.t.stats.retransmits + 1
    | Syn_received ->
        emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn_ack;
        pcb.t.stats.retransmits <- pcb.t.stats.retransmits + 1
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
        (* Multiplicative decrease, go-back-N from snd_una. *)
        let fl = flight pcb in
        if fl > 0 then begin
          pcb.ssthresh <- max (fl / 2) (2 * pcb.mss);
          pcb.cwnd <- pcb.mss;
          pcb.in_fast_recovery <- false;
          pcb.dupacks <- 0;
          pcb.snd_nxt <- pcb.snd_una;
          retransmit_front pcb
        end
    | Listen | Time_wait | Closed -> ());
    (match pcb.state with
    | Syn_sent | Syn_received | Established | Fin_wait_1 | Close_wait | Closing
    | Last_ack ->
        arm_rtx pcb
    | Listen | Fin_wait_2 | Time_wait | Closed -> ())
  end

and retransmit_front pcb =
  (* Resend one segment starting at snd_una. The send buffer's front is
     aligned with snd_una, so the bytes are still there. *)
  let data_left = Bytebuf.length pcb.sndbuf in
  let seg = min pcb.mss data_left in
  if seg > 0 then begin
    let payload = Bytebuf.peek pcb.sndbuf ~off:0 ~len:seg in
    pcb.t.stats.retransmits <- pcb.t.stats.retransmits + 1;
    emit_seg pcb ~seq:pcb.snd_una ~payload ~push:true Tcp_wire.flag_ack;
    pcb.snd_nxt <- Seq32.max pcb.snd_nxt (Seq32.add pcb.snd_una seg)
  end
  else if pcb.fin_sent then begin
    pcb.t.stats.retransmits <- pcb.t.stats.retransmits + 1;
    emit_seg pcb ~seq:pcb.fin_seq Tcp_wire.flag_fin_ack;
    pcb.snd_nxt <- Seq32.max pcb.snd_nxt (Seq32.add pcb.fin_seq 1)
  end

(* {2 Output engine} *)

let max_seg pcb =
  if pcb.t.config.tso_segment > 0 then max pcb.mss pcb.t.config.tso_segment
  else pcb.mss

let rec output pcb =
  match pcb.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> output_data pcb
  | Listen | Syn_sent | Syn_received | Fin_wait_2 | Time_wait | Closed -> ()

and output_data pcb =
  let fl = flight pcb in
  (* The FIN byte, when in flight, occupies sequence space but no send
     buffer space. *)
  let fin_in_flight = pcb.fin_sent && Seq32.gt pcb.snd_nxt pcb.fin_seq in
  let sent_data = if fin_in_flight then fl - 1 else fl in
  let unsent = Bytebuf.length pcb.sndbuf - sent_data in
  let window = min pcb.snd_wnd pcb.cwnd in
  let usable = window - fl in
  let seg_limit = max_seg pcb in
  (* Zero-window: the peer closed its window while we still have
     data. Probe periodically (RFC 1122 persist timer) so a lost
     window update cannot deadlock the connection. *)
  if unsent > 0 && pcb.snd_wnd = 0 && fl = 0 then arm_persist pcb
  else if pcb.snd_wnd > 0 then stop_persist pcb;
  if unsent > 0 && (not fin_in_flight) && usable > 0 then begin
    let len = min (min unsent usable) seg_limit in
    (* Avoid silly-window segments: send a short segment only when it
       flushes the buffer — but never idle the connection with data
       queued (when nothing is in flight, a sub-MSS window must still
       be used, or a shrunken window deadlocks the transfer). *)
    if len >= min pcb.mss seg_limit || len = unsent || fl = 0 then begin
      let payload = Bytebuf.peek pcb.sndbuf ~off:sent_data ~len in
      let push = len = unsent in
      (if pcb.rtt_probe = None then
         pcb.rtt_probe <- Some (pcb.snd_nxt, pcb.t.env.now ()));
      emit_seg pcb ~seq:pcb.snd_nxt ~payload ~push Tcp_wire.flag_ack;
      pcb.delack_pending <- 0;
      pcb.snd_nxt <- Seq32.add pcb.snd_nxt len;
      pcb.snd_max <- Seq32.max pcb.snd_max pcb.snd_nxt;
      if pcb.rtx_cancel = None then arm_rtx pcb;
      output_data pcb
    end
  end
  else if unsent = 0 then begin
    if pcb.close_pending && not pcb.fin_sent then send_fin pcb
    else if pcb.fin_sent && not fin_in_flight then begin
      (* The data behind a go-back-N has drained again: put the FIN
         back in flight. *)
      emit_seg pcb ~seq:pcb.fin_seq Tcp_wire.flag_fin_ack;
      pcb.snd_nxt <- Seq32.max pcb.snd_nxt (Seq32.add pcb.fin_seq 1);
      if pcb.rtx_cancel = None then arm_rtx pcb
    end
  end

and arm_persist pcb =
  if pcb.persist_cancel = None then begin
    let interval =
      min (pcb.rto * pcb.persist_backoff) pcb.t.config.rto_max
    in
    pcb.persist_cancel <-
      Some
        (pcb.t.env.set_timer interval (fun () ->
             pcb.persist_cancel <- None;
             if pcb.snd_wnd = 0 && Bytebuf.length pcb.sndbuf > flight pcb then begin
               (* One byte beyond the window, without advancing snd_nxt:
                  pure ACK solicitation. *)
               let probe = Bytebuf.peek pcb.sndbuf ~off:(flight pcb) ~len:1 in
               emit_seg pcb ~seq:pcb.snd_nxt ~payload:probe Tcp_wire.flag_ack;
               pcb.persist_backoff <- min (pcb.persist_backoff * 2) 64;
               arm_persist pcb
             end))
  end

and send_fin pcb =
  if not pcb.fin_sent then begin
    pcb.fin_sent <- true;
    pcb.fin_seq <- pcb.snd_nxt;
    emit_seg pcb ~seq:pcb.snd_nxt Tcp_wire.flag_fin_ack;
    pcb.snd_nxt <- Seq32.add pcb.snd_nxt 1;
    pcb.snd_max <- Seq32.max pcb.snd_max pcb.snd_nxt;
    let tx_fin =
      Hook.T_tx { Hook.syn = false; ack = true; fin = true; rst = false; data = false }
    in
    (match pcb.state with
    | Established -> set_state pcb tx_fin Fin_wait_1
    | Close_wait -> set_state pcb tx_fin Last_ack
    | Syn_sent | Syn_received | Listen | Fin_wait_1 | Fin_wait_2 | Closing
    | Last_ack | Time_wait | Closed ->
        ());
    if pcb.rtx_cancel = None then arm_rtx pcb
  end

(* {2 The API: opening, closing, data} *)

let alloc_ephemeral t ~local_ip ~remote_ip ~remote_port =
  let rec go attempts =
    if attempts > 16384 then failwith "Tcp: out of ephemeral ports";
    let port = t.next_ephemeral in
    t.next_ephemeral <- (if port >= 65535 then 49152 else port + 1);
    if Hashtbl.mem t.conns (local_ip, port, remote_ip, remote_port) then go (attempts + 1)
    else port
  in
  go 0

let port_in_use t ~local_ip ~port ~remote_ip ~remote_port =
  Hashtbl.mem t.conns (local_ip, port, remote_ip, remote_port)

let connect t ~src ~dst ~dst_port ?src_port () =
  let local_port =
    match src_port with
    | Some p -> p
    | None -> alloc_ephemeral t ~local_ip:src ~remote_ip:dst ~remote_port:dst_port
  in
  let pcb =
    new_pcb t ~local_ip:src ~local_port ~remote_ip:dst ~remote_port:dst_port
      ~state:Syn_sent
  in
  pcb.iss <- t.env.random 0x7fffffff;
  pcb.snd_una <- pcb.iss;
  pcb.snd_nxt <- Seq32.add pcb.iss 1;
  pcb.snd_max <- pcb.snd_nxt;
  Hashtbl.replace t.conns (key_of pcb) pcb;
  hook_transition pcb ~from_:Closed ~to_:Syn_sent Hook.T_api;
  emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn;
  arm_rtx pcb;
  pcb

let listen t ~port ~on_accept =
  if Hashtbl.mem t.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d already bound" port);
  Hashtbl.replace t.listeners port { on_accept }

let unlisten t ~port = Hashtbl.remove t.listeners port

let close pcb =
  match pcb.state with
  | Established | Close_wait ->
      pcb.close_pending <- true;
      output pcb
  | Syn_sent | Syn_received -> teardown ~cause:Hook.T_api pcb
  | Listen | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed -> ()

let abort pcb =
  if pcb.state <> Closed then begin
    (match pcb.state with
    | Syn_sent | Closed | Listen -> ()
    | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
    | Last_ack | Time_wait ->
        emit_rst pcb.t ~src:pcb.local_ip ~dst:pcb.remote_ip ~src_port:pcb.local_port
          ~dst_port:pcb.remote_port ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~with_ack:true);
    teardown ~cause:Hook.T_api pcb
  end

let send pcb data =
  match pcb.state with
  | Established | Close_wait ->
      if pcb.close_pending then 0
      else begin
        let n = Bytebuf.push pcb.sndbuf data ~off:0 ~len:(Bytes.length data) in
        if n > 0 then output pcb;
        n
      end
  | Listen | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack
  | Time_wait | Closed ->
      0

let send_space pcb =
  match pcb.state with
  | Established | Close_wait when not pcb.close_pending -> Bytebuf.available pcb.sndbuf
  | Listen | Syn_sent | Syn_received | Established | Fin_wait_1 | Fin_wait_2
  | Close_wait | Closing | Last_ack | Time_wait | Closed ->
      0

let recv_available pcb = Bytebuf.length pcb.rcvbuf

let recv pcb ~max =
  let was_closed = pcb.last_advertised_wnd * (1 lsl pcb.rcv_wscale) < pcb.mss in
  let out = Bytebuf.pop pcb.rcvbuf ~max in
  (* Reopen a window the peer believes is (nearly) closed. *)
  let now_open = Bytebuf.available pcb.rcvbuf >= 2 * pcb.mss in
  (match pcb.state with
  | Established | Fin_wait_1 | Fin_wait_2 ->
      if was_closed && now_open && Bytes.length out > 0 then ack_now pcb
  | Listen | Syn_sent | Syn_received | Close_wait | Closing | Last_ack | Time_wait
  | Closed ->
      ());
  out

let recv_eof pcb = pcb.rcv_fin && Bytebuf.is_empty pcb.rcvbuf

(* {2 ACK processing} *)

let update_rtt pcb =
  match pcb.rtt_probe with
  | None -> ()
  | Some (seq, sent_at) ->
      if Seq32.gt pcb.snd_una seq then begin
        pcb.rtt_probe <- None;
        let m = pcb.t.env.now () - sent_at in
        if pcb.srtt = 0 then begin
          pcb.srtt <- m * 8;
          pcb.rttvar <- m * 2
        end
        else begin
          let err = m - (pcb.srtt / 8) in
          pcb.srtt <- pcb.srtt + err;
          pcb.rttvar <- pcb.rttvar + (abs err - (pcb.rttvar / 4))
        end;
        let rto = (pcb.srtt / 8) + max (pcb.rttvar) (pcb.t.config.rto_min / 4) in
        pcb.rto <- min (max rto pcb.t.config.rto_min) pcb.t.config.rto_max
      end

let grow_cwnd pcb acked_bytes =
  if pcb.cwnd < pcb.ssthresh then
    (* Slow start with byte counting. *)
    pcb.cwnd <- min (pcb.cwnd + acked_bytes) (pcb.t.config.snd_buf)
  else
    (* Congestion avoidance: roughly one MSS per RTT. *)
    pcb.cwnd <-
      min
        (pcb.cwnd + max 1 (pcb.mss * acked_bytes / pcb.cwnd))
        pcb.t.config.snd_buf

let fast_retransmit pcb =
  let fl = flight pcb in
  pcb.ssthresh <- max (fl / 2) (2 * pcb.mss);
  pcb.in_fast_recovery <- true;
  pcb.cwnd <- pcb.ssthresh + (3 * pcb.mss);
  let data_left = Bytebuf.length pcb.sndbuf in
  let seg = min pcb.mss data_left in
  if seg > 0 then begin
    let payload = Bytebuf.peek pcb.sndbuf ~off:0 ~len:seg in
    pcb.t.stats.retransmits <- pcb.t.stats.retransmits + 1;
    emit_seg pcb ~seq:pcb.snd_una ~payload ~push:true Tcp_wire.flag_ack
  end

let process_ack pcb (hdr : Tcp_wire.header) ~payload_len =
  if Seq32.gt hdr.Tcp_wire.ack pcb.snd_max then
    (* Acknowledging data we never sent: resynchronize. *)
    ack_now pcb
  else if Seq32.le hdr.Tcp_wire.ack pcb.snd_una then begin
    (* Duplicate ACK detection per RFC 5681. *)
    if
      hdr.Tcp_wire.ack = pcb.snd_una
      && payload_len = 0
      && flight pcb > 0
      && (not hdr.Tcp_wire.flags.Tcp_wire.syn)
      && not hdr.Tcp_wire.flags.Tcp_wire.fin
    then begin
      pcb.dupacks <- pcb.dupacks + 1;
      if pcb.dupacks = 3 then fast_retransmit pcb
      else if pcb.dupacks > 3 && pcb.in_fast_recovery then begin
        pcb.cwnd <- pcb.cwnd + pcb.mss;
        output pcb
      end
    end
  end
  else begin
    let acked = Seq32.diff hdr.Tcp_wire.ack pcb.snd_una in
    let fin_acked = pcb.fin_sent && Seq32.ge hdr.Tcp_wire.ack (Seq32.add pcb.fin_seq 1) in
    let data_acked = if fin_acked then acked - 1 else acked in
    let data_acked = min data_acked (Bytebuf.length pcb.sndbuf) in
    if data_acked > 0 then Bytebuf.drop pcb.sndbuf data_acked;
    pcb.snd_una <- hdr.Tcp_wire.ack;
    (* After a go-back-N reset, a late ACK may land beyond snd_nxt. *)
    pcb.snd_nxt <- Seq32.max pcb.snd_nxt hdr.Tcp_wire.ack;
    pcb.retries <- 0;
    if pcb.in_fast_recovery then begin
      pcb.cwnd <- pcb.ssthresh;
      pcb.in_fast_recovery <- false
    end
    else grow_cwnd pcb data_acked;
    pcb.dupacks <- 0;
    update_rtt pcb;
    if flight pcb = 0 then stop_rtx pcb else arm_rtx pcb;
    if data_acked > 0 then pcb.handler Writable
  end

let update_snd_wnd pcb (hdr : Tcp_wire.header) =
  let seg_seq = hdr.Tcp_wire.seq and seg_ack = hdr.Tcp_wire.ack in
  if
    Seq32.lt pcb.snd_wl1 seg_seq
    || (pcb.snd_wl1 = seg_seq && Seq32.le pcb.snd_wl2 seg_ack)
  then begin
    pcb.snd_wnd <- hdr.Tcp_wire.window lsl pcb.snd_wscale;
    pcb.snd_wl1 <- seg_seq;
    pcb.snd_wl2 <- seg_ack
  end

(* {2 Receive-side reassembly} *)

let insert_ooo pcb seq data =
  (* Keep a bounded, sorted out-of-order list; overlaps are resolved by
     preferring already-stored segments (peer retransmits will fill). *)
  if List.length pcb.ooo < 64 && Bytes.length data > 0 then begin
    let entry = (seq, data) in
    let rec ins = function
      | [] -> [ entry ]
      | (s, d) :: rest as l ->
          if Seq32.lt seq s then entry :: l
          else if s = seq then (s, d) :: rest (* duplicate *)
          else (s, d) :: ins rest
    in
    pcb.ooo <- ins pcb.ooo
  end

let rec drain_ooo pcb =
  match pcb.ooo with
  | (s, d) :: rest when Seq32.le s pcb.rcv_nxt ->
      pcb.ooo <- rest;
      let skip = Seq32.diff pcb.rcv_nxt s in
      if skip < Bytes.length d then begin
        let fresh = Bytes.length d - skip in
        let pushed = Bytebuf.push pcb.rcvbuf d ~off:skip ~len:fresh in
        pcb.rcv_nxt <- Seq32.add pcb.rcv_nxt pushed;
        if pushed < fresh then
          (* Buffer full: drop the tail, the peer will retransmit. *)
          pcb.ooo <- []
      end;
      drain_ooo pcb
  | _ -> ()

let rec process_payload pcb (hdr : Tcp_wire.header) payload =
  let len = Bytes.length payload in
  let seg_seq = hdr.Tcp_wire.seq in
  let fin = hdr.Tcp_wire.flags.Tcp_wire.fin in
  if len = 0 && not fin then ()
  else begin
    let t = pcb.t in
    t.stats.bytes_in <- t.stats.bytes_in + len;
    if len > 0 && Seq32.le (Seq32.add seg_seq len) pcb.rcv_nxt then begin
      (* Entirely old data: duplicate segment. *)
      t.stats.dup_segs_in <- t.stats.dup_segs_in + 1;
      ack_now pcb
    end
    else if Seq32.gt seg_seq pcb.rcv_nxt then begin
      (* A hole: stash and send an immediate duplicate ACK. *)
      insert_ooo pcb seg_seq payload;
      ack_now pcb
    end
    else begin
      (* In order (possibly with an old prefix to trim). *)
      let skip = Seq32.diff pcb.rcv_nxt seg_seq in
      let fresh = len - skip in
      let had_data = fresh > 0 in
      if had_data then begin
        let pushed = Bytebuf.push pcb.rcvbuf payload ~off:skip ~len:fresh in
        pcb.rcv_nxt <- Seq32.add pcb.rcv_nxt pushed
      end;
      drain_ooo pcb;
      (* FIN is in order only when every payload byte was consumed. *)
      let fin_in_order =
        fin && Seq32.ge pcb.rcv_nxt (Seq32.add seg_seq len) && pcb.ooo = []
      in
      if fin_in_order && not pcb.rcv_fin then begin
        pcb.rcv_fin <- true;
        pcb.rcv_nxt <- Seq32.add pcb.rcv_nxt 1;
        let rx_fin = Hook.T_rx (hook_flags hdr.Tcp_wire.flags ~payload_len:len) in
        (match pcb.state with
        | Established -> set_state pcb rx_fin Close_wait
        | Fin_wait_1 ->
            (* Our FIN not yet acked: simultaneous close. *)
            set_state pcb rx_fin Closing
        | Fin_wait_2 -> enter_time_wait ~cause:rx_fin pcb
        | Syn_received | Listen | Syn_sent | Close_wait | Closing | Last_ack
        | Time_wait | Closed ->
            ());
        ack_now pcb;
        pcb.handler Readable
      end
      else begin
        if had_data then begin
          ack_delayed pcb;
          pcb.handler Readable
        end
        else if len > 0 then ack_now pcb
      end
    end
  end

and enter_time_wait ~cause pcb =
  set_state pcb cause Time_wait;
  stop_rtx pcb;
  cancel_timer pcb.timewait_cancel;
  pcb.timewait_cancel <-
    Some
      (pcb.t.env.set_timer (2 * pcb.t.config.msl) (fun () ->
           pcb.timewait_cancel <- None;
           let h = pcb.handler in
           teardown ~cause:Hook.T_timer pcb;
           h Closed_normally))

(* {2 Input demultiplexing and the state machine} *)

let negotiate_from_syn pcb (hdr : Tcp_wire.header) =
  (match hdr.Tcp_wire.mss with
  | Some peer_mss -> pcb.mss <- min pcb.t.config.mss peer_mss
  | None -> pcb.mss <- min pcb.t.config.mss 536);
  match hdr.Tcp_wire.wscale with
  | Some ws when pcb.t.config.use_wscale ->
      pcb.snd_wscale <- min ws 14;
      pcb.rcv_wscale <- wscale_of_buf pcb.t.config.rcv_buf
  | Some _ | None ->
      pcb.snd_wscale <- 0;
      pcb.rcv_wscale <- 0

let handle_syn_sent pcb (hdr : Tcp_wire.header) =
  let rx = Hook.T_rx (hook_flags hdr.Tcp_wire.flags ~payload_len:0) in
  if hdr.Tcp_wire.flags.Tcp_wire.rst then begin
    if hdr.Tcp_wire.flags.Tcp_wire.ack && hdr.Tcp_wire.ack = pcb.snd_nxt then begin
      pcb.t.stats.rsts_in <- pcb.t.stats.rsts_in + 1;
      let h = pcb.handler in
      teardown ~cause:rx pcb;
      h Reset
    end
  end
  else if hdr.Tcp_wire.flags.Tcp_wire.syn && hdr.Tcp_wire.flags.Tcp_wire.ack then begin
    if hdr.Tcp_wire.ack = pcb.snd_nxt then begin
      negotiate_from_syn pcb hdr;
      pcb.irs <- hdr.Tcp_wire.seq;
      pcb.rcv_nxt <- Seq32.add hdr.Tcp_wire.seq 1;
      pcb.snd_una <- hdr.Tcp_wire.ack;
      (* SYN-ACK window is unscaled. *)
      pcb.snd_wnd <- hdr.Tcp_wire.window;
      pcb.snd_wl1 <- hdr.Tcp_wire.seq;
      pcb.snd_wl2 <- hdr.Tcp_wire.ack;
      set_state pcb rx Established;
      pcb.retries <- 0;
      stop_rtx pcb;
      ack_now pcb;
      pcb.handler Connected;
      output pcb
    end
    else
      emit_rst pcb.t ~src:pcb.local_ip ~dst:pcb.remote_ip ~src_port:pcb.local_port
        ~dst_port:pcb.remote_port ~seq:hdr.Tcp_wire.ack ~ack:0 ~with_ack:false
  end
  else if hdr.Tcp_wire.flags.Tcp_wire.syn then begin
    (* Simultaneous open. *)
    negotiate_from_syn pcb hdr;
    pcb.irs <- hdr.Tcp_wire.seq;
    pcb.rcv_nxt <- Seq32.add hdr.Tcp_wire.seq 1;
    set_state pcb rx Syn_received;
    emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn_ack
  end

let handle_listener t listener ~src ~dst (hdr : Tcp_wire.header) =
  if hdr.Tcp_wire.flags.Tcp_wire.syn && not hdr.Tcp_wire.flags.Tcp_wire.ack then begin
    let pcb =
      new_pcb t ~local_ip:dst ~local_port:hdr.Tcp_wire.dst_port ~remote_ip:src
        ~remote_port:hdr.Tcp_wire.src_port ~state:Syn_received
    in
    negotiate_from_syn pcb hdr;
    pcb.iss <- t.env.random 0x7fffffff;
    pcb.snd_una <- pcb.iss;
    pcb.snd_nxt <- Seq32.add pcb.iss 1;
    pcb.snd_max <- pcb.snd_nxt;
    pcb.irs <- hdr.Tcp_wire.seq;
    pcb.rcv_nxt <- Seq32.add hdr.Tcp_wire.seq 1;
    (* SYN window is unscaled. *)
    pcb.snd_wnd <- hdr.Tcp_wire.window;
    pcb.snd_wl1 <- hdr.Tcp_wire.seq;
    pcb.snd_wl2 <- 0;
    Hashtbl.replace t.conns (key_of pcb) pcb;
    hook_transition pcb ~from_:Closed ~to_:Syn_received
      (Hook.T_rx (hook_flags hdr.Tcp_wire.flags ~payload_len:0));
    (* Remember the acceptor so establishment can hand the pcb over. *)
    pcb.handler <-
      (fun ev ->
        match ev with Accepted -> listener.on_accept pcb | _ -> ());
    emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn_ack;
    arm_rtx pcb
  end
  else if not hdr.Tcp_wire.flags.Tcp_wire.rst then
    emit_rst t ~src:dst ~dst:src ~src_port:hdr.Tcp_wire.dst_port
      ~dst_port:hdr.Tcp_wire.src_port
      ~seq:(if hdr.Tcp_wire.flags.Tcp_wire.ack then hdr.Tcp_wire.ack else 0)
      ~ack:(Seq32.add hdr.Tcp_wire.seq 1)
      ~with_ack:(not hdr.Tcp_wire.flags.Tcp_wire.ack)

let handle_synchronized pcb (hdr : Tcp_wire.header) payload =
  let rx =
    Hook.T_rx (hook_flags hdr.Tcp_wire.flags ~payload_len:(Bytes.length payload))
  in
  if hdr.Tcp_wire.flags.Tcp_wire.rst then begin
    pcb.t.stats.rsts_in <- pcb.t.stats.rsts_in + 1;
    let h = pcb.handler in
    teardown ~cause:rx pcb;
    h Reset
  end
  else if hdr.Tcp_wire.flags.Tcp_wire.syn && pcb.state = Syn_received then
    (* Retransmitted SYN: repeat the SYN-ACK. *)
    emit_seg pcb ~seq:pcb.iss Tcp_wire.flag_syn_ack
  else begin
    (* Establishment completion for a passive open. *)
    (if pcb.state = Syn_received && hdr.Tcp_wire.flags.Tcp_wire.ack then
       if hdr.Tcp_wire.ack = pcb.snd_nxt then begin
         set_state pcb rx Established;
         pcb.snd_una <- hdr.Tcp_wire.ack;
         pcb.snd_wnd <- hdr.Tcp_wire.window lsl pcb.snd_wscale;
         pcb.snd_wl1 <- hdr.Tcp_wire.seq;
         pcb.snd_wl2 <- hdr.Tcp_wire.ack;
         pcb.retries <- 0;
         stop_rtx pcb;
         pcb.handler Accepted
       end
       else
         emit_rst pcb.t ~src:pcb.local_ip ~dst:pcb.remote_ip
           ~src_port:pcb.local_port ~dst_port:pcb.remote_port
           ~seq:hdr.Tcp_wire.ack ~ack:0 ~with_ack:false);
    match pcb.state with
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
        if hdr.Tcp_wire.flags.Tcp_wire.ack then begin
          let fin_was_acked () =
            pcb.fin_sent && Seq32.ge pcb.snd_una (Seq32.add pcb.fin_seq 1)
          in
          process_ack pcb hdr ~payload_len:(Bytes.length payload);
          update_snd_wnd pcb hdr;
          (* FIN-progress state transitions. *)
          (match pcb.state with
          | Fin_wait_1 when fin_was_acked () -> set_state pcb rx Fin_wait_2
          | Closing when fin_was_acked () -> enter_time_wait ~cause:rx pcb
          | Last_ack when fin_was_acked () ->
              let h = pcb.handler in
              teardown ~cause:rx pcb;
              h Closed_normally
          | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
          | Last_ack | Syn_received | Syn_sent | Listen | Time_wait | Closed ->
              ());
          if pcb.state <> Closed then begin
            process_payload pcb hdr payload;
            output pcb
          end
        end
    | Time_wait ->
        (* A retransmitted FIN: re-ACK and restart the 2MSL timer. *)
        if hdr.Tcp_wire.flags.Tcp_wire.fin then begin
          ack_now pcb;
          enter_time_wait ~cause:rx pcb
        end
    | Syn_received | Syn_sent | Listen | Closed -> ()
  end

let input t ~src ~dst (hdr : Tcp_wire.header) ~payload =
  t.stats.segs_in <- t.stats.segs_in + 1;
  hook_seg ~tx:false ~lip:dst ~lport:hdr.Tcp_wire.dst_port ~rip:src
    ~rport:hdr.Tcp_wire.src_port
    (hook_flags hdr.Tcp_wire.flags ~payload_len:(Bytes.length payload));
  let key = (dst, hdr.Tcp_wire.dst_port, src, hdr.Tcp_wire.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some pcb -> (
      match pcb.state with
      | Syn_sent -> handle_syn_sent pcb hdr
      | Listen | Closed -> ()
      | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
      | Closing | Last_ack | Time_wait ->
          handle_synchronized pcb hdr payload)
  | None -> (
      match Hashtbl.find_opt t.listeners hdr.Tcp_wire.dst_port with
      | Some listener -> handle_listener t listener ~src ~dst hdr
      | None ->
          if not hdr.Tcp_wire.flags.Tcp_wire.rst then begin
            (* SYN and FIN each occupy one sequence number. *)
            let seg_len =
              Bytes.length payload
              + (if hdr.Tcp_wire.flags.Tcp_wire.syn then 1 else 0)
              + if hdr.Tcp_wire.flags.Tcp_wire.fin then 1 else 0
            in
            match t.sabotage with
            | Some Ack_from_closed ->
                (* The §V-B bug: a closed port owes the sender a RST
                   (Table I — peers of a crashed server must see their
                   connection refused) but answers with a bare ACK
                   instead, keeping the peer convinced the connection
                   lives. The segment rule table must flag the ACK. *)
                let hdr' =
                  {
                    Tcp_wire.src_port = hdr.Tcp_wire.dst_port;
                    dst_port = hdr.Tcp_wire.src_port;
                    seq =
                      (if hdr.Tcp_wire.flags.Tcp_wire.ack then hdr.Tcp_wire.ack
                       else 0);
                    ack = Seq32.add hdr.Tcp_wire.seq seg_len;
                    flags = Tcp_wire.flag_ack;
                    window = 0;
                    mss = None;
                    wscale = None;
                  }
                in
                t.stats.segs_out <- t.stats.segs_out + 1;
                hook_seg ~tx:true ~lip:dst ~lport:hdr.Tcp_wire.dst_port ~rip:src
                  ~rport:hdr.Tcp_wire.src_port
                  (hook_flags Tcp_wire.flag_ack ~payload_len:0);
                t.env.emit ~src:dst ~dst:src hdr' ~payload:Bytes.empty
            | Some Stale_established | None ->
                emit_rst t ~src:dst ~dst:src ~src_port:hdr.Tcp_wire.dst_port
                  ~dst_port:hdr.Tcp_wire.src_port
                  ~seq:
                    (if hdr.Tcp_wire.flags.Tcp_wire.ack then hdr.Tcp_wire.ack
                     else 0)
                  ~ack:(Seq32.add hdr.Tcp_wire.seq seg_len)
                  ~with_ack:(not hdr.Tcp_wire.flags.Tcp_wire.ack)
          end)

(* {2 Introspection and crash support} *)

let flight_size pcb = flight pcb
let snd_window pcb = pcb.snd_wnd
let rtx_armed pcb = pcb.rtx_cancel <> None
let ooo_count pcb = List.length pcb.ooo
let snd_unacked pcb = pcb.snd_una
let snd_next pcb = pcb.snd_nxt
let rcv_next pcb = pcb.rcv_nxt

let listening_ports t = Hashtbl.fold (fun p _ acc -> p :: acc) t.listeners [] |> List.sort compare

let established_tuples t =
  Hashtbl.fold
    (fun (lip, lp, rip, rp) pcb acc ->
      match pcb.state with
      | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
          (lip, lp, rip, rp) :: acc
      | Listen | Syn_sent | Syn_received | Time_wait | Closed -> acc)
    t.conns []

let connection_count t = Hashtbl.length t.conns

let shutdown_all t =
  let pcbs = Hashtbl.fold (fun _ pcb acc -> pcb :: acc) t.conns [] in
  List.iter
    (fun pcb ->
      stop_rtx pcb;
      cancel_timer pcb.delack_cancel;
      pcb.delack_cancel <- None;
      cancel_timer pcb.timewait_cancel;
      pcb.timewait_cancel <- None;
      set_state pcb Hook.T_crash Closed)
    pcbs;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.listeners

let set_sabotage t s = t.sabotage <- s

let resurrect t tuples =
  List.iter
    (fun ((lip, lp, rip, rp) as key) ->
      if not (Hashtbl.mem t.conns key) then begin
        let pcb =
          new_pcb t ~local_ip:lip ~local_port:lp ~remote_ip:rip ~remote_port:rp
            ~state:Established
        in
        Hashtbl.replace t.conns key pcb;
        (* The forged transition the rule table must reject: a crash
           wiped this PCB, yet the restarted engine claims it is
           Established again with no handshake behind it. *)
        hook_transition pcb ~from_:Closed ~to_:Established Hook.T_api
      end)
    tuples
