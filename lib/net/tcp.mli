(** A TCP engine: connection table, listeners, the RFC 793 state machine,
    Jacobson/Karn retransmission timing, slow start, congestion
    avoidance, fast retransmit, delayed ACKs, MSS and window-scale
    negotiation, and optional TSO-sized output segments.

    The engine is host-stack agnostic: it is driven through an {!env}
    record providing a clock, one-shot timers and a segment-emission
    callback, so the same code runs inside the simulated multiserver
    stack (where the TCP server charges cycle costs around it), in the
    single-server and monolithic stack models, and directly in unit
    tests wired back-to-back.

    Crash-recovery behaviour follows the paper (Table I): listening
    sockets are trivially serializable ({!listening_ports}) and are the
    only thing a restarted TCP server restores; established connections
    are lost (their peers receive RSTs when they next transmit).
    {!established_tuples} exports the live 4-tuples so a restarted
    packet filter can rebuild its connection tracking by querying TCP
    (Section V-D). *)

type t
(** A TCP instance (one per host stack). *)

type pcb
(** A protocol control block: one connection. *)

type state =
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val pp_state : Format.formatter -> state -> unit

val state_code : state -> int
(** Stable integer code (0–10, declaration order) used when a state
    crosses the [Newt_channels.Hook] TCP event boundary — that library
    sits below this one and cannot name {!state}. *)

val state_of_code : int -> state
(** Inverse of {!state_code}; raises [Invalid_argument] on out-of-range
    codes. *)

type event =
  | Connected  (** Three-way handshake completed (active open). *)
  | Accepted  (** Handshake completed on a listener (passive open). *)
  | Readable  (** New data (or EOF) available to {!recv}. *)
  | Writable  (** Send-buffer space freed. *)
  | Closed_normally  (** Both directions closed cleanly. *)
  | Reset  (** Connection aborted (RST received or too many RTOs). *)

type env = {
  now : unit -> int;  (** Current time, cycles. *)
  set_timer : int -> (unit -> unit) -> unit -> unit;
      (** [set_timer delay f] arms a one-shot timer and returns its
          cancel function. *)
  emit : src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Tcp_wire.header -> payload:Bytes.t -> unit;
      (** Hand a segment to the IP layer. *)
  random : int -> int;  (** Uniform draw in [0, bound); for ISS. *)
}

type config = {
  mss : int;  (** Our advertised MSS (1460 for Ethernet). *)
  tso_segment : int;
      (** Largest segment handed to [emit] when TSO is enabled (e.g.
          65535); 0 disables TSO and caps segments at the MSS. *)
  snd_buf : int;  (** Send buffer bytes per connection. *)
  rcv_buf : int;  (** Receive buffer bytes per connection. *)
  rto_init : int;  (** Initial retransmission timeout, cycles. *)
  rto_min : int;
  rto_max : int;
  delack_timeout : int;  (** Delayed-ACK flush timeout, cycles. *)
  msl : int;  (** Maximum segment lifetime (TIME_WAIT = 2×MSL). *)
  max_retries : int;  (** RTO backoffs before giving up (Reset). *)
  use_wscale : bool;  (** Negotiate the window-scale option. *)
}

val default_config : config
(** 1460-byte MSS, no TSO, 256 KiB buffers, 200 ms min RTO, windows
    scaled, times expressed at the simulator's 1.9 GHz clock. *)

val create : ?config:config -> env -> t

(** {1 Opening and closing} *)

val listen : t -> port:int -> on_accept:(pcb -> unit) -> unit
(** Open a listening socket. Raises [Invalid_argument] if the port is
    already bound. *)

val unlisten : t -> port:int -> unit

val connect :
  t ->
  src:Addr.Ipv4.t ->
  dst:Addr.Ipv4.t ->
  dst_port:int ->
  ?src_port:int ->
  unit ->
  pcb
(** Active open; an ephemeral source port is chosen when none is
    given. *)

val port_in_use :
  t ->
  local_ip:Addr.Ipv4.t ->
  port:int ->
  remote_ip:Addr.Ipv4.t ->
  remote_port:int ->
  bool
(** Whether the four-tuple already names a connection — the membership
    probe external port selectors (the sharded stack's
    {!Newt_scale.Shard_map.port_for_shard}) use to avoid handing out a
    port that is still bound. *)

val close : pcb -> unit
(** Orderly close: sends FIN once queued data drains. *)

val abort : pcb -> unit
(** Send RST and discard the connection. *)

(** {1 Data transfer} *)

val send : pcb -> Bytes.t -> int
(** Queue bytes; returns how many fit in the send buffer. *)

val recv : pcb -> max:int -> Bytes.t
(** Drain up to [max] bytes of in-order received data. *)

val recv_eof : pcb -> bool
(** The peer closed its direction and all its data has been drained. *)

val send_space : pcb -> int
val recv_available : pcb -> int

(** {1 Input from the network} *)

val input :
  t -> src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Tcp_wire.header -> payload:Bytes.t -> unit
(** Deliver a received segment (already checksum-validated by the
    caller). Segments that match no connection are answered with RST,
    per RFC 793. *)

(** {1 Inspection} *)

val state : pcb -> state
val set_handler : pcb -> (event -> unit) -> unit

val flight_size : pcb -> int
(** Bytes (and FIN) sent but not yet cumulatively acknowledged. *)

val snd_window : pcb -> int
(** The peer's advertised (scaled) window. *)

val rtx_armed : pcb -> bool
(** Whether the retransmission timer is running. *)

val ooo_count : pcb -> int
(** Out-of-order segments buffered on the receive side. *)

val snd_unacked : pcb -> int
(** Oldest unacknowledged sequence number. *)

val snd_next : pcb -> int
(** Next sequence number to send. *)

val rcv_next : pcb -> int
(** Next expected receive sequence number. *)

val local_addr : pcb -> Addr.Ipv4.t * int
val remote_addr : pcb -> Addr.Ipv4.t * int
val effective_mss : pcb -> int
val cwnd : pcb -> int
val srtt : pcb -> int option
(** Smoothed RTT estimate in cycles, once at least one sample exists. *)

type stats = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable retransmits : int;
  mutable dup_segs_in : int;  (** Received segments fully below rcv_nxt. *)
  mutable rsts_out : int;
  mutable rsts_in : int;
}

val stats : t -> stats

val listening_ports : t -> int list
(** The serializable listener state (for the storage server). *)

val established_tuples : t -> (Addr.Ipv4.t * int * Addr.Ipv4.t * int) list
(** Live connections, for packet-filter conntrack recovery. *)

val connection_count : t -> int

val shutdown_all : t -> unit
(** Drop every connection and listener without emitting anything — the
    moment of a TCP server crash. Each dropped PCB reports a
    crash-caused transition to Closed through the hook family, so the
    conformance checker's shadow table follows Table I semantics. *)

(** {1 Conformance sabotage}

    Negative controls for [Newt_verify.Tcpfsm]: each mode plants the
    paper's §V-B bug class — answering traffic from the wrong protocol
    state — and must fail through the checker, never silently pass. *)

type sabotage =
  | Stale_established
      (** After a crash, {!resurrect} forges Established PCBs with no
          handshake behind them, so peers of the dead incarnation see
          a stale Established transition instead of RST-from-Closed. *)
  | Ack_from_closed
      (** Segments for a closed port are answered with a bare ACK
          instead of the RST that RFC 793 and Table I demand. *)

val set_sabotage : t -> sabotage option -> unit
(** Arm or clear a sabotage mode on this engine. *)

val resurrect : t -> (Addr.Ipv4.t * int * Addr.Ipv4.t * int) list -> unit
(** Forge an Established PCB for each 4-tuple not already present —
    the [Stale_established] payload, fed with the tuples captured
    before the crash. Each forged PCB reports a Closed→Established
    transition the checker's transition relation must reject. *)
