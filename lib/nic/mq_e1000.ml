module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Registry = Newt_channels.Registry
module Rich_ptr = Newt_channels.Rich_ptr
module Addr = Newt_net.Addr
module Ethernet = Newt_net.Ethernet
module Ipv4 = Newt_net.Ipv4

type tx_desc = {
  chain : Rich_ptr.chain;
  csum_offload : bool;
  tso : bool;
  tso_mss : int;
  tx_cookie : int;
}

type rx_desc = { buf : Rich_ptr.t; rx_cookie : int }
type rx_completion = { rx_buf : Rich_ptr.t; len : int; cookie : int }
type irq_reason = Rx_done of int | Tx_done of int | Link_change

let dummy_tx =
  { chain = []; csum_offload = false; tso = false; tso_mss = 0; tx_cookie = -1 }

let dummy_rx =
  { buf = { Rich_ptr.pool = -1; slot = -1; off = 0; len = 0; gen = -1 }; rx_cookie = -1 }

type queue = {
  tx_ring : tx_desc Ring.t;
  rx_ring : rx_desc Ring.t;
  rx_lens : int Queue.t;  (* frame lengths, in completion order *)
  mutable tx_active : bool;
  mutable q_rx_packets : int;
  mutable q_unsafe : bool;  (* DMA fenced off for just this queue *)
}

type t = {
  engine : Engine.t;
  registry : Registry.t;
  link : Link.t;
  side : Link.side;
  mac : Addr.Mac.t;
  rss : Rss.t;
  qs : queue array;
  irq_delay : Time.cycles;
  reset_time : Time.cycles;
  mutable irq_handler : irq_reason -> unit;
  mutable rx_writer : (Rich_ptr.t -> Bytes.t -> unit) option;
  mutable irq_scheduled : bool;
  mutable pending_irqs : irq_reason list;
  mutable unsafe : bool;
  mutable link_admin_up : bool;
  (* Flow -> queue journal: the NIC half of the affinity invariant. *)
  flow_queues : (int * int * int * int, int) Hashtbl.t;
  mutable violations : int;
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable rx_no_buffer : int;
}

let raise_irq t reason =
  if not (List.mem reason t.pending_irqs) then
    t.pending_irqs <- reason :: t.pending_irqs;
  if not t.irq_scheduled then begin
    t.irq_scheduled <- true;
    ignore
      (Engine.schedule t.engine t.irq_delay (fun () ->
           t.irq_scheduled <- false;
           let irqs = List.rev t.pending_irqs in
           t.pending_irqs <- [];
           List.iter t.irq_handler irqs))
  end

(* Parse just enough of the frame to steer it: Ethernet, IPv4, and for
   TCP/UDP the first four L4 bytes (the ports). Everything else is
   "default queue" traffic. *)
let classify frame =
  match Ethernet.decode_header frame ~off:0 with
  | Some { Ethernet.ethertype = Ethernet.Ipv4; _ } -> (
      match Ipv4.decode_header frame ~off:14 with
      | Some ih when Bytes.length frame >= 14 + 20 + 4 -> (
          match ih.Ipv4.protocol with
          | Ipv4.Tcp | Ipv4.Udp ->
              let sport = Bytes.get_uint16_be frame (14 + 20) in
              let dport = Bytes.get_uint16_be frame (14 + 22) in
              Some (ih.Ipv4.src, sport, ih.Ipv4.dst, dport)
          | Ipv4.Icmp | Ipv4.Unknown _ -> None)
      | Some _ | None -> None)
  | Some _ | None -> None

let ip_int a = Int32.to_int (Addr.Ipv4.to_int32 a) land 0xFFFFFFFF

(* The same canonical key the RSS hash uses, so one flow = one entry. *)
let flow_key (src, sport, dst, dport) =
  let a = (ip_int src, sport) and b = (ip_int dst, dport) in
  let (i1, p1), (i2, p2) = if a <= b then (a, b) else (b, a) in
  (i1, p1, i2, p2)

let steer t frame =
  match classify frame with
  | None -> 0
  | Some ((src, sport, dst, dport) as tuple) ->
      let q = Rss.queue_of t.rss ~src ~sport ~dst ~dport in
      let key = flow_key tuple in
      (match Hashtbl.find_opt t.flow_queues key with
      | None -> Hashtbl.replace t.flow_queues key q
      | Some q' when q' = q -> ()
      | Some _ ->
          t.violations <- t.violations + 1;
          Hashtbl.replace t.flow_queues key q);
      q

let on_rx t frame =
  if not t.unsafe then begin
    let qi = steer t frame in
    let q = t.qs.(qi) in
    if q.q_unsafe then t.rx_no_buffer <- t.rx_no_buffer + 1
    else
    match Ring.device_take q.rx_ring with
    | None -> t.rx_no_buffer <- t.rx_no_buffer + 1
    | Some desc -> (
        match t.rx_writer with
        | None -> t.rx_no_buffer <- t.rx_no_buffer + 1
        | Some write ->
            write desc.buf frame;
            Queue.push (Bytes.length frame) q.rx_lens;
            t.rx_packets <- t.rx_packets + 1;
            q.q_rx_packets <- q.q_rx_packets + 1;
            Ring.device_complete q.rx_ring;
            raise_irq t (Rx_done qi))
  end

let create engine ~registry ~link ~side ~mac ~rss ?(ring_size = 256) ?irq_delay
    ?reset_time () =
  let irq_delay =
    match irq_delay with Some d -> d | None -> Time.of_micros 10.0
  in
  let reset_time =
    match reset_time with Some r -> r | None -> Time.of_seconds 1.2
  in
  let mk_queue () =
    {
      tx_ring = Ring.create ~size:ring_size ~dummy:dummy_tx;
      rx_ring = Ring.create ~size:ring_size ~dummy:dummy_rx;
      rx_lens = Queue.create ();
      tx_active = false;
      q_rx_packets = 0;
      q_unsafe = false;
    }
  in
  let t =
    {
      engine;
      registry;
      link;
      side;
      mac;
      rss;
      qs = Array.init (Rss.queues rss) (fun _ -> mk_queue ());
      irq_delay;
      reset_time;
      irq_handler = (fun _ -> ());
      rx_writer = None;
      irq_scheduled = false;
      pending_irqs = [];
      unsafe = false;
      link_admin_up = true;
      flow_queues = Hashtbl.create 64;
      violations = 0;
      tx_packets = 0;
      rx_packets = 0;
      rx_no_buffer = 0;
    }
  in
  Link.attach link side (fun frame -> on_rx t frame);
  t

let mac t = t.mac
let queues t = Array.length t.qs
let rss t = t.rss
let set_irq_handler t f = t.irq_handler <- f
let set_rx_writer t f = t.rx_writer <- Some f

(* Per-queue TX pump onto the shared wire. Retries at roughly the
   serialization time of one full frame on the configured link rate. *)
let rec tx_pump t qi =
  let q = t.qs.(qi) in
  if t.unsafe || q.q_unsafe || not t.link_admin_up then q.tx_active <- false
  else
    match Ring.device_take q.tx_ring with
    | None -> q.tx_active <- false
    | Some desc ->
        let frames =
          match Registry.gather t.registry desc.chain with
          | frame ->
              if desc.tso then Offload.tso_split frame ~mss:desc.tso_mss
              else begin
                if desc.csum_offload then ignore (Offload.finalize_l4_checksum frame);
                [ frame ]
              end
          | exception (Registry.Unknown_pool _ | Newt_channels.Pool.Stale_pointer _)
            ->
              (* The buffers died under the device (owner crash mid
                 flight): drop the frame, complete the descriptor. *)
              []
        in
        send_frames t qi desc frames

and send_frames t qi desc = function
  | [] ->
      let q = t.qs.(qi) in
      Ring.device_complete q.tx_ring;
      raise_irq t (Tx_done qi);
      tx_pump t qi
  | frame :: rest ->
      if Link.transmit t.link ~from:t.side frame then begin
        t.tx_packets <- t.tx_packets + 1;
        send_frames t qi desc rest
      end
      else if Link.is_up t.link then
        ignore
          (Engine.schedule t.engine (Time.of_micros 2.0) (fun () ->
               send_frames t qi desc (frame :: rest)))
      else send_frames t qi desc rest

let post_tx t ~queue desc = Ring.post t.qs.(queue).tx_ring desc

let doorbell_tx t ~queue =
  let q = t.qs.(queue) in
  if (not q.tx_active) && (not t.unsafe) && (not q.q_unsafe) && t.link_admin_up
  then begin
    q.tx_active <- true;
    tx_pump t queue
  end

let post_rx t ~queue desc = Ring.post t.qs.(queue).rx_ring desc
let reap_tx t ~queue = Ring.reap t.qs.(queue).tx_ring

let reap_rx t ~queue =
  let q = t.qs.(queue) in
  match Ring.reap q.rx_ring with
  | None -> None
  | Some desc ->
      let len =
        match Queue.take_opt q.rx_lens with
        | Some l -> l
        | None -> desc.buf.Rich_ptr.len
      in
      Some { rx_buf = desc.buf; len; cookie = desc.rx_cookie }

let tx_ring_free t ~queue = Ring.free_slots t.qs.(queue).tx_ring
let rx_ring_free t ~queue = Ring.free_slots t.qs.(queue).rx_ring
let mark_unsafe t = t.unsafe <- true
let mark_queue_unsafe t ~queue = t.qs.(queue).q_unsafe <- true

(* Restart-aware per-queue recovery: reprogramming one queue's rings
   needs no link renegotiation, so the other queues keep forwarding
   while a crashed owner reclaims just its slice of the device. *)
let reset_queue t ~queue =
  let q = t.qs.(queue) in
  ignore (Ring.clear q.tx_ring);
  ignore (Ring.clear q.rx_ring);
  Queue.clear q.rx_lens;
  q.tx_active <- false;
  q.q_unsafe <- false

let reset t =
  Array.iter
    (fun q ->
      ignore (Ring.clear q.tx_ring);
      ignore (Ring.clear q.rx_ring);
      Queue.clear q.rx_lens;
      q.tx_active <- false;
      q.q_unsafe <- false)
    t.qs;
  Hashtbl.reset t.flow_queues;
  t.unsafe <- false;
  t.link_admin_up <- false;
  Link.set_up t.link false;
  ignore
    (Engine.schedule t.engine t.reset_time (fun () ->
         t.link_admin_up <- true;
         Link.set_up t.link true;
         raise_irq t Link_change))

let link_up t = t.link_admin_up && Link.is_up t.link
let tx_packets t = t.tx_packets
let rx_packets t = t.rx_packets
let rx_no_buffer t = t.rx_no_buffer
let rx_queue_packets t = Array.map (fun q -> q.q_rx_packets) t.qs
let steering_violations t = t.violations
