(** A multi-queue Ethernet device: the e1000 model extended with N
    TX/RX descriptor-ring pairs and an {!Rss} engine.

    Received frames are classified (Ethernet/IPv4/L4 ports), hashed
    through the RSS indirection table and completed on the selected RX
    queue; non-IP and non-TCP/UDP traffic lands on queue 0. Each queue
    raises its own interrupt reason, so a driver can fan completions out
    to per-shard protocol servers without touching the others' cache
    lines. TX descriptors are posted per queue; all queues serialize
    onto the same wire (the link models the shared PHY).

    The device keeps a flow→queue journal and counts {e steering
    violations} — a flow observed on two different queues — which is the
    NIC half of the flow→shard affinity invariant the scale layer
    asserts. *)

type t

type tx_desc = {
  chain : Newt_channels.Rich_ptr.chain;
  csum_offload : bool;
  tso : bool;
  tso_mss : int;
  tx_cookie : int;
}

type rx_desc = { buf : Newt_channels.Rich_ptr.t; rx_cookie : int }
type rx_completion = { rx_buf : Newt_channels.Rich_ptr.t; len : int; cookie : int }

type irq_reason =
  | Rx_done of int  (** Queue index. *)
  | Tx_done of int  (** Queue index. *)
  | Link_change

val create :
  Newt_sim.Engine.t ->
  registry:Newt_channels.Registry.t ->
  link:Link.t ->
  side:Link.side ->
  mac:Newt_net.Addr.Mac.t ->
  rss:Rss.t ->
  ?ring_size:int ->
  ?irq_delay:Newt_sim.Time.cycles ->
  ?reset_time:Newt_sim.Time.cycles ->
  unit ->
  t
(** The queue count is [Rss.queues rss]. *)

val mac : t -> Newt_net.Addr.Mac.t
val queues : t -> int
val rss : t -> Rss.t

val set_irq_handler : t -> (irq_reason -> unit) -> unit
val set_rx_writer : t -> (Newt_channels.Rich_ptr.t -> Bytes.t -> unit) -> unit

val post_tx : t -> queue:int -> tx_desc -> bool
val doorbell_tx : t -> queue:int -> unit
val post_rx : t -> queue:int -> rx_desc -> bool
val reap_tx : t -> queue:int -> tx_desc option
val reap_rx : t -> queue:int -> rx_completion option
val tx_ring_free : t -> queue:int -> int
val rx_ring_free : t -> queue:int -> int

val mark_unsafe : t -> unit
val reset : t -> unit

val mark_queue_unsafe : t -> queue:int -> unit
(** Fence DMA off for one queue only (the owner of that slice of the
    device crashed); the other queues keep forwarding. *)

val reset_queue : t -> queue:int -> unit
(** Reprogram one queue's rings and lift its fence. Unlike [reset]
    this keeps the link up: per-queue recovery needs no renegotiation,
    which is what makes replica restart invisible to other shards. *)

val link_up : t -> bool

val tx_packets : t -> int
val rx_packets : t -> int
val rx_no_buffer : t -> int

val rx_queue_packets : t -> int array
(** Per-queue received-frame counters (the imbalance picture). *)

val steering_violations : t -> int
(** Flows seen on more than one RX queue since the last reset — 0 on a
    correctly programmed device. *)
