module Addr = Newt_net.Addr

type t = {
  key : int array;  (* secret key bytes; 96 input bits + 32 window bits *)
  nqueues : int;
  mutable table : int array;
}

(* A deterministic key stream: xorshift over the seed. Quality only has
   to be "spreads real port numbers around", not cryptographic. *)
let gen_key ~seed ~len =
  let s = ref (0x9E3779B9 lxor ((seed + 1) * 0x01000193)) in
  Array.init len (fun _ ->
      let x = !s in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      s := x land 0x3FFFFFFFFFFFFFF;
      !s land 0xff)

let create ?(seed = 0x5ca1e) ~queues ?(buckets = 128) () =
  if queues <= 0 then invalid_arg "Rss.create: queues must be positive";
  if buckets <= 0 then invalid_arg "Rss.create: buckets must be positive";
  {
    key = gen_key ~seed ~len:16;
    nqueues = queues;
    table = Array.init buckets (fun i -> i mod queues);
  }

let queues t = t.nqueues
let buckets t = Array.length t.table

let ip_int a = Int32.to_int (Addr.Ipv4.to_int32 a) land 0xFFFFFFFF

(* The Toeplitz construction: for every set bit of the input, XOR in the
   32-bit window of the key starting at that bit position. *)
let toeplitz key input_bytes =
  let key_bit j = (key.(j / 8) lsr (7 - (j mod 8))) land 1 in
  let window = ref 0 in
  for j = 0 to 31 do
    window := (!window lsl 1) lor key_bit j
  done;
  let result = ref 0 in
  let nbits = 8 * Array.length input_bytes in
  for i = 0 to nbits - 1 do
    let bit = (input_bytes.(i / 8) lsr (7 - (i mod 8))) land 1 in
    if bit = 1 then result := !result lxor !window;
    window := ((!window lsl 1) land 0xFFFFFFFF) lor key_bit (i + 32)
  done;
  !result

let hash t ~src ~sport ~dst ~dport =
  (* Canonical endpoint order makes the hash direction-agnostic. *)
  let a = (ip_int src, sport land 0xffff) and b = (ip_int dst, dport land 0xffff) in
  let (ip1, p1), (ip2, p2) = if a <= b then (a, b) else (b, a) in
  let input = Array.make 12 0 in
  let put32 off v =
    input.(off) <- (v lsr 24) land 0xff;
    input.(off + 1) <- (v lsr 16) land 0xff;
    input.(off + 2) <- (v lsr 8) land 0xff;
    input.(off + 3) <- v land 0xff
  in
  let put16 off v =
    input.(off) <- (v lsr 8) land 0xff;
    input.(off + 1) <- v land 0xff
  in
  put32 0 ip1;
  put32 4 ip2;
  put16 8 p1;
  put16 10 p2;
  toeplitz t.key input

let queue_of t ~src ~sport ~dst ~dport =
  t.table.(hash t ~src ~sport ~dst ~dport mod Array.length t.table)

let table t = Array.copy t.table

let set_table t table =
  if Array.length table <> Array.length t.table then
    invalid_arg "Rss.set_table: wrong table length";
  Array.iter
    (fun q ->
      if q < 0 || q >= t.nqueues then invalid_arg "Rss.set_table: queue out of range")
    table;
  t.table <- Array.copy table

let set_bucket t ~bucket ~queue =
  if bucket < 0 || bucket >= Array.length t.table then
    invalid_arg "Rss.set_bucket: bucket out of range";
  if queue < 0 || queue >= t.nqueues then
    invalid_arg "Rss.set_bucket: queue out of range";
  t.table.(bucket) <- queue
