(** Receive-side scaling: the NIC's flow-steering engine.

    A Toeplitz hash of the 4-tuple of every received TCP/UDP frame is
    folded through a programmable {e indirection table} onto one of the
    device's RX queues — the mechanism behind multi-queue NICs (and the
    scaling story the paper's discussion points at: several protocol
    server instances fed by several queues).

    Two deliberate deviations from the Microsoft RSS spec, both in the
    name of {e shard affinity}:

    - the hash is {e symmetric}: the two (address, port) endpoints are
      put in canonical order before hashing, so both directions of a
      flow — and, crucially, the host's own outbound picture of the
      flow — map to the same queue. A TCP shard that picked its source
      port against this very function is guaranteed to receive the
      flow's ACKs on its own queue;
    - the key is derived from a small seed rather than supplied as 40
      random bytes, keeping simulations deterministic. *)

type t

val create : ?seed:int -> queues:int -> ?buckets:int -> unit -> t
(** An RSS engine steering onto [queues] queues through a [buckets]-entry
    indirection table (default 128), initialized round-robin
    ([bucket i -> i mod queues]). *)

val queues : t -> int
val buckets : t -> int

val hash :
  t ->
  src:Newt_net.Addr.Ipv4.t ->
  sport:int ->
  dst:Newt_net.Addr.Ipv4.t ->
  dport:int ->
  int
(** The 32-bit symmetric Toeplitz hash of the canonicalized 4-tuple.
    [hash ~src ~sport ~dst ~dport = hash ~src:dst ~sport:dport
    ~dst:src ~dport:sport]. *)

val queue_of :
  t ->
  src:Newt_net.Addr.Ipv4.t ->
  sport:int ->
  dst:Newt_net.Addr.Ipv4.t ->
  dport:int ->
  int
(** [table.(hash mod buckets)] — where the device puts the frame. *)

val table : t -> int array
(** A copy of the indirection table. *)

val set_table : t -> int array -> unit
(** Reprogram the indirection table (length must equal [buckets], every
    entry in [0, queues)). Raises [Invalid_argument] otherwise. New
    flows land per the new table; this is the rebalancing knob. *)

val set_bucket : t -> bucket:int -> queue:int -> unit
