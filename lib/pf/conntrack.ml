module Addr = Newt_net.Addr

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Addr.Ipv4.t;
  local_port : int;
  remote_ip : Addr.Ipv4.t;
  remote_port : int;
}

type dir = [ `In | `Out ]

(* [confirmed] is the firewall's notion of "established". Seeing a
   reply is not enough to confirm: an inbound flood SYN provokes an
   automatic outbound RST (or SYN-ACK), so two-way traffic alone is
   exactly what an attacker gets for free. Confirmation requires the
   handshake shape — originator, reply, originator again — which a
   spoofed-source flood can never complete because the third packet
   must come from an address that actually received the reply.
   [orig_dir] is the creating direction, [replied] whether the other
   side has spoken. *)
type entry = {
  mutable last_seen : int;
  mutable confirmed : bool;
  mutable orig_dir : dir option;
  mutable replied : bool;
}

type t = {
  table : (flow, entry) Hashtbl.t;
  max_entries : int;
  mutable ev_half_open : int;
  mutable ev_established : int;
}

let default_max_entries = 65536

let create ?(max_entries = default_max_entries) () =
  if max_entries <= 0 then
    invalid_arg "Conntrack.create: max_entries must be positive";
  {
    table = Hashtbl.create 64;
    max_entries;
    ev_half_open = 0;
    ev_established = 0;
  }

let promote e (dir : dir option) =
  if not e.confirmed then
    match (dir, e.orig_dir) with
    | Some d, Some o ->
        if d <> o then e.replied <- true
        else if e.replied then e.confirmed <- true
    | Some _, None -> e.orig_dir <- dir
    | None, _ -> ()

(* At capacity an entry makes room for the fresh flow — but never an
   established one while any half-open entry remains: under a SYN
   flood the attacker's one-way entries must cannibalize each other,
   not the conntrack state the paper's recovery story exists to keep
   ("a firewall must not stop data on established outgoing TCP
   connections"). Within a class the least-recently-seen entry goes,
   as it is the one closest to its idle timeout anyway. *)
let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun f e acc ->
        match acc with
        | Some (_, best) when best.confirmed && not e.confirmed -> Some (f, e)
        | Some (_, best)
          when best.confirmed = e.confirmed && e.last_seen < best.last_seen ->
            Some (f, e)
        | Some _ -> acc
        | None -> Some (f, e))
      t.table None
  in
  match victim with
  | Some (f, e) ->
      if e.confirmed then t.ev_established <- t.ev_established + 1
      else t.ev_half_open <- t.ev_half_open + 1;
      Hashtbl.remove t.table f
  | None -> ()

let insert t ~now ?dir ?(confirmed = false) flow =
  match Hashtbl.find_opt t.table flow with
  | Some e ->
      e.last_seen <- now;
      if confirmed then e.confirmed <- true else promote e dir
  | None ->
      if Hashtbl.length t.table >= t.max_entries then evict_oldest t;
      Hashtbl.replace t.table flow
        { last_seen = now; confirmed; orig_dir = dir; replied = confirmed }

let seen t ~now ?dir flow =
  match Hashtbl.find_opt t.table flow with
  | Some e ->
      e.last_seen <- now;
      promote e dir;
      true
  | None -> false

let mem t flow = Hashtbl.mem t.table flow

let last_seen t flow =
  Option.map (fun e -> e.last_seen) (Hashtbl.find_opt t.table flow)

let confirmed t flow =
  Option.map (fun e -> e.confirmed) (Hashtbl.find_opt t.table flow)

let remove t flow = Hashtbl.remove t.table flow
let size t = Hashtbl.length t.table

let half_open_count t =
  Hashtbl.fold (fun _ e n -> if e.confirmed then n else n + 1) t.table 0

let capacity t = t.max_entries
let evicted_half_open t = t.ev_half_open
let evicted_established t = t.ev_established

let expire t ~now ~ttl =
  let doomed =
    Hashtbl.fold
      (fun f e acc -> if now - e.last_seen > ttl then f :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  List.length doomed

let export t =
  Hashtbl.fold (fun f e acc -> (f, e.last_seen, e.confirmed) :: acc) t.table []
  |> List.sort compare

let import t entries =
  Hashtbl.reset t.table;
  List.iter
    (fun (f, seen, confirmed) -> insert t ~now:seen ~confirmed f)
    entries

let clear t = Hashtbl.reset t.table

let flow_of_packet (p : Rule.packet) =
  let proto =
    match p.Rule.proto with
    | `Tcp -> Some Ct_tcp
    | `Udp -> Some Ct_udp
    | `Icmp | `Other -> None
  in
  match proto with
  | None -> None
  | Some proto -> (
      match p.Rule.dir with
      | `Out ->
          Some
            {
              proto;
              local_ip = p.Rule.src_ip;
              local_port = p.Rule.src_port;
              remote_ip = p.Rule.dst_ip;
              remote_port = p.Rule.dst_port;
            }
      | `In ->
          Some
            {
              proto;
              local_ip = p.Rule.dst_ip;
              local_port = p.Rule.dst_port;
              remote_ip = p.Rule.src_ip;
              remote_port = p.Rule.src_port;
            })
