module Addr = Newt_net.Addr

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Addr.Ipv4.t;
  local_port : int;
  remote_ip : Addr.Ipv4.t;
  remote_port : int;
}

type entry = { mutable last_seen : int }
type t = { table : (flow, entry) Hashtbl.t; max_entries : int }

let default_max_entries = 65536

let create ?(max_entries = default_max_entries) () =
  if max_entries <= 0 then
    invalid_arg "Conntrack.create: max_entries must be positive";
  { table = Hashtbl.create 64; max_entries }

(* At capacity the least-recently-seen entry makes room: a firewall
   must keep admitting fresh flows, and the coldest entry is the one
   closest to its idle timeout anyway. *)
let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun f e acc ->
        match acc with
        | Some (_, seen) when seen <= e.last_seen -> acc
        | _ -> Some (f, e.last_seen))
      t.table None
  in
  match victim with Some (f, _) -> Hashtbl.remove t.table f | None -> ()

let insert t ~now flow =
  match Hashtbl.find_opt t.table flow with
  | Some e -> e.last_seen <- now
  | None ->
      if Hashtbl.length t.table >= t.max_entries then evict_oldest t;
      Hashtbl.replace t.table flow { last_seen = now }

let seen t ~now flow =
  match Hashtbl.find_opt t.table flow with
  | Some e ->
      e.last_seen <- now;
      true
  | None -> false

let mem t flow = Hashtbl.mem t.table flow

let last_seen t flow =
  Option.map (fun e -> e.last_seen) (Hashtbl.find_opt t.table flow)

let remove t flow = Hashtbl.remove t.table flow
let size t = Hashtbl.length t.table
let capacity t = t.max_entries

let expire t ~now ~ttl =
  let doomed =
    Hashtbl.fold
      (fun f e acc -> if now - e.last_seen > ttl then f :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  List.length doomed

let export t =
  Hashtbl.fold (fun f e acc -> (f, e.last_seen) :: acc) t.table []
  |> List.sort compare

let import t entries =
  Hashtbl.reset t.table;
  List.iter (fun (f, seen) -> insert t ~now:seen f) entries

let clear t = Hashtbl.reset t.table

let flow_of_packet (p : Rule.packet) =
  let proto =
    match p.Rule.proto with
    | `Tcp -> Some Ct_tcp
    | `Udp -> Some Ct_udp
    | `Icmp | `Other -> None
  in
  match proto with
  | None -> None
  | Some proto -> (
      match p.Rule.dir with
      | `Out ->
          Some
            {
              proto;
              local_ip = p.Rule.src_ip;
              local_port = p.Rule.src_port;
              remote_ip = p.Rule.dst_ip;
              remote_port = p.Rule.dst_port;
            }
      | `In ->
          Some
            {
              proto;
              local_ip = p.Rule.dst_ip;
              local_port = p.Rule.dst_port;
              remote_ip = p.Rule.src_ip;
              remote_port = p.Rule.src_port;
            })
