(** Connection tracking: the packet filter's dynamic state.

    The paper calls this out as the interesting recovery case
    (Section V): the static ruleset is trivially restorable from the
    storage server, but "when a firewall blocks incoming traffic it must
    not stop data on established outgoing TCP connections after a
    restart" — so after a crash the filter rebuilds this table by
    querying the TCP and UDP servers ({!import}).

    Every entry carries a last-seen timestamp (simulated cycles,
    refreshed by {!seen}/{!insert}) so idle flows actually {e expire}:
    {!expire} sweeps entries idle longer than a TTL, and a hard
    capacity cap evicts rather than growing without bound.

    Entries are additionally classed {e half-open} or {e confirmed}: an
    entry stays half-open until its traffic shows the handshake shape
    (originator → reply → originator again, see {!seen}), or until it
    is inserted as already-established (the post-crash re-track path —
    transport servers only hold live connections).
    Eviction at capacity prefers half-open entries, so flood state
    cannibalizes itself instead of the established flows the recovery
    story exists to protect. {!export}/{!import} preserve both the
    timestamps and the confirmation bit, so a filter restart does not
    resurrect half-dead entries as freshly-seen nor launder flood
    entries into established ones. *)

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Newt_net.Addr.Ipv4.t;
  local_port : int;
  remote_ip : Newt_net.Addr.Ipv4.t;
  remote_port : int;
}

type dir = [ `In | `Out ]

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 65536) is a hard cap: inserting into a full
    table evicts — least-recently-seen half-open entries first,
    established flows only when no half-open entry remains. *)

val insert : t -> now:int -> ?dir:dir -> ?confirmed:bool -> flow -> unit
(** Track the flow (or refresh its last-seen time when already
    tracked). [dir] records the creating direction so later
    opposite-direction traffic confirms the entry; [confirmed] (default
    false) creates — or promotes — the entry as established outright,
    for flows re-tracked from a transport server's connection table. *)

val seen : t -> now:int -> ?dir:dir -> flow -> bool
(** Membership probe that refreshes the entry's last-seen time on a
    hit — the per-packet path: traffic keeps its flow's entry alive.
    [dir] drives confirmation: an entry is promoted when its
    originator speaks again {e after} a reply — the handshake shape
    (SYN, SYN-ACK, ACK). A lone reply is not enough, because an
    inbound flood SYN provokes an automatic RST/SYN-ACK; the third
    packet is the one a spoofed source can never send. *)

val mem : t -> flow -> bool
(** Pure membership, no timestamp refresh. *)

val last_seen : t -> flow -> int option

val confirmed : t -> flow -> bool option
(** Whether the tracked entry has been confirmed by two-way traffic
    ([None] when untracked). *)

val remove : t -> flow -> unit

val size : t -> int

val half_open_count : t -> int
(** How many tracked entries are still unconfirmed (O(n)). *)

val capacity : t -> int
(** The [max_entries] cap. *)

val evicted_half_open : t -> int
(** Running count of capacity evictions that hit a half-open entry. *)

val evicted_established : t -> int
(** Running count of capacity evictions that had to take an
    established entry — nonzero only when the table filled up with
    confirmed flows. *)

val expire : t -> now:int -> ttl:int -> int
(** Drop every entry idle longer than [ttl] (i.e. [now - last_seen >
    ttl]); returns how many were dropped. The filter server runs this
    periodically from its event loop. *)

val export : t -> (flow * int * bool) list
(** All tracked flows with their last-seen times and confirmation bits
    (deterministic order). *)

val import : t -> (flow * int * bool) list -> unit
(** Replace the table's contents, preserving the given last-seen times
    and confirmation bits — so restored entries are as close to expiry
    as they were when exported. Respects the capacity cap. *)

val clear : t -> unit

val flow_of_packet : Rule.packet -> flow option
(** The tracking key of a packet ([None] for untrackable protocols).
    Outgoing packets are keyed (src=local); incoming ones are flipped so
    both directions of a flow share one entry. *)
