(** Connection tracking: the packet filter's dynamic state.

    The paper calls this out as the interesting recovery case
    (Section V): the static ruleset is trivially restorable from the
    storage server, but "when a firewall blocks incoming traffic it must
    not stop data on established outgoing TCP connections after a
    restart" — so after a crash the filter rebuilds this table by
    querying the TCP and UDP servers ({!import}).

    Every entry carries a last-seen timestamp (simulated cycles,
    refreshed by {!seen}/{!insert}) so idle flows actually {e expire}:
    {!expire} sweeps entries idle longer than a TTL, and a hard
    capacity cap evicts the least-recently-seen entry rather than
    growing without bound. {!export}/{!import} preserve the
    timestamps, so a filter restart does not resurrect half-dead
    entries as freshly-seen. *)

type proto = Ct_tcp | Ct_udp

type flow = {
  proto : proto;
  local_ip : Newt_net.Addr.Ipv4.t;
  local_port : int;
  remote_ip : Newt_net.Addr.Ipv4.t;
  remote_port : int;
}

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 65536) is a hard cap: inserting into a full
    table evicts the least-recently-seen entry. *)

val insert : t -> now:int -> flow -> unit
(** Track the flow (or refresh its last-seen time when already
    tracked). *)

val seen : t -> now:int -> flow -> bool
(** Membership probe that refreshes the entry's last-seen time on a
    hit — the per-packet path: traffic keeps its flow's entry alive. *)

val mem : t -> flow -> bool
(** Pure membership, no timestamp refresh. *)

val last_seen : t -> flow -> int option

val remove : t -> flow -> unit

val size : t -> int

val capacity : t -> int
(** The [max_entries] cap. *)

val expire : t -> now:int -> ttl:int -> int
(** Drop every entry idle longer than [ttl] (i.e. [now - last_seen >
    ttl]); returns how many were dropped. The filter server runs this
    periodically from its event loop. *)

val export : t -> (flow * int) list
(** All tracked flows with their last-seen times (deterministic
    order). *)

val import : t -> (flow * int) list -> unit
(** Replace the table's contents, preserving the given last-seen times
    — so restored entries are as close to expiry as they were when
    exported. Respects the capacity cap. *)

val clear : t -> unit

val flow_of_packet : Rule.packet -> flow option
(** The tracking key of a packet ([None] for untrackable protocols).
    Outgoing packets are keyed (src=local); incoming ones are flipped so
    both directions of a flow share one entry. *)
