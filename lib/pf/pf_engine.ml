module Addr = Newt_net.Addr
module Wire = Newt_net.Wire

type t = { mutable ruleset : Rule.t list; ct : Conntrack.t; ttl : int }

type verdict = { action : Rule.action; rules_walked : int; state_hit : bool }

(* Long enough that a live-but-quiet flow survives the experiments'
   time scales; short enough that a dead flow's entry does not pin
   table space forever. *)
let default_ttl = Newt_sim.Time.of_seconds 30.0

let create ?(rules = [ Rule.pass_all ]) ?(ttl = default_ttl) ?max_entries () =
  if ttl <= 0 then invalid_arg "Pf_engine.create: ttl must be positive";
  { ruleset = rules; ct = Conntrack.create ?max_entries (); ttl }

let set_rules t rules = t.ruleset <- rules
let rules t = t.ruleset
let conntrack t = t.ct
let ttl t = t.ttl

let filter t ~now pkt =
  let flow = Conntrack.flow_of_packet pkt in
  let dir = pkt.Rule.dir in
  let state_hit =
    match flow with
    | Some f -> Conntrack.seen t.ct ~now ~dir f
    | None -> false
  in
  if state_hit then { action = Rule.Pass; rules_walked = 0; state_hit = true }
  else begin
    let rec walk rules walked last_match =
      match rules with
      | [] -> (last_match, walked)
      | r :: rest ->
          let walked = walked + 1 in
          if Rule.matches r pkt then
            if r.Rule.quick then (Some r, walked) else walk rest walked (Some r)
          else walk rest walked last_match
    in
    let matched, rules_walked = walk t.ruleset 0 None in
    match matched with
    | None -> { action = Rule.Pass; rules_walked; state_hit = false }
    | Some r ->
        if r.Rule.action = Rule.Pass && r.Rule.keep_state then
          Option.iter (Conntrack.insert t.ct ~now ~dir) flow;
        { action = r.Rule.action; rules_walked; state_hit = false }
  end

let sweep t ~now = Conntrack.expire t.ct ~now ~ttl:t.ttl

let classify ~dir b =
  if Bytes.length b < 20 || Wire.get_u8 b 0 <> 0x45 then None
  else begin
    let proto_code = Wire.get_u8 b 9 in
    let src_ip = Wire.get_ip b 12 and dst_ip = Wire.get_ip b 16 in
    let l4 = 20 in
    let proto, src_port, dst_port =
      match proto_code with
      | 6 when Bytes.length b >= l4 + 4 ->
          (`Tcp, Wire.get_u16 b l4, Wire.get_u16 b (l4 + 2))
      | 17 when Bytes.length b >= l4 + 4 ->
          (`Udp, Wire.get_u16 b l4, Wire.get_u16 b (l4 + 2))
      | 1 -> (`Icmp, 0, 0)
      | _ -> (`Other, 0, 0)
    in
    Some { Rule.dir; proto; src_ip; dst_ip; src_port; dst_port }
  end

let export_rules t = t.ruleset
let export_states t = Conntrack.export t.ct

let restore t ~rules ~states =
  t.ruleset <- rules;
  Conntrack.import t.ct states

let generate_ruleset rng ~n ~protect_port =
  assert (n >= 2);
  let noise =
    List.init (n - 2) (fun _ ->
        (* Block rules over the 198.18.0.0/15 benchmark space: real
           filtering work that never matches the measured flow. *)
        let octet () = Newt_sim.Rng.int rng 256 in
        let prefix = Addr.Ipv4.v (198 + Newt_sim.Rng.int rng 2) (octet ()) (octet ()) 0 in
        {
          Rule.action = Rule.Block;
          direction = Rule.Dir_both;
          proto = (if Newt_sim.Rng.bool rng then Rule.Match_tcp else Rule.Match_udp);
          src = Rule.Net { prefix; bits = 24 };
          src_port = Rule.Any_port;
          dst = Rule.Any_addr;
          dst_port = Rule.Port (1 + Newt_sim.Rng.int rng 65535);
          (* Quick, as firewall drop rules usually are — and necessary
             under last-match-wins with a trailing pass. *)
          quick = true;
          keep_state = false;
        })
  in
  let protect =
    {
      Rule.pass_all with
      Rule.proto = Rule.Match_tcp;
      dst_port = Rule.Port protect_port;
      quick = true;
      keep_state = true;
    }
  in
  noise @ [ protect; { Rule.pass_all with Rule.quick = false } ]
