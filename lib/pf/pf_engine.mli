(** The packet-filter engine: ruleset evaluation plus connection
    tracking, and the parsing of IP packets into match keys.

    The engine reports how many rules it traversed per decision so the
    simulated PF server can charge the corresponding cycle cost (the
    Figure 5 experiment recovers a 1024-rule configuration). *)

type t

type verdict = { action : Rule.action; rules_walked : int; state_hit : bool }

val create :
  ?rules:Rule.t list -> ?ttl:Newt_sim.Time.cycles -> ?max_entries:int -> unit -> t
(** Default ruleset: a single [pass_all]. [ttl] (default 30 s) is the
    conntrack idle timeout enforced by {!sweep}; [max_entries] caps the
    table (see {!Conntrack.create}). *)

val set_rules : t -> Rule.t list -> unit
val rules : t -> Rule.t list
val conntrack : t -> Conntrack.t

val ttl : t -> Newt_sim.Time.cycles

val filter : t -> now:Newt_sim.Time.cycles -> Rule.packet -> verdict
(** Decide a packet's fate. A conntrack hit passes without walking the
    ruleset (and refreshes the entry's last-seen time); a passing
    [keep_state] match inserts a tracking entry stamped [now]. With no
    matching rule the packet passes (PF's implicit default). *)

val sweep : t -> now:Newt_sim.Time.cycles -> int
(** Expire conntrack entries idle longer than the engine's TTL;
    returns how many were dropped. The PF server schedules this
    periodically from its event loop. *)

val classify :
  dir:[ `In | `Out ] -> Bytes.t -> Rule.packet option
(** Parse an IPv4 packet (starting at the IP header) into a match key.
    [None] for packets too mangled to classify — which the caller should
    block. *)

(** {1 Recovery support} *)

val export_rules : t -> Rule.t list
(** The static configuration, as saved to the storage server. *)

val export_states : t -> (Conntrack.flow * Newt_sim.Time.cycles * bool) list
(** Tracked flows with their last-seen times and confirmation bits —
    what the PF server snapshots to storage, so a restart does not
    resurrect idle entries as freshly-seen (nor flood entries as
    established). *)

val restore :
  t ->
  rules:Rule.t list ->
  states:(Conntrack.flow * Newt_sim.Time.cycles * bool) list ->
  unit
(** Rebuild after a crash: rules from storage, states (with their
    preserved last-seen times) from the snapshot and/or from querying
    the transport servers. *)

(** {1 Ruleset generators (for experiments)} *)

val generate_ruleset :
  Newt_sim.Rng.t -> n:int -> protect_port:int -> Rule.t list
(** A realistic [n]-rule configuration: [n-2] random block rules over
    unused address space, a keep-state pass for traffic involving
    [protect_port], and a final default pass. Used to reproduce the
    1024-rule recovery of Figure 5. *)
