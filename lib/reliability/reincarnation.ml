module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Machine = Newt_hw.Machine
module Component = Newt_stack.Component

type watched = {
  comp : Component.t;
  notify_crash : (unit -> unit) list;
  notify_restart : (unit -> unit) list;
  mutable restarting : bool;
  mutable restarts : int;
}

type t = {
  machine : Machine.t;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
  mutable watched : watched list;
  mutable total_restarts : int;
  mutable mid_recovery_crashes : int;
  mutable on_reincarnated : (Component.t -> unit) list;
      (* registration order; composed, never replaced *)
}

let create machine ?heartbeat_period ?restart_delay () =
  (* The paper's figures live in one place: Component.Defaults. *)
  let heartbeat_period =
    match heartbeat_period with
    | Some p -> p
    | None -> Component.Defaults.heartbeat_period
  in
  let restart_delay =
    match restart_delay with
    | Some d -> d
    | None -> Component.Defaults.restart_delay
  in
  {
    machine;
    heartbeat_period;
    restart_delay;
    watched = [];
    total_restarts = 0;
    mid_recovery_crashes = 0;
    on_reincarnated = [];
  }

(* Composes: earlier callbacks keep firing (registration order). The
   old one-slot behavior silently dropped whatever a previous caller —
   say, the continuous verifier — had installed. *)
let set_on_reincarnated t f = t.on_reincarnated <- t.on_reincarnated @ [ f ]

let watch t comp ?(notify_crash = []) ?(notify_restart = []) () =
  t.watched <-
    t.watched
    @ [ { comp; notify_crash; notify_restart; restarting = false; restarts = 0 } ]

let engine t = Machine.engine t.machine

let rec recover t w =
  if not w.restarting then begin
    w.restarting <- true;
    (* Neighbours learn about the death first: channels to the corpse
       are invalid, outstanding requests must be aborted. *)
    List.iter (fun f -> f ()) w.notify_crash;
    ignore
      (Engine.schedule (engine t) t.restart_delay (fun () ->
           w.restarting <- false;
           w.restarts <- w.restarts + 1;
           t.total_restarts <- t.total_restarts + 1;
           (* The new incarnation runs its own recovery procedure
              (restore state from storage, revive channels)... *)
           Component.restart w.comp;
           if not (Component.alive w.comp) then begin
             (* The new incarnation died inside its own recovery
                procedure (an injected crash point, or genuinely broken
                recovery code). The parent gets the signal again;
                neighbours must not resubmit against the corpse —
                repeat the whole procedure instead. *)
             t.mid_recovery_crashes <- t.mid_recovery_crashes + 1;
             recover t w
           end
           else begin
             (* ... and then the neighbours re-export, reattach and
                resubmit (Section IV-D). *)
             List.iter (fun f -> f ()) w.notify_restart;
             (* Recovery is complete and advertised: the continuous
                verifier re-checks the live topology here. *)
             List.iter (fun f -> f w.comp) t.on_reincarnated
           end))
  end

let find t comp =
  List.find_opt (fun w -> Component.pid w.comp = Component.pid comp) t.watched

let kill t comp =
  match find t comp with
  | None -> ()
  | Some w ->
      if Component.alive comp then Component.crash comp;
      (* The parent receives the signal immediately. *)
      recover t w

let rec heartbeat_round t =
  ignore
    (Engine.schedule (engine t) t.heartbeat_period (fun () ->
         List.iter
           (fun w ->
             if not w.restarting then
               if not (Component.alive w.comp) then
                 (* Died without us noticing (shouldn't happen — the
                    signal path handles it — but belt and braces). *)
                 recover t w
               else if not (Component.responsive w.comp) then begin
                 (* Hung: no heartbeat reply. Reset it. *)
                 Component.crash w.comp;
                 recover t w
               end)
           t.watched;
         heartbeat_round t))

let start t = heartbeat_round t

let restarts t = t.total_restarts
let mid_recovery_crashes t = t.mid_recovery_crashes

let restarts_of t comp =
  match find t comp with Some w -> w.restarts | None -> 0

let restarting t comp =
  match find t comp with Some w -> w.restarting | None -> false

let alive_check t = List.for_all (fun w -> Component.responsive w.comp) t.watched
