(** The reincarnation server.

    "All system servers are children of the same reincarnation server
    which receives a signal when a server crashes, or resets it when it
    stops responding to periodic heartbeats" (Section V-D). This module
    watches a set of {!Newt_stack.Component} servers:

    - a crash is noticed immediately (the parent gets the signal) and a
      restart is scheduled after the component reload time;
    - a hang is noticed at the next heartbeat round (the probe goes
      unanswered) and handled by a reset: crash-then-restart.

    Restarting runs, in order: the component's crash-notification hooks
    at its neighbours, the component restart
    ({!Newt_stack.Component.restart}, which runs the generic lifecycle
    plus the component's own recovery hooks), and the neighbours'
    restart hooks — the dependency dance of Section IV-D. *)

type t

val create :
  Newt_hw.Machine.t ->
  ?heartbeat_period:Newt_sim.Time.cycles ->
  ?restart_delay:Newt_sim.Time.cycles ->
  unit ->
  t
(** Defaults come from {!Newt_stack.Component.Defaults}: 100 ms
    heartbeats, 120 ms restart (reload + reinit). *)

val watch :
  t ->
  Newt_stack.Component.t ->
  ?notify_crash:(unit -> unit) list ->
  ?notify_restart:(unit -> unit) list ->
  unit ->
  unit
(** Supervise a component. [notify_crash] hooks run right after the
    crash is detected (neighbours abort in-flight requests);
    [notify_restart] hooks run right after the component's own recovery
    (neighbours resubmit). *)

val start : t -> unit
(** Begin the heartbeat rounds. *)

val set_on_reincarnated : t -> (Newt_stack.Component.t -> unit) -> unit
(** Register a callback fired after a supervised component finished a
    full recovery — restart, republish, and the neighbours'
    [notify_restart] hooks all done. This is the continuous verifier's
    trigger: the live topology is re-checked at exactly this point,
    after every reincarnation. Callbacks {e compose}: every registered
    callback fires, in registration order — a later caller does not
    silently drop an earlier one's. *)

val kill : t -> Newt_stack.Component.t -> unit
(** Inject a crash (as the fault-injection tool does) and let the
    supervision machinery recover it. *)

val restarts : t -> int
(** Total restarts performed. *)

val mid_recovery_crashes : t -> int
(** How many times a supervised component died {e inside} its own
    recovery procedure (observed dead right after
    {!Newt_stack.Component.restart} returned) — each such death
    repeats the whole recovery rather than letting neighbours resubmit
    against a corpse. The model checker's crash-at-step injector shows
    up here. *)

val restarts_of : t -> Newt_stack.Component.t -> int

val restarting : t -> Newt_stack.Component.t -> bool
(** Whether the component is currently between crash detection and its
    scheduled restart. A fault injected in this window is absorbed: the
    component is already dead and a recovery is already scheduled. *)

val alive_check : t -> bool
(** All supervised components currently responsive. *)
