type t = { table : (string * string, string) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let put t ~owner ~key v = Hashtbl.replace t.table (owner, key) v
let get t ~owner ~key = Hashtbl.find_opt t.table (owner, key)
let delete t ~owner ~key = Hashtbl.remove t.table (owner, key)

let owner_view t ~owner =
  ((fun key v -> put t ~owner ~key v), fun key -> get t ~owner ~key)

let crash t = Hashtbl.reset t.table
let entries t = Hashtbl.length t.table

(* Export/import: snapshot one owner's namespace so a supervisor can
   hand state written by incarnation [k] to incarnation [k+n] — even
   across a crash of the storage process itself. The snapshot is
   sorted so round-trips are deterministic. *)

let export t ~owner =
  Hashtbl.fold
    (fun (o, key) v acc -> if o = owner then (key, v) :: acc else acc)
    t.table []
  |> List.sort compare

let import t ~owner pairs =
  List.iter (fun (key, v) -> put t ~owner ~key v) pairs
