(** The storage server.

    "A transparent restart is not possible unless we can preserve the
    server's state and we therefore run a storage process dedicated to
    storing interesting state of other components as key and value
    pairs" (Section V-D). Each component saves under its own namespace;
    restarted components ask for their old state back.

    The storage process can itself crash: its contents vanish and
    "every other server has to store its state again" — {!crash}
    empties the store and the reincarnation layer then asks components
    to re-persist. *)

type t

val create : unit -> t

val put : t -> owner:string -> key:string -> string -> unit
val get : t -> owner:string -> key:string -> string option
val delete : t -> owner:string -> key:string -> unit

val owner_view :
  t -> owner:string -> (string -> string -> unit) * (string -> string option)
(** The (save, load) closure pair handed to a component at creation. *)

val crash : t -> unit
(** Lose everything. *)

val entries : t -> int

val export : t -> owner:string -> (string * string) list
(** Snapshot one owner's namespace, sorted by key: what a supervisor
    grabs before risky surgery so state written by incarnation [k] can
    be re-imported for incarnation [k+n], even across a {!crash} of
    the storage process itself. *)

val import : t -> owner:string -> (string * string) list -> unit
(** Replay an {!export}ed snapshot into (possibly another) store;
    existing keys are overwritten, unrelated owners untouched. *)
