module Costs = Newt_hw.Costs
module C = Newt_stack.Capacity
module E = Newt_core.Experiments

(* Cross-validation: the simulator makes ordinal claims (design A beats
   design B, and by roughly this factor); native execution re-runs the
   same comparisons on real domains. Absolute numbers cannot match — the
   model charges 1.9 GHz Opteron cycles, the native run pays OCaml on
   whatever this machine is — so we compare signs and rank orders, with
   a tolerance band for comparisons too close to call. *)

type check = {
  check : string;
  sim_hi : float;
  sim_lo : float;  (** The simulator predicts hi > lo. *)
  native_hi : float;
  native_lo : float;
  verdict : string;
}

type t = {
  domains : int;
  recommended : int;
  seconds_per_run : float;
  sim_goodput_gbps : (string * float) list;
  native_goodput_mbps : (string * float) list;
  sim_rtt_us : (string * float) list;
  native_rtt_us : (string * float) list;
  checks : check list;
}

let tolerance = 0.05

(* [hi] and [lo] are the native measurements for the pair the simulator
   orders as hi > lo. *)
let judge ~check ~sim_hi ~sim_lo ~native_hi ~native_lo =
  let verdict =
    if native_hi > native_lo then "match"
    else if
      abs_float (native_hi -. native_lo) /. Float.max native_hi native_lo
      < tolerance
    then "inconclusive (within 5% tolerance)"
    else "MISMATCH"
  in
  { check; sim_hi; sim_lo; native_hi; native_lo; verdict }

let rank l =
  (* Names sorted by decreasing value. *)
  List.map fst (List.sort (fun (_, a) (_, b) -> compare b a) l)

let run ?(seed = 42) ~domains ~seconds () =
  (* {2 Simulator side: the Table II channel-cost ablation} *)
  let base = Costs.default in
  let kipc =
    {
      base with
      Costs.channel_enqueue = base.Costs.trap_hot + base.Costs.kipc_kernel_work;
      channel_dequeue = base.Costs.trap_hot;
    }
  in
  let copy =
    {
      base with
      Costs.channel_marshal =
        base.Costs.channel_marshal + (2 * Costs.copy_cost base 1460);
    }
  in
  let sim_gbps costs =
    (C.evaluate ~costs C.Split_dedicated_sc).C.goodput_gbps
  in
  let sim_goodput =
    [
      ("base", sim_gbps base); ("kipc", sim_gbps kipc); ("copy", sim_gbps copy);
    ]
  in
  (* The Section IV-B wake-up ablation: polling vs halting (MWAIT). *)
  let lat = E.mwait_latency_ablation ~seed () in
  let by_window f =
    List.fold_left
      (fun acc (p : E.latency_point) ->
        match acc with
        | None -> Some p
        | Some q -> if f p.E.poll_window_us q.E.poll_window_us then Some p else Some q)
      None lat
    |> Option.get
  in
  let sim_park = by_window ( < ) and sim_poll = by_window ( > ) in
  let sim_rtt =
    [
      ("park", sim_park.E.mean_rtt_us); ("poll", sim_poll.E.mean_rtt_us);
    ]
  in
  (* {2 Native side: the same four comparisons on real domains} *)
  let native overhead never_park =
    Native.run
      {
        Native.default_config with
        domains;
        seconds;
        seed;
        overhead;
        never_park;
      }
  in
  let n_base = native Native.No_overhead false in
  let n_kipc = native Native.Kipc_trap false in
  let n_copy = native Native.Copy_per_hop false in
  let n_poll = native Native.No_overhead true in
  let native_goodput =
    [
      ("base", n_base.Native.goodput_mbps);
      ("kipc", n_kipc.Native.goodput_mbps);
      ("copy", n_copy.Native.goodput_mbps);
    ]
  in
  let native_rtt =
    [
      ("park", n_base.Native.ping_rtt_us_mean);
      ("poll", n_poll.Native.ping_rtt_us_mean);
    ]
  in
  let g = List.assoc in
  let checks =
    [
      judge ~check:"kernel IPC per message slows bulk goodput"
        ~sim_hi:(g "base" sim_goodput) ~sim_lo:(g "kipc" sim_goodput)
        ~native_hi:(g "base" native_goodput)
        ~native_lo:(g "kipc" native_goodput);
      judge ~check:"per-hop payload copies slow bulk goodput"
        ~sim_hi:(g "base" sim_goodput) ~sim_lo:(g "copy" sim_goodput)
        ~native_hi:(g "base" native_goodput)
        ~native_lo:(g "copy" native_goodput);
      (let sim_r = rank sim_goodput and nat_r = rank native_goodput in
       {
         check = "ablation rank order (base/kipc/copy)";
         sim_hi = 0.;
         sim_lo = 0.;
         native_hi = 0.;
         native_lo = 0.;
         verdict =
           (if sim_r = nat_r then
              "match (" ^ String.concat " > " nat_r ^ ")"
            else
              Printf.sprintf "MISMATCH (sim %s; native %s)"
                (String.concat " > " sim_r)
                (String.concat " > " nat_r));
       });
      judge ~check:"parking costs echo latency vs polling (RTT: park > poll)"
        ~sim_hi:(g "park" sim_rtt) ~sim_lo:(g "poll" sim_rtt)
        ~native_hi:(g "park" native_rtt) ~native_lo:(g "poll" native_rtt);
    ]
  in
  {
    domains;
    recommended = Domain.recommended_domain_count ();
    seconds_per_run = seconds;
    sim_goodput_gbps = sim_goodput;
    native_goodput_mbps = native_goodput;
    sim_rtt_us = sim_rtt;
    native_rtt_us = native_rtt;
    checks;
  }

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Cross-validation — simulator vs native domains\n";
  Buffer.add_string b "------------------------------------------------\n";
  Buffer.add_string b
    (Printf.sprintf
       "%d domain(s) (recommended here: %d)%s; %.1f s per native run\n"
       t.domains t.recommended
       (if t.domains > t.recommended then " — OVERSUBSCRIBED" else "")
       t.seconds_per_run);
  Buffer.add_string b "goodput (sim Gbps / native Mbps):\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "  %-6s sim %6.2f Gbps   native %8.1f Mbps\n" name s
           (List.assoc name t.native_goodput_mbps)))
    t.sim_goodput_gbps;
  Buffer.add_string b "idle-path echo RTT (us):\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "  %-6s sim %6.1f us     native %8.1f us\n" name s
           (List.assoc name t.native_rtt_us)))
    t.sim_rtt_us;
  Buffer.add_string b "ordinal checks:\n";
  List.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "  %-55s %s\n" c.check c.verdict))
    t.checks;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"domains\":%d,\"recommended\":%d,\"seconds_per_run\":%.2f" t.domains
       t.recommended t.seconds_per_run);
  let assoc_list key unit l =
    Buffer.add_string b (Printf.sprintf ",\"%s\":{" key);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%.3f" name v))
      l;
    Buffer.add_char b '}';
    ignore unit
  in
  assoc_list "sim_goodput_gbps" () t.sim_goodput_gbps;
  assoc_list "native_goodput_mbps" () t.native_goodput_mbps;
  assoc_list "sim_rtt_us" () t.sim_rtt_us;
  assoc_list "native_rtt_us" () t.native_rtt_us;
  Buffer.add_string b ",\"checks\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"check\":\"%s\",\"sim_hi\":%.3f,\"sim_lo\":%.3f,\
            \"native_hi\":%.3f,\"native_lo\":%.3f,\"verdict\":\"%s\"}"
           c.check c.sim_hi c.sim_lo c.native_hi c.native_lo c.verdict))
    t.checks;
  Buffer.add_string b "]}";
  Buffer.contents b
