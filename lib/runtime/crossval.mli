(** Sim-vs-native cross-validation.

    Re-runs the simulator's Section IV ordering claims — the Table II
    channel-cost ablations (kernel IPC per message, per-hop payload
    copies) and the park-vs-poll wake-up latency trade — under native
    domain execution, and checks that sign and rank order agree.
    Absolute rates are incomparable (modelled Opteron cycles vs OCaml
    on the current machine); ordinal agreement is the claim. *)

type check = {
  check : string;
  sim_hi : float;
  sim_lo : float;  (** The simulator predicts hi > lo. *)
  native_hi : float;
  native_lo : float;
  verdict : string;
      (** ["match"], ["inconclusive (within 5% tolerance)"], or
          ["MISMATCH ..."]. *)
}

type t = {
  domains : int;
  recommended : int;
  seconds_per_run : float;
  sim_goodput_gbps : (string * float) list;
  native_goodput_mbps : (string * float) list;
  sim_rtt_us : (string * float) list;
  native_rtt_us : (string * float) list;
  checks : check list;
}

val run : ?seed:int -> domains:int -> seconds:float -> unit -> t
(** Four native runs (base, kipc, copy, poll) of [seconds] each plus
    the capacity-model and latency-ablation evaluations. *)

val to_string : t -> string
val to_json : t -> string
