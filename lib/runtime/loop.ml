module Time = Newt_sim.Time
module Hook = Newt_channels.Hook

(* One event loop per OCaml domain. Work arrives three ways:

   - the domain-local run queue (continuations a server posts to its
     own core — the common case, no synchronization);
   - the inbox (cross-domain posts: channel doorbells, IPIs, app
     wake-ups), a mutex-protected queue with a condition variable;
   - timers (retransmission, pacing, sweeps), armed only by code
     already running on this domain, so the list is domain-local.

   Idle discipline is the paper's MONITOR/MWAIT debate made concrete:
   spin for [spin_budget] iterations watching the inbox (polling —
   cheap wake-up, burns the core), then park on the condition variable
   (futex-style halt — free, but the producer pays a signal).
   [never_park] keeps the loop polling forever, the other end of the
   Section IV-B trade-off. *)

type stats = {
  index : int;
  pinned : string list;
  parks : int;
  wakes : int;
  posts_remote : int;
  posts_self : int;
  timer_fires : int;
  executed : int;
}

type t = {
  index : int;
  mutable names : string list;
  now : unit -> Time.cycles;
  spin_budget : int;
  never_park : bool;
  run : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  inbox : (unit -> unit) Queue.t;
  inbox_size : int Atomic.t;
  mutable parked : bool; (* under [mutex] *)
  stop : bool Atomic.t;
  mutable timers : (Time.cycles * (unit -> unit) * bool ref) list;
  mutable domain_id : int; (* -1 until [run] starts *)
  mutable failure : exn option;
  posts_remote : int Atomic.t;
  mutable posts_self : int;
  mutable parks : int;
  wakes : int Atomic.t;
  mutable timer_fires : int;
  mutable executed : int;
}

let create ~index ~now ?(spin_budget = 2_000) ?(never_park = false) () =
  {
    index;
    names = [];
    now;
    spin_budget;
    never_park;
    run = Queue.create ();
    mutex = Mutex.create ();
    cond = Condition.create ();
    inbox = Queue.create ();
    inbox_size = Atomic.make 0;
    parked = false;
    stop = Atomic.make false;
    timers = [];
    domain_id = -1;
    failure = None;
    posts_remote = Atomic.make 0;
    posts_self = 0;
    parks = 0;
    wakes = Atomic.make 0;
    timer_fires = 0;
    executed = 0;
  }

let index t = t.index
let add_name t name = t.names <- t.names @ [ name ]
let failure t = t.failure
let on_own_domain t = t.domain_id >= 0 && (Domain.self () :> int) = t.domain_id

let post t k =
  if on_own_domain t then begin
    t.posts_self <- t.posts_self + 1;
    Queue.push k t.run
  end
  else begin
    Atomic.incr t.posts_remote;
    Mutex.lock t.mutex;
    Queue.push k t.inbox;
    Atomic.incr t.inbox_size;
    (* Under the mutex: this is the release edge the race detector
       pairs with the drain/wake acquire on the owning domain. *)
    if Hook.native_enabled () then
      Hook.native_emit (Hook.N_post { loop = t.index });
    let was_parked = t.parked in
    if was_parked then Condition.signal t.cond;
    Mutex.unlock t.mutex;
    if was_parked then Atomic.incr t.wakes
  end

(* Timers are armed from the owning domain (servers only set timers for
   themselves) — or, before the loop has started, from the wiring
   thread, in which case the insert travels through the inbox and runs
   as the loop's first work. The cancel thunk must likewise only be
   called from the owning domain. *)
let schedule t delay k =
  let cancelled = ref false in
  let fire_at = t.now () + max 0 delay in
  let insert () = t.timers <- (fire_at, k, cancelled) :: t.timers in
  if on_own_domain t then insert () else post t insert;
  fun () -> cancelled := true

let next_deadline t =
  List.fold_left
    (fun acc (at, _, cancelled) ->
      if !cancelled then acc
      else match acc with None -> Some at | Some b -> Some (min b at))
    None t.timers

let fire_due t =
  match t.timers with
  | [] -> false
  | _ ->
      let now = t.now () in
      let due, rest =
        List.partition (fun (at, _, c) -> (not !c) && at <= now) t.timers
      in
      t.timers <- List.filter (fun (_, _, c) -> not !c) rest;
      let due = List.sort (fun (a, _, _) (b, _, _) -> compare a b) due in
      List.iter
        (fun (_, k, _) ->
          t.timer_fires <- t.timer_fires + 1;
          Queue.push k t.run)
        due;
      due <> []

let take_inbox t =
  if Atomic.get t.inbox_size > 0 then begin
    Mutex.lock t.mutex;
    Queue.transfer t.inbox t.run;
    Atomic.set t.inbox_size 0;
    if Hook.native_enabled () then
      Hook.native_emit (Hook.N_drain { loop = t.index });
    Mutex.unlock t.mutex;
    true
  end
  else false

let park t ~deadline =
  match deadline with
  | None ->
      (* Lost-wakeup audit (ISSUE 8): there is no window between the
         final emptiness check and blocking, because both sides hold
         the same mutex. The spin in [idle] reads [inbox_size] without
         the lock and can go stale the instant it gives up — but the
         decision that matters is re-taken here: [post] can only
         interleave its push + signal either (a) before our
         [Mutex.lock], in which case the re-check below sees the
         non-empty inbox and we never wait, or (b) after we are inside
         [Condition.wait] (which releases the mutex atomically), in
         which case [t.parked] is already true, the poster signals,
         and the wait returns. A signal can NOT land between the check
         and the wait: the poster cannot take the mutex in that
         window. The [while] re-check also covers spurious wakeups and
         the stop flag, which [request_stop] raises under the same
         mutex before signalling. *)
      Mutex.lock t.mutex;
      if Queue.is_empty t.inbox && not (Atomic.get t.stop) then begin
        t.parked <- true;
        t.parks <- t.parks + 1;
        if Hook.native_enabled () then
          Hook.native_emit (Hook.N_park { loop = t.index });
        while Queue.is_empty t.inbox && not (Atomic.get t.stop) do
          Condition.wait t.cond t.mutex
        done;
        t.parked <- false;
        (* Acquire edge: we resumed because a poster signalled under
           this mutex; join on the inbox clock. *)
        if Hook.native_enabled () then
          Hook.native_emit (Hook.N_wake { loop = t.index })
      end;
      Mutex.unlock t.mutex
  | Some at ->
      (* The stdlib has no timed condition wait: sleep in short slices,
         re-checking the doorbell, until the deadline is close. *)
      let remaining = Time.to_seconds (at - t.now ()) in
      if remaining > 0. then begin
        t.parks <- t.parks + 1;
        Unix.sleepf (Float.min remaining 0.0002)
      end

let idle t =
  let deadline = next_deadline t in
  let rec spin i =
    if Atomic.get t.stop then ()
    else if Atomic.get t.inbox_size > 0 then ()
    else if match deadline with Some at -> t.now () >= at | None -> false then
      ()
    else if t.never_park || i < t.spin_budget then begin
      Domain.cpu_relax ();
      spin (i + 1)
    end
    else park t ~deadline
  in
  spin 0

let run t =
  t.domain_id <- (Domain.self () :> int);
  if Hook.native_enabled () then
    Hook.native_emit (Hook.N_loop_start { loop = t.index });
  (try
     while not (Atomic.get t.stop) do
       match Queue.take_opt t.run with
       | Some k ->
           t.executed <- t.executed + 1;
           k ()
       | None ->
           if take_inbox t then ()
           else if fire_due t then ()
           else idle t
     done
   with e -> t.failure <- Some e);
  if Hook.native_enabled () then
    Hook.native_emit (Hook.N_loop_stop { loop = t.index });
  t.domain_id <- -1

let request_stop t =
  Atomic.set t.stop true;
  Mutex.lock t.mutex;
  Condition.signal t.cond;
  Mutex.unlock t.mutex

let stats t =
  {
    index = t.index;
    pinned = t.names;
    parks = t.parks;
    wakes = Atomic.get t.wakes;
    posts_remote = Atomic.get t.posts_remote;
    posts_self = t.posts_self;
    timer_fires = t.timer_fires;
    executed = t.executed;
  }
