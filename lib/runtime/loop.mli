(** Per-domain event loop of the native runtime.

    Each OCaml domain runs one loop serving the model cores pinned to
    it: a domain-local run queue (self-posts, no synchronization), a
    mutex-protected inbox for cross-domain posts with a
    spin-then-park doorbell (the futex-style stand-in for the paper's
    MONITOR/MWAIT), and a domain-local timer list. *)

type t

type stats = {
  index : int;
  pinned : string list;  (** Component names pinned to this domain. *)
  parks : int;  (** Times the loop gave up polling and parked/slept. *)
  wakes : int;  (** Condition-variable signals sent by producers. *)
  posts_remote : int;  (** Cross-domain posts received. *)
  posts_self : int;  (** Same-domain posts (run-queue fast path). *)
  timer_fires : int;
  executed : int;  (** Closures run. *)
}

val create :
  index:int ->
  now:(unit -> Newt_sim.Time.cycles) ->
  ?spin_budget:int ->
  ?never_park:bool ->
  unit ->
  t
(** [spin_budget] is how many poll iterations an idle loop spends
    watching its inbox before parking (default 2000 ≈ a few µs);
    [never_park] polls forever — the other end of the Section IV-B
    latency/energy trade-off. *)

val index : t -> int

val add_name : t -> string -> unit
(** Record a component pinned to this loop (reporting only). *)

val post : t -> (unit -> unit) -> unit
(** Enqueue work; callable from any domain (and before {!run} starts —
    such posts become the loop's first work). Same-domain posts take
    the unsynchronized run-queue fast path. *)

val schedule : t -> Newt_sim.Time.cycles -> (unit -> unit) -> unit -> unit
(** [schedule t delay k] arms a timer; returns a cancel thunk. Arm and
    cancel only from the owning domain (or before the loop starts). *)

val run : t -> unit
(** The loop body — call from the domain that owns the loop. Returns
    after {!request_stop}. An exception from a closure stops the loop
    and is reported by {!failure}. *)

val request_stop : t -> unit
val failure : t -> exn option
val stats : t -> stats
