module Engine = Newt_sim.Engine
module Exec = Newt_sim.Exec
module Time = Newt_sim.Time
module Rng = Newt_sim.Rng
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu
module Registry = Newt_channels.Registry
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Addr = Newt_net.Addr
module Offload = Newt_nic.Offload
module Rule = Newt_pf.Rule
module Proc = Newt_stack.Proc
module Component = Newt_stack.Component
module Msg = Newt_stack.Msg
module Ip_srv = Newt_stack.Ip_srv
module Pf_srv = Newt_stack.Pf_srv
module Tcp_srv = Newt_stack.Tcp_srv
module Udp_srv = Newt_stack.Udp_srv
module Syscall_srv = Newt_stack.Syscall_srv
module Sink = Newt_stack.Sink
module Storage = Newt_reliability.Storage
module Apps = Newt_sockets.Apps
module Hook = Newt_channels.Hook
module Race = Newt_verify.Race
module Tcp = Newt_net.Tcp
module Tcpfsm = Newt_verify.Tcpfsm

type overhead = No_overhead | Kipc_trap | Copy_per_hop

(* Deliberate concurrency bugs, the --break-recovery pattern applied
   to memory ordering: each must exit 1 *through the race detector*. *)
type break_race = Spsc_two_producers | Loop_unfenced_counter

let break_race_of_string = function
  | "spsc:two-producers" -> Some Spsc_two_producers
  | "loop:unfenced-counter" -> Some Loop_unfenced_counter
  | _ -> None

let break_race_to_string = function
  | Spsc_two_producers -> "spsc:two-producers"
  | Loop_unfenced_counter -> "loop:unfenced-counter"

let break_race_modes = [ "spsc:two-producers"; "loop:unfenced-counter" ]

type config = {
  domains : int;
  seconds : float;
  seed : int;
  chan_capacity : int;
  write_size : int;
  spin_budget : int;
  never_park : bool;
  confirm_batch : int;  (** Driver TX confirms coalesced per message. *)
  overhead : overhead;  (** Channel-cost ablation (cross-validation). *)
  ping_period : float;  (** Seconds between ICMP echo probes. *)
  port : int;
  race : bool;  (** Arm the happens-before race detector. *)
  race_sample : int;  (** Detector sampling period (1 = every access). *)
  break_race : break_race option;  (** Inject a deliberate race. *)
  tcp_fsm : bool;  (** Arm the TCP conformance checker. *)
  break_tcp : Tcp.sabotage option;  (** Inject a deliberate TCP bug. *)
}

let default_config =
  {
    domains = 2;
    seconds = 2.0;
    seed = 42;
    chan_capacity = 8192;
    write_size = 8192;
    spin_budget = 2_000;
    never_park = false;
    confirm_batch = 8;
    overhead = No_overhead;
    ping_period = 0.002;
    port = 5001;
    race = false;
    race_sample = 1;
    break_race = None;
    tcp_fsm = false;
    break_tcp = None;
  }

(* {2 Argument validation (no silent fallback)} *)

let validate ~recommended ?(allow_oversubscribe = false) ~domains () =
  if domains < 2 then
    Error
      (Printf.sprintf
         "native mode needs at least 2 domains (one per side of a channel); \
          got --domains %d"
         domains)
  else if recommended < 2 && not allow_oversubscribe then
    Error
      (Printf.sprintf
         "native execution is unsupported here: \
          Domain.recommended_domain_count = %d (< 2). Refusing to fall back \
          to simulation; pass --allow-oversubscribe to time-slice domains on \
          too few cores, or use the simulator commands."
         recommended)
  else if domains > recommended && not allow_oversubscribe then
    Error
      (Printf.sprintf
         "--domains %d exceeds Domain.recommended_domain_count (%d); \
          oversubscribed domains would measure scheduler noise, not the \
          stack. Pass --allow-oversubscribe to force."
         domains recommended)
  else if domains > 16 then
    Error (Printf.sprintf "--domains %d: the stack has at most 8 pinnable \
                           servers plus the peer; more than 16 domains is \
                           surely a mistake" domains)
  else Ok ()

(* {2 The ownership plan}

   The static half of Verify.Race: the pinning plan below, lowered to
   a table of every mutable structure the native run creates, with its
   writers, readers and the primitive its cross-domain edges ride.
   [check_plan] then proves the discipline without running anything.
   Kept textually adjacent to [run] so a wiring change that adds a
   structure is a one-screen diff away from declaring it. *)

let slots_order = [ "tcp"; "ip"; "pf"; "drv0"; "sc"; "app"; "udp"; "peer" ]

(* Sentinel loop id the --break-race saboteur registers under, so its
   counterexamples read "saboteur" rather than "domain#N". *)
let saboteur_loop_id = 1000

let ownership_plan ?break_race ~domains () : Race.Plan.t =
  let open Race.Plan in
  (* Same round-robin as [run]: slot i lands on domain (i mod domains).
     "main" is the spawning thread — alive and concurrent with every
     loop, so it gets its own pseudo-domain index; "wiring" marks
     writes made before Domain.spawn publishes them. *)
  let placement =
    List.mapi (fun i n -> (n, i mod domains)) slots_order
    @ [ ("main", domains); ("wiring", -1) ]
    @
    match break_race with
    | Some Spsc_two_producers -> [ ("saboteur", domains) ]
    | _ -> []
  in
  let ring name p c extra_writers =
    {
      res = "ring " ^ name;
      kind = Ring_buf;
      owner = None;
      writers = p :: extra_writers;
      readers = [ c ];
      grants = [];
      via = Some Ring;
    }
  in
  let rings =
    [
      ring "ip.to_pf" "ip" "pf" [];
      ring "pf.to_ip" "pf" "ip" [];
      ring "tcp.to_ip" "tcp" "ip" [];
      ring "ip.to_tcp" "ip" "tcp" [];
      ring "udp.to_ip" "udp" "ip" [];
      ring "ip.to_udp" "ip" "udp" [];
      ring "sc.to_tcp" "sc" "tcp" [];
      ring "tcp.to_sc" "tcp" "sc" [];
      ring "sc.to_udp" "sc" "udp" [];
      ring "udp.to_sc" "udp" "sc" [];
      ring "ip.to_drv0" "ip" "drv0" [];
      ring "drv0.to_ip" "drv0" "ip" [];
      ring "drv0.wire_tx" "drv0" "peer" [];
      ring "drv0.wire_rx" "peer" "drv0"
        (match break_race with
        | Some Spsc_two_producers -> [ "saboteur" ]
        | _ -> []);
    ]
  in
  let comps_on d =
    List.filteri (fun i _ -> i mod domains = d) slots_order
  in
  let inboxes =
    List.init domains (fun d ->
        {
          res = Printf.sprintf "inbox d%d" d;
          kind = Inbox;
          owner = None;
          (* Anyone may post a doorbell or timer insert; the park
             mutex is exactly the sanction for that. *)
          writers = "main" :: slots_order;
          readers = comps_on d;
          grants = [];
          via = Some Park_mutex;
        })
  in
  let timers =
    List.init domains (fun d ->
        {
          res = Printf.sprintf "timers d%d" d;
          kind = Timer_wheel;
          owner = None;
          (* Armed only by code already running on the domain (the
             pre-spawn inserts travel through the inbox). *)
          writers = comps_on d;
          readers = comps_on d;
          grants = [];
          via = None;
        })
  in
  let pool name owner ~writers ~readers ~grants =
    { res = "pool " ^ name; kind = Pool; owner = Some owner; writers;
      readers; grants; via = Some Pool_lock }
  in
  let pools =
    [
      (* The driver fills granted RX buffers; IP reads and frees them. *)
      pool "ip.rx" "ip" ~writers:[ "ip"; "drv0" ] ~readers:[ "ip"; "drv0" ]
        ~grants:[ "drv0" ];
      pool "ip.hdr" "ip" ~writers:[ "ip" ] ~readers:[ "ip"; "drv0" ]
        ~grants:[];
      pool "tcp.tx" "tcp" ~writers:[ "tcp" ] ~readers:[ "tcp"; "drv0" ]
        ~grants:[];
      pool "udp.tx" "udp" ~writers:[ "udp" ] ~readers:[ "udp"; "drv0" ]
        ~grants:[];
    ]
  in
  let tables =
    [
      (* Filled at wiring time, read-only once the domains run: the
         spawn publishes it, no primitive needed. *)
      {
        res = "table registry.pools";
        kind = Table;
        owner = None;
        writers = [ "wiring" ];
        readers = [ "drv0"; "ip"; "tcp"; "udp" ];
        grants = [];
        via = None;
      };
      {
        res = "counter drv0.frames";
        kind = Counter;
        owner = None;
        writers = [ "drv0" ];
        readers = [ "drv0" ];
        grants = [];
        via = None;
      };
      {
        res = "counter peer.rtts";
        kind = Counter;
        owner = None;
        writers = [ "peer" ];
        readers = [ "peer" ];
        grants = [];
        via = None;
      };
    ]
  in
  let sabotage =
    match break_race with
    | Some Loop_unfenced_counter ->
        [
          (* Two loops increment, the main thread polls — no ring,
             atomic or mutex anywhere on the edge. *)
          {
            res = "counter sabotage.unfenced";
            kind = Counter;
            owner = None;
            writers = [ "tcp"; "ip" ];
            readers = [ "main" ];
            grants = [];
            via = None;
          };
        ]
    | _ -> []
  in
  { domains; placement; resources = rings @ inboxes @ timers @ pools @ tables @ sabotage }

(* {2 Results} *)

type ring_stat = {
  ring : string;
  sent : int;
  dropped : int;
  max_occupancy : int;
  ring_capacity : int;
}

type result = {
  domains_used : int;
  seconds_run : float;
  goodput_mbps : float;
  tcp_bytes : int;
  iperf_bytes_sent : int;
  frames_to_peer : int;
  frames_from_peer : int;
  rx_no_buffer : int;
  icmp_echoes : int;
  ping_count : int;
  ping_rtt_us_mean : float;
  ping_rtt_us_p99 : float;
  checksum_failures : int;
  rings : ring_stat list;
  loops : Loop.stats list;
  race : Race.Dynamic.outcome option;
  tcpfsm : (bool * string) option;
      (** Conformance verdict: [ok] flag plus the mcheck-shaped JSON. *)
}

let json_of_result (r : result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"mode\":\"native\",\"domains\":%d,\"seconds\":%.3f,\
        \"goodput_mbps\":%.3f,\"tcp_bytes\":%d,\"iperf_bytes_sent\":%d,\
        \"frames_to_peer\":%d,\"frames_from_peer\":%d,\"rx_no_buffer\":%d,\
        \"icmp_echoes\":%d,\"ping_count\":%d,\"ping_rtt_us_mean\":%.2f,\
        \"ping_rtt_us_p99\":%.2f,\"checksum_failures\":%d"
       r.domains_used r.seconds_run r.goodput_mbps r.tcp_bytes
       r.iperf_bytes_sent r.frames_to_peer r.frames_from_peer r.rx_no_buffer
       r.icmp_echoes r.ping_count r.ping_rtt_us_mean r.ping_rtt_us_p99
       r.checksum_failures);
  Buffer.add_string b ",\"rings\":[";
  List.iteri
    (fun i (s : ring_stat) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"ring\":\"%s\",\"sent\":%d,\"dropped\":%d,\
            \"max_occupancy\":%d,\"capacity\":%d}"
           s.ring s.sent s.dropped s.max_occupancy s.ring_capacity))
    r.rings;
  Buffer.add_string b "],\"loops\":[";
  List.iteri
    (fun i (s : Loop.stats) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"domain\":%d,\"pinned\":[%s],\"parks\":%d,\"wakes\":%d,\
            \"posts_remote\":%d,\"posts_self\":%d,\"timer_fires\":%d,\
            \"executed\":%d}"
           s.Loop.index
           (String.concat ","
              (List.map (fun n -> "\"" ^ n ^ "\"") s.Loop.pinned))
           s.Loop.parks s.Loop.wakes s.Loop.posts_remote s.Loop.posts_self
           s.Loop.timer_fires s.Loop.executed))
    r.loops;
  Buffer.add_string b "]";
  (match r.race with
  | None -> ()
  | Some o ->
      Buffer.add_string b ",\"race\":";
      Buffer.add_string b (Race.Dynamic.to_json ~title:"native race detector" o));
  (match r.tcpfsm with
  | None -> ()
  | Some (_, js) ->
      Buffer.add_string b ",\"tcpfsm\":";
      Buffer.add_string b js);
  Buffer.add_string b "}";
  Buffer.contents b

(* {2 Doorbells}

   A cross-domain kick with at-most-one outstanding post: ring after
   every push, pay one atomic exchange, run the drain once. *)

let doorbell loop f =
  let posted = Atomic.make false in
  fun () ->
    if not (Atomic.exchange posted true) then
      Loop.post loop (fun () ->
          Atomic.set posted false;
          f ())

(* {2 The run} *)

let run (cfg : config) : result =
  let n_domains = cfg.domains in
  (* Wall clock in model cycles (the paper's 1.9 GHz testbed scale). *)
  let epoch = Unix.gettimeofday () in
  let now () =
    int_of_float
      ((Unix.gettimeofday () -. epoch) *. float_of_int Time.cycles_per_second)
  in
  let loops =
    Array.init n_domains (fun index ->
        Loop.create ~index ~now ~spin_budget:cfg.spin_budget
          ~never_park:cfg.never_park ())
  in
  (* Placement: pipeline-depth order, round-robin over the domains, so
     the hot TX path (tcp -> ip -> pf -> drv) spreads across domains
     first. Core ids are assigned below in slot order. *)
  let slots = [| "tcp"; "ip"; "pf"; "drv0"; "sc"; "app"; "udp"; "peer" |] in
  let loop_of_slot = Array.mapi (fun i _ -> loops.(i mod n_domains)) slots in
  Array.iteri (fun i name -> Loop.add_name loop_of_slot.(i) name) slots;
  let slot_index name =
    let rec find i = if slots.(i) = name then i else find (i + 1) in
    find 0
  in
  let peer_loop = loop_of_slot.(slot_index "peer") in
  (* {3 Race detector arming}

     Armed before any wiring so pre-spawn posts and pool traffic are
     clock-tracked from the first event; ownership claims on the rings
     only bind after the spawn fence below. *)
  let race_wanted = cfg.race || cfg.break_race <> None in
  let ring_names : (int * string) list ref = ref [] in
  if race_wanted then begin
    let loop_label i =
      if i = saboteur_loop_id then "saboteur"
      else
        let names =
          List.filteri (fun j _ -> j mod n_domains = i) slots_order
        in
        Printf.sprintf "loop%d(%s)" i (String.concat "+" names)
    in
    Race.Dynamic.arm ~sample:cfg.race_sample
      ~labels:
        {
          Race.Dynamic.ring_name =
            (fun id ->
              match List.assoc_opt id !ring_names with
              | Some n -> "ring " ^ n
              | None -> Printf.sprintf "ring#%d" id);
          pool_name = (fun id -> Printf.sprintf "pool#%d" id);
          counter_name =
            (fun id ->
              if id = 1 then "counter sabotage.unfenced"
              else Printf.sprintf "counter#%d" id);
          loop_name = loop_label;
        }
      ()
  end;
  (* {3 TCP conformance checker arming}

     Armed before any engine exists so the very first handshake is
     judged; events arrive from the tcp and peer domains and are
     serialized on the checker's own mutex. *)
  let fsm_wanted = cfg.tcp_fsm || cfg.break_tcp <> None in
  if fsm_wanted then Tcpfsm.install_native ();
  (* Model-core id -> loop. Cores are created in slot order (minus the
     peer, which is not a machine core), so core id = slot index. *)
  let core_loop core = loop_of_slot.(core) in
  let exec =
    Exec.native ~now
      ~schedule:(fun ~core delay k -> Loop.schedule (core_loop core) delay k)
      ~post:(fun ~core k -> Loop.post (core_loop core) k)
  in
  (* The engine exists only as the deterministic RNG root; all time and
     scheduling go through [exec]. *)
  let engine = Engine.create ~seed:cfg.seed () in
  let machine = Machine.create ~exec engine in
  Pool.set_default_threadsafe true;
  Fun.protect ~finally:(fun () ->
      Pool.set_default_threadsafe false;
      (* Harmless if [disarm] already ran; vital if a domain died. *)
      Hook.clear_native ();
      Tcpfsm.uninstall_native ();
      Proc.set_send_overhead None)
  @@ fun () ->
  (match cfg.overhead with
  | No_overhead -> Proc.set_send_overhead None
  | Kipc_trap ->
      (* Every channel enqueue becomes a kernel trap: a serializing
         round trip through one global "kernel" lock. *)
      let kernel = Mutex.create () in
      Proc.set_send_overhead
        (Some
           (fun () ->
             Mutex.lock kernel;
             ignore (Sys.opaque_identity (ref 0));
             Mutex.unlock kernel))
  | Copy_per_hop ->
      (* Zero copy disabled: two extra MSS-sized copies per message
         (transport->IP and IP->driver), as in the cost-model ablation. *)
      let src = Bytes.create 1460 and dst = Bytes.create 1460 in
      Proc.set_send_overhead
        (Some
           (fun () ->
             Bytes.blit src 0 dst 0 1460;
             Bytes.blit dst 0 src 0 1460)));
  let tcp_core = Machine.add_dedicated_core machine in
  let ip_core = Machine.add_dedicated_core machine in
  let pf_core = Machine.add_dedicated_core machine in
  let drv_core = Machine.add_dedicated_core machine in
  let sc_core = Machine.add_dedicated_core machine in
  let app_core = Machine.add_timeshared_core machine in
  let udp_core = Machine.add_dedicated_core machine in
  assert (Cpu.id tcp_core = slot_index "tcp");
  assert (Cpu.id app_core = slot_index "app");
  let registry = Registry.create () in
  (* Each server gets its own storage instance: state saves happen on
     the server's domain, and nothing may share a hashtable across
     domains. *)
  let view name =
    Storage.owner_view (Storage.create ()) ~owner:name
  in
  let mkcomp name core = Component.create machine ~name ~core () in
  let sc_comp = mkcomp "sc" sc_core in
  let tcp_comp = mkcomp "tcp" tcp_core in
  let udp_comp = mkcomp "udp" udp_core in
  let ip_comp = mkcomp "ip" ip_core in
  let pf_comp = mkcomp "pf" pf_core in
  let drv_comp = mkcomp "drv0" drv_core in
  let save_ip, load_ip = view "ip" in
  let save_pf, load_pf = view "pf" in
  let save_tcp, load_tcp = view "tcp" in
  let save_udp, load_udp = view "udp" in
  let host_addr = Addr.Ipv4.v 10 0 0 1 in
  let peer_addr = Addr.Ipv4.v 10 0 0 2 in
  let sc_srv = Syscall_srv.create sc_comp () in
  let tcp_srv =
    Tcp_srv.create tcp_comp ~registry ~local_addr:host_addr ~save:save_tcp
      ~load:load_tcp ()
  in
  (* Sabotage: Ack_from_closed plants the engine-level bug now; the
     Stale_established crash-and-resurrect is scheduled below. *)
  Tcp_srv.set_break_tcp tcp_srv cfg.break_tcp;
  let udp_srv =
    Udp_srv.create udp_comp ~registry ~local_addr:host_addr ~save:save_udp
      ~load:load_udp ()
  in
  let ip_srv = Ip_srv.create ip_comp ~registry ~save:save_ip ~load:load_ip () in
  let pf_srv = Pf_srv.create pf_comp ~save:save_pf ~load:load_pf () in
  (* Channels: real SPSC rings. *)
  let chan_ids = ref 0 in
  (* Stat readers, not the channels themselves: message rings and the
     Bytes wire rings have different element types. *)
  let ring_stats : (unit -> ring_stat) list ref = ref [] in
  let chan ?capacity name =
    incr chan_ids;
    ring_names := (!chan_ids, name) :: !ring_names;
    let capacity = Option.value capacity ~default:cfg.chan_capacity in
    let c = Sim_chan.create_native ~capacity ~id:!chan_ids () in
    ring_stats :=
      !ring_stats
      @ [
          (fun () ->
            {
              ring = name;
              sent = Sim_chan.sent_total c;
              dropped = Sim_chan.dropped_total c;
              max_occupancy = Sim_chan.max_occupancy c;
              ring_capacity = Sim_chan.capacity c;
            });
        ];
    c
  in
  let ch_ip_to_pf = chan "ip.to_pf" and ch_pf_to_ip = chan "pf.to_ip" in
  Ip_srv.connect_pf ip_srv ~to_pf:ch_ip_to_pf ~from_pf:ch_pf_to_ip;
  Pf_srv.connect_ip pf_srv ~from_ip:ch_ip_to_pf ~to_ip:ch_pf_to_ip;
  let ch_tcp_to_ip = chan "tcp.to_ip" and ch_ip_to_tcp = chan "ip.to_tcp" in
  Ip_srv.connect_transport ip_srv ~proto:`Tcp ~from_transport:ch_tcp_to_ip
    ~to_transport:ch_ip_to_tcp;
  Tcp_srv.connect_ip tcp_srv ~to_ip:ch_tcp_to_ip ~from_ip:ch_ip_to_tcp;
  let ch_udp_to_ip = chan "udp.to_ip" and ch_ip_to_udp = chan "ip.to_udp" in
  Ip_srv.connect_transport ip_srv ~proto:`Udp ~from_transport:ch_udp_to_ip
    ~to_transport:ch_ip_to_udp;
  Udp_srv.connect_ip udp_srv ~to_ip:ch_udp_to_ip ~from_ip:ch_ip_to_udp;
  let ch_sc_to_tcp = chan "sc.to_tcp" and ch_tcp_to_sc = chan "tcp.to_sc" in
  Syscall_srv.connect_transport sc_srv ~transport:`Tcp
    ~to_transport:ch_sc_to_tcp ~from_transport:ch_tcp_to_sc;
  Tcp_srv.connect_sc tcp_srv ~from_sc:ch_sc_to_tcp ~to_sc:ch_tcp_to_sc;
  let ch_sc_to_udp = chan "sc.to_udp" and ch_udp_to_sc = chan "udp.to_sc" in
  Syscall_srv.connect_transport sc_srv ~transport:`Udp
    ~to_transport:ch_sc_to_udp ~from_transport:ch_udp_to_sc;
  Udp_srv.connect_sc udp_srv ~from_sc:ch_sc_to_udp ~to_sc:ch_udp_to_sc;
  (* The wire: raw Ethernet frames on two more SPSC rings, driver on
     one side, the ideal peer host on the other. *)
  let wire_to_peer = chan ~capacity:4096 "drv0.wire_tx" in
  let wire_to_host = chan ~capacity:4096 "drv0.wire_rx" in
  (* {3 The native driver}

     Plays E1000 + Drv_srv in one component: consumes [Drv_tx],
     materializes frames (scatter-gather + TSO split + checksum fill,
     the same offload engines the simulated NIC uses) and pushes them
     onto the wire; drains the inbound wire into granted RX-pool
     buffers and hands them up as [Rx_frame]. *)
  let drv_proc = Component.proc drv_comp in
  let frames_to_peer = ref 0 in
  let frames_from_peer = ref 0 in
  let rx_no_buffer = ref 0 in
  let rx_alloc = ref (fun () -> None) in
  let rx_write = ref (fun _ _ -> ()) in
  let drv_tx_to_ip = ref None in
  let pending_confirms = ref [] in
  let flush_confirms () =
    match (!pending_confirms, !drv_tx_to_ip) with
    | [], _ | _, None -> ()
    | [ id ], Some chan ->
        pending_confirms := [];
        ignore (Proc.send drv_proc chan (Msg.Drv_tx_confirm { id; ok = true }))
    | ids, Some chan ->
        pending_confirms := [];
        ignore
          (Proc.send drv_proc chan
             (Msg.Drv_tx_confirm_batch { ids = List.rev ids; ok = true }))
  in
  let handle_drv_msg msg =
    match msg with
    | Msg.Drv_tx { id; chain; csum_offload; tso; tso_mss; queue = _ } ->
        ( 0,
          fun () ->
            let frames =
              match Registry.gather registry chain with
              | frame ->
                  if tso then Offload.tso_split frame ~mss:tso_mss
                  else begin
                    if csum_offload then
                      ignore (Offload.finalize_l4_checksum frame);
                    [ frame ]
                  end
              | exception
                  ( Registry.Unknown_pool _
                  | Newt_channels.Pool.Stale_pointer _ ) ->
                  []
            in
            List.iter
              (fun frame ->
                if Sim_chan.send wire_to_peer frame then incr frames_to_peer)
              frames;
            pending_confirms := id :: !pending_confirms;
            if List.length !pending_confirms >= cfg.confirm_batch then
              flush_confirms () )
    | _ -> (0, fun () -> ())
  in
  let rec arm_confirm_flush () =
    Proc.after drv_proc (Time.of_micros 500.) ~cost:0 (fun () ->
        flush_confirms ();
        arm_confirm_flush ())
  in
  let hooks =
    {
      Ip_srv.drv_connect =
        (fun ~rx_from_ip ~tx_to_ip ->
          drv_tx_to_ip := Some tx_to_ip;
          Component.produce drv_comp tx_to_ip;
          Component.consume drv_comp rx_from_ip handle_drv_msg);
      drv_grant_rx_pool =
        (fun ~alloc ~write ->
          rx_alloc := alloc;
          rx_write := write);
      drv_on_ip_crash = (fun () -> ());
      drv_on_ip_restart = (fun () -> ());
    }
  in
  let iface =
    Ip_srv.add_iface_custom ip_srv
      {
        Ip_srv.addr = host_addr;
        netmask_bits = 24;
        mac = Addr.Mac.of_index 100;
      }
      ~hooks ~tx_chan:(chan "ip.to_drv0") ~rx_chan:(chan "drv0.to_ip")
  in
  Ip_srv.add_route ip_srv ~prefix:(Addr.Ipv4.v 10 0 0 0) ~bits:24 ~iface
    ~gateway:None;
  Ip_srv.add_neighbor ip_srv ~iface peer_addr (Addr.Mac.of_index 200);
  let src_select dst =
    match Ip_srv.src_addr_for ip_srv dst with
    | Some a -> a
    | None -> host_addr
  in
  Tcp_srv.set_src_select tcp_srv src_select;
  Udp_srv.set_src_select udp_srv src_select;
  Pf_srv.set_rules pf_srv [ Rule.pass_all ];
  (* Conntrack snapshots would read the transports' tables from the
     PF domain; natively the sweep runs with no sources instead. *)
  Pf_srv.set_conntrack_sources pf_srv ~tcp:(fun () -> []) ~udp:(fun () -> []);
  (* Inbound wire -> driver. *)
  let drv_loop = loop_of_slot.(slot_index "drv0") in
  let drain_wire_rx () =
    let rec go () =
      match Sim_chan.recv wire_to_host with
      | None -> ()
      | Some frame -> (
          incr frames_from_peer;
          match !rx_alloc () with
          | None -> incr rx_no_buffer
          | Some buf ->
              !rx_write buf frame;
              (match !drv_tx_to_ip with
              | Some chan ->
                  ignore
                    (Proc.send drv_proc chan
                       (Msg.Rx_frame { buf; len = Bytes.length frame }))
              | None -> ());
              go ())
    in
    go ()
  in
  Sim_chan.set_notify wire_to_host (doorbell drv_loop drain_wire_rx);
  (* {3 The peer host} *)
  let peer_rng = Rng.split (Engine.rng engine) in
  let peer_io =
    {
      Sink.io_now = now;
      io_timer = (fun delay k -> Loop.schedule peer_loop delay k);
      io_emit = (fun frame -> ignore (Sim_chan.send wire_to_host frame));
      io_random = (fun bound -> Rng.int peer_rng bound);
    }
  in
  let peer =
    Sink.create_io peer_io ~addr:peer_addr ~mac:(Addr.Mac.of_index 200) ()
  in
  let drain_wire_tx () =
    let rec go () =
      match Sim_chan.recv wire_to_peer with
      | None -> ()
      | Some frame ->
          Sink.handle_frame peer frame;
          go ()
    in
    go ()
  in
  Sim_chan.set_notify wire_to_peer (doorbell peer_loop drain_wire_tx);
  (* {3 Workload: iperf-style bulk + the split-stack ping path} *)
  let tcp_bytes = ref 0 in
  Sink.sink_tcp peer ~port:cfg.port ~on_bytes:(fun ~at:_ n ->
      tcp_bytes := !tcp_bytes + n);
  let app = { Syscall_srv.app_core; app_pid = 10_000 } in
  let iperf =
    Apps.Iperf.start machine ~sc:sc_srv ~app ~dst:peer_addr ~port:cfg.port
      ~write_size:cfg.write_size
      ~until:(Time.of_seconds cfg.seconds)
      ()
  in
  let ping_rtts = ref [] in
  let ping_deadline = Time.of_seconds cfg.seconds in
  let rec ping_loop () =
    if now () < ping_deadline then begin
      Sink.ping peer ~dst:host_addr (fun ~rtt ->
          ping_rtts := rtt :: !ping_rtts);
      let (_cancel : unit -> unit) =
        Loop.schedule peer_loop (Time.of_seconds cfg.ping_period) ping_loop
      in
      ()
    end
  in
  Loop.post peer_loop ping_loop;
  (* With the conformance checker riding, the peer also probes a port
     nobody listens on: a correct DUT answers every probe RST-from-
     Closed (legal, Table I); the Ack_from_closed sabotage answers
     with a bare ACK the checker's segment table must reject. *)
  if fsm_wanted then begin
    let probe_port = ref 40_000 in
    let rec probe_loop () =
      if now () < ping_deadline then begin
        incr probe_port;
        Sink.send_tcp_syn peer ~src:peer_addr ~src_port:!probe_port
          ~dst:host_addr ~dst_port:9;
        ignore
          (Loop.schedule peer_loop (Time.of_seconds 0.05) probe_loop
            : unit -> unit)
      end
    in
    Loop.post peer_loop probe_loop
  end;
  (* Stale_established: mid-run, on the TCP server's own domain, the
     engine "crashes" (Table I teardown) and comes back with its old
     Established PCBs forged — the checker must see Closed→Established
     with no handshake. *)
  (match cfg.break_tcp with
  | Some Tcp.Stale_established ->
      let tcp_loop = loop_of_slot.(slot_index "tcp") in
      ignore
        (Loop.schedule tcp_loop
           (Time.of_seconds (0.5 *. cfg.seconds))
           (fun () ->
             let engine = Tcp_srv.engine tcp_srv in
             let tuples = Tcp.established_tuples engine in
             Tcp.shutdown_all engine;
             Tcp.resurrect engine tuples)
          : unit -> unit)
  | Some Tcp.Ack_from_closed | None -> ());
  Loop.post drv_loop arm_confirm_flush;
  (* {3 Sabotage: deliberate races that must fail through the detector} *)
  let unfenced_counter = ref 0 in
  (match cfg.break_race with
  | Some Loop_unfenced_counter ->
      (* Two loops hammer a plain shared int from timers; nothing
         orders the bursts. The main thread also polls it during its
         sleep (below), which is unordered with the loops by
         construction — no incidental ring traffic can save it. *)
      let arm_on l =
        let rec tick () =
          for _ = 1 to 8 do
            incr unfenced_counter;
            Hook.native_access Hook.N_counter ~id:1 ~sub:0 ~write:true
          done;
          ignore (Loop.schedule l (Time.of_micros 200.) tick : unit -> unit)
        in
        ignore (Loop.schedule l (Time.of_micros 200.) tick : unit -> unit)
      in
      arm_on loops.(0);
      arm_on loops.(1)
  | _ -> ());
  let saboteur_stop = Atomic.make false in
  let spawn_saboteur () =
    (* A second producer on drv0.wire_rx — the peer's ring. The junk
       frames parse as garbage and are dropped upstream; the crime is
       the push itself, from a domain that does not own the ring. *)
    Domain.spawn (fun () ->
        (* Register under a name (and pick up the spawn-fence clock —
           Domain.spawn really does order the wiring before us). *)
        Hook.native_emit (Hook.N_loop_start { loop = saboteur_loop_id });
        let junk = Bytes.make 60 '\000' in
        while not (Atomic.get saboteur_stop) do
          for _ = 1 to 16 do
            ignore (Sim_chan.send wire_to_host junk)
          done;
          Unix.sleepf 0.001
        done)
  in
  (* {3 Spawn, run, stop, join} *)
  (* Wiring is done: publish it to the detector. Everything above
     happens-before every loop body (Domain.spawn edge); ring
     ownership claims start here. *)
  if race_wanted then Race.Dynamic.fence ();
  let domains_h = Array.map (fun l -> Domain.spawn (fun () -> Loop.run l)) loops in
  let saboteur =
    match cfg.break_race with
    | Some Spsc_two_producers -> Some (spawn_saboteur ())
    | _ -> None
  in
  (* Sliced sleep rather than one big sleepf: the unfenced-counter
     sabotage wants the main thread to read the counter mid-run. *)
  let sleep_until deadline =
    let rec go () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0. then begin
        Unix.sleepf (Float.min remaining 0.05);
        (match cfg.break_race with
        | Some Loop_unfenced_counter ->
            ignore (Sys.opaque_identity !unfenced_counter);
            Hook.native_access Hook.N_counter ~id:1 ~sub:0 ~write:false
        | _ -> ());
        go ()
      end
    in
    go ()
  in
  sleep_until (epoch +. cfg.seconds);
  (* Grace: let retransmissions and final confirms drain. *)
  Unix.sleepf 0.25;
  Atomic.set saboteur_stop true;
  Option.iter Domain.join saboteur;
  Array.iter Loop.request_stop loops;
  Array.iter Domain.join domains_h;
  (* Disarm before touching any cross-domain state from this thread:
     the post-join stat reads are ordered by Domain.join, which the
     detector does not model. *)
  let race_outcome =
    if race_wanted then Some (Race.Dynamic.disarm ()) else None
  in
  let fsm_outcome =
    if fsm_wanted then begin
      let ok = Tcpfsm.violations () = [] in
      let js = Tcpfsm.verdict_json () in
      Tcpfsm.uninstall_native ();
      Some (ok, js)
    end
    else None
  in
  Array.iter
    (fun l ->
      match Loop.failure l with
      | Some e ->
          failwith
            (Printf.sprintf "native domain %d died: %s" (Loop.index l)
               (Printexc.to_string e))
      | None -> ())
    loops;
  let elapsed = cfg.seconds in
  let rtts = List.rev_map Time.to_seconds !ping_rtts in
  let n_pings = List.length rtts in
  let rtt_mean_us =
    if n_pings = 0 then 0.
    else List.fold_left ( +. ) 0. rtts /. float_of_int n_pings *. 1e6
  in
  let rtt_p99_us =
    if n_pings = 0 then 0.
    else begin
      let sorted = List.sort compare rtts in
      let idx = min (n_pings - 1) (n_pings * 99 / 100) in
      List.nth sorted idx *. 1e6
    end
  in
  {
    domains_used = n_domains;
    seconds_run = elapsed;
    goodput_mbps = float_of_int !tcp_bytes *. 8. /. elapsed /. 1e6;
    tcp_bytes = !tcp_bytes;
    iperf_bytes_sent = Apps.Iperf.bytes_sent iperf;
    frames_to_peer = !frames_to_peer;
    frames_from_peer = !frames_from_peer;
    rx_no_buffer = !rx_no_buffer;
    icmp_echoes = Ip_srv.icmp_echoes_answered ip_srv;
    ping_count = n_pings;
    ping_rtt_us_mean = rtt_mean_us;
    ping_rtt_us_p99 = rtt_p99_us;
    checksum_failures = Sink.checksum_failures peer;
    rings = List.map (fun f -> f ()) !ring_stats;
    loops = Array.to_list (Array.map Loop.stats loops);
    race = race_outcome;
    tcpfsm = fsm_outcome;
  }
