(** The native runtime: the split stack on real OCaml 5 domains.

    Runs the same server modules the simulator runs — SYSCALL, TCP,
    UDP, IP, PF and a driver — as event loops pinned to domains,
    communicating over real {!Newt_channels.Spsc_queue} rings, with
    the spin-then-park doorbell of {!Loop} standing in for the paper's
    MONITOR/MWAIT. The servers are byte-identical to the simulated
    ones: only the {!Newt_sim.Exec} backend changes. *)

type overhead =
  | No_overhead
  | Kipc_trap  (** A kernel-lock round trip per channel send. *)
  | Copy_per_hop  (** Two MSS-sized copies per channel send. *)

(** Deliberate concurrency bugs for the race-detector negative
    controls — the [--break-recovery] pattern applied to memory
    ordering. Each mode must make the run exit through the detector. *)
type break_race =
  | Spsc_two_producers
      (** A second domain pushes onto the peer's wire ring. *)
  | Loop_unfenced_counter
      (** Two loops and the main thread share a plain [int ref]. *)

val break_race_of_string : string -> break_race option
val break_race_to_string : break_race -> string
val break_race_modes : string list

type config = {
  domains : int;
  seconds : float;
  seed : int;
  chan_capacity : int;
  write_size : int;
  spin_budget : int;
  never_park : bool;
  confirm_batch : int;  (** Driver TX confirms coalesced per message. *)
  overhead : overhead;  (** Channel-cost ablation (cross-validation). *)
  ping_period : float;  (** Seconds between ICMP echo probes. *)
  port : int;
  race : bool;  (** Arm {!Newt_verify.Race.Dynamic} around the run. *)
  race_sample : int;
      (** Detector sampling period (power of two; 1 = check every
          access). Clock joins are never sampled out. *)
  break_race : break_race option;
  tcp_fsm : bool;
      (** Arm {!Newt_verify.Tcpfsm} as the native TCP-hook listener for
          the run; the peer then also probes a closed port so the
          RST-from-Closed contract is exercised, not just vacuously
          satisfied. *)
  break_tcp : Newt_net.Tcp.sabotage option;
      (** Plant a deliberate TCP conformance bug (implies the checker):
          [Ack_from_closed] arms the engine-level sabotage on the DUT;
          [Stale_established] crash-and-resurrects the TCP engine's
          connections mid-run on its own domain. Each must make the run
          fail through the checker. *)
}

val default_config : config

val validate :
  recommended:int ->
  ?allow_oversubscribe:bool ->
  domains:int ->
  unit ->
  (unit, string) Stdlib.result
(** Refuse configurations that would silently measure the wrong thing:
    fewer than 2 domains, or more domains than
    [Domain.recommended_domain_count] (pass [allow_oversubscribe] to
    force time-slicing, e.g. for smoke tests on small machines). This
    is the no-silent-fallback guard: the caller must error out, never
    quietly run the simulator instead. *)

val ownership_plan :
  ?break_race:break_race -> domains:int -> unit -> Newt_verify.Race.Plan.t
(** The static model of [run]'s wiring: every ring, inbox, timer
    wheel, pool, table and counter the native run creates, with its
    writers/readers and the primitive its cross-domain edges ride,
    under the same round-robin placement [run] uses. Feed it to
    {!Newt_verify.Race.check_plan}; [break_race] lowers the matching
    sabotage into the plan so the lint flags it statically too. *)

type ring_stat = {
  ring : string;
  sent : int;
  dropped : int;
  max_occupancy : int;
  ring_capacity : int;
}

type result = {
  domains_used : int;
  seconds_run : float;
  goodput_mbps : float;  (** Receiver-side TCP payload rate. *)
  tcp_bytes : int;
  iperf_bytes_sent : int;
  frames_to_peer : int;
  frames_from_peer : int;
  rx_no_buffer : int;  (** Inbound frames dropped: RX pool empty. *)
  icmp_echoes : int;
  ping_count : int;
  ping_rtt_us_mean : float;
  ping_rtt_us_p99 : float;
  checksum_failures : int;  (** Peer-observed; must be 0. *)
  rings : ring_stat list;
  loops : Loop.stats list;
  race : Newt_verify.Race.Dynamic.outcome option;
      (** Present when the run was raced ([config.race] or a
          [break_race] mode); the JSON carries it as a ["race"] block
          in the unified verifier shape. *)
  tcpfsm : (bool * string) option;
      (** Present when the conformance checker rode the run
          ([config.tcp_fsm] or a [break_tcp] mode): the ok flag plus
          {!Newt_verify.Tcpfsm.verdict_json}, carried as a ["tcpfsm"]
          block in the JSON. *)
}

val json_of_result : result -> string

val run : config -> result
(** Wire the stack, spawn [config.domains] domains, drive an
    iperf-style bulk TCP flow plus a periodic ICMP echo from the peer
    for [config.seconds] of wall-clock time, then stop the domains and
    gather counters. Raises [Failure] if any domain died. Call
    {!validate} first. *)
