module Machine = Newt_hw.Machine
module Trace = Newt_sim.Trace
module Pubsub = Newt_channels.Pubsub
module Component = Newt_stack.Component
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation

type 'srv t = {
  set_name : string;
  names : string array;
  comps : Component.t array;
  servers : 'srv array;
  mutable rs : Reincarnation.t option;
  mutable load_of : ('srv -> float) option;
}

let create machine ~name ?names ~members ~directory ~trace ~storage ~make () =
  if members <= 0 then invalid_arg "Replica_set: members must be positive";
  let name_of =
    match names with
    | Some f -> f
    | None ->
        fun i -> if members = 1 then name else Printf.sprintf "%s%d" name i
  in
  let names = Array.init members name_of in
  let comps =
    Array.map
      (fun n ->
        Component.create machine ~name:n
          ~core:(Machine.add_dedicated_core machine)
          ~directory ~trace ())
      names
  in
  let servers =
    Array.mapi
      (fun i comp ->
        let save, load = Storage.owner_view storage ~owner:names.(i) in
        make i comp ~save ~load)
      comps
  in
  { set_name = name; names; comps; servers; rs = None; load_of = None }

let size t = Array.length t.comps
let set_name t = t.set_name
let name t i = t.names.(i)
let comp t i = t.comps.(i)
let srv t i = t.servers.(i)
let comps t = t.comps
let servers t = t.servers
let owner t i = i mod size t

let supervise t rs ~notify_crash ~notify_restart =
  t.rs <- Some rs;
  Array.iteri
    (fun i comp ->
      Reincarnation.watch rs comp ~notify_crash:(notify_crash i)
        ~notify_restart:(notify_restart i) ())
    t.comps

let kill t i =
  match t.rs with
  | Some rs -> Reincarnation.kill rs t.comps.(i)
  | None -> invalid_arg (t.set_name ^ ": kill on an unsupervised replica set")

let restarts t i =
  match t.rs with Some rs -> Reincarnation.restarts_of rs t.comps.(i) | None -> 0

let set_load t f = t.load_of <- Some f

let loads t =
  match t.load_of with
  | Some f -> Array.map f t.servers
  | None -> Array.map (fun _ -> 0.) t.servers

type plane = {
  plane_name : string;
  members : int;
  member_loads : unit -> float array;
}

let plane t =
  { plane_name = t.set_name; members = size t; member_loads = (fun () -> loads t) }

let plane_imbalance p = Shard_map.imbalance ~loads:(p.member_loads ())

let projected_loads ~shards planes =
  let acc = Array.make (max shards 1) 0. in
  List.iter
    (fun p ->
      let loads = p.member_loads () in
      let m = Array.length loads in
      let total = Array.fold_left ( +. ) 0. loads in
      if m > 0 && total > 0. then
        Array.iteri
          (fun j l ->
            (* How many transport-shard buckets member [j] serves. *)
            let served = if j >= shards then 0 else (shards - j + m - 1) / m in
            if served > 0 then begin
              let per = l /. total /. float_of_int served in
              let i = ref j in
              while !i < shards do
                acc.(!i) <- acc.(!i) +. per;
                i := !i + m
              done
            end)
          loads)
    planes;
  acc
