(** The uniform replication plane.

    Every replicated layer of the sharded stack — transport shards, IP
    replicas, PF shards — is the same mechanism wearing different
    partition functions: N instances of one {!Newt_stack.Component}
    server, each on a dedicated core with its own storage namespace,
    supervised independently by the reincarnation server, and reporting
    a per-member load so imbalance is observable (and rebalanceable)
    for {e every} plane, not just the transport one.

    A [Replica_set] owns exactly that machinery once. The server module
    stays ordinary ({!Newt_stack.Tcp_srv}, {!Newt_stack.Pf_srv}, ...);
    the supervisor instantiates a set with a [make] callback and a
    partition convention: member [m] of an [M]-member set serves the
    transport shards [i] with [i mod M = m] (the IP-replica rule of
    PR 2, now shared by all planes), or — for the PF plane — the flows
    [f] with [shard_of f mod M = m]. *)

type 'srv t

val create :
  Newt_hw.Machine.t ->
  name:string ->
  ?names:(int -> string) ->
  members:int ->
  directory:Newt_channels.Pubsub.t ->
  trace:Newt_sim.Trace.t ->
  storage:Newt_reliability.Storage.t ->
  make:
    (int ->
    Newt_stack.Component.t ->
    save:(string -> string -> unit) ->
    load:(string -> string option) ->
    'srv) ->
  unit ->
  'srv t
(** [members] component servers, each created on a fresh dedicated
    core and handed its own storage namespace (its member name).
    Default naming: the bare [name] when [members = 1] (so a 1-member
    set is wire-compatible with the unreplicated stack — same channel
    keys, same storage owner), ["<name><i>"] otherwise; [?names]
    overrides (the transport planes always index). *)

val size : 'srv t -> int
val set_name : 'srv t -> string
val name : 'srv t -> int -> string
val comp : 'srv t -> int -> Newt_stack.Component.t
val srv : 'srv t -> int -> 'srv
val comps : 'srv t -> Newt_stack.Component.t array
val servers : 'srv t -> 'srv array

val owner : 'srv t -> int -> int
(** The member serving partition index [i]: [i mod size]. This is THE
    partition function — the IP replica of transport shard [i], the PF
    shard of a flow's [Shard_map.shard_of] value. *)

(** {1 Supervision} *)

val supervise :
  'srv t ->
  Newt_reliability.Reincarnation.t ->
  notify_crash:(int -> (unit -> unit) list) ->
  notify_restart:(int -> (unit -> unit) list) ->
  unit
(** Watch every member independently: member [m]'s crash runs
    [notify_crash m] (neighbours abort/fence exactly that member's
    work), its completed recovery runs [notify_restart m]. *)

val kill : 'srv t -> int -> unit
(** Crash member [i] (fault injection); the reincarnation server
    recovers it. Raises if the set was never supervised. *)

val restarts : 'srv t -> int -> int
(** Restarts of member [i] so far (0 when unsupervised). *)

(** {1 Load, imbalance, rebalancing} *)

val set_load : 'srv t -> ('srv -> float) -> unit
(** How much work a member has done (bytes out, verdicts issued, ...)
    — the per-plane load metric. *)

val loads : 'srv t -> float array

type plane = {
  plane_name : string;
  members : int;
  member_loads : unit -> float array;
}
(** A type-erased view of a set, so heterogeneous sets can be listed
    together for whole-stack imbalance accounting. *)

val plane : 'srv t -> plane

val plane_imbalance : plane -> float
(** Max/mean of the plane's member loads (1.0 = balanced, also the
    no-load answer). *)

val projected_loads : shards:int -> plane list -> float array
(** Fold every plane's observed load onto the transport-shard buckets
    the RSS indirection table moves: member [m] of an [M]-member plane
    serves shards [i mod M = m], so its normalized load is spread
    evenly over those buckets. Planes with no load yet are skipped.
    The result feeds {!Shard_map.rebalance}, making a hot PF shard or
    IP replica — not just a hot TCP shard — visible to the
    rebalancer. *)
