module Rss = Newt_nic.Rss

type t = { rss : Rss.t; mutable port_cursor : int }

let create ?seed ~shards ?buckets () =
  if shards <= 0 then invalid_arg "Shard_map.create: shards must be positive";
  { rss = Rss.create ?seed ~queues:shards ?buckets (); port_cursor = 0 }

let shards t = Rss.queues t.rss
let rss t = t.rss
let shard_of t ~src ~sport ~dst ~dport = Rss.queue_of t.rss ~src ~sport ~dst ~dport

let ephemeral_lo = 49152
let ephemeral_range = 65536 - ephemeral_lo

let port_for_shard t ?(in_use = fun _ -> false) ~shard ~src ~dst ~dst_port () =
  let start = t.port_cursor in
  let rec scan i =
    if i >= ephemeral_range then
      (* Every ephemeral port hashing to [shard] for this destination
         is already taken: a hard resource limit, not a retry case. *)
      Error `Exhausted
    else
      let sport = ephemeral_lo + ((start + i) mod ephemeral_range) in
      if
        shard_of t ~src ~sport ~dst ~dport:dst_port = shard
        && not (in_use sport)
      then begin
        t.port_cursor <- (start + i + 1) mod ephemeral_range;
        Ok sport
      end
      else scan (i + 1)
  in
  scan 0

let imbalance ~loads =
  let n = Array.length loads in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left ( +. ) 0.0 loads in
    if total <= 0.0 then 1.0
    else
      let mean = total /. float_of_int n in
      Array.fold_left Float.max 0.0 loads /. mean
  end

(* Greedy bucket reassignment. Expected per-shard load after a move is
   estimated by treating each bucket of a shard as carrying an equal
   slice of that shard's observed load. *)
let rebalance t ~loads =
  let n = shards t in
  if Array.length loads <> n then
    invalid_arg "Shard_map.rebalance: loads length must equal shards";
  let table = Rss.table t.rss in
  let buckets = Array.length table in
  let bucket_count = Array.make n 0 in
  Array.iter (fun q -> bucket_count.(q) <- bucket_count.(q) + 1) table;
  (* Per-bucket weight of shard q's current load. *)
  let weight q =
    if bucket_count.(q) = 0 then 0.0 else loads.(q) /. float_of_int bucket_count.(q)
  in
  (* Estimated load per shard, updated as buckets move. *)
  let est = Array.copy loads in
  let moved = ref 0 in
  let continue = ref true in
  while !continue && !moved < buckets do
    let hi = ref 0 and lo = ref 0 in
    for q = 1 to n - 1 do
      if est.(q) > est.(!hi) then hi := q;
      if est.(q) < est.(!lo) then lo := q
    done;
    let w = weight !hi in
    (* Moving one bucket helps only if the donor stays above the
       recipient's new level — otherwise we would oscillate. *)
    if !hi = !lo || w <= 0.0 || bucket_count.(!hi) <= 1
       || est.(!hi) -. w < est.(!lo) +. w
    then continue := false
    else begin
      (* Find one bucket of [hi] and hand it to [lo]. *)
      let b = ref (-1) in
      Array.iteri (fun i q -> if !b < 0 && q = !hi then b := i) table;
      if !b < 0 then continue := false
      else begin
        table.(!b) <- !lo;
        Rss.set_bucket t.rss ~bucket:!b ~queue:!lo;
        bucket_count.(!hi) <- bucket_count.(!hi) - 1;
        bucket_count.(!lo) <- bucket_count.(!lo) + 1;
        est.(!hi) <- est.(!hi) -. w;
        est.(!lo) <- est.(!lo) +. w;
        incr moved
      end
    end
  done;
  !moved
