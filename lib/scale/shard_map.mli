(** The flow→shard steering function, shared by every layer.

    The scaling design of the paper's discussion — several TCP instances
    fed by a multi-queue NIC — only works if {e all} layers agree where
    a flow lives: the NIC's RSS engine (upward, per frame), the IP
    server's fan-out (upward, per segment), and the SYSCALL server's
    routing (downward, per call). This module is that single source of
    truth: a thin wrapper over the device's own {!Newt_nic.Rss} engine,
    so software steering and hardware steering cannot disagree.

    For {e outbound} connections the causality is reversed:
    {!port_for_shard} searches the ephemeral range for a source port
    whose hash maps back to the requesting shard, so the flow's ACKs
    arrive on that shard's RX queue. *)

type t

val create : ?seed:int -> shards:int -> ?buckets:int -> unit -> t
(** [shards] steering targets behind a [buckets]-entry indirection
    table (default 128). *)

val shards : t -> int

val rss : t -> Newt_nic.Rss.t
(** The underlying RSS engine — hand this same value to the NIC so the
    two steer identically. *)

val shard_of :
  t ->
  src:Newt_net.Addr.Ipv4.t ->
  sport:int ->
  dst:Newt_net.Addr.Ipv4.t ->
  dport:int ->
  int
(** Where a flow lives. Symmetric in the two endpoints. *)

val port_for_shard :
  t ->
  ?in_use:(int -> bool) ->
  shard:int ->
  src:Newt_net.Addr.Ipv4.t ->
  dst:Newt_net.Addr.Ipv4.t ->
  dst_port:int ->
  unit ->
  (int, [ `Exhausted ]) result
(** An ephemeral source port (49152–65535) that {!shard_of} maps to
    [shard] for this destination and that [in_use] (default: nothing
    is) does not reject — the caller passes its connection table so a
    picked port is never silently reused. Scans the whole ephemeral
    range from a rotating cursor, so concurrent connections get
    distinct ports; [Error `Exhausted] means every candidate port
    hashing to [shard] for this destination is in use — a genuine
    resource limit the caller must surface, not retry. *)

val rebalance : t -> loads:float array -> int
(** Reprogram the indirection table so expected load (bucket count
    weighted by the observed per-shard [loads]) evens out: buckets move
    from overloaded to underloaded shards, greedily, until no move
    helps. Returns the number of buckets reassigned. Only {e new} flows
    follow the new table — exactly like reprogramming a real NIC. *)

val imbalance : loads:float array -> float
(** [max load / mean load]; 1.0 is perfect balance, and the guard
    against division by zero is [0/0 = 1]. *)
