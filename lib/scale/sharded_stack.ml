module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Trace = Newt_sim.Trace
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu
module Registry = Newt_channels.Registry
module Sim_chan = Newt_channels.Sim_chan
module Pubsub = Newt_channels.Pubsub
module Addr = Newt_net.Addr
module Tcp = Newt_net.Tcp
module Link = Newt_nic.Link
module Mq = Newt_nic.Mq_e1000
module Rule = Newt_pf.Rule
module Proc = Newt_stack.Proc
module Msg = Newt_stack.Msg
module Mq_drv_srv = Newt_stack.Mq_drv_srv
module Ip_srv = Newt_stack.Ip_srv
module Pf_srv = Newt_stack.Pf_srv
module Tcp_srv = Newt_stack.Tcp_srv
module Udp_srv = Newt_stack.Udp_srv
module Syscall_srv = Newt_stack.Syscall_srv
module Sink = Newt_stack.Sink
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  shards : int;
  udp_shards : int;
  link_gbps : float;
  pf_rules : Rule.t list option;
  tcp_config : Tcp.config option;
  nic_reset_time : Time.cycles;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
}

let default_config =
  {
    seed = 42;
    costs = Newt_hw.Costs.default;
    shards = 4;
    udp_shards = 1;
    link_gbps = 40.0;
    pf_rules = None;
    tcp_config = None;
    nic_reset_time = Time.of_seconds 1.2;
    heartbeat_period = Time.of_seconds 0.1;
    restart_delay = Time.of_seconds 0.12;
  }

(* The canonical flow key of the steering journal — the same
   canonicalization the RSS hash applies, so both directions of a flow
   share one entry. *)
type flow_key = int * int * int * int

let ip_int a = Int32.to_int (Addr.Ipv4.to_int32 a) land 0xFFFFFFFF

let flow_key src sport dst dport : flow_key =
  let a = (ip_int src, sport) and b = (ip_int dst, dport) in
  let (i1, p1), (i2, p2) = if a <= b then (a, b) else (b, a) in
  (i1, p1, i2, p2)

type t = {
  config : config;
  engine : Engine.t;
  machine : Machine.t;
  registry : Registry.t;
  trace : Trace.t;
  directory : Pubsub.t;
  storage : Storage.t;
  rs : Reincarnation.t;
  sm : Shard_map.t;
  sc : Syscall_srv.t;
  tcps : Tcp_srv.t array;
  udps : Udp_srv.t array;
  ip : Ip_srv.t;
  pf : Pf_srv.t option;
  drv : Mq_drv_srv.t;
  nic : Mq.t;
  link : Link.t;
  sink : Sink.t;
  tcp_procs : Proc.t array;
  udp_procs : Proc.t array;
  ip_to_tcp : Msg.t Sim_chan.t array;
  (* IP's half of the affinity journal (the NIC keeps its own). *)
  steer_journal : (flow_key, int) Hashtbl.t;
  ip_violations : int ref;
  mutable next_app_pid : int;
}

let engine t = t.engine
let machine t = t.machine
let config t = t.config
let sc t = t.sc
let tcp_shard t i = t.tcps.(i)
let udp_shard t i = t.udps.(i)
let ip_srv t = t.ip
let nic t = t.nic
let link t = t.link
let sink t = t.sink
let shard_map t = t.sm

let local_addr _t = Addr.Ipv4.v 10 0 0 1
let sink_addr _t = Addr.Ipv4.v 10 0 0 2

let run t ~until = Engine.run ~until t.engine
let at t when_ f = ignore (Engine.schedule_at t.engine when_ f)

(* Every saturating sender gets a core of its own: two senders
   timesharing one core would pay a full context switch per write,
   which is the workload's bottleneck, not the stack's. *)
let app t =
  let core = Machine.add_timeshared_core t.machine in
  let pid = t.next_app_pid in
  t.next_app_pid <- pid + 1;
  { Syscall_srv.app_core = core; app_pid = pid }

let kill_shard t i = Reincarnation.kill t.rs t.tcp_procs.(i)
let shard_restarts t i = Reincarnation.restarts_of t.rs t.tcp_procs.(i)

type shard_stats = {
  shard : int;
  flows : int;
  segs_out : int;
  bytes_out : int;
  queue_depth : int;
  core_util : float;
  restarts : int;
}

let shard_stats t =
  let now = Engine.now t.engine in
  Array.mapi
    (fun i srv ->
      let eng = Tcp_srv.engine srv in
      let st = Tcp.stats eng in
      {
        shard = i;
        flows = Tcp.connection_count eng;
        segs_out = st.Tcp.segs_out;
        bytes_out = st.Tcp.bytes_out;
        queue_depth = Sim_chan.length t.ip_to_tcp.(i);
        core_util = Cpu.utilization (Proc.core t.tcp_procs.(i)) ~now;
        restarts = shard_restarts t i;
      })
    t.tcps

let imbalance_ratio t =
  let loads = Array.map float_of_int (Mq.rx_queue_packets t.nic) in
  Shard_map.imbalance ~loads

let steering_violations t = Mq.steering_violations t.nic + !(t.ip_violations)

let rebalance t =
  let loads =
    Array.map (fun srv -> float_of_int (Tcp.stats (Tcp_srv.engine srv)).Tcp.bytes_out) t.tcps
  in
  Shard_map.rebalance t.sm ~loads

(* {2 Construction} *)

let create ?(config = default_config) () =
  if config.shards <= 0 then invalid_arg "Sharded_stack: shards must be positive";
  if config.udp_shards <= 0 then
    invalid_arg "Sharded_stack: udp_shards must be positive";
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create ~costs:config.costs engine in
  let registry = Registry.create () in
  let trace = Trace.create () in
  let directory = Pubsub.create () in
  let storage = Storage.create () in
  let n = config.shards and nu = config.udp_shards in
  let sm = Shard_map.create ~seed:config.seed ~shards:n () in
  (* Cores: one dedicated per OS component, including one per shard. *)
  let mkproc name = Proc.create machine ~name ~core:(Machine.add_dedicated_core machine) ~trace () in
  let sc_proc = mkproc "sc" in
  let ip_proc = mkproc "ip" in
  let pf_proc = match config.pf_rules with Some _ -> Some (mkproc "pf") | None -> None in
  let drv_proc = mkproc "mqdrv" in
  let tcp_procs = Array.init n (fun i -> mkproc (Printf.sprintf "tcp%d" i)) in
  let udp_procs = Array.init nu (fun i -> mkproc (Printf.sprintf "udp%d" i)) in
  (* One fat wire, a multi-queue device on our side, an ideal peer on
     the other. *)
  let link =
    Link.create engine
      ~bandwidth_bps:(int_of_float (config.link_gbps *. 1e9))
      ~queue_frames:1024 ()
  in
  let nic =
    Mq.create engine ~registry ~link ~side:Link.Left
      ~mac:(Addr.Mac.of_index 100) ~rss:(Shard_map.rss sm)
      ~reset_time:config.nic_reset_time ()
  in
  let sink =
    Sink.create engine ~link ~side:Link.Right ~addr:(Addr.Ipv4.v 10 0 0 2)
      ~mac:(Addr.Mac.of_index 200) ()
  in
  (* Servers, each with its own storage view. *)
  let view name = Storage.owner_view storage ~owner:name in
  let save_ip, load_ip = view "ip" in
  let sc_srv = Syscall_srv.create machine ~proc:sc_proc () in
  let tcps =
    Array.init n (fun i ->
        let save, load = view (Printf.sprintf "tcp%d" i) in
        Tcp_srv.create machine ~proc:tcp_procs.(i) ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1)
          ?tcp_config:config.tcp_config ~save ~load ())
  in
  let udps =
    Array.init nu (fun i ->
        let save, load = view (Printf.sprintf "udp%d" i) in
        Udp_srv.create machine ~proc:udp_procs.(i) ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1) ~save ~load ())
  in
  let ip_srv =
    Ip_srv.create machine ~proc:ip_proc ~registry ~save:save_ip ~load:load_ip ()
  in
  let pf_srv =
    match pf_proc with
    | Some proc ->
        let save, load = view "pf" in
        Some (Pf_srv.create machine ~proc ~save ~load ())
    | None -> None
  in
  let drv = Mq_drv_srv.create machine ~proc:drv_proc ~nic () in
  (* Channels (Figure 3, replicated per shard), published under
     meaningful keys. *)
  let chan_ids = ref 0 in
  let chan () =
    incr chan_ids;
    Sim_chan.create ~capacity:8192 ~id:!chan_ids ()
  in
  let publish key c =
    Pubsub.publish directory ~key ~creator:0 ~chan_id:(Sim_chan.id c);
    c
  in
  let republish key c =
    Pubsub.publish directory ~key ~creator:0 ~chan_id:(Sim_chan.id c)
  in
  (* The shared steering function, with IP's half of the affinity
     journal wrapped around it. *)
  let steer_journal = Hashtbl.create 64 in
  let ip_violations = ref 0 in
  let journal_steer shard_of ~src ~sport ~dst ~dport =
    let s = shard_of ~src ~sport ~dst ~dport in
    let key = flow_key src sport dst dport in
    (match Hashtbl.find_opt steer_journal key with
    | None -> Hashtbl.replace steer_journal key s
    | Some s' when s' = s -> ()
    | Some _ ->
        incr ip_violations;
        Hashtbl.replace steer_journal key s);
    s
  in
  let tcp_steer =
    journal_steer (fun ~src ~sport ~dst ~dport ->
        Shard_map.shard_of sm ~src ~sport ~dst ~dport)
  in
  let udp_steer ~src ~sport ~dst ~dport =
    Shard_map.shard_of sm ~src ~sport ~dst ~dport mod nu
  in
  (* IP <-> PF: one filter shared by all shards, fed by the union of
     their connection tables. *)
  let pf_wiring =
    match (pf_srv, config.pf_rules) with
    | Some pf, Some rules ->
        let ch_ip_to_pf = publish "ip.to_pf" (chan ())
        and ch_pf_to_ip = publish "pf.to_ip" (chan ()) in
        Ip_srv.connect_pf ip_srv ~to_pf:ch_ip_to_pf ~from_pf:ch_pf_to_ip;
        Pf_srv.connect_ip pf ~from_ip:ch_ip_to_pf ~to_ip:ch_pf_to_ip;
        Pf_srv.set_rules pf rules;
        Pf_srv.set_conntrack_sources pf
          ~tcp:(fun () ->
            Array.to_list tcps |> List.concat_map Tcp_srv.conntrack_flows)
          ~udp:(fun () ->
            Array.to_list udps |> List.concat_map Udp_srv.conntrack_flows);
        Some (pf, ch_ip_to_pf, ch_pf_to_ip)
    | _ -> None
  in
  (* IP <-> transport shards. *)
  let tcp_to_ip =
    Array.init n (fun i -> publish (Printf.sprintf "tcp%d.to_ip" i) (chan ()))
  in
  let ip_to_tcp =
    Array.init n (fun i -> publish (Printf.sprintf "ip.to_tcp%d" i) (chan ()))
  in
  Ip_srv.connect_transport_sharded ip_srv ~proto:`Tcp ~steer:tcp_steer
    ~pairs:(Array.init n (fun i -> (tcp_to_ip.(i), ip_to_tcp.(i))));
  Array.iteri
    (fun i srv -> Tcp_srv.connect_ip srv ~to_ip:tcp_to_ip.(i) ~from_ip:ip_to_tcp.(i))
    tcps;
  let udp_to_ip =
    Array.init nu (fun i -> publish (Printf.sprintf "udp%d.to_ip" i) (chan ()))
  in
  let ip_to_udp =
    Array.init nu (fun i -> publish (Printf.sprintf "ip.to_udp%d" i) (chan ()))
  in
  Ip_srv.connect_transport_sharded ip_srv ~proto:`Udp ~steer:udp_steer
    ~pairs:(Array.init nu (fun i -> (udp_to_ip.(i), ip_to_udp.(i))));
  Array.iteri
    (fun i srv -> Udp_srv.connect_ip srv ~to_ip:udp_to_ip.(i) ~from_ip:ip_to_udp.(i))
    udps;
  (* SYSCALL <-> transport shards. *)
  let sc_to_tcp =
    Array.init n (fun i -> publish (Printf.sprintf "sc.to_tcp%d" i) (chan ()))
  in
  let tcp_to_sc =
    Array.init n (fun i -> publish (Printf.sprintf "tcp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Tcp
    ~pairs:(Array.init n (fun i -> (sc_to_tcp.(i), tcp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Tcp_srv.connect_sc srv ~from_sc:sc_to_tcp.(i) ~to_sc:tcp_to_sc.(i))
    tcps;
  let sc_to_udp =
    Array.init nu (fun i -> publish (Printf.sprintf "sc.to_udp%d" i) (chan ()))
  in
  let udp_to_sc =
    Array.init nu (fun i -> publish (Printf.sprintf "udp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Udp
    ~pairs:(Array.init nu (fun i -> (sc_to_udp.(i), udp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Udp_srv.connect_sc srv ~from_sc:sc_to_udp.(i) ~to_sc:udp_to_sc.(i))
    udps;
  (* New sockets round-robin over the shards; the chosen shard then
     picks a source port that hashes back to itself, so any placement
     preserves flow affinity. *)
  let next_tcp_sock = ref 0 and next_udp_sock = ref 0 in
  Syscall_srv.set_placement sc_srv (fun ~transport ->
      match transport with
      | `Tcp ->
          let s = !next_tcp_sock mod n in
          incr next_tcp_sock;
          s
      | `Udp ->
          let s = !next_udp_sock mod nu in
          incr next_udp_sock;
          s);
  (* Shard affinity for active opens: shard [i] only uses source ports
     that the RSS table maps to queue [i]. *)
  Array.iteri
    (fun i srv ->
      Tcp_srv.set_port_select srv (fun ~src ~dst ~dst_port ->
          Shard_map.port_for_shard sm ~shard:i ~src ~dst ~dst_port))
    tcps;
  (* The interface: one MQ driver serving all queues. *)
  let ch_ip_to_drv = publish "ip.to_mqdrv" (chan ())
  and ch_drv_to_ip = publish "mqdrv.to_ip" (chan ()) in
  let hooks =
    {
      Ip_srv.drv_connect =
        (fun ~rx_from_ip ~tx_to_ip -> Mq_drv_srv.connect_ip drv ~rx_from_ip ~tx_to_ip);
      drv_grant_rx_pool =
        (fun ~alloc ~write -> Mq_drv_srv.grant_rx_pool drv ~alloc ~write);
      drv_on_ip_crash = (fun () -> Mq_drv_srv.on_ip_crash drv);
      drv_on_ip_restart = (fun () -> Mq_drv_srv.on_ip_restart drv);
    }
  in
  let iface =
    Ip_srv.add_iface_custom ip_srv
      { Ip_srv.addr = Addr.Ipv4.v 10 0 0 1; netmask_bits = 24; mac = Mq.mac nic }
      ~hooks ~tx_chan:ch_ip_to_drv ~rx_chan:ch_drv_to_ip
  in
  Ip_srv.add_route ip_srv ~prefix:(Addr.Ipv4.v 10 0 0 0) ~bits:24 ~iface
    ~gateway:None;
  Ip_srv.add_neighbor ip_srv ~iface (Addr.Ipv4.v 10 0 0 2) (Addr.Mac.of_index 200);
  (* Crash and restart procedures. *)
  Array.iteri
    (fun i srv ->
      Proc.set_on_crash tcp_procs.(i) (fun () -> Tcp_srv.crash_cleanup srv);
      Proc.set_on_restart tcp_procs.(i) (fun ~fresh:_ ->
          Tcp_srv.restart srv;
          republish (Printf.sprintf "sc.to_tcp%d" i) sc_to_tcp.(i);
          republish (Printf.sprintf "ip.to_tcp%d" i) ip_to_tcp.(i)))
    tcps;
  Array.iteri
    (fun i srv ->
      Proc.set_on_crash udp_procs.(i) (fun () -> Udp_srv.crash_cleanup srv);
      Proc.set_on_restart udp_procs.(i) (fun ~fresh:_ ->
          Udp_srv.restart srv;
          republish (Printf.sprintf "sc.to_udp%d" i) sc_to_udp.(i);
          republish (Printf.sprintf "ip.to_udp%d" i) ip_to_udp.(i)))
    udps;
  Proc.set_on_crash ip_proc (fun () -> Ip_srv.crash_cleanup ip_srv);
  Proc.set_on_restart ip_proc (fun ~fresh:_ ->
      Ip_srv.restart ip_srv;
      Array.iteri
        (fun i c -> republish (Printf.sprintf "tcp%d.to_ip" i) c)
        tcp_to_ip;
      Array.iteri
        (fun i c -> republish (Printf.sprintf "udp%d.to_ip" i) c)
        udp_to_ip;
      match pf_wiring with
      | Some (_, _, ch_pf_to_ip) -> republish "pf.to_ip" ch_pf_to_ip
      | None -> ());
  (match (pf_wiring, pf_proc) with
  | Some (pf, ch_ip_to_pf, _), Some proc ->
      Proc.set_on_crash proc (fun () -> Pf_srv.crash_cleanup pf);
      Proc.set_on_restart proc (fun ~fresh:_ ->
          Pf_srv.restart pf;
          republish "ip.to_pf" ch_ip_to_pf)
  | _ -> ());
  Proc.set_on_crash drv_proc (fun () -> Mq_drv_srv.crash_cleanup drv);
  Proc.set_on_restart drv_proc (fun ~fresh:_ ->
      Mq_drv_srv.restart drv;
      republish "ip.to_mqdrv" ch_ip_to_drv);
  (* Supervision: each shard recovers independently; a crash reclaims
     only that shard's receive buffers, and only that shard's pending
     syscalls are re-issued. *)
  let rs =
    Reincarnation.create machine ~heartbeat_period:config.heartbeat_period
      ~restart_delay:config.restart_delay ()
  in
  Array.iteri
    (fun i proc ->
      Reincarnation.watch rs proc
        ~notify_crash:
          [ (fun () -> Ip_srv.on_transport_shard_crash ip_srv ~proto:`Tcp ~shard:i) ]
        ~notify_restart:
          [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Tcp) ]
        ())
    tcp_procs;
  Array.iteri
    (fun i proc ->
      Reincarnation.watch rs proc
        ~notify_crash:
          [ (fun () -> Ip_srv.on_transport_shard_crash ip_srv ~proto:`Udp ~shard:i) ]
        ~notify_restart:
          [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Udp) ]
        ())
    udp_procs;
  Reincarnation.watch rs ip_proc
    ~notify_crash:
      (Array.to_list (Array.map (fun srv () -> Tcp_srv.on_ip_crash srv) tcps)
      @ Array.to_list (Array.map (fun srv () -> Udp_srv.on_ip_crash srv) udps))
    ~notify_restart:
      (Array.to_list (Array.map (fun srv () -> Tcp_srv.on_ip_restart srv) tcps)
      @ Array.to_list (Array.map (fun srv () -> Udp_srv.on_ip_restart srv) udps))
    ();
  (match (pf_srv, pf_proc) with
  | Some _, Some proc ->
      Reincarnation.watch rs proc
        ~notify_crash:[ (fun () -> Ip_srv.on_pf_crash ip_srv) ]
        ~notify_restart:[ (fun () -> Ip_srv.on_pf_restart ip_srv) ]
        ()
  | _ -> ());
  Reincarnation.watch rs drv_proc
    ~notify_crash:[ (fun () -> Ip_srv.on_drv_crash ip_srv ~iface) ]
    ~notify_restart:[ (fun () -> Ip_srv.on_drv_restart ip_srv ~iface) ]
    ();
  Reincarnation.start rs;
  {
    config;
    engine;
    machine;
    registry;
    trace;
    directory;
    storage;
    rs;
    sm;
    sc = sc_srv;
    tcps;
    udps;
    ip = ip_srv;
    pf = pf_srv;
    drv;
    nic;
    link;
    sink;
    tcp_procs;
    udp_procs;
    ip_to_tcp;
    steer_journal;
    ip_violations;
    next_app_pid = 10_000;
  }
