module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Trace = Newt_sim.Trace
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu
module Registry = Newt_channels.Registry
module Sim_chan = Newt_channels.Sim_chan
module Pubsub = Newt_channels.Pubsub
module Rich_ptr = Newt_channels.Rich_ptr
module Addr = Newt_net.Addr
module Tcp = Newt_net.Tcp
module Link = Newt_nic.Link
module Mq = Newt_nic.Mq_e1000
module Rule = Newt_pf.Rule
module Component = Newt_stack.Component
module Msg = Newt_stack.Msg
module Mq_drv_srv = Newt_stack.Mq_drv_srv
module Ip_srv = Newt_stack.Ip_srv
module Pf_srv = Newt_stack.Pf_srv
module Tcp_srv = Newt_stack.Tcp_srv
module Udp_srv = Newt_stack.Udp_srv
module Syscall_srv = Newt_stack.Syscall_srv
module Sink = Newt_stack.Sink
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  shards : int;
  udp_shards : int;
  ip_replicas : int;
  link_gbps : float;
  pf_rules : Rule.t list option;
  tcp_config : Tcp.config option;
  nic_reset_time : Time.cycles;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
}

let default_config =
  {
    seed = 42;
    costs = Newt_hw.Costs.default;
    shards = 4;
    udp_shards = 1;
    ip_replicas = 1;
    link_gbps = 40.0;
    pf_rules = None;
    tcp_config = None;
    nic_reset_time = Time.of_seconds 1.2;
    heartbeat_period = Component.Defaults.heartbeat_period;
    restart_delay = Component.Defaults.restart_delay;
  }

(* The canonical flow key of the steering journal — the same
   canonicalization the RSS hash applies, so both directions of a flow
   share one entry. *)
type flow_key = int * int * int * int

let ip_int a = Int32.to_int (Addr.Ipv4.to_int32 a) land 0xFFFFFFFF

let flow_key src sport dst dport : flow_key =
  let a = (ip_int src, sport) and b = (ip_int dst, dport) in
  let (i1, p1), (i2, p2) = if a <= b then (a, b) else (b, a) in
  (i1, p1, i2, p2)

(* ARP learn-broadcast encoding: the binding rides the channel
   directory, the 48-bit MAC packed into the [chan_id] field and the
   protocol address in the key. *)
let mac_to_int m =
  Array.fold_left (fun acc o -> (acc lsl 8) lor o) 0 (Addr.Mac.to_octets m)

let mac_of_int v =
  Addr.Mac.of_octets (Array.init 6 (fun i -> (v lsr ((5 - i) * 8)) land 0xFF))

let arp_key ~iface addr = Printf.sprintf "arp.%d.%s" iface (Addr.Ipv4.to_string addr)

type t = {
  config : config;
  engine : Engine.t;
  machine : Machine.t;
  registry : Registry.t;
  trace : Trace.t;
  directory : Pubsub.t;
  storage : Storage.t;
  rs : Reincarnation.t;
  sm : Shard_map.t;
  sc : Syscall_srv.t;
  tcps : Tcp_srv.t array;
  udps : Udp_srv.t array;
  ips : Ip_srv.t array;
  pf : Pf_srv.t option;
  drv : Mq_drv_srv.t;
  nic : Mq.t;
  link : Link.t;
  sink : Sink.t;
  sc_comp : Component.t;
  pf_comp : Component.t option;
  drv_comp : Component.t;
  tcp_comps : Component.t array;
  udp_comps : Component.t array;
  ip_comps : Component.t array;
  tcp_to_ip : Msg.t Sim_chan.t array;
  ip_to_tcp : Msg.t Sim_chan.t array;
  (* IP's half of the affinity journal (the NIC keeps its own) —
     shared by all replicas: shard affinity implies replica affinity. *)
  steer_journal : (flow_key, int) Hashtbl.t;
  ip_violations : int ref;
  mutable next_app_pid : int;
}

let engine t = t.engine
let machine t = t.machine
let config t = t.config
let sc t = t.sc
let tcp_shard t i = t.tcps.(i)
let udp_shard t i = t.udps.(i)
let ip_srv t = t.ips.(0)
let ip_replica t k = t.ips.(k)
let ip_replica_count t = Array.length t.ips
let nic t = t.nic
let link t = t.link
let sink t = t.sink
let shard_map t = t.sm
let directory t = t.directory
let tcp_components t = t.tcp_comps
let ip_components t = t.ip_comps

let components t =
  (t.sc_comp :: Option.to_list t.pf_comp)
  @ [ t.drv_comp ]
  @ Array.to_list t.tcp_comps
  @ Array.to_list t.udp_comps
  @ Array.to_list t.ip_comps

let tcp_channels t =
  Array.init (Array.length t.tcp_to_ip) (fun i ->
      (t.tcp_to_ip.(i), t.ip_to_tcp.(i)))

let local_addr _t = Addr.Ipv4.v 10 0 0 1
let sink_addr _t = Addr.Ipv4.v 10 0 0 2

let run t ~until = Engine.run ~until t.engine
let at t when_ f = ignore (Engine.schedule_at t.engine when_ f)

(* Every saturating sender gets a core of its own: two senders
   timesharing one core would pay a full context switch per write,
   which is the workload's bottleneck, not the stack's. *)
let app t =
  let core = Machine.add_timeshared_core t.machine in
  let pid = t.next_app_pid in
  t.next_app_pid <- pid + 1;
  { Syscall_srv.app_core = core; app_pid = pid }

let on_reincarnated t f = Reincarnation.set_on_reincarnated t.rs f
let kill_shard t i = Reincarnation.kill t.rs t.tcp_comps.(i)
let shard_restarts t i = Reincarnation.restarts_of t.rs t.tcp_comps.(i)
let kill_ip_replica t k = Reincarnation.kill t.rs t.ip_comps.(k)
let ip_replica_restarts t k = Reincarnation.restarts_of t.rs t.ip_comps.(k)

type shard_stats = {
  shard : int;
  flows : int;
  segs_out : int;
  bytes_out : int;
  queue_depth : int;
  core_util : float;
  restarts : int;
}

let shard_stats t =
  let now = Engine.now t.engine in
  Array.mapi
    (fun i srv ->
      {
        shard = i;
        flows = Tcp.connection_count (Tcp_srv.engine srv);
        (* Lifetime counters: the banked totals survive shard restarts,
           so a reincarnated shard neither double-counts nor resets. *)
        segs_out = Tcp_srv.total_segs_out srv;
        bytes_out = Tcp_srv.total_bytes_out srv;
        queue_depth = Sim_chan.length t.ip_to_tcp.(i);
        core_util = Cpu.utilization (Component.core t.tcp_comps.(i)) ~now;
        restarts = shard_restarts t i;
      })
    t.tcps

let imbalance_ratio t =
  let loads = Array.map float_of_int (Mq.rx_queue_packets t.nic) in
  Shard_map.imbalance ~loads

let steering_violations t = Mq.steering_violations t.nic + !(t.ip_violations)

let rebalance t =
  let loads =
    Array.map (fun srv -> float_of_int (Tcp_srv.total_bytes_out srv)) t.tcps
  in
  Shard_map.rebalance t.sm ~loads

(* {2 Construction} *)

let create ?(config = default_config) () =
  if config.shards <= 0 then invalid_arg "Sharded_stack: shards must be positive";
  if config.udp_shards <= 0 then
    invalid_arg "Sharded_stack: udp_shards must be positive";
  if config.ip_replicas <= 0 || config.ip_replicas > config.shards then
    invalid_arg "Sharded_stack: need 1 <= ip_replicas <= shards";
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create ~costs:config.costs engine in
  let registry = Registry.create () in
  let trace = Trace.create () in
  let directory = Pubsub.create () in
  let storage = Storage.create () in
  let n = config.shards and nu = config.udp_shards and r = config.ip_replicas in
  let sm = Shard_map.create ~seed:config.seed ~shards:n () in
  (* Component servers: one dedicated core each, including one per
     transport shard and one per IP replica. *)
  let mkcomp name =
    Component.create machine ~name
      ~core:(Machine.add_dedicated_core machine)
      ~directory ~trace ()
  in
  let ip_name k = if r = 1 then "ip" else Printf.sprintf "ip%d" k in
  let sc_comp = mkcomp "sc" in
  let ip_comps = Array.init r (fun k -> mkcomp (ip_name k)) in
  let pf_comp = match config.pf_rules with Some _ -> Some (mkcomp "pf") | None -> None in
  let drv_comp = mkcomp "mqdrv" in
  let tcp_comps = Array.init n (fun i -> mkcomp (Printf.sprintf "tcp%d" i)) in
  let udp_comps = Array.init nu (fun i -> mkcomp (Printf.sprintf "udp%d" i)) in
  (* One fat wire, a multi-queue device on our side, an ideal peer on
     the other. *)
  let link =
    Link.create engine
      ~bandwidth_bps:(int_of_float (config.link_gbps *. 1e9))
      ~queue_frames:1024 ()
  in
  let nic =
    Mq.create engine ~registry ~link ~side:Link.Left
      ~mac:(Addr.Mac.of_index 100) ~rss:(Shard_map.rss sm)
      ~reset_time:config.nic_reset_time ()
  in
  let sink =
    Sink.create engine ~link ~side:Link.Right ~addr:(Addr.Ipv4.v 10 0 0 2)
      ~mac:(Addr.Mac.of_index 200) ()
  in
  (* Servers, each with its own storage view. *)
  let view name = Storage.owner_view storage ~owner:name in
  let sc_srv = Syscall_srv.create sc_comp () in
  let tcps =
    Array.init n (fun i ->
        let save, load = view (Printf.sprintf "tcp%d" i) in
        Tcp_srv.create tcp_comps.(i) ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1)
          ?tcp_config:config.tcp_config ~save ~load ())
  in
  let udps =
    Array.init nu (fun i ->
        let save, load = view (Printf.sprintf "udp%d" i) in
        Udp_srv.create udp_comps.(i) ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1) ~save ~load ())
  in
  let ips =
    Array.init r (fun k ->
        let save, load = view (ip_name k) in
        Ip_srv.create ip_comps.(k) ~registry ~save ~load ())
  in
  let pf_srv =
    match pf_comp with
    | Some comp ->
        let save, load = view "pf" in
        Some (Pf_srv.create comp ~save ~load ())
    | None -> None
  in
  let drv = Mq_drv_srv.create drv_comp ~nic () in
  (* Channels (Figure 3, replicated per shard and per IP replica).
     [Component.export] publishes each one under its key in the
     directory and re-publishes it when the consuming component is
     reincarnated — the export belongs to the consumer. *)
  let chan_ids = ref 0 in
  let chan () =
    incr chan_ids;
    Sim_chan.create ~capacity:8192 ~id:!chan_ids ()
  in
  let export comp key c =
    Component.export comp ~key c;
    c
  in
  (* The shared steering function, with IP's half of the affinity
     journal wrapped around it. *)
  let steer_journal = Hashtbl.create 64 in
  let ip_violations = ref 0 in
  let journal_steer shard_of ~src ~sport ~dst ~dport =
    let s = shard_of ~src ~sport ~dst ~dport in
    let key = flow_key src sport dst dport in
    (match Hashtbl.find_opt steer_journal key with
    | None -> Hashtbl.replace steer_journal key s
    | Some s' when s' = s -> ()
    | Some _ ->
        incr ip_violations;
        Hashtbl.replace steer_journal key s);
    s
  in
  let tcp_steer =
    journal_steer (fun ~src ~sport ~dst ~dport ->
        Shard_map.shard_of sm ~src ~sport ~dst ~dport)
  in
  let udp_steer ~src ~sport ~dst ~dport =
    Shard_map.shard_of sm ~src ~sport ~dst ~dport mod nu
  in
  (* IP <-> PF: one filter shared by all replicas and shards; each
     replica gets its own request channel so the filter replies to
     whoever asked, and conntrack recovery reads the union of the
     shards' connection tables. *)
  (match (pf_srv, pf_comp, config.pf_rules) with
  | Some pf, Some pfc, Some rules ->
      Array.iteri
        (fun k ip ->
          let to_pf = export pfc (Printf.sprintf "%s.to_pf" (ip_name k)) (chan ())
          and from_pf =
            export ip_comps.(k) (Printf.sprintf "pf.to_%s" (ip_name k)) (chan ())
          in
          Ip_srv.connect_pf ip ~to_pf ~from_pf;
          Pf_srv.connect_ip pf ~from_ip:to_pf ~to_ip:from_pf)
        ips;
      Pf_srv.set_rules pf rules;
      Pf_srv.set_conntrack_sources pf
        ~tcp:(fun () ->
          Array.to_list tcps |> List.concat_map Tcp_srv.conntrack_flows)
        ~udp:(fun () ->
          Array.to_list udps |> List.concat_map Udp_srv.conntrack_flows)
  | _ -> ());
  (* IP <-> transport shards. TCP shard [i]'s requests are served by
     replica [i mod r]; every replica keeps the complete fan-out array
     so a received frame can steer to any shard. *)
  let tcp_to_ip =
    Array.init n (fun i ->
        export ip_comps.(i mod r) (Printf.sprintf "tcp%d.to_ip" i) (chan ()))
  in
  let ip_to_tcp =
    Array.init n (fun i ->
        export tcp_comps.(i) (Printf.sprintf "ip.to_tcp%d" i) (chan ()))
  in
  Array.iteri
    (fun k ip ->
      Ip_srv.connect_transport_sharded
        ~mine:(fun i -> i mod r = k)
        ip ~proto:`Tcp ~steer:tcp_steer
        ~pairs:(Array.init n (fun i -> (tcp_to_ip.(i), ip_to_tcp.(i)))))
    ips;
  Array.iteri
    (fun i srv -> Tcp_srv.connect_ip srv ~to_ip:tcp_to_ip.(i) ~from_ip:ip_to_tcp.(i))
    tcps;
  let udp_to_ip =
    Array.init nu (fun i ->
        export ip_comps.(i mod r) (Printf.sprintf "udp%d.to_ip" i) (chan ()))
  in
  let ip_to_udp =
    Array.init nu (fun i ->
        export udp_comps.(i) (Printf.sprintf "ip.to_udp%d" i) (chan ()))
  in
  Array.iteri
    (fun k ip ->
      Ip_srv.connect_transport_sharded
        ~mine:(fun i -> i mod r = k)
        ip ~proto:`Udp ~steer:udp_steer
        ~pairs:(Array.init nu (fun i -> (udp_to_ip.(i), ip_to_udp.(i)))))
    ips;
  Array.iteri
    (fun i srv -> Udp_srv.connect_ip srv ~to_ip:udp_to_ip.(i) ~from_ip:ip_to_udp.(i))
    udps;
  (* SYSCALL <-> transport shards. *)
  let sc_to_tcp =
    Array.init n (fun i ->
        export tcp_comps.(i) (Printf.sprintf "sc.to_tcp%d" i) (chan ()))
  in
  let tcp_to_sc =
    Array.init n (fun i ->
        export sc_comp (Printf.sprintf "tcp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Tcp
    ~pairs:(Array.init n (fun i -> (sc_to_tcp.(i), tcp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Tcp_srv.connect_sc srv ~from_sc:sc_to_tcp.(i) ~to_sc:tcp_to_sc.(i))
    tcps;
  let sc_to_udp =
    Array.init nu (fun i ->
        export udp_comps.(i) (Printf.sprintf "sc.to_udp%d" i) (chan ()))
  in
  let udp_to_sc =
    Array.init nu (fun i ->
        export sc_comp (Printf.sprintf "udp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Udp
    ~pairs:(Array.init nu (fun i -> (sc_to_udp.(i), udp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Udp_srv.connect_sc srv ~from_sc:sc_to_udp.(i) ~to_sc:udp_to_sc.(i))
    udps;
  (* New sockets round-robin over the shards; the chosen shard then
     picks a source port that hashes back to itself, so any placement
     preserves flow affinity. *)
  let next_tcp_sock = ref 0 and next_udp_sock = ref 0 in
  Syscall_srv.set_placement sc_srv (fun ~transport ->
      match transport with
      | `Tcp ->
          let s = !next_tcp_sock mod n in
          incr next_tcp_sock;
          s
      | `Udp ->
          let s = !next_udp_sock mod nu in
          incr next_udp_sock;
          s);
  (* Shard affinity for active opens: shard [i] only uses source ports
     that the RSS table maps to queue [i], skipping ports its engine
     already has bound to the same destination; exhaustion of the whole
     range is a hard connect error, not a silent wrong-queue open. *)
  Array.iteri
    (fun i srv ->
      Tcp_srv.set_port_select srv (fun ~src ~dst ~dst_port ->
          let in_use port =
            Tcp.port_in_use (Tcp_srv.engine srv) ~local_ip:src ~port
              ~remote_ip:dst ~remote_port:dst_port
          in
          match
            Shard_map.port_for_shard sm ~in_use ~shard:i ~src ~dst ~dst_port ()
          with
          | Ok p -> `Port p
          | Error `Exhausted -> `Exhausted))
    tcps;
  (* The interface: one MQ driver serving all queues, fanning RX
     completions out to the replica that owns each queue (queue [q]
     belongs to replica [q mod r]). With a single instance the whole
     device belongs to it, and a crash resets the device as before;
     with replicas a crash fences only the dead replica's queues. *)
  let hooks_for k =
    if r = 1 then
      {
        Ip_srv.drv_connect =
          (fun ~rx_from_ip ~tx_to_ip ->
            Mq_drv_srv.connect_ip drv ~rx_from_ip ~tx_to_ip);
        drv_grant_rx_pool =
          (fun ~alloc ~write -> Mq_drv_srv.grant_rx_pool drv ~alloc ~write);
        drv_on_ip_crash = (fun () -> Mq_drv_srv.on_ip_crash drv);
        drv_on_ip_restart = (fun () -> Mq_drv_srv.on_ip_restart drv);
      }
    else
      {
        Ip_srv.drv_connect =
          (fun ~rx_from_ip ~tx_to_ip ->
            Mq_drv_srv.connect_ip_replica drv ~replica:k ~rx_from_ip ~tx_to_ip);
        drv_grant_rx_pool =
          (fun ~alloc ~write ->
            Mq_drv_srv.grant_rx_pool_replica drv ~replica:k ~alloc ~write);
        drv_on_ip_crash = (fun () -> Mq_drv_srv.on_ip_replica_crash drv ~replica:k);
        drv_on_ip_restart =
          (fun () -> Mq_drv_srv.on_ip_replica_restart drv ~replica:k);
      }
  in
  if r > 1 then Mq_drv_srv.set_replicas drv r;
  let ifaces =
    Array.init r (fun k ->
        let tx_chan =
          export drv_comp (Printf.sprintf "%s.to_mqdrv" (ip_name k)) (chan ())
        and rx_chan =
          export ip_comps.(k) (Printf.sprintf "mqdrv.to_%s" (ip_name k)) (chan ())
        in
        let iface =
          Ip_srv.add_iface_custom ips.(k)
            { Ip_srv.addr = Addr.Ipv4.v 10 0 0 1; netmask_bits = 24; mac = Mq.mac nic }
            ~hooks:(hooks_for k) ~tx_chan ~rx_chan
        in
        (* Self-originated frames (ARP, ICMP) go out on one of this
           replica's own queues, so the TX confirm returns here. *)
        Ip_srv.set_local_queue ips.(k) k;
        Ip_srv.add_route ips.(k) ~prefix:(Addr.Ipv4.v 10 0 0 0) ~bits:24 ~iface
          ~gateway:None;
        Ip_srv.add_neighbor ips.(k) ~iface (Addr.Ipv4.v 10 0 0 2)
          (Addr.Mac.of_index 200);
        iface)
  in
  (* ARP learn-broadcast (replicated IP only): whichever replica's
     queue a reply or request lands on announces the binding in the
     channel directory; every replica — including a later restarted
     incarnation, via replay — folds it into its own cache. Inserting
     a learned binding never re-announces, so there is no loop. *)
  let learn k = function
    | `Published { Pubsub.key; creator = _; chan_id } -> (
        try
          Scanf.sscanf key "arp.%d.%s" (fun ifc ip_s ->
              match Addr.Ipv4.of_string ip_s with
              | Some addr ->
                  Ip_srv.add_neighbor ips.(k) ~iface:ifc addr (mac_of_int chan_id)
              | None -> ())
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
    | `Gone -> ()
  in
  if r > 1 then begin
    (* The statically configured peer is announced too, so replay after
       a restart re-seeds it without waiting for a resolution. *)
    Pubsub.publish directory
      ~key:(arp_key ~iface:0 (Addr.Ipv4.v 10 0 0 2))
      ~creator:(-1)
      ~chan_id:(mac_to_int (Addr.Mac.of_index 200));
    Array.iteri
      (fun k ip ->
        Ip_srv.set_arp_announce ip (fun ~iface addr mac ->
            Pubsub.publish directory ~key:(arp_key ~iface addr) ~creator:k
              ~chan_id:(mac_to_int mac));
        Pubsub.subscribe_prefix directory ~prefix:"arp." (learn k);
        (* A reincarnated replica comes up with a flushed cache; the
           directory still holds everything the group has learned. *)
        Component.on_restart ip_comps.(k) ~step:"replay-arp" (fun ~fresh:_ ->
            Pubsub.replay_prefix directory ~prefix:"arp." (learn k)))
      ips
  end;
  (* A transport shard frees its receive buffers to the fixed replica
     that serves its requests, but the frame arrived via whichever
     replica owns the flow's queue — hand such buffers back to the
     pool's owner. *)
  let return_buf buf =
    let pool = buf.Rich_ptr.pool in
    Array.iter
      (fun ip -> if Ip_srv.rx_pool_id ip = pool then Ip_srv.release_held ip buf)
      ips
  in
  Array.iter (fun ip -> Ip_srv.set_buf_return ip return_buf) ips;
  (* Supervision: each shard and each IP replica recovers
     independently. A shard crash reclaims only that shard's receive
     buffers (held by the replica that owns its queue for TCP, by any
     replica for UDP); an IP replica crash aborts only the in-flight
     requests of the shards it serves. *)
  let rs =
    Reincarnation.create machine ~heartbeat_period:config.heartbeat_period
      ~restart_delay:config.restart_delay ()
  in
  Array.iteri
    (fun i comp ->
      Reincarnation.watch rs comp
        ~notify_crash:
          [
            (fun () ->
              Ip_srv.on_transport_shard_crash ips.(i mod r) ~proto:`Tcp ~shard:i);
          ]
        ~notify_restart:
          [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Tcp) ]
        ())
    tcp_comps;
  Array.iteri
    (fun i comp ->
      Reincarnation.watch rs comp
        ~notify_crash:
          (Array.to_list
             (Array.map
                (fun ip () -> Ip_srv.on_transport_shard_crash ip ~proto:`Udp ~shard:i)
                ips))
        ~notify_restart:
          [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Udp) ]
        ())
    udp_comps;
  Array.iteri
    (fun k comp ->
      (* Only the shards this replica serves lose their channel. *)
      let my_tcps =
        List.filteri (fun i _ -> i mod r = k) (Array.to_list tcps)
      and my_udps =
        List.filteri (fun i _ -> i mod r = k) (Array.to_list udps)
      in
      Reincarnation.watch rs comp
        ~notify_crash:
          (List.map (fun srv () -> Tcp_srv.on_ip_crash srv) my_tcps
          @ List.map (fun srv () -> Udp_srv.on_ip_crash srv) my_udps)
        ~notify_restart:
          (List.map (fun srv () -> Tcp_srv.on_ip_restart srv) my_tcps
          @ List.map (fun srv () -> Udp_srv.on_ip_restart srv) my_udps)
        ())
    ip_comps;
  (match (pf_srv, pf_comp) with
  | Some _, Some comp ->
      Reincarnation.watch rs comp
        ~notify_crash:
          (Array.to_list (Array.map (fun ip () -> Ip_srv.on_pf_crash ip) ips))
        ~notify_restart:
          (Array.to_list (Array.map (fun ip () -> Ip_srv.on_pf_restart ip) ips))
        ()
  | _ -> ());
  Reincarnation.watch rs drv_comp
    ~notify_crash:
      (Array.to_list
         (Array.mapi (fun k ip () -> Ip_srv.on_drv_crash ip ~iface:ifaces.(k)) ips))
    ~notify_restart:
      (Array.to_list
         (Array.mapi (fun k ip () -> Ip_srv.on_drv_restart ip ~iface:ifaces.(k)) ips))
    ();
  Reincarnation.start rs;
  {
    config;
    engine;
    machine;
    registry;
    trace;
    directory;
    storage;
    rs;
    sm;
    sc = sc_srv;
    tcps;
    udps;
    ips;
    pf = pf_srv;
    drv;
    nic;
    link;
    sink;
    sc_comp;
    pf_comp;
    drv_comp;
    tcp_comps;
    udp_comps;
    ip_comps;
    tcp_to_ip;
    ip_to_tcp;
    steer_journal;
    ip_violations;
    next_app_pid = 10_000;
  }
