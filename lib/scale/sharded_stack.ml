module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Trace = Newt_sim.Trace
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu
module Registry = Newt_channels.Registry
module Sim_chan = Newt_channels.Sim_chan
module Pubsub = Newt_channels.Pubsub
module Rich_ptr = Newt_channels.Rich_ptr
module Addr = Newt_net.Addr
module Tcp = Newt_net.Tcp
module Link = Newt_nic.Link
module Mq = Newt_nic.Mq_e1000
module Rule = Newt_pf.Rule
module Pf_engine = Newt_pf.Pf_engine
module Conntrack = Newt_pf.Conntrack
module Component = Newt_stack.Component
module Msg = Newt_stack.Msg
module Mq_drv_srv = Newt_stack.Mq_drv_srv
module Ip_srv = Newt_stack.Ip_srv
module Pf_srv = Newt_stack.Pf_srv
module Tcp_srv = Newt_stack.Tcp_srv
module Udp_srv = Newt_stack.Udp_srv
module Syscall_srv = Newt_stack.Syscall_srv
module Sink = Newt_stack.Sink
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  shards : int;
  udp_shards : int;
  ip_replicas : int;
  pf_shards : int;
  link_gbps : float;
  pf_rules : Rule.t list option;
  tcp_config : Tcp.config option;
  conntrack_total : int;
  nic_reset_time : Time.cycles;
  heartbeat_period : Time.cycles;
  restart_delay : Time.cycles;
}

let default_config =
  {
    seed = 42;
    costs = Newt_hw.Costs.default;
    shards = 4;
    udp_shards = 1;
    ip_replicas = 1;
    pf_shards = 1;
    link_gbps = 40.0;
    pf_rules = None;
    tcp_config = None;
    conntrack_total = 65536;
    nic_reset_time = Time.of_seconds 1.2;
    heartbeat_period = Component.Defaults.heartbeat_period;
    restart_delay = Component.Defaults.restart_delay;
  }


(* The canonical flow key of the steering journal — the same
   canonicalization the RSS hash applies, so both directions of a flow
   share one entry. *)
type flow_key = int * int * int * int

let ip_int a = Int32.to_int (Addr.Ipv4.to_int32 a) land 0xFFFFFFFF

let flow_key src sport dst dport : flow_key =
  let a = (ip_int src, sport) and b = (ip_int dst, dport) in
  let (i1, p1), (i2, p2) = if a <= b then (a, b) else (b, a) in
  (i1, p1, i2, p2)

(* ARP learn-broadcast encoding: the binding rides the channel
   directory, the 48-bit MAC packed into the [chan_id] field and the
   protocol address in the key. *)
let mac_to_int m =
  Array.fold_left (fun acc o -> (acc lsl 8) lor o) 0 (Addr.Mac.to_octets m)

let mac_of_int v =
  Addr.Mac.of_octets (Array.init 6 (fun i -> (v lsr ((5 - i) * 8)) land 0xFF))

let arp_key ~iface addr = Printf.sprintf "arp.%d.%s" iface (Addr.Ipv4.to_string addr)

(* The PF ruleset rides the directory the same way: a publication under
   this key is the "new configuration" broadcast — the blob itself
   lives in the shared storage namespace, the [chan_id] carries a
   version counter. Every PF shard applies it on publish and replays it
   on restart. *)
let pf_rules_key = "pf.rules"

type t = {
  config : config;
  engine : Engine.t;
  machine : Machine.t;
  registry : Registry.t;
  trace : Trace.t;
  directory : Pubsub.t;
  storage : Storage.t;
  rs : Reincarnation.t;
  sm : Shard_map.t;
  sc_set : Syscall_srv.t Replica_set.t;
  tcp_set : Tcp_srv.t Replica_set.t;
  udp_set : Udp_srv.t Replica_set.t;
  ip_set : Ip_srv.t Replica_set.t;
  pf_set : Pf_srv.t Replica_set.t option;
  drv_set : Mq_drv_srv.t Replica_set.t;
  nic : Mq.t;
  link : Link.t;
  sink : Sink.t;
  tcp_to_ip : Msg.t Sim_chan.t array;
  ip_to_tcp : Msg.t Sim_chan.t array;
  (* [pf_chans.(k).(j)] is IP replica [k]'s (to_pf, from_pf) pair with
     PF shard [j]. *)
  pf_chans : (Msg.t Sim_chan.t * Msg.t Sim_chan.t) array array;
  publish_pf_rules : Rule.t list -> unit;
  (* IP's half of the affinity journal (the NIC keeps its own) —
     shared by all replicas: shard affinity implies replica affinity. *)
  steer_journal : (flow_key, int) Hashtbl.t;
  ip_violations : int ref;
  mutable next_app_pid : int;
}

let engine t = t.engine
let machine t = t.machine
let config t = t.config
let sc t = Replica_set.srv t.sc_set 0
let tcp_shard t i = Replica_set.srv t.tcp_set i
let udp_shard t i = Replica_set.srv t.udp_set i
let ip_srv t = Replica_set.srv t.ip_set 0
let ip_replica t k = Replica_set.srv t.ip_set k
let ip_replica_count t = Replica_set.size t.ip_set
let nic t = t.nic
let link t = t.link
let sink t = t.sink
let shard_map t = t.sm
let directory t = t.directory
let tcp_components t = Replica_set.comps t.tcp_set
let ip_components t = Replica_set.comps t.ip_set
let pf_components t =
  match t.pf_set with Some s -> Replica_set.comps s | None -> [||]

let pf_shard_count t =
  match t.pf_set with Some s -> Replica_set.size s | None -> 0

let pf_of t =
  match t.pf_set with
  | Some s -> s
  | None -> invalid_arg "Sharded_stack: no packet filter configured"

let pf_shard t j = Replica_set.srv (pf_of t) j
let pf_channels t = t.pf_chans
let set_pf_rules t rules = t.publish_pf_rules rules

let components t =
  (Replica_set.comp t.sc_set 0 :: Array.to_list (pf_components t))
  @ [ Replica_set.comp t.drv_set 0 ]
  @ Array.to_list (Replica_set.comps t.tcp_set)
  @ Array.to_list (Replica_set.comps t.udp_set)
  @ Array.to_list (Replica_set.comps t.ip_set)

let tcp_channels t =
  Array.init (Array.length t.tcp_to_ip) (fun i ->
      (t.tcp_to_ip.(i), t.ip_to_tcp.(i)))

let local_addr _t = Addr.Ipv4.v 10 0 0 1
let sink_addr _t = Addr.Ipv4.v 10 0 0 2

let run t ~until = Engine.run ~until t.engine
let at t when_ f = ignore (Engine.schedule_at t.engine when_ f)

(* Every saturating sender gets a core of its own: two senders
   timesharing one core would pay a full context switch per write,
   which is the workload's bottleneck, not the stack's. *)
let app t =
  let core = Machine.add_timeshared_core t.machine in
  let pid = t.next_app_pid in
  t.next_app_pid <- pid + 1;
  { Syscall_srv.app_core = core; app_pid = pid }

let on_reincarnated t f = Reincarnation.set_on_reincarnated t.rs f
let kill_shard t i = Replica_set.kill t.tcp_set i
let shard_restarts t i = Replica_set.restarts t.tcp_set i
let kill_ip_replica t k = Replica_set.kill t.ip_set k
let ip_replica_restarts t k = Replica_set.restarts t.ip_set k
let kill_pf_shard t j = Replica_set.kill (pf_of t) j
let pf_shard_restarts t j = Replica_set.restarts (pf_of t) j

type shard_stats = {
  shard : int;
  flows : int;
  segs_out : int;
  bytes_out : int;
  queue_depth : int;
  core_util : float;
  restarts : int;
}

let shard_stats t =
  let now = Engine.now t.engine in
  Array.mapi
    (fun i srv ->
      {
        shard = i;
        flows = Tcp.connection_count (Tcp_srv.engine srv);
        (* Lifetime counters: the banked totals survive shard restarts,
           so a reincarnated shard neither double-counts nor resets. *)
        segs_out = Tcp_srv.total_segs_out srv;
        bytes_out = Tcp_srv.total_bytes_out srv;
        queue_depth = Sim_chan.length t.ip_to_tcp.(i);
        core_util = Cpu.utilization (Component.core (Replica_set.comp t.tcp_set i)) ~now;
        restarts = shard_restarts t i;
      })
    (Replica_set.servers t.tcp_set)

type pf_shard_stats = {
  pf_shard : int;
  verdicts : int;
  pf_blocked : int;
  expired : int;
  entries : int;
  half_open : int;
  evicted_half_open : int;
  evicted_established : int;
  pf_restarts : int;
}

let pf_shard_stats t =
  match t.pf_set with
  | None -> [||]
  | Some pfs ->
      Array.mapi
        (fun j srv ->
          {
            pf_shard = j;
            verdicts = Pf_srv.verdicts_issued srv;
            pf_blocked = Pf_srv.blocked srv;
            expired = Pf_srv.conntrack_expired srv;
            entries = Conntrack.size (Pf_engine.conntrack (Pf_srv.engine_of srv));
            half_open =
              Conntrack.half_open_count
                (Pf_engine.conntrack (Pf_srv.engine_of srv));
            evicted_half_open = Pf_srv.evicted_half_open srv;
            evicted_established = Pf_srv.evicted_established srv;
            pf_restarts = Replica_set.restarts pfs j;
          })
        (Replica_set.servers pfs)

(* Every replication plane of the stack, with its load metric — the
   whole-stack view the imbalance/rebalance accounting folds over. *)
let planes t =
  [
    Replica_set.plane t.tcp_set;
    Replica_set.plane t.udp_set;
    Replica_set.plane t.ip_set;
  ]
  @ (match t.pf_set with Some s -> [ Replica_set.plane s ] | None -> [])

let imbalance_ratio t =
  let nic = Shard_map.imbalance ~loads:(Array.map float_of_int (Mq.rx_queue_packets t.nic)) in
  List.fold_left
    (fun acc p -> Float.max acc (Replica_set.plane_imbalance p))
    nic (planes t)

let steering_violations t = Mq.steering_violations t.nic + !(t.ip_violations)

let rebalance t =
  (* Project every plane's observed load — not just the TCP shards' —
     onto the RSS buckets, so a hot PF shard or IP replica also pulls
     the indirection table toward balance. *)
  let loads = Replica_set.projected_loads ~shards:t.config.shards (planes t) in
  Shard_map.rebalance t.sm ~loads

(* {2 Construction} *)

let create ?(config = default_config) () =
  if config.shards <= 0 then invalid_arg "Sharded_stack: shards must be positive";
  if config.udp_shards <= 0 then
    invalid_arg "Sharded_stack: udp_shards must be positive";
  if config.ip_replicas <= 0 || config.ip_replicas > config.shards then
    invalid_arg "Sharded_stack: need 1 <= ip_replicas <= shards";
  if config.pf_shards <= 0 || config.pf_shards > config.shards then
    invalid_arg "Sharded_stack: need 1 <= pf_shards <= shards";
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create ~costs:config.costs engine in
  let registry = Registry.create () in
  let trace = Trace.create () in
  let directory = Pubsub.create () in
  let storage = Storage.create () in
  let n = config.shards
  and nu = config.udp_shards
  and r = config.ip_replicas
  and np = config.pf_shards in
  let sm = Shard_map.create ~seed:config.seed ~shards:n () in
  (* One fat wire, a multi-queue device on our side, an ideal peer on
     the other. *)
  let link =
    Link.create engine
      ~bandwidth_bps:(int_of_float (config.link_gbps *. 1e9))
      ~queue_frames:1024 ()
  in
  (* Every component server of the stack is a replica set — most of
     them 1-member sets ("sc", "mqdrv"), which is exactly the point:
     one replication mechanism, configured per plane. Each set gives
     its members a dedicated core and a storage namespace. *)
  let mkset name ?names members make =
    Replica_set.create machine ~name ?names ~members ~directory ~trace ~storage
      ~make ()
  in
  let sc_set =
    mkset "sc" 1 (fun _ comp ~save:_ ~load:_ -> Syscall_srv.create comp ())
  in
  let ip_set =
    mkset "ip" r (fun _ comp ~save ~load ->
        Ip_srv.create comp ~registry ~save ~load ())
  in
  (* The shared flow hash, reduced to each plane's member count: the
     partition functions of the transport, IP and PF planes all divide
     the same [Shard_map] value, so every layer agrees where a flow
     lives. *)
  let pf_steer ~src ~sport ~dst ~dport =
    Shard_map.shard_of sm ~src ~sport ~dst ~dport mod np
  in
  let pf_shared_save, pf_shared_load = Storage.owner_view storage ~owner:"pf" in
  let pf_set =
    match config.pf_rules with
    | None -> None
    | Some _ ->
        Some
          (mkset "pf" np (fun j comp ~save ~load ->
               (* The ruleset is one shared configuration blob; the
                  conntrack snapshot is per shard. *)
               let save k v = if k = "rules" then pf_shared_save k v else save k v
               and load k = if k = "rules" then pf_shared_load k else load k in
               let owns f =
                 np <= 1
                 || pf_steer ~src:f.Conntrack.local_ip
                      ~sport:f.Conntrack.local_port ~dst:f.Conntrack.remote_ip
                      ~dport:f.Conntrack.remote_port
                    = j
               in
               Pf_srv.create comp ~save ~load
                 ~max_entries:(max 1 (config.conntrack_total / np))
                 ~owns ()))
  in
  let nic =
    Mq.create engine ~registry ~link ~side:Link.Left
      ~mac:(Addr.Mac.of_index 100) ~rss:(Shard_map.rss sm)
      ~reset_time:config.nic_reset_time ()
  in
  let sink =
    Sink.create engine ~link ~side:Link.Right ~addr:(Addr.Ipv4.v 10 0 0 2)
      ~mac:(Addr.Mac.of_index 200) ()
  in
  let drv_set =
    mkset "mqdrv" 1 (fun _ comp ~save:_ ~load:_ -> Mq_drv_srv.create comp ~nic ())
  in
  let tcp_set =
    mkset "tcp"
      ~names:(Printf.sprintf "tcp%d")
      n
      (fun _ comp ~save ~load ->
        Tcp_srv.create comp ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1)
          ?tcp_config:config.tcp_config ~save ~load ())
  in
  let udp_set =
    mkset "udp"
      ~names:(Printf.sprintf "udp%d")
      nu
      (fun _ comp ~save ~load ->
        Udp_srv.create comp ~registry
          ~local_addr:(Addr.Ipv4.v 10 0 0 1)
          ~save ~load ())
  in
  let sc_srv = Replica_set.srv sc_set 0 in
  let sc_comp = Replica_set.comp sc_set 0 in
  let drv = Replica_set.srv drv_set 0 in
  let drv_comp = Replica_set.comp drv_set 0 in
  let tcps = Replica_set.servers tcp_set in
  let udps = Replica_set.servers udp_set in
  let ips = Replica_set.servers ip_set in
  let tcp_comps = Replica_set.comps tcp_set in
  let udp_comps = Replica_set.comps udp_set in
  let ip_comps = Replica_set.comps ip_set in
  let ip_name = Replica_set.name ip_set in
  (* Per-plane load metrics, for whole-stack imbalance accounting. *)
  Replica_set.set_load tcp_set (fun srv ->
      float_of_int (Tcp_srv.total_bytes_out srv));
  Replica_set.set_load udp_set (fun srv ->
      float_of_int (Udp_srv.datagrams_out srv));
  Replica_set.set_load ip_set (fun srv ->
      float_of_int (Ip_srv.packets_forwarded srv));
  Option.iter
    (fun pfs ->
      Replica_set.set_load pfs (fun srv ->
          float_of_int (Pf_srv.verdicts_issued srv)))
    pf_set;
  (* Channels (Figure 3, replicated per shard and per IP replica).
     [Component.export] publishes each one under its key in the
     directory and re-publishes it when the consuming component is
     reincarnated — the export belongs to the consumer. *)
  let chan_ids = ref 0 in
  let chan () =
    incr chan_ids;
    Sim_chan.create ~capacity:8192 ~id:!chan_ids ()
  in
  let export comp key c =
    Component.export comp ~key c;
    c
  in
  (* The shared steering function, with IP's half of the affinity
     journal wrapped around it. *)
  let steer_journal = Hashtbl.create 64 in
  let ip_violations = ref 0 in
  let journal_steer shard_of ~src ~sport ~dst ~dport =
    let s = shard_of ~src ~sport ~dst ~dport in
    let key = flow_key src sport dst dport in
    (match Hashtbl.find_opt steer_journal key with
    | None -> Hashtbl.replace steer_journal key s
    | Some s' when s' = s -> ()
    | Some _ ->
        incr ip_violations;
        Hashtbl.replace steer_journal key s);
    s
  in
  let tcp_steer =
    journal_steer (fun ~src ~sport ~dst ~dport ->
        Shard_map.shard_of sm ~src ~sport ~dst ~dport)
  in
  let udp_steer ~src ~sport ~dst ~dport =
    Shard_map.shard_of sm ~src ~sport ~dst ~dport mod nu
  in
  (* IP <-> PF: the filter plane is [np] shards, each owning the flows
     the shared hash maps to it. Every IP replica keeps a channel pair
     to every shard (the reply comes back to whoever asked), and every
     shard serves every replica. Conntrack recovery reads the union of
     the transports' connection tables, filtered by each shard's
     ownership predicate. *)
  let pf_chans =
    match pf_set with
    | None -> [||]
    | Some pfs ->
        Array.init r (fun k ->
            Array.init np (fun j ->
                let pf_name = Replica_set.name pfs j in
                let to_pf =
                  export (Replica_set.comp pfs j)
                    (Printf.sprintf "%s.to_%s" (ip_name k) pf_name)
                    (chan ())
                and from_pf =
                  export ip_comps.(k)
                    (Printf.sprintf "%s.to_%s" pf_name (ip_name k))
                    (chan ())
                in
                (to_pf, from_pf)))
  in
  (* PF rules ride the channel directory as a versioned broadcast: the
     blob is saved once in the shared namespace, every shard applies it
     on publish, and a reincarnated shard replays the publication (its
     own restore-state hook reads the same shared blob, so the replay
     is the belt to that suspender). *)
  let pf_rule_version = ref 0 in
  let publish_pf_rules rules =
    pf_shared_save "rules" (Marshal.to_string (rules : Rule.t list) []);
    incr pf_rule_version;
    Pubsub.publish directory ~key:pf_rules_key ~creator:(-1)
      ~chan_id:!pf_rule_version
  in
  (match (pf_set, config.pf_rules) with
  | Some pfs, Some rules ->
      Array.iteri
        (fun k ip ->
          Ip_srv.connect_pf_sharded ip
            ~steer:(fun ~src ~sport ~dst ~dport ->
              Shard_map.shard_of sm ~src ~sport ~dst ~dport)
            ~pairs:pf_chans.(k))
        ips;
      Array.iteri
        (fun j pf ->
          Array.iter
            (fun row ->
              let to_pf, from_pf = row.(j) in
              Pf_srv.connect_ip pf ~from_ip:to_pf ~to_ip:from_pf)
            pf_chans;
          Pf_srv.set_conntrack_sources pf
            ~tcp:(fun () ->
              Array.to_list tcps |> List.concat_map Tcp_srv.conntrack_flows)
            ~udp:(fun () ->
              Array.to_list udps |> List.concat_map Udp_srv.conntrack_flows);
          let apply = function
            | `Published _ -> (
                match pf_shared_load "rules" with
                | Some blob ->
                    Pf_engine.set_rules (Pf_srv.engine_of pf)
                      (Marshal.from_string blob 0 : Rule.t list)
                | None -> ())
            | `Gone -> ()
          in
          Pubsub.subscribe_prefix directory ~prefix:pf_rules_key apply;
          Component.on_restart (Replica_set.comp pfs j) ~step:"replay-rules"
            (fun ~fresh:_ ->
              Pubsub.replay_prefix directory ~prefix:pf_rules_key apply))
        (Replica_set.servers pfs);
      publish_pf_rules rules
  | _ -> ());
  (* IP <-> transport shards. TCP shard [i]'s requests are served by
     replica [i mod r]; every replica keeps the complete fan-out array
     so a received frame can steer to any shard. *)
  let tcp_to_ip =
    Array.init n (fun i ->
        export ip_comps.(Replica_set.owner ip_set i)
          (Printf.sprintf "tcp%d.to_ip" i) (chan ()))
  in
  let ip_to_tcp =
    Array.init n (fun i ->
        export tcp_comps.(i) (Printf.sprintf "ip.to_tcp%d" i) (chan ()))
  in
  Array.iteri
    (fun k ip ->
      Ip_srv.connect_transport_sharded
        ~mine:(fun i -> Replica_set.owner ip_set i = k)
        ip ~proto:`Tcp ~steer:tcp_steer
        ~pairs:(Array.init n (fun i -> (tcp_to_ip.(i), ip_to_tcp.(i)))))
    ips;
  Array.iteri
    (fun i srv -> Tcp_srv.connect_ip srv ~to_ip:tcp_to_ip.(i) ~from_ip:ip_to_tcp.(i))
    tcps;
  let udp_to_ip =
    Array.init nu (fun i ->
        export ip_comps.(Replica_set.owner ip_set i)
          (Printf.sprintf "udp%d.to_ip" i) (chan ()))
  in
  let ip_to_udp =
    Array.init nu (fun i ->
        export udp_comps.(i) (Printf.sprintf "ip.to_udp%d" i) (chan ()))
  in
  Array.iteri
    (fun k ip ->
      Ip_srv.connect_transport_sharded
        ~mine:(fun i -> Replica_set.owner ip_set i = k)
        ip ~proto:`Udp ~steer:udp_steer
        ~pairs:(Array.init nu (fun i -> (udp_to_ip.(i), ip_to_udp.(i)))))
    ips;
  Array.iteri
    (fun i srv -> Udp_srv.connect_ip srv ~to_ip:udp_to_ip.(i) ~from_ip:ip_to_udp.(i))
    udps;
  (* SYSCALL <-> transport shards. *)
  let sc_to_tcp =
    Array.init n (fun i ->
        export tcp_comps.(i) (Printf.sprintf "sc.to_tcp%d" i) (chan ()))
  in
  let tcp_to_sc =
    Array.init n (fun i ->
        export sc_comp (Printf.sprintf "tcp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Tcp
    ~pairs:(Array.init n (fun i -> (sc_to_tcp.(i), tcp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Tcp_srv.connect_sc srv ~from_sc:sc_to_tcp.(i) ~to_sc:tcp_to_sc.(i))
    tcps;
  let sc_to_udp =
    Array.init nu (fun i ->
        export udp_comps.(i) (Printf.sprintf "sc.to_udp%d" i) (chan ()))
  in
  let udp_to_sc =
    Array.init nu (fun i ->
        export sc_comp (Printf.sprintf "udp%d.to_sc" i) (chan ()))
  in
  Syscall_srv.connect_transport_sharded sc_srv ~transport:`Udp
    ~pairs:(Array.init nu (fun i -> (sc_to_udp.(i), udp_to_sc.(i))));
  Array.iteri
    (fun i srv -> Udp_srv.connect_sc srv ~from_sc:sc_to_udp.(i) ~to_sc:udp_to_sc.(i))
    udps;
  (* New sockets round-robin over the shards; the chosen shard then
     picks a source port that hashes back to itself, so any placement
     preserves flow affinity. *)
  let next_tcp_sock = ref 0 and next_udp_sock = ref 0 in
  Syscall_srv.set_placement sc_srv (fun ~transport ->
      match transport with
      | `Tcp ->
          let s = !next_tcp_sock mod n in
          incr next_tcp_sock;
          s
      | `Udp ->
          let s = !next_udp_sock mod nu in
          incr next_udp_sock;
          s);
  (* Shard affinity for active opens: shard [i] only uses source ports
     that the RSS table maps to queue [i], skipping ports its engine
     already has bound to the same destination; exhaustion of the whole
     range is a hard connect error, not a silent wrong-queue open. *)
  Array.iteri
    (fun i srv ->
      Tcp_srv.set_port_select srv (fun ~src ~dst ~dst_port ->
          let in_use port =
            Tcp.port_in_use (Tcp_srv.engine srv) ~local_ip:src ~port
              ~remote_ip:dst ~remote_port:dst_port
          in
          match
            Shard_map.port_for_shard sm ~in_use ~shard:i ~src ~dst ~dst_port ()
          with
          | Ok p -> `Port p
          | Error `Exhausted -> `Exhausted))
    tcps;
  (* The interface: one MQ driver serving all queues, fanning RX
     completions out to the replica that owns each queue (queue [q]
     belongs to replica [q mod r]). With a single instance the whole
     device belongs to it, and a crash resets the device as before;
     with replicas a crash fences only the dead replica's queues. *)
  let hooks_for k =
    if r = 1 then
      {
        Ip_srv.drv_connect =
          (fun ~rx_from_ip ~tx_to_ip ->
            Mq_drv_srv.connect_ip drv ~rx_from_ip ~tx_to_ip);
        drv_grant_rx_pool =
          (fun ~alloc ~write -> Mq_drv_srv.grant_rx_pool drv ~alloc ~write);
        drv_on_ip_crash = (fun () -> Mq_drv_srv.on_ip_crash drv);
        drv_on_ip_restart = (fun () -> Mq_drv_srv.on_ip_restart drv);
      }
    else
      {
        Ip_srv.drv_connect =
          (fun ~rx_from_ip ~tx_to_ip ->
            Mq_drv_srv.connect_ip_replica drv ~replica:k ~rx_from_ip ~tx_to_ip);
        drv_grant_rx_pool =
          (fun ~alloc ~write ->
            Mq_drv_srv.grant_rx_pool_replica drv ~replica:k ~alloc ~write);
        drv_on_ip_crash = (fun () -> Mq_drv_srv.on_ip_replica_crash drv ~replica:k);
        drv_on_ip_restart =
          (fun () -> Mq_drv_srv.on_ip_replica_restart drv ~replica:k);
      }
  in
  if r > 1 then Mq_drv_srv.set_replicas drv r;
  let ifaces =
    Array.init r (fun k ->
        let tx_chan =
          export drv_comp (Printf.sprintf "%s.to_mqdrv" (ip_name k)) (chan ())
        and rx_chan =
          export ip_comps.(k) (Printf.sprintf "mqdrv.to_%s" (ip_name k)) (chan ())
        in
        let iface =
          Ip_srv.add_iface_custom ips.(k)
            { Ip_srv.addr = Addr.Ipv4.v 10 0 0 1; netmask_bits = 24; mac = Mq.mac nic }
            ~hooks:(hooks_for k) ~tx_chan ~rx_chan
        in
        (* Self-originated frames (ARP, ICMP) go out on one of this
           replica's own queues, so the TX confirm returns here. *)
        Ip_srv.set_local_queue ips.(k) k;
        Ip_srv.add_route ips.(k) ~prefix:(Addr.Ipv4.v 10 0 0 0) ~bits:24 ~iface
          ~gateway:None;
        Ip_srv.add_neighbor ips.(k) ~iface (Addr.Ipv4.v 10 0 0 2)
          (Addr.Mac.of_index 200);
        iface)
  in
  (* ARP learn-broadcast (replicated IP only): whichever replica's
     queue a reply or request lands on announces the binding in the
     channel directory; every replica — including a later restarted
     incarnation, via replay — folds it into its own cache. Inserting
     a learned binding never re-announces, so there is no loop. *)
  let learn k = function
    | `Published { Pubsub.key; creator = _; chan_id } -> (
        try
          Scanf.sscanf key "arp.%d.%s" (fun ifc ip_s ->
              match Addr.Ipv4.of_string ip_s with
              | Some addr ->
                  Ip_srv.add_neighbor ips.(k) ~iface:ifc addr (mac_of_int chan_id)
              | None -> ())
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
    | `Gone -> ()
  in
  if r > 1 then begin
    (* The statically configured peer is announced too, so replay after
       a restart re-seeds it without waiting for a resolution. *)
    Pubsub.publish directory
      ~key:(arp_key ~iface:0 (Addr.Ipv4.v 10 0 0 2))
      ~creator:(-1)
      ~chan_id:(mac_to_int (Addr.Mac.of_index 200));
    Array.iteri
      (fun k ip ->
        Ip_srv.set_arp_announce ip (fun ~iface addr mac ->
            Pubsub.publish directory ~key:(arp_key ~iface addr) ~creator:k
              ~chan_id:(mac_to_int mac));
        Pubsub.subscribe_prefix directory ~prefix:"arp." (learn k);
        (* A reincarnated replica comes up with a flushed cache; the
           directory still holds everything the group has learned. *)
        Component.on_restart ip_comps.(k) ~step:"replay-arp" (fun ~fresh:_ ->
            Pubsub.replay_prefix directory ~prefix:"arp." (learn k)))
      ips
  end;
  (* A transport shard frees its receive buffers to the fixed replica
     that serves its requests, but the frame arrived via whichever
     replica owns the flow's queue — hand such buffers back to the
     pool's owner. *)
  let return_buf buf =
    let pool = buf.Rich_ptr.pool in
    Array.iter
      (fun ip -> if Ip_srv.rx_pool_id ip = pool then Ip_srv.release_held ip buf)
      ips
  in
  Array.iter (fun ip -> Ip_srv.set_buf_return ip return_buf) ips;
  (* Supervision: every plane's members recover independently. A
     transport shard crash reclaims only that shard's receive buffers
     (held by the replica that owns its queue for TCP, by any replica
     for UDP); an IP replica crash aborts only the in-flight requests
     of the shards it serves; a PF shard crash holds only its own
     flows' packets — the other shards' traffic never stops. *)
  let rs =
    Reincarnation.create machine ~heartbeat_period:config.heartbeat_period
      ~restart_delay:config.restart_delay ()
  in
  Replica_set.supervise tcp_set rs
    ~notify_crash:(fun i ->
      [
        (fun () ->
          Ip_srv.on_transport_shard_crash
            ips.(Replica_set.owner ip_set i)
            ~proto:`Tcp ~shard:i);
      ])
    ~notify_restart:(fun i ->
      [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Tcp) ]);
  Replica_set.supervise udp_set rs
    ~notify_crash:(fun i ->
      Array.to_list
        (Array.map
           (fun ip () -> Ip_srv.on_transport_shard_crash ip ~proto:`Udp ~shard:i)
           ips))
    ~notify_restart:(fun i ->
      [ (fun () -> Syscall_srv.on_transport_restart ~shard:i sc_srv ~transport:`Udp) ]);
  Replica_set.supervise ip_set rs
    ~notify_crash:(fun k ->
      (* Only the shards this replica serves lose their channel. *)
      let my_tcps =
        List.filteri (fun i _ -> Replica_set.owner ip_set i = k) (Array.to_list tcps)
      and my_udps =
        List.filteri (fun i _ -> Replica_set.owner ip_set i = k) (Array.to_list udps)
      in
      List.map (fun srv () -> Tcp_srv.on_ip_crash srv) my_tcps
      @ List.map (fun srv () -> Udp_srv.on_ip_crash srv) my_udps)
    ~notify_restart:(fun k ->
      let my_tcps =
        List.filteri (fun i _ -> Replica_set.owner ip_set i = k) (Array.to_list tcps)
      and my_udps =
        List.filteri (fun i _ -> Replica_set.owner ip_set i = k) (Array.to_list udps)
      in
      List.map (fun srv () -> Tcp_srv.on_ip_restart srv) my_tcps
      @ List.map (fun srv () -> Udp_srv.on_ip_restart srv) my_udps);
  Option.iter
    (fun pfs ->
      Replica_set.supervise pfs rs
        ~notify_crash:(fun j ->
          Array.to_list
            (Array.map (fun ip () -> Ip_srv.on_pf_crash ~shard:j ip) ips))
        ~notify_restart:(fun j ->
          Array.to_list
            (Array.map (fun ip () -> Ip_srv.on_pf_restart ~shard:j ip) ips)))
    pf_set;
  Replica_set.supervise drv_set rs
    ~notify_crash:(fun _ ->
      Array.to_list
        (Array.mapi (fun k ip () -> Ip_srv.on_drv_crash ip ~iface:ifaces.(k)) ips))
    ~notify_restart:(fun _ ->
      Array.to_list
        (Array.mapi (fun k ip () -> Ip_srv.on_drv_restart ip ~iface:ifaces.(k)) ips));
  Reincarnation.start rs;
  {
    config;
    engine;
    machine;
    registry;
    trace;
    directory;
    storage;
    rs;
    sm;
    sc_set;
    tcp_set;
    udp_set;
    ip_set;
    pf_set;
    drv_set;
    nic;
    link;
    sink;
    tcp_to_ip;
    ip_to_tcp;
    pf_chans;
    publish_pf_rules;
    steer_journal;
    ip_violations;
    next_app_pid = 10_000;
  }
