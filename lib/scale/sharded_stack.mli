(** A NewtOS host whose every layer is a {!Replica_set}.

    The single-instance {!Newt_core.Host} tops out at one TCP server's
    worth of cycles per segment (Table II). This composition implements
    the scaling design the paper's discussion points at: a multi-queue
    NIC ({!Newt_nic.Mq_e1000}) steers each flow's frames onto one of N
    RX queues; the IP server fans segments up to N [tcp_srv] replicas on
    dedicated cores (each with its own channels, pools and request
    database); the SYSCALL server routes each socket's calls down to its
    shard. One {!Shard_map} drives all layers, so {e every segment of a
    flow traverses exactly one shard} — the affinity invariant
    {!steering_violations} counts violations of.

    Every component server is a member of a {!Replica_set} — most of
    them 1-member sets — so transport shards, IP replicas and PF shards
    are three configurations of one replication mechanism, not three
    mechanisms. Each member is supervised by the reincarnation server
    independently: killing one TCP shard ({!kill_shard}) loses only that
    shard's connections; the other shards' flows keep running without
    losing a segment.

    The IP server can be replicated ([ip_replicas]): each of the [r]
    instances owns the NIC queues [q] with [q mod r = k] and serves the
    transport shards [i] with [i mod r = k]. ARP bindings learned from
    the wire are broadcast through the channel directory so all caches
    converge; killing one replica ({!kill_ip_replica}) fences off only
    its own queues.

    The packet filter can be sharded too ([pf_shards]): [np] PF
    instances partition the conntrack table by the same flow hash
    (shard [j] owns the flows with [shard_of mod np = j], with an LRU
    cap of [total/np] each and its own TTL sweep). Every IP replica
    holds a channel pair to every PF shard and steers each packet —
    both directions — from its IP header, so a flow's packets always
    meet the same conntrack partition. Rules are one shared
    configuration, broadcast to all shards through the channel
    directory and replayed on restart. Killing one shard
    ({!kill_pf_shard}) holds only its own flows' packets while the
    reincarnation server brings it back; recovery re-tracks {e only}
    that shard's slice of the transports' connection tables — the
    sibling shards lose zero entries. *)

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  shards : int;  (** TCP server replicas. *)
  udp_shards : int;
  ip_replicas : int;
      (** IP server instances; must satisfy
          [1 <= ip_replicas <= shards]. 1 reproduces the single-IP
          stack exactly (whole-device reset on crash). *)
  pf_shards : int;
      (** Packet-filter instances; must satisfy
          [1 <= pf_shards <= shards]. 1 reproduces the single-PF stack
          exactly (same channel keys, same storage namespace). Ignored
          when [pf_rules = None]. *)
  link_gbps : float;
      (** The wire must outrun N shards — default 40 (a 40GbE port). *)
  pf_rules : Newt_pf.Rule.t list option;
      (** [None] removes the filter from the path (the paper's
          no-PF column); [Some rules] wires [pf_shards] PF servers
          sharing this one ruleset. *)
  tcp_config : Newt_net.Tcp.config option;
  conntrack_total : int;
      (** Whole-stack conntrack budget (default 65536): each of the
          [pf_shards] filter instances caps its partition at
          [conntrack_total / pf_shards], so N shards hold the same
          total state as one. The adversarial churn scenarios shrink
          it to force eviction within a short run. *)
  nic_reset_time : Newt_sim.Time.cycles;
  heartbeat_period : Newt_sim.Time.cycles;
  restart_delay : Newt_sim.Time.cycles;
}

val default_config : config
(** 4 TCP shards, 1 UDP shard, 1 IP instance, 1 PF shard, 40 Gbps, no
    filter, seed 42. *)

type t

val create : ?config:config -> unit -> t

val engine : t -> Newt_sim.Engine.t
val machine : t -> Newt_hw.Machine.t
val config : t -> config
val sc : t -> Newt_stack.Syscall_srv.t
val tcp_shard : t -> int -> Newt_stack.Tcp_srv.t
val udp_shard : t -> int -> Newt_stack.Udp_srv.t
val ip_srv : t -> Newt_stack.Ip_srv.t
(** Replica 0 (the only one when [ip_replicas = 1]). *)

val ip_replica : t -> int -> Newt_stack.Ip_srv.t
val ip_replica_count : t -> int

val pf_shard : t -> int -> Newt_stack.Pf_srv.t
(** PF shard [j]. Raises when the stack runs without a filter. *)

val pf_shard_count : t -> int
(** 0 when the stack runs without a filter. *)

val directory : t -> Newt_channels.Pubsub.t
(** The channel directory, which also carries the ARP learn-broadcast
    publications (keys under ["arp."]) and the PF ruleset broadcast
    (key ["pf.rules"]). *)

val set_pf_rules : t -> Newt_pf.Rule.t list -> unit
(** Install a new ruleset on {e every} PF shard: persisted once in the
    shared namespace, announced through the directory, applied by each
    shard's subscription (and replayed by restarted shards). No-op
    without a filter. *)

val nic : t -> Newt_nic.Mq_e1000.t
val link : t -> Newt_nic.Link.t
val sink : t -> Newt_stack.Sink.t
val shard_map : t -> Shard_map.t

(** {1 Topology introspection (for the stack verifier)} *)

val components : t -> Newt_stack.Component.t list
(** Every component server of the host: SYSCALL, filter shards (if
    any), driver, transport shards, IP replicas. *)

val tcp_components : t -> Newt_stack.Component.t array
val ip_components : t -> Newt_stack.Component.t array

val pf_components : t -> Newt_stack.Component.t array
(** Empty when the stack runs without a filter. *)

val tcp_channels :
  t -> (Newt_stack.Msg.t Newt_channels.Sim_chan.t * Newt_stack.Msg.t Newt_channels.Sim_chan.t) array
(** Per TCP shard [i], its [(to_ip, from_ip)] channel pair — the
    request channel its replica consumes and the delivery channel it
    consumes. *)

val pf_channels :
  t ->
  (Newt_stack.Msg.t Newt_channels.Sim_chan.t * Newt_stack.Msg.t Newt_channels.Sim_chan.t)
  array
  array
(** [pf_channels t .(k).(j)] is IP replica [k]'s [(to_pf, from_pf)]
    channel pair with PF shard [j] (empty without a filter). *)

val local_addr : t -> Newt_net.Addr.Ipv4.t
val sink_addr : t -> Newt_net.Addr.Ipv4.t

val app : t -> Newt_stack.Syscall_srv.app
(** A fresh application on its {e own} timeshared core: saturating
    senders must not pay context switches to each other. *)

val run : t -> until:Newt_sim.Time.cycles -> unit
val at : t -> Newt_sim.Time.cycles -> (unit -> unit) -> unit

(** {1 Faults} *)

val on_reincarnated : t -> (Newt_stack.Component.t -> unit) -> unit
(** Post-recovery callback on the sharded stack's reincarnation server
    — fires once a crashed shard or replica is fully back (restarted,
    republished, neighbours notified), where the continuous verifier
    re-checks the live sharded topology. *)

val kill_shard : t -> int -> unit
(** Crash TCP shard [i]; the reincarnation server recovers it. *)

val shard_restarts : t -> int -> int

val kill_ip_replica : t -> int -> unit
(** Crash IP replica [k]. Its queues are fenced off (their in-flight
    datagrams are the only losses), its shards' requests abort, and the
    reincarnation server brings it back — reprogramming only its own
    queues, without a link bounce. *)

val ip_replica_restarts : t -> int -> int

val kill_pf_shard : t -> int -> unit
(** Crash PF shard [j]. Only its own flows' packets are held (and
    resubmitted when it returns — no loss); its recovery re-tracks only
    the conntrack slice it owns. *)

val pf_shard_restarts : t -> int -> int

(** {1 Instrumentation} *)

type shard_stats = {
  shard : int;
  flows : int;  (** Live TCP connections on this shard. *)
  segs_out : int;
  bytes_out : int;
  queue_depth : int;  (** IP→shard channel backlog, in messages. *)
  core_util : float;  (** Busy fraction of the shard's dedicated core. *)
  restarts : int;
}

val shard_stats : t -> shard_stats array

type pf_shard_stats = {
  pf_shard : int;
  verdicts : int;
  pf_blocked : int;
  expired : int;  (** Conntrack entries swept by this shard's TTL sweep. *)
  entries : int;  (** Live conntrack entries in this shard's partition. *)
  half_open : int;  (** Of [entries], how many are still unconfirmed. *)
  evicted_half_open : int;
      (** Capacity evictions that took a half-open entry. *)
  evicted_established : int;
      (** Capacity evictions forced onto an established entry. *)
  pf_restarts : int;
}

val pf_shard_stats : t -> pf_shard_stats array
(** Empty when the stack runs without a filter. *)

val planes : t -> Replica_set.plane list
(** Every replication plane (TCP, UDP, IP, PF when present) with its
    load metric. *)

val imbalance_ratio : t -> float
(** The worst imbalance anywhere in the stack: max over the NIC's
    per-queue received frames and every replication plane's member
    loads (1.0 = perfectly even). *)

val steering_violations : t -> int
(** Flows observed on two different shards, summed over the NIC's
    journal and the IP fan-out's journal. 0 = the affinity invariant
    held. *)

val rebalance : t -> int
(** Reprogram the indirection table from {e every} plane's observed
    load (projected onto the RSS buckets), not just the TCP shards';
    returns the number of buckets moved. *)
