(** A NewtOS host whose transport layer is replicated N ways.

    The single-instance {!Newt_core.Host} tops out at one TCP server's
    worth of cycles per segment (Table II). This composition implements
    the scaling design the paper's discussion points at: a multi-queue
    NIC ({!Newt_nic.Mq_e1000}) steers each flow's frames onto one of N
    RX queues; the IP server fans segments up to N [tcp_srv] replicas on
    dedicated cores (each with its own channels, pools and request
    database); the SYSCALL server routes each socket's calls down to its
    shard. One {!Shard_map} drives all three layers, so {e every segment
    of a flow traverses exactly one shard} — the affinity invariant
    {!steering_violations} counts violations of.

    Each shard is supervised by the reincarnation server independently:
    killing one ({!kill_shard}) loses only that shard's connections;
    the other shards' flows keep running without losing a segment,
    because IP reclaims only the dead shard's receive buffers and the
    device is never reset (only an IP crash forces that, Section V-D).

    The IP server itself can be replicated too ([ip_replicas]): each of
    the [r] instances is an ordinary {!Newt_stack.Component} server on
    its own core with its own receive pool and ARP cache, owning the
    NIC queues [q] with [q mod r = k] and serving the transport shards
    [i] with [i mod r = k]. ARP bindings learned from the wire are
    broadcast through the channel directory so all caches converge, and
    killing one replica ({!kill_ip_replica}) fences off and loses only
    its own queues' in-flight datagrams — the driver never bounces the
    link, and the other replicas' shards never notice. *)

type config = {
  seed : int;
  costs : Newt_hw.Costs.t;
  shards : int;  (** TCP server replicas. *)
  udp_shards : int;
  ip_replicas : int;
      (** IP server instances; must satisfy
          [1 <= ip_replicas <= shards]. 1 reproduces the single-IP
          stack exactly (whole-device reset on crash). *)
  link_gbps : float;
      (** The wire must outrun N shards — default 40 (a 40GbE port). *)
  pf_rules : Newt_pf.Rule.t list option;
      (** [None] removes the filter from the path (the paper's
          no-PF column); [Some rules] wires one PF server shared by all
          shards. *)
  tcp_config : Newt_net.Tcp.config option;
  nic_reset_time : Newt_sim.Time.cycles;
  heartbeat_period : Newt_sim.Time.cycles;
  restart_delay : Newt_sim.Time.cycles;
}

val default_config : config
(** 4 TCP shards, 1 UDP shard, 1 IP instance, 40 Gbps, no filter,
    seed 42. *)

type t

val create : ?config:config -> unit -> t

val engine : t -> Newt_sim.Engine.t
val machine : t -> Newt_hw.Machine.t
val config : t -> config
val sc : t -> Newt_stack.Syscall_srv.t
val tcp_shard : t -> int -> Newt_stack.Tcp_srv.t
val udp_shard : t -> int -> Newt_stack.Udp_srv.t
val ip_srv : t -> Newt_stack.Ip_srv.t
(** Replica 0 (the only one when [ip_replicas = 1]). *)

val ip_replica : t -> int -> Newt_stack.Ip_srv.t
val ip_replica_count : t -> int

val directory : t -> Newt_channels.Pubsub.t
(** The channel directory, which also carries the ARP learn-broadcast
    publications (keys under ["arp."]). *)

val nic : t -> Newt_nic.Mq_e1000.t
val link : t -> Newt_nic.Link.t
val sink : t -> Newt_stack.Sink.t
val shard_map : t -> Shard_map.t

(** {1 Topology introspection (for the stack verifier)} *)

val components : t -> Newt_stack.Component.t list
(** Every component server of the host: SYSCALL, filter (if any),
    driver, transport shards, IP replicas. *)

val tcp_components : t -> Newt_stack.Component.t array
val ip_components : t -> Newt_stack.Component.t array

val tcp_channels :
  t -> (Newt_stack.Msg.t Newt_channels.Sim_chan.t * Newt_stack.Msg.t Newt_channels.Sim_chan.t) array
(** Per TCP shard [i], its [(to_ip, from_ip)] channel pair — the
    request channel its replica consumes and the delivery channel it
    consumes. *)

val local_addr : t -> Newt_net.Addr.Ipv4.t
val sink_addr : t -> Newt_net.Addr.Ipv4.t

val app : t -> Newt_stack.Syscall_srv.app
(** A fresh application on its {e own} timeshared core: saturating
    senders must not pay context switches to each other. *)

val run : t -> until:Newt_sim.Time.cycles -> unit
val at : t -> Newt_sim.Time.cycles -> (unit -> unit) -> unit

(** {1 Faults} *)

val on_reincarnated : t -> (Newt_stack.Component.t -> unit) -> unit
(** Post-recovery callback on the sharded stack's reincarnation server
    — fires once a crashed shard or replica is fully back (restarted,
    republished, neighbours notified), where the continuous verifier
    re-checks the live sharded topology. *)

val kill_shard : t -> int -> unit
(** Crash TCP shard [i]; the reincarnation server recovers it. *)

val shard_restarts : t -> int -> int

val kill_ip_replica : t -> int -> unit
(** Crash IP replica [k]. Its queues are fenced off (their in-flight
    datagrams are the only losses), its shards' requests abort, and the
    reincarnation server brings it back — reprogramming only its own
    queues, without a link bounce. *)

val ip_replica_restarts : t -> int -> int

(** {1 Instrumentation} *)

type shard_stats = {
  shard : int;
  flows : int;  (** Live TCP connections on this shard. *)
  segs_out : int;
  bytes_out : int;
  queue_depth : int;  (** IP→shard channel backlog, in messages. *)
  core_util : float;  (** Busy fraction of the shard's dedicated core. *)
  restarts : int;
}

val shard_stats : t -> shard_stats array

val imbalance_ratio : t -> float
(** Max/mean of per-queue received frames at the NIC (1.0 = perfectly
    even). *)

val steering_violations : t -> int
(** Flows observed on two different shards, summed over the NIC's
    journal and the IP fan-out's journal. 0 = the affinity invariant
    held. *)

val rebalance : t -> int
(** Reprogram the indirection table from the shards' observed byte
    counts; returns the number of buckets moved. *)
