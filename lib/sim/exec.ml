type native = {
  n_now : unit -> Time.cycles;
  n_schedule : core:int -> Time.cycles -> (unit -> unit) -> unit -> unit;
  n_post : core:int -> (unit -> unit) -> unit;
}

type t = Sim of Engine.t | Native of native

let sim engine = Sim engine

let native ~now ~schedule ~post =
  Native { n_now = now; n_schedule = schedule; n_post = post }

let is_native = function Sim _ -> false | Native _ -> true
let now = function Sim e -> Engine.now e | Native n -> n.n_now ()

let schedule t ~core delay k =
  match t with
  | Sim e ->
      let h = Engine.schedule e delay k in
      fun () -> Engine.cancel h
  | Native n -> n.n_schedule ~core delay k

let post t ~core k =
  match t with
  | Sim _ ->
      (* Simulated execution is single-threaded: posting to a core is a
         plain call, preserving the exact event ordering the
         discrete-event tests depend on. *)
      ignore core;
      k ()
  | Native n -> n.n_post ~core k
