(** Execution backend: simulated or native.

    Servers and the hardware model never touch {!Engine} directly for
    time and deferred work; they go through an [Exec.t], which is either
    the discrete-event engine (the default — bit-identical to the
    historical behaviour) or a native backend built from real OCaml 5
    domains by [Runtime.Native]. The native backend supplies three
    closures; [core] is the model core id, which the native runtime maps
    to the event loop of the domain that owns that core. *)

type t

val sim : Engine.t -> t
(** The discrete-event backend. *)

val native :
  now:(unit -> Time.cycles) ->
  schedule:(core:int -> Time.cycles -> (unit -> unit) -> unit -> unit) ->
  post:(core:int -> (unit -> unit) -> unit) ->
  t
(** A native backend. [schedule ~core delay k] arms a timer on the
    domain owning [core] and returns a cancel thunk; [post ~core k]
    enqueues [k] on that domain's run queue (callable from any
    domain). *)

val is_native : t -> bool

val now : t -> Time.cycles
(** Simulated clock, or wall-clock cycles since the native runtime
    started (scaled by {!Time.cycles_per_second}). *)

val schedule : t -> core:int -> Time.cycles -> (unit -> unit) -> unit -> unit
(** [schedule t ~core delay k] runs [k] after [delay] cycles on [core]'s
    domain; returns a cancel thunk. Under {!sim}, [core] is ignored (the
    engine is global) and cancellation maps to {!Engine.cancel}. *)

val post : t -> core:int -> (unit -> unit) -> unit
(** Run [k] on [core]'s domain as soon as possible. Under {!sim} this
    calls [k] inline — simulated "cores" are an accounting fiction and
    the caller already runs in the right context. *)
