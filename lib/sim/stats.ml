type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; samples = Hashtbl.create 8 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_max t name v =
  let r = counter_ref t name in
  if v > !r then r := v

let sample_ref t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.samples name r;
      r

let observe t name v =
  let r = sample_ref t name in
  r := v :: !r

let count t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> List.length !r
  | None -> 0

let mean t name =
  match Hashtbl.find_opt t.samples name with
  | None -> None
  | Some { contents = [] } -> None
  | Some { contents = xs } ->
      let total = List.fold_left ( +. ) 0.0 xs in
      Some (total /. float_of_int (List.length xs))

let percentile t name p =
  match Hashtbl.find_opt t.samples name with
  | None | Some { contents = [] } -> None
  | Some { contents = xs } ->
      let arr = Array.of_list xs in
      (* Float.compare: a numeric, unboxed sort that also gives nan a
         total order (polymorphic compare boxes every element). *)
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1)) in
      Some arr.(max 0 (min (n - 1) idx))

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples
