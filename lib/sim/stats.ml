(* Streaming histogram: HDR-style log-linear buckets. The first
   [sub_count] buckets are exact (one per integer value); above that,
   each power-of-two range is subdivided into [sub_count] linear
   sub-buckets, so the relative quantization error is bounded by
   [1/sub_count] everywhere. Recording is O(1) — an index computation
   and an increment — and two histograms merge by adding their count
   arrays, which is what lets per-shard latency series aggregate
   without ever holding a sample list. *)
module Hist = struct
  let sub_bits = 6
  let sub_count = 1 lsl sub_bits (* 64: <= 1.6% relative error *)

  (* Values up to 2^62-ish: (62 - sub_bits + 1) octaves + the linear
     region. *)
  let n_buckets = ((62 - sub_bits + 1) * sub_count) + sub_count

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      counts = Array.make n_buckets 0;
      total = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  (* Index of the bucket holding non-negative integer [v]. *)
  let index_of v =
    if v < sub_count then v
    else begin
      (* Position of the most significant bit. *)
      let exp = ref sub_bits and shifted = ref (v lsr sub_bits) in
      while !shifted > 1 do
        incr exp;
        shifted := !shifted lsr 1
      done;
      let half = !exp - sub_bits + 1 in
      let mantissa = (v lsr (!exp - sub_bits)) - sub_count in
      (half * sub_count) + mantissa
    end

  (* Largest value mapping to bucket [idx] — reporting the upper edge
     makes the approximation conservative for tail percentiles. *)
  let value_of idx =
    if idx < sub_count then float_of_int idx
    else
      let half = idx / sub_count and mantissa = idx mod sub_count in
      let lo = (sub_count + mantissa) lsl (half - 1) in
      float_of_int (lo + (1 lsl (half - 1)) - 1)

  let record t v =
    let v = if Float.is_nan v then 0.0 else v in
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    t.sum <- t.sum +. v;
    t.total <- t.total + 1;
    let i = if v <= 0.0 then 0 else index_of (int_of_float v) in
    let i = min i (n_buckets - 1) in
    t.counts.(i) <- t.counts.(i) + 1

  let count t = t.total
  let sum t = t.sum
  let mean t = if t.total = 0 then None else Some (t.sum /. float_of_int t.total)

  let merge ~into src =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.total <- into.total + src.total;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v

  let percentile t p =
    if t.total = 0 then None
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      if p <= 0.0 then Some t.min_v
      else if p >= 100.0 then Some t.max_v
      else begin
        (* The rank'th smallest recorded value, 1-based. *)
        let rank =
          max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.total)))
        in
        let seen = ref 0 and idx = ref 0 and found = ref None in
        while !found = None && !idx < n_buckets do
          seen := !seen + t.counts.(!idx);
          if !seen >= rank then found := Some !idx;
          incr idx
        done;
        match !found with
        | None -> Some t.max_v
        | Some i ->
            (* Clamp to the observed extremes: the bucket's upper edge
               can overshoot the true maximum. *)
            Some (Float.min t.max_v (Float.max t.min_v (value_of i)))
      end
    end
end

(* Distributions hold the exact sample list while small; past
   [exact_threshold] samples they migrate into a [Hist] and stay O(1)
   per observation — querying a percentile of a million-sample series
   must not sort a million floats. *)
let exact_threshold = 1024

type series = {
  mutable small : float list;  (* newest first; only while [hist = None] *)
  mutable n : int;
  mutable hist : Hist.t option;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; samples = Hashtbl.create 8 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_max t name v =
  let r = counter_ref t name in
  if v > !r then r := v

let series_ref t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s
  | None ->
      let s = { small = []; n = 0; hist = None } in
      Hashtbl.add t.samples name s;
      s

let observe t name v =
  let s = series_ref t name in
  s.n <- s.n + 1;
  match s.hist with
  | Some h -> Hist.record h v
  | None ->
      s.small <- v :: s.small;
      if s.n > exact_threshold then begin
        let h = Hist.create () in
        List.iter (Hist.record h) s.small;
        s.small <- [];
        s.hist <- Some h
      end

let count t name =
  match Hashtbl.find_opt t.samples name with Some s -> s.n | None -> 0

let mean t name =
  match Hashtbl.find_opt t.samples name with
  | None | Some { n = 0; _ } -> None
  | Some { hist = Some h; _ } -> Hist.mean h
  | Some { small = xs; n; _ } ->
      let total = List.fold_left ( +. ) 0.0 xs in
      Some (total /. float_of_int n)

let percentile t name p =
  match Hashtbl.find_opt t.samples name with
  | None | Some { n = 0; _ } -> None
  | Some { hist = Some h; _ } -> Hist.percentile h p
  | Some { small = xs; n = _; _ } ->
      let arr = Array.of_list xs in
      (* Float.compare: a numeric, unboxed sort that also gives nan a
         total order (polymorphic compare boxes every element). *)
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1)) in
      Some arr.(max 0 (min (n - 1) idx))

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples
