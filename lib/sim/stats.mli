(** Named counters and simple distributions.

    A [t] is a registry of metrics a simulated component exposes; the
    experiment drivers read them after a run. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to a counter, creating it at 0 first if needed. *)

val add : t -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val get : t -> string -> int
(** Current counter value; 0 if never touched. *)

val set_max : t -> string -> int -> unit
(** Keep the running maximum of the observed values under this name. *)

val observe : t -> string -> float -> unit
(** Record a sample into a named distribution. *)

val mean : t -> string -> float option
(** Mean of a distribution, if any samples were recorded. *)

val count : t -> string -> int
(** Number of samples recorded into a distribution. *)

val percentile : t -> string -> float -> float option
(** [percentile t name p] with [p] clamped to [0,100]; sorts on demand
    (numerically, via [Float.compare]). [p = 0.0] is the minimum sample,
    [p = 100.0] the maximum; a single-sample distribution returns that
    sample for every [p]. [None] iff no samples were recorded. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val clear : t -> unit
(** Forget everything. *)
