(** Named counters and simple distributions.

    A [t] is a registry of metrics a simulated component exposes; the
    experiment drivers read them after a run. *)

(** A streaming latency histogram: HDR-style log-linear buckets with
    64 sub-buckets per power of two, so every recorded value is
    quantized within 1/64 (~1.6%) of its magnitude. Recording is O(1)
    and allocation-free; histograms from different shards {!Hist.merge}
    by adding their bucket counts — the tail of a million-sample
    series costs neither memory proportional to the sample count nor a
    sort per query. Values are non-negative (negative and NaN samples
    are clamped to 0, which still shows up in [min]). *)
module Hist : sig
  type t

  val create : unit -> t

  val record : t -> float -> unit
  (** O(1): bump the bucket holding the value. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float option

  val merge : into:t -> t -> unit
  (** Fold [src]'s counts into [into] (for cross-shard aggregation). *)

  val percentile : t -> float -> float option
  (** [percentile t p] with [p] clamped to [0,100]: the upper edge of
      the bucket holding the rank-[ceil(p/100 * count)] sample, clamped
      to the exactly-tracked observed minimum and maximum (so [p = 0]
      and [p = 100] are exact). [None] iff nothing was recorded. *)
end

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to a counter, creating it at 0 first if needed. *)

val add : t -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val get : t -> string -> int
(** Current counter value; 0 if never touched. *)

val set_max : t -> string -> int -> unit
(** Keep the running maximum of the observed values under this name. *)

val observe : t -> string -> float -> unit
(** Record a sample into a named distribution. *)

val mean : t -> string -> float option
(** Mean of a distribution, if any samples were recorded. *)

val count : t -> string -> int
(** Number of samples recorded into a distribution. *)

val percentile : t -> string -> float -> float option
(** [percentile t name p] with [p] clamped to [0,100]. Small series
    (up to 1024 samples) are answered exactly, sorting on demand
    (numerically, via [Float.compare]): [p = 0.0] is the minimum
    sample, [p = 100.0] the maximum, a single-sample distribution
    returns that sample for every [p]. Larger series are routed
    through a {!Hist} — O(1) per {!observe}, answers within the
    histogram's 1/64 bucket error (min and max stay exact). [None] iff
    no samples were recorded. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val clear : t -> unit
(** Forget everything. *)
