module Engine = Newt_sim.Engine
module Exec = Newt_sim.Exec
module Time = Newt_sim.Time
module Machine = Newt_hw.Machine
module Cpu = Newt_hw.Cpu

(* Deferred work goes through the machine's [Exec] backend, pinned to
   the application's core, so these workloads run identically under the
   simulator and the native runtime. *)
let sched machine app delay k =
  let (_cancel : unit -> unit) =
    Exec.schedule (Machine.exec machine)
      ~core:(Cpu.id app.Newt_stack.Syscall_srv.app_core)
      delay k
  in
  ()
module Sc = Newt_stack.Syscall_srv
module Addr = Newt_net.Addr

module Iperf = struct
  type t = {
    machine : Machine.t;
    sc : Sc.t;
    app : Sc.app;
    dst : Addr.Ipv4.t;
    port : int;
    write_size : int;
    pace : Time.cycles;
    until : Time.cycles;
    mutable bytes_sent : int;
    mutable connects : int;
    mutable errors : int;
    mutable running : bool;
  }

  let bytes_sent t = t.bytes_sent
  let connects t = t.connects
  let errors t = t.errors

  let now t = Exec.now (Machine.exec t.machine)

  let rec session t =
    if now t < t.until && t.running then
      Socket_api.tcp_socket t.sc t.app (fun conn ->
          Socket_api.connect conn ~dst:t.dst ~port:t.port (fun result ->
              match result with
              | `Ok ->
                  t.connects <- t.connects + 1;
                  pump t conn
              | `Error _ ->
                  t.errors <- t.errors + 1;
                  retry_later t))

  and pump t conn =
    if now t >= t.until then Socket_api.close conn (fun () -> t.running <- false)
    else begin
      let data = Bytes.make t.write_size 'i' in
      Socket_api.send conn data (fun result ->
          match result with
          | `Sent n ->
              t.bytes_sent <- t.bytes_sent + n;
              if t.pace = 0 then pump t conn
              else sched t.machine t.app t.pace (fun () -> pump t conn)
          | `Error _ ->
              t.errors <- t.errors + 1;
              (* Connection died (e.g. a TCP server crash): iperf is
                 restarted by the harness. *)
              retry_later t)
    end

  and retry_later t =
    sched t.machine t.app (Time.of_seconds 0.25) (fun () -> session t)

  let start machine ~sc ~app ~dst ~port ?(write_size = 8192) ?(pace = 0) ~until () =
    let t =
      {
        machine;
        sc;
        app;
        dst;
        port;
        write_size;
        pace;
        until;
        bytes_sent = 0;
        connects = 0;
        errors = 0;
        running = true;
      }
    in
    session t;
    t
end

module Echo_listener = struct
  let rec serve_conn conn =
    Socket_api.recv conn ~max:65536 (fun result ->
        match result with
        | `Data data ->
            if Bytes.length data > 0 then
              Socket_api.send conn data (fun _ -> serve_conn conn)
            else serve_conn conn
        | `Timeout -> serve_conn conn
        | `Eof -> Socket_api.close conn (fun () -> ())
        | `Error _ -> ())

  let start sc ~app ~port =
    Socket_api.tcp_socket sc app (fun listener ->
        Socket_api.bind listener ~port (fun _ ->
            Socket_api.listen listener (fun _ ->
                let rec accept_loop () =
                  Socket_api.accept listener (fun result ->
                      match result with
                      | `Conn conn ->
                          serve_conn conn;
                          accept_loop ()
                      | `Error _ ->
                          (* Listener gone (TCP server crash). The
                             restarted TCP server re-opens the listening
                             socket itself; keep accepting. *)
                          accept_loop ())
                in
                accept_loop ())))
end

module Ssh_session = struct
  type t = {
    machine : Machine.t;
    sc : Sc.t;
    app : Sc.app;
    dst : Addr.Ipv4.t;
    port : int;
    period : Time.cycles;
    io_timeout : Time.cycles;
    mutable exchanges_ok : int;
    mutable broken : bool;
    mutable connected : bool;
    mutable seq : int;
  }

  let exchanges_ok t = t.exchanges_ok
  let broken t = t.broken
  let connected t = t.connected

  let rec exchange t conn =
    if not t.broken then begin
      t.seq <- t.seq + 1;
      let payload = Bytes.of_string (Printf.sprintf "keystroke-%06d" t.seq) in
      Socket_api.send conn payload (fun send_result ->
          match send_result with
          | `Error _ ->
              t.broken <- true;
              t.connected <- false
          | `Sent _ ->
              Socket_api.recv conn ~max:1024 ~timeout:t.io_timeout (fun recv_result ->
                  match recv_result with
                  | `Data _ ->
                      t.exchanges_ok <- t.exchanges_ok + 1;
                      sched t.machine t.app t.period (fun () ->
                          exchange t conn)
                  | `Timeout | `Eof | `Error _ ->
                      t.broken <- true;
                      t.connected <- false))
    end

  let start machine ~sc ~app ~dst ~port ?period ?io_timeout () =
    let period = match period with Some p -> p | None -> Time.of_seconds 0.2 in
    let io_timeout =
      (* Generous: IP and driver crashes take the link down for over a
         second; TCP rides it out and the session survives. *)
      match io_timeout with Some x -> x | None -> Time.of_seconds 4.0
    in
    let t =
      {
        machine;
        sc;
        app;
        dst;
        port;
        period;
        io_timeout;
        exchanges_ok = 0;
        broken = false;
        connected = false;
        seq = 0;
      }
    in
    Socket_api.tcp_socket sc app (fun conn ->
        Socket_api.connect conn ~dst ~port (fun result ->
            match result with
            | `Ok ->
                t.connected <- true;
                exchange t conn
            | `Error _ -> t.broken <- true));
    t
end

module Rpc_churn = struct
  module Stats = Newt_sim.Stats

  (* One open-loop worker: a new RPC starts every [pace] cycles no
     matter how the previous ones are doing — exactly the load model
     under which queueing delay shows up as tail latency instead of a
     quietly reduced request rate. [max_outstanding] only bounds memory
     when the stack wedges completely; shed starts are counted, never
     silently absorbed into the schedule. *)
  type t = {
    machine : Machine.t;
    sc : Sc.t;
    app : Sc.app;
    dst : Addr.Ipv4.t;
    port : int;
    pace : Time.cycles;
    until : Time.cycles;
    payload : int;
    max_outstanding : int;
    connect_hist : Stats.Hist.t;
    request_hist : Stats.Hist.t;
    mutable started : int;
    mutable completed : int;
    mutable errors : int;
    mutable shed : int;
    mutable outstanding : int;
  }

  let started t = t.started
  let completed t = t.completed
  let errors t = t.errors
  let shed t = t.shed
  let outstanding t = t.outstanding
  let connect_hist t = t.connect_hist
  let request_hist t = t.request_hist

  let now t = Exec.now (Machine.exec t.machine)
  let to_micros c = Time.to_seconds c *. 1e6

  let finish t conn ok =
    t.outstanding <- t.outstanding - 1;
    if ok then t.completed <- t.completed + 1 else t.errors <- t.errors + 1;
    Socket_api.close conn (fun () -> ())

  (* connect -> send -> recv the echo -> close: the whole short-RPC
     lifecycle, timed from the connect call (so listen-queue and
     handshake delay are part of the request latency, as a client
     would experience it). *)
  let rpc t =
    t.started <- t.started + 1;
    t.outstanding <- t.outstanding + 1;
    let t0 = now t in
    Socket_api.tcp_socket t.sc t.app (fun conn ->
        Socket_api.connect conn ~dst:t.dst ~port:t.port (fun result ->
            match result with
            | `Error _ -> finish t conn false
            | `Ok ->
                Stats.Hist.record t.connect_hist (to_micros (now t - t0));
                let data = Bytes.make t.payload 'r' in
                Socket_api.send conn data (fun result ->
                    match result with
                    | `Error _ -> finish t conn false
                    | `Sent _ ->
                        let rec await got =
                          Socket_api.recv conn ~max:t.payload
                            ~timeout:(Time.of_seconds 4.0) (fun result ->
                              match result with
                              | `Data d ->
                                  let got = got + Bytes.length d in
                                  if got >= t.payload then begin
                                    Stats.Hist.record t.request_hist
                                      (to_micros (now t - t0));
                                    finish t conn true
                                  end
                                  else await got
                              | `Timeout | `Eof | `Error _ ->
                                  finish t conn false)
                        in
                        await 0)))

  let rec tick t =
    if now t < t.until then begin
      if t.outstanding >= t.max_outstanding then t.shed <- t.shed + 1
      else rpc t;
      sched t.machine t.app t.pace (fun () -> tick t)
    end

  let start machine ~sc ~app ~dst ~port ~pace ?(payload = 256)
      ?(max_outstanding = 256) ~until () =
    let t =
      {
        machine;
        sc;
        app;
        dst;
        port;
        pace;
        until;
        payload;
        max_outstanding;
        connect_hist = Stats.Hist.create ();
        request_hist = Stats.Hist.create ();
        started = 0;
        completed = 0;
        errors = 0;
        shed = 0;
        outstanding = 0;
      }
    in
    tick t;
    t
end

module Dns_client = struct
  type t = {
    machine : Machine.t;
    period : Time.cycles;
    timeout : Time.cycles;
    mutable queries : int;
    mutable answered : int;
    mutable consecutive_failures : int;
    mutable max_consecutive_failures : int;
    mutable socket_reopens : int;
  }

  let queries t = t.queries
  let answered t = t.answered
  let consecutive_failures t = t.consecutive_failures
  let max_consecutive_failures t = t.max_consecutive_failures
  let socket_reopens t = t.socket_reopens

  let rec query_loop t sc app dst port conn =
    t.queries <- t.queries + 1;
    let id = t.queries land 0xffff in
    let payload = Newt_net.Dns.encode (Newt_net.Dns.query ~id "www.vu.nl") in
    let fail () =
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures > t.max_consecutive_failures then
        t.max_consecutive_failures <- t.consecutive_failures
    in
    Socket_api.send conn payload (fun send_result ->
        match send_result with
        | `Error _ ->
            fail ();
            schedule_next t sc app dst port conn
        | `Sent _ ->
            (* Receive until our answer arrives, draining stale answers
               to earlier queries (they pile up behind an outage), like
               any real resolver. [attempts] bounds the drain. *)
            let rec await attempts =
              Socket_api.recv conn ~max:1024 ~timeout:t.timeout (fun recv_result ->
                  match recv_result with
                  | `Data response -> (
                      match Newt_net.Dns.decode response with
                      | Some m
                        when m.Newt_net.Dns.is_response
                             && m.Newt_net.Dns.id = id
                             && m.Newt_net.Dns.answers <> [] ->
                          t.answered <- t.answered + 1;
                          t.consecutive_failures <- 0;
                          schedule_next t sc app dst port conn
                      | Some m
                        when m.Newt_net.Dns.is_response
                             && m.Newt_net.Dns.id <> id
                             && attempts > 0 ->
                          (* A late answer to an earlier query: drop it
                             and keep waiting for ours. *)
                          await (attempts - 1)
                      | Some _ | None ->
                          fail ();
                          schedule_next t sc app dst port conn)
                  | `Timeout | `Eof | `Error _ ->
                      fail ();
                      schedule_next t sc app dst port conn)
            in
            await 8)

  and schedule_next t sc app dst port conn =
    sched t.machine app t.period (fun () ->
        query_loop t sc app dst port conn)

  let start machine ~sc ~app ~dst ?(port = 53) ?period ?timeout () =
    let period = match period with Some p -> p | None -> Time.of_seconds 0.25 in
    let timeout = match timeout with Some x -> x | None -> Time.of_seconds 1.0 in
    let t =
      {
        machine;
        period;
        timeout;
        queries = 0;
        answered = 0;
        consecutive_failures = 0;
        max_consecutive_failures = 0;
        socket_reopens = 0;
      }
    in
    Socket_api.udp_socket sc app (fun conn ->
        Socket_api.connect conn ~dst ~port (fun result ->
            match result with
            | `Ok -> query_loop t sc app dst port conn
            | `Error _ -> t.socket_reopens <- t.socket_reopens + 1));
    t
end
