(** The application programs of the evaluation.

    - {!Iperf}: the bulk TCP sender behind Table II's peak rates and
      the Figures 4/5 bitrate traces;
    - {!Echo_listener}: the OpenSSH-stand-in server on the NewtOS host
      ("We used OpenSSH as our test server", Section VI-B) — inbound
      reachability probes connect to it;
    - {!Ssh_session}: a long-lived interactive TCP session from the
      NewtOS host, exchanging small messages — detects broken
      connections across crashes;
    - {!Dns_client}: the periodic UDP resolver — detects whether
      crashes are transparent to UDP without reopening the socket. *)

module Iperf : sig
  type t

  val start :
    Newt_hw.Machine.t ->
    sc:Newt_stack.Syscall_srv.t ->
    app:Newt_stack.Syscall_srv.app ->
    dst:Newt_net.Addr.Ipv4.t ->
    port:int ->
    ?write_size:int ->
    ?pace:Newt_sim.Time.cycles ->
    until:Newt_sim.Time.cycles ->
    unit ->
    t
  (** Connect and stream patterned writes until the given simulated
      time, then close. Write errors trigger a reconnect (like iperf
      restarted by a test harness). [?pace] inserts a think time
      between writes (0 = saturate). *)

  val bytes_sent : t -> int
  val connects : t -> int
  val errors : t -> int
end

module Echo_listener : sig
  val start :
    Newt_stack.Syscall_srv.t -> app:Newt_stack.Syscall_srv.app -> port:int -> unit
  (** Accept loop; echoes every connection's bytes back. *)
end

module Ssh_session : sig
  type t

  val start :
    Newt_hw.Machine.t ->
    sc:Newt_stack.Syscall_srv.t ->
    app:Newt_stack.Syscall_srv.app ->
    dst:Newt_net.Addr.Ipv4.t ->
    port:int ->
    ?period:Newt_sim.Time.cycles ->
    ?io_timeout:Newt_sim.Time.cycles ->
    unit ->
    t

  val exchanges_ok : t -> int
  val broken : t -> bool
  (** The session observed a reset/error and is dead. *)

  val connected : t -> bool
end

module Rpc_churn : sig
  type t

  val start :
    Newt_hw.Machine.t ->
    sc:Newt_stack.Syscall_srv.t ->
    app:Newt_stack.Syscall_srv.app ->
    dst:Newt_net.Addr.Ipv4.t ->
    port:int ->
    pace:Newt_sim.Time.cycles ->
    ?payload:int ->
    ?max_outstanding:int ->
    until:Newt_sim.Time.cycles ->
    unit ->
    t
  (** An open-loop short-RPC worker: every [pace] cycles it starts a
      fresh connect → send [payload] bytes → receive the echo → close
      cycle against [dst:port], regardless of how earlier RPCs are
      faring — so stack-side queueing shows up as tail latency, not as
      a reduced offered rate. Starts are shed (and counted) only past
      [max_outstanding] (default 256) concurrent RPCs. *)

  val started : t -> int
  val completed : t -> int
  val errors : t -> int

  val shed : t -> int
  (** RPCs not started because [max_outstanding] were already in
      flight — nonzero means the measured percentiles undercount the
      would-be tail. *)

  val outstanding : t -> int

  val connect_hist : t -> Newt_sim.Stats.Hist.t
  (** Connect-call → established latency, recorded in microseconds. *)

  val request_hist : t -> Newt_sim.Stats.Hist.t
  (** Connect-call → full echo received latency, in microseconds. *)
end

module Dns_client : sig
  type t

  val start :
    Newt_hw.Machine.t ->
    sc:Newt_stack.Syscall_srv.t ->
    app:Newt_stack.Syscall_srv.app ->
    dst:Newt_net.Addr.Ipv4.t ->
    ?port:int ->
    ?period:Newt_sim.Time.cycles ->
    ?timeout:Newt_sim.Time.cycles ->
    unit ->
    t

  val queries : t -> int
  val answered : t -> int
  val consecutive_failures : t -> int
  val max_consecutive_failures : t -> int
  val socket_reopens : t -> int
  (** Stays 0 when UDP crashes are transparent (Section V-D). *)
end
