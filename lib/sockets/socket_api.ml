module Sc = Newt_stack.Syscall_srv
module Msg = Newt_stack.Msg

type conn = { sc : Sc.t; app : Sc.app; sock : Msg.socket_id }

let sock_id c = c.sock

let tcp_socket sc app k =
  Sc.socket sc app ~transport:`Tcp (fun sock -> k { sc; app; sock })

let udp_socket sc app k =
  Sc.socket sc app ~transport:`Udp (fun sock -> k { sc; app; sock })

let unit_result k = function
  | Msg.Ok_unit -> k `Ok
  | Msg.Err e -> k (`Error e)
  | Msg.Ok_socket _ | Msg.Ok_sent _ | Msg.Ok_data _ | Msg.Ok_data_from _
  | Msg.Ok_eof | Msg.Ok_ready _ | Msg.Ok_accepted _ ->
      k (`Error "unexpected reply")

let connect c ~dst ~port k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_connect { dst; dst_port = port })
    (unit_result k)

let bind c ~port k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_bind { port }) (unit_result k)

let listen ?(backlog = 128) c k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_listen { backlog }) (unit_result k)

let accept c k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_accept { new_sock = 0 }) (fun result ->
      match result with
      | Msg.Ok_accepted sock -> k (`Conn { c with sock })
      | Msg.Err e -> k (`Error e)
      | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_sent _ | Msg.Ok_data _
      | Msg.Ok_data_from _ | Msg.Ok_eof | Msg.Ok_ready _ ->
          k (`Error "unexpected reply"))

let send c data k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_send { data }) (fun result ->
      match result with
      | Msg.Ok_sent n -> k (`Sent n)
      | Msg.Err e -> k (`Error e)
      | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_data _ | Msg.Ok_data_from _
      | Msg.Ok_eof | Msg.Ok_ready _ | Msg.Ok_accepted _ ->
          k (`Error "unexpected reply"))

let recv c ~max ?(timeout = 0) k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_recv { max; timeout }) (fun result ->
      match result with
      | Msg.Ok_data d -> k (`Data d)
      | Msg.Ok_eof -> k `Eof
      | Msg.Err "timeout" -> k `Timeout
      | Msg.Err e -> k (`Error e)
      | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_sent _ | Msg.Ok_data_from _
      | Msg.Ok_ready _ | Msg.Ok_accepted _ ->
          k (`Error "unexpected reply"))

let sendto c data ~dst ~port k =
  Sc.call c.sc c.app ~sock:c.sock
    (Msg.Call_sendto { data; dst; dst_port = port })
    (fun result ->
      match result with
      | Msg.Ok_sent n -> k (`Sent n)
      | Msg.Err e -> k (`Error e)
      | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_data _ | Msg.Ok_data_from _
      | Msg.Ok_eof | Msg.Ok_ready _ | Msg.Ok_accepted _ ->
          k (`Error "unexpected reply"))

let recvfrom c ~max ?(timeout = 0) k =
  Sc.call c.sc c.app ~sock:c.sock (Msg.Call_recvfrom { max; timeout })
    (fun result ->
      match result with
      | Msg.Ok_data_from { data; src; src_port } -> k (`Data (data, src, src_port))
      | Msg.Err "timeout" -> k `Timeout
      | Msg.Err e -> k (`Error e)
      | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_sent _ | Msg.Ok_data _
      | Msg.Ok_eof | Msg.Ok_ready _ | Msg.Ok_accepted _ ->
          k (`Error "unexpected reply"))

let select conns ?(timeout = 0) k =
  match conns with
  | [] -> k (`Error "empty select set")
  | first :: _ ->
      let watch = List.map sock_id conns in
      Sc.call first.sc first.app ~sock:first.sock
        (Msg.Call_select { watch; timeout })
        (fun result ->
          match result with
          | Msg.Ok_ready [] -> k `Timeout
          | Msg.Ok_ready ready ->
              k (`Ready (List.filter (fun c -> List.mem c.sock ready) conns))
          | Msg.Err e -> k (`Error e)
          | Msg.Ok_unit | Msg.Ok_socket _ | Msg.Ok_sent _ | Msg.Ok_data _
          | Msg.Ok_data_from _ | Msg.Ok_eof | Msg.Ok_accepted _ ->
              k (`Error "unexpected reply"))

let shutdown_send c k =
  Sc.call c.sc c.app ~sock:c.sock Msg.Call_shutdown (unit_result k)

let close c k =
  Sc.call c.sc c.app ~sock:c.sock Msg.Call_close (fun _ -> k ())
