(** The POSIX-flavoured socket layer applications program against.

    Calls behave like blocking POSIX system calls — the continuation
    runs when the kernel IPC reply arrives from the SYSCALL server
    (Section V-B). One outstanding call per socket, like a blocked
    thread. *)

type conn
(** A socket held by an application. *)

val tcp_socket :
  Newt_stack.Syscall_srv.t ->
  Newt_stack.Syscall_srv.app ->
  (conn -> unit) ->
  unit

val udp_socket :
  Newt_stack.Syscall_srv.t ->
  Newt_stack.Syscall_srv.app ->
  (conn -> unit) ->
  unit

val sock_id : conn -> Newt_stack.Msg.socket_id

val connect :
  conn -> dst:Newt_net.Addr.Ipv4.t -> port:int -> ([ `Ok | `Error of string ] -> unit) -> unit

val bind : conn -> port:int -> ([ `Ok | `Error of string ] -> unit) -> unit

val listen :
  ?backlog:int -> conn -> ([ `Ok | `Error of string ] -> unit) -> unit
(** Start accepting on the bound port. [backlog] (default 128) caps the
    accept queue: connections completing their handshake while the
    queue is full are refused with a RST and counted by the transport
    ([listen_overflows]), mirroring a kernel's listen(2) backlog. *)

val accept : conn -> ([ `Conn of conn | `Error of string ] -> unit) -> unit

val send :
  conn -> Bytes.t -> ([ `Sent of int | `Error of string ] -> unit) -> unit

val recv :
  conn ->
  max:int ->
  ?timeout:Newt_sim.Time.cycles ->
  ([ `Data of Bytes.t | `Eof | `Timeout | `Error of string ] -> unit) ->
  unit
(** [?timeout] behaves like SO_RCVTIMEO: the call completes with
    [`Timeout] if no data arrived in time. *)

val sendto :
  conn ->
  Bytes.t ->
  dst:Newt_net.Addr.Ipv4.t ->
  port:int ->
  ([ `Sent of int | `Error of string ] -> unit) ->
  unit
(** Unconnected datagram send (UDP sockets only). *)

val recvfrom :
  conn ->
  max:int ->
  ?timeout:Newt_sim.Time.cycles ->
  ([ `Data of Bytes.t * Newt_net.Addr.Ipv4.t * int | `Timeout | `Error of string ] ->
  unit) ->
  unit
(** Datagram receive with the sender's address and port. *)

val select :
  conn list ->
  ?timeout:Newt_sim.Time.cycles ->
  ([ `Ready of conn list | `Timeout | `Error of string ] -> unit) ->
  unit
(** Block until any of the sockets is readable (data queued, an
    accepted connection waiting, EOF, or a dead connection). All
    sockets must belong to the same transport. This is the
    {e asynchronous} select of the paper's future work — the
    synchronous one it still carried caused its only reboot-class
    failures (Section VI-B). Because it runs over the same
    resubmittable request protocol as every other call, a transport
    crash mid-select is survived. *)

val shutdown_send : conn -> ([ `Ok | `Error of string ] -> unit) -> unit
(** Half-close the sending direction (POSIX shutdown(SHUT_WR)): a FIN
    goes out once queued data drains; the socket keeps receiving until
    the peer closes too. *)

val close : conn -> (unit -> unit) -> unit
