module Time = Newt_sim.Time
module Stats = Newt_sim.Stats
module Trace = Newt_sim.Trace
module Cpu = Newt_hw.Cpu
module Machine = Newt_hw.Machine
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Pubsub = Newt_channels.Pubsub
module Request_db = Newt_channels.Request_db
module Hook = Newt_channels.Hook

type producer_end = {
  chan : Msg.t Sim_chan.t;
  policy : [ `Drop | `Block ];
  shared : bool;
}

module Defaults = struct
  let heartbeat_period = Time.of_seconds 0.1
  let restart_delay = Time.of_seconds 0.12
end

type t = {
  machine : Machine.t;
  proc : Proc.t;
  directory : Pubsub.t option;
  mutable rx : Msg.t Sim_chan.t list; (* registration order *)
  mutable tx : producer_end list; (* declared producer endpoints *)
  mutable exports : (string * Msg.t Sim_chan.t) list;
  mutable pools : Pool.t list;
  mutable db_resets : (unit -> unit) list;
  mutable crash_hooks : (unit -> unit) list;
  mutable restart_hooks : (fresh:bool -> unit) list;
  mutable restarted_hooks : (unit -> unit) list;
  archive : (string, int) Hashtbl.t;
}

let publish_export t (key, chan) =
  match t.directory with
  | Some dir ->
      Pubsub.publish dir ~key ~creator:(Proc.pid t.proc)
        ~chan_id:(Sim_chan.id chan)
  | None -> ()

(* Tearing a channel down discards whatever is queued: tell the
   sanitizer those hand-offs will never complete, so the senders'
   buffers are not considered in flight forever. *)
let drop_queued chan =
  if Hook.enabled () then begin
    let rec go () =
      match Sim_chan.recv chan with
      | Some msg ->
          List.iter
            (fun ptr ->
              Hook.emit (Hook.Chan_dropped { chan = Sim_chan.id chan; ptr }))
            (Msg.ptrs msg);
          go ()
      | None -> ()
    in
    go ()
  end

(* The generic death: server-specific resets first (they may still bank
   counters into the archive), then the recoverable-resource teardown. *)
let generic_crash t () =
  List.iter (fun f -> f ()) t.crash_hooks;
  List.iter (fun reset -> reset ()) t.db_resets;
  List.iter Pool.free_all t.pools;
  List.iter
    (fun chan ->
      drop_queued chan;
      Sim_chan.tear_down chan)
    t.rx

let generic_restart t ~fresh =
  List.iter Sim_chan.revive t.rx;
  List.iter (fun f -> f ~fresh) t.restart_hooks;
  List.iter (publish_export t) t.exports;
  (* Post-publish hooks see the fully republished directory — the
     continuous verifier's sabotage handles live here. *)
  List.iter (fun f -> f ()) t.restarted_hooks

let create machine ~name ~core ?directory ?trace () =
  let proc = Proc.create machine ~name ~core ?trace () in
  let t =
    {
      machine;
      proc;
      directory;
      rx = [];
      tx = [];
      exports = [];
      pools = [];
      db_resets = [];
      crash_hooks = [];
      restart_hooks = [];
      restarted_hooks = [];
      archive = Hashtbl.create 16;
    }
  in
  Proc.set_on_crash proc (generic_crash t);
  Proc.set_on_restart proc (generic_restart t);
  t

let machine t = t.machine
let proc t = t.proc
let name t = Proc.name t.proc
let pid t = Proc.pid t.proc
let core t = Proc.core t.proc
let stats t = Proc.stats t.proc
let directory t = t.directory
let alive t = Proc.alive t.proc
let responsive t = Proc.responsive t.proc
let incarnation t = Proc.incarnation t.proc

let consume t chan handler =
  t.rx <- t.rx @ [ chan ];
  Proc.add_rx t.proc chan handler

let produce t ?(policy = `Drop) ?(shared = false) chan =
  let entry = { chan; policy; shared } in
  if List.exists (fun e -> e.chan == chan) t.tx then
    t.tx <- List.map (fun e -> if e.chan == chan then entry else e) t.tx
  else t.tx <- t.tx @ [ entry ]

let export t ~key chan =
  t.exports <- t.exports @ [ (key, chan) ];
  publish_export t (key, chan)

let register_pool t pool =
  t.pools <- t.pools @ [ pool ];
  Hook.emit (Hook.Pool_own { pool = Pool.id pool; owner = Proc.name t.proc })

let produced t = List.map (fun e -> (e.chan, e.policy, e.shared)) t.tx
let consumed t = t.rx
let exports t = t.exports
let pools t = t.pools
let on_crash t f = t.crash_hooks <- t.crash_hooks @ [ f ]
let on_restart t f = t.restart_hooks <- t.restart_hooks @ [ f ]
let on_restarted t f = t.restarted_hooks <- t.restarted_hooks @ [ f ]
let crash t = Proc.crash t.proc
let hang t = Proc.hang t.proc
let restart t = Proc.restart t.proc
let migrate t core = Proc.migrate t.proc core

module Db = struct
  type 'a t = { mutable db : 'a Request_db.t }

  let submit t ~peer ~payload ~abort = Request_db.submit t.db ~peer ~payload ~abort
  let complete t id = Request_db.complete t.db id
  let peek t id = Request_db.peek t.db id
  let abort_peer t ~peer = Request_db.abort_peer t.db ~peer
  let outstanding t = Request_db.outstanding t.db
  let outstanding_to t ~peer = Request_db.outstanding_to t.db ~peer
  let iter t f = Request_db.iter t.db f
end

let create_db t =
  let db = { Db.db = Request_db.create () } in
  t.db_resets <- t.db_resets @ [ (fun () -> db.Db.db <- Request_db.create ()) ];
  db

let archive_add t key n =
  let prev = match Hashtbl.find_opt t.archive key with Some v -> v | None -> 0 in
  Hashtbl.replace t.archive key (prev + n)

let archived t key =
  match Hashtbl.find_opt t.archive key with Some v -> v | None -> 0

let lifetime t key = archived t key + Stats.get (Proc.stats t.proc) key
