module Time = Newt_sim.Time
module Stats = Newt_sim.Stats
module Trace = Newt_sim.Trace
module Cpu = Newt_hw.Cpu
module Machine = Newt_hw.Machine
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Pubsub = Newt_channels.Pubsub
module Request_db = Newt_channels.Request_db
module Hook = Newt_channels.Hook

type producer_end = {
  chan : Msg.t Sim_chan.t;
  policy : [ `Drop | `Block ];
  shared : bool;
}

module Defaults = struct
  let heartbeat_period = Time.of_seconds 0.1
  let restart_delay = Time.of_seconds 0.12
end

type t = {
  machine : Machine.t;
  proc : Proc.t;
  directory : Pubsub.t option;
  mutable rx : Msg.t Sim_chan.t list; (* registration order *)
  mutable tx : producer_end list; (* declared producer endpoints *)
  mutable exports : (string * Msg.t Sim_chan.t) list;
  mutable pools : Pool.t list;
  mutable db_resets : (unit -> unit) list;
  mutable crash_hooks : (unit -> unit) list;
  mutable restart_hooks : (string option * (fresh:bool -> unit)) list;
  mutable restarted_hooks : (string option * (unit -> unit)) list;
  mutable crash_after : string option;
      (* armed crash-point injector: die right after this recovery step *)
  archive : (string, int) Hashtbl.t;
}

(* Internal control flow for the crash-point injector: unwinds the
   rest of the recovery procedure once the armed step has run. *)
exception Crashed_mid_recovery

let publish_export t (key, chan) =
  match t.directory with
  | Some dir ->
      Pubsub.publish dir ~key ~creator:(Proc.pid t.proc)
        ~chan_id:(Sim_chan.id chan)
  | None -> ()

(* Tearing a channel down discards whatever is queued: tell the
   sanitizer those hand-offs will never complete, so the senders'
   buffers are not considered in flight forever. *)
let drop_queued chan =
  if Hook.enabled () then begin
    let rec go () =
      match Sim_chan.recv chan with
      | Some msg ->
          List.iter
            (fun ptr ->
              Hook.emit (Hook.Chan_dropped { chan = Sim_chan.id chan; ptr }))
            (Msg.ptrs msg);
          (match Msg.protocol msg with
          | `Req id ->
              Hook.emit
                (Hook.Msg_req { chan = Sim_chan.id chan; id; way = `Dropped })
          | `Conf ids ->
              List.iter
                (fun id ->
                  Hook.emit
                    (Hook.Msg_conf { chan = Sim_chan.id chan; id; way = `Dropped }))
                ids
          | `Other -> ());
          go ()
      | None -> ()
    in
    go ()
  end

(* The generic death: server-specific resets first (they may still bank
   counters into the archive), then the recoverable-resource teardown. *)
let generic_crash t () =
  List.iter (fun f -> f ()) t.crash_hooks;
  List.iter (fun reset -> reset ()) t.db_resets;
  List.iter Pool.free_all t.pools;
  List.iter
    (fun chan ->
      drop_queued chan;
      Sim_chan.tear_down chan)
    t.rx

(* A recovery step just completed; if the injector is armed for this
   step, consume the arming, crash the component (running the full
   generic teardown) and unwind the rest of the recovery. *)
let checkpoint t step =
  match t.crash_after with
  | Some armed when armed = step ->
      t.crash_after <- None;
      Proc.crash t.proc;
      raise Crashed_mid_recovery
  | _ -> ()

let step_revive = "revive-channels"
let step_republish = "republish-exports"

let generic_restart t ~fresh =
  try
    List.iter Sim_chan.revive t.rx;
    checkpoint t step_revive;
    List.iter
      (fun (step, f) ->
        f ~fresh;
        Option.iter (checkpoint t) step)
      t.restart_hooks;
    List.iter (publish_export t) t.exports;
    checkpoint t step_republish;
    (* Post-publish hooks see the fully republished directory — the
       continuous verifier's sabotage handles live here. *)
    List.iter
      (fun (step, f) ->
        f ();
        Option.iter (checkpoint t) step)
      t.restarted_hooks
  with Crashed_mid_recovery -> ()

let create machine ~name ~core ?directory ?trace () =
  let proc = Proc.create machine ~name ~core ?trace () in
  let t =
    {
      machine;
      proc;
      directory;
      rx = [];
      tx = [];
      exports = [];
      pools = [];
      db_resets = [];
      crash_hooks = [];
      restart_hooks = [];
      restarted_hooks = [];
      crash_after = None;
      archive = Hashtbl.create 16;
    }
  in
  Proc.set_on_crash proc (generic_crash t);
  Proc.set_on_restart proc (generic_restart t);
  t

let machine t = t.machine
let proc t = t.proc
let name t = Proc.name t.proc
let pid t = Proc.pid t.proc
let core t = Proc.core t.proc
let stats t = Proc.stats t.proc
let directory t = t.directory
let alive t = Proc.alive t.proc
let responsive t = Proc.responsive t.proc
let incarnation t = Proc.incarnation t.proc

let consume t chan handler =
  t.rx <- t.rx @ [ chan ];
  Proc.add_rx t.proc chan handler

let produce t ?(policy = `Drop) ?(shared = false) chan =
  let entry = { chan; policy; shared } in
  if List.exists (fun e -> e.chan == chan) t.tx then
    t.tx <- List.map (fun e -> if e.chan == chan then entry else e) t.tx
  else t.tx <- t.tx @ [ entry ]

let export t ~key chan =
  t.exports <- t.exports @ [ (key, chan) ];
  publish_export t (key, chan)

let register_pool t pool =
  t.pools <- t.pools @ [ pool ];
  Hook.emit (Hook.Pool_own { pool = Pool.id pool; owner = Proc.name t.proc })

let produced t = List.map (fun e -> (e.chan, e.policy, e.shared)) t.tx
let consumed t = t.rx
let exports t = t.exports
let pools t = t.pools
let on_crash t f = t.crash_hooks <- t.crash_hooks @ [ f ]
let on_restart t ?step f = t.restart_hooks <- t.restart_hooks @ [ (step, f) ]

let on_restarted t ?step f =
  t.restarted_hooks <- t.restarted_hooks @ [ (step, f) ]

let recovery_steps t =
  [ step_revive ]
  @ List.filter_map fst t.restart_hooks
  @ [ step_republish ]
  @ List.filter_map fst t.restarted_hooks

let arm_crash_after t ~step = t.crash_after <- Some step
let disarm_crash t = t.crash_after <- None
let armed_crash t = t.crash_after
let crash t = Proc.crash t.proc
let hang t = Proc.hang t.proc
let restart t = Proc.restart t.proc
let migrate t core = Proc.migrate t.proc core

module Db = struct
  type 'a t = { mutable db : 'a Request_db.t }

  let submit t ~peer ~payload ~abort = Request_db.submit t.db ~peer ~payload ~abort
  let complete t id = Request_db.complete t.db id
  let peek t id = Request_db.peek t.db id
  let abort_peer t ~peer = Request_db.abort_peer t.db ~peer
  let outstanding t = Request_db.outstanding t.db
  let outstanding_to t ~peer = Request_db.outstanding_to t.db ~peer
  let iter t f = Request_db.iter t.db f
  let id t = Request_db.db_id t.db
end

let create_db t =
  let db = { Db.db = Request_db.create () } in
  t.db_resets <-
    t.db_resets
    @ [
        (fun () ->
          (* Announce the wholesale drop before the records vanish so
             the protocol checker closes their obligations as
             owner-died, not as unresolved. *)
          Request_db.reset_signal db.Db.db;
          db.Db.db <- Request_db.create ());
      ];
  db

let archive_add t key n =
  let prev = match Hashtbl.find_opt t.archive key with Some v -> v | None -> 0 in
  Hashtbl.replace t.archive key (prev + n)

let archived t key =
  match Hashtbl.find_opt t.archive key with Some v -> v | None -> 0

let lifetime t key = archived t key + Stats.get (Proc.stats t.proc) key
