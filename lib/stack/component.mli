(** The generic component-server core.

    Every server in the split stack (driver, IP, packet filter, TCP,
    UDP, SYSCALL) is the same machine wearing different clothes: a
    single-threaded process pinned to a core, draining bounded
    non-blocking channels, keeping a request database whose entries can
    be aborted when a peer dies, and able to crash and come back with
    only its recoverable state.  A [Component.t] owns all of that
    machinery once; a server module reduces to a message handler plus a
    (de)serializer for whatever state it wants to survive a restart.

    Lifecycle, installed once at [create]:

    - on crash: custom crash hooks (registration order, so the server's
      own state reset runs before any supervisor-added notification),
      then every registered request DB is emptied, every registered
      buffer pool is freed wholesale, and every consumed channel is
      torn down so senders see the death immediately.
    - on restart: consumed channels are revived, custom restart hooks
      run (server first, supervisor additions after), and every
      exported channel key is republished to the directory so peers
      re-resolve.

    The component also keeps a per-incarnation counter archive: crash
    hooks may bank counters from state that dies with the incarnation
    (e.g. a TCP engine's segment counts) with [archive_add], and
    readers use [archived]/[lifetime] to see totals that neither
    double-count nor vanish across restarts. *)

module Time = Newt_sim.Time
module Stats = Newt_sim.Stats
module Trace = Newt_sim.Trace
module Cpu = Newt_hw.Cpu
module Machine = Newt_hw.Machine
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Pubsub = Newt_channels.Pubsub

module Defaults : sig
  (** One source of truth for the paper's reincarnation figures
      (Section IV-D): servers answer heartbeats every 100 ms and a
      crashed server is restarted 120 ms after detection. *)

  val heartbeat_period : Time.cycles
  val restart_delay : Time.cycles
end

type t

val create :
  Machine.t ->
  name:string ->
  core:Cpu.t ->
  ?directory:Pubsub.t ->
  ?trace:Trace.t ->
  unit ->
  t
(** Create the component's process on [core] and install the generic
    crash/restart lifecycle. The component owns the process's
    [on_crash]/[on_restart] slots; supervisors add behavior with
    [on_crash]/[on_restart] below instead of touching the process. *)

(** {1 Identity} *)

val machine : t -> Machine.t
val proc : t -> Proc.t
val name : t -> string
val pid : t -> int
val core : t -> Cpu.t
val stats : t -> Stats.t
val directory : t -> Pubsub.t option

(** {1 Heartbeat surface}

    The reincarnation server's health probe: a component is [alive]
    until it crashes and [responsive] while it would answer a heartbeat
    within the round (alive and not hung). *)

val alive : t -> bool
val responsive : t -> bool
val incarnation : t -> int

(** {1 Channel registry} *)

val consume : t -> Msg.t Sim_chan.t -> Proc.handler -> unit
(** Register an inbound channel: the process drains it, and the
    lifecycle tears it down on crash / revives it on restart. *)

val produce :
  t -> ?policy:[ `Drop | `Block ] -> ?shared:bool -> Msg.t Sim_chan.t -> unit
(** Declare an outbound endpoint, for the static verifier's topology.
    [policy] records what the server does on a full channel: [`Drop]
    (the default — the paper's non-blocking discipline) or [`Block]
    (the server spins until space frees, an edge in the blocking-wait
    graph). [~shared:true] marks a fan-out endpoint that other
    components also declare (e.g. every IP replica holds the full
    transport channel array); shared declarations are exempt from the
    single-producer check. Re-declaring the same channel replaces the
    previous declaration. *)

val export : t -> key:string -> Msg.t Sim_chan.t -> unit
(** Register an outbound channel under a directory [key]: published
    immediately (when a directory was given) and republished after
    every restart so peers can re-resolve the channel. *)

(** {1 Topology introspection}

    Read-only views for the static stack verifier, reflecting the
    declarations made during wiring. *)

val produced : t -> (Msg.t Sim_chan.t * [ `Drop | `Block ] * bool) list
(** Declared outbound endpoints, as [(chan, policy, shared)]. *)

val consumed : t -> Msg.t Sim_chan.t list
(** Inbound channels in registration order. *)

val exports : t -> (string * Msg.t Sim_chan.t) list
(** Directory keys this component (re)publishes, with their channels. *)

val pools : t -> Pool.t list
(** Buffer pools owned by (and freed with) this component. *)

(** {1 Recoverable resources} *)

val register_pool : t -> Pool.t -> unit
(** Freed wholesale when the component crashes: zero-copy buffers are
    part of the incarnation, never of the recoverable state. Announces
    ownership to the sanitizer hook (install the sanitizer before
    wiring the stack to capture it). *)

val on_crash : t -> (unit -> unit) -> unit
(** Append a custom crash hook; hooks run in registration order before
    the generic teardown (DBs, pools, channels). *)

val on_restart : t -> ?step:string -> (fresh:bool -> unit) -> unit
(** Append a custom restart hook; hooks run after consumed channels
    are revived and before exports are republished. [?step] gives the
    hook a name in the component's labeled recovery procedure (see
    {!recovery_steps}); unlabeled hooks run but are not individually
    addressable as crash points. *)

val on_restarted : t -> ?step:string -> (unit -> unit) -> unit
(** Append a post-recovery hook: runs after the restart hooks {e and}
    after the exports were republished, i.e. once the new incarnation
    is fully advertised. This is where broken-recovery sabotage (and
    anything else that must observe or undo the republish) lives.
    [?step] labels it as a recovery step, like {!on_restart}'s. *)

(** {1 Labeled recovery procedure}

    Every component's recovery is a fixed sequence of steps: the
    built-in ["revive-channels"] (consumed channels revived), the
    labeled restart hooks in registration order, the built-in
    ["republish-exports"] (directory keys republished), then the
    labeled post-recovery hooks. The model checker enumerates these
    names and, via {!arm_crash_after}, crashes the component right
    {e after} each one — modelling a server that dies mid-recovery —
    to check the stack converges from every crash point (Table I's
    procedures restarted from anywhere). *)

val recovery_steps : t -> string list
(** The component's labeled recovery steps, in execution order. *)

val arm_crash_after : t -> step:string -> unit
(** One-shot injector: the next time recovery executes [step], crash
    the component immediately after the step completes (full generic
    teardown runs; the remaining recovery steps do not). The arming is
    consumed when it fires. Arming a step this component never
    executes simply never fires. *)

val disarm_crash : t -> unit
(** Drop any pending {!arm_crash_after} arming. *)

val armed_crash : t -> string option
(** The step a pending arming waits for, if any. *)

(** {1 Fault injection / recovery} *)

val crash : t -> unit
val hang : t -> unit
val restart : t -> unit

val migrate : t -> Cpu.t -> unit
(** {!Proc.migrate} for the component's process: model a recovery that
    brings the server up on the wrong core. *)

(** {1 Request database}

    A request DB owned by a component is recreated empty when the
    component crashes — outstanding requests die with the incarnation;
    recovery re-issues them from the peers' side. *)

module Db : sig
  type 'a t

  val submit :
    'a t -> peer:int -> payload:'a -> abort:'a Newt_channels.Request_db.abort -> int

  val complete : 'a t -> int -> 'a option
  val peek : 'a t -> int -> 'a option

  val abort_peer : 'a t -> peer:int -> int
  (** Run the abort action of (and drop) every request submitted
      against [peer]; returns how many were aborted. *)

  val outstanding : 'a t -> int
  val outstanding_to : 'a t -> peer:int -> int
  val iter : 'a t -> (int -> peer:int -> 'a -> unit) -> unit

  val id : 'a t -> int
  (** {!Newt_channels.Request_db.db_id} of the current incarnation's
      database. *)
end

val create_db : t -> 'a Db.t

(** {1 Per-incarnation counter archive} *)

val archive_add : t -> string -> int -> unit
(** Bank [n] into the archive under [key]; meant for crash hooks that
    save counters from state dying with the incarnation. *)

val archived : t -> string -> int
(** Total banked across all dead incarnations. *)

val lifetime : t -> string -> int
(** [archived t key] plus the live counter of the same name in
    [stats t]: a total that survives restarts without double-counting. *)
