module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module E1000 = Newt_nic.E1000
module Sim_chan = Newt_channels.Sim_chan
module Rich_ptr = Newt_channels.Rich_ptr

type t = {
  comp : Component.t;
  proc : Proc.t;
  nic : E1000.t;
  mutable tx_to_ip : Msg.t Sim_chan.t option;
  mutable rx_alloc : (unit -> Rich_ptr.t option) option;
  mutable rx_write : (Rich_ptr.t -> Bytes.t -> unit) option;
  mutable tx_accepted : int;
}

let comp t = t.comp
let proc t = t.proc
let nic t = t.nic
let tx_accepted t = t.tx_accepted

let costs t = Machine.costs (Component.machine t.comp)

(* Keep the RX ring full: hand every buffer we can allocate to the
   device. *)
let replenish_rx t =
  match (t.rx_alloc, t.rx_write) with
  | Some alloc, Some _ ->
      let rec fill () =
        if E1000.rx_ring_free t.nic > 0 then
          match alloc () with
          | Some buf ->
              if E1000.post_rx t.nic { E1000.buf; rx_cookie = 0 } then fill ()
          | None -> ()
      in
      fill ()
  | _ -> ()

let handle_irq t reason =
  (* The kernel turned the interrupt into a message; handling it costs a
     mode switch plus per-completion work charged below. *)
  let c = costs t in
  Proc.exec t.proc ~cost:c.Costs.trap_hot (fun () ->
      match reason with
      | E1000.Tx_done ->
          let rec reap () =
            match E1000.reap_tx t.nic with
            | None -> ()
            | Some desc ->
                Proc.exec t.proc
                  ~cost:(c.Costs.driver_packet_work / 2)
                  (fun () ->
                    match t.tx_to_ip with
                    | Some chan ->
                        ignore
                          (Proc.send t.proc chan
                             (Msg.Drv_tx_confirm { id = desc.E1000.tx_cookie; ok = true }))
                    | None -> ());
                reap ()
          in
          reap ()
      | E1000.Rx_done ->
          let rec reap () =
            match E1000.reap_rx t.nic with
            | None -> ()
            | Some completion ->
                Proc.exec t.proc ~cost:c.Costs.driver_packet_work (fun () ->
                    match t.tx_to_ip with
                    | Some chan ->
                        let buf =
                          { completion.E1000.rx_buf with Rich_ptr.len = completion.E1000.len }
                        in
                        ignore
                          (Proc.send t.proc chan
                             (Msg.Rx_frame { buf; len = completion.E1000.len }))
                    | None -> ());
                reap ()
          in
          reap ();
          replenish_rx t
      | E1000.Link_change ->
          (* Link came back after a reset: re-arm and resume. *)
          replenish_rx t;
          E1000.doorbell_tx t.nic)

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Drv_tx { id; chain; csum_offload; tso; tso_mss; queue = _ } ->
      ( c.Costs.driver_packet_work,
        fun () ->
          t.tx_accepted <- t.tx_accepted + 1;
          let desc =
            { E1000.chain; csum_offload; tso; tso_mss; tx_cookie = id }
          in
          if E1000.post_tx t.nic desc then E1000.doorbell_tx t.nic
          else begin
            (* TX ring full: refuse, IP keeps the request pending and
               will resubmit (never block, Section IV-A). *)
            match t.tx_to_ip with
            | Some chan ->
                ignore (Proc.send t.proc chan (Msg.Drv_tx_confirm { id; ok = false }))
            | None -> ()
          end )
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Filter_verdict _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_deliver _ | Msg.Rx_done _
  | Msg.Sock_req _ | Msg.Sock_reply _ | Msg.Sock_event _ ->
      (* Not ours: a buggy or malicious peer. Ignore (Section IV-A:
         "the receiving process must check whether a request makes
         sense ... and ignore invalid ones"). *)
      (0, fun () -> Newt_sim.Stats.incr (Proc.stats t.proc) "invalid_msg")

let create comp ~nic () =
  let t =
    {
      comp;
      proc = Component.proc comp;
      nic;
      tx_to_ip = None;
      rx_alloc = None;
      rx_write = None;
      tx_accepted = 0;
    }
  in
  E1000.set_irq_handler nic (fun reason -> handle_irq t reason);
  (* Fresh start after a crash: the device must be reset — "manually
     restarting the driver ... reset the device" (Section VI-B). *)
  Component.on_restart comp ~step:"reset-device" (fun ~fresh:_ ->
      E1000.reset t.nic);
  t

let connect_ip t ~rx_from_ip ~tx_to_ip =
  t.tx_to_ip <- Some tx_to_ip;
  Component.produce t.comp tx_to_ip;
  Component.consume t.comp rx_from_ip (handle_msg t)

let grant_rx_pool t ~alloc ~write =
  t.rx_alloc <- Some alloc;
  t.rx_write <- Some write;
  E1000.set_rx_writer t.nic (fun buf frame -> write buf frame);
  replenish_rx t

let on_ip_crash t =
  (* The device still holds shadow descriptors pointing into the dead
     pool: unsafe until reset. *)
  t.rx_alloc <- None;
  t.rx_write <- None;
  E1000.mark_unsafe t.nic

let on_ip_restart t =
  (* The Intel adapters have no knob to invalidate their shadow RX/TX
     descriptor copies, so the device must be reset — this is what
     causes the visible gap of Figure 4. *)
  E1000.reset t.nic
