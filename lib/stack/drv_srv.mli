(** The network driver server.

    One per NIC (or one for several NICs — the driver-coalescing
    configuration of Section VI-A). The driver's work is deliberately
    tiny: "filling descriptors and updating tail pointers of the rings
    on the device, polling the device". It is stateless from the
    recovery point of view (Table I: "No state, simple restart"): its
    whole lifecycle is the generic {!Component} one, plus a device
    reset on restart.

    Interrupts reach the driver as kernel messages (Section V-B); here
    the device's irq handler schedules costed work on the driver's
    core.

    The receive pool belongs to the IP server; the driver gets an
    allocation capability ({!grant_rx_pool}) when IP exports the pool,
    and returns buffers to the device's RX ring. When IP crashes, the
    pool dies with it: the driver must reset the device before going on
    (Section V-D — "a crash of IP means de facto restart of the network
    drivers too"). *)

type t

val create : Component.t -> nic:Newt_nic.E1000.t -> unit -> t

val comp : t -> Component.t
val proc : t -> Proc.t
val nic : t -> Newt_nic.E1000.t

val connect_ip :
  t ->
  rx_from_ip:Msg.t Newt_channels.Sim_chan.t ->
  tx_to_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit
(** Wire the channel pair to the IP server and start consuming. *)

val grant_rx_pool :
  t ->
  alloc:(unit -> Newt_channels.Rich_ptr.t option) ->
  write:(Newt_channels.Rich_ptr.t -> Bytes.t -> unit) ->
  unit
(** IP exported its receive pool: [alloc] yields empty buffers (None
    when exhausted), [write] is the DMA-write capability. The driver
    fills the RX ring. *)

val on_ip_crash : t -> unit
(** Neighbour-crash procedure: abort in-flight work, mark the device
    unsafe (its shadow descriptors reference a dead pool). *)

val on_ip_restart : t -> unit
(** IP is back: reset the device (link bounce) and re-arm RX once the
    pool has been re-granted. *)

val tx_accepted : t -> int
(** Frames accepted from IP over this driver's lifetime. *)
