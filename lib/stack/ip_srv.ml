module Stats = Newt_sim.Stats
module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Rich_ptr = Newt_channels.Rich_ptr
module Registry = Newt_channels.Registry
module Hook = Newt_channels.Hook
module Addr = Newt_net.Addr
module Ipv4 = Newt_net.Ipv4
module Icmp = Newt_net.Icmp
module Arp = Newt_net.Arp
module Ethernet = Newt_net.Ethernet

type iface_config = {
  addr : Addr.Ipv4.t;
  netmask_bits : int;
  mac : Addr.Mac.t;
}

type origin =
  | From_tcp of { shard : int; id : int }
  | From_udp of { shard : int; id : int }
  | Local

type pending =
  | Pf_out of {
      origin : origin;
      chain : Rich_ptr.chain;
      iface : int;
      hdr : Rich_ptr.t;
      tso : bool;
      pkt : Bytes.t;
    }
  | Pf_in of { buf : Rich_ptr.t; pkt : Bytes.t }
  | Drv of { origin : origin; hdr : Rich_ptr.t; chain : Rich_ptr.chain; iface : int; tso : bool }

type driver_hooks = {
  drv_connect :
    rx_from_ip:Msg.t Sim_chan.t -> tx_to_ip:Msg.t Sim_chan.t -> unit;
  drv_grant_rx_pool :
    alloc:(unit -> Rich_ptr.t option) ->
    write:(Rich_ptr.t -> Bytes.t -> unit) ->
    unit;
  drv_on_ip_crash : unit -> unit;
  drv_on_ip_restart : unit -> unit;
}

type iface = {
  cfg : iface_config;
  drv : driver_hooks;
  tx : Msg.t Sim_chan.t;
  arp : Arp.Cache.t;
  mutable drv_up : bool;
}

(* Upward fan-out to a (possibly sharded) transport: [steer] maps a
   flow's 4-tuple to the shard index — the same function the NIC's RSS
   table implements, so a flow always lands on one shard. *)
type fanout = {
  chans : Msg.t Sim_chan.t array;
  steer :
    src:Addr.Ipv4.t -> sport:int -> dst:Addr.Ipv4.t -> dport:int -> int;
}

(* Downward fan-out to a (possibly sharded) packet filter: [pf_steer]
   maps a flow's 4-tuple to the PF shard, with the same symmetric flow
   hash the transport fan-out uses, so a flow's packets — both
   directions — always meet the same conntrack partition. *)
type pf_set = {
  pf_chans : Msg.t Sim_chan.t array;
  pf_steer :
    src:Addr.Ipv4.t -> sport:int -> dst:Addr.Ipv4.t -> dport:int -> int;
  pf_up : bool array;
}

(* Which channel a message arrived on decides how we interpret it:
   frames know their port, transport requests know their shard. *)
type source =
  | Src_iface of int
  | Src_transport of [ `Tcp | `Udp ] * int
  | Src_other

type t = {
  comp : Component.t;
  proc : Proc.t;
  registry : Registry.t;
  save : string -> string -> unit;
  load : string -> string option;
  mutable ifaces : iface list;  (* index = position *)
  rx_pool : Pool.t;
  hdr_pool : Pool.t;
  db : pending Component.Db.t;
  route_table : Ipv4.Route.table;
  mutable pf : pf_set option;
  mutable to_tcp : fanout option;
  mutable to_udp : fanout option;
  held_bufs : (Rich_ptr.t, [ `Tcp | `Udp ] * int) Hashtbl.t;
  mutable resubmit_pf : pending list;
  mutable resubmit_drv : pending list;
  mutable ident : int;
  mutable packets_forwarded : int;
  mutable icmp_echoes : int;
  (* Replication support: which TX queue Local-origin frames (ARP,
     ICMP) leave on, a hook fired when an ARP mapping is learned from
     the network, and a hand-off for buffers freed to us that belong to
     a sibling replica's receive pool. *)
  mutable local_queue : int;
  mutable arp_announce :
    (iface:int -> Addr.Ipv4.t -> Addr.Mac.t -> unit) option;
  mutable buf_return : (Rich_ptr.t -> unit) option;
}

let pf_peer shard = 100 + shard
let drv_peer iface = 10 + iface

let comp t = t.comp
let proc t = t.proc
let costs t = Machine.costs (Component.machine t.comp)
let routes t = Ipv4.Route.entries t.route_table
let rx_pool_in_use t = Pool.in_use t.rx_pool
let rx_pool_id t = Pool.id t.rx_pool
let hdr_pool_in_use t = Pool.in_use t.hdr_pool
let packets_forwarded t = t.packets_forwarded
let icmp_echoes_answered t = t.icmp_echoes

let iface t i = List.nth t.ifaces i
let iface_count t = List.length t.ifaces

let free_ptr pool ptr =
  try Pool.free pool ptr with Pool.Stale_pointer _ -> ()

let free_hdr t ptr = free_ptr t.hdr_pool ptr
let free_rx t ptr = free_ptr t.rx_pool ptr

let marshal_cost t = (costs t).Costs.channel_marshal + (costs t).Costs.channel_enqueue

let fanout_chan fan shard =
  let n = Array.length fan.chans in
  if n = 0 then None else Some fan.chans.(shard mod n)

let confirm_origin t origin ok =
  let send fan shard id =
    match fan with
    | None -> ()
    | Some fan ->
        Option.iter
          (fun chan -> ignore (Proc.send t.proc chan (Msg.Tx_ip_confirm { id; ok })))
          (fanout_chan fan shard)
  in
  match origin with
  | Local -> ()
  | From_tcp { shard; id } -> send t.to_tcp shard id
  | From_udp { shard; id } -> send t.to_udp shard id

(* The TX queue a packet should leave on: its origin shard, so the
   device's TX completion stays on the queue the flow's RX side uses.
   Local-origin frames (ARP, ICMP) use [local_queue], which a
   replicated deployment points at one of this replica's own queues so
   the confirm comes back to the right instance. *)
let origin_queue t = function
  | Local -> t.local_queue
  | From_tcp { shard; _ } | From_udp { shard; _ } -> shard

(* {2 Transmit path} *)

(* Hand a complete frame to a driver; registers the in-flight request so
   a driver crash can be recovered by resubmission. *)
let transmit_frame t ~iface:i ~origin ~hdr ~chain ~tso =
  let ifc = iface t i in
  let p = Drv { origin; hdr; chain; iface = i; tso } in
  if not ifc.drv_up then t.resubmit_drv <- p :: t.resubmit_drv
  else begin
    let id =
      Component.Db.submit t.db ~peer:(drv_peer i) ~payload:p
        ~abort:(fun _ pending -> t.resubmit_drv <- pending :: t.resubmit_drv)
    in
    t.packets_forwarded <- t.packets_forwarded + 1;
    let sent =
      Proc.send t.proc ifc.tx
        (Msg.Drv_tx
           {
             id;
             chain;
             csum_offload = true;
             tso;
             tso_mss = 1460;
             queue = origin_queue t origin;
           })
    in
    if not sent then begin
      (* Queue full: drop this packet (acceptable for a network stack,
         Section IV-A) and tell the origin it failed. *)
      ignore (Component.Db.complete t.db id);
      free_hdr t hdr;
      confirm_origin t origin false
    end
  end

(* The PF shard a packet belongs to: parsed from the IP header the
   filter will classify ([pkt] starts at the IP header for both
   directions). The steer function is symmetric in the two endpoints,
   so no direction normalization is needed. Unparseable packets go to
   shard 0 — the filter will block them anyway. *)
let pf_shard_of pf pkt =
  let n = Array.length pf.pf_chans in
  if n <= 1 || Bytes.length pkt < 20 then 0
  else begin
    let ip_at off = Addr.Ipv4.of_int32 (Bytes.get_int32_be pkt off) in
    let src = ip_at 12 and dst = ip_at 16 in
    let proto = Char.code (Bytes.get pkt 9) in
    let sport, dport =
      if (proto = 6 || proto = 17) && Bytes.length pkt >= 24 then
        (Bytes.get_uint16_be pkt 20, Bytes.get_uint16_be pkt 22)
      else (0, 0)
    in
    pf.pf_steer ~src ~sport ~dst ~dport mod n
  end

(* Submit a packet (either direction) to its packet filter shard, or
   pass it straight through when no filter is configured. *)
let to_filter t pending =
  match (t.pf, pending) with
  | None, Pf_out { origin; chain; iface; hdr; tso; _ } ->
      transmit_frame t ~iface ~origin ~hdr ~chain ~tso
  | None, Pf_in _ -> assert false (* handled by caller when no PF *)
  | Some pf, (Pf_out { pkt; _ } | Pf_in { pkt; _ }) ->
      let dir = match pending with Pf_in _ -> `In | Pf_out _ | Drv _ -> `Out in
      let shard = pf_shard_of pf pkt in
      if not pf.pf_up.(shard) then
        (* That filter shard is restarting: hold the packet, no loss
           (Figure 5) — the other shards' traffic keeps flowing. *)
        t.resubmit_pf <- pending :: t.resubmit_pf
      else begin
        let id =
          Component.Db.submit t.db ~peer:(pf_peer shard) ~payload:pending
            ~abort:(fun _ p -> t.resubmit_pf <- p :: t.resubmit_pf)
        in
        if not (Proc.send t.proc pf.pf_chans.(shard) (Msg.Filter_req { id; dir; pkt }))
        then begin
          ignore (Component.Db.complete t.db id);
          t.resubmit_pf <- pending :: t.resubmit_pf
        end
      end
  | _, Drv _ -> assert false

(* Build the merged Ethernet+IP+L4-header chunk and queue the packet for
   the outgoing filter pass. [l4chain]'s first chunk must be the L4
   header (with a partial checksum for the NIC to finalize). *)
let start_tx t ~origin ~src ~dst ~proto ~l4chain ~tso =
  match Ipv4.Route.lookup t.route_table dst with
  | None -> confirm_origin t origin false
  | Some route -> (
      let i = route.Ipv4.Route.iface in
      if i >= iface_count t then confirm_origin t origin false
      else
        let ifc = iface t i in
        let next_hop =
          match route.Ipv4.Route.gateway with Some g -> g | None -> dst
        in
        let continue dst_mac =
          match l4chain with
        | [] -> confirm_origin t origin false
        | l4hdr_ptr :: payload_chunks -> (
            match Registry.read t.registry l4hdr_ptr with
            | exception (Pool.Stale_pointer _ | Registry.Unknown_pool _) ->
                (* The originator crashed (its pool died) while this
                   request waited in our queue: an invalid request, to
                   be ignored (Section IV-A). *)
                Stats.incr (Proc.stats t.proc) "stale_request";
                confirm_origin t origin false
            | l4hdr ->
            let l4hdr_len = Bytes.length l4hdr in
            let total_len = 20 + Rich_ptr.chain_len l4chain in
            if total_len > 0xffff then confirm_origin t origin false
            else begin
              t.ident <- (t.ident + 1) land 0xffff;
              let hdr_len = 14 + 20 + l4hdr_len in
              match Pool.alloc t.hdr_pool ~len:hdr_len with
              | exception Pool.Pool_exhausted -> confirm_origin t origin false
              | hdr_ptr ->
                  let hdr = Bytes.create hdr_len in
                  Ethernet.encode_header
                    { Ethernet.dst = dst_mac; src = ifc.cfg.mac; ethertype = Ethernet.Ipv4 }
                    hdr ~off:0;
                  Ipv4.encode_header
                    {
                      Ipv4.src;
                      dst;
                      protocol = proto;
                      ttl = 64;
                      ident = t.ident;
                      total_len;
                    }
                    hdr ~off:14;
                  Bytes.blit l4hdr 0 hdr 34 l4hdr_len;
                  Pool.write t.hdr_pool hdr_ptr ~src:hdr ~src_off:0;
                  let chain = hdr_ptr :: payload_chunks in
                  (* The filter classifies on the IP + L4 header bytes. *)
                  let pkt = Bytes.sub hdr 14 (20 + l4hdr_len) in
                  let pending =
                    Pf_out { origin; chain; iface = i; hdr = hdr_ptr; tso; pkt }
                  in
                  if t.pf = None then
                    transmit_frame t ~iface:i ~origin ~hdr:hdr_ptr ~chain ~tso
                  else to_filter t pending
            end)
        in
        match
          Arp.Cache.resolve ifc.arp next_hop ~on_ready:(fun mac ->
              Proc.exec t.proc ~cost:(costs t).Costs.ip_tx_work (fun () -> continue mac))
        with
        | `Hit mac -> continue mac
        | `Wait ->
            (* First waiter sends the ARP request. *)
            let req = Arp.Cache.request_for ifc.arp next_hop in
            let arp_bytes = Arp.encode req in
            let frame = Bytes.create (14 + Arp.packet_size) in
            Ethernet.encode_header
              { Ethernet.dst = Addr.Mac.broadcast; src = ifc.cfg.mac; ethertype = Ethernet.Arp }
              frame ~off:0;
            Bytes.blit arp_bytes 0 frame 14 Arp.packet_size;
            (match Pool.alloc t.hdr_pool ~len:(Bytes.length frame) with
            | exception Pool.Pool_exhausted -> ()
            | ptr ->
                Pool.write t.hdr_pool ptr ~src:frame ~src_off:0;
                transmit_frame t ~iface:i ~origin:Local ~hdr:ptr ~chain:[ ptr ] ~tso:false)
        | `Dropped -> confirm_origin t origin false)

(* {2 Receive path} *)

let deliver t ~fanout:fan ~tag ~buf ~l4_off ~l4_len ~src ~dst ~sport ~dport =
  match fan with
  | None -> free_rx t buf
  | Some fan -> (
      let shard =
        if Array.length fan.chans <= 1 then 0
        else fan.steer ~src ~sport ~dst ~dport mod Array.length fan.chans
      in
      match fanout_chan fan shard with
      | None -> free_rx t buf
      | Some chan -> (
          match Pool.sub_ptr buf ~off:l4_off ~len:l4_len with
          | sub ->
              Hashtbl.replace t.held_bufs buf (tag, shard);
              if not (Proc.send t.proc chan (Msg.Rx_deliver { buf = sub; src; dst }))
              then begin
                Hashtbl.remove t.held_bufs buf;
                free_rx t buf
              end
          | exception Invalid_argument _ -> free_rx t buf))

let handle_icmp t ~buf ~l4_bytes ~src ~dst =
  (match Icmp.decode l4_bytes with
  | Some msg -> (
      match Icmp.reply_to msg with
      | Some reply ->
          t.icmp_echoes <- t.icmp_echoes + 1;
          let reply_bytes = Icmp.encode reply in
          if Bytes.length reply_bytes <= Pool.slot_size t.hdr_pool then begin
            match Pool.alloc t.hdr_pool ~len:(Bytes.length reply_bytes) with
            | exception Pool.Pool_exhausted -> ()
            | ptr ->
                Pool.write t.hdr_pool ptr ~src:reply_bytes ~src_off:0;
                start_tx t ~origin:Local ~src:dst ~dst:src ~proto:Ipv4.Icmp
                  ~l4chain:[ ptr ] ~tso:false
          end
      | None -> ())
  | None -> Stats.incr (Proc.stats t.proc) "icmp.malformed");
  free_rx t buf

let accept_in t ~buf pkt_bytes =
  (* The inbound packet passed the filter: demultiplex by protocol. *)
  match Ipv4.decode_header pkt_bytes ~off:0 with
  | None -> free_rx t buf
  | Some ih ->
      let l4_off_in_pkt = 20 in
      let l4_len = ih.Ipv4.total_len - 20 in
      if ih.Ipv4.total_len > Bytes.length pkt_bytes then begin
        (* The header claims more bytes than arrived: a truncated or
           forged datagram (the ping-of-death shape). Drop it. *)
        Stats.incr (Proc.stats t.proc) "ip.truncated";
        free_rx t buf
      end
      else if l4_len <= 0 then free_rx t buf
      else begin
        let src = ih.Ipv4.src and dst = ih.Ipv4.dst in
        (* The L4 ports, for shard steering (both TCP and UDP put them
           in the first four header bytes). *)
        let sport, dport =
          if Bytes.length pkt_bytes >= l4_off_in_pkt + 4 then
            ( Bytes.get_uint16_be pkt_bytes l4_off_in_pkt,
              Bytes.get_uint16_be pkt_bytes (l4_off_in_pkt + 2) )
          else (0, 0)
        in
        match ih.Ipv4.protocol with
        | Ipv4.Tcp ->
            deliver t ~fanout:t.to_tcp ~tag:`Tcp ~buf ~l4_off:(14 + l4_off_in_pkt)
              ~l4_len ~src ~dst ~sport ~dport
        | Ipv4.Udp ->
            deliver t ~fanout:t.to_udp ~tag:`Udp ~buf ~l4_off:(14 + l4_off_in_pkt)
              ~l4_len ~src ~dst ~sport ~dport
        | Ipv4.Icmp ->
            handle_icmp t ~buf ~l4_bytes:(Bytes.sub pkt_bytes 20 l4_len) ~src ~dst
        | Ipv4.Unknown _ -> free_rx t buf
      end

let handle_rx_frame t ~iface:arrival ~buf ~len =
  match Pool.read t.rx_pool { buf with Rich_ptr.len } with
  | exception Pool.Stale_pointer _ -> ()
  | frame -> (
      match Ethernet.decode_header frame ~off:0 with
      | None -> free_rx t buf
      | Some eh -> (
          match eh.Ethernet.ethertype with
          | Ethernet.Arp -> (
              free_rx t buf;
              match Arp.decode (Bytes.sub frame 14 (Bytes.length frame - 14)) with
              | None -> ()
              | Some arp_pkt ->
                  (* Learn on the arrival interface; answer for any of
                     our addresses, on the arrival interface with its
                     MAC (weak host model — the multihomed host is one
                     node, not a router). *)
                  let ifc = iface t arrival in
                  let owns_target =
                    List.exists
                      (fun other -> Addr.Ipv4.equal arp_pkt.Arp.target_ip other.cfg.addr)
                      t.ifaces
                  in
                  let cache_view =
                    (* Answer with the arrival interface's identity. *)
                    if owns_target && arp_pkt.Arp.op = Arp.Request then
                      Some
                        {
                          Arp.op = Arp.Reply;
                          sender_mac = ifc.cfg.mac;
                          sender_ip = arp_pkt.Arp.target_ip;
                          target_mac = arp_pkt.Arp.sender_mac;
                          target_ip = arp_pkt.Arp.sender_ip;
                        }
                    else None
                  in
                  ignore (Arp.Cache.input ifc.arp arp_pkt);
                  (* A mapping learned from the wire is worth sharing:
                     replicated IP servers broadcast it so the sibling
                     caches converge without extra ARP traffic. *)
                  (match t.arp_announce with
                  | Some f ->
                      f ~iface:arrival arp_pkt.Arp.sender_ip arp_pkt.Arp.sender_mac
                  | None -> ());
                  (match cache_view with
                  | Some reply ->
                      let rb = Arp.encode reply in
                      let f = Bytes.create (14 + Arp.packet_size) in
                      Ethernet.encode_header
                        {
                          Ethernet.dst = arp_pkt.Arp.sender_mac;
                          src = ifc.cfg.mac;
                          ethertype = Ethernet.Arp;
                        }
                        f ~off:0;
                      Bytes.blit rb 0 f 14 Arp.packet_size;
                      (match Pool.alloc t.hdr_pool ~len:(Bytes.length f) with
                      | exception Pool.Pool_exhausted -> ()
                      | ptr ->
                          Pool.write t.hdr_pool ptr ~src:f ~src_off:0;
                          transmit_frame t ~iface:arrival ~origin:Local ~hdr:ptr
                            ~chain:[ ptr ] ~tso:false)
                  | None -> ()))
          | Ethernet.Ipv4 ->
              let pkt_bytes = Bytes.sub frame 14 (Bytes.length frame - 14) in
              if t.pf = None then accept_in t ~buf pkt_bytes
              else begin
                let pkt =
                  Bytes.sub pkt_bytes 0 (min (Bytes.length pkt_bytes) 40)
                in
                to_filter t (Pf_in { buf = { buf with Rich_ptr.len }; pkt })
              end
          | Ethernet.Unknown _ -> free_rx t buf))

(* {2 Message handlers} *)

let complete_drv_confirm t id ok =
  match Component.Db.complete t.db id with
  | Some (Drv { origin; hdr; _ }) ->
      free_hdr t hdr;
      confirm_origin t origin ok
  | Some (Pf_out _ | Pf_in _) | None ->
      Stats.incr (Proc.stats t.proc) "stale_confirm"

(* Release the whole receive-pool frame backing [buf] (a sub-pointer a
   transport was handed and is now done with). *)
let release_held t buf =
  let found = ref None in
  Hashtbl.iter
    (fun (b : Rich_ptr.t) _ ->
      if b.Rich_ptr.pool = buf.Rich_ptr.pool
         && b.Rich_ptr.slot = buf.Rich_ptr.slot
         && b.Rich_ptr.gen = buf.Rich_ptr.gen
      then found := Some b)
    t.held_bufs;
  match !found with
  | Some b ->
      Hashtbl.remove t.held_bufs b;
      free_rx t b
  | None ->
      (* Unknown buffer — a stale free from before our restart. *)
      ()

(* [source] identifies which channel a message arrived on — each
   interface and each transport shard has its own, so received frames
   know their port and transport requests know their shard. *)
let handle_msg t ~source msg =
  let c = costs t in
  match msg with
  | Msg.Tx_ip { id; chain; src; dst; proto; tso } ->
      ( c.Costs.ip_tx_work + c.Costs.header_adjust + marshal_cost t,
        fun () ->
          let shard =
            match source with Src_transport (_, s) -> s | Src_iface _ | Src_other -> 0
          in
          let origin =
            match proto with
            | Ipv4.Udp -> From_udp { shard; id }
            | Ipv4.Tcp | Ipv4.Icmp | Ipv4.Unknown _ -> From_tcp { shard; id }
          in
          start_tx t ~origin ~src ~dst ~proto ~l4chain:chain ~tso )
  | Msg.Filter_verdict { id; pass } -> (
      ( marshal_cost t,
        fun () ->
          match Component.Db.complete t.db id with
          | Some (Pf_out { origin; chain; iface; hdr; tso; _ }) ->
              if pass then transmit_frame t ~iface ~origin ~hdr ~chain ~tso
              else begin
                free_hdr t hdr;
                confirm_origin t origin false
              end
          | Some (Pf_in { buf; _ }) ->
              if pass then begin
                match Pool.read t.rx_pool buf with
                | exception Pool.Stale_pointer _ -> ()
                | frame ->
                    let pkt_bytes = Bytes.sub frame 14 (Bytes.length frame - 14) in
                    accept_in t ~buf pkt_bytes
              end
              else free_rx t buf
          | Some (Drv _) | None ->
              (* Stale verdict from before a crash: ignore. *)
              Stats.incr (Proc.stats t.proc) "stale_verdict" ))
  | Msg.Drv_tx_confirm { id; ok } ->
      (marshal_cost t, fun () -> complete_drv_confirm t id ok)
  | Msg.Drv_tx_confirm_batch { ids; ok } ->
      (* One message, many completions: the channel cost is paid once
         per batch (the driver's amortization), the per-completion
         bookkeeping still runs for each id. *)
      ( marshal_cost t,
        fun () -> List.iter (fun id -> complete_drv_confirm t id ok) ids )
  | Msg.Rx_frame { buf; len } ->
      ( c.Costs.ip_rx_work + marshal_cost t,
        fun () ->
          let rx_iface =
            match source with Src_iface i -> i | Src_transport _ | Src_other -> 0
          in
          handle_rx_frame t ~iface:rx_iface ~buf ~len )
  | Msg.Rx_done { buf } ->
      ( 0,
        fun () ->
          (* The transport is done with the whole frame buffer that
             backs the sub-pointer it was given. In a replicated
             deployment the frame may belong to a sibling replica's
             pool (a transport shard talks to one fixed replica, but
             its flows' frames arrive via whichever replica owns the
             queue) — hand those across instead of leaking them. *)
          if buf.Rich_ptr.pool <> Pool.id t.rx_pool then (
            match t.buf_return with Some f -> f buf | None -> ())
          else release_held t buf )
  | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Drv_tx _ | Msg.Rx_deliver _
  | Msg.Sock_req _ | Msg.Sock_reply _ | Msg.Sock_event _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

(* {2 Construction and wiring} *)

let grant_pool_to t hooks =
  (* The driver (and through it the DMA engine) now writes into our
     receive pool by design — tell the sanitizer this pool is granted,
     so those foreign writes are not ownership violations. *)
  Hook.emit (Hook.Pool_grant { pool = Pool.id t.rx_pool });
  hooks.drv_grant_rx_pool
    ~alloc:(fun () ->
      match Pool.alloc t.rx_pool ~len:(Pool.slot_size t.rx_pool) with
      | ptr -> Some ptr
      | exception Pool.Pool_exhausted -> None)
    ~write:(fun ptr frame ->
      let narrowed = { ptr with Rich_ptr.len = Bytes.length frame } in
      try Pool.write t.rx_pool narrowed ~src:frame ~src_off:0
      with Pool.Stale_pointer _ -> ())

let persist_routes t =
  t.save "routes" (Marshal.to_string (Ipv4.Route.entries t.route_table) [])

let load_routes t =
  Ipv4.Route.clear t.route_table;
  match t.load "routes" with
  | Some blob ->
      let entries : Ipv4.Route.entry list = Marshal.from_string blob 0 in
      List.iter (Ipv4.Route.add t.route_table) entries
  | None -> ()

let create comp ~registry ~save ~load () =
  let rx_pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:4096 ~slot_size:2048 in
  let hdr_pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:8192 ~slot_size:2048 in
  Registry.register registry rx_pool;
  Registry.register registry hdr_pool;
  Component.register_pool comp rx_pool;
  Component.register_pool comp hdr_pool;
  let t =
    {
      comp;
      proc = Component.proc comp;
      registry;
      save;
      load;
      ifaces = [];
      rx_pool;
      hdr_pool;
      db = Component.create_db comp;
      route_table = Ipv4.Route.create ();
      pf = None;
      to_tcp = None;
      to_udp = None;
      held_bufs = Hashtbl.create 128;
      resubmit_pf = [];
      resubmit_drv = [];
      ident = 0;
      packets_forwarded = 0;
      icmp_echoes = 0;
      local_queue = 0;
      arp_announce = None;
      buf_return = None;
    }
  in
  Component.on_crash comp (fun () ->
      (* Our pools die with us (the generic lifecycle frees them):
         every rich pointer anyone still holds goes stale, and the
         devices must not DMA into them anymore — warn the drivers. *)
      Hashtbl.reset t.held_bufs;
      t.resubmit_pf <- [];
      t.resubmit_drv <- [];
      List.iter (fun ifc -> ifc.drv.drv_on_ip_crash ()) t.ifaces);
  Component.on_restart comp ~step:"load-routes" (fun ~fresh:_ ->
      (* Recover configuration from the storage server; ARP and ICMP
         are stateless, so the caches restart cold. *)
      load_routes t;
      List.iter (fun ifc -> Arp.Cache.flush ifc.arp) t.ifaces);
  Component.on_restart comp ~step:"reset-drivers" (fun ~fresh:_ ->
      (* The drivers reset their devices (Section V-D) and get the new
         receive pool. *)
      List.iter
        (fun ifc ->
          ifc.drv.drv_on_ip_restart ();
          grant_pool_to t ifc.drv)
        t.ifaces);
  t

let consume ?(source = Src_other) t chan =
  Component.consume t.comp chan (handle_msg t ~source)

let set_local_queue t q = t.local_queue <- q
let set_arp_announce t f = t.arp_announce <- Some f
let set_buf_return t f = t.buf_return <- Some f

let add_iface_custom t cfg ~hooks ~tx_chan ~rx_chan =
  let i = iface_count t in
  let ifc =
    {
      cfg;
      drv = hooks;
      tx = tx_chan;
      arp = Arp.Cache.create ~my_mac:cfg.mac ~my_ip:cfg.addr ();
      drv_up = true;
    }
  in
  t.ifaces <- t.ifaces @ [ ifc ];
  Component.produce t.comp tx_chan;
  consume ~source:(Src_iface i) t rx_chan;
  hooks.drv_connect ~rx_from_ip:tx_chan ~tx_to_ip:rx_chan;
  grant_pool_to t hooks;
  i

let hooks_of_drv drv =
  {
    drv_connect =
      (fun ~rx_from_ip ~tx_to_ip -> Drv_srv.connect_ip drv ~rx_from_ip ~tx_to_ip);
    drv_grant_rx_pool =
      (fun ~alloc ~write -> Drv_srv.grant_rx_pool drv ~alloc ~write);
    drv_on_ip_crash = (fun () -> Drv_srv.on_ip_crash drv);
    drv_on_ip_restart = (fun () -> Drv_srv.on_ip_restart drv);
  }

let add_iface t cfg ~drv ~tx_chan ~rx_chan =
  add_iface_custom t cfg ~hooks:(hooks_of_drv drv) ~tx_chan ~rx_chan

let connect_pf_sharded t ~steer ~pairs =
  t.pf <-
    Some
      {
        pf_chans = Array.map fst pairs;
        pf_steer = steer;
        pf_up = Array.make (Array.length pairs) true;
      };
  Array.iter
    (fun (to_pf, from_pf) ->
      Component.produce t.comp to_pf;
      consume t from_pf)
    pairs

let connect_pf t ~to_pf ~from_pf =
  connect_pf_sharded t
    ~steer:(fun ~src:_ ~sport:_ ~dst:_ ~dport:_ -> 0)
    ~pairs:[| (to_pf, from_pf) |]

let connect_transport_sharded ?(mine = fun _ -> true) t ~proto ~steer ~pairs =
  let fan = { chans = Array.map snd pairs; steer } in
  (match proto with
  | `Tcp -> t.to_tcp <- Some fan
  | `Udp -> t.to_udp <- Some fan);
  (* A replica consumes only its own shards' request channels ([mine])
     but keeps the full fan-out array: received frames steer by flow
     hash across ALL shards, exactly like the RSS table does. The
     non-[mine] reply channels are therefore shared producer endpoints
     — every replica may deliver into any shard. *)
  Array.iteri
    (fun i (from_transport, to_transport) ->
      Component.produce t.comp ~shared:(not (mine i)) to_transport;
      if mine i then consume ~source:(Src_transport (proto, i)) t from_transport)
    pairs

let connect_transport t ~proto ~from_transport ~to_transport =
  connect_transport_sharded t ~proto
    ~steer:(fun ~src:_ ~sport:_ ~dst:_ ~dport:_ -> 0)
    ~pairs:[| (from_transport, to_transport) |]

let add_route t ~prefix ~bits ~iface ~gateway =
  Ipv4.Route.add t.route_table { Ipv4.Route.prefix; bits; iface; gateway };
  persist_routes t

let add_neighbor t ~iface:i addr mac = Arp.Cache.insert (iface t i).arp addr mac

let arp_lookup t ~iface:i addr = Arp.Cache.lookup (iface t i).arp addr

let clear_routes t = Ipv4.Route.clear t.route_table

let src_addr_for t dst =
  match Ipv4.Route.lookup t.route_table dst with
  | Some route when route.Ipv4.Route.iface < iface_count t ->
      Some (iface t route.Ipv4.Route.iface).cfg.addr
  | Some _ | None -> None

(* {2 Recovery} *)

let resubmit_pf_all t =
  let pendings = List.rev t.resubmit_pf in
  t.resubmit_pf <- [];
  (* Re-steered through [to_filter]: packets whose shard is still down
     simply land back on the hold list. *)
  List.iter
    (fun p -> match p with Pf_out _ | Pf_in _ -> to_filter t p | Drv _ -> ())
    pendings

let repersist t = persist_routes t

let on_pf_crash ?shard t =
  match t.pf with
  | None -> ()
  | Some pf ->
      let fence j =
        pf.pf_up.(j) <- false;
        ignore (Component.Db.abort_peer t.db ~peer:(pf_peer j))
      in
      (match shard with
      | Some j -> fence j
      | None -> Array.iteri (fun j _ -> fence j) pf.pf_up)

let on_pf_restart ?shard t =
  match t.pf with
  | None -> ()
  | Some pf ->
      (match shard with
      | Some j -> pf.pf_up.(j) <- true
      | None -> Array.iteri (fun j _ -> pf.pf_up.(j) <- true) pf.pf_up);
      Proc.exec t.proc ~cost:(costs t).Costs.ip_tx_work (fun () -> resubmit_pf_all t)

let on_drv_crash t ~iface:i =
  (iface t i).drv_up <- false;
  ignore (Component.Db.abort_peer t.db ~peer:(drv_peer i))

let on_drv_restart t ~iface:i =
  (iface t i).drv_up <- true;
  let pendings = List.rev t.resubmit_drv in
  t.resubmit_drv <- [];
  (* "In case of doubt, we prefer to send a few duplicates": every
     unconfirmed packet is resubmitted (Section V-D). *)
  Proc.exec t.proc ~cost:(costs t).Costs.ip_tx_work (fun () ->
      List.iter
        (fun p ->
          match p with
          | Drv { origin; hdr; chain; iface; tso } ->
              if Registry.chain_live t.registry chain then
                transmit_frame t ~iface ~origin ~hdr ~chain ~tso
              else confirm_origin t origin false
          | Pf_out _ | Pf_in _ -> ())
        pendings)

let free_held t ~keep =
  let doomed =
    Hashtbl.fold
      (fun b owner acc -> if not (keep owner) then b :: acc else acc)
      t.held_bufs []
  in
  List.iter
    (fun b ->
      Hashtbl.remove t.held_bufs b;
      free_rx t b)
    doomed

let on_transport_crash t ~proto =
  let tag = match proto with `Tcp -> `Tcp | `Udp -> `Udp in
  free_held t ~keep:(fun (owner, _) -> owner <> tag)

let on_transport_shard_crash t ~proto ~shard =
  (* Only the crashed shard's buffers die; the other shards' flows keep
     their receive buffers — the isolation the scaling story needs. *)
  let tag = match proto with `Tcp -> `Tcp | `Udp -> `Udp in
  free_held t ~keep:(fun (owner, s) -> owner <> tag || s <> shard)
