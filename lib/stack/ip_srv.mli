(** The IP server (with ICMP and ARP, as in the paper's Figure 2).

    IP sits at the T junction of Figure 3: every packet goes IP → PF →
    IP → driver, so IP "must hand off each packet to another component
    three times". It owns two pools: the receive pool the drivers' DMA
    writes into, and a header pool where it builds the combined
    Ethernet+IP(+partial-checksum L4) header chunk for each outgoing
    packet (pools are immutable, so the transport's header chunk is
    copied, not patched — Section V-C).

    Recovery (Table I, Section V-D): the routing configuration and
    interface addresses are saved to the storage server and restored on
    restart; ARP and ICMP are stateless. Requests pending at the packet
    filter are resubmitted on a PF crash (no packet loss — Figure 5);
    packets unconfirmed by a crashed driver are resubmitted when it
    returns (duplicates preferred over losses). A crash of IP itself
    frees the receive pool under the devices, forcing NIC resets.

    Pools, the request database, channel teardown/revival and the
    route-table reload are all expressed through the {!Component}
    lifecycle, so several IP server instances (replicas) are just
    several components running this module's handler. The replication
    extras — {!set_local_queue}, {!set_arp_announce}, {!set_buf_return}
    and the [?mine] filter of {!connect_transport_sharded} — let a
    supervisor run N replicas behind one multi-queue NIC, each owning a
    slice of the queues. *)

type t

type iface_config = {
  addr : Newt_net.Addr.Ipv4.t;
  netmask_bits : int;
  mac : Newt_net.Addr.Mac.t;
}

val create :
  Component.t ->
  registry:Newt_channels.Registry.t ->
  save:(string -> string -> unit) ->
  load:(string -> string option) ->
  unit ->
  t

val comp : t -> Component.t
val proc : t -> Proc.t

(** {1 Wiring} *)

val add_iface : t -> iface_config -> drv:Drv_srv.t -> tx_chan:Msg.t Newt_channels.Sim_chan.t -> rx_chan:Msg.t Newt_channels.Sim_chan.t -> int
(** Register interface [i] served by [drv]; returns the interface
    index. [tx_chan] carries IP→driver messages, [rx_chan]
    driver→IP. Grants the driver the receive-pool capability. *)

(** What IP needs from a driver, abstracted so a multi-queue driver
    ({!Mq_drv_srv}) can serve an interface just like {!Drv_srv}. *)
type driver_hooks = {
  drv_connect :
    rx_from_ip:Msg.t Newt_channels.Sim_chan.t ->
    tx_to_ip:Msg.t Newt_channels.Sim_chan.t ->
    unit;
  drv_grant_rx_pool :
    alloc:(unit -> Newt_channels.Rich_ptr.t option) ->
    write:(Newt_channels.Rich_ptr.t -> Bytes.t -> unit) ->
    unit;
  drv_on_ip_crash : unit -> unit;
  drv_on_ip_restart : unit -> unit;
}

val add_iface_custom :
  t ->
  iface_config ->
  hooks:driver_hooks ->
  tx_chan:Msg.t Newt_channels.Sim_chan.t ->
  rx_chan:Msg.t Newt_channels.Sim_chan.t ->
  int

val connect_pf :
  t ->
  to_pf:Msg.t Newt_channels.Sim_chan.t ->
  from_pf:Msg.t Newt_channels.Sim_chan.t ->
  unit
(** One filter instance (the 1-shard special case of
    {!connect_pf_sharded}). *)

val connect_pf_sharded :
  t ->
  steer:
    (src:Newt_net.Addr.Ipv4.t ->
    sport:int ->
    dst:Newt_net.Addr.Ipv4.t ->
    dport:int ->
    int) ->
  pairs:(Msg.t Newt_channels.Sim_chan.t * Msg.t Newt_channels.Sim_chan.t) array ->
  unit
(** Wire [N] packet-filter shards: [pairs.(j)] is shard [j]'s
    [(to_pf, from_pf)] channel pair. Every packet — both directions —
    is submitted to the shard [steer] picks from the packet's own IP
    header, so the two directions of a flow always meet the same
    conntrack partition; [steer] must be symmetric in the two
    endpoints and must agree with the PF shards' own ownership
    predicate. Replaces any previous filter wiring. *)

val connect_transport :
  t ->
  proto:[ `Tcp | `Udp ] ->
  from_transport:Msg.t Newt_channels.Sim_chan.t ->
  to_transport:Msg.t Newt_channels.Sim_chan.t ->
  unit

val connect_transport_sharded :
  ?mine:(int -> bool) ->
  t ->
  proto:[ `Tcp | `Udp ] ->
  steer:
    (src:Newt_net.Addr.Ipv4.t ->
    sport:int ->
    dst:Newt_net.Addr.Ipv4.t ->
    dport:int ->
    int) ->
  pairs:(Msg.t Newt_channels.Sim_chan.t * Msg.t Newt_channels.Sim_chan.t) array ->
  unit
(** Wire [N] transport shards: [pairs.(i)] is shard [i]'s
    (from_transport, to_transport) channel pair. Received segments are
    fanned out to shard [steer ~src ~sport ~dst ~dport]; [steer] must
    agree with the NIC's RSS steering for the flow→shard affinity
    invariant to hold. Replaces any previous wiring for [proto]
    ({!connect_transport} is the 1-shard special case).

    [?mine] (default: everything) restricts which shards' request
    channels this instance consumes — an IP replica serves only its own
    shards' transmit requests, while the fan-out array stays complete
    so received frames can steer to any shard. *)

val add_route :
  t ->
  prefix:Newt_net.Addr.Ipv4.t ->
  bits:int ->
  iface:int ->
  gateway:Newt_net.Addr.Ipv4.t option ->
  unit
(** Also persists the routing table to the storage server. *)

val add_neighbor : t -> iface:int -> Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Mac.t -> unit
(** Pre-seed an ARP entry (static configuration, or a mapping learned
    from a sibling replica's broadcast — this never re-announces). *)

val arp_lookup : t -> iface:int -> Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Mac.t option
(** Peek at the interface's ARP cache (tests, introspection). *)

(** {1 Replication support} *)

val set_local_queue : t -> int -> unit
(** TX queue for frames this server originates itself (ARP, ICMP
    echo). Default 0; a replica sets one of its own queues so the TX
    confirm comes back to it and not to a sibling. *)

val set_arp_announce :
  t -> (iface:int -> Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Mac.t -> unit) -> unit
(** Fired whenever an ARP mapping is learned from the network — the
    learn-broadcast hook. The supervisor publishes it (e.g. via
    {!Newt_channels.Pubsub}) so sibling replicas' caches converge
    without extra ARP traffic. *)

val set_buf_return : t -> (Newt_channels.Rich_ptr.t -> unit) -> unit
(** Where to hand an [Rx_done] buffer that belongs to another replica's
    receive pool (a transport shard frees to its fixed replica, but the
    frame arrived via whichever replica owns the flow's queue). Without
    it such buffers are dropped on the floor of a stale-pointer free. *)

(** {1 Recovery notifications (called by the reincarnation layer)} *)

val on_pf_crash : ?shard:int -> t -> unit
(** Abort the pending filter requests of PF shard [shard] (default:
    every shard); they are resubmitted when the filter returns. With a
    sharded filter the other shards' traffic keeps flowing — only the
    dead shard's packets are held. *)

val on_pf_restart : ?shard:int -> t -> unit

val on_drv_crash : t -> iface:int -> unit
val on_drv_restart : t -> iface:int -> unit

val on_transport_crash : t -> proto:[ `Tcp | `Udp ] -> unit
(** Reclaim receive buffers the dead transport still held. *)

val on_transport_shard_crash : t -> proto:[ `Tcp | `Udp ] -> shard:int -> unit
(** Like {!on_transport_crash} but for one shard of a sharded
    transport: only that shard's held buffers are reclaimed, the other
    shards' flows are untouched. *)

val release_held : t -> Newt_channels.Rich_ptr.t -> unit
(** Free the receive-pool frame backing [buf] (the target of a
    {!set_buf_return} hand-off on the owning replica). *)

val repersist : t -> unit
(** Save all recoverable state again — required after a crash of the
    storage server itself (Section V-D). *)

(** {1 Introspection} *)

val routes : t -> Newt_net.Ipv4.Route.entry list

val src_addr_for : t -> Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Ipv4.t option
(** Source-address selection for a multihomed host: the address of the
    interface the route to the destination uses. *)

val clear_routes : t -> unit
(** Drop the routing table without touching the persisted copy — used
    by the fault injector to model a restart whose state recovery went
    wrong (the "manually restarting ... solved the problem" cases of
    Section VI-B). *)

val rx_pool_id : t -> int
(** Identifier of this instance's receive pool — lets a multi-replica
    supervisor dispatch a returned buffer to the replica that owns it. *)

val rx_pool_in_use : t -> int
val hdr_pool_in_use : t -> int
val packets_forwarded : t -> int
val icmp_echoes_answered : t -> int
