module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Mq = Newt_nic.Mq_e1000
module Sim_chan = Newt_channels.Sim_chan
module Rich_ptr = Newt_channels.Rich_ptr

(* One IP replica's attachment: its channel, its RX-pool capability,
   and (learned from the first allocation) its pool id, which is how RX
   DMA writes are routed back to the owning replica's pool. *)
type replica = {
  mutable r_tx_to_ip : Msg.t Sim_chan.t option;
  mutable r_alloc : (unit -> Rich_ptr.t option) option;
  mutable r_write : (Rich_ptr.t -> Bytes.t -> unit) option;
  mutable r_pool_id : int;
}

let fresh_replica () =
  { r_tx_to_ip = None; r_alloc = None; r_write = None; r_pool_id = -1 }

type t = {
  comp : Component.t;
  proc : Proc.t;
  nic : Mq.t;
  mutable replicas : replica array;  (* queue q belongs to replica q mod n *)
  mutable tx_accepted : int;
}

let comp t = t.comp
let proc t = t.proc
let nic t = t.nic
let tx_accepted t = t.tx_accepted
let costs t = Machine.costs (Component.machine t.comp)
let replica_count t = Array.length t.replicas
let replica_of_queue t queue = queue mod replica_count t

let ensure_replica t i =
  let n = Array.length t.replicas in
  if i >= n then
    t.replicas <-
      Array.init (i + 1) (fun j ->
          if j < n then t.replicas.(j) else fresh_replica ());
  t.replicas.(i)

(* Keep every RX ring full, each from the pool of the replica owning
   that queue. *)
let replenish_rx t =
  for queue = 0 to Mq.queues t.nic - 1 do
    let r = t.replicas.(replica_of_queue t queue) in
    match (r.r_alloc, r.r_write) with
    | Some alloc, Some _ ->
        let rec fill () =
          if Mq.rx_ring_free t.nic ~queue > 0 then
            match alloc () with
            | Some buf ->
                if r.r_pool_id < 0 then r.r_pool_id <- buf.Rich_ptr.pool;
                if Mq.post_rx t.nic ~queue { Mq.buf; rx_cookie = 0 } then fill ()
            | None -> ()
        in
        fill ()
    | _ -> ()
  done

(* RX DMA dispatch: a completed buffer is written through the write
   capability of whichever replica's pool it came from. *)
let rx_write_dispatch t buf frame =
  Array.iter
    (fun r ->
      if r.r_pool_id = buf.Rich_ptr.pool then
        match r.r_write with Some write -> write buf frame | None -> ())
    t.replicas

(* Split [ids] into confirm-batch messages: per-descriptor work is still
   charged, but the channel message is paid once per batch. *)
let send_confirms t chan ids =
  let batch = (costs t).Costs.confirm_batch in
  let rec go = function
    | [] -> ()
    | ids ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | id :: rest -> take (n - 1) (id :: acc) rest
        in
        let head, rest = take batch [] ids in
        ignore
          (Proc.send t.proc chan (Msg.Drv_tx_confirm_batch { ids = head; ok = true }));
        go rest
  in
  go ids

let handle_irq t reason =
  let c = costs t in
  Proc.exec t.proc ~cost:c.Costs.trap_hot (fun () ->
      match reason with
      | Mq.Tx_done queue ->
          let rec reap acc =
            match Mq.reap_tx t.nic ~queue with
            | None -> List.rev acc
            | Some desc ->
                (* Same per-descriptor completion work as the
                   single-queue driver; only the messaging is batched. *)
                Proc.exec t.proc ~cost:(c.Costs.driver_packet_work / 2) (fun () -> ());
                reap (desc.Mq.tx_cookie :: acc)
          in
          let ids = reap [] in
          Proc.exec t.proc ~cost:0 (fun () ->
              match t.replicas.(replica_of_queue t queue).r_tx_to_ip with
              | Some chan -> send_confirms t chan ids
              | None -> ())
      | Mq.Rx_done queue ->
          let rec reap () =
            match Mq.reap_rx t.nic ~queue with
            | None -> ()
            | Some completion ->
                Proc.exec t.proc ~cost:c.Costs.driver_packet_work (fun () ->
                    match t.replicas.(replica_of_queue t queue).r_tx_to_ip with
                    | Some chan ->
                        let buf =
                          { completion.Mq.rx_buf with Rich_ptr.len = completion.Mq.len }
                        in
                        ignore
                          (Proc.send t.proc chan
                             (Msg.Rx_frame { buf; len = completion.Mq.len }))
                    | None -> ());
                reap ()
          in
          reap ();
          replenish_rx t
      | Mq.Link_change ->
          replenish_rx t;
          for queue = 0 to Mq.queues t.nic - 1 do
            Mq.doorbell_tx t.nic ~queue
          done)

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Drv_tx { id; chain; csum_offload; tso; tso_mss; queue } ->
      ( c.Costs.driver_packet_work,
        fun () ->
          t.tx_accepted <- t.tx_accepted + 1;
          let queue = queue mod Mq.queues t.nic in
          let desc = { Mq.chain; csum_offload; tso; tso_mss; tx_cookie = id } in
          if Mq.post_tx t.nic ~queue desc then Mq.doorbell_tx t.nic ~queue
          else begin
            match t.replicas.(replica_of_queue t queue).r_tx_to_ip with
            | Some chan ->
                ignore (Proc.send t.proc chan (Msg.Drv_tx_confirm { id; ok = false }))
            | None -> ()
          end )
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Filter_verdict _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_deliver _ | Msg.Rx_done _
  | Msg.Sock_req _ | Msg.Sock_reply _ | Msg.Sock_event _ ->
      (0, fun () -> Newt_sim.Stats.incr (Proc.stats t.proc) "invalid_msg")

let create comp ~nic () =
  let t =
    {
      comp;
      proc = Component.proc comp;
      nic;
      replicas = [| fresh_replica () |];
      tx_accepted = 0;
    }
  in
  Mq.set_irq_handler nic (fun reason -> handle_irq t reason);
  Mq.set_rx_writer nic (fun buf frame -> rx_write_dispatch t buf frame);
  Component.on_restart comp ~step:"reset-device" (fun ~fresh:_ ->
      Mq.reset t.nic);
  t

(* {2 Per-replica attachment} *)

let set_replicas t n =
  if n <= 0 then invalid_arg "Mq_drv_srv.set_replicas";
  ignore (ensure_replica t (n - 1))

let connect_ip_replica t ~replica ~rx_from_ip ~tx_to_ip =
  let r = ensure_replica t replica in
  r.r_tx_to_ip <- Some tx_to_ip;
  Component.produce t.comp tx_to_ip;
  Component.consume t.comp rx_from_ip (handle_msg t)

let grant_rx_pool_replica t ~replica ~alloc ~write =
  let r = ensure_replica t replica in
  r.r_alloc <- Some alloc;
  r.r_write <- Some write;
  r.r_pool_id <- -1;
  replenish_rx t

let on_ip_replica_crash t ~replica =
  (* Fence off just this replica's slice of the device: its queues hold
     descriptors into the dead pool, the other queues keep forwarding. *)
  let r = t.replicas.(replica) in
  r.r_alloc <- None;
  r.r_write <- None;
  r.r_pool_id <- -1;
  for queue = 0 to Mq.queues t.nic - 1 do
    if replica_of_queue t queue = replica then
      Mq.mark_queue_unsafe t.nic ~queue
  done

let on_ip_replica_restart t ~replica =
  for queue = 0 to Mq.queues t.nic - 1 do
    if replica_of_queue t queue = replica then Mq.reset_queue t.nic ~queue
  done

(* {2 Singleton-IP attachment (one replica owning every queue)} *)

let connect_ip t ~rx_from_ip ~tx_to_ip =
  connect_ip_replica t ~replica:0 ~rx_from_ip ~tx_to_ip

let grant_rx_pool t ~alloc ~write = grant_rx_pool_replica t ~replica:0 ~alloc ~write

let on_ip_crash t =
  let r = t.replicas.(0) in
  r.r_alloc <- None;
  r.r_write <- None;
  r.r_pool_id <- -1;
  Mq.mark_unsafe t.nic

let on_ip_restart t = Mq.reset t.nic
