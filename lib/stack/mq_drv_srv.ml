module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Mq = Newt_nic.Mq_e1000
module Sim_chan = Newt_channels.Sim_chan
module Rich_ptr = Newt_channels.Rich_ptr

type t = {
  machine : Machine.t;
  proc : Proc.t;
  nic : Mq.t;
  mutable tx_to_ip : Msg.t Sim_chan.t option;
  mutable rx_alloc : (unit -> Rich_ptr.t option) option;
  mutable rx_write : (Rich_ptr.t -> Bytes.t -> unit) option;
  mutable consumed : Msg.t Sim_chan.t list;
  mutable tx_accepted : int;
}

let proc t = t.proc
let nic t = t.nic
let tx_accepted t = t.tx_accepted
let costs t = Machine.costs t.machine

(* Keep every RX ring full from the one pool IP granted. *)
let replenish_rx t =
  match (t.rx_alloc, t.rx_write) with
  | Some alloc, Some _ ->
      for queue = 0 to Mq.queues t.nic - 1 do
        let rec fill () =
          if Mq.rx_ring_free t.nic ~queue > 0 then
            match alloc () with
            | Some buf ->
                if Mq.post_rx t.nic ~queue { Mq.buf; rx_cookie = 0 } then fill ()
            | None -> ()
        in
        fill ()
      done
  | _ -> ()

(* Split [ids] into confirm-batch messages: per-descriptor work is still
   charged, but the channel message is paid once per batch. *)
let send_confirms t ids =
  match t.tx_to_ip with
  | None -> ()
  | Some chan ->
      let batch = (costs t).Costs.confirm_batch in
      let rec go = function
        | [] -> ()
        | ids ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | id :: rest -> take (n - 1) (id :: acc) rest
            in
            let head, rest = take batch [] ids in
            ignore
              (Proc.send t.proc chan (Msg.Drv_tx_confirm_batch { ids = head; ok = true }));
            go rest
      in
      go ids

let handle_irq t reason =
  let c = costs t in
  Proc.exec t.proc ~cost:c.Costs.trap_hot (fun () ->
      match reason with
      | Mq.Tx_done queue ->
          let rec reap acc =
            match Mq.reap_tx t.nic ~queue with
            | None -> List.rev acc
            | Some desc ->
                (* Same per-descriptor completion work as the
                   single-queue driver; only the messaging is batched. *)
                Proc.exec t.proc ~cost:(c.Costs.driver_packet_work / 2) (fun () -> ());
                reap (desc.Mq.tx_cookie :: acc)
          in
          let ids = reap [] in
          Proc.exec t.proc ~cost:0 (fun () -> send_confirms t ids)
      | Mq.Rx_done queue ->
          let rec reap () =
            match Mq.reap_rx t.nic ~queue with
            | None -> ()
            | Some completion ->
                Proc.exec t.proc ~cost:c.Costs.driver_packet_work (fun () ->
                    match t.tx_to_ip with
                    | Some chan ->
                        let buf =
                          { completion.Mq.rx_buf with Rich_ptr.len = completion.Mq.len }
                        in
                        ignore
                          (Proc.send t.proc chan
                             (Msg.Rx_frame { buf; len = completion.Mq.len }))
                    | None -> ());
                reap ()
          in
          reap ();
          replenish_rx t
      | Mq.Link_change ->
          replenish_rx t;
          for queue = 0 to Mq.queues t.nic - 1 do
            Mq.doorbell_tx t.nic ~queue
          done)

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Drv_tx { id; chain; csum_offload; tso; tso_mss; queue } ->
      ( c.Costs.driver_packet_work,
        fun () ->
          t.tx_accepted <- t.tx_accepted + 1;
          let queue = queue mod Mq.queues t.nic in
          let desc = { Mq.chain; csum_offload; tso; tso_mss; tx_cookie = id } in
          if Mq.post_tx t.nic ~queue desc then Mq.doorbell_tx t.nic ~queue
          else begin
            match t.tx_to_ip with
            | Some chan ->
                ignore (Proc.send t.proc chan (Msg.Drv_tx_confirm { id; ok = false }))
            | None -> ()
          end )
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Filter_verdict _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_deliver _ | Msg.Rx_done _
  | Msg.Sock_req _ | Msg.Sock_reply _ | Msg.Sock_event _ ->
      (0, fun () -> Newt_sim.Stats.incr (Proc.stats t.proc) "invalid_msg")

let create machine ~proc ~nic () =
  let t =
    {
      machine;
      proc;
      nic;
      tx_to_ip = None;
      rx_alloc = None;
      rx_write = None;
      consumed = [];
      tx_accepted = 0;
    }
  in
  Mq.set_irq_handler nic (fun reason -> handle_irq t reason);
  t

let connect_ip t ~rx_from_ip ~tx_to_ip =
  t.tx_to_ip <- Some tx_to_ip;
  if not (List.memq rx_from_ip t.consumed) then
    t.consumed <- rx_from_ip :: t.consumed;
  Proc.add_rx t.proc rx_from_ip (handle_msg t)

let grant_rx_pool t ~alloc ~write =
  t.rx_alloc <- Some alloc;
  t.rx_write <- Some write;
  Mq.set_rx_writer t.nic (fun buf frame -> write buf frame);
  replenish_rx t

let on_ip_crash t =
  t.rx_alloc <- None;
  t.rx_write <- None;
  Mq.mark_unsafe t.nic

let on_ip_restart t = Mq.reset t.nic
let crash_cleanup t = List.iter Sim_chan.tear_down t.consumed

let restart t =
  List.iter Sim_chan.revive t.consumed;
  Mq.reset t.nic
