(** The multi-queue network driver server.

    One process serving every queue of a {!Newt_nic.Mq_e1000} device —
    the paper keeps a single driver even when the protocol servers are
    replicated, because "filling descriptors and updating tail pointers"
    is cheap enough that one core drives the wire.

    Two differences from {!Drv_srv}:

    - it honours the [queue] field of {!Msg.Drv_tx}, posting each frame
      on the TX ring the sending shard's flows hash to, and replenishes
      every RX ring from the one pool IP granted;
    - it coalesces TX completions into {!Msg.Drv_tx_confirm_batch}
      messages of up to {!Newt_hw.Costs.t.confirm_batch} ids, amortizing
      the per-message channel cost IP pays — without this, IP's
      completion handling alone would eat the headroom the shards are
      supposed to fill. *)

type t

val create :
  Newt_hw.Machine.t ->
  proc:Proc.t ->
  nic:Newt_nic.Mq_e1000.t ->
  unit ->
  t

val proc : t -> Proc.t
val nic : t -> Newt_nic.Mq_e1000.t

val connect_ip :
  t ->
  rx_from_ip:Msg.t Newt_channels.Sim_chan.t ->
  tx_to_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val grant_rx_pool :
  t ->
  alloc:(unit -> Newt_channels.Rich_ptr.t option) ->
  write:(Newt_channels.Rich_ptr.t -> Bytes.t -> unit) ->
  unit

val on_ip_crash : t -> unit
val on_ip_restart : t -> unit
val crash_cleanup : t -> unit
val restart : t -> unit

val tx_accepted : t -> int
