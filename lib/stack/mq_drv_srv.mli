(** The multi-queue network driver server.

    One process serving every queue of a {!Newt_nic.Mq_e1000} device —
    the paper keeps a single driver even when the protocol servers are
    replicated, because "filling descriptors and updating tail pointers"
    is cheap enough that one core drives the wire.

    Differences from {!Drv_srv}:

    - it honours the [queue] field of {!Msg.Drv_tx}, posting each frame
      on the TX ring the sending shard's flows hash to, and replenishes
      every RX ring;
    - it coalesces TX completions into {!Msg.Drv_tx_confirm_batch}
      messages of up to {!Newt_hw.Costs.t.confirm_batch} ids, amortizing
      the per-message channel cost IP pays — without this, IP's
      completion handling alone would eat the headroom the shards are
      supposed to fill;
    - it can fan RX completions out to N replicated IP servers: queue
      [q] belongs to replica [q mod n], each replica grants its own RX
      pool for its queues, and a replica crash fences off only that
      replica's queues ({!Newt_nic.Mq_e1000.mark_queue_unsafe}) so the
      other shards never notice. *)

type t

val create : Component.t -> nic:Newt_nic.Mq_e1000.t -> unit -> t

val comp : t -> Component.t
val proc : t -> Proc.t
val nic : t -> Newt_nic.Mq_e1000.t

(** {1 Replicated-IP attachment}

    Queue [q] of the device is owned by IP replica [q mod n] where [n]
    is the highest replica index attached plus one; connect replicas
    densely from index 0. Call {!set_replicas} {e before} the first
    pool grant: the queue→owner map depends on [n], and a grant made
    while the map is smaller fills foreign queues' rings from the wrong
    pool. *)

val set_replicas : t -> int -> unit
(** Declare how many IP replicas will attach. *)

val connect_ip_replica :
  t ->
  replica:int ->
  rx_from_ip:Msg.t Newt_channels.Sim_chan.t ->
  tx_to_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val grant_rx_pool_replica :
  t ->
  replica:int ->
  alloc:(unit -> Newt_channels.Rich_ptr.t option) ->
  write:(Newt_channels.Rich_ptr.t -> Bytes.t -> unit) ->
  unit

val on_ip_replica_crash : t -> replica:int -> unit
(** Fence DMA off for the dead replica's queues only; other queues keep
    forwarding (this is what makes a replica crash lose only its
    shard's datagrams). *)

val on_ip_replica_restart : t -> replica:int -> unit
(** Reprogram the replica's queues without a link bounce; the replica
    re-grants its pool right after, which re-arms RX. *)

(** {1 Singleton-IP attachment}

    The PR-1 wiring: one IP server owning every queue. [on_ip_crash]
    marks the whole device unsafe and [on_ip_restart] performs the full
    link-bouncing reset, as the real adapter would. *)

val connect_ip :
  t ->
  rx_from_ip:Msg.t Newt_channels.Sim_chan.t ->
  tx_to_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val grant_rx_pool :
  t ->
  alloc:(unit -> Newt_channels.Rich_ptr.t option) ->
  write:(Newt_channels.Rich_ptr.t -> Bytes.t -> unit) ->
  unit

val on_ip_crash : t -> unit
val on_ip_restart : t -> unit

val tx_accepted : t -> int
