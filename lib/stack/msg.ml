type socket_id = int

type sock_call =
  | Call_socket
  | Call_bind of { port : int }
  | Call_listen of { backlog : int }
  | Call_connect of { dst : Newt_net.Addr.Ipv4.t; dst_port : int }
  | Call_send of { data : Bytes.t }
  | Call_recv of { max : int; timeout : int }
  | Call_accept of { new_sock : socket_id }
  | Call_sendto of { data : Bytes.t; dst : Newt_net.Addr.Ipv4.t; dst_port : int }
  | Call_recvfrom of { max : int; timeout : int }
  | Call_shutdown
  | Call_select of { watch : socket_id list; timeout : int }
  | Call_close

type sock_result =
  | Ok_socket of socket_id
  | Ok_unit
  | Ok_sent of int
  | Ok_data of Bytes.t
  | Ok_data_from of {
      data : Bytes.t;
      src : Newt_net.Addr.Ipv4.t;
      src_port : int;
    }
  | Ok_eof
  | Ok_ready of socket_id list
  | Ok_accepted of socket_id
  | Err of string

type t =
  | Tx_ip of {
      id : int;
      chain : Newt_channels.Rich_ptr.chain;
      src : Newt_net.Addr.Ipv4.t;
      dst : Newt_net.Addr.Ipv4.t;
      proto : Newt_net.Ipv4.protocol;
      tso : bool;
    }
  | Tx_ip_confirm of { id : int; ok : bool }
  | Filter_req of { id : int; dir : [ `In | `Out ]; pkt : Bytes.t }
  | Filter_verdict of { id : int; pass : bool }
  | Drv_tx of {
      id : int;
      chain : Newt_channels.Rich_ptr.chain;
      csum_offload : bool;
      tso : bool;
      tso_mss : int;
      queue : int;
    }
  | Drv_tx_confirm of { id : int; ok : bool }
  | Drv_tx_confirm_batch of { ids : int list; ok : bool }
  | Rx_frame of { buf : Newt_channels.Rich_ptr.t; len : int }
  | Rx_deliver of {
      buf : Newt_channels.Rich_ptr.t;
      src : Newt_net.Addr.Ipv4.t;
      dst : Newt_net.Addr.Ipv4.t;
    }
  | Rx_done of { buf : Newt_channels.Rich_ptr.t }
  | Sock_req of { id : int; sock : socket_id; call : sock_call }
  | Sock_reply of { id : int; result : sock_result }
  | Sock_event of { sock : socket_id; event : [ `Readable | `Writable | `Closed ] }

let ptrs = function
  | Tx_ip { chain; _ } | Drv_tx { chain; _ } -> chain
  | Rx_frame { buf; _ } | Rx_deliver { buf; _ } | Rx_done { buf } -> [ buf ]
  | Tx_ip_confirm _ | Filter_req _ | Filter_verdict _ | Drv_tx_confirm _
  | Drv_tx_confirm_batch _ | Sock_req _ | Sock_reply _ | Sock_event _ ->
      []

let protocol = function
  | Tx_ip { id; _ } | Filter_req { id; _ } | Drv_tx { id; _ } -> `Req id
  | Tx_ip_confirm { id; _ } | Filter_verdict { id; _ } | Drv_tx_confirm { id; _ }
    ->
      `Conf [ id ]
  | Drv_tx_confirm_batch { ids; _ } -> `Conf ids
  (* Sock_req/Sock_reply ids come from the SYSCALL server's own
     counter, not the request database (a different namespace that
     would alias), and a blocking call may stay pending indefinitely
     by design — the request/confirm contract does not govern them. *)
  | Rx_frame _ | Rx_deliver _ | Rx_done _
  | Sock_req _ | Sock_reply _ | Sock_event _ ->
      `Other

let describe = function
  | Tx_ip _ -> "tx_ip"
  | Tx_ip_confirm _ -> "tx_ip_confirm"
  | Filter_req _ -> "filter_req"
  | Filter_verdict _ -> "filter_verdict"
  | Drv_tx _ -> "drv_tx"
  | Drv_tx_confirm _ -> "drv_tx_confirm"
  | Drv_tx_confirm_batch _ -> "drv_tx_confirm_batch"
  | Rx_frame _ -> "rx_frame"
  | Rx_deliver _ -> "rx_deliver"
  | Rx_done _ -> "rx_done"
  | Sock_req _ -> "sock_req"
  | Sock_reply _ -> "sock_reply"
  | Sock_event _ -> "sock_event"
