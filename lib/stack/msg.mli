(** The request vocabulary of the multiserver networking stack.

    Every fast-path channel between two servers carries values of
    {!t}: marshalled requests "not unlike a remote procedure call"
    (Section IV). Identifiers come from each sender's request database;
    replies quote them. Bulk data never rides in a message — only
    rich-pointer chains into shared pools. *)

type socket_id = int

(** System calls the SYSCALL server forwards to transport servers. *)
type sock_call =
  | Call_socket  (** Create a socket. *)
  | Call_bind of { port : int }
  | Call_listen of { backlog : int }
      (** [backlog] caps the listener's accept queue: a connection
          completing the handshake while the queue is full is refused
          (RST) and counted, never queued without bound. *)
  | Call_connect of { dst : Newt_net.Addr.Ipv4.t; dst_port : int }
  | Call_send of { data : Bytes.t }
      (** Data the application placed in the socket's shared buffer;
          carried here as bytes for simulation simplicity, costed as a
          zero-copy handoff. *)
  | Call_recv of { max : int; timeout : int }
      (** [timeout] in cycles; 0 means block forever (SO_RCVTIMEO). *)
  | Call_accept of { new_sock : socket_id }
      (** The SYSCALL server pre-allocates the accepted connection's
          socket id. *)
  | Call_sendto of { data : Bytes.t; dst : Newt_net.Addr.Ipv4.t; dst_port : int }
      (** Unconnected datagram send. *)
  | Call_recvfrom of { max : int; timeout : int }
      (** Datagram receive reporting the source address. *)
  | Call_shutdown
      (** Half-close: send FIN after the queued data drains, keep
          receiving (POSIX shutdown(SHUT_WR)). *)
  | Call_select of { watch : socket_id list; timeout : int }
      (** Wait until any watched socket of this transport is readable.
          The paper's NewtOS still ran select through the unconverted
          synchronous code ("has not been modified yet to use the
          asynchronous channels we propose", Section VI-B) — this is
          the asynchronous version its future work calls for. *)
  | Call_close

type sock_result =
  | Ok_socket of socket_id
  | Ok_unit
  | Ok_sent of int
  | Ok_data of Bytes.t
  | Ok_data_from of {
      data : Bytes.t;
      src : Newt_net.Addr.Ipv4.t;
      src_port : int;
    }
  | Ok_eof
  | Ok_ready of socket_id list  (** Readable sockets, for select. *)
  | Ok_accepted of socket_id
  | Err of string

(** One message on a fast-path channel. *)
type t =
  (* Transport -> IP (downward data path). *)
  | Tx_ip of {
      id : int;  (** Sender's request-database id. *)
      chain : Newt_channels.Rich_ptr.chain;
          (** L4 header chunk + payload chunks; no IP header yet. *)
      src : Newt_net.Addr.Ipv4.t;
      dst : Newt_net.Addr.Ipv4.t;
      proto : Newt_net.Ipv4.protocol;
      tso : bool;  (** Oversized segment: ask the NIC to split. *)
    }
  (* IP -> transport: the packet left the machine (or was dropped). *)
  | Tx_ip_confirm of { id : int; ok : bool }
  (* IP -> PF and back. *)
  | Filter_req of {
      id : int;
      dir : [ `In | `Out ];
      pkt : Bytes.t;  (** The IP packet header + enough L4 bytes. *)
    }
  | Filter_verdict of { id : int; pass : bool }
  (* IP -> driver and back. *)
  | Drv_tx of {
      id : int;
      chain : Newt_channels.Rich_ptr.chain;  (** Full Ethernet frame. *)
      csum_offload : bool;
      tso : bool;
      tso_mss : int;
      queue : int;
          (** TX queue hint for multi-queue devices (shard affinity);
              single-queue drivers ignore it. *)
    }
  | Drv_tx_confirm of { id : int; ok : bool }
  | Drv_tx_confirm_batch of { ids : int list; ok : bool }
      (** Several completions coalesced into one message — the driver
          amortizes the per-message channel cost over
          {!Newt_hw.Costs.t.confirm_batch} completions. *)
  (* Driver -> IP: a received frame, in the IP server's receive pool. *)
  | Rx_frame of { buf : Newt_channels.Rich_ptr.t; len : int }
  (* IP -> transport: a received L4 payload (still in the rx pool). *)
  | Rx_deliver of {
      buf : Newt_channels.Rich_ptr.t;  (** The L4 bytes. *)
      src : Newt_net.Addr.Ipv4.t;
      dst : Newt_net.Addr.Ipv4.t;
    }
  (* Transport -> IP: done with an rx buffer, free it. *)
  | Rx_done of { buf : Newt_channels.Rich_ptr.t }
  (* SYSCALL server <-> transport servers. *)
  | Sock_req of { id : int; sock : socket_id; call : sock_call }
  | Sock_reply of { id : int; result : sock_result }
  (* Transport -> SYSCALL: unsolicited events (accepted conn, data). *)
  | Sock_event of { sock : socket_id; event : [ `Readable | `Writable | `Closed ] }

val describe : t -> string
(** Short tag for traces. *)

val protocol : t -> [ `Req of int | `Conf of int list | `Other ]
(** Classify a message for the dynamic protocol checker: [`Req id] if
    it carries a request-database id that expects a confirm, [`Conf
    ids] if it confirms request(s) (batched confirms quote several),
    [`Other] for traffic the request/confirm contract does not govern
    — one-way messages (received frames, buffer returns, unsolicited
    events) and the SYSCALL call/reply pair, whose ids come from the
    SYSCALL server's own counter (a separate namespace) and whose
    blocking calls may stay open indefinitely by design. *)

val ptrs : t -> Newt_channels.Rich_ptr.t list
(** Every rich pointer the message hands across the channel (chain
    chunks and single buffers) — what the ownership sanitizer tracks as
    in-flight while the message is queued. *)
