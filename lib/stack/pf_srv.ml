module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Pf_engine = Newt_pf.Pf_engine
module Rule = Newt_pf.Rule
module Conntrack = Newt_pf.Conntrack
module Stats = Newt_sim.Stats
module Time = Newt_sim.Time
module Engine = Newt_sim.Engine

type t = {
  comp : Component.t;
  proc : Proc.t;
  save : string -> string -> unit;
  load : string -> string option;
  engine : Pf_engine.t;
  owns : Conntrack.flow -> bool;
  mutable tcp_source : unit -> Conntrack.flow list;
  mutable udp_source : unit -> Conntrack.flow list;
  mutable verdicts : int;
  mutable blocked : int;
  mutable expired : int;
}

let now t = Newt_sim.Exec.now (Machine.exec (Component.machine t.comp))

let comp t = t.comp
let proc t = t.proc
let engine_of t = t.engine
let verdicts_issued t = t.verdicts
let blocked t = t.blocked
let conntrack_expired t = t.expired
let rule_count t = List.length (Pf_engine.rules t.engine)

let evicted_half_open t =
  Conntrack.evicted_half_open (Pf_engine.conntrack t.engine)

let evicted_established t =
  Conntrack.evicted_established (Pf_engine.conntrack t.engine)

(* Verdicts go back on the channel paired with the one the request
   arrived on, so several IP replicas can share one filter. *)
let handle_msg t ~reply_to msg =
  let c = Machine.costs (Component.machine t.comp) in
  match msg with
  | Msg.Filter_req { id; dir; pkt } -> (
      match Pf_engine.classify ~dir pkt with
      | None ->
          ( c.Costs.pf_base,
            fun () ->
              t.verdicts <- t.verdicts + 1;
              t.blocked <- t.blocked + 1;
              ignore (Proc.send t.proc reply_to (Msg.Filter_verdict { id; pass = false }))
          )
      | Some key ->
          let verdict = Pf_engine.filter t.engine ~now:(now t) key in
          let cost =
            c.Costs.pf_base
            + (verdict.Pf_engine.rules_walked * c.Costs.pf_rule_cost)
            + c.Costs.channel_marshal + c.Costs.channel_enqueue
          in
          ( cost,
            fun () ->
              t.verdicts <- t.verdicts + 1;
              let pass = verdict.Pf_engine.action = Rule.Pass in
              if not pass then t.blocked <- t.blocked + 1;
              ignore (Proc.send t.proc reply_to (Msg.Filter_verdict { id; pass })) ))
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_verdict _ | Msg.Drv_tx _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_deliver _ | Msg.Rx_done _
  | Msg.Sock_req _ | Msg.Sock_reply _ | Msg.Sock_event _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

let persist_conntrack t =
  t.save "conntrack" (Marshal.to_string (Pf_engine.export_states t.engine) [])

(* Sweep often enough that entries die within ~a quarter TTL of their
   deadline, but never busier than 4 Hz. *)
let sweep_period engine =
  max (Time.of_seconds 0.25) (Pf_engine.ttl engine / 4)

(* The periodic idle-timeout sweep, run from the server's own event
   loop. [Proc.after] chains are incarnation-guarded, so the chain
   dies with a crash; the restart hook re-arms it. Each sweep also
   snapshots the table (with last-seen times) to the storage server,
   so a restart does not resurrect idle entries as freshly-seen. *)
let rec arm_sweep t =
  Proc.after t.proc (sweep_period t.engine) ~cost:200 (fun () ->
      t.expired <- t.expired + Pf_engine.sweep t.engine ~now:(now t);
      persist_conntrack t;
      arm_sweep t)

let create comp ~save ~load ?max_entries ?(owns = fun _ -> true) () =
  let t =
    {
      comp;
      proc = Component.proc comp;
      save;
      load;
      engine = Pf_engine.create ?max_entries ();
      owns;
      tcp_source = (fun () -> []);
      udp_source = (fun () -> []);
      verdicts = 0;
      blocked = 0;
      expired = 0;
    }
  in
  (* The engine's state is what dies in a crash; rules come back from
     storage, live connections by querying the transport servers
     (Section V-D: "the filter can recover this dynamic state, for
     instance, by querying the TCP and UDP servers"). *)
  Component.on_crash comp (fun () ->
      Pf_engine.set_rules t.engine [];
      Conntrack.clear (Pf_engine.conntrack t.engine));
  Component.on_restart comp ~step:"restore-state" (fun ~fresh:_ ->
      let rules =
        match t.load "rules" with
        | Some blob -> (Marshal.from_string blob 0 : Rule.t list)
        | None -> [ Rule.pass_all ]
      in
      (* The snapshot carries last-seen times, so entries come back as
         close to expiry as they were; flows the transports still hold
         but the snapshot missed are (re)tracked as of now. *)
      let snapshot =
        match t.load "conntrack" with
        | Some blob ->
            (Marshal.from_string blob 0 : (Conntrack.flow * int * bool) list)
        | None -> []
      in
      (* A sharded filter restores only the partition it owns — both
         from the snapshot and from the transport servers' live tables
         — so a foreign shard's flows are never re-tracked here. *)
      Pf_engine.restore t.engine ~rules
        ~states:(List.filter (fun (f, _, _) -> t.owns f) snapshot);
      let ct = Pf_engine.conntrack t.engine in
      (* Transport servers only hold live connections, so re-tracked
         flows are established by definition. *)
      List.iter
        (fun f ->
          if t.owns f && not (Conntrack.mem ct f) then
            Conntrack.insert ct ~now:(now t) ~confirmed:true f)
        (t.tcp_source () @ t.udp_source ());
      arm_sweep t);
  arm_sweep t;
  t

let connect_ip t ~from_ip ~to_ip =
  Component.produce t.comp to_ip;
  Component.consume t.comp from_ip (handle_msg t ~reply_to:to_ip)

let set_rules t rules =
  Pf_engine.set_rules t.engine rules;
  t.save "rules" (Marshal.to_string rules [])

let set_conntrack_sources t ~tcp ~udp =
  t.tcp_source <- tcp;
  t.udp_source <- udp

let repersist t =
  t.save "rules" (Marshal.to_string (Pf_engine.rules t.engine) []);
  persist_conntrack t
