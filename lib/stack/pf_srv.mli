(** The packet-filter server.

    Sits on the T junction of Figure 3: the IP server submits every
    packet (both directions) and must receive a verdict before passing
    it on — which is exactly why a PF crash loses no packets: IP knows
    which requests went unanswered and resubmits them (Section V-D,
    Figure 5).

    State and recovery (Table I): the ruleset is static configuration,
    saved to the storage server whenever set; the connection-tracking
    table is dynamic but recoverable — from the periodic snapshot
    (which preserves each entry's last-seen time, so a restart does
    not resurrect idle entries as freshly-seen) plus a query of the
    TCP and UDP servers for flows the snapshot missed. Both recoveries
    are installed as {!Component} lifecycle hooks at [create], which
    also arms the periodic conntrack idle-timeout sweep (re-armed
    after every restart; the sweep chain dies with a crash).

    Verdicts are sent back on the channel paired with the request's
    arrival channel, so replicated IP servers can share one filter —
    call {!connect_ip} once per replica. *)

type t

val create :
  Component.t ->
  save:(string -> string -> unit) ->
  load:(string -> string option) ->
  ?max_entries:int ->
  ?owns:(Newt_pf.Conntrack.flow -> bool) ->
  unit ->
  t
(** [max_entries] caps this instance's conntrack table (a sharded
    deployment gives each of N shards [total/N]). [owns] (default:
    everything) is the shard's partition predicate: recovery restores
    only owned flows — from the snapshot and from the transport
    servers alike — so a PF-shard crash re-tracks exactly its own
    slice and never resurrects a sibling's entries. *)

val comp : t -> Component.t
val proc : t -> Proc.t
val engine_of : t -> Newt_pf.Pf_engine.t

val connect_ip :
  t ->
  from_ip:Msg.t Newt_channels.Sim_chan.t ->
  to_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val set_rules : t -> Newt_pf.Rule.t list -> unit
(** Install (and persist) a configuration. *)

val rule_count : t -> int

val set_conntrack_sources :
  t ->
  tcp:(unit -> Newt_pf.Conntrack.flow list) ->
  udp:(unit -> Newt_pf.Conntrack.flow list) ->
  unit
(** Where a restarted filter recovers flows its snapshot missed. *)

val repersist : t -> unit
(** Save the ruleset and the conntrack snapshot again (after a
    storage-server crash). *)

val verdicts_issued : t -> int
val blocked : t -> int

val conntrack_expired : t -> int
(** Conntrack entries dropped by the idle-timeout sweep so far (this
    incarnation). *)

val evicted_half_open : t -> int
(** Capacity evictions that took an unconfirmed (half-open) entry. *)

val evicted_established : t -> int
(** Capacity evictions forced onto an established entry — nonzero only
    when the table filled with confirmed flows. *)
