module Engine = Newt_sim.Engine
module Exec = Newt_sim.Exec
module Time = Newt_sim.Time
module Stats = Newt_sim.Stats
module Trace = Newt_sim.Trace
module Cpu = Newt_hw.Cpu
module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Hook = Newt_channels.Hook

type handler = Msg.t -> Time.cycles * (unit -> unit)

type t = {
  machine : Machine.t;
  name : string;
  pid : int;
  mutable core : Cpu.t;
  stats : Stats.t;
  trace : Trace.t option;
  mutable rx : (Msg.t Sim_chan.t * handler ref) list;  (* oldest first *)
  mutable alive : bool;
  mutable hung : bool;
  mutable updating : bool;
  mutable draining : bool;
  mutable incarnation : int;
  mutable version : int;
  mutable on_crash : unit -> unit;
  mutable on_restart : fresh:bool -> unit;
  wake_posted : bool Atomic.t;
      (* Native mode: a wake has been posted to the owning domain and
         not yet consumed — dedupes producer-side doorbells. *)
}

let next_pid = ref 100

let create machine ~name ~core ?trace () =
  let pid = !next_pid in
  incr next_pid;
  {
    machine;
    name;
    pid;
    core;
    stats = Stats.create ();
    trace;
    rx = [];
    alive = true;
    hung = false;
    updating = false;
    draining = false;
    incarnation = 0;
    version = 1;
    on_crash = (fun () -> ());
    on_restart = (fun ~fresh:_ -> ());
    wake_posted = Atomic.make false;
  }

let name t = t.name
let pid t = t.pid
let core t = t.core
let stats t = t.stats
let incarnation t = t.incarnation
let alive t = t.alive
let responsive t = t.alive && not t.hung

let record t msg =
  match t.trace with
  | Some tr ->
      Trace.record tr
        ~at:(Exec.now (Machine.exec t.machine))
        ~subsystem:t.name msg
  | None -> ()

(* The verification hooks mutate listener-chain globals and are only
   installed by the single-threaded simulator harnesses; skip the
   bracketing entirely when no listener is registered so native domains
   never touch the shared state. *)
let with_actor ~epoch name k =
  if Hook.enabled () then Hook.with_actor ~epoch name k else k ()

(* All work a server runs is bracketed with its identity, so pool and
   channel operations it performs are attributed to it by the
   sanitizer hook. *)
let guard t k =
  let inc = t.incarnation in
  fun () ->
    if t.alive && (not t.hung) && t.incarnation = inc then
      with_actor ~epoch:inc t.name k

let exec t ~cost k =
  if t.alive && not t.hung then Cpu.exec t.core ~proc:t.pid ~cost (guard t k)

let after t delay ~cost k =
  let inc = t.incarnation in
  let (_cancel : unit -> unit) =
    Exec.schedule (Machine.exec t.machine) ~core:(Cpu.id t.core) delay
      (fun () ->
        if t.alive && (not t.hung) && t.incarnation = inc then
          Cpu.exec t.core ~proc:t.pid ~cost (guard t k))
  in
  ()

let emit_transfers chan msg mk =
  if Hook.enabled () then
    List.iter
      (fun ptr -> Hook.emit (mk ~chan:(Sim_chan.id chan) ~ptr))
      (Msg.ptrs msg)

(* Mirror the request/confirm content of a message onto the hook
   stream so the dynamic protocol checker can pair hand-offs with
   deliveries per request id. *)
let emit_protocol chan msg way =
  if Hook.enabled () then
    match Msg.protocol msg with
    | `Req id -> Hook.emit (Hook.Msg_req { chan = Sim_chan.id chan; id; way })
    | `Conf ids ->
        List.iter
          (fun id ->
            Hook.emit (Hook.Msg_conf { chan = Sim_chan.id chan; id; way }))
          ids
    | `Other -> ()

(* Per-message receive overhead: dequeue, demultiplex/validate, and the
   cross-core cache-line stall. *)
let recv_cost c =
  c.Costs.channel_dequeue + c.Costs.channel_demux + c.Costs.cacheline_transfer

let rec drain t =
  if t.alive && (not t.hung) && not t.updating then begin
    (* Round-robin: find the first channel with a message, rotate it to
       the back so no channel starves. *)
    let rec find seen = function
      | [] ->
          t.rx <- List.rev seen;
          None
      | ((chan, handler) as entry) :: rest -> (
          match Sim_chan.recv chan with
          | Some msg ->
              t.rx <- List.rev_append seen rest @ [ entry ];
              Some (chan, msg, !handler)
          | None -> find (entry :: seen) rest)
    in
    match find [] t.rx with
    | None -> t.draining <- false
    | Some (chan, msg, handler) ->
        Stats.incr t.stats ("rx." ^ Msg.describe msg);
        if Hook.enabled () then
          Hook.with_actor ~epoch:t.incarnation t.name (fun () ->
              emit_transfers chan msg (fun ~chan ~ptr ->
                  Hook.Chan_receive { chan; ptr });
              emit_protocol chan msg `Received);
        let costs = Machine.costs t.machine in
        let work_cost, effect =
          with_actor ~epoch:t.incarnation t.name (fun () -> handler msg)
        in
        Cpu.exec t.core ~proc:t.pid
          ~cost:(recv_cost costs + work_cost)
          (let inc = t.incarnation in
           fun () ->
             if t.alive && (not t.hung) && t.incarnation = inc then begin
               with_actor ~epoch:inc t.name effect;
               drain t
             end)
  end
  else t.draining <- false

let wake t =
  if t.alive && (not t.hung) && (not t.updating) && not t.draining then begin
    t.draining <- true;
    drain t
  end

(* Producer-side doorbell: under native execution the channel's notify
   hook fires on the *sender's* domain, so instead of draining there we
   post a deduplicated wake to the domain that owns this server's core.
   Clearing [wake_posted] before draining keeps the classic
   check-then-sleep race closed: a push that lands mid-drain posts a
   fresh wake. *)
let notify t =
  let exec = Machine.exec t.machine in
  if Exec.is_native exec then begin
    if not (Atomic.exchange t.wake_posted true) then
      Exec.post exec ~core:(Cpu.id t.core) (fun () ->
          Atomic.set t.wake_posted false;
          wake t)
  end
  else wake t

let add_rx t chan handler =
  (match List.assq_opt chan t.rx with
  | Some href -> href := handler
  | None ->
      t.rx <- t.rx @ [ (chan, ref handler) ];
      Sim_chan.set_notify chan (fun () -> notify t));
  if not (Sim_chan.is_empty chan) then notify t

(* The handoff is announced before [Sim_chan.send]: enqueueing can wake
   the consumer synchronously, so its [Chan_receive] events would
   otherwise precede our [Chan_handoff] and confuse in-flight
   accounting.  A refused send retracts the announcement with
   [Chan_dropped]. *)
(* Native-ablation hook: extra per-send work modelling a design the
   cost model also ablates (a kernel trap per message, a payload copy
   per hop). Set once before the domains spawn; None in every simulated
   run. *)
let send_overhead : (unit -> unit) option ref = ref None
let set_send_overhead f = send_overhead := f

let send t chan msg =
  (match !send_overhead with Some f -> f () | None -> ());
  Stats.incr t.stats ("tx." ^ Msg.describe msg);
  emit_transfers chan msg (fun ~chan ~ptr -> Hook.Chan_handoff { chan; ptr });
  emit_protocol chan msg `Sent;
  let ok = Sim_chan.send chan msg in
  if not ok then begin
    Stats.incr t.stats "tx.dropped";
    emit_transfers chan msg (fun ~chan ~ptr -> Hook.Chan_dropped { chan; ptr });
    emit_protocol chan msg `Dropped
  end;
  ok

let set_on_crash t f = t.on_crash <- f
let set_on_restart t f = t.on_restart <- f

let crash t =
  if t.alive then begin
    record t "CRASH";
    t.alive <- false;
    t.hung <- false;
    t.updating <- false;
    t.draining <- false;
    with_actor ~epoch:t.incarnation t.name t.on_crash
  end

let hang t =
  if t.alive then begin
    record t "HANG";
    t.hung <- true;
    t.draining <- false
  end

let restart t =
  record t "RESTART";
  t.incarnation <- t.incarnation + 1;
  t.alive <- true;
  t.hung <- false;
  t.updating <- false;
  t.draining <- false;
  with_actor ~epoch:t.incarnation t.name (fun () ->
      t.on_restart ~fresh:false);
  wake t

let start_fresh t =
  with_actor ~epoch:t.incarnation t.name (fun () -> t.on_restart ~fresh:true);
  wake t

(* A restart procedure gone wrong can revive the server on another
   component's core (Section VI-B territory); the continuous checker is
   what should notice. *)
let migrate t core = t.core <- core

let begin_update t = t.updating <- true

let finish_update t =
  t.updating <- false;
  t.version <- t.version + 1;
  wake t

let version t = t.version
let updating t = t.updating
