(** The server runtime: a single-threaded, event-driven OS component
    pinned to a core.

    A server owns a set of receive channels. When a message arrives
    while the server is idle, the channel's notify hook (the
    MONITOR/MWAIT write) wakes it; the server then drains its channels
    round-robin, one message at a time, paying the modelled cycle costs
    on its core for each. Servers never block on each other — the
    asynchronous style of Section III-B.

    Crash/hang/restart support matches the reincarnation protocol: a
    {e crashed} server stops processing and loses its incarnation's
    queued work (continuations are guarded by the incarnation number); a
    {e hung} server stays alive but stops draining, which heartbeats
    eventually notice. A restart bumps the incarnation and runs the
    component's recovery hook. *)

type t

type handler = Msg.t -> Newt_sim.Time.cycles * (unit -> unit)
(** Per-message work: (processing cost on the server's core, effect to
    run when the cost has been paid). The runtime separately charges the
    per-message dequeue/demux/cache-stall costs. *)

val create :
  Newt_hw.Machine.t ->
  name:string ->
  core:Newt_hw.Cpu.t ->
  ?trace:Newt_sim.Trace.t ->
  unit ->
  t

val name : t -> string
val pid : t -> int
(** Unique process id (also used as the request-database peer key). *)

val core : t -> Newt_hw.Cpu.t
val stats : t -> Newt_sim.Stats.t
val incarnation : t -> int

val migrate : t -> Newt_hw.Cpu.t -> unit
(** Move the server onto another core. Legitimate restarts never do
    this — it models a broken recovery procedure reviving a component
    on the wrong core, which the continuous verifier's core-affinity
    check must catch. *)

val add_rx : t -> Msg.t Newt_channels.Sim_chan.t -> handler -> unit
(** Start consuming a channel. The handler may be replaced by calling
    [add_rx] again for the same channel. *)

val send : t -> Msg.t Newt_channels.Sim_chan.t -> Msg.t -> bool
(** Non-blocking enqueue (the ~30-cycle fast path; the caller's handler
    cost should include {!Costs}' marshalling figure). [false] = full or
    torn down; the caller picks its drop/queue policy. *)

val exec : t -> cost:Newt_sim.Time.cycles -> (unit -> unit) -> unit
(** Run work on the server's core, guarded by liveness+incarnation. *)

val after : t -> Newt_sim.Time.cycles -> cost:Newt_sim.Time.cycles -> (unit -> unit) -> unit
(** Timer: like {!exec} after a delay. The continuation is dropped if
    the server crashed or restarted in between. *)

val wake : t -> unit
(** Force a drain pass (used after restarts). *)

val set_send_overhead : (unit -> unit) option -> unit
(** Process-wide extra work charged on every {!send} — the native
    cross-validation harness uses it to re-create the cost model's
    channel ablations (kernel trap per message, copy per hop) on real
    domains. Set before spawning domains; [None] (the default) in all
    simulated runs. *)

(** {1 Failure injection and recovery} *)

val alive : t -> bool
val responsive : t -> bool
(** Alive and not hung — what a heartbeat probe observes. *)

val crash : t -> unit
(** Stop everything; queued continuations die with the incarnation. *)

(** {2 Live update (Section V)}

    A graceful replacement is very different from a crash: the
    component announces the update, quiesces, saves its state, and the
    new version {e inherits the old version's address space, so the
    channels remain established}. Messages arriving during the swap
    simply queue; nothing is aborted or resubmitted. *)

val begin_update : t -> unit
(** Quiesce: stop draining channels. The server still answers
    heartbeats (the reincarnation server knows about the update). *)

val finish_update : t -> unit
(** The new version takes over: bump the code version, resume draining
    whatever queued during the swap. State and incarnation are
    preserved — the update is invisible to neighbours. *)

val version : t -> int
(** Code version, bumped by each live update. *)

val updating : t -> bool

val hang : t -> unit
(** Keep the process alive but stop it from making progress. *)

val set_on_crash : t -> (unit -> unit) -> unit
(** Hook run at crash time (tear down exported channels, mark devices
    unsafe) — the moment the rest of the world can observe. *)

val set_on_restart : t -> (fresh:bool -> unit) -> unit
(** Recovery procedure. [fresh] is false when restarting after a crash
    (the server should try to recover state from the storage server,
    Section V-D). *)

val restart : t -> unit
(** Bump the incarnation, mark alive, run the restart hook. *)

val start_fresh : t -> unit
(** First boot: run the restart hook with [fresh:true]. *)
