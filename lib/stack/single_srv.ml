module Engine = Newt_sim.Engine
module Stats = Newt_sim.Stats
module Rng = Newt_sim.Rng
module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Rich_ptr = Newt_channels.Rich_ptr
module Registry = Newt_channels.Registry
module Request_db = Newt_channels.Request_db
module Addr = Newt_net.Addr
module Arp = Newt_net.Arp
module Ethernet = Newt_net.Ethernet
module Ipv4 = Newt_net.Ipv4
module Tcp = Newt_net.Tcp
module Tcp_wire = Newt_net.Tcp_wire

type pending_op =
  | P_none
  | P_connect of { req : int }
  | P_recv of { req : int; max : int }
  | P_send of { req : int; data : Bytes.t; mutable off : int }

type socket = {
  sock_id : Msg.socket_id;
  mutable pcb : Tcp.pcb option;
  mutable op : pending_op;
  mutable dead : bool;
}

type iface = {
  addr : Addr.Ipv4.t;
  mac : Addr.Mac.t;
  drv : Drv_srv.t;
  tx : Msg.t Sim_chan.t;
  arp : Arp.Cache.t;
}

type t = {
  machine : Machine.t;
  proc : Proc.t;
  registry : Registry.t;
  local_addr : Addr.Ipv4.t;
  pool : Pool.t;  (* whole frames, built in place *)
  rx_pool : Pool.t;
  mutable ifaces : iface list;
  route_table : Ipv4.Route.table;
  db : Rich_ptr.chain Request_db.t;  (* in-flight frames at the drivers *)
  mutable tcp : Tcp.t;
  mutable to_sc : Msg.t Sim_chan.t option;
  sockets : (Msg.socket_id, socket) Hashtbl.t;
  mutable ident : int;
  rng : Rng.t;
}

let proc t = t.proc
let engine t = t.tcp
let costs t = Machine.costs t.machine
let iface t i = List.nth t.ifaces i

let free_chain t chain =
  List.iter (fun p -> try Pool.free t.pool p with Pool.Stale_pointer _ -> ()) chain

(* {2 Transmit: function calls down to the frame, one channel hop} *)

let transmit_frame t ~iface:i frame_bytes ~tso =
  match Pool.alloc t.pool ~len:(Bytes.length frame_bytes) with
  | exception Pool.Pool_exhausted -> Stats.incr (Proc.stats t.proc) "pool_exhausted"
  | ptr ->
      Pool.write t.pool ptr ~src:frame_bytes ~src_off:0;
      let id =
        Request_db.submit t.db ~peer:i ~payload:[ ptr ] ~abort:(fun _ chain ->
            free_chain t chain)
      in
      let sent =
        Proc.send t.proc (iface t i).tx
          (Msg.Drv_tx
             { id; chain = [ ptr ]; csum_offload = true; tso; tso_mss = 1460; queue = 0 })
      in
      if not sent then begin
        ignore (Request_db.complete t.db id);
        free_chain t [ ptr ]
      end

let emit t ~src ~dst (hdr : Tcp_wire.header) ~payload =
  let c = costs t in
  let cost =
    (* TCP work plus the in-process IP layer; the headers are patched
       into the same buffer, no cross-pool copy. *)
    c.Costs.tcp_segment_work + c.Costs.ip_tx_work + c.Costs.channel_marshal
    + c.Costs.channel_enqueue
  in
  Proc.exec t.proc ~cost (fun () ->
      match Ipv4.Route.lookup t.route_table dst with
      | None -> ()
      | Some route -> (
          let i = route.Ipv4.Route.iface in
          let ifc = iface t i in
          let next_hop =
            match route.Ipv4.Route.gateway with Some g -> g | None -> dst
          in
          let continue mac =
            let seg = Tcp_wire.encode ~src ~dst ~partial_csum:true hdr ~payload in
            t.ident <- (t.ident + 1) land 0xffff;
            let pkt =
              Ipv4.packet
                {
                  Ipv4.src = src;
                  dst;
                  protocol = Ipv4.Tcp;
                  ttl = 64;
                  ident = t.ident;
                  total_len = 0;
                }
                ~payload:seg
            in
            let frame =
              Ethernet.frame
                { Ethernet.dst = mac; src = ifc.mac; ethertype = Ethernet.Ipv4 }
                ~payload:pkt
            in
            transmit_frame t ~iface:i frame ~tso:(Bytes.length payload > 1460)
          in
          match
            Arp.Cache.resolve ifc.arp next_hop ~on_ready:(fun mac ->
                Proc.exec t.proc ~cost:(costs t).Costs.ip_tx_work (fun () ->
                    continue mac))
          with
          | `Hit mac -> continue mac
          | `Wait ->
              let req = Arp.Cache.request_for ifc.arp next_hop in
              let frame = Bytes.create (14 + Arp.packet_size) in
              Ethernet.encode_header
                { Ethernet.dst = Addr.Mac.broadcast; src = ifc.mac; ethertype = Ethernet.Arp }
                frame ~off:0;
              Bytes.blit (Arp.encode req) 0 frame 14 Arp.packet_size;
              transmit_frame t ~iface:i frame ~tso:false
          | `Dropped -> ()))

let make_tcp ?config t =
  Tcp.create ?config
    {
      Tcp.now = (fun () -> Engine.now (Machine.engine t.machine));
      set_timer =
        (fun delay f ->
          let h =
            Engine.schedule (Machine.engine t.machine) delay (fun () ->
                Proc.exec t.proc ~cost:200 f)
          in
          fun () -> Engine.cancel h);
      emit = (fun ~src ~dst hdr ~payload -> emit t ~src ~dst hdr ~payload);
      random = (fun bound -> Rng.int t.rng bound);
    }

(* Source-address selection: the address of the interface the route to
   the destination uses. *)
let src_for t dst =
  match Ipv4.Route.lookup t.route_table dst with
  | Some route when route.Ipv4.Route.iface < List.length t.ifaces ->
      (iface t route.Ipv4.Route.iface).addr
  | Some _ | None -> t.local_addr

(* {2 Socket calls (TCP only — the single-server measurement runs
   iperf, Table II line 4)} *)

let sock t id =
  match Hashtbl.find_opt t.sockets id with
  | Some s -> s
  | None ->
      let s = { sock_id = id; pcb = None; op = P_none; dead = false } in
      Hashtbl.add t.sockets id s;
      s

let reply t req result =
  match t.to_sc with
  | Some chan -> ignore (Proc.send t.proc chan (Msg.Sock_reply { id = req; result }))
  | None -> ()

let progress t s =
  match s.op with
  | P_none -> ()
  | P_connect { req } -> (
      match s.pcb with
      | Some pcb when Tcp.state pcb = Tcp.Established ->
          s.op <- P_none;
          reply t req Msg.Ok_unit
      | Some _ -> ()
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "connection failed"))
  | P_recv { req; max } -> (
      match s.pcb with
      | Some pcb ->
          if Tcp.recv_available pcb > 0 then begin
            s.op <- P_none;
            reply t req (Msg.Ok_data (Tcp.recv pcb ~max))
          end
          else if Tcp.recv_eof pcb then begin
            s.op <- P_none;
            reply t req Msg.Ok_eof
          end
          else if s.dead then begin
            s.op <- P_none;
            reply t req (Msg.Err "connection reset")
          end
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "not connected"))
  | P_send ({ req; data; _ } as ps) -> (
      match s.pcb with
      | Some pcb ->
          let remaining = Bytes.length data - ps.off in
          if remaining > 0 then
            ps.off <- ps.off + Tcp.send pcb (Bytes.sub data ps.off remaining);
          if ps.off >= Bytes.length data then begin
            s.op <- P_none;
            reply t req (Msg.Ok_sent ps.off)
          end
          else if s.dead then begin
            s.op <- P_none;
            reply t req (Msg.Err "connection reset")
          end
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "not connected"))

let attach_handler t s pcb =
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected | Tcp.Readable | Tcp.Writable -> progress t s
      | Tcp.Accepted -> ()
      | Tcp.Closed_normally | Tcp.Reset ->
          s.dead <- true;
          progress t s)

let handle_call t s req (call : Msg.sock_call) =
  match call with
  | Msg.Call_socket -> reply t req (Msg.Ok_socket s.sock_id)
  | Msg.Call_connect { dst; dst_port } ->
      let pcb = Tcp.connect t.tcp ~src:(src_for t dst) ~dst ~dst_port () in
      s.pcb <- Some pcb;
      s.op <- P_connect { req };
      attach_handler t s pcb;
      progress t s
  | Msg.Call_send { data } ->
      s.op <- P_send { req; data; off = 0 };
      progress t s
  | Msg.Call_recv { max; timeout = _ } ->
      s.op <- P_recv { req; max };
      progress t s
  | Msg.Call_close ->
      (match s.pcb with Some pcb -> Tcp.close pcb | None -> ());
      s.dead <- true;
      reply t req Msg.Ok_unit
  | Msg.Call_bind _ | Msg.Call_listen _ | Msg.Call_accept _ | Msg.Call_sendto _
  | Msg.Call_recvfrom _ | Msg.Call_select _ | Msg.Call_shutdown ->
      reply t req (Msg.Err "not supported by the single-server harness")

(* {2 Receive} *)

let handle_rx t ~iface:i ~buf ~len =
  (match Pool.read t.rx_pool { buf with Rich_ptr.len } with
  | exception Pool.Stale_pointer _ -> ()
  | frame -> (
      match (Ethernet.decode_header frame ~off:0, Ethernet.payload frame) with
      | Some { Ethernet.ethertype = Ethernet.Arp; _ }, Some arp_bytes -> (
          let ifc = iface t i in
          match Arp.decode arp_bytes with
          | Some p -> (
              match Arp.Cache.input ifc.arp p with
              | Some arp_reply ->
                  let f = Bytes.create (14 + Arp.packet_size) in
                  Ethernet.encode_header
                    { Ethernet.dst = p.Arp.sender_mac; src = ifc.mac; ethertype = Ethernet.Arp }
                    f ~off:0;
                  Bytes.blit (Arp.encode arp_reply) 0 f 14 Arp.packet_size;
                  transmit_frame t ~iface:i f ~tso:false
              | None -> ())
          | None -> ())
      | Some { Ethernet.ethertype = Ethernet.Ipv4; _ }, Some pkt -> (
          match Ipv4.payload pkt with
          | Some (ih, l4) -> (
              match ih.Ipv4.protocol with
              | Ipv4.Tcp -> (
                  match Tcp_wire.decode ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst l4 with
                  | Some (hdr, payload) ->
                      Tcp.input t.tcp ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst hdr ~payload
                  | None -> ())
              | Ipv4.Udp | Ipv4.Icmp | Ipv4.Unknown _ -> ())
          | None -> ())
      | (Some _ | None), _ -> ()));
  (* In-process: free the receive buffer directly, no Rx_done hop. *)
  try Pool.free t.rx_pool buf with Pool.Stale_pointer _ -> ()

let handle_msg t ~rx_iface msg =
  let c = costs t in
  match msg with
  | Msg.Sock_req { id; sock = sock_id; call } ->
      (c.Costs.channel_demux, fun () -> handle_call t (sock t sock_id) id call)
  | Msg.Drv_tx_confirm { id; ok = _ } -> (
      (* Completions free in a tight scan: a fraction of the
         cross-domain demux cost. *)
      ( c.Costs.channel_demux / c.Costs.confirm_batch,
        fun () ->
          match Request_db.complete t.db id with
          | Some chain -> free_chain t chain
          | None -> () ))
  | Msg.Rx_frame { buf; len } ->
      ( c.Costs.ip_rx_work + c.Costs.tcp_ack_work,
        fun () -> handle_rx t ~iface:rx_iface ~buf ~len )
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Filter_verdict _
  | Msg.Drv_tx _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_deliver _
  | Msg.Rx_done _ | Msg.Sock_reply _
  | Msg.Sock_event _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

(* {2 Construction} *)

let create machine ~proc ~registry ~local_addr ?tcp_config () =
  let pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:8192 ~slot_size:2048 in
  let rx_pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:4096 ~slot_size:2048 in
  Registry.register registry pool;
  Registry.register registry rx_pool;
  let t =
    {
      machine;
      proc;
      registry;
      local_addr;
      pool;
      rx_pool;
      ifaces = [];
      route_table = Ipv4.Route.create ();
      db = Request_db.create ();
      tcp =
        Tcp.create
          {
            Tcp.now = (fun () -> 0);
            set_timer = (fun _ _ () -> ());
            emit = (fun ~src:_ ~dst:_ _ ~payload:_ -> ());
            random = (fun _ -> 0);
          };
      to_sc = None;
      sockets = Hashtbl.create 32;
      ident = 0;
      rng = Rng.split (Engine.rng (Machine.engine machine));
    }
  in
  t.tcp <- make_tcp ?config:tcp_config t;
  t

let add_iface t ~addr ~mac ~drv ~tx_chan ~rx_chan =
  let i = List.length t.ifaces in
  t.ifaces <-
    t.ifaces @ [ { addr; mac; drv; tx = tx_chan; arp = Arp.Cache.create ~my_mac:mac ~my_ip:addr () } ];
  Proc.add_rx t.proc rx_chan (handle_msg t ~rx_iface:i);
  Drv_srv.connect_ip drv ~rx_from_ip:tx_chan ~tx_to_ip:rx_chan;
  Drv_srv.grant_rx_pool drv
    ~alloc:(fun () ->
      match Pool.alloc t.rx_pool ~len:(Pool.slot_size t.rx_pool) with
      | ptr -> Some ptr
      | exception Pool.Pool_exhausted -> None)
    ~write:(fun ptr frame ->
      let narrowed = { ptr with Rich_ptr.len = Bytes.length frame } in
      try Pool.write t.rx_pool narrowed ~src:frame ~src_off:0
      with Pool.Stale_pointer _ -> ());
  i

let add_route t ~prefix ~bits ~iface ~gateway =
  Ipv4.Route.add t.route_table { Ipv4.Route.prefix; bits; iface; gateway }

let add_neighbor t ~iface:i addr mac = Arp.Cache.insert (iface t i).arp addr mac

let connect_sc t ~from_sc ~to_sc =
  t.to_sc <- Some to_sc;
  Proc.add_rx t.proc from_sc (handle_msg t ~rx_iface:0)
