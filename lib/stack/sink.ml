module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Rng = Newt_sim.Rng
module Link = Newt_nic.Link
module Addr = Newt_net.Addr
module Ethernet = Newt_net.Ethernet
module Arp = Newt_net.Arp
module Ipv4 = Newt_net.Ipv4
module Icmp = Newt_net.Icmp
module Udp = Newt_net.Udp
module Tcp = Newt_net.Tcp
module Tcp_wire = Newt_net.Tcp_wire

(* The sink's only contact with the outside world: a clock, a timer, a
   frame transmitter and a random stream. The simulator builds one from
   its engine and a {!Link}; the native runtime builds one from
   wall-clock time and an SPSC wire ring. *)
type io = {
  io_now : unit -> Time.cycles;
  io_timer : Time.cycles -> (unit -> unit) -> unit -> unit;
  io_emit : Bytes.t -> unit;
  io_random : int -> int;
}

type t = {
  io : io;
  addr : Addr.Ipv4.t;
  mac : Addr.Mac.t;
  arp : Arp.Cache.t;
  mutable tcp : Tcp.t;
  udp_services :
    (int, src:Addr.Ipv4.t -> src_port:int -> Bytes.t -> Bytes.t option) Hashtbl.t;
  mutable ident : int;
  mutable tcp_bytes : int;
  mutable frames : int;
  mutable csum_failures : int;
  mutable next_ping : int;
  pings : (int, int * (rtt:Time.cycles -> unit)) Hashtbl.t;
      (* seq -> (sent-at, callback) *)
}

let addr t = t.addr
let tcp t = t.tcp
let tcp_bytes_received t = t.tcp_bytes
let frames_received t = t.frames
let checksum_failures t = t.csum_failures

let send_frame t ~dst_mac ~payload ~ethertype =
  let frame =
    Ethernet.frame { Ethernet.dst = dst_mac; src = t.mac; ethertype } ~payload
  in
  t.io.io_emit frame

let send_ip ?src t ~dst ~proto ~payload =
  let src = Option.value src ~default:t.addr in
  t.ident <- (t.ident + 1) land 0xffff;
  let pkt =
    Ipv4.packet
      { Ipv4.src; dst; protocol = proto; ttl = 64; ident = t.ident; total_len = 0 }
      ~payload
  in
  match Arp.Cache.lookup t.arp dst with
  | Some mac -> send_frame t ~dst_mac:mac ~payload:pkt ~ethertype:Ethernet.Ipv4
  | None -> (
      (* Resolve first; retry when the reply comes. *)
      match
        Arp.Cache.resolve t.arp dst ~on_ready:(fun mac ->
            send_frame t ~dst_mac:mac ~payload:pkt ~ethertype:Ethernet.Ipv4)
      with
      | `Hit mac -> send_frame t ~dst_mac:mac ~payload:pkt ~ethertype:Ethernet.Ipv4
      | `Wait ->
          send_frame t ~dst_mac:Addr.Mac.broadcast
            ~payload:(Arp.encode (Arp.Cache.request_for t.arp dst))
            ~ethertype:Ethernet.Arp
      | `Dropped -> ())

let make_tcp t tcp_config =
  Tcp.create ~config:tcp_config
    {
      Tcp.now = t.io.io_now;
      set_timer = (fun delay f -> t.io.io_timer delay f);
      emit =
        (fun ~src:_ ~dst hdr ~payload ->
          let seg = Tcp_wire.encode ~src:t.addr ~dst hdr ~payload in
          send_ip t ~dst ~proto:Ipv4.Tcp ~payload:seg);
      random = t.io.io_random;
    }

let handle_ipv4 t pkt =
  match Ipv4.payload pkt with
  | None -> t.csum_failures <- t.csum_failures + 1
  | Some (ih, l4) -> (
      if Addr.Ipv4.equal ih.Ipv4.dst t.addr then
        match ih.Ipv4.protocol with
        | Ipv4.Tcp -> (
            match Tcp_wire.decode ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst l4 with
            | Some (hdr, payload) ->
                Tcp.input t.tcp ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst hdr ~payload
            | None -> t.csum_failures <- t.csum_failures + 1)
        | Ipv4.Udp -> (
            match Udp.decode ~src:ih.Ipv4.src ~dst:ih.Ipv4.dst l4 with
            | Some (uh, payload) -> (
                match Hashtbl.find_opt t.udp_services uh.Udp.dst_port with
                | Some service -> (
                    match
                      service ~src:ih.Ipv4.src ~src_port:uh.Udp.src_port payload
                    with
                    | Some response ->
                        let dg =
                          Udp.encode ~src:t.addr ~dst:ih.Ipv4.src
                            { Udp.src_port = uh.Udp.dst_port; dst_port = uh.Udp.src_port }
                            ~payload:response
                        in
                        send_ip t ~dst:ih.Ipv4.src ~proto:Ipv4.Udp ~payload:dg
                    | None -> ())
                | None -> ())
            | None -> t.csum_failures <- t.csum_failures + 1)
        | Ipv4.Icmp -> (
            match Icmp.decode l4 with
            | Some msg -> (
                match msg with
                | Icmp.Echo_reply { seq; _ } -> (
                    match Hashtbl.find_opt t.pings seq with
                    | Some (sent_at, k) ->
                        Hashtbl.remove t.pings seq;
                        k ~rtt:(t.io.io_now () - sent_at)
                    | None -> ())
                | Icmp.Echo_request _ | Icmp.Dest_unreachable _ -> (
                    match Icmp.reply_to msg with
                    | Some reply ->
                        send_ip t ~dst:ih.Ipv4.src ~proto:Ipv4.Icmp
                          ~payload:(Icmp.encode reply)
                    | None -> ()))
            | None -> t.csum_failures <- t.csum_failures + 1)
        | Ipv4.Unknown _ -> ())

let handle_frame t frame =
  t.frames <- t.frames + 1;
  match Ethernet.decode_header frame ~off:0 with
  | None -> ()
  | Some eh -> (
      match (eh.Ethernet.ethertype, Ethernet.payload frame) with
      | Ethernet.Arp, Some payload -> (
          match Arp.decode payload with
          | Some arp_pkt -> (
              match Arp.Cache.input t.arp arp_pkt with
              | Some reply ->
                  send_frame t ~dst_mac:arp_pkt.Arp.sender_mac
                    ~payload:(Arp.encode reply) ~ethertype:Ethernet.Arp
              | None -> ())
          | None -> ())
      | Ethernet.Ipv4, Some payload -> handle_ipv4 t payload
      | (Ethernet.Unknown _ | Ethernet.Arp | Ethernet.Ipv4), _ -> ())

let create_io io ~addr ~mac ?tcp_config () =
  let tcp_config =
    match tcp_config with
    | Some c -> c
    | None -> { Tcp.default_config with Tcp.snd_buf = 512 * 1024; rcv_buf = 512 * 1024 }
  in
  let t =
    {
      io;
      addr;
      mac;
      arp = Arp.Cache.create ~my_mac:mac ~my_ip:addr ();
      tcp = Tcp.create { Tcp.now = (fun () -> 0); set_timer = (fun _ _ () -> ()); emit = (fun ~src:_ ~dst:_ _ ~payload:_ -> ()); random = (fun _ -> 0) };
      udp_services = Hashtbl.create 8;
      next_ping = 0;
      pings = Hashtbl.create 8;
      ident = 0;
      tcp_bytes = 0;
      frames = 0;
      csum_failures = 0;
    }
  in
  t.tcp <- make_tcp t tcp_config;
  t

let create engine ~link ~side ~addr ~mac ?tcp_config () =
  let rng = Rng.split (Engine.rng engine) in
  let io =
    {
      io_now = (fun () -> Engine.now engine);
      io_timer =
        (fun delay f ->
          let h = Engine.schedule engine delay f in
          fun () -> Engine.cancel h);
      io_emit = (fun frame -> ignore (Link.transmit link ~from:side frame));
      io_random = (fun bound -> Rng.int rng bound);
    }
  in
  let t = create_io io ~addr ~mac ?tcp_config () in
  Link.attach link side (fun frame -> handle_frame t frame);
  t

let sink_tcp t ~port ~on_bytes =
  Tcp.listen t.tcp ~port ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              let data = Tcp.recv pcb ~max:10_000_000 in
              let n = Bytes.length data in
              if n > 0 then begin
                t.tcp_bytes <- t.tcp_bytes + n;
                on_bytes ~at:(t.io.io_now ()) n
              end;
              if Tcp.recv_eof pcb then Tcp.close pcb
          | Tcp.Connected | Tcp.Accepted | Tcp.Writable | Tcp.Closed_normally
          | Tcp.Reset ->
              ()))

let serve_udp_full t ~port service = Hashtbl.replace t.udp_services port service

let serve_udp t ~port service =
  serve_udp_full t ~port (fun ~src:_ ~src_port:_ payload -> service payload)

let send_udp t ~dst ~dst_port ~src_port payload =
  let dg = Udp.encode ~src:t.addr ~dst { Udp.src_port; dst_port } ~payload in
  send_ip t ~dst ~proto:Ipv4.Udp ~payload:dg

let serve_dns t ?(port = 53) ~zone () =
  serve_udp t ~port (fun payload ->
      match Newt_net.Dns.decode payload with
      | Some q when not q.Newt_net.Dns.is_response ->
          let addr =
            match q.Newt_net.Dns.questions with
            | { Newt_net.Dns.qname; _ } :: _ -> zone qname
            | [] -> None
          in
          Some (Newt_net.Dns.encode (Newt_net.Dns.response ~query:q addr))
      | Some _ | None -> None)

let serve_tcp_echo t ~port =
  Tcp.listen t.tcp ~port ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              let data = Tcp.recv pcb ~max:1_000_000 in
              if Bytes.length data > 0 then ignore (Tcp.send pcb data);
              if Tcp.recv_eof pcb then Tcp.close pcb
          | Tcp.Connected | Tcp.Accepted | Tcp.Writable | Tcp.Closed_normally
          | Tcp.Reset ->
              ()))

let connect t ~dst ~dst_port = Tcp.connect t.tcp ~src:t.addr ~dst ~dst_port ()

(* A bare SYN from a (usually spoofed) source: the attack primitive of
   the flood scenarios. No pcb is created on this side — the victim's
   SYN-ACK goes to an address that never answers ARP, so its handshake
   stays half-open until its retries exhaust. *)
let send_tcp_syn t ~src ~src_port ~dst ~dst_port =
  let hdr =
    {
      Tcp_wire.src_port;
      dst_port;
      seq = t.io.io_random 0x3FFFFFFF;
      ack = 0;
      flags = Tcp_wire.flag_syn;
      window = 65535;
      mss = Some 1460;
      wscale = None;
    }
  in
  let seg = Tcp_wire.encode ~src ~dst hdr ~payload:Bytes.empty in
  send_ip ~src t ~dst ~proto:Ipv4.Tcp ~payload:seg

let ping t ~dst k =
  t.next_ping <- t.next_ping + 1;
  let seq = t.next_ping land 0xffff in
  Hashtbl.replace t.pings seq (t.io.io_now (), k);
  send_ip t ~dst ~proto:Ipv4.Icmp
    ~payload:
      (Icmp.encode (Icmp.Echo_request { ident = 1; seq; data = Bytes.create 56 }))
