(** An ideal remote host: the far end of each wire.

    Plays the role of the paper's Linux iperf/DNS peers: a full protocol
    endpoint (ARP, ICMP echo, TCP with real checksum validation, UDP
    responders) that costs no simulated CPU — we are measuring the
    NewtOS host, not the peer. Every frame is parsed from real bytes,
    so anything the NewtOS stack or its NIC offload engines get wrong
    (bad checksums, broken TSO splits, duplicated sequence ranges)
    shows up here. *)

type t

type io = {
  io_now : unit -> Newt_sim.Time.cycles;
  io_timer : Newt_sim.Time.cycles -> (unit -> unit) -> unit -> unit;
  io_emit : Bytes.t -> unit;
  io_random : int -> int;
}
(** The sink's contact with the world: clock, cancellable timer, frame
    transmitter, random stream. *)

val create_io :
  io ->
  addr:Newt_net.Addr.Ipv4.t ->
  mac:Newt_net.Addr.Mac.t ->
  ?tcp_config:Newt_net.Tcp.config ->
  unit ->
  t
(** A sink over an arbitrary [io] backend — the native runtime's peer
    host, fed by {!handle_frame}. *)

val handle_frame : t -> Bytes.t -> unit
(** Process one raw Ethernet frame (the RX path of {!create_io};
    {!create} wires this to the link automatically). *)

val create :
  Newt_sim.Engine.t ->
  link:Newt_nic.Link.t ->
  side:Newt_nic.Link.side ->
  addr:Newt_net.Addr.Ipv4.t ->
  mac:Newt_net.Addr.Mac.t ->
  ?tcp_config:Newt_net.Tcp.config ->
  unit ->
  t

val addr : t -> Newt_net.Addr.Ipv4.t
val tcp : t -> Newt_net.Tcp.t

val sink_tcp :
  t -> port:int -> on_bytes:(at:Newt_sim.Time.cycles -> int -> unit) -> unit
(** Accept TCP connections on [port] and drain them, reporting every
    chunk of received payload (the receiver-side bitrate probe used for
    Figures 4 and 5). *)

val serve_udp : t -> port:int -> (Bytes.t -> Bytes.t option) -> unit
(** Answer UDP datagrams on [port] with the function's response (the
    DNS-like responder of the fault-injection campaign). *)

val serve_udp_full :
  t ->
  port:int ->
  (src:Newt_net.Addr.Ipv4.t -> src_port:int -> Bytes.t -> Bytes.t option) ->
  unit
(** Like {!serve_udp} but the handler also sees the sender. *)

val send_udp :
  t -> dst:Newt_net.Addr.Ipv4.t -> dst_port:int -> src_port:int -> Bytes.t -> unit
(** Send an unsolicited datagram from the sink. *)

val serve_dns :
  t -> ?port:int -> zone:(string -> Newt_net.Addr.Ipv4.t option) -> unit -> unit
(** A DNS server on [port] (default 53): answers A queries from [zone]
    with real RFC 1035 messages (NXDomain when the zone has no entry). *)

val serve_tcp_echo : t -> port:int -> unit
(** Accept TCP connections on [port] and echo everything back — the
    SSH-like interactive server of the campaign. *)

val connect :
  t -> dst:Newt_net.Addr.Ipv4.t -> dst_port:int -> Newt_net.Tcp.pcb
(** Open a TCP connection from the sink towards the NewtOS host (used
    to test inbound reachability after crashes). *)

val send_tcp_syn :
  t ->
  src:Newt_net.Addr.Ipv4.t ->
  src_port:int ->
  dst:Newt_net.Addr.Ipv4.t ->
  dst_port:int ->
  unit
(** Inject a single SYN claiming to come from [src] — the SYN-flood
    primitive. No connection state is kept on this side: when [src] is
    spoofed (unroutable), the victim's SYN-ACK dies in ARP resolution
    and its half-open handshake lingers until the retries exhaust. *)

val ping :
  t ->
  dst:Newt_net.Addr.Ipv4.t ->
  (rtt:Newt_sim.Time.cycles -> unit) ->
  unit
(** Send an ICMP echo request; the callback fires with the round-trip
    time when the reply arrives (used to measure the stack's latency,
    e.g. the MWAIT wake-up ablation). *)

val tcp_bytes_received : t -> int
val frames_received : t -> int
val checksum_failures : t -> int
(** TCP/UDP/IP checksum validation failures observed — should stay 0
    on a healthy stack. *)
