module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Cpu = Newt_hw.Cpu
module Stats = Newt_sim.Stats
module Sim_chan = Newt_channels.Sim_chan

type app = { app_core : Cpu.t; app_pid : int }

type entry = {
  transport : [ `Tcp | `Udp ];
  shard : int;  (* which transport instance serves this socket *)
  mutable last_op : (int * Msg.sock_call) option;
  mutable waiter : (Msg.sock_result -> unit) option;
  mutable owner : app option;
}

type t = {
  comp : Component.t;
  proc : Proc.t;
  mutable to_tcp : Msg.t Sim_chan.t array;
  mutable to_udp : Msg.t Sim_chan.t array;
  sockets : (Msg.socket_id, entry) Hashtbl.t;
  reqs : (int, Msg.socket_id) Hashtbl.t;
  mutable next_sock : int;
  mutable next_req : int;
  mutable place : transport:[ `Tcp | `Udp ] -> int;
}

let comp t = t.comp
let proc t = t.proc
let costs t = Machine.costs (Component.machine t.comp)

let outstanding_calls t = Hashtbl.length t.reqs

let chans_for t transport =
  match transport with `Tcp -> t.to_tcp | `Udp -> t.to_udp

let chan_for t entry =
  let chans = chans_for t entry.transport in
  let n = Array.length chans in
  if n = 0 then None else Some chans.(entry.shard mod n)

(* Deliver a result back to the blocked application: the kernel reply
   plus the app's return from its trap. *)
let deliver_to_app t entry result =
  match (entry.waiter, entry.owner) with
  | Some k, Some app ->
      entry.waiter <- None;
      Cpu.exec app.app_core ~proc:app.app_pid
        ~cost:(costs t).Costs.trap_hot
        (fun () -> k result)
  | Some k, None ->
      entry.waiter <- None;
      k result
  | None, _ -> ()

let forward t sock_id entry req_id call =
  match chan_for t entry with
  | Some chan ->
      entry.last_op <- Some (req_id, call);
      Hashtbl.replace t.reqs req_id sock_id;
      if not (Proc.send t.proc chan (Msg.Sock_req { id = req_id; sock = sock_id; call }))
      then begin
        Hashtbl.remove t.reqs req_id;
        (* The transport is down; the operation stays recorded as
           unfinished and will be re-issued on restart. *)
        ()
      end
  | None -> deliver_to_app t entry (Msg.Err "no transport")

(* The SYSCALL server's own work per call is minimal: "it merely peeks
   into the messages and passes them to the servers through the
   channels" — but it pays the kernel IPC receive for the application's
   trap. *)
let dispatch_cost t =
  let c = costs t in
  Costs.kipc_sendrec_cost c ~cold:false + c.Costs.channel_marshal
  + c.Costs.channel_enqueue

let submit t app ~sock:sock_id call k =
  (* The application traps; the kernel copies the message; the SYSCALL
     server is woken (possibly cross-core). *)
  let c = costs t in
  Cpu.exec app.app_core ~proc:app.app_pid
    ~cost:(Costs.kipc_sendrec_cost c ~cold:false)
    (fun () ->
      Proc.exec t.proc ~cost:(dispatch_cost t) (fun () ->
          match Hashtbl.find_opt t.sockets sock_id with
          | None -> k (Msg.Err "bad socket")
          | Some entry ->
              if entry.waiter <> None then k (Msg.Err "socket busy")
              else begin
                entry.waiter <- Some k;
                entry.owner <- Some app;
                let req_id = t.next_req in
                t.next_req <- req_id + 1;
                (* accept(): pre-allocate the new connection's socket id
                   and register it with the same transport. *)
                let call =
                  match call with
                  | Msg.Call_accept _ ->
                      let new_sock = t.next_sock in
                      t.next_sock <- new_sock + 1;
                      (* The accepted connection lives on the listener's
                         shard — the only instance that has its PCB. *)
                      Hashtbl.replace t.sockets new_sock
                        {
                          transport = entry.transport;
                          shard = entry.shard;
                          last_op = None;
                          waiter = None;
                          owner = None;
                        };
                      Msg.Call_accept { new_sock }
                  | other -> other
                in
                forward t sock_id entry req_id call
              end))

let socket t app ~transport k =
  let c = costs t in
  Cpu.exec app.app_core ~proc:app.app_pid
    ~cost:(Costs.kipc_sendrec_cost c ~cold:false)
    (fun () ->
      Proc.exec t.proc ~cost:(dispatch_cost t) (fun () ->
          let sock_id = t.next_sock in
          t.next_sock <- sock_id + 1;
          let entry =
            {
              transport;
              shard = t.place ~transport;
              last_op = None;
              waiter = None;
              owner = Some app;
            }
          in
          Hashtbl.replace t.sockets sock_id entry;
          entry.waiter <-
            Some
              (fun result ->
                match result with
                | Msg.Ok_socket id -> k id
                | _ -> k sock_id);
          let req_id = t.next_req in
          t.next_req <- req_id + 1;
          forward t sock_id entry req_id Msg.Call_socket))

let call = submit

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Sock_reply { id; result } -> (
      ( c.Costs.channel_demux + (Costs.kipc_sendrec_cost c ~cold:false / 2),
        fun () ->
          match Hashtbl.find_opt t.reqs id with
          | None ->
              (* A stale reply from before a restart: ignore
                 (Section V-B). *)
              Stats.incr (Proc.stats t.proc) "stale_reply"
          | Some sock_id -> (
              Hashtbl.remove t.reqs id;
              match Hashtbl.find_opt t.sockets sock_id with
              | None -> ()
              | Some entry ->
                  entry.last_op <- None;
                  deliver_to_app t entry result) ))
  | Msg.Sock_event _ -> (100, fun () -> ())
  | Msg.Tx_ip _ | Msg.Tx_ip_confirm _ | Msg.Filter_req _ | Msg.Filter_verdict _
  | Msg.Drv_tx _ | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _
  | Msg.Rx_frame _ | Msg.Rx_deliver _
  | Msg.Rx_done _ | Msg.Sock_req _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

let create comp () =
  let t =
    {
      comp;
      proc = Component.proc comp;
      to_tcp = [||];
      to_udp = [||];
      sockets = Hashtbl.create 64;
      reqs = Hashtbl.create 64;
      next_sock = 3;
      next_req = 1;
      place = (fun ~transport:_ -> 0);
    }
  in
  (* Outstanding calls get errors; the socket table is rebuilt lazily
     as applications retry (Section V-B: restarting the SYSCALL server
     is trivial). *)
  Component.on_crash comp (fun () ->
      Hashtbl.iter
        (fun _ entry -> deliver_to_app t entry (Msg.Err "syscall server restarted"))
        t.sockets;
      Hashtbl.reset t.reqs);
  t

let connect_transport_sharded t ~transport ~pairs =
  (match transport with
  | `Tcp -> t.to_tcp <- Array.map fst pairs
  | `Udp -> t.to_udp <- Array.map fst pairs);
  Array.iter
    (fun (to_transport, from_transport) ->
      Component.produce t.comp to_transport;
      Component.consume t.comp from_transport (handle_msg t))
    pairs

let connect_transport t ~transport ~to_transport ~from_transport =
  connect_transport_sharded t ~transport ~pairs:[| (to_transport, from_transport) |]

let set_placement t f = t.place <- f

let on_transport_restart ?shard t ~transport =
  (* Re-issue every unfinished operation against the fresh instance
     (Section V-D). The request keeps its id: the old instance never
     answered it, and ids are unique per SYSCALL incarnation. When
     [shard] is given, only that instance restarted — sockets on the
     other shards never lost anything. *)
  Proc.exec t.proc ~cost:(dispatch_cost t) (fun () ->
      Hashtbl.iter
        (fun sock_id entry ->
          if
            entry.transport = transport
            && (match shard with None -> true | Some s -> entry.shard = s)
          then
            match entry.last_op with
            | Some (req_id, call) -> forward t sock_id entry req_id call
            | None -> ())
        t.sockets)
