(** The SYSCALL server.

    "To detach the synchronous POSIX system calls from the asynchronous
    internals of NewtOS, the applications' requests are dispatched by a
    SYSCALL server. It is the only server which frequently uses the
    kernel IPC. Phrased differently, it pays the trapping toll for the
    rest of the system." (Section V-B)

    Applications block in a kernel sendrec; the SYSCALL server peeks at
    the message and forwards it over a fast-path channel to the TCP or
    UDP server, remembering the {e last unfinished operation on each
    socket}. That memory is the recovery mechanism of Section V-D: when
    a transport server is restarted, the SYSCALL server re-issues every
    unfinished operation against the new instance (preferring duplicate
    sends over lost ones).

    Its own crash is the generic {!Component} lifecycle plus one hook:
    outstanding calls are answered with errors and stale replies will
    be ignored. *)

type t

type app = { app_core : Newt_hw.Cpu.t; app_pid : int }
(** Identifies the calling application for cost accounting. *)

val create : Component.t -> unit -> t

val comp : t -> Component.t
val proc : t -> Proc.t

val connect_transport :
  t ->
  transport:[ `Tcp | `Udp ] ->
  to_transport:Msg.t Newt_channels.Sim_chan.t ->
  from_transport:Msg.t Newt_channels.Sim_chan.t ->
  unit

val connect_transport_sharded :
  t ->
  transport:[ `Tcp | `Udp ] ->
  pairs:(Msg.t Newt_channels.Sim_chan.t * Msg.t Newt_channels.Sim_chan.t) array ->
  unit
(** Wire [N] transport shards: [pairs.(i)] is shard [i]'s
    (to_transport, from_transport) channel pair. Each socket is pinned
    to one shard at creation time ({!set_placement}) and every call on
    it is routed there — the downward half of the flow→shard
    invariant. *)

val set_placement : t -> (transport:[ `Tcp | `Udp ] -> int) -> unit
(** Shard chosen for each new socket (default: always 0). The shard
    itself then picks a source port that hashes back to it, so any
    spreading policy preserves flow affinity. *)

(** {1 The POSIX face} *)

val socket :
  t -> app -> transport:[ `Tcp | `Udp ] -> (Msg.socket_id -> unit) -> unit
(** Create a socket; the continuation runs on the app's core when the
    transport acknowledged it. *)

val call :
  t -> app -> sock:Msg.socket_id -> Msg.sock_call -> (Msg.sock_result -> unit) -> unit
(** Issue a (blocking) socket call. [Call_accept]'s [new_sock] is
    filled in by the server. The continuation receives the result on
    the app's core. At most one outstanding call per socket. *)

(** {1 Recovery} *)

val on_transport_restart : ?shard:int -> t -> transport:[ `Tcp | `Udp ] -> unit
(** Re-issue the last unfinished operation of every socket belonging to
    the restarted transport; with [?shard], only that instance's
    sockets (the others never lost anything). *)

val outstanding_calls : t -> int
