module Engine = Newt_sim.Engine
module Exec = Newt_sim.Exec
module Stats = Newt_sim.Stats
module Rng = Newt_sim.Rng
module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Rich_ptr = Newt_channels.Rich_ptr
module Registry = Newt_channels.Registry
module Addr = Newt_net.Addr
module Ipv4 = Newt_net.Ipv4
module Tcp = Newt_net.Tcp
module Tcp_wire = Newt_net.Tcp_wire
module Conntrack = Newt_pf.Conntrack

(* An in-flight packet: what we need to resubmit it after an IP crash. *)
type inflight = {
  chain : Rich_ptr.chain;
  src : Addr.Ipv4.t;
  dst : Addr.Ipv4.t;
  tso : bool;
}

type pending_op =
  | P_none
  | P_connect of { req : int }
  | P_accept of { req : int; new_sock : Msg.socket_id }
  | P_recv of { req : int; max : int }
  | P_send of { req : int; data : Bytes.t; mutable off : int }

type socket = {
  sock_id : Msg.socket_id;
  mutable pcb : Tcp.pcb option;
  mutable listen_port : int option;
  mutable bound_port : int option;
  mutable backlog : int;
  accept_q : Tcp.pcb Queue.t;
  mutable op : pending_op;
  mutable dead : bool;  (* reset/closed *)
}

type t = {
  comp : Component.t;
  proc : Proc.t;
  registry : Registry.t;
  local_addr : Addr.Ipv4.t;
  tcp_config : Tcp.config;
  save : string -> string -> unit;
  load : string -> string option;
  pool : Pool.t;
  mutable engine : Tcp.t;
  db : inflight Component.Db.t;
  mutable to_ip : Msg.t Sim_chan.t option;
  mutable to_sc : Msg.t Sim_chan.t option;
  sockets : (Msg.socket_id, socket) Hashtbl.t;
  mutable select_pending : (int * Msg.socket_id list) option;
  mutable resubmit : inflight list;
  mutable ip_up : bool;
  mutable resubmitted : int;
  mutable src_select : Addr.Ipv4.t -> Addr.Ipv4.t;
  mutable port_select :
    src:Addr.Ipv4.t ->
    dst:Addr.Ipv4.t ->
    dst_port:int ->
    [ `Any | `Port of int | `Exhausted ];
  mutable break_tcp : Tcp.sabotage option;
  mutable stale_tuples : (Addr.Ipv4.t * int * Addr.Ipv4.t * int) list;
      (* Tuples captured at crash time for [Stale_established]. *)
  rng : Rng.t;
}

let ip_peer = 1
let comp t = t.comp
let proc t = t.proc
let costs t = Machine.costs (Component.machine t.comp)
let engine t = t.engine
let pool_in_use t = Pool.in_use t.pool
let segments_resubmitted t = t.resubmitted

(* Totals that survive restarts: the live engine plus what crash hooks
   banked from dead incarnations (the shard-stats fix). *)
let total_segs_out t =
  Component.archived t.comp "tcp.segs_out" + (Tcp.stats t.engine).Tcp.segs_out

let total_bytes_out t =
  Component.archived t.comp "tcp.bytes_out" + (Tcp.stats t.engine).Tcp.bytes_out

let free_chain t chain = List.iter (fun p -> try Pool.free t.pool p with Pool.Stale_pointer _ -> ()) chain


(* {2 Outgoing segments: the zero-copy handoff to IP} *)

let submit_packet t (pkt : inflight) =
  if not t.ip_up then t.resubmit <- pkt :: t.resubmit
  else
    match t.to_ip with
    | None -> free_chain t pkt.chain
    | Some chan ->
        let id =
          Component.Db.submit t.db ~peer:ip_peer ~payload:pkt ~abort:(fun _ p ->
              (* IP crashed: resubmit under a new id once it returns;
                 the data stays allocated until the new id confirms. *)
              t.resubmit <- p :: t.resubmit)
        in
        let sent =
          Proc.send t.proc chan
            (Msg.Tx_ip
               { id; chain = pkt.chain; src = pkt.src; dst = pkt.dst; proto = Ipv4.Tcp; tso = pkt.tso })
        in
        if not sent then begin
          (* Queue full: drop; TCP's retransmission recovers. *)
          ignore (Component.Db.complete t.db id);
          free_chain t pkt.chain
        end

let emit_segment t ~src ~dst (hdr : Tcp_wire.header) ~payload =
  let c = costs t in
  let cost =
    c.Costs.tcp_segment_work + c.Costs.channel_marshal + c.Costs.channel_enqueue
  in
  Proc.exec t.proc ~cost (fun () ->
      (* Header chunk: encoded with a partial checksum for the NIC's
         offload engine to finalize. Payload chunk(s): the segment
         bytes, zero-copy from here on. *)
      let hdr_bytes = Tcp_wire.encode ~src ~dst ~partial_csum:true hdr ~payload:Bytes.empty in
      let alloc_write b =
        let ptr = Pool.alloc t.pool ~len:(Bytes.length b) in
        Pool.write t.pool ptr ~src:b ~src_off:0;
        ptr
      in
      match alloc_write hdr_bytes with
      | exception Pool.Pool_exhausted -> Stats.incr (Proc.stats t.proc) "pool_exhausted"
      | hdr_ptr -> (
          let payload_chunks =
            if Bytes.length payload = 0 then Some []
            else
              (* Large TSO segments span several pool slots. *)
              let slot = Pool.slot_size t.pool in
              let rec chunks off acc =
                if off >= Bytes.length payload then Some (List.rev acc)
                else
                  let len = min slot (Bytes.length payload - off) in
                  match Pool.alloc t.pool ~len with
                  | exception Pool.Pool_exhausted ->
                      free_chain t acc;
                      None
                  | ptr ->
                      Pool.write t.pool ptr ~src:(Bytes.sub payload off len) ~src_off:0;
                      chunks (off + len) (ptr :: acc)
              in
              chunks 0 []
          in
          match payload_chunks with
          | None ->
              free_chain t [ hdr_ptr ];
              Stats.incr (Proc.stats t.proc) "pool_exhausted"
          | Some chunks ->
              let tso = Bytes.length payload > 1460 in
              submit_packet t { chain = hdr_ptr :: chunks; src; dst; tso }))

let make_engine t =
  let inc_at_create = Proc.incarnation t.proc in
  Tcp.create ~config:t.tcp_config
    {
      Tcp.now =
        (fun () -> Exec.now (Machine.exec (Component.machine t.comp)));
      set_timer =
        (fun delay f ->
          Exec.schedule
            (Machine.exec (Component.machine t.comp))
            ~core:(Newt_hw.Cpu.id (Proc.core t.proc))
            delay
            (fun () ->
              if Proc.alive t.proc && Proc.incarnation t.proc = inc_at_create
              then Proc.exec t.proc ~cost:200 f));
      emit =
        (fun ~src ~dst hdr ~payload ->
          if Proc.incarnation t.proc = inc_at_create then
            emit_segment t ~src ~dst hdr ~payload);
      random = (fun bound -> Rng.int t.rng bound);
    }

(* {2 Socket bookkeeping} *)

let sock t id =
  match Hashtbl.find_opt t.sockets id with
  | Some s -> s
  | None ->
      let s =
        {
          sock_id = id;
          pcb = None;
          listen_port = None;
          bound_port = None;
          backlog = 0;
          accept_q = Queue.create ();
          op = P_none;
          dead = false;
        }
      in
      Hashtbl.add t.sockets id s;
      s

let reply t req result =
  match t.to_sc with
  | Some chan -> ignore (Proc.send t.proc chan (Msg.Sock_reply { id = req; result }))
  | None -> ()

let persist_listeners t =
  let listeners =
    Hashtbl.fold
      (fun id s acc ->
        match s.listen_port with
        | Some p -> (id, p, s.backlog) :: acc
        | None -> acc)
      t.sockets []
  in
  t.save "listeners" (Marshal.to_string (List.sort compare listeners) [])

let socket_readable s =
  s.dead
  || (not (Queue.is_empty s.accept_q))
  ||
  match s.pcb with
  | Some pcb -> Tcp.recv_available pcb > 0 || Tcp.recv_eof pcb
  | None -> false

let check_select t =
  match t.select_pending with
  | None -> ()
  | Some (req, watch) ->
      let ready =
        List.filter
          (fun id ->
            match Hashtbl.find_opt t.sockets id with
            | Some s -> socket_readable s
            | None -> true)
          watch
      in
      if ready <> [] then begin
        t.select_pending <- None;
        reply t req (Msg.Ok_ready ready)
      end

(* Try to complete a blocked operation after a TCP event. *)
let rec progress t s =
  match s.op with
  | P_none -> ()
  | P_connect { req } -> (
      match s.pcb with
      | Some pcb when Tcp.state pcb = Tcp.Established ->
          s.op <- P_none;
          reply t req Msg.Ok_unit
      | Some _ -> ()
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "connection failed"))
  | P_accept { req; new_sock } -> (
      match Queue.take_opt s.accept_q with
      | Some pcb ->
          s.op <- P_none;
          let child = sock t new_sock in
          child.pcb <- Some pcb;
          attach_handler t child pcb;
          reply t req (Msg.Ok_accepted new_sock)
      | None -> ())
  | P_recv { req; max } -> (
      match s.pcb with
      | Some pcb ->
          if Tcp.recv_available pcb > 0 then begin
            s.op <- P_none;
            reply t req (Msg.Ok_data (Tcp.recv pcb ~max))
          end
          else if Tcp.recv_eof pcb then begin
            s.op <- P_none;
            reply t req Msg.Ok_eof
          end
          else if s.dead then begin
            s.op <- P_none;
            reply t req (Msg.Err "connection reset")
          end
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "not connected"))
  | P_send ({ req; data; _ } as ps) -> (
      match s.pcb with
      | Some pcb ->
          let remaining = Bytes.length data - ps.off in
          if remaining > 0 then begin
            let accepted =
              Tcp.send pcb (Bytes.sub data ps.off remaining)
            in
            ps.off <- ps.off + accepted
          end;
          if ps.off >= Bytes.length data then begin
            s.op <- P_none;
            reply t req (Msg.Ok_sent ps.off)
          end
          else if s.dead then begin
            s.op <- P_none;
            reply t req (Msg.Err "connection reset")
          end
      | None ->
          s.op <- P_none;
          reply t req (Msg.Err "not connected"))

and attach_handler t s pcb =
  Tcp.set_handler pcb (fun ev ->
      (match ev with
      | Tcp.Connected | Tcp.Readable | Tcp.Writable -> progress t s
      | Tcp.Accepted -> ()
      | Tcp.Closed_normally ->
          s.dead <- true;
          progress t s
      | Tcp.Reset ->
          s.dead <- true;
          s.pcb <- None;
          progress t s);
      check_select t)

(* A connection completing its handshake against a full accept queue is
   refused — RST and counted — never queued without bound: under an
   accept-starved listener (or a flood) the queue length is the
   application's problem, not the server's memory. *)
let enqueue_accept t s pcb =
  if Queue.length s.accept_q >= s.backlog then begin
    Stats.incr (Proc.stats t.proc) "listen_overflows";
    Tcp.abort pcb
  end
  else begin
    Queue.push pcb s.accept_q;
    (* Accepted connections produce events as soon as an accept claims
       them; meanwhile track and ack. *)
    progress t s;
    check_select t
  end

let handle_call t s req (call : Msg.sock_call) =
  match call with
  | Msg.Call_socket -> reply t req (Msg.Ok_socket s.sock_id)
  | Msg.Call_bind { port } ->
      s.bound_port <- Some port;
      reply t req Msg.Ok_unit
  | Msg.Call_listen { backlog } -> (
      match s.bound_port with
      | None -> reply t req (Msg.Err "not bound")
      | Some port -> (
          match
            Tcp.listen t.engine ~port ~on_accept:(fun pcb ->
                enqueue_accept t s pcb)
          with
          | () ->
              s.listen_port <- Some port;
              s.backlog <- max 1 backlog;
              persist_listeners t;
              reply t req Msg.Ok_unit
          | exception Invalid_argument m -> reply t req (Msg.Err m)))
  | Msg.Call_connect { dst; dst_port } -> (
      let src = t.src_select dst in
      match t.port_select ~src ~dst ~dst_port with
      | `Exhausted ->
          (* The selector ran out of usable source ports (for a sharded
             stack: every ephemeral port hashing to this shard is
             bound). A hard error to the caller, never a silent
             fallback to a port on the wrong queue. *)
          reply t req (Msg.Err "ephemeral ports exhausted")
      | (`Any | `Port _) as sel ->
          let src_port = match sel with `Port p -> Some p | `Any -> None in
          let pcb = Tcp.connect t.engine ~src ~dst ~dst_port ?src_port () in
          s.pcb <- Some pcb;
          s.op <- P_connect { req };
          attach_handler t s pcb;
          progress t s)
  | Msg.Call_send { data } ->
      (match s.op with
      | P_none ->
          s.op <- P_send { req; data; off = 0 };
          progress t s
      | P_connect _ | P_accept _ | P_recv _ | P_send _ ->
          reply t req (Msg.Err "operation pending"))
  | Msg.Call_recv { max; timeout } ->
      (match s.op with
      | P_none ->
          s.op <- P_recv { req; max };
          progress t s;
          if timeout > 0 then
            Proc.after t.proc timeout ~cost:100 (fun () ->
                match s.op with
                | P_recv { req = r; _ } when r = req ->
                    s.op <- P_none;
                    reply t req (Msg.Err "timeout")
                | P_recv _ | P_none | P_connect _ | P_accept _ | P_send _ -> ())
      | P_connect _ | P_accept _ | P_recv _ | P_send _ ->
          reply t req (Msg.Err "operation pending"))
  | Msg.Call_accept { new_sock } ->
      (match s.op with
      | P_none ->
          s.op <- P_accept { req; new_sock };
          progress t s
      | P_connect _ | P_accept _ | P_recv _ | P_send _ ->
          reply t req (Msg.Err "operation pending"))
  | Msg.Call_shutdown ->
      (match s.pcb with
      | Some pcb ->
          Tcp.close pcb;
          (* Unlike close: the socket stays alive for receiving. *)
          reply t req Msg.Ok_unit
      | None -> reply t req (Msg.Err "not connected"))
  | Msg.Call_select { watch; timeout } ->
      (match t.select_pending with
      | Some _ -> reply t req (Msg.Err "select already pending")
      | None ->
          t.select_pending <- Some (req, watch);
          check_select t;
          if t.select_pending <> None && timeout > 0 then
            Proc.after t.proc timeout ~cost:100 (fun () ->
                match t.select_pending with
                | Some (r, _) when r = req ->
                    t.select_pending <- None;
                    reply t req (Msg.Ok_ready [])
                | Some _ | None -> ()))
  | Msg.Call_sendto _ -> reply t req (Msg.Err "not a datagram socket")
  | Msg.Call_recvfrom _ -> reply t req (Msg.Err "not a datagram socket")
  | Msg.Call_close ->
      (match s.listen_port with
      | Some port ->
          Tcp.unlisten t.engine ~port;
          s.listen_port <- None;
          persist_listeners t
      | None -> ());
      (match s.pcb with Some pcb -> Tcp.close pcb | None -> ());
      s.dead <- true;
      reply t req Msg.Ok_unit

(* {2 Message handlers} *)

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Sock_req { id; sock = sock_id; call } ->
      ( c.Costs.channel_demux,
        fun () -> handle_call t (sock t sock_id) id call )
  | Msg.Tx_ip_confirm { id; ok = _ } -> (
      ( 100,
        fun () ->
          match Component.Db.complete t.db id with
          | Some pkt -> free_chain t pkt.chain
          | None -> Stats.incr (Proc.stats t.proc) "stale_confirm" ))
  | Msg.Rx_deliver { buf; src; dst } ->
      (* Cost depends on the segment kind; peek at the length. *)
      let seg_bytes =
        match Registry.read t.registry buf with
        | b -> Some b
        | exception (Registry.Unknown_pool _ | Pool.Stale_pointer _) -> None
      in
      let cost =
        match seg_bytes with
        | Some b when Bytes.length b > 60 -> c.Costs.tcp_segment_work / 2
        | _ -> c.Costs.tcp_ack_work
      in
      ( cost + c.Costs.channel_marshal + c.Costs.channel_enqueue,
        fun () ->
          (match seg_bytes with
          | Some b -> (
              match Tcp_wire.decode ~src ~dst b with
              | Some (hdr, payload) -> Tcp.input t.engine ~src ~dst hdr ~payload
              | None -> Stats.incr (Proc.stats t.proc) "bad_checksum")
          | None -> ());
          (* Return the buffer to IP. *)
          Option.iter
            (fun chan -> ignore (Proc.send t.proc chan (Msg.Rx_done { buf })))
            t.to_ip )
  | Msg.Tx_ip _ | Msg.Filter_req _ | Msg.Filter_verdict _ | Msg.Drv_tx _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_done _ | Msg.Sock_reply _
  | Msg.Sock_event _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

(* {2 Construction} *)

let create comp ~registry ~local_addr ?tcp_config ~save ~load () =
  let machine = Component.machine comp in
  let pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:8192 ~slot_size:2048 in
  Registry.register registry pool;
  let tcp_config = Option.value tcp_config ~default:Tcp.default_config in
  (* A throwaway engine breaks the [t]/[engine] knot; it is replaced
     before anything can touch it. *)
  let placeholder_engine =
    Tcp.create
      {
        Tcp.now = (fun () -> 0);
        set_timer = (fun _ _ () -> ());
        emit = (fun ~src:_ ~dst:_ _ ~payload:_ -> ());
        random = (fun _ -> 0);
      }
  in
  let t =
    {
      comp;
      proc = Component.proc comp;
      registry;
      local_addr;
      tcp_config;
      save;
      load;
      pool;
      engine = placeholder_engine;
      db = Component.create_db comp;
      to_ip = None;
      to_sc = None;
      sockets = Hashtbl.create 64;
      select_pending = None;
      resubmit = [];
      ip_up = true;
      resubmitted = 0;
      src_select = (fun _ -> local_addr);
      port_select = (fun ~src:_ ~dst:_ ~dst_port:_ -> `Any);
      break_tcp = None;
      stale_tuples = [];
      rng = Rng.split (Engine.rng (Machine.engine machine));
    }
  in
  t.engine <- make_engine t;
  Component.register_pool comp pool;
  Component.on_crash comp (fun () ->
      (* The engine dies with the incarnation: bank its counters so
         per-shard stats neither double-count nor lose the pre-crash
         series. *)
      let st = Tcp.stats t.engine in
      Component.archive_add comp "tcp.segs_out" st.Tcp.segs_out;
      Component.archive_add comp "tcp.bytes_out" st.Tcp.bytes_out;
      t.select_pending <- None;
      (* Sabotage capture: the stale-Established bug needs the dead
         incarnation's connections to resurrect after restart. *)
      if t.break_tcp = Some Tcp.Stale_established then
        t.stale_tuples <- Tcp.established_tuples t.engine;
      Tcp.shutdown_all t.engine;
      Hashtbl.reset t.sockets;
      t.resubmit <- []);
  Component.on_restart comp ~step:"reload-listeners" (fun ~fresh:_ ->
      t.engine <- make_engine t;
      Tcp.set_sabotage t.engine t.break_tcp;
      (match t.break_tcp with
      | Some Tcp.Stale_established ->
          Tcp.resurrect t.engine t.stale_tuples;
          t.stale_tuples <- []
      | Some Tcp.Ack_from_closed | None -> ());
      (* Listening sockets are the recoverable part of our state
         (Table I): re-open them from the storage server. *)
      match t.load "listeners" with
      | None -> ()
      | Some blob ->
          (* The backlog is part of the listener's recoverable state:
             a restarted shard enforces the same cap. *)
          let listeners : (Msg.socket_id * int * int) list =
            Marshal.from_string blob 0
          in
          List.iter
            (fun (sock_id, port, backlog) ->
              let s = sock t sock_id in
              s.bound_port <- Some port;
              s.listen_port <- Some port;
              s.backlog <- backlog;
              try
                Tcp.listen t.engine ~port ~on_accept:(fun pcb ->
                    enqueue_accept t s pcb)
              with Invalid_argument _ -> ())
            listeners);
  t

let set_src_select t f = t.src_select <- f
let set_port_select t f = t.port_select <- f

let set_break_tcp t mode =
  t.break_tcp <- mode;
  Tcp.set_sabotage t.engine mode

let connect_ip t ~to_ip ~from_ip =
  t.to_ip <- Some to_ip;
  Component.produce t.comp to_ip;
  Component.consume t.comp from_ip (handle_msg t)

let connect_sc t ~from_sc ~to_sc =
  t.to_sc <- Some to_sc;
  Component.produce t.comp to_sc;
  Component.consume t.comp from_sc (handle_msg t)

let conntrack_flows t =
  List.map
    (fun (lip, lp, rip, rp) ->
      {
        Conntrack.proto = Conntrack.Ct_tcp;
        local_ip = lip;
        local_port = lp;
        remote_ip = rip;
        remote_port = rp;
      })
    (Tcp.established_tuples t.engine)

(* {2 Recovery} *)

let on_ip_crash t =
  t.ip_up <- false;
  ignore (Component.Db.abort_peer t.db ~peer:ip_peer)

let on_ip_restart t =
  t.ip_up <- true;
  let pkts = List.rev t.resubmit in
  t.resubmit <- [];
  (* "It is much more important that we quickly retransmit (possibly)
     lost packets to avoid the error detection and congestion
     avoidance" (Section V-D): resubmit everything with new ids. *)
  Proc.exec t.proc ~cost:(costs t).Costs.tcp_segment_work (fun () ->
      List.iter
        (fun pkt ->
          if Registry.chain_live t.registry pkt.chain then begin
            t.resubmitted <- t.resubmitted + 1;
            submit_packet t pkt
          end)
        pkts)

let repersist t = persist_listeners t

let listen_overflows t = Stats.get (Proc.stats t.proc) "listen_overflows"
