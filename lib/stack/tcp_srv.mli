(** The TCP server.

    Runs the {!Newt_net.Tcp} engine as an isolated, single-threaded
    component. Outgoing segments become zero-copy requests to the IP
    server — a header chunk plus payload chunks in this server's pool,
    tracked in the request database until IP confirms transmission
    (only then may the chunks be freed, Section V-C). Incoming segments
    arrive as rich pointers into IP's receive pool and are returned
    with [Rx_done].

    Recovery (Table I): TCP has "large, frequently changing state for
    each connection, difficult to recover" — so a crash loses all
    established connections. Listening sockets have no volatile state
    and {e are} recovered: their ports are kept in the storage server
    and re-opened on restart, which is what lets new SSH sessions
    connect immediately after a crash (Section VI-B). On an IP crash,
    all unconfirmed packets are resubmitted under fresh request ids;
    replies to the old ids are ignored (Section V-D).

    The listener reload and the engine swap are {!Component} lifecycle
    hooks; the crash hook also banks the dying engine's counters into
    the component archive so {!total_segs_out}/{!total_bytes_out} stay
    exact across restarts. *)

type t

val create :
  Component.t ->
  registry:Newt_channels.Registry.t ->
  local_addr:Newt_net.Addr.Ipv4.t ->
  ?tcp_config:Newt_net.Tcp.config ->
  save:(string -> string -> unit) ->
  load:(string -> string option) ->
  unit ->
  t

val comp : t -> Component.t
val proc : t -> Proc.t

val set_src_select : t -> (Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Ipv4.t) -> unit
(** Source-address selection for active opens on a multihomed host
    (default: the constant [local_addr]). *)

val set_port_select :
  t ->
  (src:Newt_net.Addr.Ipv4.t ->
  dst:Newt_net.Addr.Ipv4.t ->
  dst_port:int ->
  [ `Any | `Port of int | `Exhausted ]) ->
  unit
(** Source-port selection for active opens. [`Any] falls back to the
    engine's ephemeral allocator; [`Port p] binds [p]. A sharded stack
    installs a function that picks a port whose RSS hash maps back to
    this very shard, so the connection's return traffic arrives on its
    own queue — and answers [`Exhausted] when every such port is in
    use, which the server surfaces to the caller as a connect error
    rather than silently opening on a port steered to another shard. *)

val set_break_tcp : t -> Newt_net.Tcp.sabotage option -> unit
(** Arm (or clear) a conformance-sabotage mode across this server's
    incarnations: [Ack_from_closed] plants the engine-level bug now
    and after every restart; [Stale_established] captures the live
    4-tuples at the moment of crash and resurrects them as forged
    Established PCBs when the server comes back. Negative control for
    [Newt_verify.Tcpfsm] — must never survive an armed checker. *)

val connect_ip :
  t ->
  to_ip:Msg.t Newt_channels.Sim_chan.t ->
  from_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val connect_sc :
  t ->
  from_sc:Msg.t Newt_channels.Sim_chan.t ->
  to_sc:Msg.t Newt_channels.Sim_chan.t ->
  unit

val engine : t -> Newt_net.Tcp.t
(** The live protocol engine (replaced on restart). *)

val conntrack_flows : t -> Newt_pf.Conntrack.flow list
(** Live connections, for the packet filter's state recovery. *)

val on_ip_crash : t -> unit
val on_ip_restart : t -> unit

val repersist : t -> unit
(** Save the listening sockets again (after a storage-server crash). *)

val segments_resubmitted : t -> int
val pool_in_use : t -> int

val total_segs_out : t -> int
val total_bytes_out : t -> int
(** Lifetime totals: the live engine's counters plus those banked from
    incarnations that died — what per-shard stats should report. *)

val listen_overflows : t -> int
(** Connections refused (RST) because their listener's accept queue
    was at its backlog cap when the handshake completed. *)
