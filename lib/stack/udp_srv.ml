module Engine = Newt_sim.Engine
module Stats = Newt_sim.Stats
module Machine = Newt_hw.Machine
module Costs = Newt_hw.Costs
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Rich_ptr = Newt_channels.Rich_ptr
module Registry = Newt_channels.Registry
module Addr = Newt_net.Addr
module Ipv4 = Newt_net.Ipv4
module Udp = Newt_net.Udp
module Conntrack = Newt_pf.Conntrack

type inflight = { chain : Rich_ptr.chain; src : Addr.Ipv4.t; dst : Addr.Ipv4.t }

type pending_op =
  | P_none
  | P_recv of { req : int; max : int }
  | P_recvfrom of { req : int; max : int }

type socket = {
  sock_id : Msg.socket_id;
  mutable bound_port : int;  (* 0 = unbound *)
  mutable peer : (Addr.Ipv4.t * int) option;
  rxq : (Addr.Ipv4.t * int * Bytes.t) Queue.t;
  mutable op : pending_op;
}

type t = {
  comp : Component.t;
  proc : Proc.t;
  registry : Registry.t;
  local_addr : Addr.Ipv4.t;
  save : string -> string -> unit;
  load : string -> string option;
  pool : Pool.t;
  db : inflight Component.Db.t;
  mutable to_ip : Msg.t Sim_chan.t option;
  mutable to_sc : Msg.t Sim_chan.t option;
  sockets : (Msg.socket_id, socket) Hashtbl.t;
  (* At most one select outstanding per calling process instance. *)
  mutable select_pending : (int * Msg.socket_id list) option;
  mutable next_ephemeral : int;
  mutable resubmit : inflight list;
  mutable ip_up : bool;
  mutable src_select : Addr.Ipv4.t -> Addr.Ipv4.t;
  mutable datagrams_in : int;
  mutable datagrams_out : int;
}

let ip_peer = 1
let max_rxq = 64

let comp t = t.comp
let proc t = t.proc
let costs t = Machine.costs (Component.machine t.comp)
let open_socket_count t = Hashtbl.length t.sockets
let datagrams_in t = t.datagrams_in
let datagrams_out t = t.datagrams_out

let free_chain t chain =
  List.iter (fun p -> try Pool.free t.pool p with Pool.Stale_pointer _ -> ()) chain

let persist t =
  let socks =
    Hashtbl.fold (fun id s acc -> (id, s.bound_port, s.peer) :: acc) t.sockets []
  in
  t.save "sockets" (Marshal.to_string (List.sort compare socks) [])

let sock t id =
  match Hashtbl.find_opt t.sockets id with
  | Some s -> s
  | None ->
      let s = { sock_id = id; bound_port = 0; peer = None; rxq = Queue.create (); op = P_none } in
      Hashtbl.add t.sockets id s;
      persist t;
      s

let find_by_port t port =
  Hashtbl.fold
    (fun _ s acc -> if s.bound_port = port then Some s else acc)
    t.sockets None

let reply t req result =
  match t.to_sc with
  | Some chan -> ignore (Proc.send t.proc chan (Msg.Sock_reply { id = req; result }))
  | None -> ()

let socket_readable s = not (Queue.is_empty s.rxq)

let check_select t =
  match t.select_pending with
  | None -> ()
  | Some (req, watch) ->
      let ready =
        List.filter
          (fun id ->
            match Hashtbl.find_opt t.sockets id with
            | Some s -> socket_readable s
            | None -> true (* a vanished socket reads as ready-with-error *))
          watch
      in
      if ready <> [] then begin
        t.select_pending <- None;
        reply t req (Msg.Ok_ready ready)
      end

let progress t s =
  match s.op with
  | P_none -> ()
  | P_recv { req; max } -> (
      match Queue.take_opt s.rxq with
      | Some (_src, _port, data) ->
          s.op <- P_none;
          let data =
            if Bytes.length data > max then Bytes.sub data 0 max else data
          in
          reply t req (Msg.Ok_data data)
      | None -> ())
  | P_recvfrom { req; max } -> (
      match Queue.take_opt s.rxq with
      | Some (src, src_port, data) ->
          s.op <- P_none;
          let data =
            if Bytes.length data > max then Bytes.sub data 0 max else data
          in
          reply t req (Msg.Ok_data_from { data; src; src_port })
      | None -> ())

let submit_packet t pkt =
  if not t.ip_up then t.resubmit <- pkt :: t.resubmit
  else
    match t.to_ip with
    | None -> free_chain t pkt.chain
    | Some chan ->
        let id =
          Component.Db.submit t.db ~peer:ip_peer ~payload:pkt ~abort:(fun _ p ->
              t.resubmit <- p :: t.resubmit)
        in
        if
          not
            (Proc.send t.proc chan
               (Msg.Tx_ip
                  { id; chain = pkt.chain; src = pkt.src; dst = pkt.dst; proto = Ipv4.Udp; tso = false }))
        then begin
          ignore (Component.Db.complete t.db id);
          free_chain t pkt.chain
        end

let alloc_ephemeral t =
  let rec go n =
    if n > 16384 then 0
    else begin
      let port = t.next_ephemeral in
      t.next_ephemeral <- (if port >= 65535 then 49152 else port + 1);
      if find_by_port t port = None then port else go (n + 1)
    end
  in
  go 0

let send_datagram ?to_ t s data =
  let target = match to_ with Some _ -> to_ | None -> s.peer in
  match target with
  | None -> `Err "not connected"
  | Some (dst, dst_port) -> (
      if s.bound_port = 0 then begin
        s.bound_port <- alloc_ephemeral t;
        persist t
      end;
      let src = t.src_select dst in
      let dg =
        Udp.encode_partial_csum ~src ~dst
          { Udp.src_port = s.bound_port; dst_port }
          ~payload:data
      in
      (* Zero-copy split: 8-byte header chunk + payload chunk. *)
      let alloc_write b off len =
        let ptr = Pool.alloc t.pool ~len in
        Pool.write t.pool ptr ~src:(Bytes.sub b off len) ~src_off:0;
        ptr
      in
      match alloc_write dg 0 Udp.header_size with
      | exception Pool.Pool_exhausted -> `Err "out of buffers"
      | hdr_ptr -> (
          let payload_len = Bytes.length dg - Udp.header_size in
          let chain =
            if payload_len = 0 then Some [ hdr_ptr ]
            else
              match alloc_write dg Udp.header_size payload_len with
              | ptr -> Some [ hdr_ptr; ptr ]
              | exception Pool.Pool_exhausted ->
                  free_chain t [ hdr_ptr ];
                  None
          in
          match chain with
          | None -> `Err "out of buffers"
          | Some chain ->
              t.datagrams_out <- t.datagrams_out + 1;
              submit_packet t { chain; src; dst };
              `Sent (Bytes.length data)))

let handle_call t s req (call : Msg.sock_call) =
  match call with
  | Msg.Call_socket -> reply t req (Msg.Ok_socket s.sock_id)
  | Msg.Call_bind { port } ->
      s.bound_port <- port;
      persist t;
      reply t req Msg.Ok_unit
  | Msg.Call_connect { dst; dst_port } ->
      s.peer <- Some (dst, dst_port);
      if s.bound_port = 0 then s.bound_port <- alloc_ephemeral t;
      persist t;
      reply t req Msg.Ok_unit
  | Msg.Call_send { data } -> (
      match send_datagram t s data with
      | `Sent n -> reply t req (Msg.Ok_sent n)
      | `Err e -> reply t req (Msg.Err e))
  | Msg.Call_sendto { data; dst; dst_port } -> (
      if s.bound_port = 0 then begin
        s.bound_port <- alloc_ephemeral t;
        persist t
      end;
      match send_datagram ~to_:(dst, dst_port) t s data with
      | `Sent n -> reply t req (Msg.Ok_sent n)
      | `Err e -> reply t req (Msg.Err e))
  | Msg.Call_recvfrom { max; timeout } ->
      (match s.op with
      | P_none ->
          s.op <- P_recvfrom { req; max };
          progress t s;
          if timeout > 0 then
            Proc.after t.proc timeout ~cost:100 (fun () ->
                match s.op with
                | P_recvfrom { req = r; _ } when r = req ->
                    s.op <- P_none;
                    reply t req (Msg.Err "timeout")
                | P_recvfrom _ | P_recv _ | P_none -> ())
      | P_recv _ | P_recvfrom _ -> reply t req (Msg.Err "operation pending"))
  | Msg.Call_recv { max; timeout } ->
      (match s.op with
      | P_none ->
          s.op <- P_recv { req; max };
          progress t s;
          if timeout > 0 then
            Proc.after t.proc timeout ~cost:100 (fun () ->
                match s.op with
                | P_recv { req = r; _ } when r = req ->
                    s.op <- P_none;
                    reply t req (Msg.Err "timeout")
                | P_recv _ | P_recvfrom _ | P_none -> ())
      | P_recv _ | P_recvfrom _ -> reply t req (Msg.Err "operation pending"))
  | Msg.Call_select { watch; timeout } ->
      (match t.select_pending with
      | Some _ -> reply t req (Msg.Err "select already pending")
      | None ->
          t.select_pending <- Some (req, watch);
          check_select t;
          if t.select_pending <> None && timeout > 0 then
            Proc.after t.proc timeout ~cost:100 (fun () ->
                match t.select_pending with
                | Some (r, _) when r = req ->
                    t.select_pending <- None;
                    reply t req (Msg.Ok_ready [])
                | Some _ | None -> ()))
  | Msg.Call_shutdown -> reply t req (Msg.Err "udp cannot shutdown")
  | Msg.Call_listen _ -> reply t req (Msg.Err "udp cannot listen")
  | Msg.Call_accept _ -> reply t req (Msg.Err "udp cannot accept")
  | Msg.Call_close ->
      Hashtbl.remove t.sockets s.sock_id;
      persist t;
      reply t req Msg.Ok_unit

let handle_rx t buf ~src ~dst =
  (match Registry.read t.registry buf with
  | exception (Registry.Unknown_pool _ | Pool.Stale_pointer _) -> ()
  | dg_bytes -> (
      match Udp.decode ~src ~dst dg_bytes with
      | None -> Stats.incr (Proc.stats t.proc) "bad_checksum"
      | Some (h, payload) -> (
          match find_by_port t h.Udp.dst_port with
          | None -> Stats.incr (Proc.stats t.proc) "no_socket"
          | Some s ->
              t.datagrams_in <- t.datagrams_in + 1;
              if Queue.length s.rxq < max_rxq then
                Queue.push (src, h.Udp.src_port, payload) s.rxq;
              progress t s;
              check_select t)));
  Option.iter
    (fun chan -> ignore (Proc.send t.proc chan (Msg.Rx_done { buf })))
    t.to_ip

let handle_msg t msg =
  let c = costs t in
  match msg with
  | Msg.Sock_req { id; sock = sock_id; call } ->
      (c.Costs.channel_demux, fun () -> handle_call t (sock t sock_id) id call)
  | Msg.Tx_ip_confirm { id; ok = _ } -> (
      ( 100,
        fun () ->
          match Component.Db.complete t.db id with
          | Some pkt -> free_chain t pkt.chain
          | None -> Stats.incr (Proc.stats t.proc) "stale_confirm" ))
  | Msg.Rx_deliver { buf; src; dst } ->
      ( c.Costs.udp_segment_work + c.Costs.channel_marshal + c.Costs.channel_enqueue,
        fun () -> handle_rx t buf ~src ~dst )
  | Msg.Tx_ip _ | Msg.Filter_req _ | Msg.Filter_verdict _ | Msg.Drv_tx _
  | Msg.Drv_tx_confirm _ | Msg.Drv_tx_confirm_batch _ | Msg.Rx_frame _
  | Msg.Rx_done _ | Msg.Sock_reply _
  | Msg.Sock_event _ ->
      (0, fun () -> Stats.incr (Proc.stats t.proc) "invalid_msg")

let create comp ~registry ~local_addr ~save ~load () =
  let pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:2048 ~slot_size:2048 in
  Registry.register registry pool;
  let t =
    {
      comp;
      proc = Component.proc comp;
      registry;
      local_addr;
      save;
      load;
      pool;
      db = Component.create_db comp;
      to_ip = None;
      to_sc = None;
      sockets = Hashtbl.create 32;
      select_pending = None;
      next_ephemeral = 49152;
      resubmit = [];
      ip_up = true;
      src_select = (fun _ -> local_addr);
      datagrams_in = 0;
      datagrams_out = 0;
    }
  in
  Component.register_pool comp pool;
  Component.on_crash comp (fun () ->
      t.select_pending <- None;
      Hashtbl.reset t.sockets;
      t.resubmit <- []);
  Component.on_restart comp ~step:"reload-sockets" (fun ~fresh:_ ->
      (* "It is easy to recreate the sockets after the crash"
         (Section V-D): the 4-tuples come back from the storage
         server. *)
      (match t.load "sockets" with
      | None -> ()
      | Some blob ->
          let socks : (Msg.socket_id * int * (Addr.Ipv4.t * int) option) list =
            Marshal.from_string blob 0
          in
          List.iter
            (fun (id, bound_port, peer) ->
              (* Not via [sock]: its eager persist would overwrite the
                 saved blob with a half-restored table — fatal at the
                 next crash. *)
              Hashtbl.replace t.sockets id
                { sock_id = id; bound_port; peer; rxq = Queue.create (); op = P_none })
            socks);
      (* Re-persist the fully restored table. *)
      persist t);
  t

let set_src_select t f = t.src_select <- f

let connect_ip t ~to_ip ~from_ip =
  t.to_ip <- Some to_ip;
  Component.produce t.comp to_ip;
  Component.consume t.comp from_ip (handle_msg t)

let connect_sc t ~from_sc ~to_sc =
  t.to_sc <- Some to_sc;
  Component.produce t.comp to_sc;
  Component.consume t.comp from_sc (handle_msg t)

let conntrack_flows t =
  Hashtbl.fold
    (fun _ s acc ->
      match s.peer with
      | Some (rip, rport) when s.bound_port <> 0 ->
          {
            Conntrack.proto = Conntrack.Ct_udp;
            local_ip = t.local_addr;
            local_port = s.bound_port;
            remote_ip = rip;
            remote_port = rport;
          }
          :: acc
      | Some _ | None -> acc)
    t.sockets []

let on_ip_crash t =
  t.ip_up <- false;
  ignore (Component.Db.abort_peer t.db ~peer:ip_peer)

let on_ip_restart t =
  t.ip_up <- true;
  let pkts = List.rev t.resubmit in
  t.resubmit <- [];
  (* "We tend to prefer sending extra data" over dropping
     (Section V-D). *)
  Proc.exec t.proc ~cost:(costs t).Costs.udp_segment_work (fun () ->
      List.iter
        (fun pkt -> if Registry.chain_live t.registry pkt.chain then submit_packet t pkt)
        pkts)

let repersist t = persist t
