(** The UDP server.

    Small per-socket state — "a 4-tuple of source and destination
    address and ports ... this state does not change very often"
    (Table I) — saved to the storage server on every change, which makes
    UDP the transport that recovers {e transparently}: after a crash
    the restarted server re-creates all sockets from storage, and the
    SYSCALL server re-issues the last unfinished operation on each
    socket (Section V-D). The paper's DNS-resolver test keeps working
    across UDP crashes without reopening its socket.

    The socket-table reload is a {!Component} restart hook; channel
    teardown, buffer-pool reclamation and the in-flight request DB are
    the generic component lifecycle. *)

type t

val create :
  Component.t ->
  registry:Newt_channels.Registry.t ->
  local_addr:Newt_net.Addr.Ipv4.t ->
  save:(string -> string -> unit) ->
  load:(string -> string option) ->
  unit ->
  t

val comp : t -> Component.t
val proc : t -> Proc.t

val set_src_select : t -> (Newt_net.Addr.Ipv4.t -> Newt_net.Addr.Ipv4.t) -> unit
(** Source-address selection on a multihomed host. *)

val connect_ip :
  t ->
  to_ip:Msg.t Newt_channels.Sim_chan.t ->
  from_ip:Msg.t Newt_channels.Sim_chan.t ->
  unit

val connect_sc :
  t ->
  from_sc:Msg.t Newt_channels.Sim_chan.t ->
  to_sc:Msg.t Newt_channels.Sim_chan.t ->
  unit

val conntrack_flows : t -> Newt_pf.Conntrack.flow list

val on_ip_crash : t -> unit
val on_ip_restart : t -> unit

val repersist : t -> unit
(** Save the socket table again (after a storage-server crash). *)

val open_socket_count : t -> int
val datagrams_in : t -> int
val datagrams_out : t -> int
