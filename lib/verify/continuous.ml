(* Continuous verification: aggregate re-checks of the static channel
   graph (one per reincarnation) with the sanitizer's dynamic verdict,
   per experiment run and across a whole campaign. *)

type counters = {
  re_checks : int;
  static_violations : int;
  sanitizer_violations : int;
  leaks : int;
  stale_derefs : int;
  allocs : int;
  frees : int;
  handoffs : int;
  hook_events : int;
  hook_overhead_cycles : int;
  protocol_violations : int;
  protocol_requests : int;
  protocol_confirms : int;
  protocol_aborts : int;
  protocol_stale_confirms : int;
  protocol_events : int;
  tcpfsm_violations : int;
  tcpfsm_segments : int;
  tcpfsm_transitions : int;
  tcpfsm_overhead_cycles : int;
}

let zero =
  {
    re_checks = 0;
    static_violations = 0;
    sanitizer_violations = 0;
    leaks = 0;
    stale_derefs = 0;
    allocs = 0;
    frees = 0;
    handoffs = 0;
    hook_events = 0;
    hook_overhead_cycles = 0;
    protocol_violations = 0;
    protocol_requests = 0;
    protocol_confirms = 0;
    protocol_aborts = 0;
    protocol_stale_confirms = 0;
    protocol_events = 0;
    tcpfsm_violations = 0;
    tcpfsm_segments = 0;
    tcpfsm_transitions = 0;
    tcpfsm_overhead_cycles = 0;
  }

let add a b =
  {
    re_checks = a.re_checks + b.re_checks;
    static_violations = a.static_violations + b.static_violations;
    sanitizer_violations = a.sanitizer_violations + b.sanitizer_violations;
    leaks = a.leaks + b.leaks;
    stale_derefs = a.stale_derefs + b.stale_derefs;
    allocs = a.allocs + b.allocs;
    frees = a.frees + b.frees;
    handoffs = a.handoffs + b.handoffs;
    hook_events = a.hook_events + b.hook_events;
    hook_overhead_cycles = a.hook_overhead_cycles + b.hook_overhead_cycles;
    protocol_violations = a.protocol_violations + b.protocol_violations;
    protocol_requests = a.protocol_requests + b.protocol_requests;
    protocol_confirms = a.protocol_confirms + b.protocol_confirms;
    protocol_aborts = a.protocol_aborts + b.protocol_aborts;
    protocol_stale_confirms = a.protocol_stale_confirms + b.protocol_stale_confirms;
    protocol_events = a.protocol_events + b.protocol_events;
    tcpfsm_violations = a.tcpfsm_violations + b.tcpfsm_violations;
    tcpfsm_segments = a.tcpfsm_segments + b.tcpfsm_segments;
    tcpfsm_transitions = a.tcpfsm_transitions + b.tcpfsm_transitions;
    tcpfsm_overhead_cycles = a.tcpfsm_overhead_cycles + b.tcpfsm_overhead_cycles;
  }

type t = {
  mutable runs : counters list;  (* completed runs, oldest first *)
  mutable viols : Report.violation list;  (* everything collected, in order *)
  (* accumulators for the run in progress *)
  mutable cur_re_checks : int;
  mutable cur_static_violations : int;
}

let create () =
  { runs = []; viols = []; cur_re_checks = 0; cur_static_violations = 0 }

let recheck t mk =
  let r = mk () in
  t.cur_re_checks <- t.cur_re_checks + 1;
  if not (Report.ok r) then begin
    t.cur_static_violations <-
      t.cur_static_violations + List.length r.Report.violations;
    t.viols <- t.viols @ r.Report.violations
  end

let end_run ?(check_leaks = false) t =
  let c =
    if Sanitizer.active () then begin
      let vs = Sanitizer.violations () in
      let leaks = if check_leaks then Sanitizer.leaks () else [] in
      t.viols <-
        t.viols
        @ List.map Sanitizer.describe vs
        @ List.map Sanitizer.describe_leak leaks;
      {
        zero with
        re_checks = t.cur_re_checks;
        static_violations = t.cur_static_violations;
        sanitizer_violations = List.length vs;
        leaks = List.length leaks;
        stale_derefs = Sanitizer.stale_count ();
        allocs = Sanitizer.alloc_count ();
        frees = Sanitizer.free_count ();
        handoffs = Sanitizer.handoff_count ();
        hook_events = Sanitizer.event_count ();
        hook_overhead_cycles = Sanitizer.overhead_cycles ();
      }
    end
    else
      {
        zero with
        re_checks = t.cur_re_checks;
        static_violations = t.cur_static_violations;
      }
  in
  let c =
    if Protocol.active () then begin
      (* A leak-checked run is a drained run: the same quiescence that
         makes outstanding slots leaks makes open request obligations
         violations. *)
      Protocol.finish ~drained:check_leaks ();
      let pvs = Protocol.violations () in
      t.viols <- t.viols @ pvs;
      {
        c with
        protocol_violations = List.length pvs;
        protocol_requests = Protocol.count "requests";
        protocol_confirms = Protocol.count "confirms";
        protocol_aborts = Protocol.count "aborts";
        protocol_stale_confirms = Protocol.count "stale-confirms";
        protocol_events = Protocol.event_count ();
      }
    end
    else c
  in
  let c =
    if Tcpfsm.active () then begin
      let fvs = Tcpfsm.violations () in
      t.viols <- t.viols @ fvs;
      {
        c with
        tcpfsm_violations = List.length fvs;
        tcpfsm_segments = Tcpfsm.segment_count ();
        tcpfsm_transitions = Tcpfsm.transition_count ();
        tcpfsm_overhead_cycles = Tcpfsm.overhead_cycles ();
      }
    end
    else c
  in
  t.runs <- t.runs @ [ c ];
  t.cur_re_checks <- 0;
  t.cur_static_violations <- 0;
  (* The next run starts with fresh shadow state; the listeners stay
     installed so they capture the new world's pool announcements. *)
  if Sanitizer.active () then Sanitizer.reset ();
  if Protocol.active () then Protocol.reset ();
  if Tcpfsm.active () then Tcpfsm.reset ()

let runs t = t.runs

let totals t =
  List.fold_left add
    {
      zero with
      re_checks = t.cur_re_checks;
      static_violations = t.cur_static_violations;
    }
    t.runs

let ok t = t.viols = []

let report ~title t =
  let c = totals t in
  {
    Report.title;
    checks =
      [
        ("re-checks", c.re_checks);
        ("runs", List.length t.runs);
        ("allocations", c.allocs);
        ("frees", c.frees);
        ("hand-offs", c.handoffs);
        ("stale-derefs", c.stale_derefs);
        ("hook-events", c.hook_events);
      ];
    violations = t.viols;
  }

let counters_json c =
  Printf.sprintf
    "{\"re_checks\":%d,\"static_violations\":%d,\"sanitizer_violations\":%d,\"leaks\":%d,\"stale_derefs\":%d,\"allocs\":%d,\"frees\":%d,\"handoffs\":%d,\"hook_events\":%d,\"hook_overhead_cycles\":%d,\"protocol_violations\":%d,\"protocol_requests\":%d,\"protocol_confirms\":%d,\"protocol_aborts\":%d,\"protocol_stale_confirms\":%d,\"protocol_events\":%d,\"tcpfsm_violations\":%d,\"tcpfsm_segments\":%d,\"tcpfsm_transitions\":%d,\"tcpfsm_overhead_cycles\":%d}"
    c.re_checks c.static_violations c.sanitizer_violations c.leaks
    c.stale_derefs c.allocs c.frees c.handoffs c.hook_events
    c.hook_overhead_cycles c.protocol_violations c.protocol_requests
    c.protocol_confirms c.protocol_aborts c.protocol_stale_confirms
    c.protocol_events c.tcpfsm_violations c.tcpfsm_segments
    c.tcpfsm_transitions c.tcpfsm_overhead_cycles

let json t =
  Printf.sprintf "\"counters\":%s,\"run_counters\":[%s]"
    (counters_json (totals t))
    (String.concat "," (List.map counters_json t.runs))
