(** Continuous verification across restarts.

    PR 3's checkers ran once, at wiring time — a buggy recovery
    procedure (Table I) that rewires a channel to the wrong core or
    loses an export after a restart sailed through every fault campaign
    undetected. This module is the aggregation point that closes the
    gap: the experiment drivers call {!recheck} after {e every}
    reincarnation (re-running {!Static.check} against the live
    post-restart topology, re-derived from the Pubsub directory and
    each component's republished exports) and {!end_run} once each
    run's tail has drained (absorbing the {!Sanitizer}'s violations and
    end-of-run leak accounting). The result is one verdict and one
    counter block — re-checks, violations, leaks, stale derefs, hook
    overhead in model cycles — per run and for the campaign as a
    whole, surfaced in the CLI/bench JSON so hook-cost regressions are
    visible. *)

(** Per-run (and aggregate) verifier/sanitizer counters. *)
type counters = {
  re_checks : int;  (** Static re-checks performed (one per restart). *)
  static_violations : int;
  sanitizer_violations : int;
  leaks : int;  (** Slots still allocated once the run quiesced. *)
  stale_derefs : int;
  allocs : int;
  frees : int;
  handoffs : int;
  hook_events : int;
  hook_overhead_cycles : int;
      (** {!Sanitizer.overhead_cycles} — instrumentation cost in model
          cycles (accounting only, never charged to simulated cores). *)
  protocol_violations : int;
      (** Dynamic request/confirm contract breaches ({!Protocol}). *)
  protocol_requests : int;  (** Request obligations opened. *)
  protocol_confirms : int;  (** Obligations met by a confirm. *)
  protocol_aborts : int;  (** Obligations discharged by an abort sweep. *)
  protocol_stale_confirms : int;
      (** Confirms for crash-closed conversations, absorbed by design. *)
  protocol_events : int;  (** Protocol hook events replayed. *)
  tcpfsm_violations : int;
      (** TCP FSM conformance breaches ({!Tcpfsm}): illegal
          transitions, wrong-state segments, conntrack drift. *)
  tcpfsm_segments : int;  (** Segments judged by the rule table. *)
  tcpfsm_transitions : int;  (** State transitions judged. *)
  tcpfsm_overhead_cycles : int;  (** {!Tcpfsm.overhead_cycles}. *)
}

val zero : counters
val add : counters -> counters -> counters

type t

val create : unit -> t

val recheck : t -> (unit -> Report.t) -> unit
(** Run one static re-check (the thunk typically wraps
    {!Static.check} over the live host) and absorb its verdict into
    the run in progress. Experiment drivers call this from the
    reincarnation server's post-restart notification. *)

val end_run : ?check_leaks:bool -> t -> unit
(** Close the run in progress: absorb the sanitizer's violations (and,
    with [check_leaks], its outstanding slots as leaks — only
    meaningful once the run drained its in-flight buffers), absorb the
    protocol checker's verdict when it is active ([check_leaks] also
    closes its trace via {!Protocol.finish}[ ~drained:true]: the same
    quiescence that makes outstanding slots leaks makes open request
    obligations violations), absorb the TCP FSM checker's verdict when
    it is active ({!Tcpfsm}), append the run's counter block, and
    reset every active checker's shadow state for the next run (the
    listeners stay installed). With no checker active only the
    static-recheck counters are recorded. *)

val runs : t -> counters list
(** Counter blocks of completed runs, oldest first. *)

val totals : t -> counters
(** Sum over completed runs plus the run in progress. *)

val ok : t -> bool
(** No static violations, sanitizer violations, or leaks anywhere. *)

val report : title:string -> t -> Report.t
(** Everything collected, as a standard verifier report. *)

val counters_json : counters -> string
(** One counter block as a JSON object. *)

val json : t -> string
(** The fragment ["counters":{…},"run_counters":[…]] (no braces), for
    embedding in a larger JSON object. *)
